package estimate

import (
	"math"
	"testing"
)

func TestPropagateTwoLevel(t *testing.T) {
	// ((A ⋈ B) ⋈ C): the paper's Figure 4 pipeline shape. Depths must grow
	// downward: the child join must deliver more results than the root k.
	n, slab, s := 10000.0, 1.0/10000, 0.01
	ab := Join(Leaf(n, slab), Leaf(n, slab), s)
	root := Join(ab, Leaf(n, slab), s)
	if err := Propagate(root, 100, ModeTopK); err != nil {
		t.Fatal(err)
	}
	if root.K != 100 {
		t.Fatalf("root.K = %v", root.K)
	}
	if root.DL <= 0 || root.DR <= 0 {
		t.Errorf("root depths not computed: %v/%v", root.DL, root.DR)
	}
	// The any-k constraint holds at the root: s·cL·cR ≥ k.
	if s*root.CL*root.CR < 100-1e-6 {
		t.Errorf("any-k constraint violated at root: %v", s*root.CL*root.CR)
	}
	// The child's required k is the parent's left depth (Figure 4 semantics).
	if ab.K != root.DL {
		t.Errorf("child K = %v, want parent's DL %v", ab.K, root.DL)
	}
	// And the child's own depths exceed its required k in turn.
	if ab.DL < ab.K || ab.DR < ab.K {
		// For the base uniform case dL = 2 sqrt(k/s) which exceeds k while
		// k < 4/s; with k ≈ hundreds and s = 0.01 this holds.
		t.Errorf("grandchild depths %v/%v below child K %v", ab.DL, ab.DR, ab.K)
	}
}

func TestPropagateLeafClamp(t *testing.T) {
	// Tiny inputs: depths cannot exceed child cardinality.
	ab := Join(Leaf(50, 0.02), Leaf(50, 0.02), 0.1)
	if err := Propagate(ab, 1000, ModeTopK); err != nil {
		t.Fatal(err)
	}
	if ab.DL > 50 || ab.DR > 50 {
		t.Errorf("depths %v/%v exceed leaf cardinality", ab.DL, ab.DR)
	}
	// k itself clamps to the node's output cardinality (0.1·50·50 = 250).
	if ab.K > 250 {
		t.Errorf("K = %v not clamped to output cardinality", ab.K)
	}
}

func TestPropagateModes(t *testing.T) {
	n, slab, s := 100000.0, 1.0/100000, 0.001
	build := func() *Node {
		ab := Join(Leaf(n, slab), Leaf(n, slab), s)
		return Join(ab, Leaf(n, slab), s)
	}
	topk, anyk, avg := build(), build(), build()
	if err := Propagate(topk, 50, ModeTopK); err != nil {
		t.Fatal(err)
	}
	if err := Propagate(anyk, 50, ModeAnyK); err != nil {
		t.Fatal(err)
	}
	if err := Propagate(avg, 50, ModeAvg); err != nil {
		t.Fatal(err)
	}
	// Any-k propagation digs shallower than top-k everywhere.
	if anyk.CL > topk.DL || anyk.Left.K > topk.Left.K {
		t.Errorf("any-k should be the lower series: %v vs %v", anyk.CL, topk.DL)
	}
	// Average sits at or below worst case.
	if avg.DL > topk.DL*(1+1e-9) {
		t.Errorf("avg DL %v above worst %v", avg.DL, topk.DL)
	}
}

func TestPropagateErrors(t *testing.T) {
	if err := Propagate(nil, 10, ModeTopK); err == nil {
		t.Error("nil plan must fail")
	}
	leaf := Leaf(100, 0.01)
	if err := Propagate(leaf, 0, ModeTopK); err == nil {
		t.Error("k=0 must fail")
	}
	if err := Propagate(leaf, 500, ModeTopK); err != nil {
		t.Error("leaf propagate should clamp, not fail")
	}
	if leaf.K != 100 {
		t.Errorf("leaf K = %v, want clamp to 100", leaf.K)
	}
	bad := Join(Leaf(100, 0.01), Leaf(100, 0.01), -0.5) // negative selectivity
	if err := Propagate(bad, 10, ModeTopK); err == nil {
		t.Error("negative selectivity must fail")
	}
	if err := Propagate(Leaf(100, 0.01), math.NaN(), ModeTopK); err == nil {
		t.Error("NaN k must fail")
	}
}

// finiteTree asserts every computed field in the tree is a finite number.
func finiteTree(t *testing.T, n *Node) {
	t.Helper()
	for _, v := range []float64{n.K, n.CL, n.CR, n.DL, n.DR} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite propagated field in %+v", *n)
		}
	}
	if !n.IsLeaf() {
		finiteTree(t, n.Left)
		finiteTree(t, n.Right)
	}
}

// A zero-selectivity join produces no output; Propagate must short-circuit
// with finite depths (worst case: exhaust both inputs to prove emptiness)
// instead of passing an unclamped k into the estimators.
func TestPropagateZeroSelectivity(t *testing.T) {
	bad := Join(Leaf(100, 0.01), Leaf(200, 0.01), 0)
	if err := Propagate(bad, 10, ModeTopK); err != nil {
		t.Fatal(err)
	}
	finiteTree(t, bad)
	if bad.K != 0 {
		t.Errorf("zero-output K = %v, want 0", bad.K)
	}
	if bad.DL != 100 || bad.DR != 200 {
		t.Errorf("zero-output depths %v/%v, want full inputs 100/200", bad.DL, bad.DR)
	}
}

// An empty base input (N = 0, e.g. empty-table stats) zeroes the join output;
// depths stay finite at every node and each K respects its node's output.
func TestPropagateEmptyLeaf(t *testing.T) {
	for _, mode := range []Mode{ModeTopK, ModeAnyK, ModeAvg} {
		empty := Join(Leaf(0, 0.01), Leaf(1000, 0.001), 0.05)
		root := Join(empty, Leaf(1000, 0.001), 0.05)
		if err := Propagate(root, 25, mode); err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		finiteTree(t, root)
		if root.K != 0 || empty.K != 0 {
			t.Errorf("mode %d: K through empty subtree = %v/%v, want 0", mode, root.K, empty.K)
		}
		if empty.Left.K != 0 {
			t.Errorf("mode %d: empty leaf K = %v, want 0", mode, empty.Left.K)
		}
	}
}

// The <1 depth floor must not push a child's required k above the child's own
// deliverable output (a sub-1 expected cardinality from a highly selective
// child join): floor first, then clamp to the child's OutCard.
func TestPropagateFloorClampOrder(t *testing.T) {
	tiny := Join(Leaf(2, 0.5), Leaf(2, 0.5), 0.1) // OutCard = 0.4
	root := Join(tiny, Leaf(1000, 0.001), 0.5)
	if err := Propagate(root, 10, ModeTopK); err != nil {
		t.Fatal(err)
	}
	finiteTree(t, root)
	if oc := tiny.OutCard(); tiny.K > oc+1e-12 {
		t.Errorf("child K %v exceeds its deliverable output %v", tiny.K, oc)
	}
	if root.DL > tiny.OutCard()+1e-12 {
		t.Errorf("root DL %v exceeds left child output %v", root.DL, tiny.OutCard())
	}
}

func TestLeftDeepShape(t *testing.T) {
	root, err := LeftDeep(4, 1000, 0.001, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if root.Leaves() != 4 {
		t.Fatalf("leaves = %d", root.Leaves())
	}
	// Left-deep: right child is always a leaf.
	cur := root
	depth := 0
	for !cur.IsLeaf() {
		if !cur.Right.IsLeaf() {
			t.Fatal("left-deep tree has non-leaf right child")
		}
		cur = cur.Left
		depth++
	}
	if depth != 3 {
		t.Fatalf("depth = %d", depth)
	}
	if _, err := LeftDeep(1, 10, 1, 0.1); err == nil {
		t.Error("LeftDeep(1) must fail")
	}
}

func TestBalancedShape(t *testing.T) {
	root, err := Balanced(4, 1000, 0.001, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if root.Leaves() != 4 {
		t.Fatalf("leaves = %d", root.Leaves())
	}
	if root.Left.Leaves() != 2 || root.Right.Leaves() != 2 {
		t.Fatal("tree not balanced")
	}
	if _, err := Balanced(3, 10, 1, 0.1); err == nil {
		t.Error("non power of two must fail")
	}
}

func TestOutCard(t *testing.T) {
	ab := Join(Leaf(100, 1), Leaf(200, 1), 0.01)
	if got := ab.OutCard(); math.Abs(got-200) > 1e-9 {
		t.Errorf("OutCard = %v, want 200", got)
	}
	root := Join(ab, Leaf(50, 1), 0.1)
	if got := root.OutCard(); math.Abs(got-1000) > 1e-9 {
		t.Errorf("OutCard = %v, want 1000", got)
	}
}

// Propagate must agree with direct formula application at the root.
func TestPropagateMatchesDirectFormula(t *testing.T) {
	n, s := 50000.0, 0.005
	ab := Join(Leaf(n, 0), Leaf(n, 0), s) // zero slabs force hierarchy path
	root := Join(ab, Leaf(n, 0), s)
	if err := Propagate(root, 200, ModeTopK); err != nil {
		t.Fatal(err)
	}
	want, err := HierarchyWorst(200, s, 2, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root.DL-math.Min(want.DL, ab.OutCard())) > 1e-6 {
		t.Errorf("root DL = %v, want %v", root.DL, want.DL)
	}
	if math.Abs(root.DR-math.Min(want.DR, n)) > 1e-6 {
		t.Errorf("root DR = %v, want %v", root.DR, want.DR)
	}
}

// Package estimate implements the paper's Section 4 probabilistic model for
// the input cardinality (depth) of rank-join operators: how many tuples a
// rank-join must read from each ranked input to produce the top-k join
// results. It provides
//
//   - the any-k depths cL, cR of Theorem 1 (s·cL·cR ≥ k);
//   - the top-k depths dL, dR of Theorem 2, minimized per Section 4.3;
//   - the base two-relation case under uniform scores with average
//     decrement slabs x and y;
//   - the hierarchy case where an input is itself the output of rank-joining
//     j base inputs (its scores follow the sum-of-uniforms distribution u_j):
//     Equation 1 score quantiles, the worst-case Equations 2–5, and the
//     average-case closed forms;
//   - Algorithm Propagate (Figure 8), which pushes the root k down a
//     rank-join plan tree, annotating every operator with its depths; and
//   - the buffer upper bound dL·dR·s of Section 5.3.
//
// All formulas are evaluated in log space (math.Lgamma for factorials) so
// deep hierarchies do not overflow.
package estimate

import (
	"fmt"
	"math"
)

// Depths holds the estimated input cardinalities of one rank-join operator.
type Depths struct {
	// CL and CR are the any-k depths (Theorem 1): reading this much of each
	// input yields k expected valid join results, not necessarily top-ranked.
	CL, CR float64
	// DL and DR are the top-k depths (Theorem 2): reading this much
	// guarantees (in expectation / worst case per mode) the top-k results.
	DL, DR float64
}

// lnFact returns ln(j!).
func lnFact(j int) float64 {
	v, _ := math.Lgamma(float64(j) + 1)
	return v
}

// TwoUniform estimates depths for a rank-join of two base ranked relations
// whose scores are uniform with average decrement slabs x (left) and y
// (right): cL = sqrt(yk/(xs)), cR = sqrt(xk/(ys)), dL = cL + (y/x)cR,
// dR = cR + (x/y)cL (Section 4.3). In the symmetric case x = y this reduces
// to cL = cR = sqrt(k/s), dL = dR = 2·sqrt(k/s).
func TwoUniform(k, s, x, y float64) (Depths, error) {
	if err := checkKS(k, s); err != nil {
		return Depths{}, err
	}
	if x <= 0 || y <= 0 {
		return Depths{}, fmt.Errorf("estimate: non-positive slabs x=%v y=%v", x, y)
	}
	cL := math.Sqrt(y * k / (x * s))
	cR := math.Sqrt(x * k / (y * s))
	return Depths{
		CL: cL,
		CR: cR,
		DL: cL + (y/x)*cR,
		DR: cR + (x/y)*cL,
	}, nil
}

// TwoUniformAvg is the average-case counterpart of TwoUniform: in the
// symmetric case the average-case analysis gives dL = sqrt(2k/s) (the l=r=1
// instance of the average-case hierarchy formulas) instead of the worst-case
// 2·sqrt(k/s); asymmetric slabs scale the same way as in TwoUniform.
func TwoUniformAvg(k, s, x, y float64) (Depths, error) {
	d, err := TwoUniform(k, s, x, y)
	if err != nil {
		return Depths{}, err
	}
	// Worst-case dL = 2·sqrt(yk/(xs)); average replaces the factor 2 with
	// sqrt(2), matching HierarchyAvg at l=r=1.
	d.DL = math.Sqrt(2 * y * k / (x * s))
	d.DR = math.Sqrt(2 * x * k / (y * s))
	return d, nil
}

// OneSidedDepth estimates the outer depth of a nested-loops rank-join
// (NRJN) whose inner input is fully materialized and unsorted. Its threshold
// after reading dL outer tuples is SL(dL) + max(SR): every unseen result
// pairs a deeper outer tuple with some inner tuple. The top-k results
// surface once SL(1) − x·dL + SR(1) drops to the expected k-th combined
// score SL(1) + SR(1) − Δk with Δk = sqrt(2·k·x·y/s) (the u₂ quantile with
// decrement slabs x and y), giving
//
//	dL = Δk / x = sqrt(2·k·y / (s·x)).
//
// In the symmetric case this equals the average-case two-sided depth
// sqrt(2k/s): the one-sided operator pays full inner consumption but digs no
// deeper on the outer than the symmetric operator does per side.
func OneSidedDepth(k, s, x, y float64) (float64, error) {
	if err := checkKS(k, s); err != nil {
		return 0, err
	}
	if x <= 0 || y <= 0 {
		return 0, fmt.Errorf("estimate: non-positive slabs x=%v y=%v", x, y)
	}
	return math.Sqrt(2 * k * y / (s * x)), nil
}

// HierarchyWorst estimates worst-case depths (Equations 2–5) for a rank-join
// whose left input aggregates l base ranked relations and right input
// aggregates r, each base relation holding n tuples with uniform scores.
// The worst-case bounds are strict upper bounds on the required depths.
func HierarchyWorst(k, s float64, l, r int, n float64) (Depths, error) {
	if err := checkHier(k, s, l, r, n); err != nil {
		return Depths{}, err
	}
	lf, rf := float64(l), float64(r)
	// Equation 2: cL^{r+l} = (r!)^l k^l n^{r-l} l^{rl} / (s^l (l!)^r r^{rl}).
	lnCL := (lf*lnFact(r) + lf*math.Log(k) + (rf-lf)*math.Log(n) + rf*lf*math.Log(lf) -
		lf*math.Log(s) - rf*lnFact(l) - rf*lf*math.Log(rf)) / (lf + rf)
	cL := math.Exp(lnCL)
	// cL·cR = k/s exactly at the minimizer (Equation 3 is its mirror image).
	cR := k / (s * cL)
	return Depths{
		CL: cL,
		CR: cR,
		DL: cL * math.Pow(1+rf/lf, lf), // Equation 4
		DR: cR * math.Pow(1+lf/rf, rf), // Equation 5
	}, nil
}

// HierarchyAvg estimates average-case depths:
//
//	dL^{l+r} = ((l+r)!)^l k^l n^{r-l} / ((l!)^{l+r} s^l)
//	dR^{l+r} = ((l+r)!)^r k^r n^{l-r} / ((r!)^{l+r} s^r)
//
// CL and CR are filled with the worst-case any-k minimizers (the average
// analysis does not define its own c values).
func HierarchyAvg(k, s float64, l, r int, n float64) (Depths, error) {
	if err := checkHier(k, s, l, r, n); err != nil {
		return Depths{}, err
	}
	lf, rf := float64(l), float64(r)
	lnDL := (lf*lnFact(l+r) + lf*math.Log(k) + (rf-lf)*math.Log(n) -
		(lf+rf)*lnFact(l) - lf*math.Log(s)) / (lf + rf)
	lnDR := (rf*lnFact(l+r) + rf*math.Log(k) + (lf-rf)*math.Log(n) -
		(lf+rf)*lnFact(r) - rf*math.Log(s)) / (lf + rf)
	worst, err := HierarchyWorst(k, s, l, r, n)
	if err != nil {
		return Depths{}, err
	}
	return Depths{
		CL: worst.CL,
		CR: worst.CR,
		DL: math.Exp(lnDL),
		DR: math.Exp(lnDR),
	}, nil
}

// ScoreQuantile is Equation 1: the expected score of the i-th largest of m
// draws from u_j, the sum of j independent uniforms on [0, n]:
//
//	score_i = j·n − (j!·i·n^j / m)^{1/j}
//
// valid in the distribution's upper tail (i ≤ m/2 roughly).
func ScoreQuantile(j int, n, i, m float64) (float64, error) {
	if j < 1 || n <= 0 || i <= 0 || m <= 0 {
		return 0, fmt.Errorf("estimate: ScoreQuantile needs positive arguments (j=%d n=%v i=%v m=%v)", j, n, i, m)
	}
	jf := float64(j)
	ln := lnFact(j) + math.Log(i) + jf*math.Log(n) - math.Log(m)
	return jf*n - math.Exp(ln/jf), nil
}

// AnyKDepths returns the Theorem 1 any-k depths for the two-relation uniform
// case — the symmetric minimizers of the depth bound subject to s·cL·cR ≥ k.
func AnyKDepths(k, s, x, y float64) (cL, cR float64, err error) {
	d, err := TwoUniform(k, s, x, y)
	if err != nil {
		return 0, 0, err
	}
	return d.CL, d.CR, nil
}

// BufferUpperBound is the Section 5.3 bound on the rank-join ranking-queue
// size: all dL·dR·s expected join results may be buffered before any can be
// reported.
func BufferUpperBound(dL, dR, s float64) float64 { return dL * dR * s }

func checkKS(k, s float64) error {
	if k <= 0 {
		return fmt.Errorf("estimate: non-positive k %v", k)
	}
	if s <= 0 || s > 1 {
		return fmt.Errorf("estimate: selectivity %v outside (0,1]", s)
	}
	return nil
}

func checkHier(k, s float64, l, r int, n float64) error {
	if err := checkKS(k, s); err != nil {
		return err
	}
	if l < 1 || r < 1 {
		return fmt.Errorf("estimate: sides must aggregate >=1 inputs (l=%d r=%d)", l, r)
	}
	if n <= 0 {
		return fmt.Errorf("estimate: non-positive base cardinality %v", n)
	}
	return nil
}

package estimate

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol*math.Max(1, math.Abs(b)) }

func TestTwoUniformSymmetric(t *testing.T) {
	// x = y: cL = cR = sqrt(k/s), dL = dR = 2 sqrt(k/s).
	d, err := TwoUniform(100, 0.01, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(100 / 0.01)
	if !almostEq(d.CL, want, 1e-12) || !almostEq(d.CR, want, 1e-12) {
		t.Errorf("c = %v/%v, want %v", d.CL, d.CR, want)
	}
	if !almostEq(d.DL, 2*want, 1e-12) || !almostEq(d.DR, 2*want, 1e-12) {
		t.Errorf("d = %v/%v, want %v", d.DL, d.DR, 2*want)
	}
}

func TestTwoUniformAsymmetric(t *testing.T) {
	// Steeper left slab (x >> y): dig less into L, more into R.
	d, err := TwoUniform(64, 0.1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// cL = sqrt(yk/xs) = sqrt(64/(4*0.1)) = sqrt(160); cR = sqrt(4*64/0.1).
	if !almostEq(d.CL, math.Sqrt(160), 1e-12) {
		t.Errorf("cL = %v", d.CL)
	}
	if !almostEq(d.CR, math.Sqrt(2560), 1e-12) {
		t.Errorf("cR = %v", d.CR)
	}
	if d.CL >= d.CR {
		t.Error("steeper left slab should need smaller left depth")
	}
	// Invariant: s·cL·cR = k at the minimizer.
	if !almostEq(0.1*d.CL*d.CR, 64, 1e-9) {
		t.Errorf("s·cL·cR = %v, want 64", 0.1*d.CL*d.CR)
	}
	// dL = cL + (y/x)cR, dR = cR + (x/y)cL.
	if !almostEq(d.DL, d.CL+0.25*d.CR, 1e-12) || !almostEq(d.DR, d.CR+4*d.CL, 1e-12) {
		t.Errorf("d = %v/%v", d.DL, d.DR)
	}
}

func TestTwoUniformValidation(t *testing.T) {
	if _, err := TwoUniform(0, 0.1, 1, 1); err == nil {
		t.Error("k=0 must fail")
	}
	if _, err := TwoUniform(10, 0, 1, 1); err == nil {
		t.Error("s=0 must fail")
	}
	if _, err := TwoUniform(10, 2, 1, 1); err == nil {
		t.Error("s>1 must fail")
	}
	if _, err := TwoUniform(10, 0.1, 0, 1); err == nil {
		t.Error("zero slab must fail")
	}
}

func TestHierarchyWorstBaseCase(t *testing.T) {
	// l = r = 1 must reduce to the symmetric two-uniform case regardless of n.
	d, err := HierarchyWorst(100, 0.01, 1, 1, 5000)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(100 / 0.01)
	if !almostEq(d.CL, want, 1e-9) || !almostEq(d.DL, 2*want, 1e-9) {
		t.Errorf("base case c=%v d=%v, want %v / %v", d.CL, d.DL, want, 2*want)
	}
}

func TestHierarchyWorstInvariants(t *testing.T) {
	k, s, n := 50.0, 0.01, 10000.0
	for _, lr := range [][2]int{{1, 1}, {2, 1}, {1, 2}, {2, 2}, {3, 1}, {3, 2}} {
		d, err := HierarchyWorst(k, s, lr[0], lr[1], n)
		if err != nil {
			t.Fatal(err)
		}
		// The any-k constraint holds with equality at the minimizer.
		if !almostEq(s*d.CL*d.CR, k, 1e-6) {
			t.Errorf("l=%d r=%d: s·cL·cR = %v, want %v", lr[0], lr[1], s*d.CL*d.CR, k)
		}
		// Top-k depths dominate any-k depths.
		if d.DL < d.CL || d.DR < d.CR {
			t.Errorf("l=%d r=%d: top-k depths must dominate any-k (%+v)", lr[0], lr[1], d)
		}
		// Equations 4/5 multipliers.
		lf, rf := float64(lr[0]), float64(lr[1])
		if !almostEq(d.DL, d.CL*math.Pow(1+rf/lf, lf), 1e-9) {
			t.Errorf("l=%d r=%d: dL multiplier wrong", lr[0], lr[1])
		}
		if !almostEq(d.DR, d.CR*math.Pow(1+lf/rf, rf), 1e-9) {
			t.Errorf("l=%d r=%d: dR multiplier wrong", lr[0], lr[1])
		}
	}
}

func TestHierarchySymmetryMirrors(t *testing.T) {
	// Swapping l and r must swap the depth pair.
	a, err := HierarchyWorst(80, 0.05, 2, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := HierarchyWorst(80, 0.05, 1, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(a.DL, b.DR, 1e-9) || !almostEq(a.DR, b.DL, 1e-9) {
		t.Errorf("mirror mismatch: %+v vs %+v", a, b)
	}
}

func TestHierarchyAvgBaseCase(t *testing.T) {
	// l = r = 1: dL = sqrt(2k/s).
	d, err := HierarchyAvg(100, 0.01, 1, 1, 5000)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(2 * 100 / 0.01)
	if !almostEq(d.DL, want, 1e-9) || !almostEq(d.DR, want, 1e-9) {
		t.Errorf("avg base d=%v/%v, want %v", d.DL, d.DR, want)
	}
}

func TestAvgBelowWorst(t *testing.T) {
	f := func(kSeed, sSeed uint8) bool {
		k := float64(kSeed%200) + 1
		s := (float64(sSeed%99) + 1) / 100
		for _, lr := range [][2]int{{1, 1}, {2, 1}, {2, 2}} {
			w, err1 := HierarchyWorst(k, s, lr[0], lr[1], 10000)
			a, err2 := HierarchyAvg(k, s, lr[0], lr[1], 10000)
			if err1 != nil || err2 != nil {
				return false
			}
			if a.DL > w.DL*(1+1e-9) || a.DR > w.DR*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: depths are monotone in k and anti-monotone in s.
func TestDepthMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Float64()*500
		s := 0.001 + rng.Float64()*0.5
		d1, err := HierarchyWorst(k, s, 2, 1, 10000)
		if err != nil {
			return false
		}
		d2, err := HierarchyWorst(k*2, s, 2, 1, 10000)
		if err != nil {
			return false
		}
		d3, err := HierarchyWorst(k, s/2, 2, 1, 10000)
		if err != nil {
			return false
		}
		return d2.DL >= d1.DL && d2.DR >= d1.DR && d3.DL >= d1.DL && d3.DR >= d1.DR
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestScoreQuantile(t *testing.T) {
	// j=1 over [0,n] with m = n draws: score_i = n - i.
	got, err := ScoreQuantile(1, 1000, 10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 990, 1e-12) {
		t.Errorf("u1 quantile = %v, want 990", got)
	}
	// j=2 (paper's example): score_i = 2n - sqrt(2 i n) for m = n.
	got, err = ScoreQuantile(2, 1000, 10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	want := 2000 - math.Sqrt(2*10*1000)
	if !almostEq(got, want, 1e-12) {
		t.Errorf("u2 quantile = %v, want %v", got, want)
	}
	if _, err := ScoreQuantile(0, 1, 1, 1); err == nil {
		t.Error("j=0 must fail")
	}
	if _, err := ScoreQuantile(1, 1, 0, 1); err == nil {
		t.Error("i=0 must fail")
	}
}

// Monte-Carlo check of Theorem 1: joining the top cL and cR tuples of two
// uniform lists yields at least k expected matches.
func TestAnyKDepthsTheorem1(t *testing.T) {
	const (
		n = 4000
		k = 30
		s = 0.01 // key domain of 100
	)
	cL, cR, err := AnyKDepths(k, s, 1.0/n, 1.0/n)
	if err != nil {
		t.Fatal(err)
	}
	if s*cL*cR < k-1e-9 {
		t.Fatalf("constraint violated: s·cL·cR = %v", s*cL*cR)
	}
	trials, totalMatches := 30, 0
	rng := rand.New(rand.NewSource(99))
	for tr := 0; tr < trials; tr++ {
		// The top-c tuples of a ranked uniform list are a uniform random
		// subset with respect to the independent join key.
		domain := int(math.Round(1 / s))
		hist := make([]int, domain)
		for i := 0; i < int(cL); i++ {
			hist[rng.Intn(domain)]++
		}
		for i := 0; i < int(cR); i++ {
			totalMatches += hist[rng.Intn(domain)]
		}
	}
	avg := float64(totalMatches) / float64(trials)
	if avg < k*0.7 {
		t.Errorf("expected >= ~%d matches within the any-k prefixes, measured %v", k, avg)
	}
}

func TestBufferUpperBound(t *testing.T) {
	if BufferUpperBound(100, 200, 0.01) != 200 {
		t.Error("buffer bound arithmetic")
	}
}

func TestTwoUniformAvg(t *testing.T) {
	// Symmetric: dL = sqrt(2k/s), matching HierarchyAvg at l=r=1.
	d, err := TwoUniformAvg(100, 0.01, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(2 * 100 / 0.01)
	if !almostEq(d.DL, want, 1e-12) || !almostEq(d.DR, want, 1e-12) {
		t.Errorf("avg d = %v/%v, want %v", d.DL, d.DR, want)
	}
	h, err := HierarchyAvg(100, 0.01, 1, 1, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(d.DL, h.DL, 1e-9) {
		t.Errorf("TwoUniformAvg %v disagrees with HierarchyAvg %v", d.DL, h.DL)
	}
	// Average always at or below worst case; any-k fields preserved.
	w, _ := TwoUniform(100, 0.01, 1, 1)
	if d.DL > w.DL || d.CL != w.CL {
		t.Error("avg must not exceed worst; c values shared")
	}
	// Asymmetric slabs scale like the worst case.
	d, err = TwoUniformAvg(64, 0.1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(d.DL, math.Sqrt(2*64/(4*0.1)), 1e-12) {
		t.Errorf("asymmetric avg dL = %v", d.DL)
	}
	if _, err := TwoUniformAvg(0, 0.1, 1, 1); err == nil {
		t.Error("invalid parameters must fail")
	}
}

// Empirical check of Equation 1: the expected i-th largest of m draws from
// u_j (sum of j uniforms on [0,n]) matches the closed form in the upper
// tail.
func TestScoreQuantileEmpirical(t *testing.T) {
	const (
		n      = 1.0
		m      = 20000
		trials = 40
	)
	rng := rand.New(rand.NewSource(271))
	for _, j := range []int{1, 2, 3} {
		// Average the i-th largest over several trials.
		for _, i := range []float64{10, 100, 500} {
			sum := 0.0
			for tr := 0; tr < trials; tr++ {
				draws := make([]float64, m)
				for d := range draws {
					v := 0.0
					for u := 0; u < j; u++ {
						v += rng.Float64() * n
					}
					draws[d] = v
				}
				sort.Float64s(draws)
				sum += draws[m-int(i)]
			}
			measured := sum / trials
			predicted, err := ScoreQuantile(j, n, i, m)
			if err != nil {
				t.Fatal(err)
			}
			// The tail formula is asymptotic; allow 10% relative error on
			// the distance from the maximum possible score j*n.
			gapM := float64(j)*n - measured
			gapP := float64(j)*n - predicted
			if math.Abs(gapM-gapP) > 0.12*math.Max(gapM, gapP) {
				t.Errorf("j=%d i=%v: measured %v, Equation 1 predicts %v", j, i, measured, predicted)
			}
		}
	}
}

// Empirical check of the base-case depth model: an actual HRJN-style
// computation over two uniform ranked lists needs depths between the any-k
// and worst-case estimates to surface the top-k join results.
func TestTwoUniformDepthsEmpirical(t *testing.T) {
	const (
		n      = 4000
		k      = 25
		s      = 0.02 // key domain 50
		trials = 30
	)
	rng := rand.New(rand.NewSource(137))
	d, err := TwoUniform(k, s, 1.0/n, 1.0/n)
	if err != nil {
		t.Fatal(err)
	}
	type row struct {
		key   int
		score float64
	}
	domain := int(math.Round(1 / s))
	totalDepth := 0.0
	for tr := 0; tr < trials; tr++ {
		mk := func() []row {
			rows := make([]row, n)
			for i := range rows {
				rows[i] = row{key: rng.Intn(domain), score: rng.Float64()}
			}
			sort.Slice(rows, func(a, b int) bool { return rows[a].score > rows[b].score })
			return rows
		}
		L, R := mk(), mk()
		// Exact k-th best combined score by brute force.
		var scores []float64
		for _, l := range L {
			for _, r := range R {
				if l.key == r.key {
					scores = append(scores, l.score+r.score)
				}
			}
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
		kth := scores[k-1]
		// Minimum symmetric depth d such that the top-d prefixes contain k
		// results with score >= kth AND the threshold has dropped below kth.
		depth := 0
		for dd := 1; dd <= n; dd++ {
			thr := math.Max(L[0].score+R[dd-1].score, L[dd-1].score+R[0].score)
			if thr > kth {
				continue
			}
			cnt := 0
			for _, l := range L[:dd] {
				for _, r := range R[:dd] {
					if l.key == r.key && l.score+r.score >= kth {
						cnt++
					}
				}
			}
			if cnt >= k {
				depth = dd
				break
			}
		}
		if depth == 0 {
			depth = n
		}
		totalDepth += float64(depth)
	}
	avgDepth := totalDepth / trials
	// The measured minimal depth must sit in [cL/2, dL*1.2].
	if avgDepth < d.CL*0.5 || avgDepth > d.DL*1.2 {
		t.Errorf("empirical depth %v outside [any-k/2=%v, worst*1.2=%v]",
			avgDepth, d.CL*0.5, d.DL*1.2)
	}
}

func TestOneSidedDepth(t *testing.T) {
	// Symmetric slabs: equals the average-case two-sided depth sqrt(2k/s).
	d, err := OneSidedDepth(100, 0.01, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(d, math.Sqrt(2*100/0.01), 1e-12) {
		t.Errorf("one-sided depth = %v", d)
	}
	// Steeper outer slab (x large): shallower outer dig.
	steep, _ := OneSidedDepth(100, 0.01, 4, 1)
	flat, _ := OneSidedDepth(100, 0.01, 0.25, 1)
	if steep >= d || flat <= d {
		t.Errorf("slab scaling wrong: steep=%v base=%v flat=%v", steep, d, flat)
	}
	if _, err := OneSidedDepth(0, 0.1, 1, 1); err == nil {
		t.Error("k=0 must fail")
	}
	if _, err := OneSidedDepth(10, 0.1, 0, 1); err == nil {
		t.Error("zero slab must fail")
	}
}

// Empirical check of the one-sided analysis against an actual NRJN-style
// stopping rule: the measured outer depth should track sqrt(2k y/(s x)).
func TestOneSidedDepthEmpirical(t *testing.T) {
	const (
		n      = 4000
		k      = 25
		s      = 0.02
		trials = 25
	)
	rng := rand.New(rand.NewSource(777))
	want, err := OneSidedDepth(k, s, 1.0/n, 1.0/n)
	if err != nil {
		t.Fatal(err)
	}
	domain := int(math.Round(1 / s))
	total := 0.0
	for tr := 0; tr < trials; tr++ {
		type row struct {
			key   int
			score float64
		}
		L := make([]row, n)
		R := make([]row, n)
		maxR := 0.0
		for i := range L {
			L[i] = row{rng.Intn(domain), rng.Float64()}
			R[i] = row{rng.Intn(domain), rng.Float64()}
			if R[i].score > maxR {
				maxR = R[i].score
			}
		}
		sort.Slice(L, func(a, b int) bool { return L[a].score > L[b].score })
		// k-th best combined score by brute force.
		var scores []float64
		for _, l := range L {
			for _, r := range R {
				if l.key == r.key {
					scores = append(scores, l.score+r.score)
				}
			}
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
		kth := scores[k-1]
		// The NRJN stopping depth: first dL with L[dL-1].score+maxR <= kth
		// and at least k results found in the prefix.
		depth := n
		cnt := 0
		for d := 1; d <= n; d++ {
			for _, r := range R {
				if L[d-1].key == r.key && L[d-1].score+r.score >= kth {
					cnt++
				}
			}
			if cnt >= k && L[d-1].score+maxR <= kth {
				depth = d
				break
			}
		}
		total += float64(depth)
	}
	measured := total / trials
	if measured < want*0.5 || measured > want*1.6 {
		t.Errorf("measured one-sided depth %v, model predicts %v", measured, want)
	}
}

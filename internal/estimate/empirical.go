package estimate

import "math"

// Observed records empirically measured rank-join input depths: the depths an
// executed operator actually reached while delivering k results. The engine's
// depth-feedback loop captures these from EXPLAIN ANALYZE instrumentation when
// the Section-4 model's estimate was badly wrong, and feeds them back into the
// optimizer (core.Options.DepthHints) so the next plan-cache epoch pre-sizes
// and costs with measured depths instead of the uniform-score model.
type Observed struct {
	// K is the output count the depths were measured at.
	K float64 `json:"k"`
	// DL and DR are the observed left and right input depths.
	DL float64 `json:"dl"`
	DR float64 `json:"dr"`
}

// Valid reports whether the observation carries usable finite measurements.
func (ob Observed) Valid() bool {
	return ob.K > 0 && ob.DL >= 0 && ob.DR >= 0 &&
		!math.IsInf(ob.DL, 0) && !math.IsInf(ob.DR, 0) &&
		!math.IsNaN(ob.DL) && !math.IsNaN(ob.DR)
}

// DepthsAt rescales the observation to a different output count k using the
// Section-4 growth law: rank-join depths grow as sqrt(k/s), so the ratio of
// depths at two ks is sqrt(k/K). Observations at the same k pass through
// unchanged; invalid observations return zero (no hint).
func (ob Observed) DepthsAt(k float64) (dl, dr float64) {
	if !ob.Valid() || k <= 0 {
		return 0, 0
	}
	f := math.Sqrt(k / ob.K)
	return ob.DL * f, ob.DR * f
}

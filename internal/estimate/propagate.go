package estimate

import (
	"fmt"
	"math"
)

// Mode selects which estimator Propagate applies at each operator.
type Mode uint8

const (
	// ModeTopK propagates the worst-case top-k depths dL, dR (Equations
	// 2–5). This is the "Top-k Estimate" series of the paper's Figure 13.
	ModeTopK Mode = iota
	// ModeAnyK propagates the any-k depths cL, cR (Theorem 1) — the
	// "Any-k Estimate" series, a lower bound on the needed depths.
	ModeAnyK
	// ModeAvg propagates the average-case depths.
	ModeAvg
)

// Node is one operator of a rank-join plan tree for estimation purposes:
// an internal node is a rank-join with selectivity S; a leaf is a ranked
// base input with cardinality N and average decrement slab Slab.
//
// Propagate fills the computed fields K, CL, CR, DL, DR.
type Node struct {
	Left, Right *Node
	// S is the join selectivity of this operator (internal nodes).
	S float64
	// N is the base input cardinality (leaves).
	N float64
	// Slab is the average score decrement between consecutive ranked tuples
	// (leaves; used for the two-relation base case).
	Slab float64

	// K is the number of ranked results required from this node, set by
	// Propagate (the root receives the query's k; children receive their
	// parent's depth).
	K float64
	// CL, CR, DL, DR are the estimated depths into Left and Right.
	CL, CR, DL, DR float64
}

// Leaf constructs a leaf node.
func Leaf(n float64, slab float64) *Node { return &Node{N: n, Slab: slab} }

// Join constructs an internal rank-join node.
func Join(left, right *Node, s float64) *Node { return &Node{Left: left, Right: right, S: s} }

// IsLeaf reports whether the node is a base input.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Leaves returns the number of base ranked inputs under the node.
func (n *Node) Leaves() int {
	if n.IsLeaf() {
		return 1
	}
	return n.Left.Leaves() + n.Right.Leaves()
}

// OutCard returns the expected output cardinality of the node's full result:
// the product of leaf cardinalities and the selectivities on the path.
func (n *Node) OutCard() float64 {
	if n.IsLeaf() {
		return n.N
	}
	return n.S * n.Left.OutCard() * n.Right.OutCard()
}

// baseN returns the representative base-input cardinality under the node:
// the geometric mean of its leaf cardinalities (the paper assumes all equal).
func (n *Node) baseN() float64 {
	if n.IsLeaf() {
		return n.N
	}
	sum, cnt := n.lnNSum()
	return math.Exp(sum / float64(cnt))
}

func (n *Node) lnNSum() (float64, int) {
	if n.IsLeaf() {
		return math.Log(n.N), 1
	}
	ls, lc := n.Left.lnNSum()
	rs, rc := n.Right.lnNSum()
	return ls + rs, lc + rc
}

// Propagate implements the paper's Algorithm Propagate (Figure 8): it sets
// root.K = k, computes the root's depths with the chosen estimator, then
// recursively treats each child's depth as that child's required k. Depths
// are clamped to each child's maximum deliverable cardinality. It returns an
// error when the tree or parameters are malformed.
func Propagate(root *Node, k float64, mode Mode) error {
	if root == nil {
		return fmt.Errorf("estimate: nil plan")
	}
	if k <= 0 || math.IsNaN(k) {
		return fmt.Errorf("estimate: non-positive k %v", k)
	}
	root.K = k
	if root.IsLeaf() {
		// A leaf delivers its own tuples; nothing to split.
		if k > root.N {
			root.K = root.N
		}
		if root.K < 0 {
			root.K = 0
		}
		return nil
	}
	if math.IsNaN(root.S) || root.S < 0 {
		return fmt.Errorf("estimate: invalid selectivity %v", root.S)
	}
	// k cannot exceed the node's total output. A zero-output node — an empty
	// base input or a vanishing selectivity product — short-circuits: the
	// Section-4 estimators are undefined there (an unclamped k yields NaN/Inf
	// depths that would poison executor pre-sizing via depth hints), and the
	// true depths are bounded by what the children deliver: in the worst case
	// the operator exhausts both inputs to prove no result exists. Every
	// field stays finite.
	oc := root.OutCard()
	if oc <= 0 {
		root.K = 0
		lOut := math.Max(root.Left.OutCard(), 0)
		rOut := math.Max(root.Right.OutCard(), 0)
		root.CL, root.CR, root.DL, root.DR = lOut, rOut, lOut, rOut
		if err := Propagate(root.Left, math.Max(lOut, 1), mode); err != nil {
			return err
		}
		return Propagate(root.Right, math.Max(rOut, 1), mode)
	}
	if k > oc {
		k = oc
		root.K = k
	}
	l := root.Left.Leaves()
	r := root.Right.Leaves()

	var d Depths
	var err error
	if l == 1 && r == 1 && root.Left.Slab > 0 && root.Right.Slab > 0 {
		// Base case with measured slabs.
		if mode == ModeAvg {
			d, err = TwoUniformAvg(k, root.S, root.Left.Slab, root.Right.Slab)
		} else {
			d, err = TwoUniform(k, root.S, root.Left.Slab, root.Right.Slab)
		}
	} else {
		n := root.baseN()
		switch mode {
		case ModeAvg:
			d, err = HierarchyAvg(k, root.S, l, r, n)
		default:
			d, err = HierarchyWorst(k, root.S, l, r, n)
		}
	}
	if err != nil {
		return err
	}
	// Clamp to what each child can produce; a degenerate estimate (NaN,
	// negative, or infinite) falls back to full child consumption.
	lOut, rOut := root.Left.OutCard(), root.Right.OutCard()
	clamp := func(v, lim float64) float64 {
		if math.IsNaN(v) || v < 0 || v > lim {
			return lim
		}
		return v
	}
	d.CL = clamp(d.CL, lOut)
	d.CR = clamp(d.CR, rOut)
	d.DL = clamp(d.DL, lOut)
	d.DR = clamp(d.DR, rOut)
	root.CL, root.CR, root.DL, root.DR = d.CL, d.CR, d.DL, d.DR

	childL, childR := d.DL, d.DR
	if mode == ModeAnyK {
		childL, childR = d.CL, d.CR
	}
	// Floor before clamping: a sub-1 estimate still demands one probe from
	// the child, but never more than the child can actually deliver — the
	// reverse order could push a child's required k above its own output.
	childL = math.Min(math.Max(childL, 1), lOut)
	childR = math.Min(math.Max(childR, 1), rOut)
	if err := Propagate(root.Left, childL, mode); err != nil {
		return err
	}
	return Propagate(root.Right, childR, mode)
}

// LeftDeep builds a left-deep rank-join tree over m base inputs, each with
// cardinality n and slab, with the same selectivity s at every join — the
// plan shape of the paper's experiments (Plan P).
func LeftDeep(m int, n, slab, s float64) (*Node, error) {
	if m < 2 {
		return nil, fmt.Errorf("estimate: left-deep tree needs >=2 inputs, got %d", m)
	}
	cur := Join(Leaf(n, slab), Leaf(n, slab), s)
	for i := 2; i < m; i++ {
		cur = Join(cur, Leaf(n, slab), s)
	}
	return cur, nil
}

// Balanced builds a balanced rank-join tree over m base inputs (m must be a
// power of two), matching plans like Figure 11's Plan P where two 2-way
// rank-joins feed a top rank-join.
func Balanced(m int, n, slab, s float64) (*Node, error) {
	if m < 2 || m&(m-1) != 0 {
		return nil, fmt.Errorf("estimate: balanced tree needs a power-of-two input count, got %d", m)
	}
	nodes := make([]*Node, m)
	for i := range nodes {
		nodes[i] = Leaf(n, slab)
	}
	for len(nodes) > 1 {
		next := make([]*Node, 0, len(nodes)/2)
		for i := 0; i < len(nodes); i += 2 {
			next = append(next, Join(nodes[i], nodes[i+1], s))
		}
		nodes = next
	}
	return nodes[0], nil
}

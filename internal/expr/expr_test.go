package expr

import (
	"math"
	"testing"
	"testing/quick"

	"rankopt/internal/relation"
)

func testSchema() *relation.Schema {
	return relation.NewSchema(
		relation.Column{Table: "A", Name: "c1", Kind: relation.KindFloat},
		relation.Column{Table: "A", Name: "c2", Kind: relation.KindInt},
		relation.Column{Table: "B", Name: "c2", Kind: relation.KindFloat},
	)
}

func evalOn(t *testing.T, e Expr, tup relation.Tuple) relation.Value {
	t.Helper()
	ev, err := e.Bind(testSchema())
	if err != nil {
		t.Fatalf("Bind(%s): %v", e, err)
	}
	v, err := ev(tup)
	if err != nil {
		t.Fatalf("eval(%s): %v", e, err)
	}
	return v
}

func TestColRefEval(t *testing.T) {
	tup := relation.Tuple{relation.Float(1.5), relation.Int(7), relation.Float(2.5)}
	if v := evalOn(t, Col("A", "c1"), tup); v.AsFloat() != 1.5 {
		t.Errorf("A.c1 = %v", v)
	}
	if v := evalOn(t, Col("B", "c2"), tup); v.AsFloat() != 2.5 {
		t.Errorf("B.c2 = %v", v)
	}
	if _, err := Col("Z", "c9").Bind(testSchema()); err == nil {
		t.Error("binding unknown column should fail")
	}
}

func TestArithmetic(t *testing.T) {
	tup := relation.Tuple{relation.Float(2), relation.Int(3), relation.Float(4)}
	cases := []struct {
		e    Expr
		want float64
	}{
		{Bin(OpAdd, Col("A", "c1"), Col("B", "c2")), 6},
		{Bin(OpSub, Col("B", "c2"), Col("A", "c1")), 2},
		{Bin(OpMul, FloatLit(0.5), Col("B", "c2")), 2},
		{Bin(OpDiv, Col("B", "c2"), Col("A", "c1")), 2},
		{Neg{Col("A", "c1")}, -2},
		{Bin(OpAdd, IntLit(2), IntLit(3)), 5},
	}
	for _, c := range cases {
		if v := evalOn(t, c.e, tup); v.AsFloat() != c.want {
			t.Errorf("%s = %v, want %v", c.e, v, c.want)
		}
	}
}

func TestIntArithmeticStaysInt(t *testing.T) {
	tup := relation.Tuple{relation.Float(0), relation.Int(3), relation.Float(0)}
	v := evalOn(t, Bin(OpMul, Col("A", "c2"), IntLit(4)), tup)
	if v.Kind() != relation.KindInt || v.AsInt() != 12 {
		t.Errorf("int*int = %v (%v)", v, v.Kind())
	}
}

func TestDivisionByZero(t *testing.T) {
	ev, err := Bin(OpDiv, IntLit(1), IntLit(0)).Bind(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev(relation.Tuple{relation.Null(), relation.Null(), relation.Null()}); err == nil {
		t.Error("division by zero should error")
	}
}

func TestComparisons(t *testing.T) {
	tup := relation.Tuple{relation.Float(2), relation.Int(3), relation.Float(2)}
	cases := []struct {
		e    Expr
		want bool
	}{
		{Bin(OpEq, Col("A", "c1"), Col("B", "c2")), true},
		{Bin(OpNe, Col("A", "c1"), Col("B", "c2")), false},
		{Bin(OpLt, Col("A", "c1"), Col("A", "c2")), true},
		{Bin(OpLe, Col("A", "c1"), Col("B", "c2")), true},
		{Bin(OpGt, Col("A", "c2"), Col("A", "c1")), true},
		{Bin(OpGe, Col("B", "c2"), Col("A", "c2")), false},
	}
	for _, c := range cases {
		if v := evalOn(t, c.e, tup); v.AsBool() != c.want {
			t.Errorf("%s = %v, want %v", c.e, v, c.want)
		}
	}
}

func TestBooleanShortCircuit(t *testing.T) {
	tup := relation.Tuple{relation.Float(1), relation.Int(1), relation.Float(1)}
	// Right side would divide by zero; AND with false left must not evaluate it.
	bad := Bin(OpGt, Bin(OpDiv, IntLit(1), IntLit(0)), IntLit(0))
	e := Bin(OpAnd, BoolLit(false), bad)
	if v := evalOn(t, e, tup); v.AsBool() {
		t.Error("false AND x should be false without evaluating x")
	}
	e = Bin(OpOr, BoolLit(true), bad)
	if v := evalOn(t, e, tup); !v.AsBool() {
		t.Error("true OR x should be true without evaluating x")
	}
}

func TestNullPropagation(t *testing.T) {
	tup := relation.Tuple{relation.Null(), relation.Int(3), relation.Float(4)}
	if v := evalOn(t, Bin(OpAdd, Col("A", "c1"), IntLit(1)), tup); !v.IsNull() {
		t.Error("NULL + 1 should be NULL")
	}
	if v := evalOn(t, Bin(OpEq, Col("A", "c1"), IntLit(1)), tup); !v.IsNull() {
		t.Error("NULL = 1 should be NULL")
	}
	ev, _ := Bin(OpEq, Col("A", "c1"), IntLit(1)).Bind(testSchema())
	ok, err := EvalBool(ev, tup)
	if err != nil || ok {
		t.Error("EvalBool must treat NULL as false")
	}
}

func TestConjunctsAndAnd(t *testing.T) {
	p1 := Bin(OpEq, Col("A", "c1"), Col("B", "c2"))
	p2 := Bin(OpGt, Col("A", "c2"), IntLit(0))
	p3 := Bin(OpLt, Col("A", "c2"), IntLit(9))
	all := And(p1, p2, p3)
	cs := Conjuncts(all)
	if len(cs) != 3 {
		t.Fatalf("Conjuncts returned %d", len(cs))
	}
	if !Equal(cs[0], p1) || !Equal(cs[2], p3) {
		t.Error("Conjuncts order/content mismatch")
	}
	if And() != nil {
		t.Error("And() should be nil")
	}
	if !Equal(And(nil, p2), p2) {
		t.Error("And skips nils")
	}
}

func TestEquiJoinCols(t *testing.T) {
	l, r, ok := EquiJoinCols(Bin(OpEq, Col("A", "c1"), Col("B", "c1")))
	if !ok || l.Table != "A" || r.Table != "B" {
		t.Error("should detect equi-join")
	}
	if _, _, ok := EquiJoinCols(Bin(OpEq, Col("A", "c1"), Col("A", "c2"))); ok {
		t.Error("same-table equality is not a join predicate")
	}
	if _, _, ok := EquiJoinCols(Bin(OpLt, Col("A", "c1"), Col("B", "c1"))); ok {
		t.Error("inequality is not an equi-join")
	}
	if _, _, ok := EquiJoinCols(Bin(OpEq, Col("A", "c1"), IntLit(3))); ok {
		t.Error("column=const is not a join predicate")
	}
}

func TestScoreSumCanonicalForm(t *testing.T) {
	a := Sum(
		ScoreTerm{0.3, Col("A", "c1")},
		ScoreTerm{0.7, Col("B", "c2")},
	)
	b := Sum(
		ScoreTerm{0.7, Col("B", "c2")},
		ScoreTerm{0.3, Col("A", "c1")},
	)
	if a.String() != b.String() {
		t.Errorf("canonical forms differ: %q vs %q", a.String(), b.String())
	}
	if !Equal(a, b) {
		t.Error("Equal should hold for reordered sums")
	}
	want := "0.3*A.c1 + 0.7*B.c2"
	if a.String() != want {
		t.Errorf("canonical form %q, want %q", a.String(), want)
	}
}

func TestScoreSumEval(t *testing.T) {
	s := Sum(
		ScoreTerm{0.3, Col("A", "c1")},
		ScoreTerm{0.7, Col("B", "c2")},
	)
	tup := relation.Tuple{relation.Float(1), relation.Int(0), relation.Float(2)}
	v := evalOn(t, s, tup)
	if math.Abs(v.AsFloat()-(0.3*1+0.7*2)) > 1e-12 {
		t.Errorf("score = %v", v)
	}
	// NULL input nullifies the whole score.
	tup[0] = relation.Null()
	if v := evalOn(t, s, tup); !v.IsNull() {
		t.Error("score over NULL should be NULL")
	}
}

func TestScoreSumSubsetAndTables(t *testing.T) {
	s := Sum(
		ScoreTerm{0.3, Col("A", "c1")},
		ScoreTerm{0.3, Col("B", "c1")},
		ScoreTerm{0.3, Col("C", "c1")},
	)
	sub := s.Subset(map[string]bool{"A": true, "C": true})
	if len(sub.Terms) != 2 {
		t.Fatalf("Subset kept %d terms", len(sub.Terms))
	}
	ts := Tables(sub)
	if len(ts) != 2 || ts[0] != "A" || ts[1] != "C" {
		t.Errorf("Tables = %v", ts)
	}
	if st := (ScoreTerm{1, Bin(OpAdd, Col("A", "x"), Col("B", "y"))}); st.Table() != "" {
		t.Error("mixed-table term has no single table")
	}
}

func TestColumnsCollection(t *testing.T) {
	e := Bin(OpAdd, Bin(OpMul, FloatLit(0.3), Col("A", "c1")), Neg{Col("B", "c2")})
	cols := Columns(e)
	if len(cols) != 2 || cols[0] != Col("A", "c1") || cols[1] != Col("B", "c2") {
		t.Errorf("Columns = %v", cols)
	}
}

// Property: ScoreSum evaluation is monotone in each input score — the
// monotonicity requirement rank-join correctness rests on.
func TestScoreSumMonotone(t *testing.T) {
	s := Sum(
		ScoreTerm{0.4, Col("A", "c1")},
		ScoreTerm{0.6, Col("B", "c2")},
	)
	ev, err := s.Bind(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, inc uint8) bool {
		t1 := relation.Tuple{relation.Float(float64(a)), relation.Int(0), relation.Float(float64(b))}
		t2 := relation.Tuple{relation.Float(float64(a) + float64(inc)), relation.Int(0), relation.Float(float64(b))}
		v1, _ := ev(t1)
		v2, _ := ev(t2)
		return v2.AsFloat() >= v1.AsFloat()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	if OpAdd.String() != "+" || OpNe.String() != "<>" || OpAnd.String() != "AND" {
		t.Error("Op.String mismatch")
	}
	if !OpLe.Comparison() || OpMul.Comparison() {
		t.Error("Comparison classification mismatch")
	}
}

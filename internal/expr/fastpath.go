package expr

import (
	"fmt"

	"rankopt/internal/relation"
)

// This file is the de-boxed predicate fast path for vectorized filters. The
// generic Bind machinery evaluates a comparison through three closure calls
// and a boxed Value round-trip per tuple; for the overwhelmingly common
// filter shapes — column against constant, column against column — CmpEval
// evaluates the same predicate with direct column loads and an inlined
// numeric compare. Semantics are identical to EvalBool over the bound
// expression: NULL on either side drops the tuple, incomparable kinds are an
// error.

// CmpEval is a compiled comparison predicate over one schema: tuple[li] OP
// tuple[ri], or tuple[li] OP konst when ri is negative. The zero value is
// not usable; obtain one from CompileCmp.
type CmpEval struct {
	op    Op
	li    int
	ri    int
	konst relation.Value
}

// flipped maps an operator to its mirror so "const OP col" normalizes to
// "col OP' const".
func flipped(op Op) Op {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default: // Eq and Ne are symmetric.
		return op
	}
}

// comparableKinds reports whether the comparison is statically well-typed:
// numeric against numeric, or same kind. Anything else falls back to the
// generic evaluator, which reports the proper error.
func comparableKinds(a, b relation.Kind) bool {
	num := func(k relation.Kind) bool { return k == relation.KindInt || k == relation.KindFloat }
	if num(a) && num(b) {
		return true
	}
	return a == b && a != relation.KindNull
}

// CompileCmp recognizes e as a comparison the fast path handles — ColRef OP
// Const, Const OP ColRef, or ColRef OP ColRef, with statically comparable
// kinds under sch — and compiles it. ok=false means the caller must use the
// generic Bind path.
func CompileCmp(e Expr, sch *relation.Schema) (CmpEval, bool) {
	b, isBin := e.(Binary)
	if !isBin || !b.Op.Comparison() {
		return CmpEval{}, false
	}
	resolve := func(c ColRef) (int, relation.Kind, bool) {
		i, err := sch.Resolve(c.Table, c.Name)
		if err != nil {
			return 0, relation.KindNull, false
		}
		return i, sch.Column(i).Kind, true
	}
	switch l := b.L.(type) {
	case ColRef:
		li, lk, ok := resolve(l)
		if !ok {
			return CmpEval{}, false
		}
		switch r := b.R.(type) {
		case Const:
			if r.V.IsNull() || !comparableKinds(lk, r.V.Kind()) {
				return CmpEval{}, false
			}
			return CmpEval{op: b.Op, li: li, ri: -1, konst: r.V}, true
		case ColRef:
			ri, rk, ok := resolve(r)
			if !ok || !comparableKinds(lk, rk) {
				return CmpEval{}, false
			}
			return CmpEval{op: b.Op, li: li, ri: ri}, true
		}
	case Const:
		r, isCol := b.R.(ColRef)
		if !isCol {
			return CmpEval{}, false
		}
		ri, rk, ok := resolve(r)
		if !ok || l.V.IsNull() || !comparableKinds(rk, l.V.Kind()) {
			return CmpEval{}, false
		}
		return CmpEval{op: flipped(b.Op), li: ri, ri: -1, konst: l.V}, true
	}
	return CmpEval{}, false
}

// Keep evaluates the predicate against one tuple: true keeps the tuple,
// false (including NULL on either side) drops it — EvalBool semantics
// without the closure tree or Value boxing.
func (p CmpEval) Keep(t relation.Tuple) (bool, error) {
	if p.li >= len(t) || p.ri >= len(t) {
		return false, fmt.Errorf("expr: tuple too short for compiled comparison (arity %d)", len(t))
	}
	lv := t[p.li]
	rv := p.konst
	if p.ri >= 0 {
		rv = t[p.ri]
	}
	if lv.IsNull() || rv.IsNull() {
		return false, nil
	}
	if !lv.Comparable(rv) {
		return false, fmt.Errorf("expr: cannot compare %v against %v", lv, rv)
	}
	cmp := lv.Compare(rv)
	switch p.op {
	case OpEq:
		return cmp == 0, nil
	case OpNe:
		return cmp != 0, nil
	case OpLt:
		return cmp < 0, nil
	case OpLe:
		return cmp <= 0, nil
	case OpGt:
		return cmp > 0, nil
	default: // OpGe; CompileCmp only accepts comparison operators.
		return cmp >= 0, nil
	}
}

// keepFloat applies op to an already-widened numeric pair.
func keepFloat(op Op, l, r float64) bool {
	switch op {
	case OpEq:
		return l == r
	case OpNe:
		return l != r
	case OpLt:
		return l < r
	case OpLe:
		return l <= r
	case OpGt:
		return l > r
	default: // OpGe
		return l >= r
	}
}

// errShortTuple and errIncomparable are the kernels' cold error paths,
// hoisted out so the loop bodies stay within inlining-friendly shapes.
func errShortTuple(n int) error {
	return fmt.Errorf("expr: tuple too short for compiled comparison (arity %d)", n)
}

func errIncomparable(l, r relation.Value) error {
	return fmt.Errorf("expr: cannot compare %v against %v", l, r)
}

// FilterAppend appends to dst every tuple of in that satisfies the
// predicate and returns the grown slice — the vectorized filter kernel. The
// dominant shape (numeric column against numeric constant) runs one
// specialized loop per comparison operator: a bounds check, an inlined
// Float64 load, and one float compare per tuple — measured at less than
// half the cost of a merged loop dispatching on the operator per row.
// Non-numeric predicates fall back to per-tuple Keep. Semantics match Keep
// exactly (NULL drops, incomparable kinds error).
func (p CmpEval) FilterAppend(dst, in []relation.Tuple) ([]relation.Tuple, error) {
	if p.ri < 0 {
		if c, ok := p.konst.Float64(); ok {
			li := p.li
			switch p.op {
			case OpEq:
				for i := range in {
					t := in[i]
					if li >= len(t) {
						return dst, errShortTuple(len(t))
					}
					if f, okf := t[li].Float64(); okf {
						if f == c {
							dst = append(dst, t)
						}
					} else if !t[li].IsNull() {
						return dst, errIncomparable(t[li], p.konst)
					}
				}
			case OpNe:
				for i := range in {
					t := in[i]
					if li >= len(t) {
						return dst, errShortTuple(len(t))
					}
					if f, okf := t[li].Float64(); okf {
						if f != c {
							dst = append(dst, t)
						}
					} else if !t[li].IsNull() {
						return dst, errIncomparable(t[li], p.konst)
					}
				}
			case OpLt:
				for i := range in {
					t := in[i]
					if li >= len(t) {
						return dst, errShortTuple(len(t))
					}
					if f, okf := t[li].Float64(); okf {
						if f < c {
							dst = append(dst, t)
						}
					} else if !t[li].IsNull() {
						return dst, errIncomparable(t[li], p.konst)
					}
				}
			case OpLe:
				for i := range in {
					t := in[i]
					if li >= len(t) {
						return dst, errShortTuple(len(t))
					}
					if f, okf := t[li].Float64(); okf {
						if f <= c {
							dst = append(dst, t)
						}
					} else if !t[li].IsNull() {
						return dst, errIncomparable(t[li], p.konst)
					}
				}
			case OpGt:
				for i := range in {
					t := in[i]
					if li >= len(t) {
						return dst, errShortTuple(len(t))
					}
					if f, okf := t[li].Float64(); okf {
						if f > c {
							dst = append(dst, t)
						}
					} else if !t[li].IsNull() {
						return dst, errIncomparable(t[li], p.konst)
					}
				}
			default: // OpGe
				for i := range in {
					t := in[i]
					if li >= len(t) {
						return dst, errShortTuple(len(t))
					}
					if f, okf := t[li].Float64(); okf {
						if f >= c {
							dst = append(dst, t)
						}
					} else if !t[li].IsNull() {
						return dst, errIncomparable(t[li], p.konst)
					}
				}
			}
			return dst, nil
		}
	} else {
		for _, t := range in {
			if p.li >= len(t) || p.ri >= len(t) {
				return dst, errShortTuple(len(t))
			}
			lf, okl := t[p.li].Float64()
			rf, okr := t[p.ri].Float64()
			if !okl || !okr {
				// NULL or non-numeric on either side: per-tuple Keep settles it.
				keep, err := p.Keep(t)
				if err != nil {
					return dst, err
				}
				if keep {
					dst = append(dst, t)
				}
				continue
			}
			if keepFloat(p.op, lf, rf) {
				dst = append(dst, t)
			}
		}
		return dst, nil
	}
	for _, t := range in {
		keep, err := p.Keep(t)
		if err != nil {
			return dst, err
		}
		if keep {
			dst = append(dst, t)
		}
	}
	return dst, nil
}

// ColIndex resolves e as a bare column reference under sch, for operators
// with a direct-load key fast path (the vectorized hash-join build).
func ColIndex(e Expr, sch *relation.Schema) (int, bool) {
	c, ok := e.(ColRef)
	if !ok {
		return -1, false
	}
	i, err := sch.Resolve(c.Table, c.Name)
	if err != nil {
		return -1, false
	}
	return i, true
}

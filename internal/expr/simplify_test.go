package expr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rankopt/internal/relation"
)

func TestSimplifyConstantFolding(t *testing.T) {
	cases := []struct {
		in   Expr
		want string
	}{
		{Bin(OpAdd, IntLit(2), IntLit(3)), "5"},
		{Bin(OpMul, FloatLit(0.5), FloatLit(4)), "2"},
		{Bin(OpLt, IntLit(1), IntLit(2)), "TRUE"},
		{Bin(OpEq, StrLit("a"), StrLit("b")), "FALSE"},
		{Neg{IntLit(5)}, "-5"},
		{Neg{Neg{Col("A", "x")}}, "A.x"},
		{Bin(OpAdd, Col("A", "x"), IntLit(0)), "A.x"},
		{Bin(OpAdd, FloatLit(0), Col("A", "x")), "A.x"},
		{Bin(OpMul, IntLit(1), Col("A", "x")), "A.x"},
		{Bin(OpMul, Col("A", "x"), FloatLit(1)), "A.x"},
		{Bin(OpSub, Col("A", "x"), IntLit(0)), "A.x"},
		{Bin(OpDiv, Col("A", "x"), IntLit(1)), "A.x"},
		{Bin(OpAnd, BoolLit(true), Bin(OpGt, Col("A", "x"), IntLit(0))), "(A.x > 0)"},
		{Bin(OpAnd, Bin(OpGt, Col("A", "x"), IntLit(0)), BoolLit(false)), "FALSE"},
		{Bin(OpOr, BoolLit(false), Bin(OpGt, Col("A", "x"), IntLit(0))), "(A.x > 0)"},
		{Bin(OpOr, BoolLit(true), Col("A", "x")), "TRUE"},
		// Nested: (2+3)*A.x stays but inner folds.
		{Bin(OpMul, Bin(OpAdd, IntLit(2), IntLit(3)), Col("A", "x")), "(5 * A.x)"},
	}
	for _, c := range cases {
		got := Simplify(c.in)
		if got.String() != c.want {
			t.Errorf("Simplify(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestSimplifyLeavesErrorsForRuntime(t *testing.T) {
	// 1/0 must NOT fold (would lose the error); it stays structurally intact.
	e := Bin(OpDiv, IntLit(1), IntLit(0))
	got := Simplify(e)
	if got.String() != e.String() {
		t.Errorf("division by zero should not fold: %s", got)
	}
	// NULL-producing comparisons stay too.
	n := Bin(OpEq, Const{relation.Null()}, IntLit(1))
	if Simplify(n).String() != n.String() {
		t.Error("NULL comparison should not fold")
	}
}

func TestSimplifyScoreSum(t *testing.T) {
	s := Sum(ScoreTerm{Weight: 0.5, E: Bin(OpAdd, Col("A", "x"), IntLit(0))})
	got := Simplify(s)
	if got.String() != "0.5*A.x" {
		t.Errorf("ScoreSum simplify = %s", got)
	}
}

// Property: simplification preserves semantics on random expressions.
func TestSimplifyPreservesSemantics(t *testing.T) {
	sch := relation.NewSchema(
		relation.Column{Table: "A", Name: "x", Kind: relation.KindFloat},
		relation.Column{Table: "A", Name: "y", Kind: relation.KindFloat},
	)
	// Random expression generator over +,-,*,comparisons with columns and
	// small constants.
	var gen func(rng *rand.Rand, depth int) Expr
	gen = func(rng *rand.Rand, depth int) Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			switch rng.Intn(4) {
			case 0:
				return Col("A", "x")
			case 1:
				return Col("A", "y")
			case 2:
				return IntLit(int64(rng.Intn(4)))
			default:
				return FloatLit(float64(rng.Intn(3)))
			}
		}
		ops := []Op{OpAdd, OpSub, OpMul}
		return Bin(ops[rng.Intn(len(ops))], gen(rng, depth-1), gen(rng, depth-1))
	}
	f := func(seed int64, xv, yv uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := gen(rng, 4)
		s := Simplify(e)
		tup := relation.Tuple{relation.Float(float64(xv)), relation.Float(float64(yv))}
		ev1, err1 := e.Bind(sch)
		ev2, err2 := s.Bind(sch)
		if err1 != nil || err2 != nil {
			return false
		}
		v1, err1 := ev1(tup)
		v2, err2 := ev2(tup)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		return v1.IsNull() == v2.IsNull() && (v1.IsNull() || v1.AsFloat() == v2.AsFloat())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

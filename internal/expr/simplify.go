package expr

import "rankopt/internal/relation"

// Simplify rewrites an expression into an equivalent, cheaper form:
// constant subtrees fold to literals, boolean identities collapse
// (TRUE AND e → e, FALSE AND e → FALSE, ...), double negation cancels, and
// numeric identities (e+0, e*1) drop the no-op. Expressions that would error
// when folded (e.g. 1/0) are left untouched so the failure surfaces at
// execution with full context.
func Simplify(e Expr) Expr {
	switch v := e.(type) {
	case Binary:
		l := Simplify(v.L)
		r := Simplify(v.R)
		out := Bin(v.Op, l, r)
		// Boolean identities.
		if v.Op == OpAnd || v.Op == OpOr {
			if b, ok := boolConst(l); ok {
				return simplifyBoolSide(v.Op, b, r)
			}
			if b, ok := boolConst(r); ok {
				return simplifyBoolSide(v.Op, b, l)
			}
			return out
		}
		// Numeric identities.
		if v.Op == OpAdd {
			if isZero(l) {
				return r
			}
			if isZero(r) {
				return l
			}
		}
		if v.Op == OpMul {
			if isOne(l) {
				return r
			}
			if isOne(r) {
				return l
			}
		}
		if v.Op == OpSub && isZero(r) {
			return l
		}
		if v.Op == OpDiv && isOne(r) {
			return l
		}
		// Constant folding.
		if lc, ok := l.(Const); ok {
			if rc, ok := r.(Const); ok {
				if folded, ok := foldBinary(v.Op, lc, rc); ok {
					return folded
				}
			}
		}
		return out
	case Neg:
		inner := Simplify(v.E)
		if n, ok := inner.(Neg); ok {
			return n.E
		}
		if c, ok := inner.(Const); ok && c.V.Numeric() {
			if c.V.Kind() == relation.KindInt {
				return IntLit(-c.V.AsInt())
			}
			return FloatLit(-c.V.AsFloat())
		}
		return Neg{E: inner}
	case ScoreSum:
		terms := make([]ScoreTerm, len(v.Terms))
		for i, t := range v.Terms {
			terms[i] = ScoreTerm{Weight: t.Weight, E: Simplify(t.E)}
		}
		return ScoreSum{Terms: terms}
	default:
		return e
	}
}

func boolConst(e Expr) (bool, bool) {
	c, ok := e.(Const)
	if !ok || c.V.Kind() != relation.KindBool {
		return false, false
	}
	return c.V.AsBool(), true
}

// simplifyBoolSide applies x AND e / x OR e identities for constant x.
func simplifyBoolSide(op Op, b bool, other Expr) Expr {
	switch {
	case op == OpAnd && b:
		return other
	case op == OpAnd && !b:
		return BoolLit(false)
	case op == OpOr && b:
		return BoolLit(true)
	default:
		return other
	}
}

func isZero(e Expr) bool {
	c, ok := e.(Const)
	return ok && c.V.Numeric() && c.V.AsFloat() == 0
}

func isOne(e Expr) bool {
	c, ok := e.(Const)
	return ok && c.V.Numeric() && c.V.AsFloat() == 1
}

// foldBinary evaluates a constant binary expression; ok=false when the
// evaluation would error (division by zero, type mismatch) or yields NULL.
func foldBinary(op Op, l, r Const) (Expr, bool) {
	ev, err := Bin(op, l, r).Bind(relation.NewSchema())
	if err != nil {
		return nil, false
	}
	v, err := ev(nil)
	if err != nil || v.IsNull() {
		return nil, false
	}
	return Const{V: v}, true
}

// Package expr implements scalar expressions over tuples: column references,
// constants, arithmetic, comparisons, boolean connectives, and weighted score
// sums. Expressions have a canonical string form used by the optimizer to
// match interesting order expressions (Definition 1 in the paper), and they
// bind against a schema into closed evaluators for execution.
package expr

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"rankopt/internal/relation"
)

// Eval is a bound expression: it evaluates against a tuple of the schema the
// expression was bound to.
type Eval func(t relation.Tuple) (relation.Value, error)

// Expr is a scalar expression tree node.
type Expr interface {
	// String renders the canonical form of the expression. Two expressions
	// are considered identical by the optimizer iff their canonical forms
	// are equal.
	String() string
	// Bind resolves column references against sch and returns an evaluator.
	Bind(sch *relation.Schema) (Eval, error)
	// AddColumns appends every column referenced by the expression to dst.
	AddColumns(dst []ColRef) []ColRef
}

// Columns returns all column references in e.
func Columns(e Expr) []ColRef { return e.AddColumns(nil) }

// Tables returns the sorted set of table qualifiers referenced by e.
func Tables(e Expr) []string {
	set := map[string]bool{}
	for _, c := range Columns(e) {
		if c.Table != "" {
			set[c.Table] = true
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Equal reports whether two expressions have the same canonical form.
func Equal(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.String() == b.String()
}

// ColRef references a column, optionally qualified by table name/alias.
type ColRef struct {
	Table string
	Name  string
}

// Col constructs a column reference expression.
func Col(table, name string) ColRef { return ColRef{Table: table, Name: name} }

// String implements Expr.
func (c ColRef) String() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Bind implements Expr.
func (c ColRef) Bind(sch *relation.Schema) (Eval, error) {
	i, err := sch.Resolve(c.Table, c.Name)
	if err != nil {
		return nil, err
	}
	return func(t relation.Tuple) (relation.Value, error) {
		if i >= len(t) {
			return relation.Null(), fmt.Errorf("expr: tuple too short for column %s (index %d)", c, i)
		}
		return t[i], nil
	}, nil
}

// AddColumns implements Expr.
func (c ColRef) AddColumns(dst []ColRef) []ColRef { return append(dst, c) }

// Const is a literal value.
type Const struct{ V relation.Value }

// IntLit, FloatLit, StrLit, BoolLit construct literal expressions.
func IntLit(v int64) Const     { return Const{relation.Int(v)} }
func FloatLit(v float64) Const { return Const{relation.Float(v)} }
func StrLit(v string) Const    { return Const{relation.String_(v)} }
func BoolLit(v bool) Const     { return Const{relation.Bool(v)} }

// String implements Expr.
func (c Const) String() string {
	// Render floats compactly so 0.3 stays "0.3".
	if c.V.Kind() == relation.KindFloat {
		return strconv.FormatFloat(c.V.AsFloat(), 'g', -1, 64)
	}
	return c.V.String()
}

// Bind implements Expr.
func (c Const) Bind(*relation.Schema) (Eval, error) {
	v := c.V
	return func(relation.Tuple) (relation.Value, error) { return v, nil }, nil
}

// AddColumns implements Expr.
func (c Const) AddColumns(dst []ColRef) []ColRef { return dst }

// Op enumerates binary operators.
type Op uint8

// Binary operators.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR",
}

// String returns the SQL spelling of the operator.
func (o Op) String() string { return opNames[o] }

// Comparison reports whether the operator yields a boolean from two scalars.
func (o Op) Comparison() bool { return o >= OpEq && o <= OpGe }

// Binary applies Op to two subexpressions.
type Binary struct {
	Op   Op
	L, R Expr
}

// Bin constructs a binary expression.
func Bin(op Op, l, r Expr) Binary { return Binary{Op: op, L: l, R: r} }

// String implements Expr.
func (b Binary) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

// AddColumns implements Expr.
func (b Binary) AddColumns(dst []ColRef) []ColRef {
	return b.R.AddColumns(b.L.AddColumns(dst))
}

// Bind implements Expr.
func (b Binary) Bind(sch *relation.Schema) (Eval, error) {
	le, err := b.L.Bind(sch)
	if err != nil {
		return nil, err
	}
	re, err := b.R.Bind(sch)
	if err != nil {
		return nil, err
	}
	op := b.Op
	return func(t relation.Tuple) (relation.Value, error) {
		lv, err := le(t)
		if err != nil {
			return relation.Null(), err
		}
		// Short-circuit boolean connectives.
		if op == OpAnd || op == OpOr {
			if lv.IsNull() {
				return relation.Null(), nil
			}
			lb := lv.AsBool()
			if op == OpAnd && !lb {
				return relation.Bool(false), nil
			}
			if op == OpOr && lb {
				return relation.Bool(true), nil
			}
			rv, err := re(t)
			if err != nil {
				return relation.Null(), err
			}
			if rv.IsNull() {
				return relation.Null(), nil
			}
			return relation.Bool(rv.AsBool()), nil
		}
		rv, err := re(t)
		if err != nil {
			return relation.Null(), err
		}
		if lv.IsNull() || rv.IsNull() {
			return relation.Null(), nil
		}
		if op.Comparison() {
			if !lv.Comparable(rv) {
				return relation.Null(), fmt.Errorf("expr: cannot compare %v against %v", lv, rv)
			}
			cmp := lv.Compare(rv)
			switch op {
			case OpEq:
				return relation.Bool(cmp == 0), nil
			case OpNe:
				return relation.Bool(cmp != 0), nil
			case OpLt:
				return relation.Bool(cmp < 0), nil
			case OpLe:
				return relation.Bool(cmp <= 0), nil
			case OpGt:
				return relation.Bool(cmp > 0), nil
			case OpGe:
				return relation.Bool(cmp >= 0), nil
			}
		}
		// Arithmetic.
		if !lv.Numeric() || !rv.Numeric() {
			return relation.Null(), fmt.Errorf("expr: arithmetic %s on non-numeric values %v, %v", op, lv, rv)
		}
		if lv.Kind() == relation.KindInt && rv.Kind() == relation.KindInt && op != OpDiv {
			a, bi := lv.AsInt(), rv.AsInt()
			switch op {
			case OpAdd:
				return relation.Int(a + bi), nil
			case OpSub:
				return relation.Int(a - bi), nil
			case OpMul:
				return relation.Int(a * bi), nil
			}
		}
		a, bf := lv.AsFloat(), rv.AsFloat()
		switch op {
		case OpAdd:
			return relation.Float(a + bf), nil
		case OpSub:
			return relation.Float(a - bf), nil
		case OpMul:
			return relation.Float(a * bf), nil
		case OpDiv:
			if bf == 0 {
				return relation.Null(), fmt.Errorf("expr: division by zero")
			}
			return relation.Float(a / bf), nil
		}
		return relation.Null(), fmt.Errorf("expr: unsupported operator %v", op)
	}, nil
}

// Neg negates a numeric expression.
type Neg struct{ E Expr }

// String implements Expr.
func (n Neg) String() string { return "(-" + n.E.String() + ")" }

// AddColumns implements Expr.
func (n Neg) AddColumns(dst []ColRef) []ColRef { return n.E.AddColumns(dst) }

// Bind implements Expr.
func (n Neg) Bind(sch *relation.Schema) (Eval, error) {
	e, err := n.E.Bind(sch)
	if err != nil {
		return nil, err
	}
	return func(t relation.Tuple) (relation.Value, error) {
		v, err := e(t)
		if err != nil || v.IsNull() {
			return relation.Null(), err
		}
		if v.Kind() == relation.KindInt {
			return relation.Int(-v.AsInt()), nil
		}
		return relation.Float(-v.AsFloat()), nil
	}, nil
}

// Conjuncts splits an expression into its top-level AND conjuncts.
func Conjuncts(e Expr) []Expr {
	if b, ok := e.(Binary); ok && b.Op == OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// And combines conjuncts into a single expression; returns nil for empty.
func And(conjs ...Expr) Expr {
	var out Expr
	for _, c := range conjs {
		if c == nil {
			continue
		}
		if out == nil {
			out = c
		} else {
			out = Bin(OpAnd, out, c)
		}
	}
	return out
}

// EquiJoinCols reports whether e is an equality between two column
// references on different tables, returning both sides if so.
func EquiJoinCols(e Expr) (l, r ColRef, ok bool) {
	b, isBin := e.(Binary)
	if !isBin || b.Op != OpEq {
		return
	}
	lc, lok := b.L.(ColRef)
	rc, rok := b.R.(ColRef)
	if !lok || !rok || lc.Table == rc.Table {
		return
	}
	return lc, rc, true
}

// EvalBool binds and evaluates e as a boolean predicate helper for tests and
// simple filters; NULL counts as false.
func EvalBool(ev Eval, t relation.Tuple) (bool, error) {
	v, err := ev(t)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	return v.AsBool(), nil
}

// ScoreTerm is one weighted per-table component of a ranking function:
// Weight * E, where E references columns of exactly one table.
type ScoreTerm struct {
	Weight float64
	E      Expr
}

// String renders "w*expr" with compact float formatting.
func (s ScoreTerm) String() string {
	return strconv.FormatFloat(s.Weight, 'g', -1, 64) + "*" + s.E.String()
}

// Table returns the single table the term references, or "" if mixed/none.
func (s ScoreTerm) Table() string {
	ts := Tables(s.E)
	if len(ts) != 1 {
		return ""
	}
	return ts[0]
}

// ScoreSum is a monotone linear combination of score terms — the paper's
// combining function f(s1,...,sn) = Σ w_i·s_i. Its canonical form sorts the
// terms, so 0.3*A.c1+0.7*B.c2 and 0.7*B.c2+0.3*A.c1 are the same order
// expression.
type ScoreSum struct {
	Terms []ScoreTerm
}

// Sum constructs a ScoreSum from terms.
func Sum(terms ...ScoreTerm) ScoreSum { return ScoreSum{Terms: terms} }

// String implements Expr with canonical (sorted) term order.
func (s ScoreSum) String() string {
	parts := make([]string, len(s.Terms))
	for i, t := range s.Terms {
		parts[i] = t.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, " + ")
}

// AddColumns implements Expr.
func (s ScoreSum) AddColumns(dst []ColRef) []ColRef {
	for _, t := range s.Terms {
		dst = t.E.AddColumns(dst)
	}
	return dst
}

// Bind implements Expr.
func (s ScoreSum) Bind(sch *relation.Schema) (Eval, error) {
	evals := make([]Eval, len(s.Terms))
	weights := make([]float64, len(s.Terms))
	for i, t := range s.Terms {
		e, err := t.E.Bind(sch)
		if err != nil {
			return nil, err
		}
		evals[i] = e
		weights[i] = t.Weight
	}
	return func(t relation.Tuple) (relation.Value, error) {
		total := 0.0
		for i, ev := range evals {
			v, err := ev(t)
			if err != nil {
				return relation.Null(), err
			}
			if v.IsNull() {
				return relation.Null(), nil
			}
			total += weights[i] * v.AsFloat()
		}
		return relation.Float(total), nil
	}, nil
}

// Subset returns a new ScoreSum containing only the terms whose table is in
// tables. The result preserves term order.
func (s ScoreSum) Subset(tables map[string]bool) ScoreSum {
	var out []ScoreTerm
	for _, t := range s.Terms {
		if tables[t.Table()] {
			out = append(out, t)
		}
	}
	return ScoreSum{Terms: out}
}

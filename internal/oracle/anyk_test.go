package oracle

import (
	"fmt"
	"testing"

	"rankopt/internal/core"
	"rankopt/internal/exec"
	"rankopt/internal/plan"
	"rankopt/internal/sqlparse"
	"rankopt/internal/workload"
)

// TestAnyKDifferentialCorpus runs the any-k pass over the fixed seed corpus:
// with the competing ranked operators disabled, every case must enumerate at
// least one AnyK plan (no silent fallback) and every such plan must agree
// with brute force through both execution drains.
func TestAnyKDifferentialCorpus(t *testing.T) {
	n := corpusSize()
	plans := 0
	for seed := int64(1); seed <= int64(n); seed++ {
		c := Generate(seed)
		rep, err := RunAnyK(c)
		if err != nil {
			writeReproducer(t, c, err)
			t.Fatalf("anyk oracle disagreement: %v", err)
		}
		plans += rep.AnyKPlans
	}
	t.Logf("anyk oracle: %d queries, %d AnyK plans executed, all agreed", n, plans)
	if plans < n {
		t.Fatalf("fewer AnyK plans than queries: %d over %d", plans, n)
	}
}

// anyKWinCase builds a query shape where the any-k enumerator should be the
// DP winner: unordered inputs with a moderate fan-out, where HRJN-family
// plans pay for ranked access and buffer combinatorial partials.
type anyKWinCase struct {
	name string
	m    int
	n    int
	sel  float64
	k    int
	star bool
}

func (w anyKWinCase) build(seed int64) (*Case, string) {
	cat, names := workload.RankedSet(w.m, workload.RankedConfig{
		N: w.n, Selectivity: w.sel, Seed: seed,
	})
	sql := "SELECT * FROM "
	for i, name := range names {
		if i > 0 {
			sql += ", "
		}
		sql += name
	}
	sql += " WHERE "
	for i := 1; i < w.m; i++ {
		if i > 1 {
			sql += " AND "
		}
		if w.star {
			// Star: every spoke joins the hub table.
			sql += fmt.Sprintf("%s.key = %s.key", names[0], names[i])
		} else {
			// Chain: each table joins its predecessor.
			sql += fmt.Sprintf("%s.key = %s.key", names[i-1], names[i])
		}
	}
	sql += " ORDER BY "
	for i, name := range names {
		if i > 0 {
			sql += " + "
		}
		sql += name + ".score"
	}
	sql += fmt.Sprintf(" DESC LIMIT %d", w.k)
	c := &Case{Seed: seed, SQL: sql, Tables: w.m, K: w.k, cat: cat, names: names}
	return c, sql
}

// TestAnyKWinsPlanChoice pins the planner crossover: on 3- and 4-way chains
// and stars over unordered data with a real per-key fan-out, the DP must pick
// an AnyK plan under *default* options — no competitor disabled — and that
// winning plan must agree with brute force.
func TestAnyKWinsPlanChoice(t *testing.T) {
	cases := []anyKWinCase{
		// m=3 needs the deep-dig regime (low selectivity, larger k) before
		// the any-k build beats HRJN's depth cost; m=4 crosses over already
		// at small k because the eager combine explodes with width.
		{name: "chain3", m: 3, n: 400, sel: 0.01, k: 50},
		{name: "chain4", m: 4, n: 300, sel: 0.02, k: 10},
		{name: "star3", m: 3, n: 400, sel: 0.01, k: 50, star: true},
		{name: "star4", m: 4, n: 300, sel: 0.02, k: 10, star: true},
	}
	for _, w := range cases {
		w := w
		t.Run(w.name, func(t *testing.T) {
			c, sql := w.build(4242)
			q, err := sqlparse.Parse(sql)
			if err != nil {
				t.Fatalf("parse %q: %v", sql, err)
			}
			res, err := core.Optimize(c.cat, q, core.Options{})
			if err != nil {
				t.Fatalf("optimize: %v", err)
			}
			if res.Best.CountOps(plan.OpAnyK) == 0 {
				t.Fatalf("DP did not pick AnyK for %s:\n%s", sql, plan.Explain(res.Best))
			}
			want, err := c.reference(q)
			if err != nil {
				t.Fatal(err)
			}
			op, err := plan.Compile(c.cat, res.Best)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			tuples, err := exec.Collect(op)
			if err != nil {
				t.Fatalf("execute: %v", err)
			}
			got := make([]float64, len(tuples))
			for i, tup := range tuples {
				got[i] = tup[len(tup)-2].AsFloat()
			}
			if err := compareScores(want, got); err != nil {
				t.Fatalf("winning AnyK plan disagrees with brute force: %v", err)
			}
			// The greedy fast path must also surface the any-k candidate on
			// this shape (it compares the full-mask enumerator against its
			// left-deep walk).
			gres, err := core.Optimize(c.cat, q, core.Options{Planner: core.PlannerGreedy})
			if err != nil {
				t.Fatalf("greedy optimize: %v", err)
			}
			if gres.Best.CountOps(plan.OpAnyK) == 0 {
				t.Logf("note: greedy picked a non-AnyK plan:\n%s", plan.Explain(gres.Best))
			}
		})
	}
}

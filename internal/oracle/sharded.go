package oracle

import (
	"fmt"

	"rankopt/internal/catalog"
	"rankopt/internal/engine"
	"rankopt/internal/sqlparse"
)

// ShardReport summarizes one sharded differential run.
type ShardReport struct {
	SQL string
	// Counts are the shard counts exercised.
	Counts []int
	// Sharded is how many of those runs actually took the scatter-gather
	// path (vs falling back to the single-engine path).
	Sharded int
	// Results is the agreed result count.
	Results int
}

// RunSharded executes the case through full engines — one unsharded, one per
// shard count — and asserts every top-k score sequence agrees with the
// brute-force reference. The catalog is hash-partitioned on the join key, so
// every generated query (chain equi-joins on "key") is co-partitioned and
// eligible for the scatter-gather path; a run that nonetheless falls back is
// still checked for correctness but not counted as sharded.
func RunSharded(c Case, counts ...int) (ShardReport, error) {
	q, err := sqlparse.Parse(c.SQL)
	if err != nil {
		return ShardReport{}, fmt.Errorf("seed %d: parse %q: %w", c.Seed, c.SQL, err)
	}
	want, err := c.reference(q)
	if err != nil {
		return ShardReport{}, err
	}
	for _, name := range c.names {
		spec := catalog.PartitionSpec{Column: "key", Kind: catalog.PartitionHash}
		if err := c.cat.SetPartition(name, spec); err != nil {
			return ShardReport{}, fmt.Errorf("seed %d: partition %s: %w", c.Seed, name, err)
		}
	}

	rep := ShardReport{SQL: c.SQL, Counts: counts, Results: len(want)}
	check := func(label string, eng *engine.Engine, wantSharded bool) error {
		if err := eng.ShardError(); err != nil {
			return fmt.Errorf("seed %d %s: %w", c.Seed, label, err)
		}
		resp := eng.Run(engine.Request{ID: label, SQL: c.SQL})
		if resp.Err != nil {
			return fmt.Errorf("seed %d %s: %w", c.Seed, label, resp.Err)
		}
		got := make([]float64, len(resp.Tuples))
		for i, t := range resp.Tuples {
			// SELECT * keeps the RankAssign layout: score at len-2, rank last.
			got[i] = t[len(t)-2].AsFloat()
		}
		if err := compareScores(want, got); err != nil {
			return fmt.Errorf("seed %d %s: %w\nquery: %s", c.Seed, label, err, c.SQL)
		}
		if resp.Sharded {
			rep.Sharded++
		} else if wantSharded {
			return fmt.Errorf("seed %d %s: fell back to the single-engine path\nquery: %s",
				c.Seed, label, c.SQL)
		}
		return nil
	}

	single := engine.NewWithConfig(c.cat, engine.Config{})
	if err := check("unsharded", single, false); err != nil {
		return ShardReport{}, err
	}
	for _, n := range counts {
		eng := engine.NewWithConfig(c.cat, engine.Config{Shards: n})
		if err := check(fmt.Sprintf("shards=%d", n), eng, true); err != nil {
			return ShardReport{}, err
		}
	}
	return rep, nil
}

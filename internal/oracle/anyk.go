package oracle

import (
	"context"
	"fmt"

	"rankopt/internal/core"
	"rankopt/internal/exec"
	"rankopt/internal/plan"
	"rankopt/internal/sqlparse"
)

// AnyKReport summarizes one any-k differential run.
type AnyKReport struct {
	SQL string
	// AnyKPlans is how many enumerated alternatives contained an AnyK
	// operator; every one executed and agreed with brute force.
	AnyKPlans int
	// Results is the agreed result count.
	Results int
}

// RunAnyK is the any-k-focused differential pass: optimize the case with the
// competing ranked operators disabled (HRJN, NRJN, and the TA aggregate) so
// the any-k enumerator must carry the ranked property class, assert the
// enumeration actually produced AnyK plans — a silent fallback to sort plans
// would turn this harness into a no-op — and execute every AnyK-bearing plan
// through both the batch and the scalar-reference drains against the
// brute-force answer.
func RunAnyK(c Case) (AnyKReport, error) {
	q, err := sqlparse.Parse(c.SQL)
	if err != nil {
		return AnyKReport{}, fmt.Errorf("seed %d: parse %q: %w", c.Seed, c.SQL, err)
	}
	want, err := c.reference(q)
	if err != nil {
		return AnyKReport{}, err
	}

	res, err := core.Optimize(c.cat, q, core.Options{
		CollectAllPlans:      true,
		DisableHRJN:          true,
		DisableNRJN:          true,
		DisableRankAggregate: true,
	})
	if err != nil {
		return AnyKReport{}, fmt.Errorf("seed %d: optimize %q: %w", c.Seed, c.SQL, err)
	}
	anyk := 0
	for pi, root := range res.AllPlans {
		if root.CountOps(plan.OpAnyK) == 0 {
			continue
		}
		anyk++
		op, err := plan.Compile(c.cat, root)
		if err != nil {
			return AnyKReport{}, fmt.Errorf("seed %d anyk plan %d: compile: %w\n%s", c.Seed, pi, err, plan.Explain(root))
		}
		tuples, err := exec.Collect(op)
		if err != nil {
			return AnyKReport{}, fmt.Errorf("seed %d anyk plan %d: execute: %w\n%s", c.Seed, pi, err, plan.Explain(root))
		}
		opRef, err := plan.CompileWith(c.cat, root, plan.Config{ScalarRef: true})
		if err != nil {
			return AnyKReport{}, fmt.Errorf("seed %d anyk plan %d: recompile: %w\n%s", c.Seed, pi, err, plan.Explain(root))
		}
		ref, err := exec.CollectPerTupleCtx(context.Background(), opRef)
		if err != nil {
			return AnyKReport{}, fmt.Errorf("seed %d anyk plan %d: per-tuple execute: %w\n%s", c.Seed, pi, err, plan.Explain(root))
		}
		if err := compareTuples(ref, tuples); err != nil {
			return AnyKReport{}, fmt.Errorf("seed %d anyk plan %d: batch vs per-tuple: %w\nquery: %s\n%s",
				c.Seed, pi, err, c.SQL, plan.Explain(root))
		}
		got := make([]float64, len(tuples))
		for i, t := range tuples {
			got[i] = t[len(t)-2].AsFloat()
		}
		if err := compareScores(want, got); err != nil {
			return AnyKReport{}, fmt.Errorf("seed %d anyk plan %d: %w\nquery: %s\n%s",
				c.Seed, pi, err, c.SQL, plan.Explain(root))
		}
	}
	if anyk == 0 {
		return AnyKReport{}, fmt.Errorf("seed %d: no AnyK plan enumerated — silent fallback\nquery: %s\nbest:\n%s",
			c.Seed, c.SQL, plan.Explain(res.Best))
	}
	return AnyKReport{SQL: c.SQL, AnyKPlans: anyk, Results: len(want)}, nil
}

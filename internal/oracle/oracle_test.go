package oracle

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// -quick shrinks the corpus for CI smoke runs (also triggered by -short).
var quick = flag.Bool("quick", false, "run the reduced oracle corpus")

// corpusSize returns how many seeded cases to run.
func corpusSize() int {
	if *quick || testing.Short() {
		return 40
	}
	return 200
}

// TestDifferentialCorpus runs the fixed seed corpus: every optimizer
// alternative of every generated query must agree with brute force on the
// top-k score sequence. Failures drop a reproducer file under
// oracle_failures/ (seed + SQL + error) for CI artifact upload.
func TestDifferentialCorpus(t *testing.T) {
	n := corpusSize()
	plans := 0
	for seed := int64(1); seed <= int64(n); seed++ {
		c := Generate(seed)
		rep, err := Run(c)
		if err != nil {
			writeReproducer(t, c, err)
			t.Fatalf("oracle disagreement: %v", err)
		}
		plans += rep.Plans
	}
	t.Logf("oracle: %d queries, %d plans executed, all agreed", n, plans)
	if plans < n {
		t.Fatalf("suspiciously few plans executed: %d over %d queries", plans, n)
	}
}

// TestShardedDifferentialCorpus runs every corpus case through full engines
// at shard counts 1, 2, and 4 plus an unsharded engine, asserting all four
// top-k score sequences match the brute-force reference. Shard count 1 is the
// degenerate coordinator (one shard holding everything); 2 and 4 exercise
// real partitioning, per-shard planning, and the early-stop merge.
func TestShardedDifferentialCorpus(t *testing.T) {
	n := corpusSize()
	sharded := 0
	for seed := int64(1); seed <= int64(n); seed++ {
		c := Generate(seed)
		rep, err := RunSharded(c, 1, 2, 4)
		if err != nil {
			writeReproducer(t, c, err)
			t.Fatalf("sharded oracle disagreement: %v", err)
		}
		sharded += rep.Sharded
	}
	t.Logf("sharded oracle: %d queries x 3 shard counts, %d sharded runs, all agreed", n, sharded)
	if sharded != 3*n {
		t.Fatalf("expected every run to shard: %d of %d", sharded, 3*n)
	}
}

// TestGenerateDeterministic pins that a seed reproduces its case exactly —
// the property that makes a one-line reproducer sufficient.
func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		a, b := Generate(seed), Generate(seed)
		if a.SQL != b.SQL || a.Tables != b.Tables || a.K != b.K {
			t.Fatalf("seed %d not deterministic:\n%s\n%s", seed, a.SQL, b.SQL)
		}
	}
}

// TestCorpusCoversShapes checks the generator actually exercises the space:
// all join widths, some filters, some non-unit weights.
func TestCorpusCoversShapes(t *testing.T) {
	widths := map[int]int{}
	withFilter, withWeight := 0, 0
	for seed := int64(1); seed <= 200; seed++ {
		c := Generate(seed)
		widths[c.Tables]++
		if containsFilter(c.SQL) {
			withFilter++
		}
		if containsWeight(c.SQL) {
			withWeight++
		}
	}
	for _, w := range []int{2, 3, 4} {
		if widths[w] == 0 {
			t.Errorf("no %d-way queries in the corpus", w)
		}
	}
	if withFilter == 0 {
		t.Error("no filtered queries in the corpus")
	}
	if withWeight == 0 {
		t.Error("no weighted-score queries in the corpus")
	}
}

func containsFilter(sql string) bool {
	return len(sql) > 0 && (stringContains(sql, ".id < "))
}

func containsWeight(sql string) bool {
	return stringContains(sql, "* ")
}

func stringContains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// writeReproducer records a failing case for CI artifact upload.
func writeReproducer(t *testing.T, c Case, failure error) {
	t.Helper()
	dir := "oracle_failures"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("cannot create %s: %v", dir, err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("seed_%d.txt", c.Seed))
	body := fmt.Sprintf("seed: %d\ntables: %d\nk: %d\nsql: %s\nerror: %v\n\nreproduce with:\n  go test ./internal/oracle -run TestReproduceSeed -seed %d\n",
		c.Seed, c.Tables, c.K, c.SQL, failure, c.Seed)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Logf("cannot write reproducer: %v", err)
		return
	}
	t.Logf("reproducer written to %s", path)
}

// -seed reruns one corpus case in isolation (see reproducer files).
var seedFlag = flag.Int64("seed", 0, "single oracle seed to reproduce")

// TestReproduceSeed replays one seed when -seed is given; otherwise it is a
// no-op so the normal suite ignores it.
func TestReproduceSeed(t *testing.T) {
	if *seedFlag == 0 {
		t.Skip("pass -seed N to replay a corpus case")
	}
	c := Generate(*seedFlag)
	t.Logf("sql: %s", c.SQL)
	if _, err := Run(c); err != nil {
		t.Fatal(err)
	}
}

// Package oracle is the differential-testing harness for the optimizer and
// executor: it generates random multi-way top-k rank-join queries over
// seeded synthetic data, executes EVERY plan the optimizer enumerated (not
// just the winner), computes the answer a trusted brute-force evaluator
// produces, and asserts that all of them agree on the top-k score sequence.
// Plan-enumeration bugs, rank-join threshold bugs, enforcer bugs, and cost
// model crashes all surface as a disagreement with a one-line reproducer
// (the seed).
package oracle

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"rankopt/internal/catalog"
	"rankopt/internal/core"
	"rankopt/internal/exec"
	"rankopt/internal/expr"
	"rankopt/internal/logical"
	"rankopt/internal/plan"
	"rankopt/internal/relation"
	"rankopt/internal/sqlparse"
	"rankopt/internal/workload"
)

// Case is one generated oracle scenario: a catalog and a query over it.
type Case struct {
	// Seed reproduces the case completely.
	Seed int64
	// SQL is the generated query text.
	SQL string
	// Tables is the join width (2..4).
	Tables int
	// K is the LIMIT bound.
	K int

	cat   *catalog.Catalog
	names []string
}

// Report summarizes one successful differential run.
type Report struct {
	SQL string
	// Plans is how many alternatives were executed and cross-checked.
	Plans int
	// Results is the agreed result count (min(k, join size)).
	Results int
	// GreedyFallback reports whether the greedy planner cross-check fell
	// back to the DP for this case (single-table shapes do).
	GreedyFallback bool
}

// scoreTerm is one weighted table contribution of the generated query.
type scoreTerm struct {
	table  string
	weight float64
}

// Generate builds a random case from the seed: 2–4 tables (narrower tables
// for wider joins), varying join selectivity and score distribution, chain
// equi-joins on the shared key column, weighted descending score, LIMIT
// 1–15, and sometimes a single-table filter.
func Generate(seed int64) Case {
	rng := rand.New(rand.NewSource(seed))
	m := 2 + rng.Intn(3)
	// Row counts shrink as join width grows: the expected join output is
	// about n^m * sel^(m-1) and every sort-based alternative materializes it
	// in full, so these caps keep the worst case near 20k tuples — small
	// enough that executing every enumerated plan across the whole corpus
	// stays in seconds.
	var n int
	switch m {
	case 2:
		n = 50 + rng.Intn(151)
	case 3:
		n = 30 + rng.Intn(51)
	default:
		n = 20 + rng.Intn(21)
	}
	sel := []float64{0.02, 0.05, 0.1, 0.2}[rng.Intn(4)]
	dist := []workload.ScoreDist{
		workload.DistUniform, workload.DistGaussian,
		workload.DistPowerLow, workload.DistPowerHigh,
	}[rng.Intn(4)]
	cat, names := workload.RankedSet(m, workload.RankedConfig{
		N: n, Selectivity: sel, Seed: seed * 31, Dist: dist,
	})

	var b strings.Builder
	b.WriteString("SELECT * FROM ")
	b.WriteString(strings.Join(names, ", "))
	b.WriteString(" WHERE ")
	var conjs []string
	for i := 1; i < m; i++ {
		conjs = append(conjs, fmt.Sprintf("%s.key = %s.key", names[i-1], names[i]))
	}
	var filterTable string
	var filterIDBound int64
	if rng.Intn(3) == 0 {
		// A single-table filter on the unique id column: selectivity is
		// exact and the brute-force evaluator applies the same cut.
		filterTable = names[rng.Intn(m)]
		filterIDBound = int64(n/2 + rng.Intn(n/2))
		conjs = append(conjs, fmt.Sprintf("%s.id < %d", filterTable, filterIDBound))
	}
	b.WriteString(strings.Join(conjs, " AND "))
	b.WriteString(" ORDER BY ")
	terms := make([]scoreTerm, m)
	var parts []string
	for i, name := range names {
		w := []float64{0.5, 1, 1.5, 2}[rng.Intn(4)]
		terms[i] = scoreTerm{table: name, weight: w}
		if w == 1 {
			parts = append(parts, name+".score")
		} else {
			// 'f' format keeps the literal lexable (no exponent notation).
			parts = append(parts, strconv.FormatFloat(w, 'f', -1, 64)+" * "+name+".score")
		}
	}
	b.WriteString(strings.Join(parts, " + "))
	k := 1 + rng.Intn(15)
	fmt.Fprintf(&b, " DESC LIMIT %d", k)

	return Case{Seed: seed, SQL: b.String(), Tables: m, K: k, cat: cat, names: names}
}

// bruteForce computes the reference top-k score sequence: join every table
// combination sharing a key (applying the query's filters), sum the weighted
// scores, sort descending, cut at k. Plain Go over raw tuples — no operator
// under test participates.
func (c Case) bruteForce(terms []scoreTerm, filters map[string]int64) ([]float64, error) {
	// Group each table's (weighted score) contributions by key.
	byKey := make([]map[int64][]float64, len(c.names))
	for i, name := range c.names {
		tab, err := c.cat.Table(name)
		if err != nil {
			return nil, err
		}
		groups := map[int64][]float64{}
		for _, t := range tab.Rel.Tuples() {
			// Schema is (id, key, score).
			if bound, ok := filters[name]; ok && t[0].AsInt() >= bound {
				continue
			}
			groups[t[1].AsInt()] = append(groups[t[1].AsInt()], terms[i].weight*t[2].AsFloat())
		}
		byKey[i] = groups
	}
	var scores []float64
	for key, base := range byKey[0] {
		partials := base
		for i := 1; i < len(byKey); i++ {
			next := byKey[i][key]
			if len(next) == 0 {
				partials = nil
				break
			}
			grown := make([]float64, 0, len(partials)*len(next))
			for _, p := range partials {
				for _, v := range next {
					grown = append(grown, p+v)
				}
			}
			partials = grown
		}
		scores = append(scores, partials...)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	if len(scores) > c.K {
		scores = scores[:c.K]
	}
	return scores, nil
}

// reference recovers the generated weights and filters from the parsed query
// (so the reference cannot drift from what the engine actually executes) and
// computes the brute-force top-k score sequence.
func (c Case) reference(q *logical.Query) ([]float64, error) {
	terms := make([]scoreTerm, 0, len(q.Score.Terms))
	for _, t := range q.Score.Terms {
		terms = append(terms, scoreTerm{table: t.Table(), weight: t.Weight})
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].table < terms[j].table })
	filters := map[string]int64{}
	for _, f := range q.Filters {
		// Generated filters are always "T.id < bound".
		bin, ok := f.(expr.Binary)
		if !ok || bin.Op != expr.OpLt {
			return nil, fmt.Errorf("seed %d: unexpected filter %q", c.Seed, f.String())
		}
		col, okL := bin.L.(expr.ColRef)
		cst, okR := bin.R.(expr.Const)
		if !okL || !okR {
			return nil, fmt.Errorf("seed %d: unexpected filter shape %q", c.Seed, f.String())
		}
		filters[col.Table] = cst.V.AsInt()
	}
	want, err := c.bruteForce(terms, filters)
	if err != nil {
		return nil, fmt.Errorf("seed %d: brute force: %w", c.Seed, err)
	}
	return want, nil
}

// Run parses, optimizes with every alternative retained, executes each plan,
// and compares every score sequence against the brute-force reference.
// A nil error means all plans agreed.
func Run(c Case) (Report, error) {
	q, err := sqlparse.Parse(c.SQL)
	if err != nil {
		return Report{}, fmt.Errorf("seed %d: parse %q: %w", c.Seed, c.SQL, err)
	}
	want, err := c.reference(q)
	if err != nil {
		return Report{}, err
	}

	res, err := core.Optimize(c.cat, q, core.Options{CollectAllPlans: true})
	if err != nil {
		return Report{}, fmt.Errorf("seed %d: optimize %q: %w", c.Seed, c.SQL, err)
	}
	if len(res.AllPlans) == 0 {
		return Report{}, fmt.Errorf("seed %d: optimizer returned no plans", c.Seed)
	}
	for pi, root := range res.AllPlans {
		// Every plan executes twice — batch-at-a-time (the production drain)
		// and as the scalar reference executor (ScalarRef compile, one tuple
		// per Next) — from two independent compilations, so leftover operator
		// state cannot mask a divergence. The batch result is checked against
		// brute force; the reference result must match it tuple-for-tuple,
		// value-for-value. The reference side keeps pre-vectorization
		// internals (interface-keyed hash-join build), so this also
		// differentially tests the open-addressing numeric table against an
		// independent implementation on every generated plan.
		op, err := plan.Compile(c.cat, root)
		if err != nil {
			return Report{}, fmt.Errorf("seed %d plan %d: compile: %w\n%s", c.Seed, pi, err, plan.Explain(root))
		}
		tuples, err := exec.Collect(op)
		if err != nil {
			return Report{}, fmt.Errorf("seed %d plan %d: execute: %w\n%s", c.Seed, pi, err, plan.Explain(root))
		}
		opRef, err := plan.CompileWith(c.cat, root, plan.Config{ScalarRef: true})
		if err != nil {
			return Report{}, fmt.Errorf("seed %d plan %d: recompile: %w\n%s", c.Seed, pi, err, plan.Explain(root))
		}
		ref, err := exec.CollectPerTupleCtx(context.Background(), opRef)
		if err != nil {
			return Report{}, fmt.Errorf("seed %d plan %d: per-tuple execute: %w\n%s", c.Seed, pi, err, plan.Explain(root))
		}
		if err := compareTuples(ref, tuples); err != nil {
			return Report{}, fmt.Errorf("seed %d plan %d/%d: batch vs per-tuple: %w\nquery: %s\n%s",
				c.Seed, pi, len(res.AllPlans), err, c.SQL, plan.Explain(root))
		}
		got := make([]float64, len(tuples))
		for i, t := range tuples {
			// SELECT * keeps the RankAssign layout: score at len-2, rank last.
			got[i] = t[len(t)-2].AsFloat()
		}
		if err := compareScores(want, got); err != nil {
			return Report{}, fmt.Errorf("seed %d plan %d/%d: %w\nquery: %s\n%s",
				c.Seed, pi, len(res.AllPlans), err, c.SQL, plan.Explain(root))
		}
	}

	// Greedy cross-check: the fast-path planner must agree with brute force
	// on every corpus case (the plan may differ from the DP's; the answer
	// may not).
	gres, err := core.Optimize(c.cat, q, core.Options{Planner: core.PlannerGreedy})
	if err != nil {
		return Report{}, fmt.Errorf("seed %d: greedy optimize %q: %w", c.Seed, c.SQL, err)
	}
	gop, err := plan.Compile(c.cat, gres.Best)
	if err != nil {
		return Report{}, fmt.Errorf("seed %d: greedy compile: %w\n%s", c.Seed, err, plan.Explain(gres.Best))
	}
	gtuples, err := exec.Collect(gop)
	if err != nil {
		return Report{}, fmt.Errorf("seed %d: greedy execute: %w\n%s", c.Seed, err, plan.Explain(gres.Best))
	}
	ggot := make([]float64, len(gtuples))
	for i, t := range gtuples {
		ggot[i] = t[len(t)-2].AsFloat()
	}
	if err := compareScores(want, ggot); err != nil {
		return Report{}, fmt.Errorf("seed %d: greedy plan: %w\nquery: %s\n%s",
			c.Seed, err, c.SQL, plan.Explain(gres.Best))
	}

	return Report{SQL: c.SQL, Plans: len(res.AllPlans), Results: len(want), GreedyFallback: gres.GreedyFallback}, nil
}

// compareTuples asserts two result sets are identical: same count, same
// order, same arity, every value Equal. Used for the batch-vs-per-tuple
// cross-check, where the two drains execute the same plan and any difference
// at all is an executor bug.
func compareTuples(want, got []relation.Tuple) error {
	if len(want) != len(got) {
		return fmt.Errorf("row count mismatch: per-tuple %d, batch %d", len(want), len(got))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			return fmt.Errorf("row %d arity mismatch: per-tuple %d, batch %d", i, len(want[i]), len(got[i]))
		}
		for j := range want[i] {
			if !want[i][j].Equal(got[i][j]) {
				return fmt.Errorf("row %d column %d mismatch: per-tuple %v, batch %v",
					i, j, want[i][j], got[i][j])
			}
		}
	}
	return nil
}

// compareScores asserts two descending score sequences match element-wise
// within floating-point tolerance.
func compareScores(want, got []float64) error {
	if len(want) != len(got) {
		return fmt.Errorf("result count mismatch: brute force %d, plan %d (want %v, got %v)",
			len(want), len(got), head(want), head(got))
	}
	for i := range want {
		diff := math.Abs(want[i] - got[i])
		scale := math.Max(math.Abs(want[i]), 1)
		if diff > 1e-9*scale {
			return fmt.Errorf("score %d mismatch: brute force %.12f, plan %.12f", i, want[i], got[i])
		}
	}
	return nil
}

// head truncates a slice for error display.
func head(s []float64) []float64 {
	if len(s) > 5 {
		return s[:5]
	}
	return s
}

// CatalogOf exposes a case's catalog (for external harnesses and debugging).
func CatalogOf(c Case) *catalog.Catalog { return c.cat }

// Package integration fuzzes the whole stack: random catalogs and queries
// flow through SQL parsing (when expressible), the rank-aware optimizer, plan
// compilation, and execution, and every result is checked against a naive
// reference evaluation built from primitive operators.
package integration

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"rankopt/internal/catalog"
	"rankopt/internal/core"
	"rankopt/internal/exec"
	"rankopt/internal/expr"
	"rankopt/internal/logical"
	"rankopt/internal/plan"
	"rankopt/internal/sqlparse"
	"rankopt/internal/workload"
)

// referencePlan builds the trusted evaluation: left-deep hash joins in table
// order, filters applied on scans.
func referencePlan(t *testing.T, cat *catalog.Catalog, q *logical.Query) exec.Operator {
	t.Helper()
	var cur exec.Operator
	for i, name := range q.Tables {
		tab, err := cat.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		var scan exec.Operator = exec.NewSeqScan(tab.Rel)
		if fs := q.FiltersFor(name); len(fs) > 0 {
			scan = exec.NewFilter(scan, expr.And(fs...))
		}
		if i == 0 {
			cur = scan
			continue
		}
		j := q.Joins[i-1]
		cur = exec.NewHashJoin(cur, scan, j.L, j.R, nil)
	}
	return cur
}

// refTopKScores returns the expected descending score prefix.
func refTopKScores(t *testing.T, cat *catalog.Catalog, q *logical.Query) []float64 {
	t.Helper()
	cur := referencePlan(t, cat, q)
	sorted := exec.NewSortByScore(cur, q.Score)
	k := q.K
	if k == 0 {
		k = 1 << 30
	}
	tuples, err := exec.CollectK(sorted, k)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := q.Score.Bind(sorted.Schema())
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(tuples))
	for i, tup := range tuples {
		v, err := ev(tup)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = v.AsFloat()
	}
	return out
}

func optimizedScores(t *testing.T, cat *catalog.Catalog, q *logical.Query, opts core.Options) []float64 {
	t.Helper()
	res, err := core.Optimize(cat, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	op, err := plan.Compile(cat, res.Best)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, plan.Explain(res.Best))
	}
	tuples, err := exec.Collect(op)
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, plan.Explain(res.Best))
	}
	out := make([]float64, len(tuples))
	for i, tup := range tuples {
		out[i] = tup[len(tup)-2].AsFloat() // Rank operator's score column
	}
	return out
}

// randomQuery builds a random chain-join ranking query over the tables.
func randomQuery(rng *rand.Rand, names []string) *logical.Query {
	q := &logical.Query{K: 1 + rng.Intn(20)}
	m := 2 + rng.Intn(len(names)-1)
	for i := 0; i < m; i++ {
		name := names[i]
		q.Tables = append(q.Tables, name)
		// Most tables contribute a score term; at least one must.
		if rng.Intn(4) > 0 || i == 0 {
			q.Score.Terms = append(q.Score.Terms, expr.ScoreTerm{
				Weight: 0.1 + rng.Float64(),
				E:      expr.Col(name, "score"),
			})
		}
		if i > 0 {
			q.Joins = append(q.Joins, logical.JoinPred{
				L: expr.Col(names[i-1], "key"), R: expr.Col(name, "key"),
			})
		}
		// Occasional filter.
		if rng.Intn(3) == 0 {
			q.Filters = append(q.Filters, expr.Bin(expr.OpGt,
				expr.Col(name, "score"), expr.FloatLit(rng.Float64()*0.3)))
		}
	}
	return q
}

func TestFuzzRankedQueries(t *testing.T) {
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(5000 + trial)))
		sel := []float64{0.01, 0.03, 0.08}[rng.Intn(3)]
		n := 100 + rng.Intn(150)
		cat, names := workload.RankedSet(3, workload.RankedConfig{
			N: n, Selectivity: sel, Seed: int64(trial),
		})
		q := randomQuery(rng, names)
		if err := q.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid query: %v", trial, err)
		}
		want := refTopKScores(t, cat, q)
		opts := core.Options{}
		if rng.Intn(4) == 0 {
			opts.DisableRankAware = true
		}
		if rng.Intn(4) == 0 {
			opts.Strategy = exec.Adaptive
		}
		got := optimizedScores(t, cat, q, opts)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d: rank %d score %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestFuzzSQLRoundTrip renders random ranked queries as SQL, parses them
// back, and verifies execution matches the reference.
func TestFuzzSQLRoundTrip(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		cat, names := workload.RankedSet(2, workload.RankedConfig{
			N: 200 + rng.Intn(200), Selectivity: 0.05, Seed: int64(trial),
		})
		w1 := 0.1 + float64(rng.Intn(9))/10
		w2 := 0.1 + float64(rng.Intn(9))/10
		k := 1 + rng.Intn(10)
		sql := fmt.Sprintf(
			"SELECT * FROM %s, %s WHERE %s.key = %s.key ORDER BY %.1f*%s.score + %.1f*%s.score DESC LIMIT %d",
			names[0], names[1], names[0], names[1], w1, names[0], w2, names[1], k)
		q, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", trial, sql, err)
		}
		want := refTopKScores(t, cat, q)
		got := optimizedScores(t, cat, q, core.Options{})
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d (%s): rank %d mismatch", trial, sql, i)
			}
		}
	}
}

// TestFuzzGroupedQueries checks grouped aggregation against a reference
// hash aggregation over the reference join.
func TestFuzzGroupedQueries(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		cat, names := workload.RankedSet(2, workload.RankedConfig{
			N: 150 + rng.Intn(150), Selectivity: 0.1, Seed: int64(trial),
		})
		q := &logical.Query{
			Tables:  names,
			Joins:   []logical.JoinPred{{L: expr.Col(names[0], "key"), R: expr.Col(names[1], "key")}},
			GroupBy: []expr.ColRef{expr.Col(names[0], "key")},
			Aggs: []logical.AggItem{
				{Func: "COUNT", As: "c"},
				{Func: "AVG", Arg: expr.Col(names[1], "score"), As: "a"},
			},
		}
		res, err := core.Optimize(cat, q, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		op, err := plan.Compile(cat, res.Best)
		if err != nil {
			t.Fatal(err)
		}
		got, err := exec.Collect(op)
		if err != nil {
			t.Fatal(err)
		}
		ref := exec.NewHashAggregate(referencePlan(t, cat, q),
			q.GroupBy, []exec.AggSpec{
				{Func: exec.AggCount, As: "c"},
				{Func: exec.AggAvg, Arg: expr.Col(names[1], "score"), As: "a"},
			})
		want, err := exec.Collect(ref)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d groups, want %d", trial, len(got), len(want))
		}
		wantBy := map[int64][2]float64{}
		for _, row := range want {
			wantBy[row[0].AsInt()] = [2]float64{float64(row[1].AsInt()), row[2].AsFloat()}
		}
		for _, row := range got {
			w, ok := wantBy[row[0].AsInt()]
			if !ok {
				t.Fatalf("trial %d: unexpected group %v", trial, row[0])
			}
			if float64(row[1].AsInt()) != w[0] || math.Abs(row[2].AsFloat()-w[1]) > 1e-9 {
				t.Fatalf("trial %d: group %v = %v, want %v", trial, row[0], row, w)
			}
		}
	}
}

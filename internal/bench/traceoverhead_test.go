package bench

import (
	"encoding/json"
	"testing"
)

// A miniature sweep must measure both sides, show the traced side actually
// recording spans and decisions, and round-trip its JSON artifact.
func TestTraceOverheadSmoke(t *testing.T) {
	cfg := TraceOverheadConfig{
		Tables: 2, Rows: 500, Selectivity: 0.05, Seed: 3,
		Queries: 6, K: 5, Repeats: 1,
		ShardCount: 2, ShardRows: 800, ShardKeys: 40, ShardK: 5,
		ShardQueries: 4, ShardSeed: 29,
	}
	rep, err := TraceOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OffQPS <= 0 || rep.OnQPS <= 0 {
		t.Errorf("non-positive QPS (off=%v on=%v)", rep.OffQPS, rep.OnQPS)
	}
	if rep.SpansPerQuery <= 0 {
		t.Error("traced batch recorded no spans")
	}
	if rep.DecisionsPerQuery <= 0 {
		t.Error("probe session recorded no optimizer decisions")
	}
	// The smoke gate must pass under any sane bound and fail under an
	// impossible one.
	if err := rep.CheckOverhead(1e9); err != nil {
		t.Errorf("generous bound failed: %v", err)
	}
	if err := rep.CheckOverhead(0); err == nil {
		t.Error("zero bound passed — gate not wired")
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back TraceOverheadReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if back.Config.Queries != cfg.Queries || back.SpansPerQuery != rep.SpansPerQuery {
		t.Error("artifact lost fields in the round trip")
	}
	if rep.Table().String() == "" {
		t.Error("empty table rendering")
	}

	// The sharded block: both sides measured on the scatter-gather path, the
	// traced side carrying at least one span per shard, and the gate wired.
	if rep.Sharded == nil {
		t.Fatal("no sharded block despite ShardCount=2")
	}
	if rep.Sharded.OffQPS <= 0 || rep.Sharded.OnQPS <= 0 {
		t.Errorf("non-positive sharded QPS (off=%v on=%v)", rep.Sharded.OffQPS, rep.Sharded.OnQPS)
	}
	if rep.Sharded.SpansPerQuery < float64(cfg.ShardCount) {
		t.Errorf("traced sharded sessions recorded %.1f spans/query, want >= %d",
			rep.Sharded.SpansPerQuery, cfg.ShardCount)
	}
	if err := rep.CheckShardedOverhead(1e9); err != nil {
		t.Errorf("generous sharded bound failed: %v", err)
	}
	if err := rep.CheckShardedOverhead(0); err == nil {
		t.Error("zero sharded bound passed — gate not wired")
	}
	if rep.ShardedTable().String() == "" {
		t.Error("empty sharded table rendering")
	}
	if back.Sharded == nil || back.Sharded.Slowdown != rep.Sharded.Slowdown {
		t.Error("sharded block lost in the JSON round trip")
	}
}

package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"rankopt/internal/exec"
	"rankopt/internal/expr"
	"rankopt/internal/relation"
	"rankopt/internal/workload"
)

// This benchmark measures what the batch execution layer buys: the same
// operator tree is drained one-tuple-per-Next (CollectPerTupleCtx, the
// pre-vectorization executor) and batch-at-a-time (CollectCtx), and every
// pair of runs is checked for exact tuple-level agreement. The cases are the
// vectorized pipeline segments — scan, filter, projection, hash join — not
// the rank-joins, which stay per-tuple by design (their threshold
// termination needs incremental pulls).

// BatchConfig parameterizes the batch-vs-per-tuple executor benchmark.
type BatchConfig struct {
	// Rows is the cardinality of each input relation.
	Rows int `json:"rows"`
	// BuildRows is the hash join's build-side cardinality. Much smaller than
	// Rows, so the shared build phase does not drown the probe loop the case
	// exists to measure (the probe-bound regime is also the one the batch
	// layer targets — build cost is identical on both paths).
	BuildRows int `json:"build_rows"`
	// Seed shapes the synthetic relations.
	Seed int64 `json:"seed"`
	// Reps is how many timed repetitions each side runs; the fastest is
	// reported (standard microbenchmark practice — the minimum is the run
	// least disturbed by the machine).
	Reps int `json:"reps"`
}

// DefaultBatchConfig sizes the inputs so per-tuple overhead dominates real
// work — the regime the batch layer targets — while a full run stays under a
// few seconds. The 200:1 probe:build ratio is the selective-join shape
// (small dimension build side against a large fact probe side) where the
// build table's min-max filter prunes most probes.
func DefaultBatchConfig() BatchConfig {
	return BatchConfig{Rows: 200000, BuildRows: 1000, Seed: 11, Reps: 7}
}

// BatchPoint is one measured operator-pipeline case.
type BatchPoint struct {
	Case string `json:"case"`
	// RowsOut is the result cardinality (identical on both paths).
	RowsOut int `json:"rows_out"`
	// TupleMs and BatchMs are the fastest drains of each executor path.
	TupleMs float64 `json:"per_tuple_ms"`
	BatchMs float64 `json:"batch_ms"`
	// Speedup is TupleMs / BatchMs.
	Speedup float64 `json:"speedup"`
	// TupleAllocs and BatchAllocs are heap allocations per run of each path.
	TupleAllocs uint64 `json:"per_tuple_allocs"`
	BatchAllocs uint64 `json:"batch_allocs"`
	// ParityOK reports that the two paths produced identical results —
	// same rows, same order, same values.
	ParityOK bool `json:"parity_ok"`
}

// BatchReport is the BENCH_batch.json artifact.
type BatchReport struct {
	Config   BatchConfig `json:"config"`
	MaxProcs int         `json:"gomaxprocs"`
	CPUs     int         `json:"cpus"`
	// SingleCPU flags runs taken at GOMAXPROCS=1, where parallel speedups
	// are structurally invisible. Batch-vs-tuple ratios are single-threaded
	// either way, so they remain valid — the flag exists so artifacts are
	// honest about the machine.
	SingleCPU bool         `json:"single_cpu"`
	Points    []BatchPoint `json:"points"`
}

// batchCase names one benchmark pipeline and builds fresh operator trees for
// it (fresh per drain, so no state leaks between measurements).
type batchCase struct {
	name  string
	build func() exec.Operator
	// buildRef, when set, builds the tree the per-tuple side drains — the
	// scalar reference configuration for operators whose internals were also
	// vectorized (the hash join's build and table). nil means build, for
	// operators whose Next path already is the pre-batch executor.
	buildRef func() exec.Operator
}

// batchCases constructs the benchmark pipelines over freshly generated
// relations.
func batchCases(cfg BatchConfig) ([]batchCase, error) {
	cat, names := workload.RankedSet(2, workload.RankedConfig{
		N: cfg.Rows, Selectivity: 0.01, Seed: cfg.Seed,
	})
	t1, err := cat.Table(names[0])
	if err != nil {
		return nil, err
	}
	t2, err := cat.Table(names[1])
	if err != nil {
		return nil, err
	}
	r1, r2 := t1.Rel, t2.Rel
	build := workload.Ranked(workload.RankedConfig{
		Name: "B", N: cfg.BuildRows, Selectivity: 0.01, Seed: cfg.Seed + 1,
	})
	// Probe-bound 1:1 equi-join on the unique id column: a small build table
	// streamed against the full probe side, so the measurement isolates
	// per-probe overhead rather than build cost or fan-out amplification. The
	// per-tuple side runs the scalar reference build (interface-keyed table),
	// matching the executor as it was before vectorization.
	mkJoin := func(perTuple bool) func() exec.Operator {
		return func() exec.Operator {
			hj := exec.NewHashJoin(
				exec.NewSeqScan(build), exec.NewSeqScan(r2),
				expr.Col("B", "id"), expr.Col(names[1], "id"), nil)
			hj.BuildSizeHint = cfg.BuildRows
			hj.PerTupleBuild = perTuple
			return hj
		}
	}
	return []batchCase{
		{name: "seqscan", build: func() exec.Operator {
			return exec.NewSeqScan(r1)
		}},
		{name: "filter", build: func() exec.Operator {
			// score < 0.05 over the uniform distribution: ~5% selectivity,
			// the selective-scan regime vectorized filters target. A
			// rejected row costs the batch path one column load and one
			// compare where the per-tuple path pays a full Next round-trip
			// (interface dispatch, closure tree, boxed Value) — so rejects
			// are where vectorization pays, and they dominate real scans.
			// The shape is one CompileCmp turns into a direct column compare.
			pred := expr.Bin(expr.OpLt, expr.Col(names[0], "score"), expr.FloatLit(0.05))
			return exec.NewFilter(exec.NewSeqScan(r1), pred)
		}},
		{name: "project", build: func() exec.Operator {
			items := []exec.ProjectItem{
				{E: expr.Col(names[0], "id"), As: "id", Kind: relation.KindInt},
				{E: expr.Col(names[0], "score"), As: "score", Kind: relation.KindFloat},
			}
			return exec.NewProject(exec.NewSeqScan(r1), items...)
		}},
		{name: "hashjoin", build: mkJoin(false), buildRef: mkJoin(true)},
	}, nil
}

// drainFunc is one executor path's discarding drain.
type drainFunc func(exec.Operator) (int, error)

// measureDrain times reps fresh discarding drains and returns the fastest,
// plus the allocation count and row count of the final run. The timed drains
// do not materialize results: accumulating a 200k-row slice costs the same
// on both executor paths and would only dilute the quantity under test (the
// per-tuple iteration overhead). Result correctness is checked separately by
// the untimed parity runs.
func measureDrain(build func() exec.Operator, drain drainFunc, reps int) (time.Duration, uint64, int, error) {
	best := time.Duration(0)
	var allocs uint64
	rows := 0
	var ms0, ms1 runtime.MemStats
	for i := 0; i < reps; i++ {
		op := build()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		n, err := drain(op)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		if err != nil {
			return 0, 0, 0, err
		}
		if best == 0 || elapsed < best {
			best = elapsed
		}
		allocs = ms1.Mallocs - ms0.Mallocs
		rows = n
	}
	return best, allocs, rows, nil
}

// sameTuples reports exact result equality: count, order, arity, values.
func sameTuples(a, b []relation.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if !a[i][j].Equal(b[i][j]) {
				return false
			}
		}
	}
	return true
}

// BatchExec runs the benchmark.
func BatchExec(cfg BatchConfig) (*BatchReport, error) {
	if cfg.Rows <= 0 || cfg.Reps <= 0 {
		return nil, fmt.Errorf("bench: batch needs positive rows and reps, got %d/%d", cfg.Rows, cfg.Reps)
	}
	if cfg.BuildRows <= 0 {
		cfg.BuildRows = cfg.Rows / 20
		if cfg.BuildRows == 0 {
			cfg.BuildRows = 1
		}
	}
	cases, err := batchCases(cfg)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	perTuple := func(op exec.Operator) (int, error) { return exec.DrainPerTupleCtx(ctx, op) }
	batch := func(op exec.Operator) (int, error) { return exec.DrainCtx(ctx, op) }
	report := &BatchReport{
		Config:    cfg,
		MaxProcs:  runtime.GOMAXPROCS(0),
		CPUs:      runtime.NumCPU(),
		SingleCPU: runtime.GOMAXPROCS(0) == 1,
	}
	for _, c := range cases {
		buildRef := c.buildRef
		if buildRef == nil {
			buildRef = c.build
		}
		// Untimed parity runs: both paths fully materialized and compared
		// tuple-for-tuple (these double as warm-up for the timed drains).
		refOut, err := exec.CollectPerTupleCtx(ctx, buildRef())
		if err != nil {
			return nil, fmt.Errorf("bench: batch case %s per-tuple parity run: %w", c.name, err)
		}
		batchOut, err := exec.CollectCtx(ctx, c.build())
		if err != nil {
			return nil, fmt.Errorf("bench: batch case %s batch parity run: %w", c.name, err)
		}
		tDur, tAllocs, tRows, err := measureDrain(buildRef, perTuple, cfg.Reps)
		if err != nil {
			return nil, fmt.Errorf("bench: batch case %s per-tuple: %w", c.name, err)
		}
		bDur, bAllocs, bRows, err := measureDrain(c.build, batch, cfg.Reps)
		if err != nil {
			return nil, fmt.Errorf("bench: batch case %s batch: %w", c.name, err)
		}
		pt := BatchPoint{
			Case:        c.name,
			RowsOut:     bRows,
			TupleMs:     float64(tDur.Nanoseconds()) / 1e6,
			BatchMs:     float64(bDur.Nanoseconds()) / 1e6,
			TupleAllocs: tAllocs,
			BatchAllocs: bAllocs,
			ParityOK:    sameTuples(refOut, batchOut) && tRows == len(refOut) && bRows == len(batchOut),
		}
		if bDur > 0 {
			pt.Speedup = float64(tDur) / float64(bDur)
		}
		report.Points = append(report.Points, pt)
	}
	return report, nil
}

// CheckParity fails if any case's two executor paths disagreed — the gate CI
// runs on the artifact.
func (r *BatchReport) CheckParity() error {
	for _, p := range r.Points {
		if !p.ParityOK {
			return fmt.Errorf("bench: batch case %s: batch and per-tuple paths diverged", p.Case)
		}
	}
	return nil
}

// JSON renders the artifact bytes.
func (r *BatchReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Table renders the report in the bench text format.
func (r *BatchReport) Table() *Table {
	t := &Table{
		Title: "Batch vs per-tuple execution",
		Note: fmt.Sprintf("%d rows/input, best of %d, GOMAXPROCS=%d",
			r.Config.Rows, r.Config.Reps, r.MaxProcs),
		Columns: []string{"case", "rows_out", "per_tuple_ms", "batch_ms", "speedup", "pt_allocs", "b_allocs", "parity"},
	}
	for _, p := range r.Points {
		t.AddRow(p.Case, p.RowsOut, p.TupleMs, p.BatchMs, p.Speedup, p.TupleAllocs, p.BatchAllocs, p.ParityOK)
	}
	return t
}

// BatchExecExperiment adapts the benchmark to the registry's Run signature.
func BatchExecExperiment() (*Table, error) {
	rep, err := BatchExec(DefaultBatchConfig())
	if err != nil {
		return nil, err
	}
	if err := rep.CheckParity(); err != nil {
		return nil, err
	}
	return rep.Table(), nil
}

package bench

import (
	"fmt"
	"sort"
	"strings"

	"rankopt/internal/core"
	"rankopt/internal/estimate"
	"rankopt/internal/expr"
	"rankopt/internal/logical"
)

// Fig1 reproduces Figure 1: estimated I/O cost of the sort plan vs the
// rank-join plan for two ranked relations across join selectivities. The
// paper's shape: the sort plan wins at low selectivity (tiny join output,
// cheap sort; the rank-join must dig deep for matches), the rank-join wins
// at high selectivity.
func Fig1() *Table {
	const (
		n = 100000.0
		k = 100.0
	)
	t := &Table{
		Title:   "Figure 1: estimated cost, sort plan vs rank-join plan (n=100k, k=100)",
		Columns: []string{"selectivity", "sort-plan", "rank-join", "winner"},
	}
	for _, s := range []float64{1e-7, 5e-7, 1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2} {
		sortPlan, rankPlan := twoRelPlans(n, s)
		sc := sortPlan.TotalCost()
		rc := rankPlan.Cost(k)
		winner := "rank-join"
		if sc < rc {
			winner = "sort-plan"
		}
		t.AddRow(s, sc, rc, winner)
	}
	return t
}

// Fig6 reproduces Figure 6: the effect of k on the rank-join plan cost
// against the k-independent sort plan, including the crossover point k*.
func Fig6() *Table {
	const (
		n = 10000.0
		s = 0.001
	)
	sortPlan, rankPlan := twoRelPlans(n, s)
	kstar := core.CrossoverK(sortPlan, rankPlan)
	t := &Table{
		Title:   "Figure 6: effect of k on plan costs (n=10k, s=0.001)",
		Note:    fmt.Sprintf("crossover k* = %.0f (paper's instance: 176)", kstar),
		Columns: []string{"k", "sort-plan", "rank-join", "cheaper"},
	}
	for k := 25.0; k <= 400; k += 25 {
		sc := sortPlan.TotalCost()
		rc := rankPlan.Cost(k)
		cheaper := "rank-join"
		if sc < rc {
			cheaper = "sort-plan"
		}
		t.AddRow(k, sc, rc, cheaper)
	}
	return t
}

// fig2Query builds the Figure 2 query: a 3-way join with an optional
// ORDER BY A.c2 (no ranking function).
func fig2Query(orderBy bool) *logical.Query {
	q := &logical.Query{
		Tables: []string{"A", "B", "C"},
		Joins: []logical.JoinPred{
			{L: expr.Col("A", "c1"), R: expr.Col("B", "c1")},
			{L: expr.Col("B", "c2"), R: expr.Col("C", "c2")},
		},
	}
	if orderBy {
		q.OrderBy = expr.Col("A", "c2")
	}
	return q
}

// q2Query builds the paper's Query Q2: joins A.c2=B.c1 and B.c2=C.c2 with
// the ranking function 0.3*A.c1 + 0.3*B.c1 + 0.3*C.c1 and k=5. Note B.c1
// serves both a join and the ranking — the "Join and Rank-join" row of
// Table 1.
func q2Query() *logical.Query {
	return &logical.Query{
		Tables: []string{"A", "B", "C"},
		Joins: []logical.JoinPred{
			{L: expr.Col("A", "c2"), R: expr.Col("B", "c1")},
			{L: expr.Col("B", "c2"), R: expr.Col("C", "c2")},
		},
		Score: expr.Sum(
			expr.ScoreTerm{Weight: 0.3, E: expr.Col("A", "c1")},
			expr.ScoreTerm{Weight: 0.3, E: expr.Col("B", "c1")},
			expr.ScoreTerm{Weight: 0.3, E: expr.Col("C", "c1")},
		),
		K: 5,
	}
}

// memoCounts runs the optimizer and returns per-entry retained plan counts.
func memoCounts(q *logical.Query, opts core.Options) (map[string]int, int, error) {
	cat := abcCatalog(1000)
	res, err := core.Optimize(cat, q, opts)
	if err != nil {
		return nil, 0, err
	}
	counts := map[string]int{}
	for label, plans := range res.Memo {
		counts[label] = len(plans)
	}
	return counts, res.PlansKept, nil
}

// Fig2 reproduces Figure 2: the number of plans kept in the MEMO structure
// for the 3-way join query without (paper: 12) and with (paper: 15) an
// ORDER BY clause.
func Fig2() (*Table, error) {
	t := &Table{
		Title:   "Figure 2: MEMO plan counts, interesting orders (paper: 12 vs 15)",
		Columns: []string{"entry", "no ORDER BY", "with ORDER BY"},
	}
	plain, totalPlain, err := memoCounts(fig2Query(false), core.Options{})
	if err != nil {
		return nil, err
	}
	ordered, totalOrdered, err := memoCounts(fig2Query(true), core.Options{})
	if err != nil {
		return nil, err
	}
	for _, label := range sortedLabels(plain, ordered) {
		t.AddRow(label, plain[label], ordered[label])
	}
	t.AddRow("TOTAL", totalPlain, totalOrdered)
	return t, nil
}

// Fig3 reproduces Figure 3: the MEMO growth when ranking expressions become
// interesting — the traditional optimizer vs the rank-aware one on Query Q2
// (paper: 12 vs 17).
func Fig3() (*Table, error) {
	t := &Table{
		Title:   "Figure 3: MEMO plan counts on Q2, traditional vs rank-aware (paper: 12 vs 17)",
		Columns: []string{"entry", "traditional", "rank-aware"},
	}
	base, totalBase, err := memoCounts(q2Query(), core.Options{DisableRankAware: true})
	if err != nil {
		return nil, err
	}
	rank, totalRank, err := memoCounts(q2Query(), core.Options{})
	if err != nil {
		return nil, err
	}
	for _, label := range sortedLabels(base, rank) {
		t.AddRow(label, base[label], rank[label])
	}
	t.AddRow("TOTAL", totalBase, totalRank)
	return t, nil
}

func sortedLabels(ms ...map[string]int) []string {
	set := map[string]bool{}
	for _, m := range ms {
		for k := range m {
			set[k] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if strings.Count(out[i], ",") != strings.Count(out[j], ",") {
			return strings.Count(out[i], ",") < strings.Count(out[j], ",")
		}
		return out[i] < out[j]
	})
	return out
}

// Table1 reproduces Table 1: the interesting order expressions the
// rank-aware optimizer collects for Query Q2 and why.
func Table1() (*Table, error) {
	cat := abcCatalog(1000)
	res, err := core.Optimize(cat, q2Query(), core.Options{})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Table 1: interesting order expressions in Query Q2",
		Columns: []string{"interesting order expression", "reason"},
	}
	for _, io := range res.InterestingOrders {
		t.AddRow(io.Expr, strings.Join(io.Reasons, " and "))
	}
	return t, nil
}

// Fig4 reproduces Figure 4: how the requested k propagates down a pipeline
// of rank-join operators — each operator's input depth becomes the k of its
// child (Algorithm Propagate). The paper's instance propagated k=100 into
// 580 and then 783 on its video data; the shape (k grows downward under
// sparse joins) is the claim.
func Fig4() (*Table, error) {
	const (
		n    = 100000.0
		s    = 0.0002
		k    = 100.0
		slab = 1 / n
	)
	root, err := estimate.LeftDeep(3, n, slab, s)
	if err != nil {
		return nil, err
	}
	if err := estimate.Propagate(root, k, estimate.ModeTopK); err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Figure 4: k-propagation in a rank-join pipeline (3 inputs, left-deep, s=0.0002)",
		Note:    "each operator's input depth is the k required from its child (paper instance: 100 -> 580 -> 783)",
		Columns: []string{"operator", "required k", "depth into left", "depth into right"},
	}
	t.AddRow("top rank-join", root.K, root.DL, root.DR)
	t.AddRow("child rank-join", root.Left.K, root.Left.DL, root.Left.DR)
	return t, nil
}

package bench

import (
	"strconv"
	"strings"
	"testing"
)

func runExp(t *testing.T, name string) *Table {
	t.Helper()
	e, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s produced no rows", name)
	}
	return tab
}

func col(t *testing.T, tab *Table, name string) int {
	t.Helper()
	for i, c := range tab.Columns {
		if c == name {
			return i
		}
	}
	t.Fatalf("table %q lacks column %q: %v", tab.Title, name, tab.Columns)
	return -1
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

// Fig1 must show the paper's crossover: sort plan wins at the lowest
// selectivity, rank-join at the highest.
func TestFig1Shape(t *testing.T) {
	tab := runExp(t, "fig1")
	w := col(t, tab, "winner")
	first := tab.Rows[0][w]
	last := tab.Rows[len(tab.Rows)-1][w]
	if first != "sort-plan" {
		t.Errorf("lowest selectivity should favor the sort plan, got %s", first)
	}
	if last != "rank-join" {
		t.Errorf("highest selectivity should favor the rank-join, got %s", last)
	}
}

// Fig6: rank-join cost strictly grows with k; sort plan is flat; the winner
// flips at most once, at k*.
func TestFig6Shape(t *testing.T) {
	tab := runExp(t, "fig6")
	rc := col(t, tab, "rank-join")
	sc := col(t, tab, "sort-plan")
	ch := col(t, tab, "cheaper")
	prevRank := -1.0
	flips := 0
	prevWinner := ""
	for _, r := range tab.Rows {
		rv := parseF(t, r[rc])
		if rv < prevRank {
			t.Error("rank-join cost must be non-decreasing in k")
		}
		prevRank = rv
		if sv := parseF(t, r[sc]); sv != parseF(t, tab.Rows[0][sc]) {
			t.Error("sort plan cost must be k-independent")
		}
		if prevWinner != "" && r[ch] != prevWinner {
			flips++
		}
		prevWinner = r[ch]
	}
	if flips > 1 {
		t.Errorf("winner flipped %d times; monotone costs allow at most one crossover", flips)
	}
	if tab.Rows[0][ch] != "rank-join" {
		t.Error("small k must favor the rank-join plan")
	}
	if !strings.Contains(tab.Note, "k*") {
		t.Error("note should report k*")
	}
}

// Fig2/Fig3: richer property spaces retain at least as many plans, strictly
// more in total.
func TestFig2And3Growth(t *testing.T) {
	for _, c := range []struct{ name, base, rich string }{
		{"fig2", "no ORDER BY", "with ORDER BY"},
		{"fig3", "traditional", "rank-aware"},
	} {
		tab := runExp(t, c.name)
		b, r := col(t, tab, c.base), col(t, tab, c.rich)
		last := tab.Rows[len(tab.Rows)-1]
		if last[0] != "TOTAL" {
			t.Fatalf("%s: last row should be TOTAL", c.name)
		}
		if parseF(t, last[r]) <= parseF(t, last[b]) {
			t.Errorf("%s: %s should retain more plans (%s vs %s)", c.name, c.rich, last[r], last[b])
		}
		for _, row := range tab.Rows {
			if parseF(t, row[r])+1e-9 < parseF(t, row[b]) {
				t.Errorf("%s: entry %s lost plans under the richer space", c.name, row[0])
			}
		}
	}
}

func TestTable1Rows(t *testing.T) {
	tab := runExp(t, "table1")
	if len(tab.Rows) != 10 {
		t.Errorf("Table 1 should have 10 rows (paper), got %d", len(tab.Rows))
	}
	// B.c1 is both a join column and a rank term.
	found := false
	for _, r := range tab.Rows {
		if r[0] == "B.c1" && strings.Contains(r[1], "Join") && strings.Contains(r[1], "Rank-join") {
			found = true
		}
	}
	if !found {
		t.Error("B.c1 must be interesting for both Join and Rank-join")
	}
}

func TestFig4Propagation(t *testing.T) {
	tab := runExp(t, "fig4")
	k := col(t, tab, "required k")
	dl := col(t, tab, "depth into left")
	if parseF(t, tab.Rows[1][k]) != parseF(t, tab.Rows[0][dl]) {
		t.Error("child's required k must equal the parent's left depth")
	}
	if parseF(t, tab.Rows[1][k]) <= parseF(t, tab.Rows[0][k]) {
		t.Error("under sparse joins k must grow down the pipeline")
	}
}

// The headline Section 5 claim: measured depth sits between the Any-k
// estimate (lower) and the worst-case Top-k estimate (upper), and the
// average-case estimation error stays within a modest band (paper: <30% on
// its video data; we allow 60% headroom for the smallest k).
func TestFig13Accuracy(t *testing.T) {
	tab := runExp(t, "fig13")
	// Column blocks: [k, d12, anyk, avg, worst, err, d56, anyk, avg, worst, err].
	for _, base := range []int{1, 6} {
		for _, r := range tab.Rows {
			actual := parseF(t, r[base])
			anyk := parseF(t, r[base+1])
			avg := parseF(t, r[base+2])
			worst := parseF(t, r[base+3])
			if !(anyk <= avg && avg <= worst) {
				t.Errorf("k=%s: estimate series not ordered: %v %v %v", r[0], anyk, avg, worst)
			}
			if actual < anyk*0.5 {
				t.Errorf("k=%s: actual %.0f far below any-k lower estimate %.0f", r[0], actual, anyk)
			}
			if actual > worst*1.2 {
				t.Errorf("k=%s: actual %.0f exceeds worst-case bound %.0f", r[0], actual, worst)
			}
			if e := parseF(t, r[base+4]); e > 60 {
				t.Errorf("k=%s: average-case estimation error %.0f%% too large", r[0], e)
			}
		}
	}
}

func TestFig14DepthsGrowAsSelectivityDrops(t *testing.T) {
	tab := runExp(t, "fig14")
	a := col(t, tab, "d1/d2 actual")
	first := parseF(t, tab.Rows[0][a])              // lowest selectivity
	last := parseF(t, tab.Rows[len(tab.Rows)-1][a]) // highest selectivity
	if first <= last {
		t.Errorf("lower selectivity must force deeper digs: %.0f vs %.0f", first, last)
	}
}

func TestFig15BufferBounds(t *testing.T) {
	tab := runExp(t, "fig15")
	actual := col(t, tab, "actual buffer")
	aub := col(t, tab, "actual UB (d1*d2*s)")
	wub := col(t, tab, "estimated UB (worst)")
	for _, r := range tab.Rows {
		if parseF(t, r[actual]) > parseF(t, r[aub])*1.05 {
			t.Errorf("k=%s: actual buffer exceeds its upper bound", r[0])
		}
		if parseF(t, r[actual]) > parseF(t, r[wub]) {
			t.Errorf("k=%s: actual buffer exceeds the estimated worst-case bound", r[0])
		}
	}
}

func TestAblations(t *testing.T) {
	pol := runExp(t, "polling")
	tot := col(t, pol, "total")
	alt := parseF(t, pol.Rows[0][tot])
	ada := parseF(t, pol.Rows[1][tot])
	if ada > alt*1.2 {
		t.Errorf("adaptive polling should not read far more tuples: %v vs %v", ada, alt)
	}
	jt := runExp(t, "joins")
	if len(jt.Rows) != 5 {
		t.Error("join-choice ablation rows")
	}
	pr := runExp(t, "pruning")
	if len(pr.Rows) != 4 {
		t.Error("pruning ablation rows")
	}
}

func TestRegistry(t *testing.T) {
	if len(All()) < 12 {
		t.Error("registry shrank")
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown experiment must error")
	}
	if e, err := ByName("fig1"); err != nil || e.Name != "fig1" {
		t.Error("lookup failed")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{Title: "T", Note: "n", Columns: []string{"a", "bb"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("x", 0.0001)
	s := tab.String()
	for _, want := range []string{"== T ==", "a", "bb", "1", "2.50", "0.00010", "x"} {
		if !strings.Contains(s, want) {
			t.Errorf("format missing %q in:\n%s", want, s)
		}
	}
}

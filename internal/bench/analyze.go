package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"

	"rankopt/internal/core"
	"rankopt/internal/engine"
	"rankopt/internal/workload"
)

// AnalyzeConfig parameterizes the depth-model accuracy sweep: the canonical
// ranked-join query shapes are executed with EXPLAIN ANALYZE instrumentation
// at each k, and every rank-join's Section-4 depth estimates are compared
// against the depths the executor actually reached.
type AnalyzeConfig struct {
	// Tables, Rows, Selectivity, Seed shape the workload.RankedSet catalog.
	Tables      int     `json:"tables"`
	Rows        int     `json:"rows"`
	Selectivity float64 `json:"selectivity"`
	Seed        int64   `json:"seed"`
	// Ks lists the LIMIT values swept per query shape.
	Ks []int `json:"ks"`
}

// DefaultAnalyzeConfig mirrors the throughput workload so the accuracy
// numbers describe the same queries the serving benchmarks run.
func DefaultAnalyzeConfig() AnalyzeConfig {
	return AnalyzeConfig{
		Tables:      3,
		Rows:        20000,
		Selectivity: 0.005,
		Seed:        7,
		Ks:          []int{1, 10, 50, 100},
	}
}

// DepthSample is one rank-join observation: the optimizer's estimated left
// and right depths against the executed depths, with per-side relative
// errors (|est-act|/max(act,1)).
type DepthSample struct {
	SQL   string  `json:"sql"`
	K     int     `json:"k"`
	Op    string  `json:"op"`
	Pred  string  `json:"pred"`
	EstDL float64 `json:"est_dl"`
	ActDL int     `json:"act_dl"`
	EstDR float64 `json:"est_dr"`
	ActDR int     `json:"act_dr"`
	ErrL  float64 `json:"rel_err_l"`
	ErrR  float64 `json:"rel_err_r"`
}

// AnalyzeReport is the BENCH_analyze.json artifact: every depth sample plus
// the aggregate accuracy of the depth model over the sweep.
type AnalyzeReport struct {
	Config   AnalyzeConfig `json:"config"`
	MaxProcs int           `json:"gomaxprocs"`
	CPUs     int           `json:"cpus"`
	// SingleCPU flags runs taken at GOMAXPROCS=1 (see BatchReport.SingleCPU).
	SingleCPU bool `json:"single_cpu"`
	// MeanRelErr and MaxRelErr aggregate both sides of every sample (1.0 =
	// 100% relative error).
	MeanRelErr float64       `json:"mean_rel_err"`
	MaxRelErr  float64       `json:"max_rel_err"`
	Samples    []DepthSample `json:"samples"`
}

// relErr is the accuracy metric: |est-act| over the actual depth, guarding
// the zero-depth case.
func relErr(est float64, act int) float64 {
	denom := float64(act)
	if denom < 1 {
		denom = 1
	}
	return math.Abs(est-float64(act)) / denom
}

// Analyze runs the sweep: each query shape at each k through an analyzing
// session, folding every rank-join of every plan into the report.
func Analyze(cfg AnalyzeConfig) (*AnalyzeReport, error) {
	if cfg.Tables < 2 {
		return nil, fmt.Errorf("bench: analyze needs at least 2 tables, got %d", cfg.Tables)
	}
	if len(cfg.Ks) == 0 {
		return nil, fmt.Errorf("bench: analyze needs at least one k")
	}
	cat, _ := workload.RankedSet(cfg.Tables, workload.RankedConfig{
		N: cfg.Rows, Selectivity: cfg.Selectivity, Seed: cfg.Seed,
	})
	eng := engine.New(cat, core.Options{})
	rep := &AnalyzeReport{Config: cfg, MaxProcs: runtime.GOMAXPROCS(0), CPUs: runtime.NumCPU(), SingleCPU: runtime.GOMAXPROCS(0) == 1}
	var errSum float64
	var errN int
	for _, k := range cfg.Ks {
		base := cfg
		shapes := throughputQueries(ThroughputConfig{
			Tables: base.Tables, Rows: base.Rows, Selectivity: base.Selectivity,
			Seed: base.Seed, K: k, Queries: queryShapeCount(base.Tables),
		})
		for _, req := range shapes {
			req.Analyze = true
			resp := eng.Run(req)
			if resp.Err != nil {
				return nil, fmt.Errorf("bench: analyze %q: %w", req.SQL, resp.Err)
			}
			for _, rj := range resp.RankJoins {
				s := DepthSample{
					SQL: req.SQL, K: k, Op: rj.Op, Pred: rj.Pred,
					EstDL: rj.EstDL, ActDL: rj.Stats.LeftDepth,
					EstDR: rj.EstDR, ActDR: rj.Stats.RightDepth,
				}
				s.ErrL = relErr(s.EstDL, s.ActDL)
				s.ErrR = relErr(s.EstDR, s.ActDR)
				rep.Samples = append(rep.Samples, s)
				errSum += s.ErrL + s.ErrR
				errN += 2
				rep.MaxRelErr = math.Max(rep.MaxRelErr, math.Max(s.ErrL, s.ErrR))
			}
		}
	}
	if errN > 0 {
		rep.MeanRelErr = errSum / float64(errN)
	}
	return rep, nil
}

// queryShapeCount is the number of distinct query shapes throughputQueries
// generates for an m-table catalog (the 2-way rotations plus the m-way join);
// requesting exactly that many yields each shape once.
func queryShapeCount(tables int) int {
	if tables < 3 {
		return 1 // the single 2-way join
	}
	return tables + 1 // every 2-way rotation plus the m-way join
}

// CheckBound returns an error when the sweep's mean relative depth error
// exceeds maxMeanErr — the CI smoke gate for depth-model regressions.
func (r *AnalyzeReport) CheckBound(maxMeanErr float64) error {
	if r.MeanRelErr > maxMeanErr {
		return fmt.Errorf("bench: mean relative depth error %.2f exceeds bound %.2f",
			r.MeanRelErr, maxMeanErr)
	}
	return nil
}

// JSON renders the artifact bytes.
func (r *AnalyzeReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Table renders the report in the bench text format.
func (r *AnalyzeReport) Table() *Table {
	t := &Table{
		Title: "Depth-model accuracy (estimated vs executed rank-join depths)",
		Note: fmt.Sprintf("%d-table ranked workload, %d rows/table, sel=%g | mean rel err=%.1f%% max=%.1f%%",
			r.Config.Tables, r.Config.Rows, r.Config.Selectivity,
			r.MeanRelErr*100, r.MaxRelErr*100),
		Columns: []string{"k", "op", "pred", "est_dL", "act_dL", "errL%", "est_dR", "act_dR", "errR%"},
	}
	for _, s := range r.Samples {
		t.AddRow(s.K, s.Op, s.Pred,
			s.EstDL, s.ActDL, s.ErrL*100,
			s.EstDR, s.ActDR, s.ErrR*100)
	}
	return t
}

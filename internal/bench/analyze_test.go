package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

// smallAnalyzeConfig keeps the sweep fast under `go test`.
func smallAnalyzeConfig() AnalyzeConfig {
	return AnalyzeConfig{Tables: 3, Rows: 2000, Selectivity: 0.01, Seed: 11, Ks: []int{5, 20}}
}

func TestAnalyzeSweep(t *testing.T) {
	rep, err := Analyze(smallAnalyzeConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 4 shapes per k (the three 2-way rotations plus the 3-way join), the
	// 3-way plan holding 2 rank joins → 5 samples per k, 2 ks.
	if len(rep.Samples) != 10 {
		t.Fatalf("%d samples, want 10", len(rep.Samples))
	}
	for _, s := range rep.Samples {
		if s.ActDL <= 0 || s.ActDR <= 0 {
			t.Errorf("%s k=%d: executed depths (%d,%d) not positive", s.Op, s.K, s.ActDL, s.ActDR)
		}
		if s.EstDL <= 0 || s.EstDR <= 0 {
			t.Errorf("%s k=%d: estimated depths (%g,%g) not positive", s.Op, s.K, s.EstDL, s.EstDR)
		}
		if s.ErrL < 0 || s.ErrR < 0 {
			t.Errorf("negative relative error in sample %+v", s)
		}
	}
	if rep.MeanRelErr <= 0 || rep.MaxRelErr < rep.MeanRelErr {
		t.Errorf("aggregates look wrong: mean=%g max=%g", rep.MeanRelErr, rep.MaxRelErr)
	}

	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back AnalyzeReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("artifact not round-trippable: %v", err)
	}
	if back.MeanRelErr != rep.MeanRelErr || len(back.Samples) != len(rep.Samples) {
		t.Error("JSON round trip lost data")
	}

	tab := rep.Table().String()
	if !strings.Contains(tab, "Depth-model accuracy") || !strings.Contains(tab, "HRJN") {
		t.Errorf("table rendering incomplete:\n%s", tab)
	}
}

func TestAnalyzeCheckBound(t *testing.T) {
	rep := &AnalyzeReport{MeanRelErr: 0.42}
	if err := rep.CheckBound(0.5); err != nil {
		t.Errorf("mean 0.42 under bound 0.5 should pass: %v", err)
	}
	if err := rep.CheckBound(0.1); err == nil {
		t.Error("mean 0.42 over bound 0.1 should fail")
	}
}

func TestAnalyzeConfigValidation(t *testing.T) {
	if _, err := Analyze(AnalyzeConfig{Tables: 1, Ks: []int{5}}); err == nil {
		t.Error("1-table sweep should be rejected")
	}
	if _, err := Analyze(AnalyzeConfig{Tables: 3, Rows: 100}); err == nil {
		t.Error("empty Ks should be rejected")
	}
}

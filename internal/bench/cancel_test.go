package bench

import "testing"

// TestCancelBench runs a shrunk cancellation-under-load configuration and
// checks the report invariants: every session must come back with the typed
// cancellation error and the latency quantiles must be ordered.
func TestCancelBench(t *testing.T) {
	cfg := DefaultCancelConfig()
	cfg.Sessions = 4
	cfg.Workers = 2
	rep, err := Cancel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.CheckTyped(); err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != cfg.Sessions {
		t.Fatalf("sessions: got %d want %d", rep.Sessions, cfg.Sessions)
	}
	if rep.P50Millis < 0 || rep.P50Millis > rep.P99Millis || rep.P99Millis > rep.MaxMillis {
		t.Fatalf("quantiles out of order: p50=%v p99=%v max=%v",
			rep.P50Millis, rep.P99Millis, rep.MaxMillis)
	}
	if _, err := rep.JSON(); err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if rep.Table() == nil {
		t.Fatal("Table returned nil")
	}
}

// TestCancelBenchRejectsBadConfig covers the argument guard.
func TestCancelBenchRejectsBadConfig(t *testing.T) {
	cfg := DefaultCancelConfig()
	cfg.Sessions = 0
	if _, err := Cancel(cfg); err == nil {
		t.Fatal("want error for zero sessions")
	}
}

package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"time"

	"rankopt/internal/catalog"
	"rankopt/internal/engine"
	"rankopt/internal/workload"
)

// ShardConfig parameterizes the sharded serving-tier scaling benchmark. The
// workload is deliberately skewed so the coordinator's bounds have something
// to prove: tables are range-partitioned on the join key and scores are a
// function of the key (workload.ScoreByKey=1), so the global top-k lives
// entirely in the highest-key shard and every other shard's a-priori ceiling
// is beatable. No score indexes exist, so per-shard plans are blocking
// (sort-based) and per-shard work is proportional to shard volume — on a
// single CPU, skipped shards are the entire speedup, which is exactly the
// rank-aware early-stop claim (parallelism would only add to it).
type ShardConfig struct {
	// Rows per table (2-table join).
	Rows int `json:"rows"`
	// Keys is the join-key domain size; selectivity is 1/Keys and the range
	// partition covers [0, Keys).
	Keys int `json:"keys"`
	// Seed drives the deterministic workload.
	Seed int64 `json:"seed"`
	// K is the LIMIT bound of every session.
	K int `json:"k"`
	// Queries is how many sessions to run per shard count.
	Queries int `json:"queries"`
	// ShardCounts is the sweep, e.g. 1, 2, 4, 8. Count 1 is the degenerate
	// coordinator over one shard — the baseline the gate compares against.
	ShardCounts []int `json:"shard_counts"`
}

// DefaultShardConfig keeps a full sweep under a minute on one CPU.
func DefaultShardConfig() ShardConfig {
	return ShardConfig{
		Rows:        60000,
		Keys:        400,
		Seed:        29,
		K:           10,
		Queries:     20,
		ShardCounts: []int{1, 2, 4, 8},
	}
}

// ShardPoint is one shard count's measurements.
type ShardPoint struct {
	Shards    int     `json:"shards"`
	QPS       float64 `json:"qps"`
	P50Millis float64 `json:"p50_ms"`
	P99Millis float64 `json:"p99_ms"`
	// Coordinator counters summed over the point's sessions.
	Started      int `json:"shards_started"`
	Pruned       int `json:"shards_pruned"`
	EarlyStopped int `json:"shards_early_stopped"`
	Exhausted    int `json:"shards_exhausted"`
	TuplesPulled int `json:"tuples_pulled"`
	TuplesSaved  int `json:"tuples_saved"`
	// EarlyStopRate is the fraction of shard instances the bounds stopped
	// before exhaustion (pruned before starting or cancelled mid-stream).
	EarlyStopRate float64 `json:"early_stop_rate"`
}

// ShardReport is the BENCH_shard.json artifact.
type ShardReport struct {
	Config   ShardConfig  `json:"config"`
	MaxProcs int          `json:"gomaxprocs"`
	CPUs     int          `json:"cpus"`
	Points   []ShardPoint `json:"points"`
	// Speedup4x is qps at shards=4 over qps at shards=1 (0 when either point
	// is missing from the sweep) — the CI gate's number.
	Speedup4x float64 `json:"speedup_4x_vs_1x"`
}

// Shard runs the sweep: for each shard count, one engine serving the skewed
// catalog answers Queries identical top-k sessions; every session must take
// the scatter-gather path.
func Shard(cfg ShardConfig) (*ShardReport, error) {
	if cfg.Rows < 1 || cfg.Keys < 1 || cfg.K < 1 || cfg.Queries < 1 || len(cfg.ShardCounts) == 0 {
		return nil, fmt.Errorf("bench: shard config needs positive rows, keys, k, queries, and shard counts")
	}
	cat := catalog.New()
	for i, name := range []string{"T1", "T2"} {
		rel := workload.Ranked(workload.RankedConfig{
			Name: name, N: cfg.Rows, Selectivity: 1 / float64(cfg.Keys),
			Seed: cfg.Seed + int64(i)*7919, ScoreByKey: 1,
		})
		cat.AddTable(rel)
		if _, err := cat.CreateIndex(name, "key", false); err != nil {
			return nil, err
		}
		spec := catalog.PartitionSpec{
			Column: "key", Kind: catalog.PartitionRange, Lo: 0, Hi: float64(cfg.Keys),
		}
		if err := cat.SetPartition(name, spec); err != nil {
			return nil, err
		}
	}
	sql := fmt.Sprintf("SELECT * FROM T1, T2 WHERE T1.key = T2.key "+
		"ORDER BY T1.score + T2.score DESC LIMIT %d", cfg.K)

	rep := &ShardReport{
		Config: cfg, MaxProcs: runtime.GOMAXPROCS(0), CPUs: runtime.NumCPU(),
	}
	for _, n := range cfg.ShardCounts {
		eng := engine.NewWithConfig(cat, engine.Config{Shards: n})
		if err := eng.ShardError(); err != nil {
			return nil, err
		}
		// Warm the plan cache so measured sessions pay execution, not planning.
		if resp := eng.Run(engine.Request{SQL: sql, ExplainOnly: true}); resp.Err != nil {
			return nil, fmt.Errorf("bench: shard warm-up: %w", resp.Err)
		}
		point := ShardPoint{Shards: n}
		latencies := make([]time.Duration, cfg.Queries)
		start := time.Now()
		for q := 0; q < cfg.Queries; q++ {
			t0 := time.Now()
			resp := eng.Run(engine.Request{ID: fmt.Sprintf("s%d-q%03d", n, q), SQL: sql})
			latencies[q] = time.Since(t0)
			if resp.Err != nil {
				return nil, fmt.Errorf("bench: shards=%d query %d: %w", n, q, resp.Err)
			}
			if !resp.Sharded || resp.ShardStats == nil {
				return nil, fmt.Errorf("bench: shards=%d query %d fell back to the single path", n, q)
			}
			st := resp.ShardStats
			point.Started += st.Started
			point.Pruned += st.Pruned
			point.EarlyStopped += st.EarlyStopped
			point.Exhausted += st.Exhausted
			point.TuplesPulled += st.TuplesPulled
			point.TuplesSaved += st.TuplesSaved
		}
		total := time.Since(start)
		point.QPS = float64(cfg.Queries) / total.Seconds()
		sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
		ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
		point.P50Millis = ms(latencies[len(latencies)/2])
		point.P99Millis = ms(latencies[int(0.99*float64(len(latencies)-1))])
		point.EarlyStopRate = float64(point.Pruned+point.EarlyStopped) / float64(cfg.Queries*n)
		rep.Points = append(rep.Points, point)
	}
	var qps1, qps4 float64
	for _, p := range rep.Points {
		if p.Shards == 1 {
			qps1 = p.QPS
		}
		if p.Shards == 4 {
			qps4 = p.QPS
		}
	}
	if qps1 > 0 && qps4 > 0 {
		rep.Speedup4x = qps4 / qps1
	}
	return rep, nil
}

// JSON renders the artifact bytes.
func (r *ShardReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Table renders the report in the bench text format.
func (r *ShardReport) Table() *Table {
	t := &Table{
		Title: "Sharded scatter-gather scaling",
		Note: fmt.Sprintf("%d rows/table, %d queries per point, k=%d, GOMAXPROCS=%d, cpus=%d; speedup 4x vs 1x: %.2f",
			r.Config.Rows, r.Config.Queries, r.Config.K, r.MaxProcs, r.CPUs, r.Speedup4x),
		Columns: []string{"shards", "qps", "p50_ms", "p99_ms", "pruned", "early_stopped", "exhausted", "early_stop_rate", "tuples_saved"},
	}
	for _, p := range r.Points {
		t.AddRow(float64(p.Shards), p.QPS, p.P50Millis, p.P99Millis,
			float64(p.Pruned), float64(p.EarlyStopped), float64(p.Exhausted),
			p.EarlyStopRate, float64(p.TuplesSaved))
	}
	return t
}

// CheckScaling is the CI gate: shards=4 must beat shards=1 by at least min,
// and the bounds must actually have stopped shards early somewhere.
func (r *ShardReport) CheckScaling(min float64) error {
	if r.Speedup4x < min {
		return fmt.Errorf("bench: shard scaling %.2fx below the %.2fx gate", r.Speedup4x, min)
	}
	for _, p := range r.Points {
		if p.Shards > 1 && p.Pruned+p.EarlyStopped > 0 {
			return nil
		}
	}
	return fmt.Errorf("bench: no shard was ever pruned or early-stopped — the bounds did no work")
}

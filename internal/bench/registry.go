package bench

import "fmt"

// Experiment names one runnable reproduction unit.
type Experiment struct {
	Name string
	// What identifies the paper artifact it regenerates.
	What string
	Run  func() (*Table, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "Figure 1: sort vs rank-join cost across selectivity", func() (*Table, error) { return Fig1(), nil }},
		{"fig2", "Figure 2: MEMO growth from interesting orders", Fig2},
		{"fig3", "Figure 3: MEMO growth from ranking expressions", Fig3},
		{"table1", "Table 1: interesting order expressions of Q2", Table1},
		{"fig4", "Figure 4: k propagation through a rank-join pipeline", Fig4},
		{"fig6", "Figure 6: effect of k on plan costs, crossover k*", func() (*Table, error) { return Fig6(), nil }},
		{"fig13", "Figure 13: depth estimation accuracy vs k", Fig13},
		{"fig14", "Figure 14: depth estimation accuracy vs selectivity", Fig14},
		{"fig15", "Figure 15: buffer size estimation", Fig15},
		{"polling", "Ablation: HRJN polling strategies", AblationPolling},
		{"joins", "Ablation: rank-join choices", AblationJoinChoices},
		{"pruning", "Ablation: pruning ingredients", AblationPruning},
		{"dists", "Ablation: depth-model robustness across score distributions", AblationDistributions},
		{"topksort", "Ablation: full sort vs bounded-heap top-k sort", AblationTopKSort},
		{"mway", "Ablation: m-way HRJN vs binary HRJN tree", AblationMultiwayHRJN},
		{"anyk", "Any-k enumeration vs MultiHRJN crossover", func() (*Table, error) {
			r, err := AnyK(DefaultAnyKConfig())
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"taplan", "Ablation: Fagin-TA plan vs optimizer's winner", AblationRankAggregate},
		{"throughput", "Concurrent session throughput at 1/2/4/8 workers", ThroughputExperiment},
		{"plancache", "Plan cache: cold vs warm throughput and allocations", PlanCacheExperiment},
		{"batch", "Batch vs per-tuple execution on scan/filter/project/hash-join", BatchExecExperiment},
	}
}

// ByName finds an experiment.
func ByName(name string) (Experiment, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", name)
}

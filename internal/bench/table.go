// Package bench regenerates every table and figure of the paper's
// evaluation: the sort-plan vs rank-join cost crossovers (Figures 1 and 6),
// the MEMO plan-count growth under interesting orders and ranking
// expressions (Figures 2 and 3, Table 1), k-propagation through a rank-join
// pipeline (Figure 4), and the Section 5 depth- and buffer-estimation
// accuracy experiments (Figures 13–15), plus ablations over the design
// choices. Each experiment returns a Table whose rows are the series the
// paper plots; cmd/raqo-bench prints them and bench_test.go wraps them as Go
// benchmarks.
package bench

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row; values may be numbers or strings.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case string:
			row[i] = x
		case int:
			row[i] = fmt.Sprintf("%d", x)
		case float64:
			row[i] = formatFloat(x)
		default:
			row[i] = fmt.Sprint(x)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x >= 1000:
		return fmt.Sprintf("%.0f", x)
	case x >= 1:
		return fmt.Sprintf("%.2f", x)
	default:
		return fmt.Sprintf("%.5f", x)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString("== " + t.Title + " ==\n")
	if t.Note != "" {
		b.WriteString(t.Note + "\n")
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, v := range r {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	writeRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(fmt.Sprintf("%*s", widths[i], v))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

package bench

import (
	"encoding/json"
	"testing"
)

// A miniature sweep must produce one clean point per worker count and a
// well-formed JSON artifact.
func TestThroughputSmoke(t *testing.T) {
	cfg := ThroughputConfig{
		Tables: 3, Rows: 1500, Selectivity: 0.02, Seed: 9,
		Queries: 8, K: 5, Workers: []int{1, 4},
	}
	rep, err := Throughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != len(cfg.Workers) {
		t.Fatalf("%d points, want %d", len(rep.Points), len(cfg.Workers))
	}
	for _, p := range rep.Points {
		if p.Errors != 0 {
			t.Errorf("workers=%d: %d failed sessions", p.Workers, p.Errors)
		}
		if p.QPS <= 0 {
			t.Errorf("workers=%d: non-positive QPS %v", p.Workers, p.QPS)
		}
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back ThroughputReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if back.Config.Queries != cfg.Queries || len(back.Points) != len(rep.Points) {
		t.Error("artifact lost fields in the round trip")
	}
	tab := rep.Table()
	if len(tab.Rows) != len(rep.Points) {
		t.Errorf("table has %d rows, want %d", len(tab.Rows), len(rep.Points))
	}
}

package bench

import (
	"fmt"
	"math"

	"rankopt/internal/estimate"
	"rankopt/internal/exec"
)

// planPEstimates carries the three estimate series for one Plan P operator
// level: the Any-k lower bound, the average-case depth, and the worst-case
// Top-k upper bound (each averaged over the two symmetric sides).
type planPEstimates struct {
	anyK, avg, worst float64
}

// estimateSeries annotates a balanced 4-input estimate tree for Plan P under
// each propagation mode and returns the estimates for the top operator and
// for the bottom-level (child) operators.
func estimateSeries(n int, s, slab float64, k int) (top, child planPEstimates, err error) {
	run := func(mode estimate.Mode) (t, c float64, err error) {
		root, err := estimate.Balanced(4, float64(n), slab, s)
		if err != nil {
			return 0, 0, err
		}
		if err := estimate.Propagate(root, float64(k), mode); err != nil {
			return 0, 0, err
		}
		if mode == estimate.ModeAnyK {
			return (root.CL + root.CR) / 2, (root.Left.CL + root.Left.CR) / 2, nil
		}
		return (root.DL + root.DR) / 2, (root.Left.DL + root.Left.DR) / 2, nil
	}
	if top.anyK, child.anyK, err = run(estimate.ModeAnyK); err != nil {
		return
	}
	if top.avg, child.avg, err = run(estimate.ModeAvg); err != nil {
		return
	}
	top.worst, child.worst, err = run(estimate.ModeTopK)
	return
}

func avgDepth(st exec.RankJoinStats) float64 {
	return float64(st.LeftDepth+st.RightDepth) / 2
}

func errPct(est, actual float64) float64 {
	if actual == 0 {
		return 0
	}
	return math.Abs(est-actual) / actual * 100
}

// depthColumns is the shared header of Figures 13 and 14: per operator
// level, the measured depth, the three estimate series, and the estimation
// error of the average-case model (the paper's headline accuracy metric,
// <30% on its data).
var depthColumns = []string{
	"d1/d2 actual", "anyk", "avg", "worst", "avg err%",
	"d5/d6 actual", "anyk", "avg", "worst", "avg err%",
}

func depthRow(k any, leftSt, topSt exec.RankJoinStats, top, child planPEstimates) []any {
	d12 := avgDepth(leftSt)
	d56 := avgDepth(topSt)
	return []any{k,
		d12, child.anyK, child.avg, child.worst, errPct(child.avg, d12),
		d56, top.anyK, top.avg, top.worst, errPct(top.avg, d56),
	}
}

// Fig13 reproduces Figure 13: measured rank-join input depths on Plan P for
// varying k against the Any-k estimate (lower bound), the average-case
// estimate, and the worst-case Top-k estimate (upper bound). The paper's
// claims: the measured depth lies between the Any-k and Top-k estimates and
// the estimation error stays under ~30%.
func Fig13() (*Table, error) {
	const (
		n = 3000
		s = 0.01
	)
	t := &Table{
		Title:   "Figure 13: input depth vs k on Plan P (n=3000, s=0.01)",
		Note:    "d1/d2: bottom rank-join depths; d5/d6: top rank-join depths",
		Columns: append([]string{"k"}, depthColumns...),
	}
	for _, k := range []int{10, 25, 50, 75, 100, 150, 200} {
		p := buildPlanP(n, s, 42, exec.Alternate)
		topSt, leftSt, _, err := p.run(k)
		if err != nil {
			return nil, err
		}
		top, child, err := estimateSeries(n, s, p.slab, k)
		if err != nil {
			return nil, err
		}
		t.AddRow(depthRow(k, leftSt, topSt, top, child)...)
	}
	return t, nil
}

// Fig14 reproduces Figure 14: measured vs estimated depths varying the join
// selectivity at fixed k. Lower selectivity forces deeper digs.
func Fig14() (*Table, error) {
	const (
		n = 3000
		k = 50
	)
	t := &Table{
		Title:   "Figure 14: input depth vs join selectivity on Plan P (n=3000, k=50)",
		Columns: append([]string{"selectivity"}, depthColumns...),
	}
	for _, s := range []float64{0.002, 0.005, 0.01, 0.02, 0.05, 0.1} {
		p := buildPlanP(n, s, 77, exec.Alternate)
		topSt, leftSt, _, err := p.run(k)
		if err != nil {
			return nil, err
		}
		top, child, err := estimateSeries(n, s, p.slab, k)
		if err != nil {
			return nil, err
		}
		t.AddRow(depthRow(fmt.Sprintf("%.3f", s), leftSt, topSt, top, child)...)
	}
	return t, nil
}

// Fig15 reproduces Figure 15: the rank-join ranking-buffer (priority queue)
// size of Plan P's bottom-left operator — measured high-water mark against
// the d1·d2·s upper bound computed from measured depths and from estimated
// (average-case and worst-case) depths.
func Fig15() (*Table, error) {
	const (
		n = 3000
		s = 0.01
	)
	t := &Table{
		Title: "Figure 15: rank-join buffer size vs k (n=3000, s=0.01)",
		Note:  "buffer = priority-queue high-water mark of the bottom-left HRJN",
		Columns: []string{"k", "actual buffer", "actual UB (d1*d2*s)",
			"estimated UB (avg)", "estimated UB (worst)"},
	}
	for _, k := range []int{10, 25, 50, 75, 100, 150, 200} {
		p := buildPlanP(n, s, 11, exec.Alternate)
		_, leftSt, _, err := p.run(k)
		if err != nil {
			return nil, err
		}
		actualUB := estimate.BufferUpperBound(float64(leftSt.LeftDepth), float64(leftSt.RightDepth), s)
		_, child, err := estimateSeries(n, s, p.slab, k)
		if err != nil {
			return nil, err
		}
		t.AddRow(k, leftSt.MaxQueue, actualUB,
			estimate.BufferUpperBound(child.avg, child.avg, s),
			estimate.BufferUpperBound(child.worst, child.worst, s))
	}
	return t, nil
}

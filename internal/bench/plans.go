package bench

import (
	"fmt"
	"math/rand"

	"rankopt/internal/catalog"
	"rankopt/internal/costmodel"
	"rankopt/internal/exec"
	"rankopt/internal/expr"
	"rankopt/internal/logical"
	"rankopt/internal/plan"
	"rankopt/internal/relation"
	"rankopt/internal/workload"
)

var params = costmodel.Default()

// twoRelPlans builds the two alternatives of Figures 1 and 6 as cost-model
// plan trees over two ranked relations of cardinality n joined with
// selectivity s:
//
//   - the sort plan: Sort(HashJoin(SeqScan, SeqScan)) — blocking,
//     k-independent;
//   - the rank-join plan: HRJN over descending score index scans —
//     pipelined, costed through the depth model.
func twoRelPlans(n, s float64) (sortPlan, rankPlan *plan.Node) {
	mkSeq := func(t string) *plan.Node {
		return &plan.Node{Op: plan.OpSeqScan, Table: t, Card: n, P: &params,
			Props: plan.Props{Order: plan.NoOrder, Pipelined: true}}
	}
	mkIdx := func(t string) *plan.Node {
		return &plan.Node{Op: plan.OpIndexScan, Table: t, IndexDesc: true,
			Card: n, LSlab: 1 / n, P: &params,
			Props: plan.Props{Order: plan.RankOrder(t), Pipelined: true}}
	}
	eq := []logical.JoinPred{{L: expr.Col("L", "key"), R: expr.Col("R", "key")}}
	score := func(t string) expr.ScoreSum {
		return expr.Sum(expr.ScoreTerm{Weight: 1, E: expr.Col(t, "score")})
	}
	join := &plan.Node{
		Op:       plan.OpHashJoin,
		Children: []*plan.Node{mkSeq("L"), mkSeq("R")},
		EqPreds:  eq,
		Card:     s * n * n,
		Sel:      s,
		P:        &params,
	}
	sortPlan = &plan.Node{
		Op:       plan.OpSort,
		Children: []*plan.Node{join},
		SortKeys: []exec.SortKey{{E: expr.Bin(expr.OpAdd, expr.Col("L", "score"), expr.Col("R", "score")), Desc: true}},
		Card:     join.Card,
		P:        &params,
		Props:    plan.Props{Order: plan.RankOrder("L", "R")},
	}
	rankPlan = &plan.Node{
		Op:       plan.OpHRJN,
		Children: []*plan.Node{mkIdx("L"), mkIdx("R")},
		EqPreds:  eq,
		LScore:   score("L"),
		RScore:   score("R"),
		Card:     s * n * n,
		Sel:      s,
		LLeaves:  1, RLeaves: 1,
		BaseN: n,
		LSlab: 1 / n, RSlab: 1 / n,
		P:     &params,
		Props: plan.Props{Order: plan.RankOrder("L", "R"), Pipelined: true},
	}
	return sortPlan, rankPlan
}

// planP is the executable version of the paper's Plan P (Figure 11): a
// balanced tree of three HRJN operators over four ranked inputs, each input
// delivered by a descending score scan.
type planP struct {
	top, left, right *exec.HRJN
	cat              *catalog.Catalog
	n                int
	s                float64
	slab             float64
}

// buildPlanP generates four ranked relations with the target join
// selectivity and wires up the operator tree.
func buildPlanP(n int, s float64, seed int64, strategy exec.PullStrategy) *planP {
	return buildPlanPDist(n, s, seed, strategy, workload.DistUniform)
}

// buildPlanPDist is buildPlanP with a configurable score distribution.
func buildPlanPDist(n int, s float64, seed int64, strategy exec.PullStrategy, dist workload.ScoreDist) *planP {
	cat, names := workload.RankedSet(4, workload.RankedConfig{N: n, Selectivity: s, Seed: seed, Dist: dist})
	scan := func(name string) exec.Operator {
		tab, err := cat.Table(name)
		if err != nil {
			panic(err)
		}
		return exec.NewIndexScan(tab.Rel, cat.IndexOn(name, "score"), true)
	}
	score := func(name string) expr.Expr {
		return expr.Sum(expr.ScoreTerm{Weight: 1, E: expr.Col(name, "score")})
	}
	pairScore := func(a, b string) expr.Expr {
		return expr.Sum(
			expr.ScoreTerm{Weight: 1, E: expr.Col(a, "score")},
			expr.ScoreTerm{Weight: 1, E: expr.Col(b, "score")},
		)
	}
	left := exec.NewHRJN(scan(names[0]), scan(names[1]),
		score(names[0]), score(names[1]),
		expr.Col(names[0], "key"), expr.Col(names[1], "key"), nil)
	left.Strategy = strategy
	right := exec.NewHRJN(scan(names[2]), scan(names[3]),
		score(names[2]), score(names[3]),
		expr.Col(names[2], "key"), expr.Col(names[3], "key"), nil)
	right.Strategy = strategy
	top := exec.NewHRJN(left, right,
		pairScore(names[0], names[1]), pairScore(names[2], names[3]),
		expr.Col(names[0], "key"), expr.Col(names[2], "key"), nil)
	top.Strategy = strategy
	slab := cat.ColStats(names[0], "score").Slab
	return &planP{top: top, left: left, right: right, cat: cat, n: n, s: s, slab: slab}
}

// run pulls k results from the top operator and returns the measured stats
// of the three rank-joins.
func (p *planP) run(k int) (top, left, right exec.RankJoinStats, err error) {
	if _, err = exec.CollectK(p.top, k); err != nil {
		return
	}
	return p.top.Stats(), p.left.Stats(), p.right.Stats(), nil
}

// abcCatalog builds the paper's A/B/C tables for the Figure 2/3 and Table 1
// experiments: columns c1 (uniform score, indexed) and c2 (join key,
// indexed), n tuples each.
func abcCatalog(n int) *catalog.Catalog {
	cat := catalog.New()
	for i, name := range []string{"A", "B", "C"} {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		sch := relation.NewSchema(
			relation.Column{Table: name, Name: "c1", Kind: relation.KindFloat},
			relation.Column{Table: name, Name: "c2", Kind: relation.KindInt},
		)
		rel := relation.New(name, sch)
		for j := 0; j < n; j++ {
			rel.MustAppend(relation.Tuple{
				relation.Float(rng.Float64()),
				relation.Int(int64(rng.Intn(50))),
			})
		}
		cat.AddTable(rel)
		for _, col := range []string{"c1", "c2"} {
			if _, err := cat.CreateIndex(name, col, false); err != nil {
				panic(fmt.Sprintf("bench: %v", err))
			}
		}
	}
	return cat
}

package bench

import "testing"

// TestPlannerBenchSmoke runs a scaled-down sweep end to end and checks the
// report is internally coherent: every point planned with both planners,
// produced matching executed answers, and the greedy path never fell back.
// The timing gate itself is CI's job at full scale — at smoke scale the
// medians are noise — but quality and parity must hold at any scale.
func TestPlannerBenchSmoke(t *testing.T) {
	cfg := DefaultPlannerConfig()
	cfg.Rows = 400
	cfg.ExecRows = 80
	cfg.Trials = 3
	cfg.Selectivities = []float64{0.01, 0.05}
	rep, err := Planner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != len(cfg.Selectivities) {
		t.Fatalf("got %d points for %d selectivities", len(rep.Points), len(cfg.Selectivities))
	}
	for _, pt := range rep.Points {
		if pt.Fallback {
			t.Errorf("sel=%g: greedy fell back to the DP", pt.Selectivity)
		}
		if !pt.ResultsMatch {
			t.Errorf("sel=%g: executed answers diverged", pt.Selectivity)
		}
		if pt.DPCost <= 0 || pt.GreedyCost <= 0 {
			t.Errorf("sel=%g: degenerate plan costs dp=%v greedy=%v",
				pt.Selectivity, pt.DPCost, pt.GreedyCost)
		}
		if pt.CostRatio > 1.2 {
			t.Errorf("sel=%g: greedy plan cost ratio %.2f exceeds 1.2",
				pt.Selectivity, pt.CostRatio)
		}
	}
	if _, err := rep.JSON(); err != nil {
		t.Fatal(err)
	}
	if s := rep.Table().String(); s == "" {
		t.Fatal("empty table rendering")
	}
}

package bench

import (
	"encoding/json"
	"testing"
)

// A miniature sweep must shard every session, show the bounds doing work on
// the skewed workload, and produce a well-formed JSON artifact.
func TestShardSmoke(t *testing.T) {
	cfg := ShardConfig{
		Rows: 6000, Keys: 80, Seed: 29, K: 8, Queries: 4,
		ShardCounts: []int{1, 2, 4},
	}
	rep, err := Shard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != len(cfg.ShardCounts) {
		t.Fatalf("%d points, want %d", len(rep.Points), len(cfg.ShardCounts))
	}
	stopped := 0
	for _, p := range rep.Points {
		if p.QPS <= 0 {
			t.Errorf("shards=%d: non-positive QPS %v", p.Shards, p.QPS)
		}
		if p.Shards > 1 {
			stopped += p.Pruned + p.EarlyStopped
		}
	}
	if stopped == 0 {
		t.Error("skewed workload never pruned or early-stopped a shard")
	}
	if rep.CPUs < 1 {
		t.Errorf("cpus field not stamped: %d", rep.CPUs)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back ShardReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if back.Config.Rows != cfg.Rows || len(back.Points) != len(rep.Points) {
		t.Error("artifact lost fields in the round trip")
	}
}

package bench

import (
	"encoding/json"
	"testing"

	"rankopt/internal/core"
	"rankopt/internal/engine"
	"rankopt/internal/workload"
)

// A miniature sweep must produce one clean cold/warm point per worker count,
// show the warm side hitting the cache, and round-trip its JSON artifact.
func TestPlanCacheSmoke(t *testing.T) {
	cfg := PlanCacheConfig{
		Tables: 3, Rows: 800, Selectivity: 0.02, Seed: 9,
		Queries: 8, K: 5, Workers: []int{1, 4},
	}
	rep, err := PlanCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != len(cfg.Workers) {
		t.Fatalf("%d points, want %d", len(rep.Points), len(cfg.Workers))
	}
	for _, p := range rep.Points {
		if p.ColdQPS <= 0 || p.WarmQPS <= 0 {
			t.Errorf("workers=%d: non-positive QPS (cold=%v warm=%v)", p.Workers, p.ColdQPS, p.WarmQPS)
		}
		if p.Speedup <= 0 {
			t.Errorf("workers=%d: non-positive speedup %v", p.Workers, p.Speedup)
		}
	}
	if rep.CacheHits == 0 {
		t.Error("warm engine recorded zero cache hits")
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back PlanCacheReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if back.Config.Queries != cfg.Queries || len(back.Points) != len(rep.Points) {
		t.Error("artifact lost fields in the round trip")
	}
}

// benchEngines builds the shared catalog and batch once per benchmark
// process.
func benchSetup(b *testing.B) (cold, warm *engine.Engine, reqs []engine.Request) {
	b.Helper()
	cfg := PlanCacheConfig{
		Tables: 4, Rows: 1000, Selectivity: 0.01, Seed: 7,
		Queries: 16, K: 5, Workers: []int{1},
	}
	cat, _ := workload.RankedSet(cfg.Tables, workload.RankedConfig{
		N: cfg.Rows, Selectivity: cfg.Selectivity, Seed: cfg.Seed,
	})
	cold = engine.NewWithConfig(cat, engine.Config{DisablePlanCache: true})
	warm = engine.NewWithConfig(cat, engine.Config{Options: core.Options{}})
	reqs = planCacheQueries(cfg)
	if err := firstErr(warm.RunAll(reqs, 1)); err != nil {
		b.Fatal(err)
	}
	return cold, warm, reqs
}

// BenchmarkPlanCacheCold measures the full parse+optimize+execute pipeline
// per session batch.
func BenchmarkPlanCacheCold(b *testing.B) {
	cold, _, reqs := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := firstErr(cold.RunAll(reqs, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCacheWarm measures the served path: every session hits the
// primed cache and only re-instantiates and executes.
func BenchmarkPlanCacheWarm(b *testing.B) {
	_, warm, reqs := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := firstErr(warm.RunAll(reqs, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sort"

	"rankopt/internal/exec"
	"rankopt/internal/expr"
	"rankopt/internal/relation"
	"rankopt/internal/workload"
)

// AnyKConfig parameterizes the any-k vs MultiHRJN operator sweep over join
// width × k. Both operators answer the same m-way ranked path join; AnyK
// consumes the generated (unsorted) relations directly, while MultiHRJN pays
// for the descending-order inputs its contract demands (a sort per input,
// exactly what a plan using it would charge). The sweep measures end-to-end
// top-k wall time, so the comparison matches what the cost model trades off.
type AnyKConfig struct {
	// Rows per table.
	Rows int `json:"rows"`
	// Selectivity is the join selectivity (key domain = 1/Selectivity), so
	// the per-key fan-out is Rows*Selectivity — the combinatorial factor
	// MultiHRJN's eager combine multiplies across levels.
	Selectivity float64 `json:"selectivity"`
	// Widths are the swept join widths (2..8).
	Widths []int `json:"widths"`
	// Ks are the swept LIMIT bounds.
	Ks []int `json:"ks"`
	// Trials is how many timed runs the median is taken over.
	Trials int `json:"trials"`
	// Seed drives the workload generator; each (width, k) point derives its
	// own seed from it.
	Seed int64 `json:"seed"`
}

// DefaultAnyKConfig sweeps widths 2–4 across three k decades at a per-key
// fan-out of 8 — small enough to finish in seconds, large enough that the
// eager combine's product shows.
func DefaultAnyKConfig() AnyKConfig {
	return AnyKConfig{
		Rows:        400,
		Selectivity: 0.02,
		Widths:      []int{2, 3, 4},
		Ks:          []int{1, 10, 100},
		Trials:      7,
		Seed:        19,
	}
}

// AnyKPoint is one (width, k) measurement.
type AnyKPoint struct {
	Width int `json:"width"`
	K     int `json:"k"`
	// Seed is the per-point workload seed (derived from Config.Seed), stamped
	// so a single point can be reproduced without rerunning the sweep.
	Seed        int64   `json:"seed"`
	AnyKMicros  float64 `json:"anyk_us"`
	MultiMicros float64 `json:"multihrjn_us"`
	// Speedup is MultiMicros / AnyKMicros (>1 means any-k won).
	Speedup float64 `json:"speedup"`
	// Match is the three-way correctness verdict: AnyK, MultiHRJN, and the
	// brute-force reference agreed on the top-k score sequence.
	Match bool `json:"results_match"`
}

// AnyKReport is the BENCH_anyk.json artifact.
type AnyKReport struct {
	Config   AnyKConfig  `json:"config"`
	MaxProcs int         `json:"gomaxprocs"`
	CPUs     int         `json:"cpus"`
	Points   []AnyKPoint `json:"points"`
	// BestSpeedup is the largest any-k speedup of the sweep — the CI gate's
	// number.
	BestSpeedup float64 `json:"best_speedup"`
}

// anykBenchRels generates the point's relations with per-table derived seeds.
func anykBenchRels(m, n int, sel float64, seed int64) []*relation.Relation {
	rels := make([]*relation.Relation, m)
	for i := 0; i < m; i++ {
		rels[i] = workload.Ranked(workload.RankedConfig{
			Name: fmt.Sprintf("T%d", i+1), N: n, Selectivity: sel, Seed: seed + int64(i)*7919,
		})
	}
	return rels
}

// anykBruteTopK computes the reference top-k combined scores of the m-way
// key join over raw tuples.
func anykBruteTopK(rels []*relation.Relation, k int) []float64 {
	byKey := make([]map[int64][]float64, len(rels))
	for i, r := range rels {
		byKey[i] = map[int64][]float64{}
		for _, t := range r.Tuples() {
			byKey[i][t[1].AsInt()] = append(byKey[i][t[1].AsInt()], t[2].AsFloat())
		}
	}
	var scores []float64
	for key, base := range byKey[0] {
		partials := base
		for i := 1; i < len(byKey); i++ {
			next := byKey[i][key]
			if len(next) == 0 {
				partials = nil
				break
			}
			grown := make([]float64, 0, len(partials)*len(next))
			for _, p := range partials {
				for _, v := range next {
					grown = append(grown, p+v)
				}
			}
			partials = grown
		}
		scores = append(scores, partials...)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	if len(scores) > k {
		scores = scores[:k]
	}
	return scores
}

// anykCombined sums the m per-input score columns of the (id, key, score)^m
// concatenated output.
func anykCombined(t relation.Tuple, m int) float64 {
	total := 0.0
	for i := 0; i < m; i++ {
		total += t[i*3+2].AsFloat()
	}
	return total
}

// runAnyKOperator constructs the any-k enumerator over unsorted scans and
// collects the top k.
func runAnyKOperator(rels []*relation.Relation, k int) ([]relation.Tuple, error) {
	m := len(rels)
	inputs := make([]exec.Operator, m)
	scores := make([]expr.Expr, m)
	lkeys := make([]expr.Expr, m-1)
	rkeys := make([]expr.Expr, m-1)
	for i, r := range rels {
		inputs[i] = exec.NewSeqScan(r)
		scores[i] = expr.Col(r.Name, "score")
		if i < m-1 {
			lkeys[i] = expr.Col(r.Name, "key")
		}
		if i > 0 {
			rkeys[i-1] = expr.Col(r.Name, "key")
		}
	}
	j, err := exec.NewAnyK(inputs, scores, lkeys, rkeys)
	if err != nil {
		return nil, err
	}
	return exec.CollectK(j, k)
}

// runMultiOperator constructs MultiHRJN with the sort enforcers its input
// contract requires and collects the top k.
func runMultiOperator(rels []*relation.Relation, k int) ([]relation.Tuple, error) {
	m := len(rels)
	inputs := make([]exec.Operator, m)
	scores := make([]expr.Expr, m)
	keys := make([]expr.Expr, m)
	for i, r := range rels {
		inputs[i] = exec.NewSort(exec.NewSeqScan(r),
			exec.SortKey{E: expr.Col(r.Name, "score"), Desc: true})
		scores[i] = expr.Col(r.Name, "score")
		keys[i] = expr.Col(r.Name, "key")
	}
	j, err := exec.NewMultiHRJN(inputs, scores, keys)
	if err != nil {
		return nil, err
	}
	return exec.CollectK(j, k)
}

// AnyK runs the sweep.
func AnyK(cfg AnyKConfig) (*AnyKReport, error) {
	if cfg.Rows < 1 || cfg.Selectivity <= 0 || cfg.Trials < 1 ||
		len(cfg.Widths) == 0 || len(cfg.Ks) == 0 {
		return nil, fmt.Errorf("bench: degenerate anyk config %+v", cfg)
	}
	rep := &AnyKReport{
		Config: cfg, MaxProcs: runtime.GOMAXPROCS(0), CPUs: runtime.NumCPU(),
	}
	pi := 0
	for _, m := range cfg.Widths {
		for _, k := range cfg.Ks {
			seed := cfg.Seed + int64(pi)*1009
			pi++
			rels := anykBenchRels(m, cfg.Rows, cfg.Selectivity, seed)

			akTuples, err := runAnyKOperator(rels, k)
			if err != nil {
				return nil, fmt.Errorf("bench: anyk m=%d k=%d: %w", m, k, err)
			}
			mhTuples, err := runMultiOperator(rels, k)
			if err != nil {
				return nil, fmt.Errorf("bench: multihrjn m=%d k=%d: %w", m, k, err)
			}
			want := anykBruteTopK(rels, k)
			match := len(akTuples) == len(want) && len(mhTuples) == len(want)
			if match {
				for i := range want {
					tol := 1e-9 * math.Max(math.Abs(want[i]), 1)
					if math.Abs(anykCombined(akTuples[i], m)-want[i]) > tol ||
						math.Abs(anykCombined(mhTuples[i], m)-want[i]) > tol {
						match = false
						break
					}
				}
			}

			pt := AnyKPoint{
				Width: m, K: k, Seed: seed, Match: match,
				AnyKMicros: medianMicros(cfg.Trials, func() {
					if _, err := runAnyKOperator(rels, k); err != nil {
						panic(err)
					}
				}),
				MultiMicros: medianMicros(cfg.Trials, func() {
					if _, err := runMultiOperator(rels, k); err != nil {
						panic(err)
					}
				}),
			}
			pt.Speedup = pt.MultiMicros / math.Max(pt.AnyKMicros, 1e-3)
			rep.BestSpeedup = math.Max(rep.BestSpeedup, pt.Speedup)
			rep.Points = append(rep.Points, pt)
		}
	}
	return rep, nil
}

// CheckGates is the CI gate: every point's three-way answers must agree, and
// at least one sweep point must show any-k beating MultiHRJN by minSpeedup —
// the crossover the cost model banks on when it picks AnyK plans.
func (r *AnyKReport) CheckGates(minSpeedup float64) error {
	for _, pt := range r.Points {
		if !pt.Match {
			return fmt.Errorf("bench: anyk and multihrjn answers diverged at width=%d k=%d (seed %d)",
				pt.Width, pt.K, pt.Seed)
		}
	}
	if r.BestSpeedup < minSpeedup {
		return fmt.Errorf("bench: best any-k speedup %.2fx below the %.2fx gate", r.BestSpeedup, minSpeedup)
	}
	return nil
}

// JSON renders the artifact bytes.
func (r *AnyKReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Table renders the report in the bench text format.
func (r *AnyKReport) Table() *Table {
	t := &Table{
		Title: "Any-k enumeration vs MultiHRJN (width x k sweep)",
		Note: fmt.Sprintf("%d rows/table, sel=%g (fan-out %.0f), medians over %d trials | best any-k speedup=%.2fx",
			r.Config.Rows, r.Config.Selectivity, float64(r.Config.Rows)*r.Config.Selectivity,
			r.Config.Trials, r.BestSpeedup),
		Columns: []string{"width", "k", "anyk_us", "multihrjn_us", "speedup", "match"},
	}
	for _, pt := range r.Points {
		t.AddRow(float64(pt.Width), float64(pt.K), pt.AnyKMicros, pt.MultiMicros, pt.Speedup, pt.Match)
	}
	return t
}

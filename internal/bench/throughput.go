package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"rankopt/internal/core"
	"rankopt/internal/engine"
	"rankopt/internal/workload"
)

// ThroughputConfig parameterizes the concurrent query-serving benchmark: a
// fixed batch of top-k sessions is replayed at each worker count over one
// shared synthetic catalog, measuring end-to-end queries/sec.
type ThroughputConfig struct {
	// Tables, Rows, Selectivity, Seed shape the workload.RankedSet catalog.
	Tables      int     `json:"tables"`
	Rows        int     `json:"rows"`
	Selectivity float64 `json:"selectivity"`
	Seed        int64   `json:"seed"`
	// Queries is the number of sessions replayed per measurement point.
	Queries int `json:"queries"`
	// K is the LIMIT of every session's query.
	K int `json:"k"`
	// Workers lists the session-worker counts to measure.
	Workers []int `json:"workers"`
	// OptWorkers additionally parallelizes each session's DP enumeration
	// (0 keeps the optimizer sequential).
	OptWorkers int `json:"opt_workers"`
}

// DefaultThroughputConfig is the 3-table workload the PR's acceptance run
// uses: large enough that sessions do real optimizer + rank-join work, small
// enough to finish in seconds.
func DefaultThroughputConfig() ThroughputConfig {
	return ThroughputConfig{
		Tables:      3,
		Rows:        20000,
		Selectivity: 0.005,
		Seed:        7,
		Queries:     64,
		K:           10,
		Workers:     []int{1, 2, 4, 8},
	}
}

// ThroughputPoint is one measured worker count.
type ThroughputPoint struct {
	Workers int     `json:"workers"`
	Queries int     `json:"queries"`
	Millis  float64 `json:"elapsed_ms"`
	QPS     float64 `json:"queries_per_sec"`
	// Speedup is QPS relative to the batch's first (usually 1-worker) point.
	Speedup float64 `json:"speedup"`
	// Errors counts failed sessions; any non-zero value invalidates the run.
	Errors int `json:"errors"`
}

// ThroughputReport is the BENCH_throughput.json artifact. MaxProcs records
// the measuring machine's parallelism: session workers beyond it cannot
// raise CPU-bound throughput, so a 1-core runner shows flat points while a
// multi-core one shows the speedup.
type ThroughputReport struct {
	Config   ThroughputConfig `json:"config"`
	MaxProcs int              `json:"gomaxprocs"`
	CPUs     int              `json:"cpus"`
	// SingleCPU flags runs taken at GOMAXPROCS=1, where multi-worker scaling
	// is structurally invisible — artifacts say so instead of looking like a
	// scaling regression.
	SingleCPU bool              `json:"single_cpu"`
	Points    []ThroughputPoint `json:"points"`
}

// throughputQueries builds a deterministic session mix over the T1..Tm
// catalog: rotating ranked 2-way joins plus the full m-way join, with the
// paper's canonical shape (equi-join on key, ORDER BY summed scores, LIMIT k).
func throughputQueries(cfg ThroughputConfig) []engine.Request {
	twoWay := func(a, b int) string {
		return fmt.Sprintf(
			"SELECT * FROM T%d, T%d WHERE T%d.key = T%d.key ORDER BY T%d.score + T%d.score DESC LIMIT %d",
			a, b, a, b, a, b, cfg.K)
	}
	var shapes []string
	for i := 1; i <= cfg.Tables; i++ {
		j := i%cfg.Tables + 1
		if i < j {
			shapes = append(shapes, twoWay(i, j))
		} else if j < i {
			shapes = append(shapes, twoWay(j, i))
		}
	}
	if cfg.Tables >= 3 {
		sql := "SELECT * FROM T1"
		where := ""
		order := "T1.score"
		for i := 2; i <= cfg.Tables; i++ {
			sql += fmt.Sprintf(", T%d", i)
			if where != "" {
				where += " AND "
			}
			where += fmt.Sprintf("T%d.key = T%d.key", i-1, i)
			order += fmt.Sprintf(" + T%d.score", i)
		}
		shapes = append(shapes, fmt.Sprintf("%s WHERE %s ORDER BY %s DESC LIMIT %d", sql, where, order, cfg.K))
	}
	reqs := make([]engine.Request, cfg.Queries)
	for i := range reqs {
		reqs[i] = engine.Request{
			ID:  fmt.Sprintf("q%03d", i),
			SQL: shapes[i%len(shapes)],
		}
	}
	return reqs
}

// Throughput runs the benchmark: one catalog, one request batch, one timed
// RunAll per worker count.
func Throughput(cfg ThroughputConfig) (*ThroughputReport, error) {
	if cfg.Tables < 2 {
		return nil, fmt.Errorf("bench: throughput needs at least 2 tables, got %d", cfg.Tables)
	}
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("bench: throughput needs at least one worker count")
	}
	cat, _ := workload.RankedSet(cfg.Tables, workload.RankedConfig{
		N: cfg.Rows, Selectivity: cfg.Selectivity, Seed: cfg.Seed,
	})
	eng := engine.New(cat, core.Options{Workers: cfg.OptWorkers})
	reqs := throughputQueries(cfg)
	report := &ThroughputReport{Config: cfg, MaxProcs: runtime.GOMAXPROCS(0), CPUs: runtime.NumCPU(), SingleCPU: runtime.GOMAXPROCS(0) == 1}
	// Untimed warm-up batch: grows the heap and faults in the catalog pages
	// once, so the first measured point holds no cold-start advantage over
	// the later ones.
	if err := firstErr(eng.RunAll(reqs, 1)); err != nil {
		return nil, fmt.Errorf("bench: throughput warm-up: %w", err)
	}
	for _, w := range cfg.Workers {
		start := time.Now()
		resps := eng.RunAll(reqs, w)
		elapsed := time.Since(start)
		pt := ThroughputPoint{Workers: w, Queries: len(reqs)}
		for _, r := range resps {
			if r.Err != nil {
				pt.Errors++
			}
		}
		if pt.Errors > 0 {
			return nil, fmt.Errorf("bench: throughput at %d workers: %d sessions failed (first: %v)",
				w, pt.Errors, firstErr(resps))
		}
		pt.Millis = float64(elapsed.Nanoseconds()) / 1e6
		if elapsed > 0 {
			pt.QPS = float64(len(reqs)) / elapsed.Seconds()
		}
		if len(report.Points) > 0 && report.Points[0].QPS > 0 {
			pt.Speedup = pt.QPS / report.Points[0].QPS
		} else {
			pt.Speedup = 1
		}
		report.Points = append(report.Points, pt)
	}
	return report, nil
}

func firstErr(resps []engine.Response) error {
	for _, r := range resps {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// JSON renders the artifact bytes.
func (r *ThroughputReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Table renders the report in the bench text format.
func (r *ThroughputReport) Table() *Table {
	t := &Table{
		Title: "Concurrent session throughput",
		Note: fmt.Sprintf("%d-table ranked workload, %d rows/table, %d sessions/point, k=%d, GOMAXPROCS=%d",
			r.Config.Tables, r.Config.Rows, r.Config.Queries, r.Config.K, runtime.GOMAXPROCS(0)),
		Columns: []string{"workers", "queries", "elapsed_ms", "qps", "speedup"},
	}
	for _, p := range r.Points {
		t.AddRow(p.Workers, p.Queries, p.Millis, p.QPS, p.Speedup)
	}
	return t
}

// ThroughputExperiment adapts the benchmark to the registry's Run signature
// using the default config.
func ThroughputExperiment() (*Table, error) {
	rep, err := Throughput(DefaultThroughputConfig())
	if err != nil {
		return nil, err
	}
	return rep.Table(), nil
}

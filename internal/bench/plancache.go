package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"rankopt/internal/engine"
	"rankopt/internal/workload"
)

// PlanCacheConfig parameterizes the plan-cache benchmark: one repeated-query
// batch is replayed against a cache-disabled engine (cold — every session
// runs parse + optimize) and a primed cache-enabled engine (warm — every
// session hits and only re-instantiates + executes), measuring throughput
// and allocations per query for both.
type PlanCacheConfig struct {
	// Tables, Rows, Selectivity, Seed shape the workload.RankedSet catalog.
	// More tables means more join orders for the DP optimizer to enumerate,
	// which is exactly the work a cache hit skips.
	Tables      int     `json:"tables"`
	Rows        int     `json:"rows"`
	Selectivity float64 `json:"selectivity"`
	Seed        int64   `json:"seed"`
	// Queries is the number of sessions replayed per measurement point.
	Queries int `json:"queries"`
	// K is the LIMIT of every session's query.
	K int `json:"k"`
	// Workers lists the session-worker counts to measure.
	Workers []int `json:"workers"`
}

// DefaultPlanCacheConfig is the acceptance-run workload: a 4-table catalog
// keeps the optimizer's enumeration the dominant per-session cost, and the
// batch repeats a handful of query shapes, so a served cache should clear
// 2x cold throughput comfortably.
func DefaultPlanCacheConfig() PlanCacheConfig {
	return PlanCacheConfig{
		Tables:      4,
		Rows:        2000,
		Selectivity: 0.01,
		Seed:        7,
		Queries:     64,
		K:           5,
		Workers:     []int{1, 4},
	}
}

// PlanCachePoint is one measured worker count: the same batch cold and warm.
type PlanCachePoint struct {
	Workers int `json:"workers"`
	Queries int `json:"queries"`

	ColdMillis float64 `json:"cold_elapsed_ms"`
	ColdQPS    float64 `json:"cold_queries_per_sec"`
	// ColdAllocs is heap allocations per query on the cache-disabled engine.
	ColdAllocs float64 `json:"cold_allocs_per_query"`

	WarmMillis float64 `json:"warm_elapsed_ms"`
	WarmQPS    float64 `json:"warm_queries_per_sec"`
	WarmAllocs float64 `json:"warm_allocs_per_query"`

	// Speedup is warm QPS over cold QPS — the headline number.
	Speedup float64 `json:"speedup"`
}

// PlanCacheReport is the BENCH_plancache.json artifact.
type PlanCacheReport struct {
	Config   PlanCacheConfig `json:"config"`
	MaxProcs int             `json:"gomaxprocs"`
	CPUs     int             `json:"cpus"`
	// SingleCPU flags runs taken at GOMAXPROCS=1 (see BatchReport.SingleCPU).
	SingleCPU bool             `json:"single_cpu"`
	Points    []PlanCachePoint `json:"points"`
	// CacheStats snapshots the warm engine's counters after the sweep, as
	// evidence the warm numbers really were served from the cache.
	CacheHits          uint64 `json:"cache_hits"`
	CacheMisses        uint64 `json:"cache_misses"`
	CacheEntries       int    `json:"cache_entries"`
	CacheInvalidations uint64 `json:"cache_invalidations"`
}

// planCacheQueries reuses the throughput generator's repeated-shape mix:
// rotating ranked 2-way joins plus the full m-way join.
func planCacheQueries(cfg PlanCacheConfig) []engine.Request {
	return throughputQueries(ThroughputConfig{
		Tables: cfg.Tables, Queries: cfg.Queries, K: cfg.K,
	})
}

// measureBatch times one RunAll and reads the global allocation counter
// around it. Mallocs is monotonic and process-wide, so the delta is exact
// regardless of GC activity; with concurrent workers it attributes all
// allocation in the window to the batch, which is what we want — nothing
// else runs.
func measureBatch(eng *engine.Engine, reqs []engine.Request, workers int) (ms, qps, allocsPerQuery float64, err error) {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	resps := eng.RunAll(reqs, workers)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	if err := firstErr(resps); err != nil {
		return 0, 0, 0, err
	}
	ms = float64(elapsed.Nanoseconds()) / 1e6
	if elapsed > 0 {
		qps = float64(len(reqs)) / elapsed.Seconds()
	}
	allocsPerQuery = float64(m1.Mallocs-m0.Mallocs) / float64(len(reqs))
	return ms, qps, allocsPerQuery, nil
}

// PlanCache runs the benchmark: one catalog, one request batch, and per
// worker count a cold (cache-disabled) and a warm (cache-enabled, primed)
// timed run.
func PlanCache(cfg PlanCacheConfig) (*PlanCacheReport, error) {
	if cfg.Tables < 2 {
		return nil, fmt.Errorf("bench: plancache needs at least 2 tables, got %d", cfg.Tables)
	}
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("bench: plancache needs at least one worker count")
	}
	cat, _ := workload.RankedSet(cfg.Tables, workload.RankedConfig{
		N: cfg.Rows, Selectivity: cfg.Selectivity, Seed: cfg.Seed,
	})
	cold := engine.NewWithConfig(cat, engine.Config{DisablePlanCache: true})
	warm := engine.NewWithConfig(cat, engine.Config{})
	reqs := planCacheQueries(cfg)
	// Untimed warm-up: faults in the catalog, grows the heap, and primes the
	// warm engine's cache so its measured runs are pure hits.
	if err := firstErr(cold.RunAll(reqs, 1)); err != nil {
		return nil, fmt.Errorf("bench: plancache cold warm-up: %w", err)
	}
	if err := firstErr(warm.RunAll(reqs, 1)); err != nil {
		return nil, fmt.Errorf("bench: plancache cache priming: %w", err)
	}
	report := &PlanCacheReport{Config: cfg, MaxProcs: runtime.GOMAXPROCS(0), CPUs: runtime.NumCPU(), SingleCPU: runtime.GOMAXPROCS(0) == 1}
	for _, w := range cfg.Workers {
		pt := PlanCachePoint{Workers: w, Queries: len(reqs)}
		var err error
		if pt.ColdMillis, pt.ColdQPS, pt.ColdAllocs, err = measureBatch(cold, reqs, w); err != nil {
			return nil, fmt.Errorf("bench: plancache cold at %d workers: %w", w, err)
		}
		if pt.WarmMillis, pt.WarmQPS, pt.WarmAllocs, err = measureBatch(warm, reqs, w); err != nil {
			return nil, fmt.Errorf("bench: plancache warm at %d workers: %w", w, err)
		}
		if pt.ColdQPS > 0 {
			pt.Speedup = pt.WarmQPS / pt.ColdQPS
		}
		report.Points = append(report.Points, pt)
	}
	st := warm.CacheStats()
	report.CacheHits = st.Hits
	report.CacheMisses = st.Misses
	report.CacheEntries = st.Entries
	report.CacheInvalidations = st.Invalidations
	return report, nil
}

// JSON renders the artifact bytes.
func (r *PlanCacheReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Table renders the report in the bench text format.
func (r *PlanCacheReport) Table() *Table {
	t := &Table{
		Title: "Plan cache: cold vs warm",
		Note: fmt.Sprintf("%d-table ranked workload, %d rows/table, %d sessions/point, k=%d, hits=%d misses=%d, GOMAXPROCS=%d",
			r.Config.Tables, r.Config.Rows, r.Config.Queries, r.Config.K,
			r.CacheHits, r.CacheMisses, runtime.GOMAXPROCS(0)),
		Columns: []string{"workers", "cold_qps", "warm_qps", "speedup", "cold_allocs/q", "warm_allocs/q"},
	}
	for _, p := range r.Points {
		t.AddRow(p.Workers, p.ColdQPS, p.WarmQPS, p.Speedup, p.ColdAllocs, p.WarmAllocs)
	}
	return t
}

// PlanCacheExperiment adapts the benchmark to the registry's Run signature
// using the default config.
func PlanCacheExperiment() (*Table, error) {
	rep, err := PlanCache(DefaultPlanCacheConfig())
	if err != nil {
		return nil, err
	}
	return rep.Table(), nil
}

package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"time"

	"rankopt/internal/core"
	"rankopt/internal/engine"
	"rankopt/internal/exec"
	"rankopt/internal/workload"
)

// CancelConfig parameterizes the cancellation-under-load benchmark: many
// concurrent sessions each start a query whose full execution takes far
// longer than the run, get cancelled mid-flight, and the benchmark measures
// the cancel-to-return latency — how long a caller waits between asking for
// cancellation and getting its goroutine back.
type CancelConfig struct {
	// Rows, Selectivity, Seed shape the 2-table heavy workload; the defaults
	// make a full drain take seconds, so every cancellation lands mid-query.
	Rows        int     `json:"rows"`
	Selectivity float64 `json:"selectivity"`
	Seed        int64   `json:"seed"`
	// Sessions is how many cancelled queries to measure.
	Sessions int `json:"sessions"`
	// Workers bounds how many sessions run concurrently.
	Workers int `json:"workers"`
	// CancelAfter is how long each session runs before its context is
	// cancelled.
	CancelAfter time.Duration `json:"cancel_after_ns"`
}

// DefaultCancelConfig matches the robustness tests' heavy workload.
func DefaultCancelConfig() CancelConfig {
	return CancelConfig{
		Rows:        30000,
		Selectivity: 0.001,
		Seed:        23,
		Sessions:    32,
		Workers:     4,
		CancelAfter: 20 * time.Millisecond,
	}
}

// CancelReport is the BENCH_cancel.json artifact: the distribution of
// cancel-to-return latencies plus error-taxonomy accounting. Mistyped counts
// sessions that returned anything other than ErrQueryCancelled — it must be
// zero.
type CancelReport struct {
	Config   CancelConfig `json:"config"`
	MaxProcs int          `json:"gomaxprocs"`
	CPUs     int          `json:"cpus"`
	// SingleCPU flags runs taken at GOMAXPROCS=1 — cancel latencies there
	// include scheduler queuing behind the running query, not just polling
	// cadence, so tails are expected to stretch (see BatchReport.SingleCPU).
	SingleCPU   bool    `json:"single_cpu"`
	Sessions    int     `json:"sessions"`
	Mistyped    int     `json:"mistyped_errors"`
	P50Millis   float64 `json:"p50_cancel_latency_ms"`
	P99Millis   float64 `json:"p99_cancel_latency_ms"`
	MaxMillis   float64 `json:"max_cancel_latency_ms"`
	MeanMillis  float64 `json:"mean_cancel_latency_ms"`
	TotalMillis float64 `json:"total_elapsed_ms"`
}

// Cancel runs the benchmark: Sessions heavy queries through Workers
// concurrent lanes, each cancelled after CancelAfter, each lane timing
// cancel() to RunCtx-return.
func Cancel(cfg CancelConfig) (*CancelReport, error) {
	if cfg.Sessions < 1 || cfg.Workers < 1 {
		return nil, fmt.Errorf("bench: cancel needs sessions and workers >= 1")
	}
	cat, _ := workload.RankedSet(2, workload.RankedConfig{
		N: cfg.Rows, Selectivity: cfg.Selectivity, Seed: cfg.Seed,
	})
	eng := engine.New(cat, core.Options{})
	// No LIMIT: the only exits from this query are full drain (seconds away)
	// or cancellation.
	sql := "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC"
	// Warm the plan cache so measured sessions cancel inside execution, not
	// planning.
	if resp := eng.Run(engine.Request{SQL: sql, ExplainOnly: true}); resp.Err != nil {
		return nil, fmt.Errorf("bench: cancel warm-up: %w", resp.Err)
	}

	latencies := make([]time.Duration, cfg.Sessions)
	mistyped := make([]bool, cfg.Sessions)
	sem := make(chan struct{}, cfg.Workers)
	done := make(chan int)
	start := time.Now()
	for i := 0; i < cfg.Sessions; i++ {
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; done <- i }()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			resp := make(chan engine.Response, 1)
			go func() {
				resp <- eng.RunCtx(ctx, engine.Request{ID: fmt.Sprintf("c%03d", i), SQL: sql})
			}()
			time.Sleep(cfg.CancelAfter)
			t0 := time.Now()
			cancel()
			r := <-resp
			latencies[i] = time.Since(t0)
			// A session that finished before the cancel fired would return
			// nil; with this workload that means the config is too small.
			mistyped[i] = !errors.Is(r.Err, exec.ErrQueryCancelled)
		}(i)
	}
	for i := 0; i < cfg.Sessions; i++ {
		<-done
	}
	total := time.Since(start)

	rep := &CancelReport{
		Config: cfg, MaxProcs: runtime.GOMAXPROCS(0), CPUs: runtime.NumCPU(),
		SingleCPU: runtime.GOMAXPROCS(0) == 1, Sessions: cfg.Sessions,
	}
	for _, m := range mistyped {
		if m {
			rep.Mistyped++
		}
	}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	quantile := func(q float64) time.Duration {
		idx := int(q * float64(len(sorted)-1))
		return sorted[idx]
	}
	rep.P50Millis = ms(quantile(0.50))
	rep.P99Millis = ms(quantile(0.99))
	rep.MaxMillis = ms(sorted[len(sorted)-1])
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	rep.MeanMillis = ms(sum) / float64(len(latencies))
	rep.TotalMillis = ms(total)
	return rep, nil
}

// JSON renders the artifact bytes.
func (r *CancelReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Table renders the report in the bench text format.
func (r *CancelReport) Table() *Table {
	t := &Table{
		Title: "Cancellation under load",
		Note: fmt.Sprintf("%d sessions x %d workers, cancelled after %v; mistyped errors: %d",
			r.Sessions, r.Config.Workers, r.Config.CancelAfter, r.Mistyped),
		Columns: []string{"p50_ms", "p99_ms", "max_ms", "mean_ms"},
	}
	t.AddRow(r.P50Millis, r.P99Millis, r.MaxMillis, r.MeanMillis)
	return t
}

// CheckTyped fails the run when any session returned a wrong error type —
// the CI gate for the robustness taxonomy.
func (r *CancelReport) CheckTyped() error {
	if r.Mistyped > 0 {
		return fmt.Errorf("bench: cancel: %d of %d sessions returned a non-cancellation error",
			r.Mistyped, r.Sessions)
	}
	return nil
}

package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"rankopt/internal/catalog"
	"rankopt/internal/core"
	"rankopt/internal/exec"
	"rankopt/internal/plan"
	"rankopt/internal/sqlparse"
	"rankopt/internal/workload"
)

// PlannerConfig parameterizes the two-speed planner comparison: the m-way
// ranked chain join is optimized with the System-R DP and with the greedy
// fast path at each selectivity, measuring planning wall time and the cost
// of the chosen plan; a small same-shape catalog then executes both plans
// and cross-checks the top-k answers.
type PlannerConfig struct {
	// Tables is the chain-join width planned at each point.
	Tables int `json:"tables"`
	// Rows is the per-table cardinality of the planning catalog (planning
	// time only; the parity execution uses ExecRows).
	Rows int `json:"rows"`
	// ExecRows is the per-table cardinality of the small parity catalog
	// both chosen plans execute against.
	ExecRows int `json:"exec_rows"`
	// Selectivities are the swept join selectivities.
	Selectivities []float64 `json:"selectivities"`
	// K is the LIMIT bound.
	K int `json:"k"`
	// Trials is how many timed optimizer runs the median is taken over.
	Trials int `json:"trials"`
	// Seed drives the workload generator.
	Seed int64 `json:"seed"`
}

// DefaultPlannerConfig sweeps the 4-way join — wide enough that the DP's
// exponential enumeration has real work to amortize — across three
// selectivity decades.
func DefaultPlannerConfig() PlannerConfig {
	return PlannerConfig{
		Tables:        4,
		Rows:          5000,
		ExecRows:      120,
		Selectivities: []float64{0.001, 0.01, 0.05},
		K:             10,
		Trials:        9,
		Seed:          17,
	}
}

// PlannerPoint is one selectivity's comparison: median planning time per
// planner, the speedup, the k-cost of each chosen plan under the shared
// cost model, their ratio, and whether the two plans' executed top-k
// answers agreed on the parity catalog.
type PlannerPoint struct {
	Selectivity float64 `json:"selectivity"`
	// Seed is the per-point workload seed (derived from Config.Seed), stamped
	// so a single point can be reproduced without rerunning the sweep.
	Seed         int64   `json:"seed"`
	DPMicros     float64 `json:"dp_plan_us"`
	GreedyMicros float64 `json:"greedy_plan_us"`
	Speedup      float64 `json:"speedup"`
	DPCost       float64 `json:"dp_cost"`
	GreedyCost   float64 `json:"greedy_cost"`
	CostRatio    float64 `json:"cost_ratio"`
	// Fallback is true when the greedy planner declined the shape and the
	// DP produced the plan (never expected on this sweep).
	Fallback bool `json:"fallback"`
	// ResultsMatch is the executed parity verdict.
	ResultsMatch bool `json:"results_match"`
}

// PlannerReport is the BENCH_planner.json artifact.
type PlannerReport struct {
	Config    PlannerConfig  `json:"config"`
	MaxProcs  int            `json:"gomaxprocs"`
	CPUs      int            `json:"cpus"`
	SingleCPU bool           `json:"single_cpu"`
	Points    []PlannerPoint `json:"points"`
	// MedianSpeedup aggregates the per-point planning-time speedups.
	MedianSpeedup float64 `json:"median_speedup"`
	// WorstCostRatio is the largest greedy/DP plan-cost ratio of the sweep.
	WorstCostRatio float64 `json:"worst_cost_ratio"`
}

// chainSQL builds the canonical m-way ranked chain join.
func chainSQL(tables, k int) string {
	sql := "SELECT * FROM T1"
	for i := 2; i <= tables; i++ {
		sql += fmt.Sprintf(", T%d", i)
	}
	sql += " WHERE "
	for i := 2; i <= tables; i++ {
		if i > 2 {
			sql += " AND "
		}
		sql += fmt.Sprintf("T%d.key = T%d.key", i-1, i)
	}
	sql += " ORDER BY T1.score"
	for i := 2; i <= tables; i++ {
		sql += fmt.Sprintf(" + T%d.score", i)
	}
	return fmt.Sprintf("%s DESC LIMIT %d", sql, k)
}

// medianMicros times fn trials times and returns the median in microseconds.
func medianMicros(trials int, fn func()) float64 {
	times := make([]float64, trials)
	for i := range times {
		start := time.Now()
		fn()
		times[i] = float64(time.Since(start).Nanoseconds()) / 1e3
	}
	sort.Float64s(times)
	return times[len(times)/2]
}

// topKScores executes a plan and extracts the combined-score column.
func topKScores(cat *catalog.Catalog, root *plan.Node) ([]float64, error) {
	op, err := plan.Compile(cat, root)
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	tuples, err := exec.Collect(op)
	if err != nil {
		return nil, fmt.Errorf("execute: %w", err)
	}
	out := make([]float64, len(tuples))
	for i, t := range tuples {
		// SELECT * keeps the RankAssign layout: score at len-2.
		out[i] = t[len(t)-2].AsFloat()
	}
	return out, nil
}

// Planner runs the sweep.
func Planner(cfg PlannerConfig) (*PlannerReport, error) {
	if cfg.Tables < 2 || cfg.Trials < 1 || len(cfg.Selectivities) == 0 {
		return nil, fmt.Errorf("bench: degenerate planner config %+v", cfg)
	}
	rep := &PlannerReport{
		Config: cfg, MaxProcs: runtime.GOMAXPROCS(0), CPUs: runtime.NumCPU(),
		SingleCPU: runtime.GOMAXPROCS(0) == 1,
	}
	sql := chainSQL(cfg.Tables, cfg.K)
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("bench: parse %q: %w", sql, err)
	}
	var speedups []float64
	for si, sel := range cfg.Selectivities {
		// Each sweep point gets its own derived seed: reusing cfg.Seed at
		// every selectivity made all points share one key/score draw, so a
		// generator quirk at that seed skewed the whole sweep.
		seed := cfg.Seed + int64(si)*1009
		cat, _ := workload.RankedSet(cfg.Tables, workload.RankedConfig{
			N: cfg.Rows, Selectivity: sel, Seed: seed,
		})
		// One untimed warmup per planner settles one-time costs (stats
		// loading, allocator warmth) outside the measurement.
		dpRes, err := core.Optimize(cat, q, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("bench: dp optimize sel=%g: %w", sel, err)
		}
		gRes, err := core.Optimize(cat, q, core.Options{Planner: core.PlannerGreedy})
		if err != nil {
			return nil, fmt.Errorf("bench: greedy optimize sel=%g: %w", sel, err)
		}
		pt := PlannerPoint{
			Selectivity: sel,
			Seed:        seed,
			DPMicros: medianMicros(cfg.Trials, func() {
				_, _ = core.Optimize(cat, q, core.Options{})
			}),
			GreedyMicros: medianMicros(cfg.Trials, func() {
				_, _ = core.Optimize(cat, q, core.Options{Planner: core.PlannerGreedy})
			}),
			DPCost:     dpRes.Best.Cost(float64(cfg.K)),
			GreedyCost: gRes.Best.Cost(float64(cfg.K)),
			Fallback:   gRes.GreedyFallback,
		}
		pt.Speedup = pt.DPMicros / math.Max(pt.GreedyMicros, 1e-3)
		pt.CostRatio = pt.GreedyCost / math.Max(pt.DPCost, 1e-9)

		// Parity: both plan shapes re-planned over a small catalog of the
		// same selectivity must produce identical top-k score sequences.
		ecat, _ := workload.RankedSet(cfg.Tables, workload.RankedConfig{
			N: cfg.ExecRows, Selectivity: sel, Seed: seed + 1,
		})
		dpE, err1 := core.Optimize(ecat, q, core.Options{})
		gE, err2 := core.Optimize(ecat, q, core.Options{Planner: core.PlannerGreedy})
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bench: parity optimize sel=%g: %v / %v", sel, err1, err2)
		}
		dScores, err1 := topKScores(ecat, dpE.Best)
		gScores, err2 := topKScores(ecat, gE.Best)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bench: parity execute sel=%g: %v / %v", sel, err1, err2)
		}
		pt.ResultsMatch = len(dScores) == len(gScores)
		if pt.ResultsMatch {
			for i := range dScores {
				if math.Abs(dScores[i]-gScores[i]) > 1e-9*math.Max(math.Abs(dScores[i]), 1) {
					pt.ResultsMatch = false
					break
				}
			}
		}
		rep.Points = append(rep.Points, pt)
		speedups = append(speedups, pt.Speedup)
		rep.WorstCostRatio = math.Max(rep.WorstCostRatio, pt.CostRatio)
	}
	sort.Float64s(speedups)
	rep.MedianSpeedup = speedups[len(speedups)/2]
	return rep, nil
}

// CheckGates is the CI gate: greedy planning must be at least minSpeedup
// times faster than the DP (median over the sweep), every chosen greedy
// plan must cost within maxQualityLoss of the DP's plan under the shared
// model (0.2 = within 20%), every point's executed answers must agree, and
// the greedy path must actually have planned (no silent DP fallback).
func (r *PlannerReport) CheckGates(minSpeedup, maxQualityLoss float64) error {
	if r.MedianSpeedup < minSpeedup {
		return fmt.Errorf("bench: greedy planning speedup %.1fx below gate %.1fx",
			r.MedianSpeedup, minSpeedup)
	}
	if r.WorstCostRatio > 1+maxQualityLoss {
		return fmt.Errorf("bench: greedy plan cost ratio %.2f exceeds gate %.2f",
			r.WorstCostRatio, 1+maxQualityLoss)
	}
	for _, pt := range r.Points {
		if pt.Fallback {
			return fmt.Errorf("bench: greedy fell back to the DP at sel=%g", pt.Selectivity)
		}
		if !pt.ResultsMatch {
			return fmt.Errorf("bench: greedy and DP answers diverged at sel=%g", pt.Selectivity)
		}
	}
	return nil
}

// JSON renders the artifact bytes.
func (r *PlannerReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Table renders the report in the bench text format.
func (r *PlannerReport) Table() *Table {
	t := &Table{
		Title: "Two-speed planner: DP vs greedy (planning time and plan quality)",
		Note: fmt.Sprintf("%d-way chain join, %d rows/table, k=%d | median speedup=%.1fx worst cost ratio=%.2f",
			r.Config.Tables, r.Config.Rows, r.Config.K, r.MedianSpeedup, r.WorstCostRatio),
		Columns: []string{"sel", "dp_us", "greedy_us", "speedup", "dp_cost", "greedy_cost", "ratio", "match"},
	}
	for _, pt := range r.Points {
		t.AddRow(pt.Selectivity, pt.DPMicros, pt.GreedyMicros, pt.Speedup,
			pt.DPCost, pt.GreedyCost, pt.CostRatio, pt.ResultsMatch)
	}
	return t
}

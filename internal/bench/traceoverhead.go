package bench

import (
	"encoding/json"
	"fmt"
	"runtime"

	"rankopt/internal/catalog"
	"rankopt/internal/engine"
	"rankopt/internal/trace"
	"rankopt/internal/workload"
)

// TraceOverheadConfig parameterizes the tracing-overhead benchmark: one
// repeated-query batch is replayed through a primed engine twice, first with
// no trace attached (the production hot path — every span call must collapse
// to a nil compare) and then with a span recorder on every session (the
// diagnostic path — fresh single-worker optimization, decision trace, span
// recording, and analyze instrumentation).
type TraceOverheadConfig struct {
	// Tables, Rows, Selectivity, Seed shape the workload.RankedSet catalog.
	Tables      int     `json:"tables"`
	Rows        int     `json:"rows"`
	Selectivity float64 `json:"selectivity"`
	Seed        int64   `json:"seed"`
	// Queries is the number of sessions replayed per measurement.
	Queries int `json:"queries"`
	// K is the LIMIT of every session's query.
	K int `json:"k"`
	// Repeats is how many times each side is measured; the best repeat is
	// reported (minimum-noise estimator, same as testing.B).
	Repeats int `json:"repeats"`

	// ShardCount..ShardQueries shape the sharded side of the comparison: the
	// same off/on measurement over a range-partitioned skewed catalog (the
	// BENCH_shard workload) served from ShardCount shards. The workload is
	// sized execution-dominated on purpose — a traced session re-optimizes
	// fresh, and the gate bounds the overhead of tracing the *sharded
	// execution*, not of re-planning a trivial query. ShardCount 0 skips the
	// sharded block.
	ShardCount   int   `json:"shard_count"`
	ShardRows    int   `json:"shard_rows"`
	ShardKeys    int   `json:"shard_keys"`
	ShardK       int   `json:"shard_k"`
	ShardQueries int   `json:"shard_queries"`
	ShardSeed    int64 `json:"shard_seed"`
}

// DefaultTraceOverheadConfig is the acceptance-run workload: enough sessions
// over a cached 3-table catalog that the off side measures the steady-state
// hot path, not warm-up effects.
func DefaultTraceOverheadConfig() TraceOverheadConfig {
	return TraceOverheadConfig{
		Tables:      3,
		Rows:        2000,
		Selectivity: 0.01,
		Seed:        11,
		Queries:     128,
		K:           10,
		Repeats:     3,

		ShardCount:   4,
		ShardRows:    20000,
		ShardKeys:    200,
		ShardK:       10,
		ShardQueries: 24,
		ShardSeed:    29,
	}
}

// TraceOverheadReport is the BENCH_trace.json artifact. The off side is the
// number to track across revisions — it is the qps every untraced query
// pays; the on side documents the cost of opting into a traced session
// (which deliberately re-optimizes fresh and instruments every operator, so
// it is expected to be several times slower, never free).
type TraceOverheadReport struct {
	Config   TraceOverheadConfig `json:"config"`
	MaxProcs int                 `json:"gomaxprocs"`
	CPUs     int                 `json:"cpus"`
	// SingleCPU flags runs taken at GOMAXPROCS=1 (see BatchReport.SingleCPU).
	SingleCPU bool `json:"single_cpu"`

	OffMillis float64 `json:"off_elapsed_ms"`
	OffQPS    float64 `json:"off_queries_per_sec"`
	// OffAllocs is heap allocations per query with tracing off — the whole
	// instrumented pipeline must add none (pinned separately by an
	// AllocsPerRun test in internal/trace).
	OffAllocs float64 `json:"off_allocs_per_query"`

	OnMillis float64 `json:"on_elapsed_ms"`
	OnQPS    float64 `json:"on_queries_per_sec"`
	OnAllocs float64 `json:"on_allocs_per_query"`

	// Slowdown is off QPS over on QPS — how much a traced session costs
	// relative to the hot path.
	Slowdown float64 `json:"slowdown"`
	// SpansPerQuery and DecisionsPerQuery prove the on side really traced:
	// pipeline+operator spans recorded per session, and optimizer decision
	// events in one probe session's trace.
	SpansPerQuery     float64 `json:"spans_per_query"`
	DecisionsPerQuery int     `json:"decisions_probe"`

	// Sharded is the scatter-gather side of the artifact (absent when
	// Config.ShardCount is 0): the same off/on comparison with every session
	// served by the shard coordinator, traced sessions carrying one Chrome
	// lane per shard worker.
	Sharded *ShardedTraceOverhead `json:"sharded,omitempty"`
}

// ShardedTraceOverhead measures tracing overhead on the sharded serving
// tier: traced-off vs traced-on throughput at a fixed shard count.
type ShardedTraceOverhead struct {
	ShardCount int `json:"shard_count"`

	OffMillis float64 `json:"off_elapsed_ms"`
	OffQPS    float64 `json:"off_queries_per_sec"`
	OnMillis  float64 `json:"on_elapsed_ms"`
	OnQPS     float64 `json:"on_queries_per_sec"`
	// Slowdown is off QPS over on QPS — the CI gate's number.
	Slowdown float64 `json:"slowdown"`
	// SpansPerQuery proves traced sharded sessions record the fan-out: the
	// pipeline stages plus one shard span (and nested operator spans) per
	// shard worker.
	SpansPerQuery float64 `json:"spans_per_query"`
}

// TraceOverhead runs the benchmark: one catalog, one request batch, a primed
// engine, then best-of-Repeats timed runs with tracing off and on.
func TraceOverhead(cfg TraceOverheadConfig) (*TraceOverheadReport, error) {
	if cfg.Tables < 2 {
		return nil, fmt.Errorf("bench: trace overhead needs at least 2 tables, got %d", cfg.Tables)
	}
	if cfg.Repeats < 1 {
		cfg.Repeats = 1
	}
	cat, _ := workload.RankedSet(cfg.Tables, workload.RankedConfig{
		N: cfg.Rows, Selectivity: cfg.Selectivity, Seed: cfg.Seed,
	})
	eng := engine.NewWithConfig(cat, engine.Config{})
	reqs := throughputQueries(ThroughputConfig{
		Tables: cfg.Tables, Queries: cfg.Queries, K: cfg.K,
	})
	// Untimed warm-up: faults in the catalog and primes the plan cache so the
	// off side measures pure cache-hit sessions.
	if err := firstErr(eng.RunAll(reqs, 1)); err != nil {
		return nil, fmt.Errorf("bench: trace overhead warm-up: %w", err)
	}

	report := &TraceOverheadReport{Config: cfg, MaxProcs: runtime.GOMAXPROCS(0), CPUs: runtime.NumCPU(), SingleCPU: runtime.GOMAXPROCS(0) == 1}
	for r := 0; r < cfg.Repeats; r++ {
		ms, qps, allocs, err := measureBatch(eng, reqs, 1)
		if err != nil {
			return nil, fmt.Errorf("bench: trace overhead off repeat %d: %w", r, err)
		}
		if qps > report.OffQPS {
			report.OffMillis, report.OffQPS, report.OffAllocs = ms, qps, allocs
		}
	}
	var spans int
	for r := 0; r < cfg.Repeats; r++ {
		// Fresh traces every repeat: a Trace belongs to one session.
		treqs := make([]engine.Request, len(reqs))
		traces := make([]*trace.Trace, len(reqs))
		for i, req := range reqs {
			traces[i] = trace.New(req.SQL)
			req.Trace = traces[i]
			treqs[i] = req
		}
		ms, qps, allocs, err := measureBatch(eng, treqs, 1)
		if err != nil {
			return nil, fmt.Errorf("bench: trace overhead on repeat %d: %w", r, err)
		}
		if qps > report.OnQPS {
			report.OnMillis, report.OnQPS, report.OnAllocs = ms, qps, allocs
			spans = 0
			for _, tr := range traces {
				spans += tr.Len()
			}
		}
	}
	if len(reqs) > 0 {
		report.SpansPerQuery = float64(spans) / float64(len(reqs))
	}
	if report.OnQPS > 0 {
		report.Slowdown = report.OffQPS / report.OnQPS
	}
	// One probe session outside the timed runs supplies the decision count.
	probe := reqs[0]
	probe.Trace = trace.New(probe.SQL)
	resp := eng.Run(probe)
	if resp.Err != nil {
		return nil, fmt.Errorf("bench: trace overhead probe: %w", resp.Err)
	}
	if resp.OptTrace != nil {
		report.DecisionsPerQuery = len(resp.OptTrace.Decisions()) + resp.OptTrace.TotalCandidates()
	}
	if cfg.ShardCount > 0 {
		sh, err := shardedTraceOverhead(cfg)
		if err != nil {
			return nil, err
		}
		report.Sharded = sh
	}
	return report, nil
}

// shardedTraceOverhead measures the sharded block: the skewed
// range-partitioned 2-table workload (see bench.Shard) served from
// cfg.ShardCount shards, one repeated top-k session, best-of-Repeats off and
// on. Every session must actually take the scatter-gather path.
func shardedTraceOverhead(cfg TraceOverheadConfig) (*ShardedTraceOverhead, error) {
	cat := catalog.New()
	for i, name := range []string{"T1", "T2"} {
		rel := workload.Ranked(workload.RankedConfig{
			Name: name, N: cfg.ShardRows, Selectivity: 1 / float64(cfg.ShardKeys),
			Seed: cfg.ShardSeed + int64(i)*7919, ScoreByKey: 1,
		})
		cat.AddTable(rel)
		if _, err := cat.CreateIndex(name, "key", false); err != nil {
			return nil, err
		}
		spec := catalog.PartitionSpec{
			Column: "key", Kind: catalog.PartitionRange, Lo: 0, Hi: float64(cfg.ShardKeys),
		}
		if err := cat.SetPartition(name, spec); err != nil {
			return nil, err
		}
	}
	eng := engine.NewWithConfig(cat, engine.Config{Shards: cfg.ShardCount})
	if err := eng.ShardError(); err != nil {
		return nil, err
	}
	sql := fmt.Sprintf("SELECT * FROM T1, T2 WHERE T1.key = T2.key "+
		"ORDER BY T1.score + T2.score DESC LIMIT %d", cfg.ShardK)
	reqs := make([]engine.Request, cfg.ShardQueries)
	for i := range reqs {
		reqs[i] = engine.Request{ID: fmt.Sprintf("sh%d", i), SQL: sql}
	}
	// Warm-up doubles as the sharded-path assertion: a session that silently
	// fell back would make the comparison meaningless.
	probe := eng.Run(reqs[0])
	if probe.Err != nil {
		return nil, fmt.Errorf("bench: sharded trace warm-up: %w", probe.Err)
	}
	if !probe.Sharded {
		return nil, fmt.Errorf("bench: sharded trace workload fell back to the single path")
	}

	sh := &ShardedTraceOverhead{ShardCount: cfg.ShardCount}
	for r := 0; r < cfg.Repeats; r++ {
		ms, qps, _, err := measureBatch(eng, reqs, 1)
		if err != nil {
			return nil, fmt.Errorf("bench: sharded trace off repeat %d: %w", r, err)
		}
		if qps > sh.OffQPS {
			sh.OffMillis, sh.OffQPS = ms, qps
		}
	}
	// A traced probe proves traced sessions stay on the sharded path too (the
	// legacy analyze/trace fallback would quietly invalidate the comparison).
	tprobe := reqs[0]
	tprobe.Trace = trace.New(tprobe.SQL)
	if resp := eng.Run(tprobe); resp.Err != nil {
		return nil, fmt.Errorf("bench: sharded trace probe: %w", resp.Err)
	} else if !resp.Sharded {
		return nil, fmt.Errorf("bench: traced sharded session fell back to the single path")
	}
	var spans int
	for r := 0; r < cfg.Repeats; r++ {
		treqs := make([]engine.Request, len(reqs))
		traces := make([]*trace.Trace, len(reqs))
		for i, req := range reqs {
			traces[i] = trace.New(req.SQL)
			req.Trace = traces[i]
			treqs[i] = req
		}
		ms, qps, _, err := measureBatch(eng, treqs, 1)
		if err != nil {
			return nil, fmt.Errorf("bench: sharded trace on repeat %d: %w", r, err)
		}
		if qps > sh.OnQPS {
			sh.OnMillis, sh.OnQPS = ms, qps
			spans = 0
			for _, tr := range traces {
				spans += tr.Len()
			}
		}
	}
	if len(reqs) > 0 {
		sh.SpansPerQuery = float64(spans) / float64(len(reqs))
	}
	if sh.OnQPS > 0 {
		sh.Slowdown = sh.OffQPS / sh.OnQPS
	}
	return sh, nil
}

// CheckOverhead gates the artifact: both sides must have run, traced
// sessions must actually record spans and optimizer decisions, and the
// traced slowdown must stay under the bound (a generous smoke ceiling — the
// traced path re-optimizes and instruments on purpose, but it must never
// regress into pathology).
func (r *TraceOverheadReport) CheckOverhead(maxSlowdown float64) error {
	if r.OffQPS <= 0 || r.OnQPS <= 0 {
		return fmt.Errorf("bench: trace overhead measured non-positive qps (off=%.1f on=%.1f)", r.OffQPS, r.OnQPS)
	}
	if r.SpansPerQuery <= 0 || r.DecisionsPerQuery <= 0 {
		return fmt.Errorf("bench: traced sessions recorded nothing (spans/q=%.1f decisions=%d)",
			r.SpansPerQuery, r.DecisionsPerQuery)
	}
	if r.Slowdown > maxSlowdown {
		return fmt.Errorf("bench: traced sessions %.1fx slower than untraced, bound is %.1fx", r.Slowdown, maxSlowdown)
	}
	return nil
}

// CheckShardedOverhead gates the sharded block: the sharded sessions must
// have run (both sides), traced sharded sessions must record the per-shard
// lanes, and the traced slowdown must stay under the bound. The bound is far
// tighter than CheckOverhead's because the sharded workload is
// execution-dominated — tracing a gather must cost lane bookkeeping, not a
// re-run.
func (r *TraceOverheadReport) CheckShardedOverhead(maxSlowdown float64) error {
	if r.Sharded == nil {
		return fmt.Errorf("bench: no sharded trace block in the artifact")
	}
	sh := r.Sharded
	if sh.OffQPS <= 0 || sh.OnQPS <= 0 {
		return fmt.Errorf("bench: sharded trace overhead measured non-positive qps (off=%.1f on=%.1f)", sh.OffQPS, sh.OnQPS)
	}
	// At minimum: the pipeline stages plus one span per shard worker.
	if sh.SpansPerQuery < float64(sh.ShardCount) {
		return fmt.Errorf("bench: traced sharded sessions recorded %.1f spans/query, want at least one per shard (%d)",
			sh.SpansPerQuery, sh.ShardCount)
	}
	if sh.Slowdown > maxSlowdown {
		return fmt.Errorf("bench: traced sharded sessions %.2fx slower than untraced, bound is %.2fx", sh.Slowdown, maxSlowdown)
	}
	return nil
}

// JSON renders the artifact bytes.
func (r *TraceOverheadReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Table renders the report in the bench text format.
func (r *TraceOverheadReport) Table() *Table {
	t := &Table{
		Title: "Tracing overhead: off vs on",
		Note: fmt.Sprintf("%d-table ranked workload, %d rows/table, %d sessions, k=%d, best of %d, GOMAXPROCS=%d",
			r.Config.Tables, r.Config.Rows, r.Config.Queries, r.Config.K, r.Config.Repeats, r.MaxProcs),
		Columns: []string{"off_qps", "on_qps", "slowdown", "off_allocs/q", "on_allocs/q", "spans/q"},
	}
	t.AddRow(r.OffQPS, r.OnQPS, r.Slowdown, r.OffAllocs, r.OnAllocs, r.SpansPerQuery)
	return t
}

// ShardedTable renders the sharded block (nil when it was skipped).
func (r *TraceOverheadReport) ShardedTable() *Table {
	if r.Sharded == nil {
		return nil
	}
	sh := r.Sharded
	t := &Table{
		Title: "Tracing overhead on the sharded tier: off vs on",
		Note: fmt.Sprintf("skewed range-partitioned 2-table workload, %d rows/table, %d shards, %d sessions, k=%d, best of %d",
			r.Config.ShardRows, sh.ShardCount, r.Config.ShardQueries, r.Config.ShardK, r.Config.Repeats),
		Columns: []string{"off_qps", "on_qps", "slowdown", "spans/q"},
	}
	t.AddRow(sh.OffQPS, sh.OnQPS, sh.Slowdown, sh.SpansPerQuery)
	return t
}

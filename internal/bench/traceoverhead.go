package bench

import (
	"encoding/json"
	"fmt"
	"runtime"

	"rankopt/internal/engine"
	"rankopt/internal/trace"
	"rankopt/internal/workload"
)

// TraceOverheadConfig parameterizes the tracing-overhead benchmark: one
// repeated-query batch is replayed through a primed engine twice, first with
// no trace attached (the production hot path — every span call must collapse
// to a nil compare) and then with a span recorder on every session (the
// diagnostic path — fresh single-worker optimization, decision trace, span
// recording, and analyze instrumentation).
type TraceOverheadConfig struct {
	// Tables, Rows, Selectivity, Seed shape the workload.RankedSet catalog.
	Tables      int     `json:"tables"`
	Rows        int     `json:"rows"`
	Selectivity float64 `json:"selectivity"`
	Seed        int64   `json:"seed"`
	// Queries is the number of sessions replayed per measurement.
	Queries int `json:"queries"`
	// K is the LIMIT of every session's query.
	K int `json:"k"`
	// Repeats is how many times each side is measured; the best repeat is
	// reported (minimum-noise estimator, same as testing.B).
	Repeats int `json:"repeats"`
}

// DefaultTraceOverheadConfig is the acceptance-run workload: enough sessions
// over a cached 3-table catalog that the off side measures the steady-state
// hot path, not warm-up effects.
func DefaultTraceOverheadConfig() TraceOverheadConfig {
	return TraceOverheadConfig{
		Tables:      3,
		Rows:        2000,
		Selectivity: 0.01,
		Seed:        11,
		Queries:     128,
		K:           10,
		Repeats:     3,
	}
}

// TraceOverheadReport is the BENCH_trace.json artifact. The off side is the
// number to track across revisions — it is the qps every untraced query
// pays; the on side documents the cost of opting into a traced session
// (which deliberately re-optimizes fresh and instruments every operator, so
// it is expected to be several times slower, never free).
type TraceOverheadReport struct {
	Config   TraceOverheadConfig `json:"config"`
	MaxProcs int                 `json:"gomaxprocs"`
	CPUs     int                 `json:"cpus"`
	// SingleCPU flags runs taken at GOMAXPROCS=1 (see BatchReport.SingleCPU).
	SingleCPU bool `json:"single_cpu"`

	OffMillis float64 `json:"off_elapsed_ms"`
	OffQPS    float64 `json:"off_queries_per_sec"`
	// OffAllocs is heap allocations per query with tracing off — the whole
	// instrumented pipeline must add none (pinned separately by an
	// AllocsPerRun test in internal/trace).
	OffAllocs float64 `json:"off_allocs_per_query"`

	OnMillis float64 `json:"on_elapsed_ms"`
	OnQPS    float64 `json:"on_queries_per_sec"`
	OnAllocs float64 `json:"on_allocs_per_query"`

	// Slowdown is off QPS over on QPS — how much a traced session costs
	// relative to the hot path.
	Slowdown float64 `json:"slowdown"`
	// SpansPerQuery and DecisionsPerQuery prove the on side really traced:
	// pipeline+operator spans recorded per session, and optimizer decision
	// events in one probe session's trace.
	SpansPerQuery     float64 `json:"spans_per_query"`
	DecisionsPerQuery int     `json:"decisions_probe"`
}

// TraceOverhead runs the benchmark: one catalog, one request batch, a primed
// engine, then best-of-Repeats timed runs with tracing off and on.
func TraceOverhead(cfg TraceOverheadConfig) (*TraceOverheadReport, error) {
	if cfg.Tables < 2 {
		return nil, fmt.Errorf("bench: trace overhead needs at least 2 tables, got %d", cfg.Tables)
	}
	if cfg.Repeats < 1 {
		cfg.Repeats = 1
	}
	cat, _ := workload.RankedSet(cfg.Tables, workload.RankedConfig{
		N: cfg.Rows, Selectivity: cfg.Selectivity, Seed: cfg.Seed,
	})
	eng := engine.NewWithConfig(cat, engine.Config{})
	reqs := throughputQueries(ThroughputConfig{
		Tables: cfg.Tables, Queries: cfg.Queries, K: cfg.K,
	})
	// Untimed warm-up: faults in the catalog and primes the plan cache so the
	// off side measures pure cache-hit sessions.
	if err := firstErr(eng.RunAll(reqs, 1)); err != nil {
		return nil, fmt.Errorf("bench: trace overhead warm-up: %w", err)
	}

	report := &TraceOverheadReport{Config: cfg, MaxProcs: runtime.GOMAXPROCS(0), CPUs: runtime.NumCPU(), SingleCPU: runtime.GOMAXPROCS(0) == 1}
	for r := 0; r < cfg.Repeats; r++ {
		ms, qps, allocs, err := measureBatch(eng, reqs, 1)
		if err != nil {
			return nil, fmt.Errorf("bench: trace overhead off repeat %d: %w", r, err)
		}
		if qps > report.OffQPS {
			report.OffMillis, report.OffQPS, report.OffAllocs = ms, qps, allocs
		}
	}
	var spans int
	for r := 0; r < cfg.Repeats; r++ {
		// Fresh traces every repeat: a Trace belongs to one session.
		treqs := make([]engine.Request, len(reqs))
		traces := make([]*trace.Trace, len(reqs))
		for i, req := range reqs {
			traces[i] = trace.New(req.SQL)
			req.Trace = traces[i]
			treqs[i] = req
		}
		ms, qps, allocs, err := measureBatch(eng, treqs, 1)
		if err != nil {
			return nil, fmt.Errorf("bench: trace overhead on repeat %d: %w", r, err)
		}
		if qps > report.OnQPS {
			report.OnMillis, report.OnQPS, report.OnAllocs = ms, qps, allocs
			spans = 0
			for _, tr := range traces {
				spans += tr.Len()
			}
		}
	}
	if len(reqs) > 0 {
		report.SpansPerQuery = float64(spans) / float64(len(reqs))
	}
	if report.OnQPS > 0 {
		report.Slowdown = report.OffQPS / report.OnQPS
	}
	// One probe session outside the timed runs supplies the decision count.
	probe := reqs[0]
	probe.Trace = trace.New(probe.SQL)
	resp := eng.Run(probe)
	if resp.Err != nil {
		return nil, fmt.Errorf("bench: trace overhead probe: %w", resp.Err)
	}
	if resp.OptTrace != nil {
		report.DecisionsPerQuery = len(resp.OptTrace.Decisions()) + resp.OptTrace.TotalCandidates()
	}
	return report, nil
}

// CheckOverhead gates the artifact: both sides must have run, traced
// sessions must actually record spans and optimizer decisions, and the
// traced slowdown must stay under the bound (a generous smoke ceiling — the
// traced path re-optimizes and instruments on purpose, but it must never
// regress into pathology).
func (r *TraceOverheadReport) CheckOverhead(maxSlowdown float64) error {
	if r.OffQPS <= 0 || r.OnQPS <= 0 {
		return fmt.Errorf("bench: trace overhead measured non-positive qps (off=%.1f on=%.1f)", r.OffQPS, r.OnQPS)
	}
	if r.SpansPerQuery <= 0 || r.DecisionsPerQuery <= 0 {
		return fmt.Errorf("bench: traced sessions recorded nothing (spans/q=%.1f decisions=%d)",
			r.SpansPerQuery, r.DecisionsPerQuery)
	}
	if r.Slowdown > maxSlowdown {
		return fmt.Errorf("bench: traced sessions %.1fx slower than untraced, bound is %.1fx", r.Slowdown, maxSlowdown)
	}
	return nil
}

// JSON renders the artifact bytes.
func (r *TraceOverheadReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Table renders the report in the bench text format.
func (r *TraceOverheadReport) Table() *Table {
	t := &Table{
		Title: "Tracing overhead: off vs on",
		Note: fmt.Sprintf("%d-table ranked workload, %d rows/table, %d sessions, k=%d, best of %d, GOMAXPROCS=%d",
			r.Config.Tables, r.Config.Rows, r.Config.Queries, r.Config.K, r.Config.Repeats, r.MaxProcs),
		Columns: []string{"off_qps", "on_qps", "slowdown", "off_allocs/q", "on_allocs/q", "spans/q"},
	}
	t.AddRow(r.OffQPS, r.OnQPS, r.Slowdown, r.OffAllocs, r.OnAllocs, r.SpansPerQuery)
	return t
}

package bench

import (
	"fmt"

	"rankopt/internal/core"
	"rankopt/internal/exec"
	"rankopt/internal/expr"
	"rankopt/internal/logical"
	"rankopt/internal/plan"
	"rankopt/internal/relation"
	"rankopt/internal/workload"
)

// sortedScoreScan returns an operator over rel in descending score order
// (column layout id/key/score from the workload generator).
func sortedScoreScan(rel *relation.Relation) exec.Operator {
	tuples := rel.SortedBy(func(a, b relation.Tuple) bool {
		return a[2].AsFloat() > b[2].AsFloat()
	})
	return exec.FromTuples(rel.Schema(), tuples)
}

// AblationPolling compares HRJN polling strategies on an asymmetric
// workload: the left input's scores span [0,1], the right input's only
// [0,0.1]. Adaptive polling keeps pulling the higher frontier and should
// consume no more total tuples than blind alternation.
func AblationPolling() (*Table, error) {
	const (
		n = 20000
		s = 0.01
		k = 50
	)
	t := &Table{
		Title:   "Ablation: HRJN polling strategy (asymmetric scores, n=20k, s=0.01, k=50)",
		Columns: []string{"strategy", "left depth", "right depth", "total", "max buffer"},
	}
	for _, strat := range []struct {
		name string
		s    exec.PullStrategy
	}{{"alternate", exec.Alternate}, {"adaptive", exec.Adaptive}} {
		a := workload.Ranked(workload.RankedConfig{Name: "A", N: n, Selectivity: s, Seed: 5})
		b := workload.Ranked(workload.RankedConfig{Name: "B", N: n, Selectivity: s, Seed: 6, ScoreMax: 0.1})
		j := exec.NewHRJN(sortedScoreScan(a), sortedScoreScan(b),
			expr.Sum(expr.ScoreTerm{Weight: 1, E: expr.Col("A", "score")}),
			expr.Sum(expr.ScoreTerm{Weight: 1, E: expr.Col("B", "score")}),
			expr.Col("A", "key"), expr.Col("B", "key"), nil)
		j.Strategy = strat.s
		if _, err := exec.CollectK(j, k); err != nil {
			return nil, err
		}
		st := j.Stats()
		t.AddRow(strat.name, st.LeftDepth, st.RightDepth,
			st.LeftDepth+st.RightDepth, st.MaxQueue)
	}
	return t, nil
}

// AblationJoinChoices reruns the optimizer on the same top-k join query with
// individual rank-join choices disabled, reporting the chosen operator mix
// and the estimated cost at the query's k — quantifying what each join
// choice buys.
func AblationJoinChoices() (*Table, error) {
	cat, _ := workload.RankedSet(2, workload.RankedConfig{N: 20000, Selectivity: 0.01, Seed: 9})
	q := &logical.Query{
		Tables: []string{"T1", "T2"},
		Joins:  []logical.JoinPred{{L: expr.Col("T1", "key"), R: expr.Col("T2", "key")}},
		Score: expr.Sum(
			expr.ScoreTerm{Weight: 1, E: expr.Col("T1", "score")},
			expr.ScoreTerm{Weight: 1, E: expr.Col("T2", "score")},
		),
		K: 10,
	}
	t := &Table{
		Title:   "Ablation: rank-join choices available to the optimizer (n=20k, s=0.01, k=10)",
		Columns: []string{"configuration", "HRJN", "NRJN", "Sort", "est. cost @k"},
	}
	for _, cfg := range []struct {
		name string
		opts core.Options
	}{
		{"full rank-aware", core.Options{}},
		{"no HRJN", core.Options{DisableHRJN: true}},
		{"no NRJN", core.Options{DisableNRJN: true}},
		{"no enforced inputs", core.Options{DisableEnforcedRankInputs: true}},
		{"traditional", core.Options{DisableRankAware: true}},
	} {
		res, err := core.Optimize(cat, q, cfg.opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(cfg.name,
			res.Best.CountOps(plan.OpHRJN),
			res.Best.CountOps(plan.OpNRJN),
			res.Best.CountOps(plan.OpSort),
			res.Best.Cost(float64(q.K)))
	}
	return t, nil
}

// AblationPruning reports how each pruning ingredient shapes the retained
// plan space on a 3-way ranked query.
func AblationPruning() (*Table, error) {
	cat, _ := workload.RankedSet(3, workload.RankedConfig{N: 2000, Selectivity: 0.02, Seed: 13})
	q := &logical.Query{
		Tables: []string{"T1", "T2", "T3"},
		Joins: []logical.JoinPred{
			{L: expr.Col("T1", "key"), R: expr.Col("T2", "key")},
			{L: expr.Col("T2", "key"), R: expr.Col("T3", "key")},
		},
		Score: expr.Sum(
			expr.ScoreTerm{Weight: 1, E: expr.Col("T1", "score")},
			expr.ScoreTerm{Weight: 1, E: expr.Col("T2", "score")},
			expr.ScoreTerm{Weight: 1, E: expr.Col("T3", "score")},
		),
		K: 10,
	}
	t := &Table{
		Title:   "Ablation: pruning ingredients (3-way ranked join)",
		Columns: []string{"configuration", "plans generated", "plans kept"},
	}
	for _, cfg := range []struct {
		name string
		opts core.Options
	}{
		{"full rank-aware", core.Options{}},
		{"no pipeline protection", core.Options{DisablePipelineProtection: true}},
		{"no enforced rank inputs", core.Options{DisableEnforcedRankInputs: true}},
		{"traditional", core.Options{DisableRankAware: true}},
	} {
		res, err := core.Optimize(cat, q, cfg.opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(cfg.name, res.PlansGenerated, res.PlansKept)
	}
	return t, nil
}

// AblationDistributions measures how the (uniform-assumption) depth model
// degrades under non-uniform score distributions — a robustness question the
// paper's video features answer only anecdotally. The estimate uses each
// relation's measured average decrement slab, so distributions with sparse
// or dense top tails stress the linear-score-decay assumption.
func AblationDistributions() (*Table, error) {
	const (
		n = 3000
		s = 0.01
		k = 50
	)
	t := &Table{
		Title: "Ablation: depth-model robustness across score distributions (Plan P, k=50)",
		Note:  "estimates assume uniform scores; err% is the average-case estimate vs measurement",
		Columns: []string{"distribution", "d1/d2 actual", "avg est", "err%",
			"d5/d6 actual", "avg est", "err%"},
	}
	dists := []struct {
		name string
		d    workload.ScoreDist
	}{
		{"uniform", workload.DistUniform},
		{"gaussian", workload.DistGaussian},
		{"power-low (sparse top)", workload.DistPowerLow},
		{"power-high (dense top)", workload.DistPowerHigh},
	}
	for _, dc := range dists {
		p := buildPlanPDist(n, s, 33, exec.Alternate, dc.d)
		topSt, leftSt, _, err := p.run(k)
		if err != nil {
			return nil, err
		}
		top, child, err := estimateSeries(n, s, p.slab, k)
		if err != nil {
			return nil, err
		}
		d12 := avgDepth(leftSt)
		d56 := avgDepth(topSt)
		t.AddRow(dc.name,
			d12, child.avg, errPct(child.avg, d12),
			d56, top.avg, errPct(top.avg, d56))
	}
	return t, nil
}

// AblationTopKSort pits the paper's full-sort plan economics against the
// modern bounded-heap top-k sort: with UseTopKSort the traditional plan's
// blocking enforcer becomes far cheaper, shifting the rank-join crossover.
func AblationTopKSort() (*Table, error) {
	cat, _ := workload.RankedSet(2, workload.RankedConfig{N: 50000, Selectivity: 0.001, Seed: 17})
	q := &logical.Query{
		Tables: []string{"T1", "T2"},
		Joins:  []logical.JoinPred{{L: expr.Col("T1", "key"), R: expr.Col("T2", "key")}},
		Score: expr.Sum(
			expr.ScoreTerm{Weight: 1, E: expr.Col("T1", "score")},
			expr.ScoreTerm{Weight: 1, E: expr.Col("T2", "score")},
		),
	}
	t := &Table{
		Title:   "Ablation: enforcer choice for the traditional plan (n=50k, s=0.001)",
		Note:    "rank-aware cost for reference; the top-k sort shrinks the traditional plan's gap",
		Columns: []string{"k", "rank-aware", "traditional full-sort", "traditional topk-sort"},
	}
	cost := func(opts core.Options, k int) (float64, error) {
		qq := *q
		qq.K = k
		res, err := core.Optimize(cat, &qq, opts)
		if err != nil {
			return 0, err
		}
		if opts.UseTopKSort && res.Best.CountOps(plan.OpTopK) == 0 {
			return 0, fmt.Errorf("bench: topk-sort enforcer not used")
		}
		return res.Best.Cost(float64(k)), nil
	}
	for _, k := range []int{10, 100, 1000, 10000} {
		rank, err := cost(core.Options{}, k)
		if err != nil {
			return nil, err
		}
		full, err := cost(core.Options{DisableRankAware: true}, k)
		if err != nil {
			return nil, err
		}
		topk, err := cost(core.Options{DisableRankAware: true, UseTopKSort: true}, k)
		if err != nil {
			return nil, err
		}
		t.AddRow(k, rank, full, topk)
	}
	return t, nil
}

// AblationMultiwayHRJN compares the m-way rank-join against the balanced
// binary HRJN tree on the Plan P workload: one global threshold and no
// intermediate partial rankings versus composable binary operators with
// per-level buffers.
func AblationMultiwayHRJN() (*Table, error) {
	const (
		n = 3000
		s = 0.01
	)
	t := &Table{
		Title: "Ablation: m-way HRJN vs binary HRJN tree (4 inputs, n=3000, s=0.01)",
		Columns: []string{"k", "binary: total depth", "binary: max buffer",
			"m-way: total depth", "m-way: max buffer"},
	}
	for _, k := range []int{10, 50, 100, 200} {
		// Binary tree (Plan P).
		p := buildPlanP(n, s, 42, exec.Alternate)
		topSt, leftSt, rightSt, err := p.run(k)
		if err != nil {
			return nil, err
		}
		binDepth := leftSt.LeftDepth + leftSt.RightDepth + rightSt.LeftDepth + rightSt.RightDepth
		binBuf := topSt.MaxQueue
		if leftSt.MaxQueue > binBuf {
			binBuf = leftSt.MaxQueue
		}
		if rightSt.MaxQueue > binBuf {
			binBuf = rightSt.MaxQueue
		}

		// m-way over the same relations.
		cat, names := workload.RankedSet(4, workload.RankedConfig{N: n, Selectivity: s, Seed: 42})
		inputs := make([]exec.Operator, 4)
		scores := make([]expr.Expr, 4)
		keys := make([]expr.Expr, 4)
		for i, name := range names {
			tab, err := cat.Table(name)
			if err != nil {
				return nil, err
			}
			inputs[i] = exec.NewIndexScan(tab.Rel, cat.IndexOn(name, "score"), true)
			scores[i] = expr.Col(name, "score")
			keys[i] = expr.Col(name, "key")
		}
		mw, err := exec.NewMultiHRJN(inputs, scores, keys)
		if err != nil {
			return nil, err
		}
		if _, err := exec.CollectK(mw, k); err != nil {
			return nil, err
		}
		mwDepth := 0
		for _, d := range mw.Depths() {
			mwDepth += d
		}
		t.AddRow(k, binDepth, binBuf, mwDepth, mw.MaxQueue())
	}
	return t, nil
}

// AblationRankAggregate compares the Fagin-TA plan against the optimizer's
// winner on the multimedia top-k-selection query: TA is access-optimal
// (touches far fewer tuples) yet loses under page-based I/O costing because
// each access is a random probe while scans stream sequentially — the
// systems reason the paper builds rank-joins into the engine instead of
// bolting aggregation algorithms on top.
func AblationRankAggregate() (*Table, error) {
	const (
		objects = 5000
		k       = 10
	)
	cat, names := workload.Corpus(workload.CorpusConfig{Objects: objects, Features: 4, Seed: 29})
	weights := []float64{0.4, 0.3, 0.2, 0.1}
	q := &logical.Query{K: k}
	for i, f := range names {
		q.Tables = append(q.Tables, f)
		q.Score.Terms = append(q.Score.Terms,
			expr.ScoreTerm{Weight: weights[i], E: expr.Col(f, "score")})
		if i > 0 {
			q.Joins = append(q.Joins, logical.JoinPred{
				L: expr.Col(names[i-1], "id"), R: expr.Col(f, "id"),
			})
		}
	}
	res, err := core.Optimize(cat, q, core.Options{})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Ablation: Fagin-TA plan vs optimizer's winner (4 features, 5000 objects, k=10)",
		Note:    "TA touches the fewest tuples; the page-based cost model still prefers streaming scans",
		Columns: []string{"plan", "tuples touched", "est. cost @k"},
	}
	// The optimizer's winner: count touched tuples as full scans of the
	// chosen plan's base tables (its joins consume whole inputs here).
	winnerTuples := 0
	for _, f := range names {
		winnerTuples += cat.Cardinality(f)
	}
	winnerName := "join+sort"
	if res.Best.CountOps(plan.OpHRJN)+res.Best.CountOps(plan.OpNRJN) > 0 {
		winnerName = "rank-join"
	}
	if res.Best.CountOps(plan.OpRankAgg) > 0 {
		winnerName = "rank-aggregate"
	}
	t.AddRow(winnerName+" (chosen)", winnerTuples, res.Best.Cost(float64(k)))

	// The TA alternative, measured by execution.
	inputs := make([]exec.TAInput, len(names))
	for i, f := range names {
		tab, err := cat.Table(f)
		if err != nil {
			return nil, err
		}
		inputs[i] = exec.TAInput{
			Rel:      tab.Rel,
			ScoreIdx: cat.IndexOn(f, "score"),
			IDIdx:    cat.IndexOn(f, "id"),
			ScorePos: 1, IDPos: 0,
			Weight: weights[i],
		}
	}
	ta, err := exec.NewTASelect(inputs, k)
	if err != nil {
		return nil, err
	}
	if _, err := exec.Collect(ta); err != nil {
		return nil, err
	}
	st := ta.AccessStats()
	taNode := &plan.Node{Op: plan.OpRankAgg, TAInputs: inputs, K: k,
		Card: float64(k), BaseN: objects, P: res.Best.P}
	t.AddRow("rank-aggregate (TA)", st.TotalSorted()+st.TotalRandom(), taNode.Cost(float64(k)))
	return t, nil
}

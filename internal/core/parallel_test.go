package core

import (
	"sort"
	"testing"

	"rankopt/internal/plan"
	"rankopt/internal/workload"
)

// memoFingerprint renders a Result's MEMO as a canonical multiset of
// (entry, explained plan, total cost) strings, so two enumerations can be
// compared structurally regardless of goroutine scheduling.
func memoFingerprint(t *testing.T, res *Result) []string {
	t.Helper()
	var out []string
	for label, plans := range res.Memo {
		for _, p := range plans {
			out = append(out, label+" | "+plan.Explain(p))
		}
	}
	sort.Strings(out)
	return out
}

// TestParallelEnumerationMatchesSequential: the DP's parallel levels must
// produce exactly the sequential MEMO — same entries, same retained plans,
// same counters, same chosen plan — for every worker count. Each mask is
// built by one worker in the sequential split order, so nothing about the
// result may depend on scheduling.
func TestParallelEnumerationMatchesSequential(t *testing.T) {
	cat, _ := workload.RankedSet(4, workload.RankedConfig{N: 600, Selectivity: 0.03, Seed: 301})
	for _, m := range []int{2, 3, 4} {
		for _, k := range []int{1, 10} {
			q := rankedQuery(m, k)
			seq, err := Optimize(cat, q, Options{})
			if err != nil {
				t.Fatal(err)
			}
			seqFP := memoFingerprint(t, seq)
			seqPlan := plan.Explain(seq.Best)
			for _, workers := range []int{2, 4, 8} {
				par, err := Optimize(cat, q, Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if par.PlansGenerated != seq.PlansGenerated || par.PlansKept != seq.PlansKept {
					t.Errorf("m=%d k=%d workers=%d: counters (gen=%d kept=%d) differ from sequential (gen=%d kept=%d)",
						m, k, workers, par.PlansGenerated, par.PlansKept, seq.PlansGenerated, seq.PlansKept)
				}
				if got := plan.Explain(par.Best); got != seqPlan {
					t.Errorf("m=%d k=%d workers=%d: best plan diverged\nparallel:\n%s\nsequential:\n%s",
						m, k, workers, got, seqPlan)
				}
				parFP := memoFingerprint(t, par)
				if len(parFP) != len(seqFP) {
					t.Errorf("m=%d k=%d workers=%d: MEMO holds %d plans, sequential %d",
						m, k, workers, len(parFP), len(seqFP))
					continue
				}
				for i := range parFP {
					if parFP[i] != seqFP[i] {
						t.Errorf("m=%d k=%d workers=%d: MEMO diverged at %q vs %q",
							m, k, workers, parFP[i], seqFP[i])
						break
					}
				}
			}
		}
	}
}

// TestParallelEnumerationAblations re-runs the equivalence check under the
// ablation switches that change which plan families the workers generate.
func TestParallelEnumerationAblations(t *testing.T) {
	cat, _ := workload.RankedSet(3, workload.RankedConfig{N: 400, Selectivity: 0.05, Seed: 302})
	q := rankedQuery(3, 5)
	for name, opts := range map[string]Options{
		"baseline":  {DisableRankAware: true},
		"no-hrjn":   {DisableHRJN: true},
		"no-nrjn":   {DisableNRJN: true},
		"keep-all":  {KeepAllPlans: true},
		"topk-sort": {UseTopKSort: true},
	} {
		seq, err := Optimize(cat, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		popts := opts
		popts.Workers = 4
		par, err := Optimize(cat, q, popts)
		if err != nil {
			t.Fatal(err)
		}
		if par.PlansGenerated != seq.PlansGenerated || par.PlansKept != seq.PlansKept {
			t.Errorf("%s: counters diverged: parallel gen=%d kept=%d, sequential gen=%d kept=%d",
				name, par.PlansGenerated, par.PlansKept, seq.PlansGenerated, seq.PlansKept)
		}
		if plan.Explain(par.Best) != plan.Explain(seq.Best) {
			t.Errorf("%s: best plan diverged", name)
		}
	}
}

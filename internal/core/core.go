// Package core implements the paper's contribution: a rank-aware query
// optimizer extending System R bottom-up dynamic programming. Ranking
// expressions are treated as interesting physical properties (Section 3.1),
// the enumeration space is enlarged with rank-join plan alternatives —
// natural via ordered access paths or enforced via glued sorts (Section
// 3.2) — and pruning compares k-parameterized rank-join plan costs against
// blocking sort plans using the crossover point k* while protecting
// pipelined plans (Section 3.3). Rank-join costing delegates to the
// Section 4 depth model through package plan.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"rankopt/internal/catalog"
	"rankopt/internal/costmodel"
	"rankopt/internal/estimate"
	"rankopt/internal/exec"
	"rankopt/internal/expr"
	"rankopt/internal/logical"
	"rankopt/internal/plan"
)

// PlannerMode selects the join-order planning strategy.
type PlannerMode uint8

const (
	// PlannerDP is the paper's System-R bottom-up dynamic programming over
	// every connected table subset (the default).
	PlannerDP PlannerMode = iota
	// PlannerGreedy skips the memo entirely: joins are ordered greedily by
	// visible selectivity and join-graph connectivity, emitting one left-deep
	// plan in microseconds. Shapes greedy cannot order confidently (grouped
	// queries, traced sessions, plan-space collection) fall back to the DP;
	// Result.GreedyFallback reports when that happened.
	PlannerGreedy
)

// String renders the mode the way the -planner flag spells it.
func (m PlannerMode) String() string {
	if m == PlannerGreedy {
		return "greedy"
	}
	return "dp"
}

// ParsePlannerMode parses a -planner flag value ("", "dp", "greedy").
func ParsePlannerMode(s string) (PlannerMode, error) {
	switch s {
	case "", "dp":
		return PlannerDP, nil
	case "greedy":
		return PlannerGreedy, nil
	}
	return PlannerDP, fmt.Errorf("core: unknown planner mode %q (want dp or greedy)", s)
}

// Options controls the optimizer. The Disable* switches exist for the
// ablation experiments; production use keeps the zero value (everything on).
type Options struct {
	// DisableRankAware turns off interesting order expressions and
	// rank-join generation entirely — the traditional System R baseline.
	DisableRankAware bool
	// DisableHRJN / DisableNRJN remove individual rank-join choices.
	DisableHRJN bool
	DisableNRJN bool
	// DisableAnyK removes the any-k ranked-enumeration alternative (the
	// Lawler-style path enumerator over unordered inputs).
	DisableAnyK bool
	// DisablePipelineProtection lets blocking plans prune pipelined plans
	// on cost alone, removing the First-N-Rows property.
	DisablePipelineProtection bool
	// DisableEnforcedRankInputs stops gluing sort operators to create
	// ranked rank-join inputs, keeping only "natural" ordered access paths.
	DisableEnforcedRankInputs bool
	// KeepAllPlans disables pruning entirely, retaining every generated
	// plan. Exponentially expensive — exists to validate that pruning never
	// discards the optimal plan (tests and ablations only).
	KeepAllPlans bool
	// DisableRankAggregate removes the TA-based top-k-selection plan
	// alternative (generated when every table is ranked and joined on one
	// unique-key equivalence class).
	DisableRankAggregate bool
	// UseTopKSort replaces the final full-sort enforcer with a bounded-heap
	// top-k sort when the query carries a LIMIT — the modern competitor to
	// rank-join plans (off by default to stay faithful to the paper's sort
	// plans; an ablation experiment measures the difference).
	UseTopKSort bool
	// CollectAllPlans returns every completed full-query alternative in
	// Result.AllPlans (each with the shared Rank/Limit/Project tail), the
	// input to the differential-testing oracle. Combine with KeepAllPlans to
	// exercise plans pruning would normally discard.
	CollectAllPlans bool
	// Strategy is the HRJN polling policy for compiled plans.
	Strategy exec.PullStrategy
	// Params overrides the cost-model parameters (nil means defaults).
	Params *costmodel.Params
	// Workers bounds the goroutines enumerating join plans within each DP
	// size level (levels are the enumeration's only dependency barrier).
	// 0 or 1 enumerates sequentially; the plans produced are identical
	// either way, since every memo entry is built by exactly one worker.
	Workers int
	// Tracer, when non-nil, observes every enumeration and pruning decision
	// (see tracer.go). Implementations must be safe for concurrent calls
	// when Workers > 1; for a deterministic event order run with Workers <=
	// 1, which the engine does for traced sessions.
	Tracer Tracer
	// Planner selects the join-order strategy: the System-R DP (default) or
	// the greedy fast path (see PlannerGreedy).
	Planner PlannerMode
	// DepthHints carries empirically observed rank-join depths keyed by
	// plan.DepthHintKey (sorted left tables + "|" + sorted right tables).
	// When a rank join is built over a keyed table split, the hint overrides
	// the Section-4 uniform-score depth estimate — the feedback loop's way of
	// re-optimizing with measured depths instead of the model.
	DepthHints map[string]estimate.Observed
}

// Result is the optimizer output.
type Result struct {
	// Best is the chosen complete plan, including any final sort enforcer,
	// rank annotation, limit, and projection.
	Best *plan.Node
	// BestJoin is the underlying join plan before final assembly.
	BestJoin *plan.Node
	// AllPlans holds every completed full-query alternative (only when
	// Options.CollectAllPlans is set). Each is executable via plan.Compile
	// and must produce the same top-k answer as Best.
	AllPlans []*plan.Node
	// Memo maps entry labels (e.g. "A,B") to the retained plans, mirroring
	// the paper's Figures 2 and 3.
	Memo map[string][]*plan.Node
	// PlansKept is the total number of plans retained across MEMO entries.
	PlansKept int
	// PlansGenerated counts every candidate considered before pruning.
	PlansGenerated int
	// PlansPruned counts plans the Section 3.3 property+cost domination
	// discarded (rejected candidates plus evicted incumbents).
	PlansPruned int
	// PlansProtected counts pipelined plans that survived a cheaper blocking
	// rival only through the First-N-Rows protection.
	PlansProtected int
	// InterestingOrders reproduces Table 1 for the query.
	InterestingOrders []InterestingOrder
	// Planner is the strategy that actually produced Best (greedy requests
	// that fell back report PlannerDP here).
	Planner PlannerMode
	// GreedyFallback is set when PlannerGreedy was requested but the query
	// shape forced the DP path; GreedyFallbackReason then names why (one of
	// the GreedyFallback* constants).
	GreedyFallback       bool
	GreedyFallbackReason string
}

// InterestingOrder is one row of the paper's Table 1.
type InterestingOrder struct {
	Expr    string
	Reasons []string
}

// tableInfo caches per-table planning facts.
type tableInfo struct {
	idx     int
	name    string
	rawCard float64
	card    float64 // after filters
	filtSel float64
	filters []expr.Expr
	// term is the table's ranking score term (nil when unranked).
	term *expr.ScoreTerm
	// termSlab is the average decrement slab of the weighted term over the
	// filtered relation.
	termSlab float64
	// termCol is set when the term's expression is a bare column (only then
	// can an index provide the ranked order naturally).
	termCol   expr.ColRef
	termIsCol bool
}

// optimizer carries the DP state.
type optimizer struct {
	cat    *catalog.Catalog
	q      *logical.Query
	opts   Options
	params *costmodel.Params
	tables []*tableInfo
	byName map[string]*tableInfo
	memo   map[uint64][]*plan.Node
	pc     pruneCounters
	kmin   float64
	// equiv groups join columns into equivalence classes; joins holds the
	// transitive closure of the query's join predicates.
	equiv *equivClasses
	joins []logical.JoinPred
}

// Optimize plans the query against the catalog.
func Optimize(cat *catalog.Catalog, q *logical.Query, opts Options) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	p := opts.Params
	if p == nil {
		def := costmodel.Default()
		p = &def
	}
	o := &optimizer{
		cat:    cat,
		q:      q,
		opts:   opts,
		params: p,
		byName: map[string]*tableInfo{},
		memo:   map[uint64][]*plan.Node{},
	}
	if q.K > 0 {
		o.kmin = float64(q.K)
	}
	if err := o.buildTableInfo(); err != nil {
		return nil, err
	}
	o.equiv = newEquivClasses(q.Joins)
	o.joins = o.equiv.closure(q.Joins)

	planner := PlannerDP
	fallback := false
	fallbackReason := ""
	var best, bestJoin *plan.Node
	var all []*plan.Node
	var err error
	if opts.Planner == PlannerGreedy {
		if g, reason := o.greedyPlan(); g != nil {
			planner = PlannerGreedy
			best, bestJoin, all, err = o.finish([]*plan.Node{g})
		} else {
			fallback = true
			fallbackReason = reason
		}
	}
	if planner == PlannerDP {
		o.enumerateBase()
		o.enumerateJoins()
		o.traceMemoState()
		best, bestJoin, all, err = o.finish(o.memo[o.fullMask()])
	}
	if err != nil {
		return nil, err
	}
	res := &Result{
		Best:                 best,
		BestJoin:             bestJoin,
		AllPlans:             all,
		Memo:                 map[string][]*plan.Node{},
		PlansGenerated:       o.pc.gen,
		PlansPruned:          o.pc.pruned + o.pc.evicted,
		PlansProtected:       o.pc.protected,
		InterestingOrders:    o.interestingOrders(),
		Planner:              planner,
		GreedyFallback:       fallback,
		GreedyFallbackReason: fallbackReason,
	}
	for mask, plans := range o.memo {
		res.Memo[o.label(mask)] = plans
		res.PlansKept += len(plans)
	}
	return res, nil
}

// traceMemoState emits the post-enumeration snapshot to the tracer: the
// query's interesting order expressions (Table 1) and every plan each MEMO
// entry retained, in deterministic (level, label) order.
func (o *optimizer) traceMemoState() {
	tr := o.opts.Tracer
	if tr == nil {
		return
	}
	for _, io := range o.interestingOrders() {
		tr.OnDecision(Decision{
			Kind: DecisionInterestingOrder,
			Plan: io.Expr,
			Note: strings.Join(io.Reasons, "; "),
		})
	}
	masks := make([]uint64, 0, len(o.memo))
	for mask := range o.memo {
		masks = append(masks, mask)
	}
	sort.Slice(masks, func(i, j int) bool {
		pi, pj := popcount(masks[i]), popcount(masks[j])
		if pi != pj {
			return pi < pj
		}
		return o.label(masks[i]) < o.label(masks[j])
	})
	for _, mask := range masks {
		for _, p := range o.memo[mask] {
			tr.OnDecision(Decision{
				Kind:  DecisionKept,
				Level: popcount(mask),
				Entry: o.label(mask),
				Plan:  plan.Summary(p),
				Note:  fmt.Sprintf("props %s; cost %.1f at full output", propsNote(p), p.TotalCost()),
			})
		}
	}
}

func (o *optimizer) buildTableInfo() error {
	for i, name := range o.q.Tables {
		tab, err := o.cat.Table(name)
		if err != nil {
			return err
		}
		ti := &tableInfo{
			idx:     i,
			name:    name,
			rawCard: float64(tab.Stats.Card),
			filtSel: 1,
			filters: o.q.FiltersFor(name),
		}
		for _, f := range ti.filters {
			ti.filtSel *= o.cat.FilterSelectivity(f)
		}
		ti.card = math.Max(ti.rawCard*ti.filtSel, 1)
		for ix := range o.q.Score.Terms {
			t := &o.q.Score.Terms[ix]
			if t.Table() == name {
				ti.term = t
				if c, ok := t.E.(expr.ColRef); ok {
					ti.termCol = c
					ti.termIsCol = true
					cs := o.cat.ColStats(name, c.Name)
					if cs.Slab > 0 {
						// Filtering thins the relation, widening the slab.
						ti.termSlab = t.Weight * cs.Slab / ti.filtSel
					}
				}
				if ti.termSlab == 0 {
					// Fallback: pretend unit range over the filtered card.
					ti.termSlab = t.Weight / ti.card
				}
				break
			}
		}
		o.tables = append(o.tables, ti)
		o.byName[name] = ti
	}
	return nil
}

// rankAware reports whether rank-aware enumeration applies to this query.
func (o *optimizer) rankAware() bool {
	return !o.opts.DisableRankAware && o.q.Ranking()
}

// mask helpers

func (o *optimizer) maskFor(names ...string) uint64 {
	var m uint64
	for _, n := range names {
		m |= 1 << uint(o.byName[n].idx)
	}
	return m
}

func (o *optimizer) namesOf(mask uint64) []string {
	var out []string
	for _, ti := range o.tables {
		if mask&(1<<uint(ti.idx)) != 0 {
			out = append(out, ti.name)
		}
	}
	return out
}

func (o *optimizer) nameSet(mask uint64) map[string]bool {
	set := map[string]bool{}
	for _, n := range o.namesOf(mask) {
		set[n] = true
	}
	return set
}

func (o *optimizer) label(mask uint64) string {
	return strings.Join(o.namesOf(mask), ",")
}

// rankedOf returns the ranked tables within a mask (sorted by table order).
func (o *optimizer) rankedOf(mask uint64) []*tableInfo {
	var out []*tableInfo
	for _, ti := range o.tables {
		if ti.term != nil && mask&(1<<uint(ti.idx)) != 0 {
			out = append(out, ti)
		}
	}
	return out
}

// rankOrderFor builds the OrderRank property covering all ranked tables of
// the mask; ok=false when the mask holds no ranked table.
func (o *optimizer) rankOrderFor(mask uint64) (plan.OrderProp, bool) {
	ranked := o.rankedOf(mask)
	if len(ranked) == 0 {
		return plan.NoOrder, false
	}
	names := make([]string, len(ranked))
	for i, ti := range ranked {
		names[i] = ti.name
	}
	return plan.RankOrder(names...), true
}

// scoreFor returns the partial ranking function over the mask's tables.
func (o *optimizer) scoreFor(mask uint64) expr.ScoreSum {
	return o.q.ScoreFor(o.nameSet(mask))
}

// geoMeanRankedCard returns the geometric mean cardinality of the ranked
// tables under the mask (the depth model's representative n).
func (o *optimizer) geoMeanRankedCard(mask uint64) float64 {
	ranked := o.rankedOf(mask)
	if len(ranked) == 0 {
		return 1
	}
	s := 0.0
	for _, ti := range ranked {
		s += math.Log(ti.card)
	}
	return math.Exp(s / float64(len(ranked)))
}

// selectivityBetween collects the (closure) join predicates connecting the
// two masks, reduced to one predicate per equivalence class, and multiplies
// their selectivities. Redundant transitive predicates are implied by the
// retained ones, so counting them would underestimate the join cardinality.
func (o *optimizer) selectivityBetween(m1, m2 uint64) ([]logical.JoinPred, float64) {
	left, right := o.nameSet(m1), o.nameSet(m2)
	var preds []logical.JoinPred
	for _, j := range o.joins {
		if left[j.L.Table] && right[j.R.Table] {
			preds = append(preds, j)
		} else if left[j.R.Table] && right[j.L.Table] {
			preds = append(preds, logical.JoinPred{L: j.R, R: j.L})
		}
	}
	preds = o.equiv.reduceByClass(preds)
	s := 1.0
	for _, jp := range preds {
		s *= o.cat.JoinSelectivity(jp.L, jp.R)
	}
	return preds, s
}

// fullMask covers all query tables.
func (o *optimizer) fullMask() uint64 { return (1 << uint(len(o.tables))) - 1 }

// sortKeysByScore builds the descending sort keys for a partial score.
func sortKeysByScore(s expr.ScoreSum) []exec.SortKey {
	return []exec.SortKey{{E: s, Desc: true}}
}

// popcount via bits would import math/bits; small helper suffices.
func popcount(m uint64) int {
	c := 0
	for m != 0 {
		m &= m - 1
		c++
	}
	return c
}

var _ = fmt.Sprintf // keep fmt for error paths in other files

// sortedNames sorts a copy of names.
func sortedNames(names []string) []string {
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}

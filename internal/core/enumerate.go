package core

import (
	"fmt"
	"math"
	"sync"

	"rankopt/internal/exec"
	"rankopt/internal/expr"
	"rankopt/internal/logical"
	"rankopt/internal/plan"
)

// enumerateBase populates the size-1 MEMO entries: sequential scans, index
// access paths satisfying interesting orders, and eagerly enforced sorts
// (Section 3.1's eager policy).
func (o *optimizer) enumerateBase() {
	for _, ti := range o.tables {
		mask := uint64(1) << uint(ti.idx)

		// Heap scan (the DC plan).
		o.addPlan(mask, o.wrapFilters(ti, &plan.Node{
			Op:    plan.OpSeqScan,
			Table: ti.name,
			Card:  ti.rawCard,
			P:     o.params,
			Props: plan.Props{Order: plan.NoOrder, Pipelined: true},
		}))

		// Index paths for interesting column orders (join columns, ORDER BY).
		for _, col := range o.interestingCols(ti.name) {
			idx := o.cat.IndexOn(ti.name, col.Col.Name)
			if idx == nil {
				continue
			}
			o.addPlan(mask, o.wrapFilters(ti, &plan.Node{
				Op:        plan.OpIndexScan,
				Table:     ti.name,
				Index:     idx,
				IndexDesc: col.Desc,
				Card:      ti.rawCard,
				P:         o.params,
				Props:     plan.Props{Order: plan.ColOrder(col.Col, col.Desc), Pipelined: true},
			}))
			// Eagerly enforce the order when no index serves it? The index
			// exists here; the enforcement branch below covers the rest.
		}

		// Sargable filters over indexed columns become index range scans:
		// only the matching key range is touched, and the full filter stays
		// above the scan as a residual (covering strict inequalities).
		for _, f := range ti.filters {
			rs := o.rangeScanFor(ti, f)
			if rs != nil {
				o.addPlan(mask, rs)
			}
		}

		// Enforced column orders for join columns lacking an index.
		for _, col := range o.interestingCols(ti.name) {
			if o.cat.IndexOn(ti.name, col.Col.Name) != nil {
				continue
			}
			base := o.cheapBase(ti)
			o.addPlan(mask, o.sortWrap(base,
				[]exec.SortKey{{E: col.Col, Desc: col.Desc}},
				plan.ColOrder(col.Col, col.Desc)))
		}

		if !o.rankAware() || ti.term == nil {
			continue
		}
		rankProp := plan.RankOrder(ti.name)

		// Natural ranked access: descending index scan on the score column.
		natural := false
		if ti.termIsCol {
			if idx := o.cat.IndexOn(ti.name, ti.termCol.Name); idx != nil {
				scan := &plan.Node{
					Op:        plan.OpIndexScan,
					Table:     ti.name,
					Index:     idx,
					IndexDesc: true,
					Card:      ti.rawCard,
					LSlab:     ti.termSlab,
					P:         o.params,
					Props:     plan.Props{Order: rankProp, Pipelined: true},
				}
				o.addPlan(mask, o.wrapFilters(ti, scan))
				natural = true
			}
		}
		// Enforced ranked order: sort the cheapest plan by the score term.
		if !natural && !o.opts.DisableEnforcedRankInputs {
			base := o.cheapBase(ti)
			s := o.sortWrap(base, sortKeysByScore(expr.Sum(*ti.term)), rankProp)
			s.LSlab = ti.termSlab
			o.addPlan(mask, s)
		}
	}
}

// interestingCol is a column order wanted by later operations.
type interestingCol struct {
	Col  expr.ColRef
	Desc bool
}

// interestingCols collects the interesting column orders for a table:
// join-predicate columns (ascending, for merge joins) and the ORDER BY
// column of non-ranking queries.
func (o *optimizer) interestingCols(table string) []interestingCol {
	var out []interestingCol
	seen := map[string]bool{}
	add := func(c expr.ColRef, desc bool) {
		key := c.String()
		if desc {
			key += " desc"
		}
		if c.Table == table && !seen[key] {
			seen[key] = true
			out = append(out, interestingCol{Col: c, Desc: desc})
		}
	}
	for _, j := range o.q.Joins {
		add(j.L, false)
		add(j.R, false)
	}
	if !o.q.Ranking() && o.q.OrderBy.Name != "" {
		add(o.q.OrderBy, o.q.OrderDesc)
	}
	// Group-by columns are interesting ascending: a sorted-aggregate over a
	// pre-ordered input streams and avoids the hash table.
	for _, g := range o.q.GroupBy {
		add(g, false)
	}
	return out
}

// rangeScanFor builds an index range scan for one sargable filter conjunct
// (col OP const over an indexed column), or nil when the filter does not
// qualify. The returned plan applies all of the table's filters above the
// range scan.
func (o *optimizer) rangeScanFor(ti *tableInfo, f expr.Expr) *plan.Node {
	b, ok := f.(expr.Binary)
	if !ok {
		return nil
	}
	col, cok := b.L.(expr.ColRef)
	lit, lok := b.R.(expr.Const)
	if !cok || !lok || col.Table != ti.name || lit.V.IsNull() {
		return nil
	}
	idx := o.cat.IndexOn(ti.name, col.Name)
	if idx == nil {
		return nil
	}
	scan := &plan.Node{
		Op:    plan.OpIndexRange,
		Table: ti.name,
		Index: idx,
		P:     o.params,
		Props: plan.Props{Order: plan.ColOrder(col, false), Pipelined: true},
	}
	switch b.Op {
	case expr.OpEq:
		scan.RangeLo, scan.RangeHi = lit.V, lit.V
		scan.HasLo, scan.HasHi = true, true
	case expr.OpLt, expr.OpLe:
		scan.RangeHi, scan.HasHi = lit.V, true
	case expr.OpGt, expr.OpGe:
		scan.RangeLo, scan.HasLo = lit.V, true
	default:
		return nil
	}
	scan.Card = math.Max(ti.rawCard*o.cat.FilterSelectivity(f), 1)
	return o.wrapFilters(ti, scan)
}

// wrapFilters applies the table's filters above an access path.
func (o *optimizer) wrapFilters(ti *tableInfo, scan *plan.Node) *plan.Node {
	if len(ti.filters) == 0 {
		return scan
	}
	f := &plan.Node{
		Op:       plan.OpFilter,
		Children: []*plan.Node{scan},
		Pred:     expr.And(ti.filters...),
		Card:     ti.card,
		Sel:      ti.filtSel,
		LSlab:    scan.LSlab,
		P:        o.params,
		Props:    scan.Props,
	}
	return f
}

// cheapBase returns the cheapest unordered access to the table (fresh node,
// safe to wrap).
func (o *optimizer) cheapBase(ti *tableInfo) *plan.Node {
	return o.wrapFilters(ti, &plan.Node{
		Op:    plan.OpSeqScan,
		Table: ti.name,
		Card:  ti.rawCard,
		P:     o.params,
		Props: plan.Props{Order: plan.NoOrder, Pipelined: true},
	})
}

// sortWrap glues a sort enforcer producing the given order property.
func (o *optimizer) sortWrap(p *plan.Node, keys []exec.SortKey, order plan.OrderProp) *plan.Node {
	return &plan.Node{
		Op:       plan.OpSort,
		Children: []*plan.Node{p},
		SortKeys: keys,
		Card:     p.Card,
		LSlab:    p.LSlab,
		P:        o.params,
		Props:    plan.Props{Order: order, Pipelined: false},
	}
}

// maskAcc accumulates the candidate plans of one MEMO entry during join
// enumeration. Each mask of a size level is owned by exactly one worker
// goroutine, which prunes locally; the accumulated lists are merged into the
// shared memo at the level barrier, so workers never write shared state.
type maskAcc struct {
	o     *optimizer
	mask  uint64
	plans []*plan.Node
	pc    pruneCounters
}

// add applies property + cost pruning to the local plan list.
func (a *maskAcc) add(cand *plan.Node) {
	a.pc.gen++
	if tr := a.o.opts.Tracer; tr != nil {
		tr.OnDecision(Decision{Kind: DecisionCandidate, Level: popcount(a.mask), Entry: a.o.label(a.mask)})
	}
	a.plans = a.o.insertPruned(a.mask, a.plans, cand, &a.pc)
}

// enumerateJoins runs the bottom-up DP over table subsets, generating every
// join alternative for every connected split of every subset. Within one
// size level every mask depends only on strictly smaller entries, so the
// masks of a level are enumerated across Options.Workers goroutines; the
// level boundary is the only synchronization point.
func (o *optimizer) enumerateJoins() {
	n := len(o.tables)
	full := o.fullMask()
	for size := 2; size <= n; size++ {
		var masks []uint64
		for mask := uint64(1); mask <= full; mask++ {
			if popcount(mask) == size {
				masks = append(masks, mask)
			}
		}
		accs := make([]*maskAcc, len(masks))
		enumerate := func(i int) {
			acc := &maskAcc{o: o, mask: masks[i]}
			o.enumerateMask(acc)
			accs[i] = acc
		}
		workers := o.opts.Workers
		if workers > len(masks) {
			workers = len(masks)
		}
		if workers <= 1 {
			for i := range masks {
				enumerate(i)
			}
		} else {
			idx := make(chan int)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range idx {
						enumerate(i)
					}
				}()
			}
			for i := range masks {
				idx <- i
			}
			close(idx)
			wg.Wait()
		}
		// Level barrier: publish every mask's plans before the next level
		// reads them. Each entry was built by one worker, so the merge is a
		// plain move, not a re-pruning.
		for _, acc := range accs {
			if len(acc.plans) > 0 {
				o.memo[acc.mask] = acc.plans
			}
			o.pc.merge(acc.pc)
		}
	}
}

// enumerateMask generates every join alternative for one subset mask,
// reading only memo entries of strictly smaller size.
func (o *optimizer) enumerateMask(acc *maskAcc) {
	mask := acc.mask
	for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
		rest := mask ^ sub
		p1s, p2s := o.memo[sub], o.memo[rest]
		if len(p1s) == 0 || len(p2s) == 0 {
			continue
		}
		preds, s := o.selectivityBetween(sub, rest)
		if len(preds) == 0 {
			continue // no Cartesian products
		}
		o.joinSplit(acc, sub, rest, preds, s)
	}
	// The any-k enumerator covers the whole subset in one operator, so it is
	// generated per mask rather than per split.
	o.anyKCandidates(acc)
}

// joinSplit generates all join candidates for one ordered (sub, rest) split.
func (o *optimizer) joinSplit(acc *maskAcc, sub, rest uint64, preds []logical.JoinPred, s float64) {
	p1s, p2s := o.memo[sub], o.memo[rest]
	rankedL := o.rankedOf(sub)
	rankedR := o.rankedOf(rest)
	bothRanked := len(rankedL) > 0 && len(rankedR) > 0

	// INLJ: inner must be a single base table with an index on the primary
	// join column; independent of inner subplans.
	var innerTI *tableInfo
	if popcount(rest) == 1 {
		innerTI = o.byName[o.namesOf(rest)[0]]
	}

	for _, p1 := range p1s {
		card := s * p1.Card
		// INLJ generated once per outer plan.
		if innerTI != nil {
			if idx := o.cat.IndexOn(innerTI.name, preds[0].R.Name); idx != nil {
				cand := &plan.Node{
					Op:        plan.OpINLJ,
					Children:  []*plan.Node{p1},
					Table:     innerTI.name,
					Index:     idx,
					EqPreds:   preds,
					Pred:      expr.And(innerTI.filters...),
					Card:      card * innerTI.card,
					Sel:       s * innerTI.filtSel,
					InnerCard: innerTI.rawCard,
					P:         o.params,
					Props: plan.Props{
						Order:     o.preserveOuter(p1.Props, rest),
						Pipelined: p1.Props.Pipelined,
					},
				}
				acc.add(cand)
			}
		}

		for _, p2 := range p2s {
			jcard := math.Max(card*p2.Card, 1e-9)

			// Nested loops (outer p1, inner p2 materialized).
			acc.add(&plan.Node{
				Op:       plan.OpNLJ,
				Children: []*plan.Node{p1, p2},
				EqPreds:  preds,
				Card:     jcard,
				Sel:      s,
				P:        o.params,
				Props: plan.Props{
					Order:     o.preserveOuter(p1.Props, rest),
					Pipelined: p1.Props.Pipelined,
				},
			})

			// Hash join (build p1, probe p2; probe order survives).
			acc.add(&plan.Node{
				Op:       plan.OpHashJoin,
				Children: []*plan.Node{p1, p2},
				EqPreds:  preds,
				Card:     jcard,
				Sel:      s,
				P:        o.params,
				Props: plan.Props{
					Order:     o.preserveOuter(p2.Props, sub),
					Pipelined: p2.Props.Pipelined,
				},
			})

			// Sort-merge join on the primary predicate, enforcing input
			// sorts when the children lack them.
			lOrd := plan.ColOrder(preds[0].L, false)
			rOrd := plan.ColOrder(preds[0].R, false)
			ml := p1
			if !p1.Props.Order.Covers(lOrd) {
				ml = o.sortWrap(p1, []exec.SortKey{{E: preds[0].L}}, lOrd)
			}
			mr := p2
			if !p2.Props.Order.Covers(rOrd) {
				mr = o.sortWrap(p2, []exec.SortKey{{E: preds[0].R}}, rOrd)
			}
			acc.add(&plan.Node{
				Op:       plan.OpMergeJoin,
				Children: []*plan.Node{ml, mr},
				EqPreds:  preds,
				Card:     jcard,
				Sel:      s,
				P:        o.params,
				Props: plan.Props{
					Order:     lOrd,
					Pipelined: ml.Props.Pipelined && mr.Props.Pipelined,
				},
			})

			// Rank joins.
			if o.rankAware() && bothRanked {
				o.rankJoinCandidates(acc, sub, rest, p1, p2, preds, s, jcard)
			}
		}
	}
}

// rankJoinCandidates emits HRJN and NRJN alternatives for a plan pair,
// enforcing ranked input orders by glued sorts when allowed.
func (o *optimizer) rankJoinCandidates(acc *maskAcc, sub, rest uint64, p1, p2 *plan.Node, preds []logical.JoinPred, s, jcard float64) {
	mask := acc.mask
	lOrder, _ := o.rankOrderFor(sub)
	rOrder, _ := o.rankOrderFor(rest)
	lScore := o.scoreFor(sub)
	rScore := o.scoreFor(rest)

	if tr := o.opts.Tracer; tr != nil {
		// An interesting ranking-order expression over each input side is
		// what licenses the rank-join alternatives for this entry (Format
		// dedups the per-pair repetition).
		tr.OnDecision(Decision{
			Kind:  DecisionOrderFired,
			Level: popcount(mask),
			Entry: o.label(mask),
			Plan:  o.scoreFor(mask).String(),
			Note:  fmt.Sprintf("inputs ordered by %s / %s fire rank-join alternatives", lOrder.Key(), rOrder.Key()),
		})
	}

	rankedInput := func(p *plan.Node, ord plan.OrderProp, score expr.ScoreSum) *plan.Node {
		if p.Props.Order.Covers(ord) {
			return p
		}
		if o.opts.DisableEnforcedRankInputs {
			return nil
		}
		return o.sortWrap(p, sortKeysByScore(score), ord)
	}

	outOrder, _ := o.rankOrderFor(mask)

	// HRJN needs both inputs ranked.
	if !o.opts.DisableHRJN {
		l := rankedInput(p1, lOrder, lScore)
		r := rankedInput(p2, rOrder, rScore)
		if l != nil && r != nil {
			n := o.rankJoinNode(plan.OpHRJN, l, r, sub, rest, preds, s, jcard)
			n.Props = plan.Props{
				Order:     outOrder,
				Pipelined: l.Props.Pipelined && r.Props.Pipelined,
			}
			acc.add(n)
		}
	}

	// NRJN needs only the outer ranked; the inner is materialized. Only
	// generate the natural-outer variant plus the enforced one.
	if !o.opts.DisableNRJN {
		l := rankedInput(p1, lOrder, lScore)
		if l != nil {
			n := o.rankJoinNode(plan.OpNRJN, l, p2, sub, rest, preds, s, jcard)
			n.Props = plan.Props{
				Order:     outOrder,
				Pipelined: l.Props.Pipelined,
			}
			acc.add(n)
		}
	}
}

// rankJoinNode builds a rank-join node over the plans covering masks sub and
// rest. It is shared by the DP enumeration and the greedy planner so the
// node shape — and the empirical depth-hint attachment of the feedback loop —
// live in exactly one place.
func (o *optimizer) rankJoinNode(op plan.OpType, l, r *plan.Node, sub, rest uint64, preds []logical.JoinPred, s, jcard float64) *plan.Node {
	mask := sub | rest
	rankedL := o.rankedOf(sub)
	rankedR := o.rankedOf(rest)
	n := &plan.Node{
		Op:       op,
		Children: []*plan.Node{l, r},
		EqPreds:  preds,
		LScore:   o.scoreFor(sub),
		RScore:   o.scoreFor(rest),
		Strategy: o.opts.Strategy,
		Card:     jcard,
		Sel:      s,
		LLeaves:  len(rankedL),
		RLeaves:  len(rankedR),
		BaseN:    o.geoMeanRankedCard(mask),
		P:        o.params,
	}
	if len(rankedL) == 1 {
		n.LSlab = rankedL[0].termSlab
	}
	if len(rankedR) == 1 {
		n.RSlab = rankedR[0].termSlab
	}
	if len(o.opts.DepthHints) > 0 {
		if ob, ok := o.opts.DepthHints[plan.DepthHintKey(n)]; ok {
			hint := ob
			n.DepthHint = &hint
		}
	}
	return n
}

// preserveOuter propagates an input's order property through an
// order-preserving join: column orders on the streamed side survive; a rank
// order survives only if the other side contributes no score terms.
func (o *optimizer) preserveOuter(p plan.Props, otherMask uint64) plan.OrderProp {
	switch p.Order.Kind {
	case plan.OrderCol:
		return p.Order
	case plan.OrderRank:
		if len(o.rankedOf(otherMask)) == 0 {
			return p.Order
		}
	}
	return plan.NoOrder
}

package core

// This file is the optimizer's decision-trace hook: an optional Tracer on
// Options observes every pruning decision the Section 3.3 rules take —
// candidates considered per MEMO entry, plans pruned or evicted and *why*
// (property+cost domination, with the crossover k* when a rank-join plan
// was compared against a blocking plan), pipelined plans that survived a
// cost domination only through the First-N-Rows protection, interesting
// order expressions that fired rank-join alternatives, and the final
// cost-at-k comparison. DecisionTrace is the stock collector; FormatTrace
// renders it as the EXPLAIN TRACE text tree.

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"rankopt/internal/plan"
)

// DecisionKind classifies one optimizer decision event.
type DecisionKind uint8

// Decision kinds.
const (
	// DecisionCandidate marks one candidate plan entering a MEMO entry
	// (recorded without a plan summary: it exists to count, not to render).
	DecisionCandidate DecisionKind = iota
	// DecisionPruned marks a candidate rejected because an existing plan
	// dominates it on properties and cost.
	DecisionPruned
	// DecisionEvicted marks an existing plan removed because the incoming
	// candidate dominates it.
	DecisionEvicted
	// DecisionProtected marks a pipelined plan that a cheaper blocking plan
	// would have dominated on cost, kept alive by the First-N-Rows property.
	DecisionProtected
	// DecisionOrderFired marks a rank-join alternative generated because its
	// inputs carry (or can enforce) an interesting ranking-order expression.
	DecisionOrderFired
	// DecisionInterestingOrder is one row of the paper's Table 1 for the
	// query (recorded once per expression when tracing is on).
	DecisionInterestingOrder
	// DecisionKept is one plan retained in a MEMO entry after the full
	// enumeration (recorded once per surviving plan, in deterministic order).
	DecisionKept
	// DecisionFinalCost is one final-assembly comparison: a completed
	// full-query plan with its cost at the query's k, the chosen rival, and
	// the crossover k* when the pair is a rank/sort pairing.
	DecisionFinalCost
)

var decisionNames = map[DecisionKind]string{
	DecisionCandidate:        "candidate",
	DecisionPruned:           "pruned",
	DecisionEvicted:          "evicted",
	DecisionProtected:        "protected",
	DecisionOrderFired:       "order-fired",
	DecisionInterestingOrder: "interesting-order",
	DecisionKept:             "kept",
	DecisionFinalCost:        "final",
}

// String returns the kind's display name.
func (k DecisionKind) String() string { return decisionNames[k] }

// Decision is one optimizer decision event.
type Decision struct {
	Kind DecisionKind
	// Level is the DP size level (popcount of the MEMO entry's table mask);
	// 0 marks final-assembly events.
	Level int
	// Entry is the MEMO entry label (e.g. "T1,T2"); "final" for assembly.
	Entry string
	// Plan is the one-line summary of the plan the decision is about.
	Plan string
	// Rival is the plan on the other side of a domination or comparison.
	Rival string
	// CrossoverK is Section 3.3's k*: the k at which the k-sensitive plan's
	// cost overtakes the blocking plan's. 0 means not a rank/sort pairing;
	// na+1 means the rank plan is cheaper over the whole achievable range.
	CrossoverK float64
	// Note carries the human-readable reason ("dominated on rank:T1,T2
	// pipelined; cost 12.3<=45.6 at k=10", "cheaper blocking rival ...").
	Note string
}

// Tracer observes optimizer decisions. Implementations must tolerate calls
// from multiple goroutines: with Options.Workers > 1 the DP levels prune in
// parallel (events within one MEMO entry still arrive in order, because one
// worker owns each entry).
type Tracer interface {
	OnDecision(Decision)
}

// DecisionTrace is the stock Tracer: a mutex-guarded event log with
// per-entry candidate counts, renderable with Format.
type DecisionTrace struct {
	mu        sync.Mutex
	decisions []Decision
	// candidates counts DecisionCandidate events per MEMO entry label.
	candidates map[string]int
}

// NewDecisionTrace returns an empty collector.
func NewDecisionTrace() *DecisionTrace {
	return &DecisionTrace{candidates: map[string]int{}}
}

// OnDecision implements Tracer.
func (dt *DecisionTrace) OnDecision(d Decision) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	if d.Kind == DecisionCandidate {
		dt.candidates[d.Entry]++
		return
	}
	dt.decisions = append(dt.decisions, d)
}

// Decisions returns a copy of the recorded events (candidate counts live in
// Candidates, not here).
func (dt *DecisionTrace) Decisions() []Decision {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return append([]Decision(nil), dt.decisions...)
}

// Candidates returns the number of candidate plans the entry saw.
func (dt *DecisionTrace) Candidates(entry string) int {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return dt.candidates[entry]
}

// TotalCandidates returns the number of candidate plans recorded across all
// MEMO entries (the decision-trace view of Result.PlansGenerated).
func (dt *DecisionTrace) TotalCandidates() int {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	n := 0
	for _, c := range dt.candidates {
		n += c
	}
	return n
}

// CountKind returns how many events of the kind were recorded.
func (dt *DecisionTrace) CountKind(k DecisionKind) int {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	n := 0
	for _, d := range dt.decisions {
		if d.Kind == k {
			n++
		}
	}
	return n
}

// Format renders the decision trace as the EXPLAIN TRACE text tree:
// interesting orders first, then every MEMO entry grouped by DP level with
// its candidate count and pruning events, then the final cost comparison.
// The rendering is deterministic — entries sort by (level, label) and
// within-entry order follows the enumeration, which is deterministic when
// the optimizer ran sequentially (the engine forces Workers=1 for traced
// sessions).
func (dt *DecisionTrace) Format() string {
	dt.mu.Lock()
	decisions := append([]Decision(nil), dt.decisions...)
	candidates := make(map[string]int, len(dt.candidates))
	for k, v := range dt.candidates {
		candidates[k] = v
	}
	dt.mu.Unlock()

	var b strings.Builder
	b.WriteString("optimizer decision trace\n")

	// Table 1: interesting order expressions.
	var orders []Decision
	byEntry := map[string][]Decision{}
	var finals []Decision
	seenOrderFired := map[string]bool{}
	for _, d := range decisions {
		switch d.Kind {
		case DecisionInterestingOrder:
			orders = append(orders, d)
		case DecisionFinalCost:
			finals = append(finals, d)
		case DecisionOrderFired:
			// The generator fires once per candidate pair; the trace needs
			// each (entry, expression) pairing once.
			key := d.Entry + "|" + d.Note
			if seenOrderFired[key] {
				continue
			}
			seenOrderFired[key] = true
			byEntry[d.Entry] = append(byEntry[d.Entry], d)
		default:
			byEntry[d.Entry] = append(byEntry[d.Entry], d)
		}
	}
	if len(orders) > 0 {
		b.WriteString("interesting orders:\n")
		for _, d := range orders {
			fmt.Fprintf(&b, "  %s  [%s]\n", d.Plan, d.Note)
		}
	}

	// MEMO entries grouped by DP level.
	type entryKey struct {
		level int
		label string
	}
	var keys []entryKey
	seen := map[string]bool{}
	addKey := func(level int, label string) {
		if label == "" || seen[label] {
			return
		}
		seen[label] = true
		keys = append(keys, entryKey{level, label})
	}
	for label := range candidates {
		addKey(levelOf(label), label)
	}
	for label, ds := range byEntry {
		lv := levelOf(label)
		for _, d := range ds {
			if d.Level > 0 {
				lv = d.Level
				break
			}
		}
		addKey(lv, label)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].level != keys[j].level {
			return keys[i].level < keys[j].level
		}
		return keys[i].label < keys[j].label
	})
	lastLevel := -1
	for _, k := range keys {
		if k.level != lastLevel {
			fmt.Fprintf(&b, "level %d:\n", k.level)
			lastLevel = k.level
		}
		ds := byEntry[k.label]
		var pruned, evicted, protected, kept int
		for _, d := range ds {
			switch d.Kind {
			case DecisionPruned:
				pruned++
			case DecisionEvicted:
				evicted++
			case DecisionProtected:
				protected++
			case DecisionKept:
				kept++
			}
		}
		fmt.Fprintf(&b, "  entry %s: candidates=%d pruned=%d evicted=%d protected=%d kept=%d\n",
			k.label, candidates[k.label], pruned, evicted, protected, kept)
		for _, d := range ds {
			writeDecision(&b, "    ", d)
		}
	}

	if len(finals) > 0 {
		b.WriteString("final:\n")
		for _, d := range finals {
			writeDecision(&b, "  ", d)
		}
	}
	return b.String()
}

// writeDecision renders one event line.
func writeDecision(b *strings.Builder, indent string, d Decision) {
	fmt.Fprintf(b, "%s%s: %s", indent, d.Kind, d.Plan)
	if d.Rival != "" {
		verb := "vs"
		switch d.Kind {
		case DecisionPruned:
			verb = "by"
		case DecisionEvicted:
			verb = "by"
		}
		fmt.Fprintf(b, "  %s %s", verb, d.Rival)
	}
	if d.Note != "" {
		fmt.Fprintf(b, "  [%s]", d.Note)
	}
	if d.CrossoverK > 0 {
		fmt.Fprintf(b, "  k*=%.1f", d.CrossoverK)
	}
	b.WriteByte('\n')
}

// levelOf derives a MEMO entry's DP level from its label (tables are
// comma-separated).
func levelOf(label string) int {
	if label == "" || label == "final" {
		return 0
	}
	return strings.Count(label, ",") + 1
}

// crossoverFor computes Section 3.3's k* for a pruning comparison when the
// pair is a rank/sort pairing: exactly one of the plans is rooted in a
// rank-join (k-sensitive cost) and the other is blocking (k-constant cost).
// Any other pairing returns 0 ("no crossover applies").
func crossoverFor(a, b *plan.Node) float64 {
	ar, br := a.Op.IsRankJoin(), b.Op.IsRankJoin()
	switch {
	case ar && !br && !b.Props.Pipelined:
		return CrossoverK(b, a)
	case br && !ar && !a.Props.Pipelined:
		return CrossoverK(a, b)
	}
	return 0
}

package core

import (
	"fmt"
	"math"

	"rankopt/internal/exec"
	"rankopt/internal/expr"
	"rankopt/internal/plan"
	"rankopt/internal/relation"
)

// finish selects the final plan from the given full-expression alternatives
// (the full-mask memo entry for the DP, a single plan for the greedy path):
// every plan is completed (gluing a sort enforcer when it lacks the required
// output order), costs are compared at the query's k, and the winner is
// wrapped with rank annotation, limit, and projection as the query demands.
// With Options.CollectAllPlans set, every completed-and-assembled alternative
// is returned in all — the differential-testing oracle executes each one and
// asserts identical results.
func (o *optimizer) finish(plans []*plan.Node) (best, bestJoin *plan.Node, all []*plan.Node, err error) {
	if len(plans) == 0 {
		return nil, nil, nil, fmt.Errorf("core: no plan found for %s", o.label(o.fullMask()))
	}

	var required plan.OrderProp
	var finalKeys []exec.SortKey
	switch {
	case o.q.Ranking():
		required, _ = o.rankOrderFor(o.fullMask())
		finalKeys = sortKeysByScore(o.q.Score)
	case o.q.OrderBy.Name != "":
		required = plan.ColOrder(o.q.OrderBy, o.q.OrderDesc)
		finalKeys = []exec.SortKey{{E: o.q.OrderBy, Desc: o.q.OrderDesc}}
	default:
		required = plan.NoOrder
	}

	// A top-k-selection query (all tables ranked, joined on one unique-key
	// class) admits a Fagin TA plan as a further alternative: rank
	// aggregation instead of joining.
	if ta := o.topKSelectionPlan(); ta != nil {
		plans = append(append([]*plan.Node(nil), plans...), ta)
	}

	bestCost := math.Inf(1)
	var finishedAll []*plan.Node
	type finishedPlan struct {
		p    *plan.Node
		cost float64
		k    float64
	}
	var completed []finishedPlan
	for _, p := range plans {
		finished := p
		if !p.Props.Order.Covers(required) {
			if o.opts.UseTopKSort && o.q.Ranking() && o.q.K > 0 {
				finished = &plan.Node{
					Op:       plan.OpTopK,
					Children: []*plan.Node{p},
					Score:    o.q.Score,
					K:        o.q.K,
					Card:     math.Min(float64(o.q.K), p.Card),
					P:        o.params,
					Props:    plan.Props{Order: required},
				}
			} else {
				finished = o.sortWrap(p, finalKeys, required)
			}
		}
		if o.opts.CollectAllPlans {
			finishedAll = append(finishedAll, finished)
		}
		kEval := finished.Card
		if o.q.K > 0 {
			kEval = float64(o.q.K)
		}
		c := finished.Cost(kEval)
		completed = append(completed, finishedPlan{p: finished, cost: c, k: kEval})
		if c < bestCost {
			bestCost = c
			bestJoin = finished
		}
	}
	if tr := o.opts.Tracer; tr != nil {
		// The final assembly is where rank-join plans (k-sensitive cost) meet
		// blocking sort plans (k-constant cost) head on: report every
		// completed alternative's cost at the query's k, naming the winner as
		// the rival and attaching the crossover k* for rank/sort pairings.
		for _, fp := range completed {
			d := Decision{
				Kind:  DecisionFinalCost,
				Entry: "final",
				Plan:  plan.Summary(fp.p),
				Note:  fmt.Sprintf("cost %.1f at k=%.0f", fp.cost, fp.k),
			}
			if fp.p == bestJoin {
				d.Note += " (chosen)"
			} else {
				d.Rival = plan.Summary(bestJoin)
				d.CrossoverK = crossoverFor(fp.p, bestJoin)
			}
			tr.OnDecision(d)
		}
	}

	cur := bestJoin
	if o.q.Grouped() {
		agg, err := o.bestAggregation(plans)
		if err != nil {
			return nil, nil, nil, err
		}
		cur, bestJoin = agg, agg
		// Grouped queries collapse alternatives inside bestAggregation; the
		// oracle set is just the chosen plan.
		finishedAll = nil
	}
	best = o.assembleFinal(cur)
	if o.opts.CollectAllPlans {
		if len(finishedAll) == 0 {
			all = []*plan.Node{best}
		} else {
			all = make([]*plan.Node, len(finishedAll))
			for i, f := range finishedAll {
				all[i] = o.assembleFinal(f)
			}
		}
	}
	return best, bestJoin, all, nil
}

// assembleFinal wraps a completed (ordered) plan with the rank annotation,
// limit, and projection the query demands — the tail every alternative
// shares, so oracle plans differ only below it.
func (o *optimizer) assembleFinal(cur *plan.Node) *plan.Node {
	if o.q.Ranking() {
		cur = &plan.Node{
			Op:       plan.OpRank,
			Children: []*plan.Node{cur},
			Score:    o.q.Score,
			Card:     cur.Card,
			P:        o.params,
			Props:    cur.Props,
		}
	}
	if o.q.K > 0 {
		cur = &plan.Node{
			Op:       plan.OpLimit,
			Children: []*plan.Node{cur},
			K:        o.q.K,
			Card:     math.Min(float64(o.q.K), cur.Card),
			P:        o.params,
			Props:    cur.Props,
		}
	}
	if len(o.q.Select) > 0 {
		items := make([]exec.ProjectItem, len(o.q.Select))
		for i, sel := range o.q.Select {
			items[i] = exec.ProjectItem{E: sel.E, As: sel.As, Kind: o.inferKind(sel.E)}
		}
		cur = &plan.Node{
			Op:       plan.OpProject,
			Children: []*plan.Node{cur},
			Items:    items,
			Card:     cur.Card,
			P:        o.params,
			Props:    cur.Props,
		}
	}
	return cur
}

// topKSelectionPlan recognizes the paper's "top-k selection" query class —
// every table contributes a score term and all join predicates form a single
// equivalence class over columns that are unique keys in their tables (the
// inputs rank the same object set) — and builds a Fagin-TA plan for it:
// sorted access via the descending score indexes, random access via the id
// indexes. Returns nil when the query does not qualify or lacks the access
// paths.
func (o *optimizer) topKSelectionPlan() *plan.Node {
	if o.opts.DisableRankAggregate || !o.rankAware() || o.q.K <= 0 {
		return nil
	}
	if len(o.q.Tables) < 2 || len(o.q.Filters) > 0 || len(o.q.Joins) == 0 {
		return nil
	}
	// One equivalence class across all predicates.
	cls := o.equiv.classOf(o.q.Joins[0].L)
	if cls == "" {
		return nil
	}
	inputs := make([]exec.TAInput, 0, len(o.tables))
	for _, ti := range o.tables {
		if ti.term == nil || !ti.termIsCol {
			return nil
		}
		// Find this table's join column; it must be unique and in cls.
		var idCol string
		for _, j := range o.joins {
			for _, c := range []expr.ColRef{j.L, j.R} {
				if c.Table == ti.name {
					if o.equiv.classOf(c) != cls {
						return nil // more than one join class
					}
					if idCol != "" && idCol != c.Name {
						return nil
					}
					idCol = c.Name
				}
			}
		}
		if idCol == "" {
			return nil
		}
		cs := o.cat.ColStats(ti.name, idCol)
		tab, err := o.cat.Table(ti.name)
		if err != nil || cs.Distinct != tab.Stats.Card {
			return nil // not a unique key: objects repeat, TA semantics break
		}
		scoreIdx := o.cat.IndexOn(ti.name, ti.termCol.Name)
		idIdx := o.cat.IndexOn(ti.name, idCol)
		if scoreIdx == nil || idIdx == nil {
			return nil
		}
		scorePos, err := tab.Rel.Schema().Resolve(ti.name, ti.termCol.Name)
		if err != nil {
			return nil
		}
		idPos, err := tab.Rel.Schema().Resolve(ti.name, idCol)
		if err != nil {
			return nil
		}
		inputs = append(inputs, exec.TAInput{
			Rel:      tab.Rel,
			ScoreIdx: scoreIdx,
			IDIdx:    idIdx,
			ScorePos: scorePos,
			IDPos:    idPos,
			Weight:   ti.term.Weight,
		})
	}
	order, _ := o.rankOrderFor(o.fullMask())
	card := math.Min(float64(o.q.K), o.geoMeanRankedCard(o.fullMask()))
	return &plan.Node{
		Op:       plan.OpRankAgg,
		TAInputs: inputs,
		K:        o.q.K,
		Card:     card,
		BaseN:    o.geoMeanRankedCard(o.fullMask()),
		P:        o.params,
		Props:    plan.Props{Order: order},
	}
}

// bestAggregation completes a grouped query: every retained join plan can
// feed either a (blocking) hash aggregate or a streaming sorted aggregate —
// naturally when the plan already delivers the group order, otherwise
// through a glued sort. The group-by columns were registered as interesting
// orders, so index-ordered plans survive enumeration for exactly this step.
func (o *optimizer) bestAggregation(plans []*plan.Node) (*plan.Node, error) {
	aggs := make([]exec.AggSpec, len(o.q.Aggs))
	for i, a := range o.q.Aggs {
		fn, ok := exec.ParseAggFunc(a.Func)
		if !ok {
			return nil, fmt.Errorf("core: unknown aggregate %q", a.Func)
		}
		aggs[i] = exec.AggSpec{Func: fn, Arg: a.Arg, As: a.As}
	}
	groups := o.groupCard()
	kEval := groups
	if o.q.K > 0 {
		kEval = math.Min(float64(o.q.K), groups)
	}

	var best *plan.Node
	bestCost := math.Inf(1)
	consider := func(n *plan.Node) {
		if c := n.Cost(kEval); c < bestCost {
			bestCost = c
			best = n
		}
	}
	groupOrder := plan.ColOrder(o.q.GroupBy[0], false)
	sortKeys := make([]exec.SortKey, len(o.q.GroupBy))
	for i, g := range o.q.GroupBy {
		sortKeys[i] = exec.SortKey{E: g}
	}
	for _, p := range plans {
		consider(&plan.Node{
			Op:       plan.OpHashAgg,
			Children: []*plan.Node{p},
			GroupBy:  o.q.GroupBy,
			Aggs:     aggs,
			Card:     groups,
			P:        o.params,
			Props:    plan.Props{Order: plan.NoOrder},
		})
		in := p
		// A single group column ordered ascending streams directly; multi
		// column grouping (or unordered plans) takes a sort enforcer.
		if len(o.q.GroupBy) > 1 || !p.Props.Order.Covers(groupOrder) {
			in = o.sortWrap(p, sortKeys, groupOrder)
		}
		consider(&plan.Node{
			Op:       plan.OpSortAgg,
			Children: []*plan.Node{in},
			GroupBy:  o.q.GroupBy,
			Aggs:     aggs,
			Card:     groups,
			P:        o.params,
			Props:    plan.Props{Order: groupOrder, Pipelined: in.Props.Pipelined},
		})
	}
	if best == nil {
		return nil, fmt.Errorf("core: no aggregation plan")
	}
	return best, nil
}

// groupCard estimates the number of groups: the product of the group
// columns' distinct counts, capped by the join output cardinality.
func (o *optimizer) groupCard() float64 {
	d := 1.0
	for _, g := range o.q.GroupBy {
		if cs := o.cat.ColStats(g.Table, g.Name); cs.Distinct > 0 {
			d *= float64(cs.Distinct)
		} else {
			d *= 100
		}
	}
	if plans := o.memo[o.fullMask()]; len(plans) > 0 && plans[0].Card < d {
		return math.Max(plans[0].Card, 1)
	}
	return d
}

// inferKind guesses the output kind of a projection expression for schema
// display: literals know their kind; catalog columns are looked up; the
// rank() counter is integral; everything else (arithmetic, scores) is a
// double.
func (o *optimizer) inferKind(e expr.Expr) relation.Kind {
	switch v := e.(type) {
	case expr.Const:
		return v.V.Kind()
	case expr.ColRef:
		if v.Name == "rank" {
			return relation.KindInt
		}
		if ti, ok := o.byName[v.Table]; ok {
			tab, err := o.cat.Table(ti.name)
			if err == nil {
				if i, err := tab.Rel.Schema().Resolve(v.Table, v.Name); err == nil {
					return tab.Rel.Schema().Column(i).Kind
				}
			}
		}
		return relation.KindFloat
	default:
		return relation.KindFloat
	}
}

package core

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rankopt/internal/plan"
	"rankopt/internal/sqlparse"
	"rankopt/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// tracedOptimize runs one traced optimization over the seeded ranked
// workload and returns the result with its decision trace.
func tracedOptimize(t *testing.T, m int, sql string) (*Result, *DecisionTrace) {
	t.Helper()
	cat, _ := workload.RankedSet(m, workload.RankedConfig{N: 1000, Selectivity: 0.02, Seed: 21})
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	dt := NewDecisionTrace()
	res, err := Optimize(cat, q, Options{Tracer: dt})
	if err != nil {
		t.Fatal(err)
	}
	return res, dt
}

const threeWaySQL = "SELECT * FROM T1, T2, T3 WHERE T1.key = T2.key AND T2.key = T3.key " +
	"ORDER BY T1.score + T2.score + T3.score DESC LIMIT 10"

// TestDecisionTraceAcceptance pins the issue's acceptance shape on a 3-way
// rank-join query: the trace must show at least one plan pruned with its
// crossover k* and at least one plan protected by the First-N-Rows property,
// and the event counts must reconcile with the Result counters.
func TestDecisionTraceAcceptance(t *testing.T) {
	res, dt := tracedOptimize(t, 3, threeWaySQL)

	if got := dt.TotalCandidates(); got != res.PlansGenerated {
		t.Errorf("candidate events = %d, Result.PlansGenerated = %d", got, res.PlansGenerated)
	}
	pruned := dt.CountKind(DecisionPruned) + dt.CountKind(DecisionEvicted)
	if pruned != res.PlansPruned {
		t.Errorf("pruned+evicted events = %d, Result.PlansPruned = %d", pruned, res.PlansPruned)
	}
	if prot := dt.CountKind(DecisionProtected); prot != res.PlansProtected {
		t.Errorf("protected events = %d, Result.PlansProtected = %d", prot, res.PlansProtected)
	}
	if res.PlansProtected < 1 {
		t.Error("3-way rank-join trace shows no First-N-Rows-protected plan")
	}

	var prunedWithK, orderFired int
	for _, d := range dt.Decisions() {
		switch d.Kind {
		case DecisionPruned, DecisionEvicted, DecisionFinalCost:
			if d.CrossoverK > 0 {
				prunedWithK++
			}
		case DecisionOrderFired:
			orderFired++
		}
	}
	if prunedWithK < 1 {
		t.Error("trace shows no pruning comparison with a crossover k*")
	}
	if orderFired < 1 {
		t.Error("trace shows no interesting-order expression firing rank-join alternatives")
	}

	// The rendered tree must surface all of the above to the user.
	out := dt.Format()
	for _, want := range []string{
		"interesting orders:",
		"level 1:",
		"level 3:",
		"pruned:",
		"protected:",
		"(First-N-Rows)",
		"k*=",
		"final:",
		"(chosen)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted trace missing %q", want)
		}
	}
}

// TestTracerChangesNothing: attaching a tracer must not alter the chosen
// plan or the enumeration counters — observation only.
func TestTracerChangesNothing(t *testing.T) {
	cat, _ := workload.RankedSet(3, workload.RankedConfig{N: 1000, Selectivity: 0.02, Seed: 21})
	q, err := sqlparse.Parse(threeWaySQL)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Optimize(cat, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Optimize(cat, q, Options{Tracer: NewDecisionTrace()})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Explain(plain.Best) != plan.Explain(traced.Best) {
		t.Errorf("tracer changed the chosen plan:\n%s\nvs\n%s",
			plan.Explain(plain.Best), plan.Explain(traced.Best))
	}
	if plain.PlansGenerated != traced.PlansGenerated || plain.PlansKept != traced.PlansKept ||
		plain.PlansPruned != traced.PlansPruned || plain.PlansProtected != traced.PlansProtected {
		t.Errorf("tracer changed counters: %+v vs gen=%d kept=%d pruned=%d prot=%d",
			plain, traced.PlansGenerated, traced.PlansKept, traced.PlansPruned, traced.PlansProtected)
	}
	if plain.PlansPruned == 0 {
		t.Error("untraced run reports no pruning — counters not wired")
	}
}

// TestDecisionTraceDeterministic: two traced runs of the same query must
// render byte-identical traces (the EXPLAIN TRACE golden depends on it).
func TestDecisionTraceDeterministic(t *testing.T) {
	_, dt1 := tracedOptimize(t, 2, "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 10")
	_, dt2 := tracedOptimize(t, 2, "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 10")
	if dt1.Format() != dt2.Format() {
		t.Error("identical traced runs rendered different traces")
	}
}

// TestDecisionTraceGolden pins the full EXPLAIN TRACE rendering for a 2-way
// rank-join query against testdata/decision_trace_2way.golden. Regenerate
// with `go test ./internal/core -run Golden -update` when the optimizer,
// cost model, or trace format deliberately changes.
func TestDecisionTraceGolden(t *testing.T) {
	_, dt := tracedOptimize(t, 2, "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 10")
	got := dt.Format()
	path := filepath.Join("testdata", "decision_trace_2way.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("decision trace diverged from golden (rerun with -update if intentional).\ngot %d bytes, want %d bytes", len(got), len(want))
		// Show the first diverging line to keep failures readable.
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Errorf("first divergence at line %d:\ngot:  %s\nwant: %s", i+1, gl[i], wl[i])
				break
			}
		}
	}
}

// TestKeepAllPlansSkipsPruneEvents: with pruning disabled the trace must
// record candidates but no pruning decisions.
func TestKeepAllPlansSkipsPruneEvents(t *testing.T) {
	cat, _ := workload.RankedSet(2, workload.RankedConfig{N: 500, Selectivity: 0.05, Seed: 5})
	q, err := sqlparse.Parse("SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	dt := NewDecisionTrace()
	res, err := Optimize(cat, q, Options{KeepAllPlans: true, Tracer: dt})
	if err != nil {
		t.Fatal(err)
	}
	if n := dt.CountKind(DecisionPruned) + dt.CountKind(DecisionEvicted) + dt.CountKind(DecisionProtected); n != 0 {
		t.Errorf("KeepAllPlans recorded %d pruning events, want 0", n)
	}
	if res.PlansPruned != 0 || res.PlansProtected != 0 {
		t.Errorf("KeepAllPlans counters: pruned=%d protected=%d, want 0/0", res.PlansPruned, res.PlansProtected)
	}
	if dt.TotalCandidates() != res.PlansGenerated {
		t.Errorf("candidates %d != generated %d", dt.TotalCandidates(), res.PlansGenerated)
	}
}

package core

import (
	"sort"

	"rankopt/internal/expr"
	"rankopt/internal/logical"
)

// equivClasses is a union-find over join columns. Predicates A.x = B.y and
// B.y = C.z place A.x, B.y, C.z in one class, implying A.x = C.z: the
// transitive closure enlarges the join space (a chain query can join its
// endpoints first) and lets selectivity estimation count each equivalence
// class once instead of multiplying redundant predicates.
type equivClasses struct {
	parent map[string]string
	col    map[string]expr.ColRef
}

func newEquivClasses(joins []logical.JoinPred) *equivClasses {
	e := &equivClasses{parent: map[string]string{}, col: map[string]expr.ColRef{}}
	for _, j := range joins {
		e.union(j.L, j.R)
	}
	return e
}

func (e *equivClasses) key(c expr.ColRef) string { return c.String() }

// find walks to the class root without path compression: lookups stay pure
// reads, so concurrent plan-enumeration workers can share the structure.
func (e *equivClasses) find(k string) string {
	for {
		p, ok := e.parent[k]
		if !ok || p == k {
			return k
		}
		k = p
	}
}

func (e *equivClasses) union(a, b expr.ColRef) {
	ka, kb := e.key(a), e.key(b)
	e.col[ka], e.col[kb] = a, b
	if _, ok := e.parent[ka]; !ok {
		e.parent[ka] = ka
	}
	if _, ok := e.parent[kb]; !ok {
		e.parent[kb] = kb
	}
	ra, rb := e.find(ka), e.find(kb)
	if ra != rb {
		e.parent[rb] = ra
	}
	_ = e.col
}

// classOf returns the class representative of a column, or "" if the column
// participates in no join predicate.
func (e *equivClasses) classOf(c expr.ColRef) string {
	k := e.key(c)
	if _, ok := e.parent[k]; !ok {
		return ""
	}
	return e.find(k)
}

// sameClass reports whether two columns are join-equivalent.
func (e *equivClasses) sameClass(a, b expr.ColRef) bool {
	ca, cb := e.classOf(a), e.classOf(b)
	return ca != "" && ca == cb
}

// closure returns the original predicates plus every implied cross-table
// equality, deduplicated by unordered column pair.
func (e *equivClasses) closure(joins []logical.JoinPred) []logical.JoinPred {
	seen := map[string]bool{}
	keyOf := func(a, b expr.ColRef) string {
		ka, kb := a.String(), b.String()
		if ka > kb {
			ka, kb = kb, ka
		}
		return ka + "=" + kb
	}
	out := make([]logical.JoinPred, 0, len(joins))
	for _, j := range joins {
		k := keyOf(j.L, j.R)
		if !seen[k] {
			seen[k] = true
			out = append(out, j)
		}
	}
	// Group columns by class, walking keys in sorted order so the implied
	// predicates (and therefore the representative each class keeps in
	// reduceByClass) come out identical on every run — map iteration order
	// must never leak into plan choice.
	keys := make([]string, 0, len(e.parent))
	for k := range e.parent {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	byClass := map[string][]expr.ColRef{}
	var roots []string
	for _, k := range keys {
		root := e.find(k)
		if _, ok := byClass[root]; !ok {
			roots = append(roots, root)
		}
		byClass[root] = append(byClass[root], e.col[k])
	}
	for _, root := range roots {
		cols := byClass[root]
		for i := 0; i < len(cols); i++ {
			for j := i + 1; j < len(cols); j++ {
				if cols[i].Table == cols[j].Table {
					continue
				}
				k := keyOf(cols[i], cols[j])
				if !seen[k] {
					seen[k] = true
					out = append(out, logical.JoinPred{L: cols[i], R: cols[j]})
				}
			}
		}
	}
	return out
}

// reduceByClass keeps one predicate per equivalence class (the rest are
// implied once that one holds), so join selectivity multiplies independent
// classes only and executed plans carry no redundant comparisons.
func (e *equivClasses) reduceByClass(preds []logical.JoinPred) []logical.JoinPred {
	seen := map[string]bool{}
	var out []logical.JoinPred
	for _, p := range preds {
		cls := e.classOf(p.L)
		if cls == "" {
			out = append(out, p)
			continue
		}
		if !seen[cls] {
			seen[cls] = true
			out = append(out, p)
		}
	}
	return out
}

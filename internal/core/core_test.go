package core

import (
	"math"
	"strings"
	"testing"

	"rankopt/internal/catalog"
	"rankopt/internal/exec"
	"rankopt/internal/expr"
	"rankopt/internal/logical"
	"rankopt/internal/plan"
	"rankopt/internal/workload"
)

// rankedQuery builds a chain-join top-k query over m generated tables:
// T1.key = T2.key = ... with score = sum of per-table scores.
func rankedQuery(m int, k int) *logical.Query {
	q := &logical.Query{K: k}
	for i := 1; i <= m; i++ {
		name := tname(i)
		q.Tables = append(q.Tables, name)
		q.Score.Terms = append(q.Score.Terms, expr.ScoreTerm{Weight: 1, E: expr.Col(name, "score")})
		if i > 1 {
			q.Joins = append(q.Joins, logical.JoinPred{
				L: expr.Col(tname(i-1), "key"), R: expr.Col(name, "key"),
			})
		}
	}
	return q
}

func tname(i int) string {
	return "T" + string(rune('0'+i))
}

// referenceTopK computes the expected descending combined-score sequence by
// running a hash-join + sort reference plan.
func referenceTopK(t *testing.T, cat *catalog.Catalog, q *logical.Query, k int) []float64 {
	t.Helper()
	var cur exec.Operator
	for i, name := range q.Tables {
		tab, err := cat.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		scan := exec.NewSeqScan(tab.Rel)
		if i == 0 {
			cur = scan
			continue
		}
		j := q.Joins[i-1]
		cur = exec.NewHashJoin(cur, scan, j.L, j.R, nil)
	}
	sorted := exec.NewSortByScore(cur, q.Score)
	tuples, err := exec.CollectK(sorted, k)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := q.Score.Bind(sorted.Schema())
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(tuples))
	for i, tup := range tuples {
		v, err := ev(tup)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = v.AsFloat()
	}
	return out
}

// runBest compiles and executes the optimizer's best plan, returning the
// combined score column (the Rank operator's second-to-last output column).
func runBest(t *testing.T, cat *catalog.Catalog, res *Result) []float64 {
	t.Helper()
	op, err := plan.Compile(cat, res.Best)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, plan.Explain(res.Best))
	}
	tuples, err := exec.Collect(op)
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, plan.Explain(res.Best))
	}
	out := make([]float64, len(tuples))
	for i, tup := range tuples {
		out[i] = tup[len(tup)-2].AsFloat()
	}
	return out
}

func TestOptimizeTwoTableTopK(t *testing.T) {
	cat, _ := workload.RankedSet(2, workload.RankedConfig{N: 1500, Selectivity: 0.02, Seed: 201})
	q := rankedQuery(2, 10)
	res, err := Optimize(cat, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := runBest(t, cat, res)
	want := referenceTopK(t, cat, q, 10)
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("rank %d: %v, want %v\n%s", i, got[i], want[i], plan.Explain(res.Best))
		}
	}
}

func TestOptimizeThreeTableTopK(t *testing.T) {
	cat, _ := workload.RankedSet(3, workload.RankedConfig{N: 400, Selectivity: 0.05, Seed: 202})
	q := rankedQuery(3, 8)
	res, err := Optimize(cat, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := runBest(t, cat, res)
	want := referenceTopK(t, cat, q, 8)
	for i := range want {
		if i >= len(got) || math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("rank %d mismatch\n%s", i, plan.Explain(res.Best))
		}
	}
}

func TestRankAwarePicksHRJNForSmallK(t *testing.T) {
	// High selectivity + tiny k: rank-join should win (Figure 1's right side).
	cat, _ := workload.RankedSet(2, workload.RankedConfig{N: 20000, Selectivity: 0.05, Seed: 203})
	q := rankedQuery(2, 5)
	res, err := Optimize(cat, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.CountOps(plan.OpHRJN)+res.Best.CountOps(plan.OpNRJN) == 0 {
		t.Errorf("expected a rank-join plan for small k, got:\n%s", plan.Explain(res.Best))
	}
}

func TestBaselinePicksSortPlan(t *testing.T) {
	cat, _ := workload.RankedSet(2, workload.RankedConfig{N: 1200, Selectivity: 0.02, Seed: 204})
	q := rankedQuery(2, 5)
	res, err := Optimize(cat, q, Options{DisableRankAware: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.CountOps(plan.OpHRJN)+res.Best.CountOps(plan.OpNRJN) != 0 {
		t.Error("baseline optimizer must not emit rank-joins")
	}
	if res.Best.CountOps(plan.OpSort) == 0 {
		t.Errorf("baseline ranking plan needs a sort enforcer:\n%s", plan.Explain(res.Best))
	}
	// And it still answers correctly.
	got := runBest(t, cat, res)
	want := referenceTopK(t, cat, q, 5)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatal("baseline plan wrong")
		}
	}
}

func TestRankAwareEnlargesPlanSpace(t *testing.T) {
	// The Figure 3 effect: rank-aware enumeration retains more plans.
	cat, _ := workload.RankedSet(3, workload.RankedConfig{N: 500, Selectivity: 0.05, Seed: 205})
	q := rankedQuery(3, 5)
	on, err := Optimize(cat, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Optimize(cat, q, Options{DisableRankAware: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.PlansKept <= off.PlansKept {
		t.Errorf("rank-aware kept %d plans, baseline %d — expected growth",
			on.PlansKept, off.PlansKept)
	}
	if on.PlansGenerated <= off.PlansGenerated {
		t.Error("rank-aware should generate more candidates")
	}
	// The chain joins on a single key column, so transitivity implies
	// T1.key = T3.key and the T1,T3 entry legitimately exists.
	for _, label := range []string{"T1", "T2", "T3", "T1,T2", "T1,T3", "T2,T3", "T1,T2,T3"} {
		if len(on.Memo[label]) == 0 {
			t.Errorf("missing MEMO entry %s", label)
		}
	}
}

func TestInterestingOrdersTable1(t *testing.T) {
	// The paper's Q2 shape: 3 tables, each contributing a 0.3-weighted term.
	cat, _ := workload.RankedSet(3, workload.RankedConfig{N: 100, Selectivity: 0.1, Seed: 206})
	q := rankedQuery(3, 5)
	for i := range q.Score.Terms {
		q.Score.Terms[i].Weight = 0.3
	}
	res, err := Optimize(cat, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	byExpr := map[string][]string{}
	for _, io := range res.InterestingOrders {
		byExpr[io.Expr] = io.Reasons
	}
	// Join columns.
	for _, e := range []string{"T1.key", "T2.key", "T3.key"} {
		if !hasReason(byExpr[e], "Join") {
			t.Errorf("%s should be interesting for Join: %v", e, byExpr[e])
		}
	}
	// Single rank terms.
	for _, e := range []string{"T1.score", "T2.score", "T3.score"} {
		if !hasReason(byExpr[e], "Rank-join") {
			t.Errorf("%s should be interesting for Rank-join: %v", e, byExpr[e])
		}
	}
	// All pairwise sums (including the unjoined T1,T3 pair, as in Table 1).
	for _, e := range []string{
		"0.3*T1.score + 0.3*T2.score",
		"0.3*T2.score + 0.3*T3.score",
		"0.3*T1.score + 0.3*T3.score",
	} {
		if !hasReason(byExpr[e], "Rank-join") {
			t.Errorf("%s should be interesting for Rank-join: %v", e, byExpr[e])
		}
	}
	// Full sum is the ORDER BY.
	full := "0.3*T1.score + 0.3*T2.score + 0.3*T3.score"
	if !hasReason(byExpr[full], "Orderby") {
		t.Errorf("%s should be interesting for Orderby: %v", full, byExpr[full])
	}
	// Paper count for Q2: 6 columns + 3 pairs + 1 full = 10 rows.
	if len(res.InterestingOrders) != 10 {
		t.Errorf("Table 1 rows = %d, want 10", len(res.InterestingOrders))
	}
}

func hasReason(rs []string, want string) bool {
	for _, r := range rs {
		if r == want {
			return true
		}
	}
	return false
}

func TestPipelineProtection(t *testing.T) {
	cat, _ := workload.RankedSet(2, workload.RankedConfig{N: 2000, Selectivity: 0.05, Seed: 207})
	q := rankedQuery(2, 5)
	with, err := Optimize(cat, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Optimize(cat, q, Options{DisablePipelineProtection: true})
	if err != nil {
		t.Fatal(err)
	}
	if without.PlansKept > with.PlansKept {
		t.Errorf("dropping pipeline protection cannot retain more plans: %d > %d",
			without.PlansKept, with.PlansKept)
	}
}

func TestAblationSwitchesStillCorrect(t *testing.T) {
	cat, _ := workload.RankedSet(2, workload.RankedConfig{N: 800, Selectivity: 0.05, Seed: 208})
	q := rankedQuery(2, 6)
	want := referenceTopK(t, cat, q, 6)
	for name, opts := range map[string]Options{
		"noHRJN":     {DisableHRJN: true},
		"noNRJN":     {DisableNRJN: true},
		"noEnforced": {DisableEnforcedRankInputs: true},
		"adaptive":   {Strategy: exec.Adaptive},
		"noPipe":     {DisablePipelineProtection: true},
	} {
		res, err := Optimize(cat, q, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := runBest(t, cat, res)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("%s: wrong results\n%s", name, plan.Explain(res.Best))
			}
		}
	}
}

func TestNonRankingOrderByQuery(t *testing.T) {
	cat, _ := workload.RankedSet(2, workload.RankedConfig{N: 300, Selectivity: 0.1, Seed: 209})
	q := &logical.Query{
		Tables: []string{"T1", "T2"},
		Joins: []logical.JoinPred{
			{L: expr.Col("T1", "key"), R: expr.Col("T2", "key")},
		},
		OrderBy:   expr.Col("T1", "score"),
		OrderDesc: true,
		K:         20,
	}
	res, err := Optimize(cat, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	op, err := plan.Compile(cat, res.Best)
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 20 {
		t.Fatalf("limit not applied: %d", len(tuples))
	}
	prev := math.Inf(1)
	for _, tup := range tuples {
		s := tup[2].AsFloat()
		if s > prev+1e-9 {
			t.Fatal("ORDER BY violated")
		}
		prev = s
	}
}

func TestSelectProjectionAndFilters(t *testing.T) {
	cat, _ := workload.RankedSet(2, workload.RankedConfig{N: 500, Selectivity: 0.05, Seed: 210})
	q := rankedQuery(2, 5)
	q.Filters = []expr.Expr{
		expr.Bin(expr.OpGt, expr.Col("T1", "score"), expr.FloatLit(0.1)),
	}
	q.Select = []logical.SelectItem{
		{E: expr.Col("T1", "id"), As: "x"},
		{E: expr.Col("", "rank"), As: "rank"},
	}
	res, err := Optimize(cat, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	op, err := plan.Compile(cat, res.Best)
	if err != nil {
		t.Fatalf("%v\n%s", err, plan.Explain(res.Best))
	}
	tuples, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 5 {
		t.Fatalf("got %d rows", len(tuples))
	}
	if op.Schema().Len() != 2 || op.Schema().Column(0).Name != "x" {
		t.Fatalf("projected schema = %s", op.Schema())
	}
	for i, tup := range tuples {
		if tup[1].AsInt() != int64(i+1) {
			t.Fatal("rank column must count from 1")
		}
	}
}

func TestSingleTableRankingQuery(t *testing.T) {
	cat, _ := workload.RankedSet(1, workload.RankedConfig{N: 1000, Selectivity: 0.1, Seed: 211})
	q := &logical.Query{
		Tables: []string{"T1"},
		Score:  expr.Sum(expr.ScoreTerm{Weight: 1, E: expr.Col("T1", "score")}),
		K:      3,
	}
	res, err := Optimize(cat, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := runBest(t, cat, res)
	if len(got) != 3 {
		t.Fatalf("rows = %d", len(got))
	}
	if got[0] < got[1] || got[1] < got[2] {
		t.Fatal("single-table ranking out of order")
	}
	// Should use the descending score index, not a sort.
	if res.Best.CountOps(plan.OpSort) != 0 {
		t.Errorf("expected index-backed ranking:\n%s", plan.Explain(res.Best))
	}
}

func TestCrossoverK(t *testing.T) {
	cat, _ := workload.RankedSet(2, workload.RankedConfig{N: 10000, Selectivity: 0.01, Seed: 212})
	q := rankedQuery(2, 10)
	res, err := Optimize(cat, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Find one rank plan and one sort-finishable plan among root plans.
	var rank, sortp *plan.Node
	for _, p := range res.Memo["T1,T2"] {
		if p.Op.IsRankJoin() && rank == nil {
			rank = p
		}
		if !p.Op.IsRankJoin() && sortp == nil {
			sortp = p
		}
	}
	if rank == nil || sortp == nil {
		t.Skip("memo lacks one of the plan shapes")
	}
	// Wrap the non-rank plan with the final sort (as finish() would).
	o := &optimizer{params: rank.P}
	sorted := o.sortWrap(sortp, sortKeysByScore(q.Score), plan.RankOrder("T1", "T2"))
	kstar := CrossoverK(sorted, rank)
	if kstar <= 0 {
		t.Skip("rank plan never cheaper under these parameters")
	}
	// At k below k*, the rank plan must be cheaper; above, the sort plan.
	if kstar > 1 && kstar <= rank.Card {
		if rank.Cost(kstar/2) >= sorted.TotalCost() {
			t.Errorf("below k* the rank plan should win")
		}
		if kstar*2 <= rank.Card && rank.Cost(kstar*2) <= sorted.TotalCost() {
			t.Errorf("above k* the sort plan should win")
		}
	}
}

func TestOptimizeValidatesQuery(t *testing.T) {
	cat, _ := workload.RankedSet(1, workload.RankedConfig{N: 10, Selectivity: 0.5, Seed: 1})
	bad := &logical.Query{} // no tables
	if _, err := Optimize(cat, bad, Options{}); err == nil {
		t.Error("invalid query must be rejected")
	}
	missing := &logical.Query{Tables: []string{"ZZ"}}
	if _, err := Optimize(cat, missing, Options{}); err == nil {
		t.Error("unknown table must be rejected")
	}
}

func TestExplainMentionsRankProperty(t *testing.T) {
	cat, _ := workload.RankedSet(2, workload.RankedConfig{N: 3000, Selectivity: 0.05, Seed: 213})
	q := rankedQuery(2, 5)
	res, err := Optimize(cat, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := plan.Explain(res.Best)
	if !strings.Contains(out, "rank:T1,T2") {
		t.Errorf("explain should surface the rank property:\n%s", out)
	}
}

func TestGroupedQueryEndToEnd(t *testing.T) {
	cat, _ := workload.RankedSet(2, workload.RankedConfig{N: 600, Selectivity: 0.05, Seed: 214})
	q := &logical.Query{
		Tables:  []string{"T1", "T2"},
		Joins:   []logical.JoinPred{{L: expr.Col("T1", "key"), R: expr.Col("T2", "key")}},
		GroupBy: []expr.ColRef{expr.Col("T1", "key")},
		Aggs: []logical.AggItem{
			{Func: "COUNT", As: "cnt"},
			{Func: "SUM", Arg: expr.Col("T2", "score"), As: "total"},
		},
	}
	res, err := Optimize(cat, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.CountOps(plan.OpHashAgg)+res.Best.CountOps(plan.OpSortAgg) != 1 {
		t.Fatalf("grouped plan lacks aggregation:\n%s", plan.Explain(res.Best))
	}
	op, err := plan.Compile(cat, res.Best)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: brute-force per-key count and sum over the join.
	t1, _ := cat.Table("T1")
	t2, _ := cat.Table("T2")
	cnt := map[int64]int64{}
	sum := map[int64]float64{}
	for _, a := range t1.Rel.Tuples() {
		for _, b := range t2.Rel.Tuples() {
			if a[1].Equal(b[1]) {
				k := a[1].AsInt()
				cnt[k]++
				sum[k] += b[2].AsFloat()
			}
		}
	}
	if len(got) != len(cnt) {
		t.Fatalf("groups = %d, want %d", len(got), len(cnt))
	}
	for _, row := range got {
		k := row[0].AsInt()
		if row[1].AsInt() != cnt[k] {
			t.Fatalf("key %d: count %d, want %d", k, row[1].AsInt(), cnt[k])
		}
		if math.Abs(row[2].AsFloat()-sum[k]) > 1e-6 {
			t.Fatalf("key %d: sum %v, want %v", k, row[2].AsFloat(), sum[k])
		}
	}
	// Group-by column is an interesting order.
	found := false
	for _, io := range res.InterestingOrders {
		if io.Expr == "T1.key" && hasReason(io.Reasons, "GroupBy") {
			found = true
		}
	}
	if !found {
		t.Error("T1.key should be interesting for GroupBy")
	}
}

func TestGroupedQueryPrefersSortedAggOnIndexedColumn(t *testing.T) {
	// Group on an indexed key with a tiny k: streaming over the index order
	// avoids hashing the whole join.
	cat, _ := workload.RankedSet(1, workload.RankedConfig{N: 20000, Selectivity: 0.001, Seed: 215})
	q := &logical.Query{
		Tables:  []string{"T1"},
		GroupBy: []expr.ColRef{expr.Col("T1", "key")},
		Aggs:    []logical.AggItem{{Func: "MAX", Arg: expr.Col("T1", "score"), As: "m"}},
		K:       3,
	}
	res, err := Optimize(cat, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.CountOps(plan.OpSortAgg) != 1 {
		t.Errorf("expected a streaming sorted aggregate:\n%s", plan.Explain(res.Best))
	}
	op, err := plan.Compile(cat, res.Best)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("limit not applied to groups: %d", len(got))
	}
}

// The principle-of-optimality check: pruning must never discard the plan an
// exhaustive (no-pruning) search would choose. Costs are compared, not plan
// shapes — ties between equal-cost plans are fine.
func TestPruningPreservesOptimality(t *testing.T) {
	for _, seed := range []int64{301, 302, 303} {
		for _, sel := range []float64{0.01, 0.1} {
			cat, _ := workload.RankedSet(3, workload.RankedConfig{N: 300, Selectivity: sel, Seed: seed})
			for _, k := range []int{1, 5, 50} {
				q := rankedQuery(3, k)
				pruned, err := Optimize(cat, q, Options{})
				if err != nil {
					t.Fatal(err)
				}
				all, err := Optimize(cat, q, Options{KeepAllPlans: true})
				if err != nil {
					t.Fatal(err)
				}
				if all.PlansKept <= pruned.PlansKept {
					t.Fatalf("exhaustive search kept %d <= pruned %d", all.PlansKept, pruned.PlansKept)
				}
				kEval := float64(k)
				pc := pruned.Best.Cost(kEval)
				ac := all.Best.Cost(kEval)
				if pc > ac*(1+1e-9) {
					t.Errorf("seed=%d sel=%v k=%d: pruning lost the optimum: %.2f vs %.2f",
						seed, sel, k, pc, ac)
				}
			}
		}
	}
}

func TestUseTopKSortOption(t *testing.T) {
	cat, _ := workload.RankedSet(2, workload.RankedConfig{N: 1000, Selectivity: 0.02, Seed: 216})
	q := rankedQuery(2, 7)
	res, err := Optimize(cat, q, Options{DisableRankAware: true, UseTopKSort: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.CountOps(plan.OpTopK) != 1 {
		t.Fatalf("expected a TopKSort enforcer:\n%s", plan.Explain(res.Best))
	}
	if res.Best.CountOps(plan.OpSort) != 0 {
		t.Error("TopKSort should replace the full sort enforcer")
	}
	got := runBest(t, cat, res)
	want := referenceTopK(t, cat, q, 7)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("rank %d: %v, want %v", i, got[i], want[i])
		}
	}
	// And it must be cheaper than the full-sort plan.
	full, err := Optimize(cat, q, Options{DisableRankAware: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost(7) >= full.Best.Cost(7) {
		t.Errorf("top-k sort plan (%v) should undercut the full sort plan (%v)",
			res.Best.Cost(7), full.Best.Cost(7))
	}
}

func TestTransitiveJoinClosure(t *testing.T) {
	// Chain on one key column: the closure derives T1.key = T3.key, letting
	// the optimizer consider joining the chain's endpoints first, and the
	// reduced predicate set counts the single equivalence class once.
	eq := newEquivClasses([]logical.JoinPred{
		{L: expr.Col("T1", "key"), R: expr.Col("T2", "key")},
		{L: expr.Col("T2", "key"), R: expr.Col("T3", "key")},
	})
	closure := eq.closure([]logical.JoinPred{
		{L: expr.Col("T1", "key"), R: expr.Col("T2", "key")},
		{L: expr.Col("T2", "key"), R: expr.Col("T3", "key")},
	})
	if len(closure) != 3 {
		t.Fatalf("closure has %d predicates, want 3", len(closure))
	}
	if !eq.sameClass(expr.Col("T1", "key"), expr.Col("T3", "key")) {
		t.Error("T1.key and T3.key must share a class")
	}
	if eq.sameClass(expr.Col("T1", "key"), expr.Col("T1", "score")) {
		t.Error("unjoined columns have no class")
	}
	// Reduction keeps exactly one predicate for the single class.
	reduced := eq.reduceByClass(closure)
	if len(reduced) != 1 {
		t.Fatalf("reduced to %d predicates, want 1", len(reduced))
	}

	// Distinct classes stay distinct: Q2-style chain on different columns.
	eq2 := newEquivClasses([]logical.JoinPred{
		{L: expr.Col("A", "c2"), R: expr.Col("B", "c1")},
		{L: expr.Col("B", "c2"), R: expr.Col("C", "c2")},
	})
	if eq2.sameClass(expr.Col("A", "c2"), expr.Col("C", "c2")) {
		t.Error("different join columns must not merge")
	}
	closure2 := eq2.closure([]logical.JoinPred{
		{L: expr.Col("A", "c2"), R: expr.Col("B", "c1")},
		{L: expr.Col("B", "c2"), R: expr.Col("C", "c2")},
	})
	if len(closure2) != 2 {
		t.Fatalf("no transitive predicates expected, got %d", len(closure2))
	}
}

func TestTransitivityImprovesOrEqualsPlan(t *testing.T) {
	// With the endpoint join available, the optimizer can never do worse.
	cat, _ := workload.RankedSet(3, workload.RankedConfig{N: 800, Selectivity: 0.03, Seed: 218})
	q := rankedQuery(3, 6)
	res, err := Optimize(cat, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := runBest(t, cat, res)
	want := referenceTopK(t, cat, q, 6)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("transitive plan wrong at rank %d\n%s", i, plan.Explain(res.Best))
		}
	}
	if len(res.Memo["T1,T3"]) == 0 {
		t.Error("closure should open the T1,T3 subplan space")
	}
}

func TestSargableFilterUsesRangeScan(t *testing.T) {
	// A highly selective equality filter on the indexed key column should
	// pick the index range scan over a full scan + filter.
	cat, _ := workload.RankedSet(1, workload.RankedConfig{N: 50000, Selectivity: 0.0005, Seed: 219})
	q := &logical.Query{
		Tables: []string{"T1"},
		Filters: []expr.Expr{
			expr.Bin(expr.OpEq, expr.Col("T1", "key"), expr.IntLit(7)),
		},
		Score: expr.Sum(expr.ScoreTerm{Weight: 1, E: expr.Col("T1", "score")}),
		K:     3,
	}
	res, err := Optimize(cat, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.CountOps(plan.OpIndexRange) == 0 {
		t.Errorf("expected an index range scan:\n%s", plan.Explain(res.Best))
	}
	op, err := plan.Compile(cat, res.Best)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	// Verify against brute force.
	tab, _ := cat.Table("T1")
	var ref []float64
	for _, tup := range tab.Rel.Tuples() {
		if tup[1].AsInt() == 7 {
			ref = append(ref, tup[2].AsFloat())
		}
	}
	for i := 1; i < len(ref); i++ {
		for j := i; j > 0 && ref[j] > ref[j-1]; j-- {
			ref[j], ref[j-1] = ref[j-1], ref[j]
		}
	}
	if len(ref) > 3 {
		ref = ref[:3]
	}
	if len(got) != len(ref) {
		t.Fatalf("rows = %d, want %d", len(got), len(ref))
	}
	for i, tup := range got {
		if math.Abs(tup[len(tup)-2].AsFloat()-ref[i]) > 1e-9 {
			t.Fatalf("rank %d mismatch", i)
		}
	}
}

func TestStrictInequalityRangeScanCorrect(t *testing.T) {
	// Strict bounds rely on the residual filter: col > c scans [c, +inf]
	// but must not emit the boundary rows.
	cat, _ := workload.RankedSet(1, workload.RankedConfig{N: 5000, Selectivity: 0.01, Seed: 220})
	q := &logical.Query{
		Tables: []string{"T1"},
		Filters: []expr.Expr{
			expr.Bin(expr.OpGt, expr.Col("T1", "key"), expr.IntLit(95)),
		},
		Score: expr.Sum(expr.ScoreTerm{Weight: 1, E: expr.Col("T1", "score")}),
		K:     100,
	}
	res, err := Optimize(cat, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	op, err := plan.Compile(cat, res.Best)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range got {
		if tup[1].AsInt() <= 95 {
			t.Fatalf("boundary leak: key %d", tup[1].AsInt())
		}
	}
	tab, _ := cat.Table("T1")
	want := 0
	for _, tup := range tab.Rel.Tuples() {
		if tup[1].AsInt() > 95 {
			want++
		}
	}
	if want > 100 {
		want = 100
	}
	if len(got) != want {
		t.Fatalf("rows = %d, want %d", len(got), want)
	}
}

func TestPartiallyRankedQueryQ1Shape(t *testing.T) {
	// Q1's shape: three tables joined, but only T1 and T2 contribute score
	// terms — T3 participates in the join without ranking.
	cat, _ := workload.RankedSet(3, workload.RankedConfig{N: 500, Selectivity: 0.05, Seed: 221})
	q := &logical.Query{
		Tables: []string{"T1", "T2", "T3"},
		Joins: []logical.JoinPred{
			{L: expr.Col("T1", "key"), R: expr.Col("T2", "key")},
			{L: expr.Col("T2", "key"), R: expr.Col("T3", "key")},
		},
		Score: expr.Sum(
			expr.ScoreTerm{Weight: 0.3, E: expr.Col("T1", "score")},
			expr.ScoreTerm{Weight: 0.7, E: expr.Col("T2", "score")},
		),
		K: 8,
	}
	res, err := Optimize(cat, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := runBest(t, cat, res)
	want := referenceTopK(t, cat, q, 8)
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("rank %d: %v, want %v\n%s", i, got[i], want[i], plan.Explain(res.Best))
		}
	}
	// The rank property at the root covers only the ranked tables.
	if !strings.Contains(plan.Explain(res.Best), "rank:T1,T2") {
		t.Errorf("root order should rank T1,T2 only:\n%s", plan.Explain(res.Best))
	}
}

func TestRankingWithoutLimitReturnsFullOrder(t *testing.T) {
	cat, _ := workload.RankedSet(2, workload.RankedConfig{N: 200, Selectivity: 0.1, Seed: 222})
	q := rankedQuery(2, 0) // K = 0: full ranking
	res, err := Optimize(cat, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := runBest(t, cat, res)
	want := referenceTopK(t, cat, q, 1<<30)
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d (full result)", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("rank %d mismatch", i)
		}
	}
}

func TestTopKSelectionPlanGenerated(t *testing.T) {
	// The multimedia query class: every table ranked, joined on the unique
	// object id. The optimizer must offer (and correctly execute) a TA plan.
	cat, names := workload.Corpus(workload.CorpusConfig{Objects: 800, Features: 3, Seed: 223})
	q := &logical.Query{K: 6}
	weights := []float64{0.5, 0.3, 0.2}
	for i, f := range names {
		q.Tables = append(q.Tables, f)
		q.Score.Terms = append(q.Score.Terms,
			expr.ScoreTerm{Weight: weights[i], E: expr.Col(f, "score")})
		if i > 0 {
			q.Joins = append(q.Joins, logical.JoinPred{
				L: expr.Col(names[i-1], "id"), R: expr.Col(f, "id"),
			})
		}
	}
	res, err := Optimize(cat, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The TA plan may or may not win on cost, but the detected alternative
	// must exist and execute correctly when forced. Build it directly.
	o := &optimizer{
		cat: cat, q: q, params: res.Best.P,
		byName: map[string]*tableInfo{}, memo: map[uint64][]*plan.Node{},
	}
	if err := o.buildTableInfo(); err != nil {
		t.Fatal(err)
	}
	o.equiv = newEquivClasses(q.Joins)
	o.joins = o.equiv.closure(q.Joins)
	o.enumerateBase()
	o.enumerateJoins()
	ta := o.topKSelectionPlan()
	if ta == nil {
		t.Fatal("top-k selection plan should be detected")
	}
	op, err := plan.Compile(cat, ta)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("TA plan rows = %d", len(got))
	}
	// Compare score sequence with the optimizer's chosen plan.
	want := runBest(t, cat, res)
	ev, err := q.Score.Bind(op.Schema())
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range got {
		v, err := ev(row)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v.AsFloat()-want[i]) > 1e-9 {
			t.Fatalf("rank %d: TA %v vs chosen plan %v", i, v.AsFloat(), want[i])
		}
	}
	// And with the switch off, detection is suppressed.
	o.opts.DisableRankAggregate = true
	if o.topKSelectionPlan() != nil {
		t.Error("DisableRankAggregate should suppress the TA plan")
	}
}

func TestTopKSelectionPlanRejectsNonSelections(t *testing.T) {
	// Joins on a NON-unique key: TA semantics break, detection must refuse.
	cat, _ := workload.RankedSet(2, workload.RankedConfig{N: 300, Selectivity: 0.1, Seed: 224})
	q := rankedQuery(2, 5)
	res, err := Optimize(cat, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.CountOps(plan.OpRankAgg) != 0 {
		t.Error("non-unique join keys must not yield a TA plan")
	}
	// Filters also disqualify.
	cat2, names := workload.Corpus(workload.CorpusConfig{Objects: 100, Features: 2, Seed: 225})
	q2 := &logical.Query{K: 3,
		Tables: names,
		Joins:  []logical.JoinPred{{L: expr.Col(names[0], "id"), R: expr.Col(names[1], "id")}},
		Score: expr.Sum(
			expr.ScoreTerm{Weight: 1, E: expr.Col(names[0], "score")},
			expr.ScoreTerm{Weight: 1, E: expr.Col(names[1], "score")},
		),
		Filters: []expr.Expr{expr.Bin(expr.OpGt, expr.Col(names[0], "score"), expr.FloatLit(0.1))},
	}
	res2, err := Optimize(cat2, q2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Best.CountOps(plan.OpRankAgg) != 0 {
		t.Error("filtered queries must not yield a TA plan")
	}
}

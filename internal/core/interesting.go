package core

import (
	"sort"
	"strings"

	"rankopt/internal/expr"
)

// interestingOrders reproduces the paper's Table 1 for the query: the
// interesting order expressions the rank-aware optimizer collects, with the
// operation(s) that make each one interesting. Join columns come from
// equality predicates; single score terms and partial sums become
// interesting because rank-joins can consume them; the full ranking
// function is required by the ORDER BY.
func (o *optimizer) interestingOrders() []InterestingOrder {
	reasons := map[string][]string{}
	order := []string{}
	add := func(e, reason string) {
		if _, ok := reasons[e]; !ok {
			order = append(order, e)
		}
		for _, r := range reasons[e] {
			if r == reason {
				return
			}
		}
		reasons[e] = append(reasons[e], reason)
	}

	// Join-predicate columns.
	for _, j := range o.q.Joins {
		add(j.L.String(), "Join")
		add(j.R.String(), "Join")
	}

	if o.rankAware() {
		ranked := o.rankedOf(o.fullMask())
		// Single score-term columns.
		for _, ti := range ranked {
			add(ti.term.E.String(), "Rank-join")
		}
		// Partial sums over every ranked subset of size >= 2 (subsets other
		// than the full one feed rank-joins; the full one is the ORDER BY).
		m := len(ranked)
		if m >= 2 && m <= 12 {
			for bits := uint64(1); bits < 1<<uint(m); bits++ {
				cnt := popcount(bits)
				if cnt < 2 {
					continue
				}
				var terms []expr.ScoreTerm
				for i := 0; i < m; i++ {
					if bits&(1<<uint(i)) != 0 {
						terms = append(terms, *ranked[i].term)
					}
				}
				e := expr.Sum(terms...).String()
				if cnt == m {
					add(e, "Orderby")
				} else {
					add(e, "Rank-join")
				}
			}
		}
	} else if o.q.OrderBy.Name != "" {
		add(o.q.OrderBy.String(), "Orderby")
	}
	for _, g := range o.q.GroupBy {
		add(g.String(), "GroupBy")
	}

	out := make([]InterestingOrder, 0, len(order))
	// Stable, readable ordering: plain columns first (alphabetical), then
	// sums by term count then alphabetical.
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := strings.Count(order[a], "+"), strings.Count(order[b], "+")
		if ca != cb {
			return ca < cb
		}
		return order[a] < order[b]
	})
	for _, e := range order {
		out = append(out, InterestingOrder{Expr: e, Reasons: reasons[e]})
	}
	return out
}

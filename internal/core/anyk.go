package core

import (
	"math"

	"rankopt/internal/expr"
	"rankopt/internal/logical"
	"rankopt/internal/plan"
)

// This file registers the any-k ranked enumerator (exec.AnyK) as a physical
// plan candidate. AnyK consumes m unordered inputs arranged as a join path
// and emits the join's results in descending combined-score order with
// per-result delay independent of the join's output cardinality — the
// asymptotic advantage over the HRJN family, whose buffered partial results
// grow with the product of per-key group sizes. The candidate carries the
// OrderRank interesting-order property over all its tables, so the Section
// 3.3 machinery compares it against sort plans at the crossover k and
// against HRJN/MultiHRJN trees on equal footing; nothing here special-cases
// its selection.

// anyKPathWidthCap mirrors exec's anykMaxWidth: wider paths cannot compile.
const anyKPathWidthCap = 8

// anyKCandidates adds the any-k alternative for one MEMO entry when the
// subset qualifies: rank-aware query, every table ranked, and the subset's
// join graph admits a path ordering whose adjacent predicates imply every
// join predicate within the subset.
func (o *optimizer) anyKCandidates(acc *maskAcc) {
	if n := o.anyKPlanFor(acc.mask); n != nil {
		acc.add(n)
	}
}

// anyKPlanFor builds the any-k plan covering the mask, or nil when the
// subset does not qualify.
func (o *optimizer) anyKPlanFor(mask uint64) *plan.Node {
	if o.opts.DisableAnyK || !o.rankAware() {
		return nil
	}
	tis := o.tablesOf(mask)
	if len(tis) < 2 || len(tis) > anyKPathWidthCap {
		return nil
	}
	// Every input contributes to the path's combined score; a score-less
	// table would need a zero term and never arises in the ranked workloads.
	for _, ti := range tis {
		if ti.term == nil {
			return nil
		}
	}
	path, preds := o.anyKPath(tis)
	if path == nil || !o.anyKPathSound(mask, preds) {
		return nil
	}
	return o.anyKNode(mask, path, preds)
}

// tablesOf returns the tableInfos under the mask in table order.
func (o *optimizer) tablesOf(mask uint64) []*tableInfo {
	var out []*tableInfo
	for _, ti := range o.tables {
		if mask&(1<<uint(ti.idx)) != 0 {
			out = append(out, ti)
		}
	}
	return out
}

// anyKPath searches for a Hamiltonian path over the subset's join graph in
// which every adjacent pair is connected by exactly one equivalence-class
// predicate (a composite-key edge would leave the extra class unenforced).
// The DFS visits tables in index order, so the chosen path — and therefore
// the emitted plan — is deterministic.
func (o *optimizer) anyKPath(tis []*tableInfo) ([]*tableInfo, []logical.JoinPred) {
	m := len(tis)
	used := make([]bool, m)
	path := make([]*tableInfo, 0, m)
	preds := make([]logical.JoinPred, 0, m-1)
	var dfs func() bool
	dfs = func() bool {
		if len(path) == m {
			return true
		}
		for i := 0; i < m; i++ {
			if used[i] {
				continue
			}
			pushed := false
			if len(path) > 0 {
				last := path[len(path)-1]
				ps, _ := o.selectivityBetween(
					uint64(1)<<uint(last.idx), uint64(1)<<uint(tis[i].idx))
				if len(ps) != 1 {
					continue
				}
				preds = append(preds, ps[0])
				pushed = true
			}
			used[i] = true
			path = append(path, tis[i])
			if dfs() {
				return true
			}
			used[i] = false
			path = path[:len(path)-1]
			if pushed {
				preds = preds[:len(preds)-1]
			}
		}
		return false
	}
	if dfs() {
		return path, preds
	}
	return nil, nil
}

// anyKPathSound verifies that the chosen adjacent predicates imply every
// closure join predicate within the mask: union the columns each chosen
// predicate equates, then require both sides of every in-mask closure
// predicate to land in one component. A predicate outside the implied set
// would silently go unenforced — the path must reject such subsets (they
// keep their HRJN/hash alternatives).
func (o *optimizer) anyKPathSound(mask uint64, chosen []logical.JoinPred) bool {
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b string) { parent[find(a)] = find(b) }
	for _, jp := range chosen {
		union(jp.L.String(), jp.R.String())
	}
	inMask := o.nameSet(mask)
	for _, j := range o.joins {
		if !inMask[j.L.Table] || !inMask[j.R.Table] {
			continue
		}
		if find(j.L.String()) != find(j.R.String()) {
			return false
		}
	}
	return true
}

// anyKNode builds the plan node: one cheap unordered access per path table
// (the build phase sorts internally, so ranked access paths would be wasted
// cost), the per-input score contributions, and the adjacent key pairs. The
// node's order property is the rank order over all its tables — the same
// interesting-order class a fully-pipelined rank-join tree earns — but it is
// blocking: no result appears before the build finishes.
func (o *optimizer) anyKNode(mask uint64, path []*tableInfo, preds []logical.JoinPred) *plan.Node {
	m := len(path)
	children := make([]*plan.Node, m)
	scores := make([]expr.Expr, m)
	card := 1.0
	for i, ti := range path {
		children[i] = o.cheapBase(ti)
		scores[i] = expr.Sum(*ti.term)
		card *= ti.card
	}
	lkeys := make([]expr.Expr, m-1)
	rkeys := make([]expr.Expr, m-1)
	selProd := 1.0
	for i, jp := range preds {
		lkeys[i] = jp.L
		rkeys[i] = jp.R
		selProd *= o.cat.JoinSelectivity(jp.L, jp.R)
	}
	order, _ := o.rankOrderFor(mask)
	return &plan.Node{
		Op:         plan.OpAnyK,
		Children:   children,
		AnyKScores: scores,
		AnyKLKeys:  lkeys,
		AnyKRKeys:  rkeys,
		Card:       math.Max(card*selProd, 1e-9),
		// Sel is the representative adjacent-pair selectivity: the cost
		// model's expected per-key bucket size is Sel times the input card.
		Sel:   math.Pow(selProd, 1/float64(m-1)),
		BaseN: o.geoMeanRankedCard(mask),
		P:     o.params,
		Props: plan.Props{Order: order, Pipelined: false},
	}
}

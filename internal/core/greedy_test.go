package core

import (
	"math"
	"testing"

	"rankopt/internal/estimate"
	"rankopt/internal/exec"
	"rankopt/internal/expr"
	"rankopt/internal/logical"
	"rankopt/internal/plan"
	"rankopt/internal/workload"
)

// The greedy fast path must produce the same top-k answer as the reference
// plan (and therefore as the DP) on ranked chain joins of every width.
func TestGreedyMatchesReference(t *testing.T) {
	// Rows shrink with join width so the reference plan's full materialized
	// join stays small (N^m·s^(m-1) tuples).
	rows := map[int]int{2: 1500, 3: 400, 4: 120}
	for _, m := range []int{2, 3, 4} {
		cat, _ := workload.RankedSet(m, workload.RankedConfig{N: rows[m], Selectivity: 0.05, Seed: 301})
		q := rankedQuery(m, 10)
		res, err := Optimize(cat, q, Options{Planner: PlannerGreedy})
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if res.Planner != PlannerGreedy || res.GreedyFallback {
			t.Fatalf("m=%d: planner=%v fallback=%v, want greedy", m, res.Planner, res.GreedyFallback)
		}
		got := runBest(t, cat, res)
		want := referenceTopK(t, cat, q, 10)
		if len(got) != len(want) {
			t.Fatalf("m=%d: got %d results, want %d\n%s", m, len(got), len(want), plan.Explain(res.Best))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("m=%d rank %d: %v, want %v\n%s", m, i, got[i], want[i], plan.Explain(res.Best))
			}
		}
	}
}

// Greedy must also handle non-ranking ORDER BY queries and filtered ranked
// queries — the paths that bypass rank-join construction entirely.
func TestGreedyNonRankingAndFiltered(t *testing.T) {
	cat, _ := workload.RankedSet(2, workload.RankedConfig{N: 800, Selectivity: 0.05, Seed: 302})

	// Non-ranking: plain ORDER BY id DESC LIMIT.
	q := &logical.Query{
		Tables:    []string{"T1", "T2"},
		Joins:     []logical.JoinPred{{L: expr.Col("T1", "key"), R: expr.Col("T2", "key")}},
		OrderBy:   expr.Col("T1", "id"),
		OrderDesc: true,
		K:         5,
	}
	res, err := Optimize(cat, q, Options{Planner: PlannerGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if res.Planner != PlannerGreedy {
		t.Fatalf("non-ranking query fell back: %+v", res.GreedyFallback)
	}
	op, err := plan.Compile(cat, res.Best)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, plan.Explain(res.Best))
	}
	tuples, err := exec.Collect(op)
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, plan.Explain(res.Best))
	}
	if len(tuples) != 5 {
		t.Fatalf("got %d tuples, want 5", len(tuples))
	}

	// Ranked with a filter constant: the filtered table should be planned
	// with its filter applied, and results must match the DP.
	qf := rankedQuery(2, 8)
	qf.Filters = []expr.Expr{expr.Bin(expr.OpLt, expr.Col("T1", "id"), expr.IntLit(400))}
	gres, err := Optimize(cat, qf, Options{Planner: PlannerGreedy})
	if err != nil {
		t.Fatal(err)
	}
	dres, err := Optimize(cat, qf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := runBest(t, cat, gres)
	d := runBest(t, cat, dres)
	if len(g) != len(d) {
		t.Fatalf("greedy %d results, dp %d", len(g), len(d))
	}
	for i := range d {
		if math.Abs(g[i]-d[i]) > 1e-9 {
			t.Fatalf("rank %d: greedy %v, dp %v\n%s", i, g[i], d[i], plan.Explain(gres.Best))
		}
	}
}

// Shapes greedy cannot order confidently fall back to the DP and say so.
func TestGreedyFallback(t *testing.T) {
	// Single table.
	cat1, _ := workload.RankedSet(1, workload.RankedConfig{N: 200, Selectivity: 0.1, Seed: 303})
	res, err := Optimize(cat1, rankedQuery(1, 5), Options{Planner: PlannerGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if res.Planner != PlannerDP || !res.GreedyFallback {
		t.Fatalf("single-table: planner=%v fallback=%v, want DP fallback", res.Planner, res.GreedyFallback)
	}

	// Grouped query.
	cat2, _ := workload.RankedSet(2, workload.RankedConfig{N: 300, Selectivity: 0.1, Seed: 304})
	qg := &logical.Query{
		Tables:  []string{"T1", "T2"},
		Joins:   []logical.JoinPred{{L: expr.Col("T1", "key"), R: expr.Col("T2", "key")}},
		GroupBy: []expr.ColRef{expr.Col("T1", "key")},
		Aggs:    []logical.AggItem{{Func: "COUNT", As: "n"}},
	}
	res2, err := Optimize(cat2, qg, Options{Planner: PlannerGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Planner != PlannerDP || !res2.GreedyFallback {
		t.Fatalf("grouped: planner=%v fallback=%v, want DP fallback", res2.Planner, res2.GreedyFallback)
	}
}

func TestParsePlannerMode(t *testing.T) {
	for s, want := range map[string]PlannerMode{"": PlannerDP, "dp": PlannerDP, "greedy": PlannerGreedy} {
		got, err := ParsePlannerMode(s)
		if err != nil || got != want {
			t.Fatalf("ParsePlannerMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePlannerMode("bogus"); err == nil {
		t.Fatal("bogus mode must fail")
	}
	if PlannerGreedy.String() != "greedy" || PlannerDP.String() != "dp" {
		t.Fatal("String round-trip broken")
	}
}

// A DepthHints entry keyed by the rank join's table split must attach to the
// constructed node (and therefore drive Depths and executor pre-sizing).
func TestDepthHintAttaches(t *testing.T) {
	cat, _ := workload.RankedSet(2, workload.RankedConfig{N: 20000, Selectivity: 0.05, Seed: 305})
	q := rankedQuery(2, 5)
	// Hints are side-sensitive; the engine records both orientations of a
	// split (depths swapped), so the DP finds a match whichever side it
	// puts left.
	hints := map[string]estimate.Observed{
		"T1|T2": {K: 5, DL: 42, DR: 37},
		"T2|T1": {K: 5, DL: 37, DR: 42},
	}
	for _, mode := range []PlannerMode{PlannerDP, PlannerGreedy} {
		res, err := Optimize(cat, q, Options{Planner: mode, DepthHints: hints})
		if err != nil {
			t.Fatal(err)
		}
		var hinted *plan.Node
		res.Best.Walk(func(n *plan.Node) {
			if n.Op.IsRankJoin() && n.DepthHint != nil {
				hinted = n
			}
		})
		if hinted == nil {
			t.Fatalf("mode %v: no rank join carries the depth hint\n%s", mode, plan.Explain(res.Best))
		}
		dl, dr := hinted.Depths(5)
		wantL, wantR := 42.0, 37.0
		if len(hinted.Left().Tables()) == 1 && hinted.Left().Tables()[0] == "T2" {
			wantL, wantR = 37, 42
		}
		if math.Abs(dl-wantL) > 1e-9 || math.Abs(dr-wantR) > 1e-9 {
			t.Fatalf("mode %v: hinted depths %v/%v, want %v/%v", mode, dl, dr, wantL, wantR)
		}
	}
}

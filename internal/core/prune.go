package core

import (
	"fmt"
	"math"

	"rankopt/internal/plan"
)

// costEps tolerates floating-point noise in cost comparisons.
const costEps = 1e-9

// pruneCounters tallies one enumeration's pruning work: candidates
// considered, candidates rejected by an existing dominator, existing plans
// evicted by a stronger candidate, and pipelined plans that a cheaper
// blocking plan would have removed but for the First-N-Rows protection.
// Join-level workers each own a private copy merged at the level barrier.
type pruneCounters struct {
	gen       int
	pruned    int
	evicted   int
	protected int
}

// merge folds a worker's counters into the optimizer total.
func (pc *pruneCounters) merge(other pruneCounters) {
	pc.gen += other.gen
	pc.pruned += other.pruned
	pc.evicted += other.evicted
	pc.protected += other.protected
}

// addPlan inserts a candidate into a MEMO entry directly; only the
// sequential base-level enumeration (and tests) use it — join levels go
// through per-mask accumulators so workers never touch the shared memo.
func (o *optimizer) addPlan(mask uint64, cand *plan.Node) {
	o.pc.gen++
	if tr := o.opts.Tracer; tr != nil {
		tr.OnDecision(Decision{Kind: DecisionCandidate, Level: popcount(mask), Entry: o.label(mask)})
	}
	o.memo[mask] = o.insertPruned(mask, o.memo[mask], cand, &o.pc)
}

// insertPruned adds a candidate to a plan list, applying the paper's
// property + cost pruning: a plan is pruned iff another plan for the same
// expression has properties at least as strong AND is at most as expensive
// at every achievable k (Section 3.3). Existing plans dominated by the
// candidate are evicted. The receiver is only read, so concurrent workers
// may call this on disjoint lists; pruning outcomes land in pc and, when a
// Tracer is attached, as decision events.
func (o *optimizer) insertPruned(mask uint64, plans []*plan.Node, cand *plan.Node, pc *pruneCounters) []*plan.Node {
	if o.opts.KeepAllPlans {
		return append(plans, cand)
	}
	tr := o.opts.Tracer
	candProtected := false
	for _, p := range plans {
		dom, prot := o.dominatesExplained(p, cand)
		if dom {
			pc.pruned++
			if tr != nil {
				tr.OnDecision(Decision{
					Kind:       DecisionPruned,
					Level:      popcount(mask),
					Entry:      o.label(mask),
					Plan:       plan.Summary(cand),
					Rival:      plan.Summary(p),
					CrossoverK: crossoverFor(cand, p),
					Note:       o.domNote(p, cand),
				})
			}
			return plans
		}
		// The candidate stays in the entry even though p is cheaper at every
		// achievable k — the First-N-Rows property is doing the protecting.
		// Count it once per candidate, however many blocking rivals it beat.
		if prot && !candProtected {
			candProtected = true
			pc.protected++
			if tr != nil {
				tr.OnDecision(Decision{
					Kind:  DecisionProtected,
					Level: popcount(mask),
					Entry: o.label(mask),
					Plan:  plan.Summary(cand),
					Rival: plan.Summary(p),
					Note:  "pipelined plan kept despite cheaper blocking rival (First-N-Rows)",
				})
			}
		}
	}
	kept := make([]*plan.Node, 0, len(plans)+1)
	for _, p := range plans {
		dom, prot := o.dominatesExplained(cand, p)
		if dom {
			pc.evicted++
			if tr != nil {
				tr.OnDecision(Decision{
					Kind:       DecisionEvicted,
					Level:      popcount(mask),
					Entry:      o.label(mask),
					Plan:       plan.Summary(p),
					Rival:      plan.Summary(cand),
					CrossoverK: crossoverFor(p, cand),
					Note:       o.domNote(cand, p),
				})
			}
			continue
		}
		if prot {
			pc.protected++
			if tr != nil {
				tr.OnDecision(Decision{
					Kind:  DecisionProtected,
					Level: popcount(mask),
					Entry: o.label(mask),
					Plan:  plan.Summary(p),
					Rival: plan.Summary(cand),
					Note:  "pipelined plan kept despite cheaper blocking rival (First-N-Rows)",
				})
			}
		}
		kept = append(kept, p)
	}
	return append(kept, cand)
}

// dominates reports whether plan a makes plan b redundant.
func (o *optimizer) dominates(a, b *plan.Node) bool {
	dom, _ := o.dominatesExplained(a, b)
	return dom
}

// dominatesExplained reports whether plan a makes plan b redundant, and —
// when it does not — whether b survived *only* through the First-N-Rows
// protection (a wins on cost at every achievable k and on every property
// except b's Pipelined flag). Properties must dominate; costs are compared
// at the two ends of the achievable range of k — kmin (the query's
// requested answer count, the least any subplan will be asked for) and na
// (the subplan's full output). Because sort plans are k-constant and rank
// plans grow monotonically in k, agreement at both endpoints decides the
// whole range; disagreement is the paper's "keep both" zone around the
// crossover k*.
func (o *optimizer) dominatesExplained(a, b *plan.Node) (dom, protected bool) {
	pa, pb := a.Props, b.Props
	if o.opts.DisablePipelineProtection {
		pa.Pipelined, pb.Pipelined = true, true
	}
	if pa.Dominates(pb) {
		return o.costDominates(a, b), false
	}
	// Props failed: did only b's Pipelined flag save it? (Moot when the
	// protection is ablated away — both flags were already forced true.)
	if o.opts.DisablePipelineProtection || !pb.Pipelined || pa.Pipelined {
		return false, false
	}
	pa.Pipelined, pb.Pipelined = true, true
	if pa.Dominates(pb) && o.costDominates(a, b) {
		return false, true
	}
	return false, false
}

// costDominates reports a at most as expensive as b at both endpoints of
// the achievable k range.
func (o *optimizer) costDominates(a, b *plan.Node) bool {
	na := math.Max(a.Card, b.Card)
	if a.Cost(na) > b.Cost(na)+costEps {
		return false
	}
	if o.kmin > 0 && o.kmin < na {
		if a.Cost(o.kmin) > b.Cost(o.kmin)+costEps {
			return false
		}
	}
	return true
}

// domNote renders the reason a dominated b, for decision traces.
func (o *optimizer) domNote(a, b *plan.Node) string {
	na := math.Max(a.Card, b.Card)
	k := na
	if o.kmin > 0 && o.kmin < na {
		k = o.kmin
	}
	return fmt.Sprintf("dominated: props %s >= %s; cost %.1f<=%.1f at k=%.0f",
		propsNote(a), propsNote(b), a.Cost(k), b.Cost(k), k)
}

// propsNote is the compact property rendering decision traces use.
func propsNote(n *plan.Node) string {
	s := n.Props.Order.Key()
	if n.Props.Pipelined {
		s += "+pipelined"
	}
	return s
}

// CrossoverK computes k*, the number of requested results at which a
// k-sensitive (rank-join) plan's cost overtakes a blocking plan's constant
// cost (Figure 6). It returns 0 when the rank plan is never cheaper, and
// na+1 when it is cheaper over the entire achievable range [1, na].
func CrossoverK(sortPlan, rankPlan *plan.Node) float64 {
	na := math.Max(rankPlan.Card, 1)
	sortCost := sortPlan.TotalCost()
	if rankPlan.Cost(1) >= sortCost {
		return 0
	}
	if rankPlan.Cost(na) <= sortCost {
		return na + 1
	}
	lo, hi := 1.0, na
	for i := 0; i < 64 && hi-lo > 0.5; i++ {
		mid := (lo + hi) / 2
		if rankPlan.Cost(mid) < sortCost {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

package core

import (
	"math"

	"rankopt/internal/plan"
)

// costEps tolerates floating-point noise in cost comparisons.
const costEps = 1e-9

// addPlan inserts a candidate into a MEMO entry directly; only the
// sequential base-level enumeration (and tests) use it — join levels go
// through per-mask accumulators so workers never touch the shared memo.
func (o *optimizer) addPlan(mask uint64, cand *plan.Node) {
	o.gen++
	o.memo[mask] = o.insertPruned(o.memo[mask], cand)
}

// insertPruned adds a candidate to a plan list, applying the paper's
// property + cost pruning: a plan is pruned iff another plan for the same
// expression has properties at least as strong AND is at most as expensive
// at every achievable k (Section 3.3). Existing plans dominated by the
// candidate are evicted. The receiver is only read, so concurrent workers
// may call this on disjoint lists.
func (o *optimizer) insertPruned(plans []*plan.Node, cand *plan.Node) []*plan.Node {
	if o.opts.KeepAllPlans {
		return append(plans, cand)
	}
	for _, p := range plans {
		if o.dominates(p, cand) {
			return plans
		}
	}
	kept := make([]*plan.Node, 0, len(plans)+1)
	for _, p := range plans {
		if !o.dominates(cand, p) {
			kept = append(kept, p)
		}
	}
	return append(kept, cand)
}

// dominates reports whether plan a makes plan b redundant. Properties must
// dominate; costs are compared at the two ends of the achievable range of k
// — kmin (the query's requested answer count, the least any subplan will be
// asked for) and na (the subplan's full output). Because sort plans are
// k-constant and rank plans grow monotonically in k, agreement at both
// endpoints decides the whole range; disagreement is the paper's "keep both"
// zone around the crossover k*.
func (o *optimizer) dominates(a, b *plan.Node) bool {
	pa, pb := a.Props, b.Props
	if o.opts.DisablePipelineProtection {
		pa.Pipelined, pb.Pipelined = true, true
	}
	if !pa.Dominates(pb) {
		return false
	}
	na := math.Max(a.Card, b.Card)
	if a.Cost(na) > b.Cost(na)+costEps {
		return false
	}
	if o.kmin > 0 && o.kmin < na {
		if a.Cost(o.kmin) > b.Cost(o.kmin)+costEps {
			return false
		}
	}
	return true
}

// CrossoverK computes k*, the number of requested results at which a
// k-sensitive (rank-join) plan's cost overtakes a blocking plan's constant
// cost (Figure 6). It returns 0 when the rank plan is never cheaper, and
// na+1 when it is cheaper over the entire achievable range [1, na].
func CrossoverK(sortPlan, rankPlan *plan.Node) float64 {
	na := math.Max(rankPlan.Card, 1)
	sortCost := sortPlan.TotalCost()
	if rankPlan.Cost(1) >= sortCost {
		return 0
	}
	if rankPlan.Cost(na) <= sortCost {
		return na + 1
	}
	lo, hi := 1.0, na
	for i := 0; i < 64 && hi-lo > 0.5; i++ {
		mid := (lo + hi) / 2
		if rankPlan.Cost(mid) < sortCost {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

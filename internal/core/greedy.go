package core

import (
	"math"

	"rankopt/internal/expr"
	"rankopt/internal/plan"
)

// Greedy fallback reasons: why a PlannerGreedy request ran the DP instead.
// Reported in Result.GreedyFallbackReason and counted per reason by the
// engine's raqo_greedy_fallbacks_total metric.
const (
	GreedyFallbackSingleTable = "single_table"
	GreedyFallbackGrouped     = "grouped"
	GreedyFallbackTraced      = "traced"
	GreedyFallbackKeepAll     = "keep_all"
	// GreedyFallbackNoPlan: the left-deep walk could not complete a
	// connected plan (e.g. a Cartesian-only step remained).
	GreedyFallbackNoPlan = "no_plan"
)

// greedyPlan is the planner's fast path: one left-deep join plan built in
// microseconds from signals visible without enumerating the memo — filtered
// cardinalities (predicate constants), join-graph connectivity, and
// ranked-input availability. It starts at the most constrained table and
// repeatedly attaches the connected neighbor minimizing the expected
// intermediate cardinality, choosing the physical join per step from a
// constant-size candidate set (HRJN when both sides are ranked, INLJ on an
// indexed join column, hash join otherwise) by the same cost model the DP
// uses. Returns nil for shapes it cannot order confidently — grouped queries
// (the aggregation placement needs the full plan set), traced sessions
// (EXPLAIN TRACE documents the DP's decisions), plan-space collection modes,
// and single-table queries — letting the caller fall back to the DP. The
// second return names why the fallback happened (one of the GreedyFallback*
// constants, "" when a plan was produced), so the engine can count fallback
// causes instead of one opaque bool.
func (o *optimizer) greedyPlan() (*plan.Node, string) {
	switch {
	case len(o.tables) < 2:
		return nil, GreedyFallbackSingleTable
	case o.q.Grouped():
		return nil, GreedyFallbackGrouped
	case o.opts.Tracer != nil:
		return nil, GreedyFallbackTraced
	case o.opts.KeepAllPlans:
		return nil, GreedyFallbackKeepAll
	}

	// Join-graph degree: how many distinct other tables each table joins to.
	degree := make([]int, len(o.tables))
	for i := range o.tables {
		seen := map[string]bool{}
		for _, j := range o.joins {
			if j.L.Table == o.tables[i].name && !seen[j.R.Table] {
				seen[j.R.Table] = true
				degree[i]++
			} else if j.R.Table == o.tables[i].name && !seen[j.L.Table] {
				seen[j.L.Table] = true
				degree[i]++
			}
		}
	}

	// Start at the most constrained table: smallest filtered cardinality
	// (predicate constants shrink card via filtSel), then highest join-graph
	// degree, then ranked tables first (a ranked start feeds rank joins from
	// the bottom of the pipeline).
	start := o.tables[0]
	better := func(a, b *tableInfo) bool {
		if a.card != b.card {
			return a.card < b.card
		}
		if degree[a.idx] != degree[b.idx] {
			return degree[a.idx] > degree[b.idx]
		}
		if (a.term != nil) != (b.term != nil) {
			return a.term != nil
		}
		return a.idx < b.idx
	}
	for _, ti := range o.tables[1:] {
		if better(ti, start) {
			start = ti
		}
	}

	// Which access wins for the start table — the pipelined descending
	// score-index scan or the blocking sort over a cheap scan — depends on
	// the depth the pipeline above will actually demand, which is unknowable
	// until the joins are placed. Both starts are cheap to carry to
	// completion (the greedy walk is linear), so build one plan per start
	// variant and keep the cheaper finished prefix.
	var best *plan.Node
	bestCost := math.Inf(1)
	for _, base := range o.greedyStartCandidates(start) {
		p := o.greedyFrom(start, base, degree)
		if p == nil {
			continue
		}
		if c := o.greedyFinalCost(p); c < bestCost {
			best, bestCost = p, c
		}
	}
	// The any-k enumerator is a single full-query operator, not a per-step
	// join choice, so it competes against the finished left-deep walk.
	if ak := o.anyKPlanFor(o.fullMask()); ak != nil {
		if c := o.greedyFinalCost(ak); c < bestCost {
			best, bestCost = ak, c
		}
	}
	if best == nil {
		return nil, GreedyFallbackNoPlan
	}
	return best, ""
}

// greedyFrom completes the left-deep walk from one access path of the start
// table.
func (o *optimizer) greedyFrom(start *tableInfo, base *plan.Node, degree []int) *plan.Node {
	cur := base
	curMask := uint64(1) << uint(start.idx)
	remaining := make([]*tableInfo, 0, len(o.tables)-1)
	for _, ti := range o.tables {
		if ti != start {
			remaining = append(remaining, ti)
		}
	}
	kEval := o.kmin

	for len(remaining) > 0 {
		// Next table: the connected neighbor minimizing the expected
		// intermediate output cardinality s·|cur|·|t|.
		bestI := -1
		bestOut := math.Inf(1)
		for i, ti := range remaining {
			preds, s := o.selectivityBetween(curMask, uint64(1)<<uint(ti.idx))
			if len(preds) == 0 {
				continue // would be a Cartesian product; try others first
			}
			out := math.Max(s*cur.Card*ti.card, 1e-9)
			if out < bestOut || (out == bestOut && degree[ti.idx] > degree[remaining[bestI].idx]) {
				bestOut = out
				bestI = i
			}
		}
		if bestI == -1 {
			// No connected next table: Validate guarantees a connected join
			// graph, so this is unreachable — but an unordered shape falls
			// back to the DP rather than building a Cartesian product.
			return nil
		}
		next := remaining[bestI]
		remaining = append(remaining[:bestI], remaining[bestI+1:]...)
		cur = o.greedyJoin(cur, curMask, next, kEval)
		curMask |= uint64(1) << uint(next.idx)
	}
	return cur
}

// greedyRankedVariants returns the ranked access alternatives for a base
// table of a rank-aware query: the pipelined descending score-index scan and
// the sort-enforced cheap access, mirroring enumerateBase's ranked
// alternatives. Neither dominates — the index scan pays per-row random
// access and wins only at shallow depths, the sort pays its full blocking
// price up front — so both are surfaced and the per-step Cost(k) comparison
// (which propagates k into rank-join input depths) picks per context.
// Returns nil for unranked tables.
func (o *optimizer) greedyRankedVariants(ti *tableInfo) []*plan.Node {
	if !o.rankAware() || ti.term == nil {
		return nil
	}
	var out []*plan.Node
	rankProp := plan.RankOrder(ti.name)
	if ti.termIsCol {
		if idx := o.cat.IndexOn(ti.name, ti.termCol.Name); idx != nil {
			out = append(out, o.wrapFilters(ti, &plan.Node{
				Op:        plan.OpIndexScan,
				Table:     ti.name,
				Index:     idx,
				IndexDesc: true,
				Card:      ti.rawCard,
				LSlab:     ti.termSlab,
				P:         o.params,
				Props:     plan.Props{Order: rankProp, Pipelined: true},
			}))
		}
	}
	if !o.opts.DisableEnforcedRankInputs {
		s := o.sortWrap(o.cheapBase(ti), sortKeysByScore(expr.Sum(*ti.term)), rankProp)
		s.LSlab = ti.termSlab
		out = append(out, s)
	}
	return out
}

// greedyStartCandidates are the access paths the greedy walk may begin from:
// every ranked variant plus the cheapest unordered access (an unranked start
// still feeds hash joins whose output a single final sort can rank).
func (o *optimizer) greedyStartCandidates(ti *tableInfo) []*plan.Node {
	return append(o.greedyRankedVariants(ti), o.cheapBase(ti))
}

// greedyFinalCost scores a finished greedy join plan the way the per-step
// selection does: a plan covering the query's rank order is charged at k; a
// plan that lost the order will be consumed wholesale by the final sort
// enforcer, so it pays its full cost plus the sort.
func (o *optimizer) greedyFinalCost(p *plan.Node) float64 {
	outOrder, haveRank := o.rankOrderFor(o.fullMask())
	if o.q.Ranking() && !(haveRank && p.Props.Order.Covers(outOrder)) {
		return p.Cost(p.Card) + o.params.Sort(p.Card)
	}
	k := o.kmin
	if k <= 0 || k > p.Card {
		k = p.Card
	}
	return p.Cost(k)
}

// greedyJoin attaches table next to the current left-deep prefix, picking the
// cheapest of a constant-size candidate set at the query's k: a rank join
// when both sides carry score terms (with enforced ranked inputs as needed),
// an index nested-loop join when next has an index on the join column, and a
// hash join oriented to preserve whichever side's rank order survives.
func (o *optimizer) greedyJoin(cur *plan.Node, curMask uint64, next *tableInfo, kEval float64) *plan.Node {
	nextMask := uint64(1) << uint(next.idx)
	mask := curMask | nextMask
	preds, s := o.selectivityBetween(curMask, nextMask)
	jcard := math.Max(s*cur.Card*next.card, 1e-9)

	var cands []*plan.Node

	// HRJN: both sides ranked (enforcing the ranked orders where missing).
	// Every ranked access variant of next becomes its own candidate — which
	// input shape wins depends on the depth this join will demand, and the
	// Cost(k) comparison below is what knows that.
	if o.rankAware() && !o.opts.DisableHRJN && next.term != nil && len(o.rankedOf(curMask)) > 0 {
		lOrder, _ := o.rankOrderFor(curMask)
		l := cur
		if !cur.Props.Order.Covers(lOrder) {
			if o.opts.DisableEnforcedRankInputs {
				l = nil
			} else {
				l = o.sortWrap(cur, sortKeysByScore(o.scoreFor(curMask)), lOrder)
			}
		}
		if l != nil {
			outOrder, _ := o.rankOrderFor(mask)
			for _, r := range o.greedyRankedVariants(next) {
				if !r.Props.Order.Covers(plan.RankOrder(next.name)) {
					continue
				}
				n := o.rankJoinNode(plan.OpHRJN, l, r, curMask, nextMask, preds, s, jcard)
				n.Props = plan.Props{
					Order:     outOrder,
					Pipelined: l.Props.Pipelined && r.Props.Pipelined,
				}
				cands = append(cands, n)
			}
			// NRJN: only the outer need be ranked; the inner is a cheap
			// unsorted materialization. Wins over HRJN when the join is
			// unselective enough that descending the inner's ranking is
			// wasted work.
			if !o.opts.DisableNRJN {
				n := o.rankJoinNode(plan.OpNRJN, l, o.cheapBase(next), curMask, nextMask, preds, s, jcard)
				n.Props = plan.Props{
					Order:     outOrder,
					Pipelined: l.Props.Pipelined,
				}
				cands = append(cands, n)
			}
		}
	}

	// INLJ: next is a base table; probe its index on the join column.
	if idx := o.cat.IndexOn(next.name, preds[0].R.Name); idx != nil {
		cands = append(cands, &plan.Node{
			Op:        plan.OpINLJ,
			Children:  []*plan.Node{cur},
			Table:     next.name,
			Index:     idx,
			EqPreds:   preds,
			Pred:      expr.And(next.filters...),
			Card:      jcard,
			Sel:       s * next.filtSel,
			InnerCard: next.rawCard,
			P:         o.params,
			Props: plan.Props{
				Order:     o.preserveOuter(cur.Props, nextMask),
				Pipelined: cur.Props.Pipelined,
			},
		})
	}

	// Hash join. When the prefix is unranked but next is ranked, build on the
	// prefix and probe the ranked access so its order survives the join;
	// otherwise build on next and probe the prefix, preserving its order.
	if o.rankAware() && next.term != nil && len(o.rankedOf(curMask)) == 0 {
		probes := o.greedyRankedVariants(next)
		if len(probes) == 0 {
			probes = []*plan.Node{o.cheapBase(next)}
		}
		for _, r := range probes {
			cands = append(cands, &plan.Node{
				Op:       plan.OpHashJoin,
				Children: []*plan.Node{cur, r},
				EqPreds:  preds,
				Card:     jcard,
				Sel:      s,
				P:        o.params,
				Props: plan.Props{
					Order:     o.preserveOuter(r.Props, curMask),
					Pipelined: r.Props.Pipelined,
				},
			})
		}
	} else {
		b := o.cheapBase(next)
		rev, _ := o.selectivityBetween(nextMask, curMask)
		cands = append(cands, &plan.Node{
			Op:       plan.OpHashJoin,
			Children: []*plan.Node{b, cur},
			EqPreds:  rev,
			Card:     jcard,
			Sel:      s,
			P:        o.params,
			Props: plan.Props{
				Order:     o.preserveOuter(cur.Props, nextMask),
				Pipelined: cur.Props.Pipelined,
			},
		})
	}

	k := kEval
	if k <= 0 || k > jcard {
		k = jcard
	}
	// A candidate that keeps the rank order can stop after k results; one
	// that loses it will be consumed wholesale by the eventual sort enforcer,
	// so it pays its full cost — the greedy mirror of the paper's
	// First-N-Rows pipeline protection. Without it a pipelined-but-unordered
	// join looks absurdly cheap at small k and dooms the plan to a full sort.
	outOrder, haveRank := o.rankOrderFor(mask)
	evalCost := func(c *plan.Node) float64 {
		if o.q.Ranking() && !(haveRank && c.Props.Order.Covers(outOrder)) {
			return c.Cost(c.Card)
		}
		return c.Cost(k)
	}
	best := cands[0]
	bestCost := evalCost(best)
	for _, c := range cands[1:] {
		if cc := evalCost(c); cc < bestCost {
			bestCost = cc
			best = c
		}
	}
	return best
}

package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rankopt/internal/relation"
)

func TestInsertLookupSmall(t *testing.T) {
	tr := New()
	for i, k := range []int64{5, 3, 8, 3, 1} {
		if err := tr.Insert(relation.Int(k), i); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 5 || tr.DistinctKeys() != 4 {
		t.Fatalf("Len=%d DistinctKeys=%d", tr.Len(), tr.DistinctKeys())
	}
	rids := tr.Lookup(relation.Int(3))
	if len(rids) != 2 || rids[0] != 1 || rids[1] != 3 {
		t.Fatalf("Lookup(3) = %v", rids)
	}
	if tr.Lookup(relation.Int(9)) != nil {
		t.Error("Lookup(9) should be nil")
	}
}

func TestNullKeyRejected(t *testing.T) {
	tr := New()
	if err := tr.Insert(relation.Null(), 0); err == nil {
		t.Error("NULL key must be rejected")
	}
}

func TestAscendDescendLarge(t *testing.T) {
	const n = 10000
	rng := rand.New(rand.NewSource(42))
	tr := New()
	keys := make([]float64, n)
	for i := 0; i < n; i++ {
		keys[i] = rng.Float64()
		if err := tr.Insert(relation.Float(keys[i]), i); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() == 0 {
		t.Error("tree of 10k keys should have split")
	}
	sort.Float64s(keys)

	it := tr.Ascend()
	for i := 0; i < n; i++ {
		k, _, ok := it.Next()
		if !ok {
			t.Fatalf("ascend exhausted at %d", i)
		}
		if k.AsFloat() != keys[i] {
			t.Fatalf("ascend[%d] = %v, want %v", i, k.AsFloat(), keys[i])
		}
	}
	if _, _, ok := it.Next(); ok {
		t.Error("ascend should be exhausted")
	}

	it = tr.Descend()
	for i := n - 1; i >= 0; i-- {
		k, _, ok := it.Next()
		if !ok {
			t.Fatalf("descend exhausted at %d", i)
		}
		if k.AsFloat() != keys[i] {
			t.Fatalf("descend[%d] = %v, want %v", i, k.AsFloat(), keys[i])
		}
	}
	if _, _, ok := it.Next(); ok {
		t.Error("descend should be exhausted")
	}
}

func TestDuplicateKeysOrderedRids(t *testing.T) {
	tr := New()
	for rid := 0; rid < 500; rid++ {
		if err := tr.Insert(relation.Int(int64(rid%7)), rid); err != nil {
			t.Fatal(err)
		}
	}
	// Ascending iteration yields keys grouped, rids in insertion order.
	it := tr.Ascend()
	var lastKey int64 = -1
	lastRid := -1
	count := 0
	for {
		k, rid, ok := it.Next()
		if !ok {
			break
		}
		count++
		ki := k.AsInt()
		if ki < lastKey {
			t.Fatal("keys out of order")
		}
		if ki > lastKey {
			lastKey, lastRid = ki, -1
		}
		if rid <= lastRid {
			t.Fatalf("rids for key %d out of insertion order", ki)
		}
		lastRid = rid
	}
	if count != 500 {
		t.Fatalf("iterated %d pairs, want 500", count)
	}
}

func TestAscendFrom(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		if err := tr.Insert(relation.Int(int64(i*2)), i); err != nil {
			t.Fatal(err)
		}
	}
	// Start at 51 -> first key should be 52.
	it := tr.AscendFrom(relation.Int(51))
	k, _, ok := it.Next()
	if !ok || k.AsInt() != 52 {
		t.Fatalf("AscendFrom(51) first = %v", k)
	}
	// Start exactly at an existing key.
	it = tr.AscendFrom(relation.Int(50))
	k, _, _ = it.Next()
	if k.AsInt() != 50 {
		t.Fatalf("AscendFrom(50) first = %v", k)
	}
	// Past the end.
	it = tr.AscendFrom(relation.Int(1000))
	if _, _, ok := it.Next(); ok {
		t.Error("AscendFrom past end should be empty")
	}
}

func TestRange(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		if err := tr.Insert(relation.Int(int64(i)), i); err != nil {
			t.Fatal(err)
		}
	}
	var got []int64
	tr.Range(relation.Int(10), relation.Int(14), func(k relation.Value, rid int) bool {
		got = append(got, k.AsInt())
		return true
	})
	if len(got) != 5 || got[0] != 10 || got[4] != 14 {
		t.Fatalf("Range = %v", got)
	}
	// Early stop.
	n := 0
	tr.Range(relation.Int(0), relation.Int(49), func(relation.Value, int) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early-stop Range visited %d", n)
	}
}

func TestEmptyTreeIterators(t *testing.T) {
	tr := New()
	if _, _, ok := tr.Ascend().Next(); ok {
		t.Error("empty ascend")
	}
	if _, _, ok := tr.Descend().Next(); ok {
		t.Error("empty descend")
	}
	if tr.Lookup(relation.Int(1)) != nil {
		t.Error("empty lookup")
	}
}

// Property: for random inserts, lookups agree with a reference map and
// ascending iteration is sorted and complete.
func TestAgainstReferenceMap(t *testing.T) {
	f := func(seed int64, nSmall uint8) bool {
		n := int(nSmall)*10 + 1
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		ref := map[int64][]int{}
		for rid := 0; rid < n; rid++ {
			k := rng.Int63n(int64(n/4 + 1))
			if tr.Insert(relation.Int(k), rid) != nil {
				return false
			}
			ref[k] = append(ref[k], rid)
		}
		for k, rids := range ref {
			got := tr.Lookup(relation.Int(k))
			if len(got) != len(rids) {
				return false
			}
			for i := range got {
				if got[i] != rids[i] {
					return false
				}
			}
		}
		// Total count and order.
		it := tr.Ascend()
		prev := int64(-1 << 62)
		count := 0
		for {
			k, _, ok := it.Next()
			if !ok {
				break
			}
			if k.AsInt() < prev {
				return false
			}
			prev = k.AsInt()
			count++
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Descend yields exactly the reverse of Ascend.
func TestDescendIsReverseOfAscend(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		n := 300
		for rid := 0; rid < n; rid++ {
			if tr.Insert(relation.Float(float64(rng.Intn(40))), rid) != nil {
				return false
			}
		}
		type pair struct {
			k   float64
			rid int
		}
		var asc, desc []pair
		it := tr.Ascend()
		for {
			k, rid, ok := it.Next()
			if !ok {
				break
			}
			asc = append(asc, pair{k.AsFloat(), rid})
		}
		it = tr.Descend()
		for {
			k, rid, ok := it.Next()
			if !ok {
				break
			}
			desc = append(desc, pair{k.AsFloat(), rid})
		}
		if len(asc) != len(desc) {
			return false
		}
		for i := range asc {
			// Keys reverse exactly; rid order within a key may differ
			// between directions, so compare keys only.
			if asc[i].k != desc[len(desc)-1-i].k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	tr := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Insert(relation.Float(rng.Float64()), i)
	}
}

func BenchmarkLookup(b *testing.B) {
	tr := New()
	for i := 0; i < 100000; i++ {
		_ = tr.Insert(relation.Int(int64(i)), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(relation.Int(int64(i % 100000)))
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	for i := 0; i < 200; i++ {
		if err := tr.Insert(relation.Int(int64(i%20)), i); err != nil {
			t.Fatal(err)
		}
	}
	if !tr.Delete(relation.Int(3), 3) {
		t.Fatal("delete of present pair should succeed")
	}
	if tr.Delete(relation.Int(3), 3) {
		t.Fatal("double delete should fail")
	}
	if tr.Delete(relation.Int(999), 0) {
		t.Fatal("delete of absent key should fail")
	}
	if tr.Delete(relation.Null(), 0) {
		t.Fatal("delete of NULL key should fail")
	}
	if tr.Len() != 199 {
		t.Fatalf("Len = %d", tr.Len())
	}
	rids := tr.Lookup(relation.Int(3))
	for _, r := range rids {
		if r == 3 {
			t.Fatal("rid 3 still present")
		}
	}
	if len(rids) != 9 {
		t.Fatalf("key 3 holds %d rids", len(rids))
	}
}

func TestDeleteKey(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		if err := tr.Insert(relation.Int(int64(i%10)), i); err != nil {
			t.Fatal(err)
		}
	}
	if n := tr.DeleteKey(relation.Int(7)); n != 10 {
		t.Fatalf("DeleteKey removed %d", n)
	}
	if tr.Lookup(relation.Int(7)) != nil {
		t.Fatal("key 7 still present")
	}
	if tr.Len() != 90 || tr.DistinctKeys() != 9 {
		t.Fatalf("Len=%d keys=%d", tr.Len(), tr.DistinctKeys())
	}
	if n := tr.DeleteKey(relation.Int(7)); n != 0 {
		t.Fatal("second DeleteKey should remove nothing")
	}
	if tr.DeleteKey(relation.Null()) != 0 {
		t.Fatal("NULL DeleteKey should remove nothing")
	}
}

func TestIterationSkipsEmptiedLeaves(t *testing.T) {
	tr := New()
	const n = 1000
	for i := 0; i < n; i++ {
		if err := tr.Insert(relation.Int(int64(i)), i); err != nil {
			t.Fatal(err)
		}
	}
	// Empty out a whole band of keys, spanning at least one full leaf.
	for i := 100; i < 300; i++ {
		if n := tr.DeleteKey(relation.Int(int64(i))); n != 1 {
			t.Fatalf("DeleteKey(%d) = %d", i, n)
		}
	}
	count := 0
	prev := int64(-1)
	it := tr.Ascend()
	for {
		k, _, ok := it.Next()
		if !ok {
			break
		}
		ki := k.AsInt()
		if ki >= 100 && ki < 300 {
			t.Fatalf("deleted key %d appeared", ki)
		}
		if ki <= prev {
			t.Fatal("ascend out of order after deletes")
		}
		prev = ki
		count++
	}
	if count != 800 {
		t.Fatalf("ascend visited %d, want 800", count)
	}
	// Descending too.
	it = tr.Descend()
	count = 0
	for {
		k, _, ok := it.Next()
		if !ok {
			break
		}
		if ki := k.AsInt(); ki >= 100 && ki < 300 {
			t.Fatalf("deleted key %d appeared descending", ki)
		}
		count++
	}
	if count != 800 {
		t.Fatalf("descend visited %d, want 800", count)
	}
}

// Property: interleaved inserts and deletes agree with a reference map.
func TestInsertDeleteAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		ref := map[int64]map[int]bool{}
		rid := 0
		for op := 0; op < 600; op++ {
			k := int64(rng.Intn(30))
			if rng.Intn(3) > 0 { // 2/3 inserts
				if tr.Insert(relation.Int(k), rid) != nil {
					return false
				}
				if ref[k] == nil {
					ref[k] = map[int]bool{}
				}
				ref[k][rid] = true
				rid++
			} else if len(ref[k]) > 0 {
				// Delete one known rid.
				var victim int
				for r := range ref[k] {
					victim = r
					break
				}
				if !tr.Delete(relation.Int(k), victim) {
					return false
				}
				delete(ref[k], victim)
			}
		}
		total := 0
		for k, rids := range ref {
			got := tr.Lookup(relation.Int(k))
			if len(got) != len(rids) {
				return false
			}
			for _, r := range got {
				if !rids[r] {
					return false
				}
			}
			total += len(rids)
		}
		return tr.Len() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

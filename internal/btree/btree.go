// Package btree implements an in-memory B+tree keyed by relation.Value,
// mapping each key to the row ids (heap positions) that carry it. It backs
// the engine's index access paths: ordered score scans for rank-join inputs
// and point lookups for index nested-loops joins.
package btree

import (
	"fmt"

	"rankopt/internal/relation"
)

// degree is the maximum number of keys per node. Chosen small enough to
// exercise splits in tests yet realistic for an in-memory tree.
const degree = 64

// Tree is a B+tree from Value keys to row-id lists. Duplicate keys are
// supported: all row ids for equal keys live in one leaf entry.
type Tree struct {
	root   node
	height int
	size   int // number of (key,rid) pairs
	keys   int // number of distinct keys
}

type node interface {
	// insert adds rid under key, returning a new right sibling and its
	// separator key if the node split.
	insert(key relation.Value, rid int) (sep relation.Value, right node, split bool)
	// firstLeaf / lastLeaf return the extreme leaves under this node.
	firstLeaf() *leaf
	lastLeaf() *leaf
	// seek returns the leaf that may contain key and the entry index of the
	// first entry with entry.key >= key (possibly == len(entries), meaning
	// continue in the next leaf).
	seek(key relation.Value) (*leaf, int)
}

type leaf struct {
	entries    []entry
	next, prev *leaf
}

type entry struct {
	key  relation.Value
	rids []int
}

type inner struct {
	// keys[i] separates children[i] (keys < keys[i]) from children[i+1]
	// (keys >= keys[i]).
	keys     []relation.Value
	children []node
}

// New creates an empty tree.
func New() *Tree { return &Tree{root: &leaf{}} }

// Len returns the number of (key, rid) pairs stored.
func (t *Tree) Len() int { return t.size }

// DistinctKeys returns the number of distinct keys stored.
func (t *Tree) DistinctKeys() int { return t.keys }

// Height returns the number of levels below the root (0 for a lone leaf).
func (t *Tree) Height() int { return t.height }

// Insert adds a (key, rid) pair. NULL keys are rejected: SQL indexes do not
// index NULLs in this engine.
func (t *Tree) Insert(key relation.Value, rid int) error {
	if key.IsNull() {
		return fmt.Errorf("btree: cannot index NULL key")
	}
	before := t.countsProbe(key)
	sep, right, split := t.root.insert(key, rid)
	if split {
		t.root = &inner{keys: []relation.Value{sep}, children: []node{t.root, right}}
		t.height++
	}
	t.size++
	if !before {
		t.keys++
	}
	return nil
}

// countsProbe reports whether key already exists.
func (t *Tree) countsProbe(key relation.Value) bool {
	l, i := t.root.seek(key)
	if l == nil || i >= len(l.entries) {
		return false
	}
	return l.entries[i].key.Equal(key)
}

// Delete removes one (key, rid) pair, reporting whether it was present.
// Leaves are allowed to underflow: this tree serves an in-memory,
// append-mostly index, so structural rebalancing is deliberately lazy —
// iterators skip empty leaves and lookups tolerate them. An index with heavy
// churn should be rebuilt via the catalog.
func (t *Tree) Delete(key relation.Value, rid int) bool {
	if key.IsNull() {
		return false
	}
	l, i := t.root.seek(key)
	if l == nil || i >= len(l.entries) || !l.entries[i].key.Equal(key) {
		return false
	}
	rids := l.entries[i].rids
	for j, r := range rids {
		if r == rid {
			l.entries[i].rids = append(rids[:j], rids[j+1:]...)
			t.size--
			if len(l.entries[i].rids) == 0 {
				l.entries = append(l.entries[:i], l.entries[i+1:]...)
				t.keys--
			}
			return true
		}
	}
	return false
}

// DeleteKey removes every rid stored under key, returning how many were
// removed.
func (t *Tree) DeleteKey(key relation.Value) int {
	if key.IsNull() {
		return 0
	}
	l, i := t.root.seek(key)
	if l == nil || i >= len(l.entries) || !l.entries[i].key.Equal(key) {
		return 0
	}
	n := len(l.entries[i].rids)
	l.entries = append(l.entries[:i], l.entries[i+1:]...)
	t.size -= n
	t.keys--
	return n
}

// Lookup returns the row ids stored under key (nil if absent).
func (t *Tree) Lookup(key relation.Value) []int {
	l, i := t.root.seek(key)
	if l == nil || i >= len(l.entries) || !l.entries[i].key.Equal(key) {
		return nil
	}
	return l.entries[i].rids
}

// leaf methods

func (l *leaf) firstLeaf() *leaf { return l }
func (l *leaf) lastLeaf() *leaf  { return l }

func (l *leaf) seek(key relation.Value) (*leaf, int) {
	lo, hi := 0, len(l.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.entries[mid].key.Compare(key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return l, lo
}

func (l *leaf) insert(key relation.Value, rid int) (relation.Value, node, bool) {
	_, i := l.seek(key)
	if i < len(l.entries) && l.entries[i].key.Equal(key) {
		l.entries[i].rids = append(l.entries[i].rids, rid)
		return relation.Value{}, nil, false
	}
	l.entries = append(l.entries, entry{})
	copy(l.entries[i+1:], l.entries[i:])
	l.entries[i] = entry{key: key, rids: []int{rid}}
	if len(l.entries) <= degree {
		return relation.Value{}, nil, false
	}
	// Split.
	mid := len(l.entries) / 2
	right := &leaf{entries: append([]entry(nil), l.entries[mid:]...)}
	l.entries = l.entries[:mid]
	right.next = l.next
	right.prev = l
	if l.next != nil {
		l.next.prev = right
	}
	l.next = right
	return right.entries[0].key, right, true
}

// inner methods

func (n *inner) firstLeaf() *leaf { return n.children[0].firstLeaf() }
func (n *inner) lastLeaf() *leaf  { return n.children[len(n.children)-1].lastLeaf() }

func (n *inner) childFor(key relation.Value) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid].Compare(key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (n *inner) seek(key relation.Value) (*leaf, int) {
	return n.children[n.childFor(key)].seek(key)
}

func (n *inner) insert(key relation.Value, rid int) (relation.Value, node, bool) {
	ci := n.childFor(key)
	sep, right, split := n.children[ci].insert(key, rid)
	if !split {
		return relation.Value{}, nil, false
	}
	n.keys = append(n.keys, relation.Value{})
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sep
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
	if len(n.keys) <= degree {
		return relation.Value{}, nil, false
	}
	mid := len(n.keys) / 2
	sepUp := n.keys[mid]
	r := &inner{
		keys:     append([]relation.Value(nil), n.keys[mid+1:]...),
		children: append([]node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return sepUp, r, true
}

// Iterator walks (key, rid) pairs in ascending or descending key order.
// Within one key, rids are returned in insertion order.
type Iterator struct {
	leaf    *leaf
	entry   int
	ridIdx  int
	forward bool
	done    bool
}

// Ascend returns an iterator over all pairs in ascending key order.
func (t *Tree) Ascend() *Iterator {
	l := t.root.firstLeaf()
	it := &Iterator{leaf: l, forward: true}
	it.normalize()
	return it
}

// Descend returns an iterator over all pairs in descending key order.
func (t *Tree) Descend() *Iterator {
	l := t.root.lastLeaf()
	it := &Iterator{leaf: l, forward: false}
	if len(l.entries) == 0 {
		it.done = true
		return it
	}
	it.entry = len(l.entries) - 1
	it.ridIdx = len(l.entries[it.entry].rids) - 1
	return it
}

// AscendFrom returns an ascending iterator positioned at the first key
// >= key.
func (t *Tree) AscendFrom(key relation.Value) *Iterator {
	l, i := t.root.seek(key)
	it := &Iterator{leaf: l, entry: i, forward: true}
	it.normalize()
	return it
}

// normalize advances past exhausted leaves (forward direction).
func (it *Iterator) normalize() {
	for it.leaf != nil && it.entry >= len(it.leaf.entries) {
		it.leaf = it.leaf.next
		it.entry = 0
	}
	if it.leaf == nil {
		it.done = true
	}
}

// Next returns the next (key, rid) pair. ok is false when exhausted.
func (it *Iterator) Next() (key relation.Value, rid int, ok bool) {
	if it.done {
		return relation.Value{}, 0, false
	}
	e := it.leaf.entries[it.entry]
	key, rid = e.key, e.rids[it.ridIdx]
	if it.forward {
		it.ridIdx++
		if it.ridIdx >= len(e.rids) {
			it.ridIdx = 0
			it.entry++
			it.normalize()
		}
	} else {
		it.ridIdx--
		if it.ridIdx < 0 {
			it.entry--
			for it.entry < 0 {
				it.leaf = it.leaf.prev
				if it.leaf == nil {
					it.done = true
					return key, rid, true
				}
				it.entry = len(it.leaf.entries) - 1
			}
			it.ridIdx = len(it.leaf.entries[it.entry].rids) - 1
		}
	}
	return key, rid, true
}

// Range calls fn for each pair with lo <= key <= hi in ascending order.
// fn returning false stops the scan.
func (t *Tree) Range(lo, hi relation.Value, fn func(key relation.Value, rid int) bool) {
	it := t.AscendFrom(lo)
	for {
		k, rid, ok := it.Next()
		if !ok || k.Compare(hi) > 0 {
			return
		}
		if !fn(k, rid) {
			return
		}
	}
}

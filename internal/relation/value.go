// Package relation defines the fundamental data model of the engine:
// typed values, tuples, schemas, and in-memory relations with page-granular
// accounting. Every other layer (expressions, operators, the optimizer)
// builds on these types.
package relation

import (
	"fmt"
	"strconv"
)

// Kind enumerates the value types supported by the engine.
type Kind uint8

// Supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a tagged union holding a single scalar value. The zero Value is
// NULL. Values are small and passed by value throughout the engine.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a double-precision value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String_ returns a string value. The underscore avoids clashing with the
// fmt.Stringer method.
func String_(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Kind reports the value's type tag.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. It panics unless Kind is KindInt or
// KindBool.
func (v Value) AsInt() int64 {
	if v.kind != KindInt && v.kind != KindBool {
		panic(fmt.Sprintf("relation: AsInt on %s value", v.kind))
	}
	return v.i
}

// AsFloat returns the value coerced to float64. Integers widen; other kinds
// panic.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	default:
		panic(fmt.Sprintf("relation: AsFloat on %s value", v.kind))
	}
}

// AsString returns the string payload. It panics unless Kind is KindString.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("relation: AsString on %s value", v.kind))
	}
	return v.s
}

// AsBool returns the boolean payload. It panics unless Kind is KindBool.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("relation: AsBool on %s value", v.kind))
	}
	return v.i != 0
}

// Numeric reports whether the value is an int or float.
func (v Value) Numeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Float64 returns the numeric payload widened to float64, or ok=false for
// non-numeric kinds. Unlike AsFloat it never panics and stays within the
// inlining budget, so vectorized kernels (batch filters, hash-join probes)
// can read values without a function call per tuple.
func (v Value) Float64() (float64, bool) {
	if v.kind == KindFloat {
		return v.f, true
	}
	if v.kind == KindInt {
		return float64(v.i), true
	}
	return 0, false
}

// Comparable reports whether Compare is defined for this pair of kinds:
// anything against NULL, numeric against numeric, otherwise same kind only.
// Callers evaluating untrusted expressions (constant folding over user SQL)
// must check this before calling Compare, which panics on cross-kind pairs.
func (v Value) Comparable(o Value) bool {
	if v.kind == KindNull || o.kind == KindNull {
		return true
	}
	if v.Numeric() && o.Numeric() {
		return true
	}
	return v.kind == o.kind
}

// Compare orders two values. NULL sorts before everything; numeric kinds
// compare by numeric value; strings lexicographically; bools false<true.
// Comparing a numeric against a non-numeric (or string against bool) panics:
// the planner type-checks expressions before execution, so a cross-kind
// comparison reaching here is an engine bug.
func (v Value) Compare(o Value) int {
	if v.kind == KindNull || o.kind == KindNull {
		switch {
		case v.kind == o.kind:
			return 0
		case v.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if v.Numeric() && o.Numeric() {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.kind != o.kind {
		panic(fmt.Sprintf("relation: comparing %s against %s", v.kind, o.kind))
	}
	switch v.kind {
	case KindString:
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		default:
			return 0
		}
	case KindBool:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		default:
			return 0
		}
	default:
		panic(fmt.Sprintf("relation: comparing %s values", v.kind))
	}
}

// Equal reports whether two values compare equal.
func (v Value) Equal(o Value) bool {
	if v.kind == KindNull || o.kind == KindNull {
		return v.kind == o.kind
	}
	if !v.Comparable(o) {
		return false
	}
	return v.Compare(o) == 0
}

// String renders the value for display and plan output.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "'" + v.s + "'"
	case KindBool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	default:
		return fmt.Sprintf("Value(kind=%d)", v.kind)
	}
}

// HashKey returns a value suitable for use as a Go map key that respects
// Equal: two values that Equal share a HashKey. Numeric values normalize to
// their float64 representation so Int(3) and Float(3) collide as required.
func (v Value) HashKey() any {
	switch v.kind {
	case KindNull:
		return nil
	case KindInt:
		return float64(v.i)
	case KindFloat:
		return v.f
	case KindString:
		return v.s
	case KindBool:
		return v.i != 0
	default:
		panic(fmt.Sprintf("relation: HashKey on %s value", v.kind))
	}
}

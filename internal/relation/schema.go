package relation

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a schema. Table holds the qualifier
// (table name or alias); it may be empty for computed columns.
type Column struct {
	Table string
	Name  string
	Kind  Kind
}

// QualifiedName returns "table.name", or just "name" when unqualified.
func (c Column) QualifiedName() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Schema is an ordered list of columns describing tuples produced by a
// relation or operator. Schemas are immutable after construction.
type Schema struct {
	cols []Column
	// byName caches qualified-name lookups; built lazily on first resolve.
	byName map[string]int
}

// NewSchema builds a schema from the given columns.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{cols: append([]Column(nil), cols...)}
	s.buildIndex()
	return s
}

func (s *Schema) buildIndex() {
	s.byName = make(map[string]int, len(s.cols))
	for i, c := range s.cols {
		s.byName[c.QualifiedName()] = i
	}
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Column returns the i-th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Resolve finds the position of a column reference. A qualified reference
// ("A.c1") must match exactly. An unqualified reference ("c1") matches if it
// is unambiguous across the schema. Returns -1 if not found or ambiguous is
// non-nil error.
func (s *Schema) Resolve(table, name string) (int, error) {
	if table != "" {
		if i, ok := s.byName[table+"."+name]; ok {
			return i, nil
		}
		return -1, fmt.Errorf("relation: column %s.%s not found in schema %s", table, name, s)
	}
	found := -1
	for i, c := range s.cols {
		if c.Name == name {
			if found >= 0 {
				return -1, fmt.Errorf("relation: column %q is ambiguous in schema %s", name, s)
			}
			found = i
		}
	}
	if found < 0 {
		return -1, fmt.Errorf("relation: column %q not found in schema %s", name, s)
	}
	return found, nil
}

// Concat returns a new schema holding this schema's columns followed by o's.
func (s *Schema) Concat(o *Schema) *Schema {
	cols := make([]Column, 0, len(s.cols)+len(o.cols))
	cols = append(cols, s.cols...)
	cols = append(cols, o.cols...)
	return NewSchema(cols...)
}

// Project returns a new schema containing only the columns at idxs, in order.
func (s *Schema) Project(idxs []int) *Schema {
	cols := make([]Column, len(idxs))
	for i, j := range idxs {
		cols[i] = s.cols[j]
	}
	return NewSchema(cols...)
}

// HasTable reports whether any column is qualified by the given table name.
func (s *Schema) HasTable(table string) bool {
	for _, c := range s.cols {
		if c.Table == table {
			return true
		}
	}
	return false
}

// String renders the schema as "(A.c1 INTEGER, A.c2 DOUBLE)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.QualifiedName())
		b.WriteByte(' ')
		b.WriteString(c.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Tuple is a row of values positionally matching some schema.
type Tuple []Value

// Concat returns a new tuple holding t's values followed by o's.
func (t Tuple) Concat(o Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(o))
	out = append(out, t...)
	out = append(out, o...)
	return out
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// String renders the tuple as "[v1, v2, ...]".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

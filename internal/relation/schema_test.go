package relation

import "testing"

func twoTableSchema() *Schema {
	return NewSchema(
		Column{Table: "A", Name: "c1", Kind: KindFloat},
		Column{Table: "A", Name: "c2", Kind: KindInt},
		Column{Table: "B", Name: "c1", Kind: KindFloat},
	)
}

func TestSchemaResolveQualified(t *testing.T) {
	s := twoTableSchema()
	i, err := s.Resolve("B", "c1")
	if err != nil || i != 2 {
		t.Fatalf("Resolve(B.c1) = %d, %v", i, err)
	}
	if _, err := s.Resolve("C", "c1"); err == nil {
		t.Error("Resolve(C.c1) should fail")
	}
}

func TestSchemaResolveUnqualified(t *testing.T) {
	s := twoTableSchema()
	if i, err := s.Resolve("", "c2"); err != nil || i != 1 {
		t.Fatalf("Resolve(c2) = %d, %v", i, err)
	}
	if _, err := s.Resolve("", "c1"); err == nil {
		t.Error("Resolve(c1) should be ambiguous")
	}
	if _, err := s.Resolve("", "zz"); err == nil {
		t.Error("Resolve(zz) should fail")
	}
}

func TestSchemaConcatAndProject(t *testing.T) {
	s := twoTableSchema()
	o := NewSchema(Column{Table: "C", Name: "c2", Kind: KindString})
	cat := s.Concat(o)
	if cat.Len() != 4 {
		t.Fatalf("Concat len = %d", cat.Len())
	}
	if i, err := cat.Resolve("C", "c2"); err != nil || i != 3 {
		t.Fatalf("Resolve(C.c2) in concat = %d, %v", i, err)
	}
	p := cat.Project([]int{3, 0})
	if p.Len() != 2 || p.Column(0).Table != "C" || p.Column(1).Name != "c1" {
		t.Fatalf("Project produced %s", p)
	}
}

func TestSchemaHasTableAndString(t *testing.T) {
	s := twoTableSchema()
	if !s.HasTable("A") || s.HasTable("Z") {
		t.Error("HasTable mismatch")
	}
	want := "(A.c1 DOUBLE, A.c2 INTEGER, B.c1 DOUBLE)"
	if s.String() != want {
		t.Errorf("String() = %q, want %q", s.String(), want)
	}
}

func TestTupleOps(t *testing.T) {
	a := Tuple{Int(1), Float(2)}
	b := Tuple{String_("x")}
	c := a.Concat(b)
	if len(c) != 3 || c[2].AsString() != "x" {
		t.Fatal("Concat failed")
	}
	cl := a.Clone()
	cl[0] = Int(99)
	if a[0].AsInt() != 1 {
		t.Error("Clone should not alias")
	}
	if a.String() != "[1, 2]" {
		t.Errorf("Tuple.String = %q", a.String())
	}
}

func TestRelationBasics(t *testing.T) {
	s := NewSchema(Column{Table: "T", Name: "k", Kind: KindInt})
	r := New("T", s)
	r.PageSize = 10
	for i := 0; i < 25; i++ {
		r.MustAppend(Tuple{Int(int64(i))})
	}
	if r.Cardinality() != 25 {
		t.Fatalf("Cardinality = %d", r.Cardinality())
	}
	if r.Pages() != 3 {
		t.Fatalf("Pages = %d, want 3", r.Pages())
	}
	if err := r.Append(Tuple{Int(1), Int(2)}); err == nil {
		t.Error("arity mismatch should fail")
	}
	sorted := r.SortedBy(func(a, b Tuple) bool { return a[0].AsInt() > b[0].AsInt() })
	if sorted[0][0].AsInt() != 24 {
		t.Error("SortedBy descending failed")
	}
	if r.Tuple(0)[0].AsInt() != 0 {
		t.Error("SortedBy must not mutate the relation")
	}
}

func TestRelationRename(t *testing.T) {
	s := NewSchema(Column{Table: "T", Name: "k", Kind: KindInt})
	r := New("T", s)
	r.MustAppend(Tuple{Int(5)})
	v := r.Rename("X")
	if _, err := v.Schema().Resolve("X", "k"); err != nil {
		t.Fatalf("renamed schema: %v", err)
	}
	if v.Cardinality() != 1 || v.Tuple(0)[0].AsInt() != 5 {
		t.Error("rename should share tuples")
	}
}

func TestRelationPagesEdge(t *testing.T) {
	s := NewSchema(Column{Name: "k", Kind: KindInt})
	r := New("E", s)
	if r.Pages() != 0 {
		t.Error("empty relation has 0 pages")
	}
	r.PageSize = 0 // falls back to default
	r.MustAppend(Tuple{Int(1)})
	if r.Pages() != 1 {
		t.Error("one tuple occupies one page")
	}
}

package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{Int(7), KindInt},
		{Float(3.5), KindFloat},
		{String_("x"), KindString},
		{Bool(true), KindBool},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("Kind() = %v, want %v", c.v.Kind(), c.kind)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if Int(42).AsInt() != 42 {
		t.Error("AsInt failed")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("AsFloat failed")
	}
	if Int(3).AsFloat() != 3.0 {
		t.Error("AsFloat should widen ints")
	}
	if String_("hi").AsString() != "hi" {
		t.Error("AsString failed")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("AsBool failed")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("AsInt on string", func() { String_("x").AsInt() })
	mustPanic("AsFloat on bool", func() { Bool(true).AsFloat() })
	mustPanic("AsString on int", func() { Int(1).AsString() })
	mustPanic("AsBool on float", func() { Float(1).AsBool() })
	mustPanic("compare string vs bool", func() { String_("x").Compare(Bool(true)) })
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Float(1.5), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{Float(2), Int(2), 0},
		{String_("a"), String_("b"), -1},
		{String_("b"), String_("b"), 0},
		{Bool(false), Bool(true), -1},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Null(), Null(), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueEqualAndHashKeyAgree(t *testing.T) {
	// Property: Equal values must share a HashKey; this is what hash joins
	// rely on.
	f := func(a, b int64) bool {
		va, vb := Int(a), Float(float64(b))
		if va.Equal(vb) != (va.HashKey() == vb.HashKey()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Int(3).HashKey() != Float(3).HashKey() {
		t.Error("Int(3) and Float(3) must share a hash key")
	}
	if Null().HashKey() != nil {
		t.Error("Null hash key should be nil")
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]Value, 200)
	for i := range vals {
		switch rng.Intn(3) {
		case 0:
			vals[i] = Int(rng.Int63n(20))
		case 1:
			vals[i] = Float(float64(rng.Intn(20)))
		default:
			vals[i] = Null()
		}
	}
	for _, a := range vals {
		for _, b := range vals {
			if a.Compare(b) != -b.Compare(a) {
				t.Fatalf("Compare not antisymmetric for %v, %v", a, b)
			}
		}
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(-5), "-5"},
		{Float(0.25), "0.25"},
		{String_("ab"), "'ab'"},
		{Bool(true), "TRUE"},
		{Bool(false), "FALSE"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindInt.String() != "INTEGER" || KindFloat.String() != "DOUBLE" {
		t.Error("Kind.String mismatch")
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind should render something")
	}
}

package relation

import (
	"fmt"
	"sort"
)

// DefaultPageSize is the number of tuples per simulated disk page. The cost
// model and the buffer-pool accounting both use page granularity, mirroring
// the paper's page-based I/O cost estimates.
const DefaultPageSize = 100

// Relation is an in-memory table: a schema plus a slice of tuples. It plays
// the role of a heap file; access paths (indexes) are layered on top by the
// catalog. PageSize controls simulated page granularity.
type Relation struct {
	Name     string
	schema   *Schema
	tuples   []Tuple
	PageSize int
}

// New creates an empty relation with the given name and schema.
func New(name string, schema *Schema) *Relation {
	return &Relation{Name: name, schema: schema, PageSize: DefaultPageSize}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Append adds a tuple. The tuple must match the schema arity.
func (r *Relation) Append(t Tuple) error {
	if len(t) != r.schema.Len() {
		return fmt.Errorf("relation: tuple arity %d does not match schema %s", len(t), r.schema)
	}
	r.tuples = append(r.tuples, t)
	return nil
}

// MustAppend is Append that panics on arity mismatch; used by generators and
// tests where the schema is statically known.
func (r *Relation) MustAppend(t Tuple) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// Cardinality returns the number of tuples.
func (r *Relation) Cardinality() int { return len(r.tuples) }

// Pages returns the number of simulated disk pages occupied.
func (r *Relation) Pages() int {
	ps := r.PageSize
	if ps <= 0 {
		ps = DefaultPageSize
	}
	if len(r.tuples) == 0 {
		return 0
	}
	return (len(r.tuples) + ps - 1) / ps
}

// Tuple returns the i-th tuple (heap order).
func (r *Relation) Tuple(i int) Tuple { return r.tuples[i] }

// Tuples returns the underlying tuple slice. Callers must not mutate it.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// SortedBy returns a new slice of the relation's tuples sorted by the given
// less function. The relation itself is unchanged.
func (r *Relation) SortedBy(less func(a, b Tuple) bool) []Tuple {
	out := make([]Tuple, len(r.tuples))
	copy(out, r.tuples)
	sort.SliceStable(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// Rename returns a shallow view of the relation under a new name, with every
// schema column requalified to the alias. Tuples are shared.
func (r *Relation) Rename(alias string) *Relation {
	cols := r.schema.Columns()
	for i := range cols {
		cols[i].Table = alias
	}
	return &Relation{Name: alias, schema: NewSchema(cols...), tuples: r.tuples, PageSize: r.PageSize}
}

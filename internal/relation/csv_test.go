package relation

import (
	"bytes"
	"strings"
	"testing"
)

func csvFixture() *Relation {
	sch := NewSchema(
		Column{Table: "R", Name: "name", Kind: KindString},
		Column{Table: "R", Name: "city_id", Kind: KindInt},
		Column{Table: "R", Name: "rating", Kind: KindFloat},
		Column{Table: "R", Name: "open", Kind: KindBool},
	)
	r := New("R", sch)
	r.MustAppend(Tuple{String_("alpha"), Int(1), Float(4.5), Bool(true)})
	r.MustAppend(Tuple{String_("beta"), Int(2), Float(3.25), Bool(false)})
	r.MustAppend(Tuple{String_("gamma"), Null(), Null(), Bool(true)})
	return r
}

func TestCSVRoundTrip(t *testing.T) {
	orig := csvFixture()
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "R")
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != orig.Cardinality() {
		t.Fatalf("cardinality %d, want %d", got.Cardinality(), orig.Cardinality())
	}
	if got.Schema().String() != orig.Schema().String() {
		t.Fatalf("schema %s, want %s", got.Schema(), orig.Schema())
	}
	for i := 0; i < orig.Cardinality(); i++ {
		for j := range orig.Tuple(i) {
			if !got.Tuple(i)[j].Equal(orig.Tuple(i)[j]) {
				t.Fatalf("row %d col %d: %v, want %v", i, j, got.Tuple(i)[j], orig.Tuple(i)[j])
			}
		}
	}
}

func TestReadCSVHandAuthored(t *testing.T) {
	src := `name:STRING,city:INT,rating:FLOAT
le bistro,3,4.8
pizza pit,3,3.9
`
	rel, err := ReadCSV(strings.NewReader(src), "Restaurants")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() != 2 {
		t.Fatalf("rows = %d", rel.Cardinality())
	}
	if _, err := rel.Schema().Resolve("Restaurants", "rating"); err != nil {
		t.Fatal(err)
	}
	if rel.Tuple(0)[0].AsString() != "le bistro" || rel.Tuple(1)[2].AsFloat() != 3.9 {
		t.Fatal("values mismatch")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"no kind":     "name,city\nx,1\n",
		"bad kind":    "name:BLOB\nx\n",
		"bad int":     "n:INT\nxyz\n",
		"bad float":   "f:FLOAT\nab\n",
		"bad bool":    "b:BOOL\nmaybe\n",
		"ragged rows": "a:INT,b:INT\n1\n",
		"empty input": "",
	}
	for name, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src), "T"); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestCSVNullsRoundTrip(t *testing.T) {
	src := "x:INT,y:FLOAT\n,\n5,1.5\n"
	rel, err := ReadCSV(strings.NewReader(src), "N")
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Tuple(0)[0].IsNull() || !rel.Tuple(0)[1].IsNull() {
		t.Fatal("empty cells must decode as NULL")
	}
	var buf bytes.Buffer
	if err := rel.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	again, err := ReadCSV(&buf, "N")
	if err != nil {
		t.Fatal(err)
	}
	if !again.Tuple(0)[0].IsNull() || again.Tuple(1)[0].AsInt() != 5 {
		t.Fatal("NULL round trip failed")
	}
}

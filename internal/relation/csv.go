package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV serializes the relation: a header row of "name:KIND" cells
// followed by one row per tuple. NULLs serialize as empty cells (so string
// columns cannot round-trip empty strings — a documented limitation).
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	sch := r.Schema()
	header := make([]string, sch.Len())
	for i := 0; i < sch.Len(); i++ {
		c := sch.Column(i)
		header[i] = c.Name + ":" + c.Kind.String()
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, sch.Len())
	for _, tup := range r.Tuples() {
		for i, v := range tup {
			row[i] = encodeValue(v)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func encodeValue(v Value) string {
	switch v.Kind() {
	case KindNull:
		return ""
	case KindInt:
		return strconv.FormatInt(v.AsInt(), 10)
	case KindFloat:
		return strconv.FormatFloat(v.AsFloat(), 'g', -1, 64)
	case KindString:
		return v.AsString()
	case KindBool:
		if v.AsBool() {
			return "true"
		}
		return "false"
	}
	return ""
}

// ReadCSV parses a relation written by WriteCSV (or hand-authored in the
// same format), qualifying every column with the given table name.
func ReadCSV(rd io.Reader, name string) (*Relation, error) {
	cr := csv.NewReader(rd)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	cols := make([]Column, len(header))
	for i, h := range header {
		parts := strings.SplitN(h, ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("relation: header cell %q lacks a :KIND suffix", h)
		}
		kind, err := parseKind(parts[1])
		if err != nil {
			return nil, err
		}
		cols[i] = Column{Table: name, Name: strings.TrimSpace(parts[0]), Kind: kind}
	}
	rel := New(name, NewSchema(cols...))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: CSV line %d: %w", line, err)
		}
		tup := make(Tuple, len(cols))
		for i, cell := range rec {
			v, err := decodeValue(cell, cols[i].Kind)
			if err != nil {
				return nil, fmt.Errorf("relation: CSV line %d column %s: %w", line, cols[i].Name, err)
			}
			tup[i] = v
		}
		if err := rel.Append(tup); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

func parseKind(s string) (Kind, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "INTEGER", "INT":
		return KindInt, nil
	case "DOUBLE", "FLOAT":
		return KindFloat, nil
	case "VARCHAR", "STRING", "TEXT":
		return KindString, nil
	case "BOOLEAN", "BOOL":
		return KindBool, nil
	default:
		return KindNull, fmt.Errorf("relation: unknown column kind %q", s)
	}
}

func decodeValue(cell string, kind Kind) (Value, error) {
	if cell == "" {
		return Null(), nil
	}
	switch kind {
	case KindInt:
		i, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return Null(), err
		}
		return Int(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return Null(), err
		}
		return Float(f), nil
	case KindString:
		return String_(cell), nil
	case KindBool:
		b, err := strconv.ParseBool(cell)
		if err != nil {
			return Null(), err
		}
		return Bool(b), nil
	}
	return Null(), fmt.Errorf("cannot decode into kind %v", kind)
}

package relation

import "fmt"

// PartitionBy splits the relation into n shard views using assign, which maps
// each tuple to its shard in [0, n). Shard relations share the original
// tuples (and values) — only the per-shard tuple-header slices are new — so
// partitioning a large heap costs one pass and n slice headers, not a data
// copy. Every shard keeps the parent's name, schema, and page size, so
// catalogs built over the shards resolve the same table and column names the
// parent catalog does.
func (r *Relation) PartitionBy(n int, assign func(Tuple) int) ([]*Relation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("relation: partition count %d must be positive", n)
	}
	shards := make([]*Relation, n)
	for i := range shards {
		shards[i] = &Relation{Name: r.Name, schema: r.schema, PageSize: r.PageSize}
	}
	for _, t := range r.tuples {
		s := assign(t)
		if s < 0 || s >= n {
			return nil, fmt.Errorf("relation: partition function returned shard %d outside [0,%d)", s, n)
		}
		shards[s].tuples = append(shards[s].tuples, t)
	}
	return shards, nil
}

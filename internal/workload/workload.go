// Package workload generates the synthetic datasets used by the examples,
// tests, and the experiment harness. It substitutes for the paper's video
// corpus: relations with uniformly distributed score attributes (matching
// the Section 4 modeling assumption), join-key attributes whose domain size
// controls join selectivity, and a multi-feature object corpus mirroring the
// paper's ColorHist/ColorLayout/Texture/Edges similarity inputs.
package workload

import (
	"fmt"
	"math/rand"

	"rankopt/internal/catalog"
	"rankopt/internal/relation"
)

// ScoreDist selects the score distribution of a generated relation. The
// Section 4 estimation model assumes uniform scores; the alternatives exist
// to measure how gracefully the model degrades (a robustness ablation the
// paper's synthetic setup cannot ask).
type ScoreDist uint8

const (
	// DistUniform draws scores uniformly over the range (the model's
	// assumption).
	DistUniform ScoreDist = iota
	// DistGaussian draws from a normal centered mid-range (σ = range/6),
	// clipped to the range: dense middle, thin tails.
	DistGaussian
	// DistPowerLow draws range·u⁴: scores concentrate near the low end, so
	// the top of the ranking is sparse and drops quickly.
	DistPowerLow
	// DistPowerHigh draws range·(1-u⁴): scores concentrate near the high
	// end, so the ranking's top is dense and flat.
	DistPowerHigh
)

// RankedConfig describes one synthetic ranked relation.
type RankedConfig struct {
	// Name is the table name; columns are qualified with it.
	Name string
	// N is the cardinality.
	N int
	// Selectivity is the target equi-join selectivity on the "key" column
	// when joined against another relation generated with the same value:
	// keys are drawn uniformly from a domain of size round(1/Selectivity),
	// so two independent tuples match with that probability. Zero means a
	// unique key per tuple (selectivity 1/N).
	Selectivity float64
	// ScoreMin and ScoreMax bound the uniform score distribution.
	// Both zero means [0,1].
	ScoreMin, ScoreMax float64
	// Seed drives the deterministic generator.
	Seed int64
	// Dist selects the score distribution (default DistUniform).
	Dist ScoreDist
	// ScoreByKey, when positive, correlates score with the join key: the
	// drawn score is blended with the key's normalized position in its
	// domain (score' = w·(key/domain) + (1-w)·score, w = ScoreByKey ≤ 1).
	// With ScoreByKey = 1 the score is a pure function of the key, so
	// range-partitioning the key also range-partitions the scores — the
	// skewed serving-tier workload where some shards provably cannot hold
	// top results. Zero keeps scores independent of keys.
	ScoreByKey float64
}

// Ranked produces a relation with schema (id INTEGER, key INTEGER,
// score DOUBLE):
//   - id is the tuple's unique identity 0..N-1 (heap order);
//   - key is the join attribute with selectivity-controlled domain;
//   - score is uniform in [ScoreMin, ScoreMax].
func Ranked(cfg RankedConfig) *relation.Relation {
	if cfg.N <= 0 {
		panic(fmt.Sprintf("workload: non-positive cardinality %d", cfg.N))
	}
	lo, hi := cfg.ScoreMin, cfg.ScoreMax
	if lo == 0 && hi == 0 {
		hi = 1
	}
	if hi < lo {
		panic(fmt.Sprintf("workload: score range [%v,%v] inverted", lo, hi))
	}
	domain := cfg.N
	if cfg.Selectivity > 0 {
		domain = int(1.0/cfg.Selectivity + 0.5)
		if domain < 1 {
			domain = 1
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sch := relation.NewSchema(
		relation.Column{Table: cfg.Name, Name: "id", Kind: relation.KindInt},
		relation.Column{Table: cfg.Name, Name: "key", Kind: relation.KindInt},
		relation.Column{Table: cfg.Name, Name: "score", Kind: relation.KindFloat},
	)
	rel := relation.New(cfg.Name, sch)
	for i := 0; i < cfg.N; i++ {
		var key int64
		if cfg.Selectivity > 0 {
			key = int64(rng.Intn(domain))
		} else {
			key = int64(i)
		}
		norm := drawScore(rng, cfg.Dist)
		if w := cfg.ScoreByKey; w > 0 {
			keyDomain := domain
			if cfg.Selectivity <= 0 {
				keyDomain = cfg.N
			}
			norm = w*(float64(key)/float64(keyDomain)) + (1-w)*norm
		}
		rel.MustAppend(relation.Tuple{
			relation.Int(int64(i)),
			relation.Int(key),
			relation.Float(lo + norm*(hi-lo)),
		})
	}
	return rel
}

// drawScore samples a normalized score in [0,1] under the distribution.
func drawScore(rng *rand.Rand, dist ScoreDist) float64 {
	switch dist {
	case DistGaussian:
		for {
			v := 0.5 + rng.NormFloat64()/6
			if v >= 0 && v <= 1 {
				return v
			}
		}
	case DistPowerLow:
		u := rng.Float64()
		return u * u * u * u
	case DistPowerHigh:
		u := rng.Float64()
		return 1 - u*u*u*u
	default:
		return rng.Float64()
	}
}

// RankedSet builds m ranked relations named T1..Tm with the shared
// parameters, each with a distinct derived seed, registers them in a fresh
// catalog, and creates a descending-capable score index and a key index on
// each. It returns the catalog and the relation names.
func RankedSet(m int, cfg RankedConfig) (*catalog.Catalog, []string) {
	cat := catalog.New()
	names := make([]string, m)
	for i := 0; i < m; i++ {
		c := cfg
		c.Name = fmt.Sprintf("T%d", i+1)
		c.Seed = cfg.Seed + int64(i)*7919
		rel := Ranked(c)
		cat.AddTable(rel)
		mustIndex(cat, c.Name, "score")
		mustIndex(cat, c.Name, "key")
		names[i] = c.Name
	}
	return cat, names
}

// FeatureNames are the visual features of the paper's video workload.
var FeatureNames = []string{"ColorHist", "ColorLayout", "Texture", "Edges"}

// CorpusConfig describes the multi-feature similarity corpus.
type CorpusConfig struct {
	// Objects is the number of video objects.
	Objects int
	// Features is how many feature relations to generate (<= len of
	// FeatureNames; more get synthetic names FeatN).
	Features int
	// Seed drives the deterministic generator.
	Seed int64
}

// Corpus generates one relation per visual feature, each with schema
// (id INTEGER, score DOUBLE): every object appears in every feature relation
// with an independent uniform similarity score in [0,1], mimicking the
// paper's setup where each input ranks the same stored video objects by a
// single feature. The join condition across features is id = id, whose
// selectivity is 1/Objects. All relations are registered in a fresh catalog
// with score indexes (for sorted access) and id indexes (for random access).
func Corpus(cfg CorpusConfig) (*catalog.Catalog, []string) {
	if cfg.Objects <= 0 || cfg.Features <= 0 {
		panic("workload: corpus needs positive objects and features")
	}
	cat := catalog.New()
	names := make([]string, cfg.Features)
	for f := 0; f < cfg.Features; f++ {
		name := fmt.Sprintf("Feat%d", f+1)
		if f < len(FeatureNames) {
			name = FeatureNames[f]
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(f)*104729))
		sch := relation.NewSchema(
			relation.Column{Table: name, Name: "id", Kind: relation.KindInt},
			relation.Column{Table: name, Name: "score", Kind: relation.KindFloat},
		)
		rel := relation.New(name, sch)
		for i := 0; i < cfg.Objects; i++ {
			rel.MustAppend(relation.Tuple{
				relation.Int(int64(i)),
				relation.Float(rng.Float64()),
			})
		}
		cat.AddTable(rel)
		mustIndex(cat, name, "score")
		mustIndex(cat, name, "id")
		names[f] = name
	}
	return cat, names
}

func mustIndex(cat *catalog.Catalog, table, column string) {
	if _, err := cat.CreateIndex(table, column, false); err != nil {
		panic(err)
	}
}

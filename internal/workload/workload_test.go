package workload

import (
	"math"
	"testing"

	"rankopt/internal/relation"
)

func TestRankedShape(t *testing.T) {
	rel := Ranked(RankedConfig{Name: "A", N: 1000, Selectivity: 0.01, Seed: 1})
	if rel.Cardinality() != 1000 {
		t.Fatalf("cardinality = %d", rel.Cardinality())
	}
	if rel.Schema().Len() != 3 {
		t.Fatalf("schema = %s", rel.Schema())
	}
	for i, tup := range rel.Tuples() {
		if tup[0].AsInt() != int64(i) {
			t.Fatal("id must equal heap position")
		}
		s := tup[2].AsFloat()
		if s < 0 || s > 1 {
			t.Fatalf("score %v out of [0,1]", s)
		}
		k := tup[1].AsInt()
		if k < 0 || k >= 100 {
			t.Fatalf("key %d out of domain [0,100)", k)
		}
	}
}

func TestRankedUniqueKeysWhenSelectivityZero(t *testing.T) {
	rel := Ranked(RankedConfig{Name: "A", N: 50, Seed: 2})
	seen := map[int64]bool{}
	for _, tup := range rel.Tuples() {
		k := tup[1].AsInt()
		if seen[k] {
			t.Fatalf("duplicate key %d with Selectivity=0", k)
		}
		seen[k] = true
	}
}

func TestRankedScoreRange(t *testing.T) {
	rel := Ranked(RankedConfig{Name: "A", N: 500, ScoreMin: 10, ScoreMax: 20, Seed: 3})
	for _, tup := range rel.Tuples() {
		s := tup[2].AsFloat()
		if s < 10 || s > 20 {
			t.Fatalf("score %v out of [10,20]", s)
		}
	}
}

// The generator's whole point: measured join selectivity must track the
// requested value.
func TestRankedSelectivityAchieved(t *testing.T) {
	const n, want = 2000, 0.01
	a := Ranked(RankedConfig{Name: "A", N: n, Selectivity: want, Seed: 10})
	b := Ranked(RankedConfig{Name: "B", N: n, Selectivity: want, Seed: 11})
	// Count matches via a key histogram.
	hist := map[int64]int{}
	for _, tup := range a.Tuples() {
		hist[tup[1].AsInt()]++
	}
	matches := 0
	for _, tup := range b.Tuples() {
		matches += hist[tup[1].AsInt()]
	}
	got := float64(matches) / float64(n*n)
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("measured selectivity %v, want %v ±15%%", got, want)
	}
}

func TestRankedDeterminism(t *testing.T) {
	a := Ranked(RankedConfig{Name: "A", N: 100, Selectivity: 0.1, Seed: 42})
	b := Ranked(RankedConfig{Name: "A", N: 100, Selectivity: 0.1, Seed: 42})
	for i := range a.Tuples() {
		for j := range a.Tuple(i) {
			if !a.Tuple(i)[j].Equal(b.Tuple(i)[j]) {
				t.Fatal("same seed must reproduce the same relation")
			}
		}
	}
	c := Ranked(RankedConfig{Name: "A", N: 100, Selectivity: 0.1, Seed: 43})
	same := true
	for i := range a.Tuples() {
		if !a.Tuple(i)[2].Equal(c.Tuple(i)[2]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestRankedPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero N", func() { Ranked(RankedConfig{Name: "A"}) })
	mustPanic("inverted range", func() {
		Ranked(RankedConfig{Name: "A", N: 1, ScoreMin: 2, ScoreMax: 1})
	})
	mustPanic("bad corpus", func() { Corpus(CorpusConfig{}) })
}

func TestRankedSet(t *testing.T) {
	cat, names := RankedSet(3, RankedConfig{N: 200, Selectivity: 0.05, Seed: 5})
	if len(names) != 3 || names[0] != "T1" || names[2] != "T3" {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		if cat.Cardinality(n) != 200 {
			t.Errorf("%s cardinality = %d", n, cat.Cardinality(n))
		}
		if cat.IndexOn(n, "score") == nil || cat.IndexOn(n, "key") == nil {
			t.Errorf("%s missing indexes", n)
		}
	}
	// Distinct relations (seeds differ).
	a, _ := cat.Table("T1")
	b, _ := cat.Table("T2")
	if a.Rel.Tuple(0)[2].Equal(b.Rel.Tuple(0)[2]) && a.Rel.Tuple(1)[2].Equal(b.Rel.Tuple(1)[2]) {
		t.Error("relations should have independent scores")
	}
}

func TestCorpus(t *testing.T) {
	cat, names := Corpus(CorpusConfig{Objects: 300, Features: 4, Seed: 9})
	if len(names) != 4 || names[0] != "ColorHist" || names[3] != "Edges" {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		tab, err := cat.Table(n)
		if err != nil {
			t.Fatal(err)
		}
		if tab.Stats.Card != 300 {
			t.Errorf("%s card = %d", n, tab.Stats.Card)
		}
		// Every object id present exactly once.
		idx := cat.IndexOn(n, "id")
		if idx == nil {
			t.Fatalf("%s missing id index", n)
		}
		for i := 0; i < 300; i++ {
			rids := idx.Tree.Lookup(relation.Int(int64(i)))
			if len(rids) != 1 {
				t.Fatalf("%s id %d appears %d times", n, i, len(rids))
			}
		}
	}
	// More features than named ones get synthetic names.
	_, names = Corpus(CorpusConfig{Objects: 10, Features: 5, Seed: 1})
	if names[4] != "Feat5" {
		t.Errorf("5th feature name = %s", names[4])
	}
}

func TestCorpusScoreStats(t *testing.T) {
	cat, names := Corpus(CorpusConfig{Objects: 5000, Features: 1, Seed: 13})
	cs := cat.ColStats(names[0], "score")
	if cs.Min > 0.01 || cs.Max < 0.99 {
		t.Errorf("uniform scores should span ~[0,1]: [%v,%v]", cs.Min, cs.Max)
	}
	// Slab ≈ range/(n-1).
	wantSlab := (cs.Max - cs.Min) / 4999
	if math.Abs(cs.Slab-wantSlab) > 1e-12 {
		t.Errorf("slab = %v, want %v", cs.Slab, wantSlab)
	}
}

func TestScoreDistributions(t *testing.T) {
	const n = 20000
	means := map[ScoreDist]float64{}
	for _, d := range []ScoreDist{DistUniform, DistGaussian, DistPowerLow, DistPowerHigh} {
		rel := Ranked(RankedConfig{Name: "A", N: n, Seed: 4, Dist: d})
		sum := 0.0
		for _, tup := range rel.Tuples() {
			s := tup[2].AsFloat()
			if s < 0 || s > 1 {
				t.Fatalf("dist %d: score %v out of range", d, s)
			}
			sum += s
		}
		means[d] = sum / n
	}
	// Uniform and Gaussian center near 0.5; the power laws skew hard.
	if math.Abs(means[DistUniform]-0.5) > 0.02 || math.Abs(means[DistGaussian]-0.5) > 0.02 {
		t.Errorf("central distributions off: %v / %v", means[DistUniform], means[DistGaussian])
	}
	// E[u^4] = 1/5, so the power-low mean sits near 0.2.
	if means[DistPowerLow] > 0.3 || means[DistPowerLow] < 0.1 {
		t.Errorf("power-low mean = %v, want ~0.2", means[DistPowerLow])
	}
	if means[DistPowerHigh] < 0.7 {
		t.Errorf("power-high mean = %v, want well above 0.7", means[DistPowerHigh])
	}
	// Gaussian should concentrate: sample variance below uniform's 1/12.
	varOf := func(d ScoreDist) float64 {
		rel := Ranked(RankedConfig{Name: "A", N: n, Seed: 4, Dist: d})
		m := means[d]
		v := 0.0
		for _, tup := range rel.Tuples() {
			x := tup[2].AsFloat() - m
			v += x * x
		}
		return v / n
	}
	if varOf(DistGaussian) >= varOf(DistUniform) {
		t.Error("gaussian scores should be more concentrated than uniform")
	}
}

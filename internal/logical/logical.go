// Package logical represents queries after parsing and before physical
// planning: the set of base tables, the equi-join graph, single-table
// filters, the monotone ranking function (a weighted sum with one score
// expression per table), an optional plain order-by, and the top-k bound.
package logical

import (
	"fmt"
	"sort"

	"rankopt/internal/expr"
)

// JoinPred is one equi-join edge of the query's join graph.
type JoinPred struct {
	L, R expr.ColRef
}

// Tables returns the two table names the predicate connects.
func (j JoinPred) Tables() (string, string) { return j.L.Table, j.R.Table }

// String renders "A.c1 = B.c1".
func (j JoinPred) String() string { return j.L.String() + " = " + j.R.String() }

// SelectItem is one output column of the query.
type SelectItem struct {
	E  expr.Expr
	As string
}

// AggFuncs are the aggregate function names the engine understands.
var AggFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true,
}

// AggItem is one aggregate output column of a grouped query. Arg is nil for
// COUNT(*).
type AggItem struct {
	Func string
	Arg  expr.Expr
	As   string
}

// Query is a parsed, validated query.
type Query struct {
	// Tables are the base table names (aliases equal names in this engine).
	Tables []string
	// Joins is the equi-join graph.
	Joins []JoinPred
	// Filters are single-table predicates, applied below joins.
	Filters []expr.Expr
	// Score is the ranking function; empty Terms means no ranking.
	Score expr.ScoreSum
	// OrderBy is a plain (non-ranking) order column; used when Score is
	// empty. Zero value means no ordering requirement.
	OrderBy expr.ColRef
	// OrderDesc orders OrderBy descending.
	OrderDesc bool
	// K is the number of requested top results; 0 means all.
	K int
	// Select lists the output expressions; empty means "all columns".
	Select []SelectItem
	// GroupBy lists grouping columns; non-empty makes this a grouped query
	// whose output is the group columns followed by Aggs.
	GroupBy []expr.ColRef
	// Aggs are the aggregate outputs of a grouped query.
	Aggs []AggItem
}

// Grouped reports whether the query aggregates over groups.
func (q *Query) Grouped() bool { return len(q.GroupBy) > 0 }

// Ranking reports whether the query asks for ranked (top-k by score) output.
func (q *Query) Ranking() bool { return len(q.Score.Terms) > 0 }

// RankedTables returns the sorted set of tables contributing score terms.
func (q *Query) RankedTables() []string {
	set := map[string]bool{}
	for _, t := range q.Score.Terms {
		if tab := t.Table(); tab != "" {
			set[tab] = true
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// ScoreFor returns the partial ranking function restricted to the given
// table set — f1(SL) in the paper's join-eligibility rule.
func (q *Query) ScoreFor(tables map[string]bool) expr.ScoreSum {
	return q.Score.Subset(tables)
}

// TableIndex returns the position of a table in q.Tables, or -1.
func (q *Query) TableIndex(name string) int {
	for i, t := range q.Tables {
		if t == name {
			return i
		}
	}
	return -1
}

// Validate checks structural consistency: distinct known tables, join
// predicates and filters referencing known tables, score terms confined to
// single known tables, and a connected join graph (the DP enumerator does
// not generate Cartesian products).
func (q *Query) Validate() error {
	if len(q.Tables) == 0 {
		return fmt.Errorf("logical: query has no tables")
	}
	known := map[string]bool{}
	for _, t := range q.Tables {
		if known[t] {
			return fmt.Errorf("logical: duplicate table %q", t)
		}
		known[t] = true
	}
	for _, j := range q.Joins {
		if !known[j.L.Table] || !known[j.R.Table] {
			return fmt.Errorf("logical: join %s references unknown table", j)
		}
		if j.L.Table == j.R.Table {
			return fmt.Errorf("logical: join %s is not cross-table", j)
		}
	}
	for _, f := range q.Filters {
		ts := expr.Tables(f)
		if len(ts) != 1 {
			return fmt.Errorf("logical: filter %s must reference exactly one table", f)
		}
		if !known[ts[0]] {
			return fmt.Errorf("logical: filter %s references unknown table %q", f, ts[0])
		}
	}
	for _, t := range q.Score.Terms {
		tab := t.Table()
		if tab == "" {
			return fmt.Errorf("logical: score term %s must reference exactly one table", t)
		}
		if !known[tab] {
			return fmt.Errorf("logical: score term %s references unknown table %q", t, tab)
		}
		if t.Weight <= 0 {
			return fmt.Errorf("logical: score term %s must have positive weight for monotonicity", t)
		}
	}
	if q.K < 0 {
		return fmt.Errorf("logical: negative k %d", q.K)
	}
	if q.Grouped() {
		if q.Ranking() {
			return fmt.Errorf("logical: GROUP BY cannot be combined with a ranking function")
		}
		if q.OrderBy.Name != "" {
			return fmt.Errorf("logical: GROUP BY with ORDER BY is not supported")
		}
		if len(q.Aggs) == 0 {
			return fmt.Errorf("logical: grouped query needs at least one aggregate")
		}
		for _, g := range q.GroupBy {
			if !known[g.Table] {
				return fmt.Errorf("logical: group column %s references unknown table", g)
			}
		}
		for _, a := range q.Aggs {
			if !AggFuncs[a.Func] {
				return fmt.Errorf("logical: unknown aggregate %q", a.Func)
			}
			if a.Arg == nil {
				if a.Func != "COUNT" {
					return fmt.Errorf("logical: %s requires an argument", a.Func)
				}
				continue
			}
			for _, c := range expr.Columns(a.Arg) {
				if !known[c.Table] {
					return fmt.Errorf("logical: aggregate %s references unknown table %q", a.Func, c.Table)
				}
			}
		}
	} else if len(q.Aggs) > 0 {
		return fmt.Errorf("logical: aggregates require GROUP BY in this engine")
	}
	if len(q.Tables) > 1 && !q.connected() {
		return fmt.Errorf("logical: join graph is not connected")
	}
	return nil
}

// connected reports whether the join graph spans all tables.
func (q *Query) connected() bool {
	adj := map[string][]string{}
	for _, j := range q.Joins {
		adj[j.L.Table] = append(adj[j.L.Table], j.R.Table)
		adj[j.R.Table] = append(adj[j.R.Table], j.L.Table)
	}
	seen := map[string]bool{q.Tables[0]: true}
	stack := []string{q.Tables[0]}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range adj[t] {
			if !seen[n] {
				seen[n] = true
				stack = append(stack, n)
			}
		}
	}
	return len(seen) == len(q.Tables)
}

// JoinsBetween returns the join predicates connecting a table in left with a
// table in right.
func (q *Query) JoinsBetween(left, right map[string]bool) []JoinPred {
	var out []JoinPred
	for _, j := range q.Joins {
		if left[j.L.Table] && right[j.R.Table] {
			out = append(out, j)
		} else if left[j.R.Table] && right[j.L.Table] {
			// Normalize so L refers to the left set.
			out = append(out, JoinPred{L: j.R, R: j.L})
		}
	}
	return out
}

// FiltersFor returns the filters that apply to the given table.
func (q *Query) FiltersFor(table string) []expr.Expr {
	var out []expr.Expr
	for _, f := range q.Filters {
		ts := expr.Tables(f)
		if len(ts) == 1 && ts[0] == table {
			out = append(out, f)
		}
	}
	return out
}

package logical

import (
	"testing"

	"rankopt/internal/expr"
)

// q2 builds the paper's Query Q2: three tables, chain joins, rank on a
// weighted sum of one score column per table.
func q2() *Query {
	return &Query{
		Tables: []string{"A", "B", "C"},
		Joins: []JoinPred{
			{L: expr.Col("A", "c2"), R: expr.Col("B", "c1")},
			{L: expr.Col("B", "c2"), R: expr.Col("C", "c2")},
		},
		Score: expr.Sum(
			expr.ScoreTerm{Weight: 0.3, E: expr.Col("A", "c1")},
			expr.ScoreTerm{Weight: 0.3, E: expr.Col("B", "c1")},
			expr.ScoreTerm{Weight: 0.3, E: expr.Col("C", "c1")},
		),
		K: 5,
	}
}

func TestValidateOK(t *testing.T) {
	if err := q2().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := map[string]func(*Query){
		"no tables":       func(q *Query) { q.Tables = nil },
		"duplicate table": func(q *Query) { q.Tables = []string{"A", "A", "C"} },
		"unknown join": func(q *Query) {
			q.Joins = append(q.Joins, JoinPred{L: expr.Col("Z", "x"), R: expr.Col("A", "c1")})
		},
		"same-table join": func(q *Query) {
			q.Joins[0] = JoinPred{L: expr.Col("A", "c1"), R: expr.Col("A", "c2")}
		},
		"multi-table filter": func(q *Query) {
			q.Filters = []expr.Expr{expr.Bin(expr.OpEq, expr.Col("A", "c1"), expr.Col("B", "c1"))}
		},
		"unknown filter table": func(q *Query) {
			q.Filters = []expr.Expr{expr.Bin(expr.OpGt, expr.Col("Z", "c1"), expr.IntLit(0))}
		},
		"mixed score term": func(q *Query) {
			q.Score.Terms[0].E = expr.Bin(expr.OpAdd, expr.Col("A", "c1"), expr.Col("B", "c1"))
		},
		"unknown score table": func(q *Query) { q.Score.Terms[0].E = expr.Col("Z", "c1") },
		"negative weight":     func(q *Query) { q.Score.Terms[0].Weight = -1 },
		"negative k":          func(q *Query) { q.K = -2 },
		"disconnected": func(q *Query) {
			q.Joins = q.Joins[:1] // C becomes unreachable
		},
	}
	for name, mutate := range cases {
		q := q2()
		mutate(q)
		if err := q.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestRankedTablesAndScoreFor(t *testing.T) {
	q := q2()
	if !q.Ranking() {
		t.Fatal("q2 is a ranking query")
	}
	rt := q.RankedTables()
	if len(rt) != 3 || rt[0] != "A" || rt[2] != "C" {
		t.Fatalf("RankedTables = %v", rt)
	}
	sub := q.ScoreFor(map[string]bool{"A": true, "C": true})
	if len(sub.Terms) != 2 {
		t.Fatalf("ScoreFor kept %d terms", len(sub.Terms))
	}
	// Non-ranking query.
	q.Score = expr.ScoreSum{}
	if q.Ranking() || len(q.RankedTables()) != 0 {
		t.Error("score-less query must not rank")
	}
}

func TestJoinsBetween(t *testing.T) {
	q := q2()
	ab := q.JoinsBetween(map[string]bool{"A": true}, map[string]bool{"B": true})
	if len(ab) != 1 || ab[0].L.Table != "A" {
		t.Fatalf("JoinsBetween(A,B) = %v", ab)
	}
	// Reversed orientation normalizes L to the left set.
	ba := q.JoinsBetween(map[string]bool{"B": true}, map[string]bool{"A": true})
	if len(ba) != 1 || ba[0].L.Table != "B" {
		t.Fatalf("JoinsBetween(B,A) = %v", ba)
	}
	ac := q.JoinsBetween(map[string]bool{"A": true}, map[string]bool{"C": true})
	if len(ac) != 0 {
		t.Fatalf("A and C are not directly joined: %v", ac)
	}
	abc := q.JoinsBetween(map[string]bool{"A": true, "B": true}, map[string]bool{"C": true})
	if len(abc) != 1 || abc[0].L.Table != "B" {
		t.Fatalf("JoinsBetween(AB,C) = %v", abc)
	}
}

func TestFiltersForAndTableIndex(t *testing.T) {
	q := q2()
	fa := expr.Bin(expr.OpGt, expr.Col("A", "c1"), expr.FloatLit(0.5))
	fb := expr.Bin(expr.OpLt, expr.Col("B", "c2"), expr.FloatLit(2))
	q.Filters = []expr.Expr{fa, fb}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	got := q.FiltersFor("A")
	if len(got) != 1 || !expr.Equal(got[0], fa) {
		t.Fatalf("FiltersFor(A) = %v", got)
	}
	if len(q.FiltersFor("C")) != 0 {
		t.Error("C has no filters")
	}
	if q.TableIndex("B") != 1 || q.TableIndex("Z") != -1 {
		t.Error("TableIndex mismatch")
	}
}

func TestJoinPredString(t *testing.T) {
	j := JoinPred{L: expr.Col("A", "c1"), R: expr.Col("B", "c1")}
	if j.String() != "A.c1 = B.c1" {
		t.Errorf("String = %q", j.String())
	}
	l, r := j.Tables()
	if l != "A" || r != "B" {
		t.Error("Tables mismatch")
	}
}

func TestSingleTableQueryNoJoins(t *testing.T) {
	q := &Query{
		Tables: []string{"A"},
		Score:  expr.Sum(expr.ScoreTerm{Weight: 1, E: expr.Col("A", "score")}),
		K:      3,
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// The nil *Trace is the tracing-off value every instrumented call site holds
// when no trace is attached; the whole point of the design is that those
// sites pay a nil compare and nothing else. Pin it: zero allocations and
// zero recorded spans across the full API surface.
func TestNilTraceRecordsNothingAndZeroAllocs(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(200, func() {
		id := tr.Begin("stage", "pipeline")
		tr.Annotate(id, "key", "val")
		tr.AnnotateInt(id, "count", 42)
		tr.AddSpan(id, "op", "operator", OperatorTID, time.Time{}, 0)
		tr.End(id)
	})
	if allocs != 0 {
		t.Fatalf("nil-trace path allocates %.1f/op, want exactly 0", allocs)
	}
	if tr.Len() != 0 || tr.Spans() != nil || tr.Tree() != "" || tr.Label() != "" {
		t.Fatal("nil trace must record and render nothing")
	}
}

func TestSpanNestingAndTree(t *testing.T) {
	tr := New("SELECT ... LIMIT 10")
	root := tr.Begin("session", "pipeline")
	parse := tr.Begin("parse", "pipeline")
	tr.End(parse)
	opt := tr.Begin("optimize", "pipeline")
	tr.AnnotateInt(opt, "plans_generated", 44)
	tr.End(opt)
	tr.End(root)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	if spans[0].Parent != -1 {
		t.Errorf("session parent = %d, want -1", spans[0].Parent)
	}
	if spans[1].Parent != 0 || spans[2].Parent != 0 {
		t.Errorf("parse/optimize parents = %d,%d, want 0,0", spans[1].Parent, spans[2].Parent)
	}
	tree := tr.Tree()
	for _, want := range []string{"trace: SELECT ... LIMIT 10", "session", "  parse", "plans_generated=44"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
	// Nesting depth must show in indentation: parse sits under session.
	if !strings.Contains(tree, "\n    parse") {
		t.Errorf("parse not indented under session:\n%s", tree)
	}
}

// End must tolerate out-of-order closes (a failed stage may leave children
// open); the open stack pops through them.
func TestEndPopsUnclosedChildren(t *testing.T) {
	tr := New("q")
	root := tr.Begin("session", "pipeline")
	tr.Begin("child", "pipeline") // never ended
	tr.End(root)
	next := tr.Begin("after", "pipeline")
	if got := tr.Spans()[next].Parent; got != -1 {
		t.Errorf("span after closed root nested under %d, want -1", got)
	}
}

// chromeFile mirrors the trace-event JSON schema for validation.
type chromeFile struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat"`
		Ph   string            `json:"ph"`
		Ts   *float64          `json:"ts"`
		Dur  float64           `json:"dur"`
		PID  *int              `json:"pid"`
		TID  *int              `json:"tid"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// The Chrome export must be valid trace-event JSON: a traceEvents array
// whose duration events carry ph="X", numeric ts/dur, and pid/tid — the
// fields Perfetto and chrome://tracing require to load the file.
func TestWriteChromeSchema(t *testing.T) {
	tr := New("q1")
	s := tr.Begin("session", "pipeline")
	p := tr.Begin("parse", "pipeline")
	tr.End(p)
	tr.AddSpan(s, "HRJN", "operator", OperatorTID, tr.Spans()[s].Start, 123*time.Microsecond,
		Arg{Key: "tuples_out", Val: "10"})
	tr.End(s)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("export is not valid JSON:\n%s", buf.String())
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", f.DisplayTimeUnit)
	}
	var complete, meta int
	for _, ev := range f.TraceEvents {
		if ev.Ts == nil || ev.PID == nil || ev.TID == nil {
			t.Fatalf("event %q missing ts/pid/tid", ev.Name)
		}
		switch ev.Ph {
		case "X":
			complete++
			if *ev.Ts < 0 {
				t.Errorf("event %q ts = %v, want >= 0", ev.Name, *ev.Ts)
			}
		case "M":
			meta++
		default:
			t.Errorf("event %q has ph = %q, want X or M", ev.Name, ev.Ph)
		}
	}
	if complete != 3 {
		t.Errorf("export has %d complete events, want 3", complete)
	}
	if meta < 2 {
		t.Errorf("export has %d metadata events, want >= 2 (process + thread names)", meta)
	}
	// The synthesized operator span keeps its lane and args.
	var sawOp bool
	for _, ev := range f.TraceEvents {
		if ev.Name == "HRJN" {
			sawOp = true
			if *ev.TID != OperatorTID {
				t.Errorf("operator span tid = %d, want %d", *ev.TID, OperatorTID)
			}
			if ev.Args["tuples_out"] != "10" {
				t.Errorf("operator span args = %v, want tuples_out=10", ev.Args)
			}
		}
	}
	if !sawOp {
		t.Error("operator span missing from export")
	}
}

// A nil trace still exports a valid (empty) document, so callers can pipe
// the export unconditionally.
func TestWriteChromeNil(t *testing.T) {
	var tr *Trace
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(f.TraceEvents) != 0 {
		t.Errorf("nil trace exported %d events, want 0", len(f.TraceEvents))
	}
}

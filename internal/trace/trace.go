// Package trace is the per-query tracing subsystem: a span recorder the
// engine threads through one session's pipeline stages (parse → fingerprint
// → plan-cache lookup → optimize → compile → execute) plus synthesized
// per-operator spans derived from the EXPLAIN ANALYZE stats collectors.
//
// Two disciplines govern the design:
//
//   - Zero overhead when off. A nil *Trace is the "tracing disabled" value;
//     every method nil-guards, so instrumented code calls Begin/End/Annotate
//     unconditionally and pays a pointer compare — no allocation, no span
//     recording — when no trace is attached (pinned by an AllocsPerRun test,
//     the same discipline as exec's analyze collector).
//   - Allocation-disciplined when on. Spans live in one growing slice; span
//     identity is an index, not a pointer; arguments are small key/value
//     slices, not maps. A traced session costs a handful of slice appends,
//     never per-tuple work (operator detail rides on the existing sampled
//     OpStats hooks).
//
// A recorded trace renders two ways: an indented text tree for terminals
// (Tree) and Chrome trace-event JSON (WriteChrome) loadable in Perfetto or
// chrome://tracing.
package trace

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Arg is one key/value annotation on a span. Values are strings; use
// AnnotateInt for counters (it formats without interface boxing surprises).
type Arg struct {
	Key, Val string
}

// Span is one timed region of a traced query session.
type Span struct {
	// Name and Cat label the span ("optimize", "stage"; "HRJN", "operator").
	Name string
	Cat  string
	// TID is the Chrome trace lane: lane 1 carries the pipeline stages,
	// lanes 2+ the per-operator spans (one lane per plan-tree depth).
	TID int
	// Parent is the index of the enclosing span (-1 for roots).
	Parent int
	// Start and Dur time the span. Synthesized spans (operators) carry
	// estimated durations derived from sampled stats.
	Start time.Time
	Dur   time.Duration
	// Args are the span's annotations.
	Args []Arg
}

// Trace records the spans of one query session. It belongs to a single
// session and, like the operator tree, is not safe for concurrent use.
// The nil *Trace is valid and records nothing.
type Trace struct {
	label string
	start time.Time
	spans []Span
	// open is the stack of currently open span indices; Begin nests under
	// the top of the stack.
	open []int
}

// pipelineTID is the Chrome lane of the session pipeline stages;
// OperatorTID is the first lane of the synthesized operator spans.
const (
	pipelineTID = 1
	OperatorTID = 2
)

// New starts a trace for one query session.
func New(label string) *Trace {
	return &Trace{label: label, start: time.Now()}
}

// Label returns the trace's session label.
func (t *Trace) Label() string {
	if t == nil {
		return ""
	}
	return t.label
}

// Begin opens a span nested under the innermost open span and returns its
// id. On a nil trace it records nothing and returns -1.
func (t *Trace) Begin(name, cat string) int {
	if t == nil {
		return -1
	}
	parent := -1
	if n := len(t.open); n > 0 {
		parent = t.open[n-1]
	}
	id := len(t.spans)
	t.spans = append(t.spans, Span{
		Name: name, Cat: cat, TID: pipelineTID, Parent: parent, Start: time.Now(),
	})
	t.open = append(t.open, id)
	return id
}

// End closes the span, popping it (and any unclosed children) off the open
// stack. No-op on a nil trace or an invalid id.
func (t *Trace) End(id int) {
	if t == nil || id < 0 || id >= len(t.spans) {
		return
	}
	t.spans[id].Dur = time.Since(t.spans[id].Start)
	for n := len(t.open); n > 0; n = len(t.open) {
		top := t.open[n-1]
		t.open = t.open[:n-1]
		if top == id {
			break
		}
	}
}

// Annotate attaches a key/value argument to the span.
func (t *Trace) Annotate(id int, key, val string) {
	if t == nil || id < 0 || id >= len(t.spans) {
		return
	}
	t.spans[id].Args = append(t.spans[id].Args, Arg{Key: key, Val: val})
}

// AnnotateInt attaches an integer argument to the span.
func (t *Trace) AnnotateInt(id int, key string, v int64) {
	if t == nil || id < 0 || id >= len(t.spans) {
		return
	}
	t.spans[id].Args = append(t.spans[id].Args, Arg{Key: key, Val: strconv.FormatInt(v, 10)})
}

// AddSpan records a fully-formed span (the synthesized per-operator spans,
// whose start and duration are derived from sampled stats rather than
// measured in place). Returns the span id, or -1 on a nil trace.
func (t *Trace) AddSpan(parent int, name, cat string, tid int, start time.Time, dur time.Duration, args ...Arg) int {
	if t == nil {
		return -1
	}
	id := len(t.spans)
	t.spans = append(t.spans, Span{
		Name: name, Cat: cat, TID: tid, Parent: parent, Start: start, Dur: dur, Args: args,
	})
	return id
}

// Spans returns the recorded spans in recording order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Len reports the number of recorded spans (0 on a nil trace).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Tree renders the trace as an indented text tree: every span under its
// parent with its duration and annotations.
func (t *Trace) Tree() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %s\n", t.label)
	children := make([][]int, len(t.spans))
	var roots []int
	for i, sp := range t.spans {
		if sp.Parent < 0 {
			roots = append(roots, i)
		} else {
			children[sp.Parent] = append(children[sp.Parent], i)
		}
	}
	var walk func(id, depth int)
	walk = func(id, depth int) {
		sp := t.spans[id]
		fmt.Fprintf(&b, "%s%s %s", strings.Repeat("  ", depth+1), sp.Name, sp.Dur.Round(time.Microsecond))
		if len(sp.Args) > 0 {
			parts := make([]string, len(sp.Args))
			for i, a := range sp.Args {
				parts[i] = a.Key + "=" + a.Val
			}
			fmt.Fprintf(&b, " (%s)", strings.Join(parts, " "))
		}
		b.WriteByte('\n')
		for _, c := range children[id] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}

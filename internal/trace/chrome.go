package trace

import (
	"encoding/json"
	"io"
)

// This file exports a recorded trace in the Chrome trace-event format
// (the "JSON Object Format" of the Trace Event specification): an object
// with a traceEvents array of complete ("ph":"X") events plus process and
// thread metadata, loadable in Perfetto or chrome://tracing. Timestamps are
// microseconds relative to the trace start, which keeps the numbers small
// and the file stable under clock representation differences.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeDoc is the top-level JSON object.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromePID is the single synthetic process id of an exported trace.
const chromePID = 1

// WriteChrome writes the trace as Chrome trace-event JSON. A nil trace
// writes an empty (but valid) document.
func (t *Trace) WriteChrome(w io.Writer) error {
	doc := chromeDoc{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	if t != nil {
		doc.TraceEvents = make([]chromeEvent, 0, len(t.spans)+2)
		doc.TraceEvents = append(doc.TraceEvents,
			chromeEvent{Name: "process_name", Ph: "M", PID: chromePID, TID: 0,
				Args: map[string]string{"name": "raqo: " + t.label}},
			chromeEvent{Name: "thread_name", Ph: "M", PID: chromePID, TID: pipelineTID,
				Args: map[string]string{"name": "session pipeline"}},
		)
		for _, sp := range t.spans {
			ev := chromeEvent{
				Name: sp.Name,
				Cat:  sp.Cat,
				Ph:   "X",
				Ts:   float64(sp.Start.Sub(t.start).Nanoseconds()) / 1e3,
				Dur:  float64(sp.Dur.Nanoseconds()) / 1e3,
				PID:  chromePID,
				TID:  sp.TID,
			}
			if len(sp.Args) > 0 {
				ev.Args = make(map[string]string, len(sp.Args))
				for _, a := range sp.Args {
					ev.Args[a.Key] = a.Val
				}
			}
			doc.TraceEvents = append(doc.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// Partitioning metadata and catalog sharding for the scatter-gather serving
// tier. A PartitionSpec declares how one table's tuples are assigned to
// shards; Catalog.Shard materializes N per-shard catalogs whose relations are
// zero-copy views of the parent heaps, with statistics recomputed and every
// parent index rebuilt per shard (so per-shard plans see honest per-shard
// stats and access paths).
package catalog

import (
	"fmt"
	"math"

	"rankopt/internal/relation"
)

// PartitionKind selects the shard-assignment function.
type PartitionKind uint8

// Supported partitioning schemes.
const (
	// PartitionHash assigns tuples by FNV-1a hash of the partition-column
	// value. Tables hash-partitioned on join-compatible columns are
	// automatically co-partitioned: equal values land on equal shards.
	PartitionHash PartitionKind = iota
	// PartitionRange assigns tuples to equal-width buckets over the declared
	// [Lo, Hi) interval of a numeric column. Joined tables are co-partitioned
	// only when they declare identical intervals, which the engine verifies
	// before sharding a query.
	PartitionRange
)

// String returns the spec keyword for the kind.
func (k PartitionKind) String() string {
	switch k {
	case PartitionHash:
		return "hash"
	case PartitionRange:
		return "range"
	default:
		return fmt.Sprintf("PartitionKind(%d)", uint8(k))
	}
}

// PartitionSpec declares how a table is split across shards. Column names the
// partition key. For PartitionRange, [Lo, Hi) is the explicit key domain —
// explicit rather than derived from per-table statistics so that two joined
// tables can declare the *same* bucket boundaries even when their observed
// extremes differ (derived bounds would scatter one join group across
// different shards of the two tables and silently lose join matches).
type PartitionSpec struct {
	Column string
	Kind   PartitionKind
	Lo, Hi float64
}

// Compatible reports whether two specs co-partition equal key values onto
// equal shards at every shard count: same kind, and for range partitioning
// the same bucket boundaries.
func (s PartitionSpec) Compatible(o PartitionSpec) bool {
	if s.Kind != o.Kind {
		return false
	}
	if s.Kind == PartitionRange {
		return s.Lo == o.Lo && s.Hi == o.Hi
	}
	return true
}

// SetPartition declares table's partitioning. The column must exist; range
// partitioning additionally requires an explicit non-empty [Lo, Hi) interval
// over a numeric column. Replaces any previous spec for the table.
func (c *Catalog) SetPartition(table string, spec PartitionSpec) error {
	t, err := c.Table(table)
	if err != nil {
		return err
	}
	if _, err := resolveColumn(t.Rel, table, spec.Column); err != nil {
		return err
	}
	if spec.Kind == PartitionRange {
		if !(spec.Lo < spec.Hi) {
			return fmt.Errorf("catalog: range partition on %s.%s needs Lo < Hi (got [%g, %g))",
				table, spec.Column, spec.Lo, spec.Hi)
		}
	}
	if c.parts == nil {
		c.parts = map[string]PartitionSpec{}
	}
	c.parts[table] = spec
	c.bumpEpoch()
	return nil
}

// PartitionOf returns table's declared partitioning spec, if any.
func (c *Catalog) PartitionOf(table string) (PartitionSpec, bool) {
	spec, ok := c.parts[table]
	return spec, ok
}

// Shard builds n per-shard catalogs. Every table must have a declared
// partition spec. Shard relations share the parent tuples (no data copy);
// statistics are recomputed per shard and every parent index is rebuilt over
// the shard's tuples, so shard-local plans cost and execute against honest
// shard-local metadata. The parent catalog is unchanged.
func (c *Catalog) Shard(n int) ([]*Catalog, error) {
	if n <= 0 {
		return nil, fmt.Errorf("catalog: shard count %d must be positive", n)
	}
	out := make([]*Catalog, n)
	for i := range out {
		out[i] = New()
	}
	for _, name := range c.Names() {
		t := c.tables[name]
		spec, ok := c.parts[name]
		if !ok {
			return nil, fmt.Errorf("catalog: table %q has no partition spec", name)
		}
		pos, err := resolveColumn(t.Rel, name, spec.Column)
		if err != nil {
			return nil, err
		}
		assign, err := spec.assigner(n, name, pos)
		if err != nil {
			return nil, err
		}
		parts, err := t.Rel.PartitionBy(n, assign)
		if err != nil {
			return nil, err
		}
		for i, rel := range parts {
			out[i].AddTable(rel)
			if err := out[i].SetPartition(name, spec); err != nil {
				return nil, err
			}
			for _, idx := range t.Indexes {
				if _, err := out[i].CreateIndex(idx.Table, idx.Column, idx.Clustered); err != nil {
					return nil, fmt.Errorf("catalog: rebuilding %s on shard %d: %w", idx.Name, i, err)
				}
			}
		}
	}
	return out, nil
}

// assigner returns the tuple→shard function for the spec, reading the
// partition key at column position pos. NULL keys go to shard 0 (they join
// with nothing, so placement is arbitrary but must be deterministic).
func (s PartitionSpec) assigner(n int, table string, pos int) (func(relation.Tuple) int, error) {
	switch s.Kind {
	case PartitionHash:
		return func(t relation.Tuple) int {
			v := t[pos]
			if v.IsNull() {
				return 0
			}
			return int(hashValue(v) % uint64(n))
		}, nil
	case PartitionRange:
		lo, hi := s.Lo, s.Hi
		if !(lo < hi) {
			return nil, fmt.Errorf("catalog: range partition on %s.%s needs Lo < Hi", table, s.Column)
		}
		width := (hi - lo) / float64(n)
		return func(t relation.Tuple) int {
			v := t[pos]
			if v.IsNull() || !v.Numeric() {
				return 0
			}
			b := int(math.Floor((v.AsFloat() - lo) / width))
			if b < 0 {
				b = 0
			}
			if b >= n {
				b = n - 1
			}
			return b
		}, nil
	default:
		return nil, fmt.Errorf("catalog: unknown partition kind %v", s.Kind)
	}
}

// hashValue computes FNV-1a over the value's canonical representation.
// Numeric values normalize to their float64 bits (so Int(3) and Float(3)
// co-locate, matching Value.Equal and HashKey semantics).
func hashValue(v relation.Value) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix8 := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	switch v.Kind() {
	case relation.KindInt, relation.KindFloat:
		mix8(math.Float64bits(v.AsFloat()))
	case relation.KindString:
		for _, b := range []byte(v.AsString()) {
			h ^= uint64(b)
			h *= prime64
		}
	case relation.KindBool:
		if v.AsBool() {
			h ^= 1
		}
		h *= prime64
	}
	return h
}

// resolveColumn finds column's position in rel's schema, trying the qualified
// name first and falling back to unqualified resolution (mirrors CreateIndex).
func resolveColumn(rel *relation.Relation, table, column string) (int, error) {
	pos, err := rel.Schema().Resolve(table, column)
	if err == nil {
		return pos, nil
	}
	return rel.Schema().Resolve("", column)
}

// Package catalog maintains the engine's metadata: named tables, secondary
// indexes, and statistics. Statistics include per-column min/max, distinct
// counts, and the average decrement slab of score columns — the x and y
// parameters of the paper's Section 4 depth-estimation model — plus
// equi-join selectivity estimation used by both the cost model and the
// depth model.
package catalog

import (
	"fmt"
	"sort"
	"sync/atomic"

	"rankopt/internal/btree"
	"rankopt/internal/expr"
	"rankopt/internal/relation"
)

// ColStats summarizes one column.
type ColStats struct {
	// Min and Max are the observed numeric extremes (0 for non-numeric).
	Min, Max float64
	// Distinct is the number of distinct values.
	Distinct int
	// NullFrac is the fraction of NULL values.
	NullFrac float64
	// Slab is the average decrement slab: the mean difference between the
	// scores of two consecutively ranked tuples, (Max-Min)/(Card-1) under
	// the model's uniform assumption. Zero for non-numeric columns.
	Slab float64
}

// TableStats summarizes a table.
type TableStats struct {
	Card  int
	Pages int
	Cols  map[string]ColStats
}

// Index is a secondary B+tree index over a single column. The underlying
// tree supports both ascending and descending scans, so one index serves
// both directions.
type Index struct {
	Name      string
	Table     string
	Column    string
	Clustered bool
	Tree      *btree.Tree
}

// Table is a catalog entry: the heap relation plus its indexes and stats.
type Table struct {
	Rel     *relation.Relation
	Indexes []*Index
	Stats   TableStats
}

// Catalog is the collection of tables known to the engine.
type Catalog struct {
	tables map[string]*Table
	// parts maps table name → declared partitioning spec (see partition.go).
	// A table without an entry cannot participate in sharded execution.
	parts map[string]PartitionSpec
	// epoch counts metadata mutations (table set, indexes, statistics).
	// Consumers that cache anything derived from catalog statistics — the
	// engine's plan cache in particular — key their entries on the epoch so
	// a RefreshStats or AddTable invalidates them without coordination.
	epoch atomic.Uint64
}

// New creates an empty catalog.
func New() *Catalog { return &Catalog{tables: map[string]*Table{}} }

// StatsEpoch returns the current metadata epoch. It increases on every
// mutation that can change planning decisions: AddTable, CreateIndex,
// DropIndex, RebuildIndex, and RefreshStats.
func (c *Catalog) StatsEpoch() uint64 { return c.epoch.Load() }

// bumpEpoch marks a metadata mutation.
func (c *Catalog) bumpEpoch() { c.epoch.Add(1) }

// AddTable registers a relation under its name, computing statistics.
// It replaces any previous entry of the same name.
func (c *Catalog) AddTable(rel *relation.Relation) *Table {
	t := &Table{Rel: rel}
	t.Stats = ComputeStats(rel)
	c.tables[rel.Name] = t
	c.bumpEpoch()
	return t
}

// Table returns the entry for name, or an error if absent.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: table %q not found", name)
	}
	return t, nil
}

// Names returns the sorted table names.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CreateIndex builds a B+tree index on table.column. clustered marks the
// index as clustered for costing purposes (at most one per table is
// meaningful, but this is not enforced — it is a costing hint).
func (c *Catalog) CreateIndex(table, column string, clustered bool) (*Index, error) {
	t, err := c.Table(table)
	if err != nil {
		return nil, err
	}
	pos, err := t.Rel.Schema().Resolve(table, column)
	if err != nil {
		// Allow unqualified resolution for single-table schemas.
		pos, err = t.Rel.Schema().Resolve("", column)
		if err != nil {
			return nil, err
		}
	}
	tree := btree.New()
	for rid, tup := range t.Rel.Tuples() {
		if tup[pos].IsNull() {
			continue
		}
		if err := tree.Insert(tup[pos], rid); err != nil {
			return nil, err
		}
	}
	idx := &Index{
		Name:      fmt.Sprintf("idx_%s_%s", table, column),
		Table:     table,
		Column:    column,
		Clustered: clustered,
		Tree:      tree,
	}
	t.Indexes = append(t.Indexes, idx)
	c.bumpEpoch()
	return idx, nil
}

// DropIndex removes the index over table.column, reporting whether one
// existed.
func (c *Catalog) DropIndex(table, column string) bool {
	t, ok := c.tables[table]
	if !ok {
		return false
	}
	for i, idx := range t.Indexes {
		if idx.Column == column {
			t.Indexes = append(t.Indexes[:i], t.Indexes[i+1:]...)
			c.bumpEpoch()
			return true
		}
	}
	return false
}

// RebuildIndex drops and recreates the index over table.column from the
// current heap contents — the remedy for indexes degraded by churn (the
// B+tree deletes lazily and never rebalances).
func (c *Catalog) RebuildIndex(table, column string) (*Index, error) {
	var clustered bool
	if old := c.IndexOn(table, column); old != nil {
		clustered = old.Clustered
		c.DropIndex(table, column)
	}
	return c.CreateIndex(table, column, clustered)
}

// RefreshStats recomputes a table's statistics from its current contents.
func (c *Catalog) RefreshStats(table string) error {
	t, err := c.Table(table)
	if err != nil {
		return err
	}
	t.Stats = ComputeStats(t.Rel)
	c.bumpEpoch()
	return nil
}

// IndexOn returns the index over table.column, or nil.
func (c *Catalog) IndexOn(table, column string) *Index {
	t, ok := c.tables[table]
	if !ok {
		return nil
	}
	for _, idx := range t.Indexes {
		if idx.Column == column {
			return idx
		}
	}
	return nil
}

// ColStats returns the stats for table.column (zero value if unknown).
func (c *Catalog) ColStats(table, column string) ColStats {
	t, ok := c.tables[table]
	if !ok {
		return ColStats{}
	}
	return t.Stats.Cols[column]
}

// Cardinality returns the table's tuple count (0 if unknown).
func (c *Catalog) Cardinality(table string) int {
	t, ok := c.tables[table]
	if !ok {
		return 0
	}
	return t.Stats.Card
}

// JoinSelectivity estimates the selectivity of an equi-join between two
// columns using the classic System R formula 1/max(V(l), V(r)), where V is
// the distinct count. Unknown columns fall back to a conservative 0.1.
func (c *Catalog) JoinSelectivity(l, r expr.ColRef) float64 {
	ls := c.ColStats(l.Table, l.Name)
	rs := c.ColStats(r.Table, r.Name)
	v := ls.Distinct
	if rs.Distinct > v {
		v = rs.Distinct
	}
	if v <= 0 {
		return 0.1
	}
	return 1.0 / float64(v)
}

// FilterSelectivity estimates the selectivity of a single-table predicate.
// Equality against a constant uses 1/V; range predicates use the uniform
// fraction of the [Min,Max] interval; everything else falls back to 1/3
// (System R's default for unanalyzable predicates).
func (c *Catalog) FilterSelectivity(e expr.Expr) float64 {
	b, ok := e.(expr.Binary)
	if !ok {
		return 1.0 / 3
	}
	col, cok := b.L.(expr.ColRef)
	lit, lok := b.R.(expr.Const)
	if !cok || !lok {
		return 1.0 / 3
	}
	st := c.ColStats(col.Table, col.Name)
	switch b.Op {
	case expr.OpEq:
		if st.Distinct > 0 {
			return 1.0 / float64(st.Distinct)
		}
	case expr.OpLt, expr.OpLe:
		if st.Max > st.Min && lit.V.Numeric() {
			f := (lit.V.AsFloat() - st.Min) / (st.Max - st.Min)
			return clamp01(f)
		}
	case expr.OpGt, expr.OpGe:
		if st.Max > st.Min && lit.V.Numeric() {
			f := (st.Max - lit.V.AsFloat()) / (st.Max - st.Min)
			return clamp01(f)
		}
	}
	return 1.0 / 3
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// ComputeStats scans a relation and builds its statistics.
func ComputeStats(rel *relation.Relation) TableStats {
	st := TableStats{
		Card:  rel.Cardinality(),
		Pages: rel.Pages(),
		Cols:  map[string]ColStats{},
	}
	sch := rel.Schema()
	for i := 0; i < sch.Len(); i++ {
		col := sch.Column(i)
		cs := ColStats{}
		distinct := map[any]struct{}{}
		nulls := 0
		first := true
		for _, tup := range rel.Tuples() {
			v := tup[i]
			if v.IsNull() {
				nulls++
				continue
			}
			distinct[v.HashKey()] = struct{}{}
			if v.Numeric() {
				f := v.AsFloat()
				if first {
					cs.Min, cs.Max = f, f
					first = false
				} else {
					if f < cs.Min {
						cs.Min = f
					}
					if f > cs.Max {
						cs.Max = f
					}
				}
			}
		}
		cs.Distinct = len(distinct)
		if st.Card > 0 {
			cs.NullFrac = float64(nulls) / float64(st.Card)
		}
		if n := st.Card - nulls; n > 1 && cs.Max > cs.Min {
			cs.Slab = (cs.Max - cs.Min) / float64(n-1)
		}
		st.Cols[col.Name] = cs
	}
	return st
}

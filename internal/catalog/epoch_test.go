package catalog

import "testing"

// Every statistics-bearing mutation must advance the stats epoch — the plan
// cache keys its validity on it — while pure reads must not.
func TestStatsEpochAdvancesOnMutation(t *testing.T) {
	c := New()
	e0 := c.StatsEpoch()
	c.AddTable(makeTable("A", 50))
	e1 := c.StatsEpoch()
	if e1 <= e0 {
		t.Error("AddTable did not bump the epoch")
	}
	if _, err := c.CreateIndex("A", "score", false); err != nil {
		t.Fatal(err)
	}
	e2 := c.StatsEpoch()
	if e2 <= e1 {
		t.Error("CreateIndex did not bump the epoch")
	}
	if err := c.RefreshStats("A"); err != nil {
		t.Fatal(err)
	}
	e3 := c.StatsEpoch()
	if e3 <= e2 {
		t.Error("RefreshStats did not bump the epoch")
	}
	if !c.DropIndex("A", "score") {
		t.Fatal("DropIndex found nothing")
	}
	e4 := c.StatsEpoch()
	if e4 <= e3 {
		t.Error("DropIndex did not bump the epoch")
	}

	// Reads leave the epoch alone.
	if _, err := c.Table("A"); err != nil {
		t.Fatal(err)
	}
	_ = c.Names()
	_ = c.Cardinality("A")
	_ = c.ColStats("A", "score")
	if c.StatsEpoch() != e4 {
		t.Error("read-only access moved the epoch")
	}

	// Dropping a missing index is a no-op and must not invalidate plans.
	if c.DropIndex("A", "nosuch") {
		t.Fatal("DropIndex invented an index")
	}
	if c.StatsEpoch() != e4 {
		t.Error("failed DropIndex bumped the epoch")
	}
}

package catalog

import (
	"math"
	"testing"

	"rankopt/internal/relation"
)

func TestSetPartitionValidation(t *testing.T) {
	c := New()
	c.AddTable(makeTable("A", 20))
	if err := c.SetPartition("missing", PartitionSpec{Column: "id"}); err == nil {
		t.Fatal("unknown table must be rejected")
	}
	if err := c.SetPartition("A", PartitionSpec{Column: "nope"}); err == nil {
		t.Fatal("unknown column must be rejected")
	}
	if err := c.SetPartition("A", PartitionSpec{Column: "id", Kind: PartitionRange}); err == nil {
		t.Fatal("range partition without Lo < Hi must be rejected")
	}
	if err := c.SetPartition("A", PartitionSpec{Column: "id", Kind: PartitionHash}); err != nil {
		t.Fatal(err)
	}
	if spec, ok := c.PartitionOf("A"); !ok || spec.Column != "id" {
		t.Fatalf("PartitionOf = %+v, %v", spec, ok)
	}
}

func TestCompatible(t *testing.T) {
	h := PartitionSpec{Column: "id", Kind: PartitionHash}
	r1 := PartitionSpec{Column: "id", Kind: PartitionRange, Lo: 0, Hi: 100}
	r2 := PartitionSpec{Column: "id", Kind: PartitionRange, Lo: 0, Hi: 50}
	if !h.Compatible(h) || !r1.Compatible(r1) {
		t.Fatal("specs must be self-compatible")
	}
	if h.Compatible(r1) {
		t.Fatal("hash and range must be incompatible")
	}
	if r1.Compatible(r2) {
		t.Fatal("range specs with different intervals must be incompatible")
	}
}

// TestShardHashPartition: sharding covers every tuple exactly once, the
// parent is untouched, and per-shard stats and indexes describe the shard.
func TestShardHashPartition(t *testing.T) {
	c := New()
	c.AddTable(makeTable("A", 100))
	if _, err := c.CreateIndex("A", "score", false); err != nil {
		t.Fatal(err)
	}
	if err := c.SetPartition("A", PartitionSpec{Column: "id", Kind: PartitionHash}); err != nil {
		t.Fatal(err)
	}
	shards, err := c.Shard(4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	seen := map[int64]bool{}
	for i, sc := range shards {
		tab, err := sc.Table("A")
		if err != nil {
			t.Fatal(err)
		}
		total += tab.Rel.Cardinality()
		for _, tup := range tab.Rel.Tuples() {
			id := tup[0].AsInt()
			if seen[id] {
				t.Fatalf("id %d appears on two shards", id)
			}
			seen[id] = true
		}
		if tab.Stats.Card != tab.Rel.Cardinality() {
			t.Fatalf("shard %d stats card %d != rel card %d", i, tab.Stats.Card, tab.Rel.Cardinality())
		}
		if idx := sc.IndexOn("A", "score"); idx == nil {
			t.Fatalf("shard %d lost the score index", i)
		} else if idx.Tree.Len() != tab.Rel.Cardinality() {
			t.Fatalf("shard %d index covers %d of %d tuples", i, idx.Tree.Len(), tab.Rel.Cardinality())
		}
		if spec, ok := sc.PartitionOf("A"); !ok || spec.Kind != PartitionHash {
			t.Fatalf("shard %d lost the partition spec", i)
		}
	}
	if total != 100 {
		t.Fatalf("shards hold %d tuples, want 100", total)
	}
	parent, _ := c.Table("A")
	if parent.Rel.Cardinality() != 100 {
		t.Fatal("parent relation was mutated by sharding")
	}
}

// TestShardHashCoPartitions: equal key values land on equal shards across
// two independently sharded tables — the property equi-joins rely on.
func TestShardHashCoPartitions(t *testing.T) {
	c := New()
	c.AddTable(makeTable("A", 64))
	c.AddTable(makeTable("B", 64))
	for _, tb := range []string{"A", "B"} {
		if err := c.SetPartition(tb, PartitionSpec{Column: "id", Kind: PartitionHash}); err != nil {
			t.Fatal(err)
		}
	}
	shards, err := c.Shard(3)
	if err != nil {
		t.Fatal(err)
	}
	home := map[int64]int{}
	for i, sc := range shards {
		tab, _ := sc.Table("A")
		for _, tup := range tab.Rel.Tuples() {
			home[tup[0].AsInt()] = i
		}
	}
	for i, sc := range shards {
		tab, _ := sc.Table("B")
		for _, tup := range tab.Rel.Tuples() {
			if home[tup[0].AsInt()] != i {
				t.Fatalf("id %d on shard %d in B but %d in A", tup[0].AsInt(), i, home[tup[0].AsInt()])
			}
		}
	}
}

// TestShardRangePartition: range buckets are contiguous and clamped, NULL
// keys land on shard 0.
func TestShardRangePartition(t *testing.T) {
	sch := relation.NewSchema(
		relation.Column{Table: "R", Name: "key", Kind: relation.KindFloat},
	)
	rel := relation.New("R", sch)
	for _, v := range []float64{-5, 0, 10, 49.9, 50, 99, 150} {
		rel.MustAppend(relation.Tuple{relation.Float(v)})
	}
	rel.MustAppend(relation.Tuple{relation.Null()})
	c := New()
	c.AddTable(rel)
	if err := c.SetPartition("R", PartitionSpec{Column: "key", Kind: PartitionRange, Lo: 0, Hi: 100}); err != nil {
		t.Fatal(err)
	}
	shards, err := c.Shard(2)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{-5, 0, 10, 49.9, math.NaN()}, {50, 99, 150}} // NaN marks the NULL
	for i, sc := range shards {
		tab, _ := sc.Table("R")
		if tab.Rel.Cardinality() != len(want[i]) {
			t.Fatalf("shard %d holds %d tuples, want %d: %v", i, tab.Rel.Cardinality(), len(want[i]), tab.Rel.Tuples())
		}
	}
}

func TestShardErrors(t *testing.T) {
	c := New()
	c.AddTable(makeTable("A", 10))
	if _, err := c.Shard(0); err == nil {
		t.Fatal("shard count 0 must be rejected")
	}
	if _, err := c.Shard(2); err == nil {
		t.Fatal("table without a partition spec must be rejected")
	}
}

func TestHashValueNormalizesNumerics(t *testing.T) {
	if hashValue(relation.Int(3)) != hashValue(relation.Float(3)) {
		t.Fatal("Int(3) and Float(3) must hash alike")
	}
	if hashValue(relation.Int(3)) == hashValue(relation.Int(4)) {
		t.Fatal("distinct keys should hash apart")
	}
}

// TestPartitionByErrors covers the relation-layer contract directly.
func TestPartitionByErrors(t *testing.T) {
	rel := makeTable("A", 5)
	if _, err := rel.PartitionBy(0, nil); err == nil {
		t.Fatal("n=0 must be rejected")
	}
	if _, err := rel.PartitionBy(2, func(relation.Tuple) int { return 7 }); err == nil {
		t.Fatal("out-of-range assignment must be rejected")
	}
}

package catalog

import (
	"math"
	"testing"

	"rankopt/internal/expr"
	"rankopt/internal/relation"
)

func makeTable(name string, n int) *relation.Relation {
	sch := relation.NewSchema(
		relation.Column{Table: name, Name: "id", Kind: relation.KindInt},
		relation.Column{Table: name, Name: "score", Kind: relation.KindFloat},
		relation.Column{Table: name, Name: "grp", Kind: relation.KindInt},
	)
	rel := relation.New(name, sch)
	for i := 0; i < n; i++ {
		rel.MustAppend(relation.Tuple{
			relation.Int(int64(i)),
			relation.Float(float64(i) / float64(n-1)), // uniform [0,1]
			relation.Int(int64(i % 10)),
		})
	}
	return rel
}

func TestAddTableAndStats(t *testing.T) {
	c := New()
	c.AddTable(makeTable("A", 101))
	tab, err := c.Table("A")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Stats.Card != 101 {
		t.Fatalf("Card = %d", tab.Stats.Card)
	}
	sc := tab.Stats.Cols["score"]
	if sc.Min != 0 || sc.Max != 1 {
		t.Errorf("score min/max = %v/%v", sc.Min, sc.Max)
	}
	if sc.Distinct != 101 {
		t.Errorf("score distinct = %d", sc.Distinct)
	}
	// Slab should be (1-0)/(101-1) = 0.01.
	if math.Abs(sc.Slab-0.01) > 1e-12 {
		t.Errorf("slab = %v, want 0.01", sc.Slab)
	}
	if g := tab.Stats.Cols["grp"]; g.Distinct != 10 {
		t.Errorf("grp distinct = %d", g.Distinct)
	}
	if _, err := c.Table("Z"); err == nil {
		t.Error("missing table should error")
	}
}

func TestNullFrac(t *testing.T) {
	sch := relation.NewSchema(relation.Column{Table: "N", Name: "x", Kind: relation.KindFloat})
	rel := relation.New("N", sch)
	rel.MustAppend(relation.Tuple{relation.Float(1)})
	rel.MustAppend(relation.Tuple{relation.Null()})
	rel.MustAppend(relation.Tuple{relation.Null()})
	rel.MustAppend(relation.Tuple{relation.Float(2)})
	c := New()
	c.AddTable(rel)
	cs := c.ColStats("N", "x")
	if cs.NullFrac != 0.5 {
		t.Errorf("NullFrac = %v", cs.NullFrac)
	}
	if cs.Distinct != 2 {
		t.Errorf("Distinct = %d", cs.Distinct)
	}
}

func TestCreateIndexAndLookup(t *testing.T) {
	c := New()
	c.AddTable(makeTable("A", 200))
	idx, err := c.CreateIndex("A", "grp", false)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Tree.DistinctKeys() != 10 {
		t.Errorf("index distinct keys = %d", idx.Tree.DistinctKeys())
	}
	rids := idx.Tree.Lookup(relation.Int(3))
	if len(rids) != 20 {
		t.Errorf("Lookup(grp=3) = %d rids, want 20", len(rids))
	}
	if got := c.IndexOn("A", "grp"); got != idx {
		t.Error("IndexOn should find the created index")
	}
	if c.IndexOn("A", "score") != nil {
		t.Error("IndexOn for unindexed column should be nil")
	}
	if c.IndexOn("Z", "x") != nil {
		t.Error("IndexOn unknown table should be nil")
	}
	if _, err := c.CreateIndex("A", "nope", false); err == nil {
		t.Error("index on unknown column should fail")
	}
	if _, err := c.CreateIndex("Z", "x", false); err == nil {
		t.Error("index on unknown table should fail")
	}
}

func TestIndexSkipsNulls(t *testing.T) {
	sch := relation.NewSchema(relation.Column{Table: "N", Name: "x", Kind: relation.KindFloat})
	rel := relation.New("N", sch)
	rel.MustAppend(relation.Tuple{relation.Float(1)})
	rel.MustAppend(relation.Tuple{relation.Null()})
	c := New()
	c.AddTable(rel)
	idx, err := c.CreateIndex("N", "x", false)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Tree.Len() != 1 {
		t.Errorf("index should skip NULLs, len=%d", idx.Tree.Len())
	}
}

func TestJoinSelectivity(t *testing.T) {
	c := New()
	c.AddTable(makeTable("A", 100)) // grp distinct = 10
	c.AddTable(makeTable("B", 100)) // id distinct = 100
	s := c.JoinSelectivity(expr.Col("A", "grp"), expr.Col("B", "id"))
	if s != 0.01 {
		t.Errorf("selectivity = %v, want 1/100", s)
	}
	s = c.JoinSelectivity(expr.Col("A", "grp"), expr.Col("B", "grp"))
	if s != 0.1 {
		t.Errorf("selectivity = %v, want 1/10", s)
	}
	// Unknown columns fall back.
	if s := c.JoinSelectivity(expr.Col("X", "a"), expr.Col("Y", "b")); s != 0.1 {
		t.Errorf("fallback selectivity = %v", s)
	}
}

func TestFilterSelectivity(t *testing.T) {
	c := New()
	c.AddTable(makeTable("A", 101)) // score uniform [0,1]
	eq := expr.Bin(expr.OpEq, expr.Col("A", "grp"), expr.IntLit(3))
	if s := c.FilterSelectivity(eq); s != 0.1 {
		t.Errorf("eq selectivity = %v", s)
	}
	lt := expr.Bin(expr.OpLt, expr.Col("A", "score"), expr.FloatLit(0.25))
	if s := c.FilterSelectivity(lt); math.Abs(s-0.25) > 1e-9 {
		t.Errorf("lt selectivity = %v", s)
	}
	gt := expr.Bin(expr.OpGe, expr.Col("A", "score"), expr.FloatLit(0.75))
	if s := c.FilterSelectivity(gt); math.Abs(s-0.25) > 1e-9 {
		t.Errorf("ge selectivity = %v", s)
	}
	// Out-of-range constants clamp.
	lt2 := expr.Bin(expr.OpLt, expr.Col("A", "score"), expr.FloatLit(5))
	if s := c.FilterSelectivity(lt2); s != 1 {
		t.Errorf("clamped selectivity = %v", s)
	}
	// Unanalyzable.
	odd := expr.Bin(expr.OpGt, expr.IntLit(1), expr.IntLit(0))
	if s := c.FilterSelectivity(odd); s != 1.0/3 {
		t.Errorf("fallback selectivity = %v", s)
	}
}

func TestCardinalityAndNames(t *testing.T) {
	c := New()
	c.AddTable(makeTable("B", 7))
	c.AddTable(makeTable("A", 5))
	if c.Cardinality("A") != 5 || c.Cardinality("Z") != 0 {
		t.Error("Cardinality mismatch")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Errorf("Names = %v", names)
	}
}

func TestDropAndRebuildIndex(t *testing.T) {
	c := New()
	c.AddTable(makeTable("A", 100))
	if _, err := c.CreateIndex("A", "grp", true); err != nil {
		t.Fatal(err)
	}
	if !c.DropIndex("A", "grp") {
		t.Fatal("drop of existing index should succeed")
	}
	if c.IndexOn("A", "grp") != nil {
		t.Fatal("index still present after drop")
	}
	if c.DropIndex("A", "grp") || c.DropIndex("Z", "x") {
		t.Fatal("dropping absent indexes should report false")
	}
	// Rebuild creates the index fresh, preserving the clustered flag when
	// one existed.
	if _, err := c.CreateIndex("A", "grp", true); err != nil {
		t.Fatal(err)
	}
	idx, err := c.RebuildIndex("A", "grp")
	if err != nil {
		t.Fatal(err)
	}
	if !idx.Clustered {
		t.Error("rebuild should keep the clustered flag")
	}
	if idx.Tree.DistinctKeys() != 10 {
		t.Errorf("rebuilt index keys = %d", idx.Tree.DistinctKeys())
	}
	// Rebuild with no prior index works too (unclustered default).
	idx2, err := c.RebuildIndex("A", "id")
	if err != nil {
		t.Fatal(err)
	}
	if idx2.Clustered {
		t.Error("fresh rebuild defaults to unclustered")
	}
}

func TestRefreshStats(t *testing.T) {
	c := New()
	rel := makeTable("A", 10)
	tab := c.AddTable(rel)
	if tab.Stats.Card != 10 {
		t.Fatal("initial stats")
	}
	rel.MustAppend(relation.Tuple{relation.Int(10), relation.Float(2), relation.Int(0)})
	if err := c.RefreshStats("A"); err != nil {
		t.Fatal(err)
	}
	if tab.Stats.Card != 11 {
		t.Errorf("refreshed card = %d", tab.Stats.Card)
	}
	if cs := tab.Stats.Cols["score"]; cs.Max != 2 {
		t.Errorf("refreshed max = %v", cs.Max)
	}
	if err := c.RefreshStats("ZZ"); err == nil {
		t.Error("refreshing unknown table must fail")
	}
}

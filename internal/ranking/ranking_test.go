package ranking

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// genLists builds m lists over n shared objects with independent uniform
// scores, returning sources plus the exact aggregate per object.
func genLists(m, n int, weights []float64, seed int64) ([]*ListSource, map[int64]float64) {
	rng := rand.New(rand.NewSource(seed))
	scores := make([][]float64, m)
	for i := range scores {
		scores[i] = make([]float64, n)
		for j := range scores[i] {
			scores[i][j] = rng.Float64()
		}
	}
	ids := make([]int64, n)
	for j := range ids {
		ids[j] = int64(j)
	}
	lists := make([]*ListSource, m)
	for i := range lists {
		lists[i] = NewListSource(ids, scores[i])
	}
	exact := map[int64]float64{}
	for j := 0; j < n; j++ {
		t := 0.0
		for i := 0; i < m; i++ {
			t += weights[i] * scores[i][j]
		}
		exact[int64(j)] = t
	}
	return lists, exact
}

func exactTopK(exact map[int64]float64, k int) []Result {
	out := make([]Result, 0, len(exact))
	for id, s := range exact {
		out = append(out, Result{ID: id, Score: s})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].ID < out[b].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func asSources(ls []*ListSource) []Source {
	out := make([]Source, len(ls))
	for i, l := range ls {
		out[i] = l
	}
	return out
}

func asSorted(ls []*ListSource) []SortedAccess {
	out := make([]SortedAccess, len(ls))
	for i, l := range ls {
		out[i] = l
	}
	return out
}

func TestTAMatchesExact(t *testing.T) {
	weights := []float64{0.5, 0.3, 0.2}
	lists, exact := genLists(3, 500, weights, 7)
	got, stats, err := TA(asSources(lists), weights, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := exactTopK(exact, 10)
	if len(got) != 10 {
		t.Fatalf("TA returned %d results", len(got))
	}
	for i := range want {
		if got[i].ID != want[i].ID || math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("TA[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if stats.TotalSorted() == 0 || stats.TotalRandom() == 0 {
		t.Error("TA stats not recorded")
	}
	// Early-out: should not read all 3*500 entries for k=10.
	if stats.TotalSorted() >= 1500 {
		t.Errorf("TA did no early-out: %d sorted accesses", stats.TotalSorted())
	}
}

func TestNRAMatchesExactSet(t *testing.T) {
	weights := []float64{0.4, 0.6}
	lists, exact := genLists(2, 400, weights, 11)
	got, stats, err := NRA(asSorted(lists), weights, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := exactTopK(exact, 8)
	if len(got) != 8 {
		t.Fatalf("NRA returned %d results", len(got))
	}
	// NRA guarantees the correct top-k SET (order by lower bounds).
	wantSet := map[int64]bool{}
	for _, r := range want {
		wantSet[r.ID] = true
	}
	for _, r := range got {
		if !wantSet[r.ID] {
			t.Fatalf("NRA returned %d which is not in the exact top-8", r.ID)
		}
	}
	if stats.TotalRandom() != 0 {
		t.Error("NRA must not use random access")
	}
}

func TestNRAEarlyOut(t *testing.T) {
	weights := []float64{1, 1}
	lists, _ := genLists(2, 5000, weights, 13)
	_, stats, err := NRA(asSorted(lists), weights, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalSorted() >= 10000 {
		t.Errorf("NRA did no early-out: %d sorted accesses", stats.TotalSorted())
	}
}

func TestBordaPrefersConsensus(t *testing.T) {
	// Object 0 is ranked first everywhere; Borda must rank it first.
	ids := []int64{0, 1, 2}
	l1 := NewListSource(ids, []float64{0.9, 0.5, 0.1})
	l2 := NewListSource(ids, []float64{0.8, 0.2, 0.6})
	got, stats, err := Borda([]SortedAccess{l1, l2}, []float64{1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != 0 {
		t.Fatalf("Borda top = %+v", got[0])
	}
	// Borda reads everything.
	if stats.TotalSorted() != 6 {
		t.Errorf("Borda sorted accesses = %d", stats.TotalSorted())
	}
}

func TestValidation(t *testing.T) {
	lists, _ := genLists(2, 10, []float64{1, 1}, 3)
	if _, _, err := TA(asSources(lists), []float64{1}, 5); err == nil {
		t.Error("weight arity must be validated")
	}
	if _, _, err := TA(asSources(lists), []float64{1, -1}, 5); err == nil {
		t.Error("negative weights must be rejected")
	}
	if _, _, err := NRA(asSorted(lists), []float64{1, 1}, 0); err == nil {
		t.Error("k=0 must be rejected")
	}
	if _, _, err := Borda(nil, nil, 5); err == nil {
		t.Error("empty lists must be rejected")
	}
}

func TestKLargerThanObjects(t *testing.T) {
	weights := []float64{1, 1}
	lists, exact := genLists(2, 5, weights, 17)
	got, _, err := TA(asSources(lists), weights, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("TA with k>n returned %d", len(got))
	}
	want := exactTopK(exact, 5)
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("TA order wrong with k>n")
		}
	}
	for i := range lists {
		lists[i].Reset()
	}
	gotN, _, err := NRA(asSorted(lists), weights, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotN) != 5 {
		t.Fatalf("NRA with k>n returned %d", len(gotN))
	}
}

func TestListSource(t *testing.T) {
	s := NewListSource([]int64{5, 6, 7}, []float64{0.2, 0.9, 0.5})
	id, sc, ok := s.Next()
	if !ok || id != 6 || sc != 0.9 {
		t.Fatalf("first = %d/%v", id, sc)
	}
	if v, ok := s.Probe(5); !ok || v != 0.2 {
		t.Error("probe failed")
	}
	if _, ok := s.Probe(99); ok {
		t.Error("probe of absent id should fail")
	}
	s.Reset()
	if id, _, _ := s.Next(); id != 6 {
		t.Error("reset failed")
	}
	if s.Len() != 3 {
		t.Error("len")
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched slices must panic")
		}
	}()
	NewListSource([]int64{1}, []float64{1, 2})
}

// Property: TA and NRA agree with brute force across random instances.
func TestTAandNRAProperty(t *testing.T) {
	f := func(seed int64) bool {
		weights := []float64{0.3, 0.7}
		lists, exact := genLists(2, 120, weights, seed)
		want := exactTopK(exact, 6)
		got, _, err := TA(asSources(lists), weights, 6)
		if err != nil || len(got) != 6 {
			return false
		}
		for i := range want {
			if got[i].ID != want[i].ID {
				return false
			}
		}
		for i := range lists {
			lists[i].Reset()
		}
		gotN, _, err := NRA(asSorted(lists), weights, 6)
		if err != nil || len(gotN) != 6 {
			return false
		}
		wantSet := map[int64]bool{}
		for _, r := range want {
			wantSet[r.ID] = true
		}
		for _, r := range gotN {
			if !wantSet[r.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTA(b *testing.B) {
	weights := []float64{0.5, 0.3, 0.2}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		lists, _ := genLists(3, 2000, weights, int64(i))
		b.StartTimer()
		if _, _, err := TA(asSources(lists), weights, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNRA(b *testing.B) {
	weights := []float64{0.5, 0.5}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		lists, _ := genLists(2, 2000, weights, int64(i))
		b.StartTimer()
		if _, _, err := NRA(asSorted(lists), weights, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// Package ranking implements classic rank-aggregation algorithms over
// ranked lists: Fagin's Threshold Algorithm (TA), the No-Random-Access
// algorithm (NRA), and Borda positional counting as a baseline. These solve
// the paper's "top-k selection" problem class (all lists rank the same
// object set); the rank-join operators in package exec solve the "top-k
// join" class. The algorithms share the threshold machinery the paper's
// rank-join operators encapsulate.
package ranking

import (
	"container/heap"
	"fmt"
	"sort"
)

// SortedAccess retrieves (object, score) pairs in descending score order.
type SortedAccess interface {
	// Next returns the next-ranked object; ok=false when exhausted.
	Next() (id int64, score float64, ok bool)
}

// RandomAccess probes the score of a known object.
type RandomAccess interface {
	// Probe returns the object's score in this list; ok=false if absent.
	Probe(id int64) (score float64, ok bool)
}

// Source couples both access methods over one ranked list.
type Source interface {
	SortedAccess
	RandomAccess
}

// Result is one aggregated answer.
type Result struct {
	ID int64
	// Score is the exact aggregate for TA/Borda; for NRA it is the lower
	// bound at termination (exact once every list reported the object).
	Score float64
}

// Stats reports the access effort an algorithm spent — the analogue of the
// rank-join depths the paper estimates.
type Stats struct {
	// SortedAccesses counts Next calls that returned an object, per list.
	SortedAccesses []int
	// RandomAccesses counts Probe calls, per list.
	RandomAccesses []int
}

func (s Stats) total(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// TotalSorted returns the total sorted accesses across lists.
func (s Stats) TotalSorted() int { return s.total(s.SortedAccesses) }

// TotalRandom returns the total random accesses across lists.
func (s Stats) TotalRandom() int { return s.total(s.RandomAccesses) }

// ListSource is an in-memory Source backed by explicit (id, score) pairs.
type ListSource struct {
	ids    []int64
	scores []float64
	byID   map[int64]float64
	pos    int
}

// NewListSource builds a source from parallel id/score slices, sorting them
// descending by score.
func NewListSource(ids []int64, scores []float64) *ListSource {
	if len(ids) != len(scores) {
		panic(fmt.Sprintf("ranking: %d ids vs %d scores", len(ids), len(scores)))
	}
	idx := make([]int, len(ids))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	s := &ListSource{
		ids:    make([]int64, len(ids)),
		scores: make([]float64, len(ids)),
		byID:   make(map[int64]float64, len(ids)),
	}
	for i, j := range idx {
		s.ids[i] = ids[j]
		s.scores[i] = scores[j]
	}
	for i := range ids {
		s.byID[ids[i]] = scores[i]
	}
	return s
}

// Next implements SortedAccess.
func (s *ListSource) Next() (int64, float64, bool) {
	if s.pos >= len(s.ids) {
		return 0, 0, false
	}
	id, sc := s.ids[s.pos], s.scores[s.pos]
	s.pos++
	return id, sc, true
}

// Probe implements RandomAccess.
func (s *ListSource) Probe(id int64) (float64, bool) {
	sc, ok := s.byID[id]
	return sc, ok
}

// Reset rewinds sorted access to the top.
func (s *ListSource) Reset() { s.pos = 0 }

// Len returns the list length.
func (s *ListSource) Len() int { return len(s.ids) }

// resultHeap is a min-heap on score, keeping the current best-k.
type resultHeap []Result

func (h resultHeap) Len() int           { return len(h) }
func (h resultHeap) Less(i, j int) bool { return h[i].Score < h[j].Score }
func (h resultHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x any)        { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() any {
	old := *h
	n := len(old)
	r := old[n-1]
	*h = old[:n-1]
	return r
}

func validate(m int, weights []float64, k int) error {
	if m == 0 {
		return fmt.Errorf("ranking: no input lists")
	}
	if len(weights) != m {
		return fmt.Errorf("ranking: %d weights for %d lists", len(weights), m)
	}
	for i, w := range weights {
		if w < 0 {
			return fmt.Errorf("ranking: negative weight %v at %d breaks monotonicity", w, i)
		}
	}
	if k <= 0 {
		return fmt.Errorf("ranking: non-positive k %d", k)
	}
	return nil
}

func sortResults(rs []Result) {
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].ID < rs[j].ID
	})
}

// TA runs Fagin's Threshold Algorithm: round-robin sorted access on every
// list; each newly seen object is fully scored via random access to the
// other lists; terminate when the k-th best exact score is at least the
// threshold f(last1, ..., lastm). Requires both access methods on all lists.
func TA(lists []Source, weights []float64, k int) ([]Result, Stats, error) {
	m := len(lists)
	if err := validate(m, weights, k); err != nil {
		return nil, Stats{}, err
	}
	stats := Stats{SortedAccesses: make([]int, m), RandomAccesses: make([]int, m)}
	bounds := NewBounds(m)
	seen := map[int64]bool{}
	var best resultHeap

	for !bounds.AllExhausted() {
		for i := 0; i < m; i++ {
			if bounds.Exhausted(i) {
				continue
			}
			id, sc, ok := lists[i].Next()
			if !ok {
				bounds.Exhaust(i)
				continue
			}
			stats.SortedAccesses[i]++
			if err := bounds.Observe(i, sc); err != nil {
				return nil, stats, err
			}
			if seen[id] {
				continue
			}
			seen[id] = true
			total := weights[i] * sc
			for j := 0; j < m; j++ {
				if j == i {
					continue
				}
				stats.RandomAccesses[j]++
				if s, ok := lists[j].Probe(id); ok {
					total += weights[j] * s
				}
			}
			if len(best) < k {
				heap.Push(&best, Result{ID: id, Score: total})
			} else if total > best[0].Score {
				best[0] = Result{ID: id, Score: total}
				heap.Fix(&best, 0)
			}
		}
		// Threshold: the best possible score of any unseen object. Every
		// non-exhausted list was observed this round, so Upper is finite.
		threshold := 0.0
		for i := 0; i < m; i++ {
			if !bounds.Exhausted(i) {
				threshold += weights[i] * bounds.Upper(i)
			}
		}
		if len(best) >= k && best[0].Score >= threshold {
			break
		}
	}
	out := append([]Result(nil), best...)
	sortResults(out)
	return out, stats, nil
}

// nraCand tracks one partially seen object during NRA.
type nraCand struct {
	id    int64
	known []bool
	lower float64
}

// NRA runs the No-Random-Access algorithm: round-robin sorted access only.
// An object's lower bound counts its known weighted scores (unknown lists
// contribute their minimum, assumed 0); its upper bound fills unknown lists
// with that list's last-seen score. Terminate when the k-th best lower bound
// is at least every other candidate's upper bound and the unseen-object
// upper bound. Scores must be non-negative.
func NRA(lists []SortedAccess, weights []float64, k int) ([]Result, Stats, error) {
	m := len(lists)
	if err := validate(m, weights, k); err != nil {
		return nil, Stats{}, err
	}
	stats := Stats{SortedAccesses: make([]int, m), RandomAccesses: make([]int, m)}
	bounds := NewBounds(m)
	cands := map[int64]*nraCand{}

	upper := func(c *nraCand) float64 {
		u := c.lower
		for i := 0; i < m; i++ {
			if !c.known[i] && !bounds.Exhausted(i) {
				u += weights[i] * bounds.Upper(i)
			}
		}
		return u
	}
	for {
		for i := 0; i < m; i++ {
			if bounds.Exhausted(i) {
				continue
			}
			id, sc, ok := lists[i].Next()
			if !ok {
				bounds.Exhaust(i)
				continue
			}
			if sc < 0 {
				return nil, stats, fmt.Errorf("ranking: NRA requires non-negative scores, got %v", sc)
			}
			stats.SortedAccesses[i]++
			if err := bounds.Observe(i, sc); err != nil {
				return nil, stats, err
			}
			c := cands[id]
			if c == nil {
				c = &nraCand{id: id, known: make([]bool, m)}
				cands[id] = c
			}
			if !c.known[i] {
				c.known[i] = true
				c.lower += weights[i] * sc
			}
		}
		// Check the stopping condition once per round.
		if len(cands) >= k {
			all := make([]*nraCand, 0, len(cands))
			for _, c := range cands {
				all = append(all, c)
			}
			sort.Slice(all, func(a, b int) bool {
				if all[a].lower != all[b].lower {
					return all[a].lower > all[b].lower
				}
				return all[a].id < all[b].id
			})
			kth := all[k-1].lower
			// Upper bound of any unseen object.
			unseenU := 0.0
			for i := 0; i < m; i++ {
				if !bounds.Exhausted(i) {
					unseenU += weights[i] * bounds.Upper(i)
				}
			}
			ok := kth >= unseenU
			for _, c := range all[k:] {
				if !ok {
					break
				}
				if upper(c) > kth {
					ok = false
				}
			}
			if ok || bounds.AllExhausted() {
				out := make([]Result, 0, k)
				for _, c := range all[:k] {
					out = append(out, Result{ID: c.id, Score: c.lower})
				}
				return out, stats, nil
			}
		} else if bounds.AllExhausted() {
			out := make([]Result, 0, len(cands))
			for _, c := range cands {
				out = append(out, Result{ID: c.id, Score: c.lower})
			}
			sortResults(out)
			return out, stats, nil
		}
	}
}

// Borda scores each object by positional votes: an object ranked p-th in a
// list of n contributes weight*(n-p). It reads every list fully — the
// linear-time consistency baseline the paper cites (Borda's method), useful
// as a cheap but rank-only-approximate comparator.
func Borda(lists []SortedAccess, weights []float64, k int) ([]Result, Stats, error) {
	m := len(lists)
	if err := validate(m, weights, k); err != nil {
		return nil, Stats{}, err
	}
	stats := Stats{SortedAccesses: make([]int, m), RandomAccesses: make([]int, m)}
	votes := map[int64]float64{}
	for i, l := range lists {
		var entries []int64
		for {
			id, _, ok := l.Next()
			if !ok {
				break
			}
			stats.SortedAccesses[i]++
			entries = append(entries, id)
		}
		n := len(entries)
		for p, id := range entries {
			votes[id] += weights[i] * float64(n-p-1)
		}
	}
	out := make([]Result, 0, len(votes))
	for id, v := range votes {
		out = append(out, Result{ID: id, Score: v})
	}
	sortResults(out)
	if len(out) > k {
		out = out[:k]
	}
	return out, stats, nil
}

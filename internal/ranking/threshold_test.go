package ranking

import (
	"errors"
	"math"
	"testing"
)

func TestBoundsLifecycle(t *testing.T) {
	b := NewBounds(3)
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	if !math.IsInf(b.Upper(0), 1) || !math.IsInf(b.MaxUpper(), 1) {
		t.Fatal("unobserved bounds must be +Inf")
	}
	b.SetCeiling(0, 10)
	b.SetCeiling(0, 20) // ceilings only tighten
	if b.Upper(0) != 10 {
		t.Fatalf("Upper(0) = %v after ceilings 10 then 20", b.Upper(0))
	}
	if err := b.Observe(0, 7); err != nil {
		t.Fatalf("descending observation rejected: %v", err)
	}
	if err := b.Observe(0, 9); err == nil { // rising score = order violation
		t.Fatal("rising score must be rejected")
	}
	if b.Upper(0) != 7 { // and the stale bound must not loosen either
		t.Fatalf("Upper(0) = %v after observing 7 then rejected 9", b.Upper(0))
	}
	if err := b.Observe(1, 4); err != nil {
		t.Fatal(err)
	}
	if b.MaxUpper() != math.Inf(1) { // list 2 still unobserved
		t.Fatalf("MaxUpper = %v", b.MaxUpper())
	}
	if err := b.Observe(2, 5); err != nil {
		t.Fatal(err)
	}
	if b.MaxUpper() != 7 {
		t.Fatalf("MaxUpper = %v, want 7", b.MaxUpper())
	}
	b.Exhaust(0)
	if !b.Exhausted(0) || !math.IsInf(b.Upper(0), -1) {
		t.Fatal("exhausted list must report -Inf upper bound")
	}
	if b.AllExhausted() {
		t.Fatal("lists 1 and 2 are still live")
	}
	b.Exhaust(1)
	b.Exhaust(2)
	if !b.AllExhausted() {
		t.Fatal("all lists exhausted")
	}
	if !math.IsInf(b.MaxUpper(), -1) {
		t.Fatalf("MaxUpper after exhaustion = %v", b.MaxUpper())
	}
}

// Out-of-order and NaN observations must fail loudly with the typed error —
// silently keeping a stale-tight bound would let threshold pruning cut a
// source that can still beat the k-th score.
func TestBoundsOrderViolation(t *testing.T) {
	b := NewBounds(2)
	if err := b.Observe(0, 5); err != nil {
		t.Fatal(err)
	}
	err := b.Observe(0, 5.1)
	var ov *OrderViolationError
	if !errors.As(err, &ov) {
		t.Fatalf("rising score: got %v, want *OrderViolationError", err)
	}
	if ov.Source != 0 || ov.Score != 5.1 || ov.Bound != 5 {
		t.Fatalf("violation detail = %+v", *ov)
	}
	// Equal and within-slack repeats are rounding noise, not violations.
	if err := b.Observe(0, 5); err != nil {
		t.Fatalf("equal score rejected: %v", err)
	}
	if err := b.Observe(0, 5+1e-12); err != nil {
		t.Fatalf("within-slack score rejected: %v", err)
	}
	// NaN can never be ordered; it must be rejected even on a fresh source.
	if err := b.Observe(1, math.NaN()); !errors.As(err, &ov) {
		t.Fatalf("NaN: got %v, want *OrderViolationError", err)
	}
	// A first observation above an a-priori ceiling breaks the same contract.
	b2 := NewBounds(1)
	b2.SetCeiling(0, 10)
	if err := b2.Observe(0, 11); !errors.As(err, &ov) {
		t.Fatalf("above-ceiling score: got %v, want *OrderViolationError", err)
	}
	// -Inf (NULL scores sorting last) is a legal descending observation.
	if err := b2.Observe(0, math.Inf(-1)); err != nil {
		t.Fatalf("-Inf observation rejected: %v", err)
	}
}

package ranking

import (
	"math"
	"testing"
)

func TestBoundsLifecycle(t *testing.T) {
	b := NewBounds(3)
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	if !math.IsInf(b.Upper(0), 1) || !math.IsInf(b.MaxUpper(), 1) {
		t.Fatal("unobserved bounds must be +Inf")
	}
	b.SetCeiling(0, 10)
	b.SetCeiling(0, 20) // ceilings only tighten
	if b.Upper(0) != 10 {
		t.Fatalf("Upper(0) = %v after ceilings 10 then 20", b.Upper(0))
	}
	b.Observe(0, 7)
	b.Observe(0, 9) // observations only tighten too
	if b.Upper(0) != 7 {
		t.Fatalf("Upper(0) = %v after observing 7 then 9", b.Upper(0))
	}
	b.Observe(1, 4)
	if b.MaxUpper() != math.Inf(1) { // list 2 still unobserved
		t.Fatalf("MaxUpper = %v", b.MaxUpper())
	}
	b.Observe(2, 5)
	if b.MaxUpper() != 7 {
		t.Fatalf("MaxUpper = %v, want 7", b.MaxUpper())
	}
	b.Exhaust(0)
	if !b.Exhausted(0) || !math.IsInf(b.Upper(0), -1) {
		t.Fatal("exhausted list must report -Inf upper bound")
	}
	if b.AllExhausted() {
		t.Fatal("lists 1 and 2 are still live")
	}
	b.Exhaust(1)
	b.Exhaust(2)
	if !b.AllExhausted() {
		t.Fatal("all lists exhausted")
	}
	if !math.IsInf(b.MaxUpper(), -1) {
		t.Fatalf("MaxUpper after exhaustion = %v", b.MaxUpper())
	}
}

package ranking

import (
	"fmt"
	"math"
)

// OrderViolationError reports a source that broke the descending-order
// contract Bounds depends on: it emitted a score above its own bound, or a
// NaN, which cannot be ordered at all. Silently keeping the stale-tight bound
// would let threshold-style pruning (TA, NRA, the sharded merge) cut a source
// that could still beat the k-th score — wrong answers instead of a loud
// failure.
type OrderViolationError struct {
	Source int
	Score  float64
	Bound  float64
}

func (e *OrderViolationError) Error() string {
	if math.IsNaN(e.Score) {
		return fmt.Sprintf("ranking: source %d emitted NaN score (bound %v) — scores must be orderable and descending", e.Source, e.Bound)
	}
	return fmt.Sprintf("ranking: source %d emitted score %v above its bound %v — sources must emit in descending order", e.Source, e.Score, e.Bound)
}

// orderSlack is the tolerance around bound u when asserting descending order:
// a-priori ceilings and stream scores are computed by differently ordered
// float arithmetic, so exact comparison would misfire on rounding noise.
func orderSlack(u float64) float64 {
	a := math.Abs(u)
	if a < 1 || math.IsInf(a, 0) {
		a = 1
	}
	return 1e-9 * a
}

// Bounds tracks per-source upper bounds for threshold-style early
// termination. It is the machinery shared by TA, NRA, and the sharded
// coordinator merge: every source emits scores in descending order, so the
// last observed score bounds everything the source can still produce, an
// optional a-priori ceiling (e.g. derived from per-shard statistics) bounds a
// source before it has emitted anything, and an exhausted source can produce
// nothing at all.
//
// Bounds is not safe for concurrent use; callers serialize access (the
// coordinator observes from a single merge goroutine).
type Bounds struct {
	upper     []float64
	exhausted []bool
}

// NewBounds tracks n sources, each initially unbounded (+Inf).
func NewBounds(n int) *Bounds {
	b := &Bounds{upper: make([]float64, n), exhausted: make([]bool, n)}
	for i := range b.upper {
		b.upper[i] = math.Inf(1)
	}
	return b
}

// Len returns the number of tracked sources.
func (b *Bounds) Len() int { return len(b.upper) }

// SetCeiling tightens source i's bound with an a-priori ceiling, typically
// computed from statistics before the source has produced anything. Looser
// ceilings than the current bound are ignored.
func (b *Bounds) SetCeiling(i int, v float64) {
	if v < b.upper[i] {
		b.upper[i] = v
	}
}

// Observe records a score emitted by source i. Because sources emit in
// descending order, the observation bounds every future emission. A score
// above the current bound (beyond rounding slack) or a NaN breaks that
// contract and returns an *OrderViolationError; the bound is left unchanged.
func (b *Bounds) Observe(i int, score float64) error {
	u := b.upper[i]
	if math.IsNaN(score) || score > u+orderSlack(u) {
		return &OrderViolationError{Source: i, Score: score, Bound: u}
	}
	if score < u {
		b.upper[i] = score
	}
	return nil
}

// Exhaust marks source i as having no further output.
func (b *Bounds) Exhaust(i int) { b.exhausted[i] = true }

// Exhausted reports whether source i is exhausted.
func (b *Bounds) Exhausted(i int) bool { return b.exhausted[i] }

// AllExhausted reports whether every source is exhausted.
func (b *Bounds) AllExhausted() bool {
	for _, e := range b.exhausted {
		if !e {
			return false
		}
	}
	return true
}

// Upper returns the best score source i can still produce: -Inf once
// exhausted, +Inf before any observation or ceiling, otherwise the tightest
// known bound.
func (b *Bounds) Upper(i int) float64 {
	if b.exhausted[i] {
		return math.Inf(-1)
	}
	return b.upper[i]
}

// MaxUpper returns the best score any source can still produce — the
// coordinator's stopping test: once MaxUpper is no better than the k-th
// buffered score, no source can change the top k.
func (b *Bounds) MaxUpper() float64 {
	best := math.Inf(-1)
	for i := range b.upper {
		if u := b.Upper(i); u > best {
			best = u
		}
	}
	return best
}

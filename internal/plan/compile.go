package plan

import (
	"fmt"

	"rankopt/internal/catalog"
	"rankopt/internal/exec"
	"rankopt/internal/expr"
)

// Compile lowers a physical plan into an executable operator tree bound to
// the given catalog.
func Compile(cat *catalog.Catalog, n *Node) (exec.Operator, error) {
	return CompileTraced(cat, n, nil)
}

// CompileTraced compiles like Compile and additionally invokes trace for
// every (plan node, compiled operator) pair, letting callers keep handles to
// instrumented operators — e.g. rank-joins whose measured depths are
// compared against the optimizer's estimates after execution.
func CompileTraced(cat *catalog.Catalog, n *Node, trace func(*Node, exec.Operator)) (exec.Operator, error) {
	return CompileTracedLimited(cat, n, trace, nil)
}

// CompileLimited compiles like Compile with every buffering operator charged
// against the shared budget (nil budget compiles the unlimited tree).
func CompileLimited(cat *catalog.Catalog, n *Node, budget *exec.Budget) (exec.Operator, error) {
	return CompileTracedLimited(cat, n, nil, budget)
}

// CompileTracedLimited is CompileTraced plus a shared resource budget wired
// into every buffering operator (rank-join queues and hash tables, TopK
// heaps, sorts, hash-join build tables).
func CompileTracedLimited(cat *catalog.Catalog, n *Node, trace func(*Node, exec.Operator), budget *exec.Budget) (exec.Operator, error) {
	return CompileWith(cat, n, Config{Trace: trace, Budget: budget})
}

// Config collects the compilation knobs for CompileWith; the zero value
// compiles exactly like Compile.
type Config struct {
	// Trace is invoked for every (plan node, compiled operator) pair.
	Trace func(*Node, exec.Operator)
	// Budget, when set, is wired into every buffering operator.
	Budget *exec.Budget
	// ScalarRef compiles the scalar reference executor: operators with a
	// vectorized internal phase fall back to their pre-batch per-tuple form
	// (today that is the hash join's build and table layout). Combined with a
	// per-tuple drain this reproduces the executor exactly as it was before
	// batch execution landed — the baseline the batch benchmarks measure
	// against and the independent side of the differential oracle.
	ScalarRef bool
}

// CompileWith compiles n under the given configuration.
func CompileWith(cat *catalog.Catalog, n *Node, cfg Config) (exec.Operator, error) {
	c := &compiler{cat: cat, trace: cfg.Trace, budget: cfg.Budget, scalarRef: cfg.ScalarRef}
	return c.compile(n)
}

type compiler struct {
	cat   *catalog.Catalog
	trace func(*Node, exec.Operator)
	// wrap, when set, replaces every built operator before it is wired into
	// its parent — the EXPLAIN ANALYZE hook that threads a stats collector
	// between each pair of operators.
	wrap func(*Node, exec.Operator) exec.Operator
	// budget, when set, is installed into every buffering operator so the
	// whole tree draws from one per-query allowance.
	budget *exec.Budget
	// scalarRef selects the scalar reference configuration (Config.ScalarRef).
	scalarRef bool
}

func (c *compiler) compile(n *Node) (exec.Operator, error) {
	op, err := c.build(n)
	if err != nil {
		return nil, err
	}
	if c.wrap != nil {
		op = c.wrap(n, op)
	}
	if c.trace != nil {
		c.trace(n, op)
	}
	return op, nil
}

func (c *compiler) build(n *Node) (exec.Operator, error) {
	switch n.Op {
	case OpSeqScan:
		tab, err := c.cat.Table(n.Table)
		if err != nil {
			return nil, err
		}
		return exec.NewSeqScan(tab.Rel), nil

	case OpIndexScan:
		tab, err := c.cat.Table(n.Table)
		if err != nil {
			return nil, err
		}
		if n.Index == nil {
			return nil, fmt.Errorf("plan: index scan on %s without index", n.Table)
		}
		return exec.NewIndexScan(tab.Rel, n.Index, n.IndexDesc), nil

	case OpSort:
		in, err := c.compile(n.Input())
		if err != nil {
			return nil, err
		}
		s := exec.NewSort(in, n.SortKeys...)
		s.Budget = c.budget
		return s, nil

	case OpFilter:
		in, err := c.compile(n.Input())
		if err != nil {
			return nil, err
		}
		return exec.NewFilter(in, n.Pred), nil

	case OpLimit:
		in, err := c.compile(n.Input())
		if err != nil {
			return nil, err
		}
		return exec.NewLimit(in, n.K), nil

	case OpRank:
		in, err := c.compile(n.Input())
		if err != nil {
			return nil, err
		}
		return exec.NewRankAssign(in, n.Score), nil

	case OpProject:
		in, err := c.compile(n.Input())
		if err != nil {
			return nil, err
		}
		return exec.NewProject(in, n.Items...), nil

	case OpHashAgg:
		in, err := c.compile(n.Input())
		if err != nil {
			return nil, err
		}
		return exec.NewHashAggregate(in, n.GroupBy, n.Aggs), nil

	case OpSortAgg:
		in, err := c.compile(n.Input())
		if err != nil {
			return nil, err
		}
		return exec.NewSortedAggregate(in, n.GroupBy, n.Aggs), nil

	case OpTopK:
		in, err := c.compile(n.Input())
		if err != nil {
			return nil, err
		}
		t := exec.NewTopK(in, n.Score, n.K)
		t.Budget = c.budget
		return t, nil

	case OpRankAgg:
		return exec.NewTASelect(n.TAInputs, n.K)

	case OpIndexRange:
		tab, err := c.cat.Table(n.Table)
		if err != nil {
			return nil, err
		}
		if n.Index == nil {
			return nil, fmt.Errorf("plan: index range scan on %s without index", n.Table)
		}
		return exec.NewIndexRangeScan(tab.Rel, n.Index, n.RangeLo, n.RangeHi, n.HasLo, n.HasHi), nil

	case OpNLJ:
		l, r, err := c.children(n)
		if err != nil {
			return nil, err
		}
		return exec.NewNestedLoopsJoin(l, r, n.fullJoinPred()), nil

	case OpINLJ:
		l, err := c.compile(n.Left())
		if err != nil {
			return nil, err
		}
		tab, err := c.cat.Table(n.Table)
		if err != nil {
			return nil, err
		}
		if n.Index == nil {
			return nil, fmt.Errorf("plan: index NL join on %s without index", n.Table)
		}
		if len(n.EqPreds) == 0 {
			return nil, fmt.Errorf("plan: index NL join without equi-predicate")
		}
		return exec.NewIndexNLJoin(l, tab.Rel, n.Index, n.EqPreds[0].L, n.residualAfterPrimary()), nil

	case OpHashJoin:
		l, r, err := c.children(n)
		if err != nil {
			return nil, err
		}
		if len(n.EqPreds) == 0 {
			return nil, fmt.Errorf("plan: hash join without equi-predicate")
		}
		hj := exec.NewHashJoin(l, r, n.EqPreds[0].L, n.EqPreds[0].R, n.residualAfterPrimary())
		hj.Budget = c.budget
		hj.BuildSizeHint = int(n.Left().Card)
		hj.PerTupleBuild = c.scalarRef
		return hj, nil

	case OpMergeJoin:
		l, r, err := c.children(n)
		if err != nil {
			return nil, err
		}
		if len(n.EqPreds) == 0 {
			return nil, fmt.Errorf("plan: merge join without equi-predicate")
		}
		return exec.NewSortMergeJoin(l, r, n.EqPreds[0].L, n.EqPreds[0].R, n.residualAfterPrimary()), nil

	case OpHRJN:
		l, r, err := c.children(n)
		if err != nil {
			return nil, err
		}
		if len(n.EqPreds) == 0 {
			return nil, fmt.Errorf("plan: HRJN without equi-predicate")
		}
		h := exec.NewHRJN(l, r, n.LScore, n.RScore,
			n.EqPreds[0].L, n.EqPreds[0].R, n.residualAfterPrimary())
		h.Strategy = n.Strategy
		// Pre-size the hash tables and ranking queue from the depth model
		// (zero when the plan was not annotated; see AnnotateDepthHints).
		h.SizeHintL = int(n.EstDL)
		h.SizeHintR = int(n.EstDR)
		h.QueueHint = int(n.Sel * n.EstDL * n.EstDR)
		h.Budget = c.budget
		return h, nil

	case OpNRJN:
		l, r, err := c.children(n)
		if err != nil {
			return nil, err
		}
		nr := exec.NewNRJN(l, r, n.LScore, n.RScore, n.fullJoinPred())
		nr.QueueHint = int(n.Sel * n.EstDL * n.Right().Card)
		nr.Budget = c.budget
		return nr, nil

	case OpAnyK:
		ins := make([]exec.Operator, len(n.Children))
		for i, ch := range n.Children {
			in, err := c.compile(ch)
			if err != nil {
				return nil, err
			}
			ins[i] = in
		}
		ak, err := exec.NewAnyK(ins, n.AnyKScores, n.AnyKLKeys, n.AnyKRKeys)
		if err != nil {
			return nil, err
		}
		ak.Budget = c.budget
		return ak, nil

	default:
		return nil, fmt.Errorf("plan: cannot compile operator %v", n.Op)
	}
}

func (c *compiler) children(n *Node) (exec.Operator, exec.Operator, error) {
	l, err := c.compile(n.Left())
	if err != nil {
		return nil, nil, err
	}
	r, err := c.compile(n.Right())
	if err != nil {
		return nil, nil, err
	}
	return l, r, nil
}

// fullJoinPred combines all equi-predicates and the residual into one
// expression (for operators that evaluate predicates directly).
func (n *Node) fullJoinPred() expr.Expr {
	conjs := make([]expr.Expr, 0, len(n.EqPreds)+1)
	for _, j := range n.EqPreds {
		conjs = append(conjs, expr.Bin(expr.OpEq, j.L, j.R))
	}
	conjs = append(conjs, n.Pred)
	return expr.And(conjs...)
}

// residualAfterPrimary combines every equi-predicate beyond the first with
// the residual predicate (for operators that handle the primary key
// natively).
func (n *Node) residualAfterPrimary() expr.Expr {
	conjs := make([]expr.Expr, 0, len(n.EqPreds))
	for _, j := range n.EqPreds[1:] {
		conjs = append(conjs, expr.Bin(expr.OpEq, j.L, j.R))
	}
	conjs = append(conjs, n.Pred)
	return expr.And(conjs...)
}

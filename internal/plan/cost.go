package plan

import (
	"math"

	"rankopt/internal/estimate"
)

// Cost returns the estimated cost for the plan rooted at n to deliver its
// first k output tuples. Blocking operators (Sort) charge their full price
// regardless of k; streaming operators prorate; rank-join operators consult
// the Section 4 depth model to convert k into input depths and recursively
// charge their children for exactly those depths — the cost-side mirror of
// Algorithm Propagate. TotalCost is Cost(Card).
func (n *Node) Cost(k float64) float64 {
	if k > n.Card {
		k = n.Card
	}
	if k < 0 {
		k = 0
	}
	p := n.P
	switch n.Op {
	case OpSeqScan:
		return p.SeqScan(n.Card, k)

	case OpIndexScan, OpIndexRange:
		clustered := n.Index != nil && n.Index.Clustered
		return p.IndexScan(k, clustered)

	case OpSort:
		in := n.Input()
		return in.Cost(in.Card) + p.Sort(in.Card)

	case OpFilter:
		in := n.Input()
		need := n.Card
		if n.Sel > 0 {
			need = math.Min(k/n.Sel, in.Card)
		}
		return in.Cost(need) + need*p.CPUTuple

	case OpNLJ:
		l, r := n.Left(), n.Right()
		frac := fraction(k, n.Card)
		outer := l.Card * frac
		// Inner is always fully materialized.
		return l.Cost(outer) + r.Cost(r.Card) + p.NestedLoopCPU(outer, r.Card, k)

	case OpINLJ:
		l := n.Left()
		frac := fraction(k, n.Card)
		outer := l.Card * frac
		matchesPerProbe := n.Sel * n.InnerCard
		return l.Cost(outer) + outer*p.IndexProbe(matchesPerProbe)

	case OpHashJoin:
		l, r := n.Left(), n.Right()
		frac := fraction(k, n.Card)
		probe := r.Card * frac
		return l.Cost(l.Card) + p.HashBuild(l.Card) + r.Cost(probe) + p.HashProbe(probe, k)

	case OpMergeJoin:
		l, r := n.Left(), n.Right()
		frac := fraction(k, n.Card)
		return l.Cost(l.Card*frac) + r.Cost(r.Card*frac) + p.MergeCPU(l.Card*frac, r.Card*frac, k)

	case OpHRJN:
		dL, dR := n.Depths(k)
		l, r := n.Left(), n.Right()
		buffered := n.Sel * dL * dR
		return l.Cost(dL) + r.Cost(dR) +
			p.HashProbe(dL+dR, buffered) +
			p.HeapPush(buffered, math.Max(buffered, 2))

	case OpNRJN:
		dL := n.nrjnOuterDepth(k)
		l, r := n.Left(), n.Right()
		matches := n.Sel * dL * r.Card
		return l.Cost(dL) + r.Cost(r.Card) +
			p.NestedLoopCPU(dL, r.Card, matches) +
			p.HeapPush(matches, math.Max(matches, 2))

	case OpLimit:
		kk := math.Min(k, float64(n.K))
		return n.Input().Cost(kk) + kk*p.CPUTuple

	case OpRank, OpProject:
		return n.Input().Cost(k) + k*p.CPUTuple

	case OpHashAgg:
		// Blocking: the whole input is consumed and hashed before the first
		// group emerges.
		in := n.Input()
		return in.Cost(in.Card) + p.HashBuild(in.Card) + n.Card*p.CPUTuple

	case OpSortAgg:
		// Streaming: producing k groups consumes the matching input prefix.
		in := n.Input()
		frac := fraction(k, n.Card)
		return in.Cost(in.Card*frac) + in.Card*frac*p.CPUCompare + k*p.CPUTuple

	case OpTopK:
		// Bounded-heap sort: the whole input streams through a K-sized heap
		// — no sort I/O, O(n log K) CPU.
		in := n.Input()
		return in.Cost(in.Card) + p.HeapPush(in.Card, math.Max(float64(n.K), 2))

	case OpRankAgg:
		// Fagin's TA over m lists of ~BaseN objects: the expected sorted
		// depth per list is D = n^{(m-1)/m}·(m!·k)^{1/m}/m; every newly seen
		// object costs m-1 random probes. Each access is a random page.
		m := float64(len(n.TAInputs))
		if m < 1 {
			return math.Inf(1)
		}
		nn := math.Max(n.BaseN, 1)
		fact := 1.0
		for i := 2.0; i <= m; i++ {
			fact *= i
		}
		d := math.Pow(nn, (m-1)/m) * math.Pow(fact*math.Max(k, 1), 1/m) / m
		d = math.Min(math.Max(d, 1), nn)
		accesses := m*d + m*d*(m-1)
		return accesses*p.RandPage + m*d*p.CPUTuple

	case OpAnyK:
		// Any-k enumeration: every input is drained and bucketed up front
		// (the build), then each of the k results costs one heap pop plus at
		// most m successor pushes — a delay independent of the join's output
		// cardinality. The per-bucket suffix sort is charged at the expected
		// group size n·sel, not the full input.
		m := float64(len(n.Children))
		total := 0.0
		for _, c := range n.Children {
			g := math.Max(n.Sel*c.Card, 1)
			total += c.Cost(c.Card) + p.AnyKBuild(c.Card, g)
		}
		return total + p.AnyKDelay(math.Max(k, 1), m)

	default:
		panic("plan: Cost on unknown operator")
	}
}

// TotalCost is the cost to deliver the full output.
func (n *Node) TotalCost() float64 { return n.Cost(n.Card) }

// fraction returns produced/total clamped to [0,1]; producing from an empty
// output charges nothing extra.
func fraction(k, card float64) float64 {
	if card <= 0 {
		return 0
	}
	f := k / card
	if f > 1 {
		return 1
	}
	return f
}

// Depths returns the estimated input depths (dL, dR) a rank-join node needs
// to deliver its top-k results, clamped to what the children can produce.
// Non-rank-join nodes panic.
func (n *Node) Depths(k float64) (float64, float64) {
	if !n.Op.IsRankJoin() {
		panic("plan: Depths on non-rank-join node")
	}
	if k < 1 {
		k = 1
	}
	if k > n.Card && n.Card >= 1 {
		k = n.Card
	}
	// An empirical observation from the feedback loop overrides the model:
	// the executor measured these depths on this exact table split.
	if n.DepthHint != nil {
		if dl, dr := n.DepthHint.DepthsAt(k); dl > 0 || dr > 0 {
			dL := math.Min(math.Max(dl, 1), n.Left().Card)
			dR := math.Min(math.Max(dr, 1), n.Right().Card)
			return math.Max(dL, 0), math.Max(dR, 0)
		}
	}
	s := n.Sel
	if s <= 0 {
		s = 1e-9
	}
	if s > 1 {
		s = 1
	}
	var d estimate.Depths
	var err error
	if n.LLeaves == 1 && n.RLeaves == 1 && n.LSlab > 0 && n.RSlab > 0 {
		d, err = estimate.TwoUniform(k, s, n.LSlab, n.RSlab)
	} else {
		baseN := n.BaseN
		if baseN < 1 {
			baseN = 1
		}
		d, err = estimate.HierarchyWorst(k, s, maxInt(n.LLeaves, 1), maxInt(n.RLeaves, 1), baseN)
	}
	if err != nil {
		// Degenerate parameters: fall back to consuming everything.
		return n.Left().Card, n.Right().Card
	}
	dL := math.Min(d.DL, n.Left().Card)
	dR := math.Min(d.DR, n.Right().Card)
	if dL < 1 {
		dL = math.Min(1, n.Left().Card)
	}
	if dR < 1 {
		dR = math.Min(1, n.Right().Card)
	}
	return dL, dR
}

// nrjnOuterDepth estimates the outer depth of an NRJN node: its inner is
// consumed fully and unsorted, so the one-sided analysis applies when both
// sides are single ranked base inputs with known slabs; hierarchies fall
// back to the symmetric model's left depth.
func (n *Node) nrjnOuterDepth(k float64) float64 {
	if n.DepthHint != nil {
		dL, _ := n.Depths(k)
		return dL
	}
	if k < 1 {
		k = 1
	}
	if k > n.Card && n.Card >= 1 {
		k = n.Card
	}
	if n.LLeaves == 1 && n.RLeaves == 1 && n.LSlab > 0 && n.RSlab > 0 {
		s := n.Sel
		if s <= 0 {
			s = 1e-9
		}
		if s > 1 {
			s = 1
		}
		if d, err := estimate.OneSidedDepth(k, s, n.LSlab, n.RSlab); err == nil {
			return math.Min(math.Max(d, 1), n.Left().Card)
		}
	}
	dL, _ := n.Depths(k)
	return dL
}

// PropagateK walks the plan tree pushing the requested output count k down
// to every node: rank-join children receive the operator's estimated depths
// (Algorithm Propagate), blocking and streaming operators receive their
// natural demands. visit is called with each node and its required k.
func PropagateK(root *Node, k float64, visit func(n *Node, k float64)) {
	if k > root.Card {
		k = root.Card
	}
	visit(root, k)
	switch {
	case root.Op.IsRankJoin():
		dL, dR := root.Depths(k)
		PropagateK(root.Left(), dL, visit)
		PropagateK(root.Right(), dR, visit)
	case root.Op == OpLimit:
		PropagateK(root.Input(), math.Min(k, float64(root.K)), visit)
	case root.Op == OpSort || root.Op == OpHashAgg || root.Op == OpTopK:
		// Blocking: the child is consumed fully.
		PropagateK(root.Input(), root.Input().Card, visit)
	case len(root.Children) == 1:
		PropagateK(root.Input(), k, visit)
	default:
		for _, c := range root.Children {
			PropagateK(c, c.Card, visit)
		}
	}
}

// EstimateTree mirrors the rank-join structure of the plan into an
// estimate.Node tree so Algorithm Propagate can annotate expected depths for
// the experiment harness. Non-rank-join unary operators are transparent;
// scans become leaves; traditional joins collapse to leaves with their
// output cardinality (their inputs are consumed wholesale anyway).
func (n *Node) EstimateTree() *estimate.Node {
	switch {
	case n.Op.IsRankJoin():
		return estimate.Join(n.Left().EstimateTree(), n.Right().EstimateTree(), n.Sel)
	case len(n.Children) == 1:
		return n.Input().EstimateTree()
	case len(n.Children) == 0:
		slab := 0.0
		if n.LSlab > 0 {
			slab = n.LSlab
		}
		return estimate.Leaf(n.Card, slab)
	default:
		return estimate.Leaf(n.Card, 0)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package plan

import (
	"fmt"
	"math"
	"strings"

	"rankopt/internal/exec"
)

// ShardRun pairs one shard's rebound plan clone with the stats collectors
// its pipeline executed under. The engine builds one per shard when an
// Analyze (or traced) session runs on the scatter-gather tier.
type ShardRun struct {
	Shard    int
	Root     *Node
	Analysis *AnalyzedPlan
}

// ShardedAnalysis is the EXPLAIN ANALYZE outcome of a sharded session: the
// coordinator's merge stats (with the per-shard ceiling/bound/cause rows)
// plus every shard's analyzed pipeline. Render with FormatShardedAnalyze.
type ShardedAnalysis struct {
	Stats  exec.ShardMergeStats
	Shards []ShardRun
}

// fmtScore renders a score bound for the shard table; ceilings can
// legitimately be ±Inf (no provable bound / provably empty shard).
func fmtScore(v float64) string {
	switch {
	case math.IsNaN(v):
		return "none"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%.3f", v)
}

// FormatShardedAnalyze renders the sharded EXPLAIN ANALYZE: the coordinator
// as the root node with its merge counters, then one shard table row per
// shard — outcome cause, a-priori ceiling (the statistics' promise) vs. the
// live bound at decision time (what the run proved), tuples pulled — each
// followed by the shard pipeline's analyzed tree. Pruned shards never ran,
// so they render the table row only. withTimes adds sampled wall times (keep
// it off for byte-stable golden output).
func FormatShardedAnalyze(root *Node, sa *ShardedAnalysis, withTimes bool) string {
	effK := effectiveK(root)
	st := sa.Stats
	var b strings.Builder
	fmt.Fprintf(&b, "EXPLAIN ANALYZE (k=%.0f, sharded over %d shards)\n", effK, st.Shards)
	fmt.Fprintf(&b, "ShardMerge  (started=%d pruned=%d early_stopped=%d exhausted=%d pulled=%d saved=%d kth=%s)\n",
		st.Started, st.Pruned, st.EarlyStopped, st.Exhausted,
		st.TuplesPulled, st.TuplesSaved, fmtScore(st.KthScore))
	runs := map[int]ShardRun{}
	for _, r := range sa.Shards {
		runs[r.Shard] = r
	}
	for _, out := range st.PerShard {
		cause := out.Cause
		if cause == "" {
			cause = "aborted"
		}
		fmt.Fprintf(&b, "  shard %d: %s  ceiling est=%s bound act=%s pulled=%d",
			out.Shard, cause, fmtScore(out.Ceiling), fmtScore(out.Bound), out.Pulled)
		r, ok := runs[out.Shard]
		if out.Cause == exec.ShardCausePruned || !ok || r.Root == nil {
			b.WriteString("  (never started)\n")
			continue
		}
		b.WriteByte('\n')
		est := map[*Node]float64{}
		PropagateK(r.Root, effK, func(n *Node, k float64) {
			est[n] = math.Min(k, n.Card)
		})
		formatAnalyze(&b, r.Root, 2, r.Analysis, est, withTimes)
	}
	return b.String()
}

package plan

import (
	"math"
	"strings"
	"testing"

	"rankopt/internal/catalog"
	"rankopt/internal/costmodel"
	"rankopt/internal/exec"
	"rankopt/internal/expr"
	"rankopt/internal/logical"
	"rankopt/internal/workload"
)

var params = costmodel.Default()

// env bundles a generated two-table workload and plan-building helpers.
type env struct {
	cat   *catalog.Catalog
	names []string
	n     int
	sel   float64
}

func newEnv(t *testing.T, m, n int, sel float64) *env {
	t.Helper()
	cat, names := workload.RankedSet(m, workload.RankedConfig{N: n, Selectivity: sel, Seed: 1234})
	return &env{cat: cat, names: names, n: n, sel: sel}
}

// scoreScan builds an IndexScan node descending on the table's score.
func (e *env) scoreScan(t *testing.T, name string) *Node {
	t.Helper()
	idx := e.cat.IndexOn(name, "score")
	if idx == nil {
		t.Fatalf("no score index on %s", name)
	}
	return &Node{
		Op:        OpIndexScan,
		Table:     name,
		Index:     idx,
		IndexDesc: true,
		Card:      float64(e.cat.Cardinality(name)),
		LSlab:     e.cat.ColStats(name, "score").Slab,
		P:         &params,
		Props:     Props{Order: RankOrder(name), Pipelined: true},
	}
}

// seqScan builds a plain heap scan node.
func (e *env) seqScan(name string) *Node {
	return &Node{
		Op:    OpSeqScan,
		Table: name,
		Card:  float64(e.cat.Cardinality(name)),
		P:     &params,
		Props: Props{Order: NoOrder, Pipelined: true},
	}
}

// hrjn joins two ranked-scan children.
func (e *env) hrjn(l, r *Node, lt, rt string) *Node {
	return &Node{
		Op:       OpHRJN,
		Children: []*Node{l, r},
		EqPreds:  []logical.JoinPred{{L: expr.Col(lt, "key"), R: expr.Col(rt, "key")}},
		LScore:   expr.Sum(expr.ScoreTerm{Weight: 1, E: expr.Col(lt, "score")}),
		RScore:   expr.Sum(expr.ScoreTerm{Weight: 1, E: expr.Col(rt, "score")}),
		Card:     e.sel * l.Card * r.Card,
		Sel:      e.sel,
		LLeaves:  1, RLeaves: 1,
		BaseN: float64(e.n),
		LSlab: e.cat.ColStats(lt, "score").Slab,
		RSlab: e.cat.ColStats(rt, "score").Slab,
		P:     &params,
		Props: Props{Order: RankOrder(lt, rt), Pipelined: true},
	}
}

func TestOrderPropSemantics(t *testing.T) {
	dc := NoOrder
	col := ColOrder(expr.Col("A", "c1"), false)
	colD := ColOrder(expr.Col("A", "c1"), true)
	rank := RankOrder("B", "A")
	rank2 := RankOrder("A", "B")

	if !rank.Equal(rank2) {
		t.Error("rank order must canonicalize table sets")
	}
	if col.Equal(colD) {
		t.Error("direction matters")
	}
	if !col.Covers(dc) || !rank.Covers(dc) {
		t.Error("every order covers DC")
	}
	if dc.Covers(col) || col.Covers(rank) {
		t.Error("weak orders must not cover strong requirements")
	}
	if dc.Key() != "DC" {
		t.Errorf("DC key = %q", dc.Key())
	}
}

func TestPropsDominance(t *testing.T) {
	rankPipe := Props{Order: RankOrder("A"), Pipelined: true}
	rankBlock := Props{Order: RankOrder("A"), Pipelined: false}
	dcPipe := Props{Order: NoOrder, Pipelined: true}

	if !rankPipe.Dominates(rankBlock) {
		t.Error("pipelined dominates blocking with same order")
	}
	if rankBlock.Dominates(rankPipe) {
		t.Error("blocking cannot dominate pipelined")
	}
	if !rankPipe.Dominates(dcPipe) {
		t.Error("ordered dominates DC")
	}
	if dcPipe.Dominates(rankPipe) {
		t.Error("DC cannot dominate ordered")
	}
	if rankPipe.Key() == rankBlock.Key() {
		t.Error("property keys must distinguish pipelining")
	}
}

func TestNodeTablesAndWalk(t *testing.T) {
	e := newEnv(t, 2, 100, 0.1)
	j := e.hrjn(e.scoreScan(t, "T1"), e.scoreScan(t, "T2"), "T1", "T2")
	ts := j.Tables()
	if len(ts) != 2 || ts[0] != "T1" || ts[1] != "T2" {
		t.Fatalf("Tables = %v", ts)
	}
	if j.CountOps(OpIndexScan) != 2 || j.CountOps(OpHRJN) != 1 || j.CountOps(OpSort) != 0 {
		t.Error("CountOps mismatch")
	}
}

func TestScanCosts(t *testing.T) {
	e := newEnv(t, 1, 10000, 0.01)
	seq := e.seqScan("T1")
	idx := e.scoreScan(t, "T1")
	if seq.Cost(100) >= seq.Cost(10000) {
		t.Error("partial seq scan cheaper than full")
	}
	// Unclustered index full scan is far pricier than seq scan.
	if idx.Cost(10000) <= seq.Cost(10000) {
		t.Error("full unclustered index scan should cost more than seq scan")
	}
	// But for tiny k the index scan wins.
	if idx.Cost(10) >= seq.Cost(10000) {
		t.Error("short index scan should beat full heap scan")
	}
}

func TestSortNodeBlockingCost(t *testing.T) {
	e := newEnv(t, 1, 50000, 0.01)
	s := &Node{
		Op:       OpSort,
		Children: []*Node{e.seqScan("T1")},
		SortKeys: []exec.SortKey{{E: expr.Col("T1", "score"), Desc: true}},
		Card:     50000,
		P:        &params,
		Props:    Props{Order: RankOrder("T1")},
	}
	if s.Cost(1) != s.Cost(50000) {
		t.Error("sort cost must be k-independent (blocking)")
	}
	if s.Cost(1) <= e.seqScan("T1").Cost(50000) {
		t.Error("sort must cost more than its input scan")
	}
}

func TestHRJNCostGrowsWithK(t *testing.T) {
	e := newEnv(t, 2, 10000, 0.01)
	j := e.hrjn(e.scoreScan(t, "T1"), e.scoreScan(t, "T2"), "T1", "T2")
	c10, c100, c1000 := j.Cost(10), j.Cost(100), j.Cost(1000)
	if !(c10 < c100 && c100 < c1000) {
		t.Errorf("HRJN cost must grow with k: %v %v %v", c10, c100, c1000)
	}
}

func TestDepthsClampedToChildren(t *testing.T) {
	e := newEnv(t, 2, 100, 0.5)
	j := e.hrjn(e.scoreScan(t, "T1"), e.scoreScan(t, "T2"), "T1", "T2")
	dL, dR := j.Depths(1e9)
	if dL > 100 || dR > 100 {
		t.Errorf("depths %v/%v exceed child cardinality", dL, dR)
	}
	dL, dR = j.Depths(0)
	if dL < 1 || dR < 1 {
		t.Errorf("degenerate k still needs >= 1 tuple: %v/%v", dL, dR)
	}
	defer func() {
		if recover() == nil {
			t.Error("Depths on scan must panic")
		}
	}()
	e.seqScan("T1").Depths(5)
}

func TestCompileAndRunHRJNPlan(t *testing.T) {
	e := newEnv(t, 2, 2000, 0.01)
	j := e.hrjn(e.scoreScan(t, "T1"), e.scoreScan(t, "T2"), "T1", "T2")
	limit := &Node{Op: OpLimit, Children: []*Node{j}, K: 10, Card: 10, P: &params,
		Props: j.Props}
	op, err := Compile(e.cat, limit)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("plan produced %d tuples", len(got))
	}
	// Verify against join-then-sort reference.
	t1, _ := e.cat.Table("T1")
	t2, _ := e.cat.Table("T2")
	var ref []float64
	for _, a := range t1.Rel.Tuples() {
		for _, b := range t2.Rel.Tuples() {
			if a[1].Equal(b[1]) {
				ref = append(ref, a[2].AsFloat()+b[2].AsFloat())
			}
		}
	}
	for i := 1; i < len(ref); i++ {
		for j := i; j > 0 && ref[j] > ref[j-1]; j-- {
			ref[j], ref[j-1] = ref[j-1], ref[j]
		}
	}
	for i, tup := range got {
		s := tup[2].AsFloat() + tup[5].AsFloat()
		if math.Abs(s-ref[i]) > 1e-9 {
			t.Fatalf("rank %d: score %v, want %v", i, s, ref[i])
		}
	}
}

func TestCompileSortPlan(t *testing.T) {
	e := newEnv(t, 2, 500, 0.05)
	score := expr.Sum(
		expr.ScoreTerm{Weight: 1, E: expr.Col("T1", "score")},
		expr.ScoreTerm{Weight: 1, E: expr.Col("T2", "score")},
	)
	hj := &Node{
		Op:       OpHashJoin,
		Children: []*Node{e.seqScan("T1"), e.seqScan("T2")},
		EqPreds:  []logical.JoinPred{{L: expr.Col("T1", "key"), R: expr.Col("T2", "key")}},
		Card:     e.sel * 500 * 500,
		Sel:      e.sel,
		P:        &params,
	}
	sortNode := &Node{
		Op:       OpSort,
		Children: []*Node{hj},
		SortKeys: []exec.SortKey{{E: score, Desc: true}},
		Card:     hj.Card,
		P:        &params,
		Props:    Props{Order: RankOrder("T1", "T2")},
	}
	op, err := Compile(e.cat, sortNode)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	// Descending combined score.
	prev := math.Inf(1)
	for _, tup := range got {
		s := tup[2].AsFloat() + tup[5].AsFloat()
		if s > prev+1e-9 {
			t.Fatal("sort plan output out of order")
		}
		prev = s
	}
}

func TestCompileErrors(t *testing.T) {
	e := newEnv(t, 1, 10, 0.1)
	bad := &Node{Op: OpSeqScan, Table: "ZZ", P: &params}
	if _, err := Compile(e.cat, bad); err == nil {
		t.Error("unknown table must fail")
	}
	noIdx := &Node{Op: OpIndexScan, Table: "T1", P: &params}
	if _, err := Compile(e.cat, noIdx); err == nil {
		t.Error("index scan without index must fail")
	}
	noKey := &Node{Op: OpHashJoin, Children: []*Node{e.seqScan("T1"), e.seqScan("T1")}, P: &params}
	if _, err := Compile(e.cat, noKey); err == nil {
		t.Error("hash join without keys must fail")
	}
}

func TestExplainOutput(t *testing.T) {
	e := newEnv(t, 2, 1000, 0.01)
	j := e.hrjn(e.scoreScan(t, "T1"), e.scoreScan(t, "T2"), "T1", "T2")
	out := Explain(j)
	for _, want := range []string{"HRJN", "IndexScan", "T1.key = T2.key", "rank:T1,T2", "pipelined"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q in:\n%s", want, out)
		}
	}
	outK := ExplainK(j, 10)
	if !strings.Contains(outK, "top-k = 10") {
		t.Error("ExplainK missing header")
	}
}

func TestEstimateTreeMirrorsRankJoins(t *testing.T) {
	e := newEnv(t, 3, 1000, 0.01)
	j12 := e.hrjn(e.scoreScan(t, "T1"), e.scoreScan(t, "T2"), "T1", "T2")
	top := e.hrjn(j12, e.scoreScan(t, "T3"), "T1", "T3")
	top.LLeaves = 2
	est := top.EstimateTree()
	if est.Leaves() != 3 {
		t.Fatalf("estimate tree leaves = %d", est.Leaves())
	}
	if est.Left.IsLeaf() || !est.Right.IsLeaf() {
		t.Error("estimate tree shape mismatch")
	}
}

func TestPropagateKThroughRankJoins(t *testing.T) {
	e := newEnv(t, 3, 1000, 0.01)
	j12 := e.hrjn(e.scoreScan(t, "T1"), e.scoreScan(t, "T2"), "T1", "T2")
	top := e.hrjn(j12, e.scoreScan(t, "T3"), "T1", "T3")
	top.LLeaves = 2
	limit := &Node{Op: OpLimit, Children: []*Node{top}, K: 10, Card: 10, P: &params, Props: top.Props}

	kByNode := map[*Node]float64{}
	PropagateK(limit, 10, func(n *Node, k float64) { kByNode[n] = k })
	if kByNode[limit] != 10 || kByNode[top] != 10 {
		t.Fatalf("root k = %v / %v", kByNode[limit], kByNode[top])
	}
	dL, dR := top.Depths(10)
	if kByNode[j12] != dL {
		t.Errorf("child k = %v, want parent's dL %v", kByNode[j12], dL)
	}
	if kByNode[top.Right()] != dR {
		t.Errorf("right leaf k = %v, want dR %v", kByNode[top.Right()], dR)
	}
	// Grandchildren get the child's depths in turn.
	gdL, _ := j12.Depths(dL)
	if kByNode[j12.Left()] != gdL {
		t.Errorf("grandchild k = %v, want %v", kByNode[j12.Left()], gdL)
	}
}

func TestPropagateKThroughBlocking(t *testing.T) {
	e := newEnv(t, 1, 500, 0.1)
	scan := e.seqScan("T1")
	s := &Node{Op: OpSort, Children: []*Node{scan}, Card: 500, P: &params}
	kByNode := map[*Node]float64{}
	PropagateK(s, 5, func(n *Node, k float64) { kByNode[n] = k })
	if kByNode[s] != 5 {
		t.Errorf("sort k = %v", kByNode[s])
	}
	if kByNode[scan] != 500 {
		t.Errorf("blocking sort must demand the full child: %v", kByNode[scan])
	}
}

func TestCompileTracedVisitsEveryNode(t *testing.T) {
	e := newEnv(t, 2, 300, 0.05)
	j := e.hrjn(e.scoreScan(t, "T1"), e.scoreScan(t, "T2"), "T1", "T2")
	var visited []OpType
	op, err := CompileTraced(e.cat, j, func(n *Node, _ exec.Operator) {
		visited = append(visited, n.Op)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(visited) != 3 {
		t.Fatalf("visited %d nodes, want 3", len(visited))
	}
	if _, ok := op.(*exec.HRJN); !ok {
		t.Error("root operator should be HRJN")
	}
}

func TestTopKNodeCostAndCompile(t *testing.T) {
	e := newEnv(t, 1, 50000, 0.01)
	scan := e.seqScan("T1")
	score := expr.Sum(expr.ScoreTerm{Weight: 1, E: expr.Col("T1", "score")})
	topk := &Node{Op: OpTopK, Children: []*Node{scan}, Score: score, K: 10,
		Card: 10, P: &params, Props: Props{Order: RankOrder("T1")}}
	full := &Node{Op: OpSort, Children: []*Node{scan},
		SortKeys: []exec.SortKey{{E: score, Desc: true}},
		Card:     50000, P: &params, Props: Props{Order: RankOrder("T1")}}
	if topk.Cost(10) >= full.Cost(10) {
		t.Errorf("bounded-heap top-k (%v) should undercut full sort (%v)",
			topk.Cost(10), full.Cost(10))
	}
	op, err := Compile(e.cat, topk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("TopK produced %d rows", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i][2].AsFloat() > got[i-1][2].AsFloat() {
			t.Fatal("TopK output out of order")
		}
	}
}

func TestAggregateNodeCompileAndCost(t *testing.T) {
	e := newEnv(t, 1, 2000, 0.01)
	scan := e.seqScan("T1")
	groupBy := []expr.ColRef{expr.Col("T1", "key")}
	aggs := []exec.AggSpec{{Func: exec.AggCount, As: "c"}}
	hash := &Node{Op: OpHashAgg, Children: []*Node{scan}, GroupBy: groupBy,
		Aggs: aggs, Card: 100, P: &params}
	sorted := &Node{Op: OpSortAgg, Children: []*Node{
		{Op: OpSort, Children: []*Node{scan}, SortKeys: []exec.SortKey{{E: groupBy[0]}},
			Card: 2000, P: &params},
	}, GroupBy: groupBy, Aggs: aggs, Card: 100, P: &params}
	if hash.Cost(1) != hash.Cost(100) {
		t.Error("hash aggregate is blocking: k-independent")
	}
	if sorted.Cost(1) >= sorted.Cost(100) {
		t.Error("sorted aggregate streams: cheaper for fewer groups? at least non-decreasing")
	}
	for _, n := range []*Node{hash, sorted} {
		op, err := Compile(e.cat, n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := exec.Collect(op)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			t.Fatal("aggregate produced nothing")
		}
	}
}

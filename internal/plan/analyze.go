package plan

import (
	"fmt"
	"math"
	"strings"
	"time"

	"rankopt/internal/catalog"
	"rankopt/internal/exec"
)

// AnalyzedPlan maps the nodes of one compiled plan to their runtime stats
// collectors. It is produced by CompileAnalyzed and consumed by
// FormatAnalyze after execution; like the operator tree it belongs to a
// single session.
type AnalyzedPlan struct {
	ops map[*Node]*exec.Analyzed
}

// Stats returns the runtime counters collected for plan node n.
func (ap *AnalyzedPlan) Stats(n *Node) (exec.OpStats, bool) {
	a := ap.Collector(n)
	if a == nil {
		return exec.OpStats{}, false
	}
	return a.ExecStats(), true
}

// Collector returns node n's stats collector (nil when n was not compiled by
// this plan). The collector forwards exec.StatsReporter, so rank-join
// consumers can use it wherever they used the bare operator.
func (ap *AnalyzedPlan) Collector(n *Node) *exec.Analyzed {
	if ap == nil {
		return nil
	}
	return ap.ops[n]
}

// CompileAnalyzed lowers the plan like Compile but threads an exec.Analyzed
// stats collector between every pair of operators, returning the wrapped
// root and the node→collector mapping. The per-tuple overhead is one counter
// increment per operator boundary plus a 1-in-32 wall-time sample; the
// per-query overhead is one small wrapper allocation per plan node.
func CompileAnalyzed(cat *catalog.Catalog, n *Node) (exec.Operator, *AnalyzedPlan, error) {
	return CompileAnalyzedLimited(cat, n, nil)
}

// CompileAnalyzedLimited is CompileAnalyzed plus a shared resource budget
// wired into every buffering operator (see CompileTracedLimited).
func CompileAnalyzedLimited(cat *catalog.Catalog, n *Node, budget *exec.Budget) (exec.Operator, *AnalyzedPlan, error) {
	ap := &AnalyzedPlan{ops: map[*Node]*exec.Analyzed{}}
	c := &compiler{cat: cat, budget: budget, wrap: func(n *Node, op exec.Operator) exec.Operator {
		a := exec.Analyze(op)
		ap.ops[n] = a
		return a
	}}
	root, err := c.compile(n)
	if err != nil {
		return nil, nil, err
	}
	return root, ap, nil
}

// effectiveK extracts the top-k bound the plan executes under: the topmost
// k-bearing operator's K, falling back to the root cardinality for
// unbounded plans (mirroring Template.Instantiate).
func effectiveK(root *Node) float64 {
	k := 0
	root.Walk(func(n *Node) {
		if k == 0 && n.K > 0 && (n.Op == OpLimit || n.Op == OpTopK || n.Op == OpRankAgg) {
			k = n.K
		}
	})
	if k > 0 {
		return float64(k)
	}
	return root.Card
}

// FormatAnalyze renders the EXPLAIN ANALYZE tree: the plan in Explain's
// indented shape with an estimated-vs-actual row count (the estimate is the
// depth model's propagated demand at the query's k, which is what the
// executor was expected to pull, not the full-output cardinality) and, on
// rank-join nodes, the Section 4 depth estimates against the depths actually
// reached, with relative errors. withTimes adds the sampled Open/Next wall
// times — keep it off when output must be byte-stable (golden tests).
func FormatAnalyze(root *Node, ap *AnalyzedPlan, withTimes bool) string {
	effK := effectiveK(root)
	// est holds the propagated expected pull count per node (Algorithm
	// Propagate): for rank-join children that is the estimated depth, for
	// blocking children the full input.
	est := map[*Node]float64{}
	PropagateK(root, effK, func(n *Node, k float64) {
		est[n] = math.Min(k, n.Card)
	})
	var b strings.Builder
	fmt.Fprintf(&b, "EXPLAIN ANALYZE (k=%.0f)\n", effK)
	formatAnalyze(&b, root, 0, ap, est, withTimes)
	return b.String()
}

func formatAnalyze(b *strings.Builder, n *Node, depth int, ap *AnalyzedPlan, est map[*Node]float64, withTimes bool) {
	indent := strings.Repeat("  ", depth)
	st, ok := ap.Stats(n)
	if !ok {
		fmt.Fprintf(b, "%s%s%s  (rows est=%.0f act=?)\n", indent, n.Op, detail(n), est[n])
	} else {
		fmt.Fprintf(b, "%s%s%s  (rows est=%.0f act=%d err=%s)",
			indent, n.Op, detail(n), est[n], st.TuplesOut, relErrPct(est[n], st.TuplesOut))
		if withTimes {
			fmt.Fprintf(b, " (open=%s next≈%s)",
				time.Duration(st.OpenNanos).Round(time.Microsecond),
				time.Duration(st.EstNextNanos()).Round(time.Microsecond))
		}
		b.WriteByte('\n')
		if n.Op.IsRankJoin() {
			fmt.Fprintf(b, "%s  depths: dL est=%.0f act=%d err=%s | dR est=%.0f act=%d err=%s | queue hwm=%d | pool hit=%d miss=%d\n",
				indent,
				n.EstDL, st.LeftDepth, relErrPct(n.EstDL, st.LeftDepth),
				n.EstDR, st.RightDepth, relErrPct(n.EstDR, st.RightDepth),
				st.MaxQueue, st.PoolHit, st.PoolMiss)
		}
		if n.Op == OpTopK {
			fmt.Fprintf(b, "%s  heap hwm=%d\n", indent, st.MaxHeap)
		}
	}
	for _, c := range n.Children {
		formatAnalyze(b, c, depth+1, ap, est, withTimes)
	}
}

// relErrPct renders |est-act|/max(act,1) as a percentage — the depth model's
// accuracy metric (the paper's Section 6 reports it under 30% on its
// workloads).
func relErrPct(estV float64, act int64) string {
	denom := float64(act)
	if denom < 1 {
		denom = 1
	}
	return fmt.Sprintf("%.1f%%", math.Abs(estV-float64(act))/denom*100)
}

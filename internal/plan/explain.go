package plan

import (
	"fmt"
	"strings"
)

// Explain renders the plan tree in a pg-style indented format with operator
// names, key details, estimated cardinality, total cost, and properties.
func Explain(n *Node) string {
	var b strings.Builder
	explain(&b, n, 0)
	return b.String()
}

// ExplainK renders the plan with costs evaluated at the given k.
func ExplainK(n *Node, k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "top-k = %d\n", k)
	explainAt(&b, n, 0, float64(k))
	return b.String()
}

func explain(b *strings.Builder, n *Node, depth int) {
	explainAt(b, n, depth, n.Card)
}

func explainAt(b *strings.Builder, n *Node, depth int, k float64) {
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%s%s%s  (card=%.0f cost=%.1f %s)\n",
		indent, n.Op, detail(n), n.Card, n.Cost(k), propsStr(n))
	// Children of a rank-join are charged for the propagated depths.
	if n.Op.IsRankJoin() {
		dL, dR := n.Depths(k)
		explainAt(b, n.Left(), depth+1, dL)
		explainAt(b, n.Right(), depth+1, dR)
		return
	}
	for _, c := range n.Children {
		explainAt(b, c, depth+1, c.Card)
	}
}

func detail(n *Node) string {
	switch n.Op {
	case OpSeqScan:
		return "(" + n.Table + ")"
	case OpIndexScan:
		dir := "asc"
		if n.IndexDesc {
			dir = "desc"
		}
		name := "?"
		if n.Index != nil {
			name = n.Index.Name
		}
		return fmt.Sprintf("(%s via %s %s)", n.Table, name, dir)
	case OpSort:
		keys := make([]string, len(n.SortKeys))
		for i, k := range n.SortKeys {
			d := ""
			if k.Desc {
				d = " desc"
			}
			keys[i] = k.E.String() + d
		}
		return "(" + strings.Join(keys, ", ") + ")"
	case OpFilter:
		return "(" + n.Pred.String() + ")"
	case OpNLJ, OpHashJoin, OpMergeJoin, OpHRJN, OpNRJN:
		var parts []string
		for _, j := range n.EqPreds {
			parts = append(parts, j.String())
		}
		if n.Pred != nil {
			parts = append(parts, n.Pred.String())
		}
		if len(parts) == 0 {
			return ""
		}
		return "(" + strings.Join(parts, " AND ") + ")"
	case OpINLJ:
		var parts []string
		for _, j := range n.EqPreds {
			parts = append(parts, j.String())
		}
		name := "?"
		if n.Index != nil {
			name = n.Index.Name
		}
		return fmt.Sprintf("(%s; inner %s via %s)", strings.Join(parts, " AND "), n.Table, name)
	case OpLimit:
		return fmt.Sprintf("(%d)", n.K)
	case OpTopK:
		return fmt.Sprintf("(%s, k=%d)", n.Score.String(), n.K)
	case OpRankAgg:
		var tabs []string
		for _, in := range n.TAInputs {
			tabs = append(tabs, in.Rel.Name)
		}
		return fmt.Sprintf("(TA over %s, k=%d)", strings.Join(tabs, ", "), n.K)
	case OpIndexRange:
		lo, hi := "-inf", "+inf"
		if n.HasLo {
			lo = n.RangeLo.String()
		}
		if n.HasHi {
			hi = n.RangeHi.String()
		}
		name := "?"
		if n.Index != nil {
			name = n.Index.Name
		}
		return fmt.Sprintf("(%s via %s, key in [%s, %s])", n.Table, name, lo, hi)
	case OpRank:
		return "(" + n.Score.String() + ")"
	case OpProject:
		items := make([]string, len(n.Items))
		for i, it := range n.Items {
			items[i] = it.As
		}
		return "(" + strings.Join(items, ", ") + ")"
	case OpAnyK:
		var parts []string
		for i := range n.AnyKLKeys {
			parts = append(parts, n.AnyKLKeys[i].String()+" = "+n.AnyKRKeys[i].String())
		}
		if len(parts) == 0 {
			return ""
		}
		return "(" + strings.Join(parts, " AND ") + ")"
	case OpHashAgg, OpSortAgg:
		var parts []string
		for _, g := range n.GroupBy {
			parts = append(parts, g.String())
		}
		for _, a := range n.Aggs {
			parts = append(parts, a.String())
		}
		return "(" + strings.Join(parts, ", ") + ")"
	}
	return ""
}

func propsStr(n *Node) string {
	s := n.Props.Order.Key()
	if n.Props.Pipelined {
		s += " pipelined"
	}
	return s
}

// Summary renders a plan in one line, operators in prefix form with compact
// leaf access paths — the shape optimizer decision traces print when naming
// the plans a pruning decision compared.
func Summary(n *Node) string {
	var b strings.Builder
	summarize(&b, n)
	return b.String()
}

func summarize(b *strings.Builder, n *Node) {
	b.WriteString(n.Op.String())
	switch n.Op {
	case OpSeqScan:
		fmt.Fprintf(b, "(%s)", n.Table)
		return
	case OpIndexScan, OpIndexRange:
		dir := "asc"
		if n.IndexDesc {
			dir = "desc"
		}
		name := "?"
		if n.Index != nil {
			name = n.Index.Name
		}
		fmt.Fprintf(b, "(%s:%s %s)", n.Table, name, dir)
		return
	case OpINLJ:
		b.WriteByte('(')
		summarize(b, n.Left())
		name := "?"
		if n.Index != nil {
			name = n.Index.Name
		}
		fmt.Fprintf(b, ", %s:%s)", n.Table, name)
		return
	case OpRankAgg:
		var tabs []string
		for _, in := range n.TAInputs {
			tabs = append(tabs, in.Rel.Name)
		}
		fmt.Fprintf(b, "(%s)", strings.Join(tabs, ","))
		return
	}
	if len(n.Children) == 0 {
		return
	}
	b.WriteByte('(')
	for i, c := range n.Children {
		if i > 0 {
			b.WriteString(", ")
		}
		summarize(b, c)
	}
	b.WriteByte(')')
}

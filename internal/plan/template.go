package plan

import "math"

// Template is a reusable physical plan: the immutable output of one
// optimizer run, held by the engine's plan cache and instantiated once per
// session. The split matters for concurrency — the cached tree is shared by
// every session that hits the cache, so nothing may ever mutate it. All
// per-session state (the k rebinding, the depth-hint annotation, and the
// compiled operator tree) lives on a fresh Clone.
type Template struct {
	root *Node
	// k is the top-k bound the plan was optimized for (0 = unbounded).
	k int
	// Counters preserve the optimizer's enumeration and pruning work so
	// cache hits can still report it.
	Counters PlanCounters
}

// PlanCounters is one optimizer run's enumeration and pruning tally: plans
// considered, plans retained across MEMO entries, plans discarded by the
// Section 3.3 property+cost pruning, and pipelined plans that survived a
// cost domination only through the First-N-Rows protection.
type PlanCounters struct {
	Generated int
	Kept      int
	Pruned    int
	Protected int
}

// NewTemplate wraps an optimized plan for caching. The caller hands over
// ownership of root: it must not mutate the tree afterwards.
func NewTemplate(root *Node, k int, counters PlanCounters) *Template {
	return &Template{root: root, k: k, Counters: counters}
}

// K returns the bound the template was optimized at.
func (t *Template) K() int { return t.k }

// Instantiate returns a session-private copy of the plan, rebound to the
// requested k and annotated with depth hints for executor pre-sizing. The
// fingerprint the cache keys on parameterizes k out, so a template built at
// one k serves queries at another: the plan shape is reused and only the
// Limit/TopK/TA bounds are patched — the standard parameterized-plan trade
// (the shape was costed at the original k, the results stay exact).
func (t *Template) Instantiate(k int) *Node {
	root := t.root.Clone()
	if k > 0 && k != t.k {
		RebindK(root, k)
	}
	effK := float64(k)
	if effK <= 0 {
		effK = root.Card
	}
	AnnotateDepthHints(root, effK)
	return root
}

// Clone deep-copies the node tree. Node structs are copied; the immutable
// members they reference — expressions, catalog indexes, cost parameters,
// predicate slices — are shared, which is safe because nothing in compile
// or execution writes through them.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := *n
	if len(n.Children) > 0 {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return &c
}

// RebindK patches a new top-k bound into the k-bearing operators of a plan
// (Limit, TopKSort, RankAggregateTA) and refreshes the cardinality estimates
// above them. Only scalar fields are written, so it must run on a Clone,
// never on a cached template tree.
func RebindK(root *Node, k int) {
	for _, c := range root.Children {
		RebindK(c, k)
	}
	n := root
	switch n.Op {
	case OpLimit, OpTopK:
		n.K = k
		n.Card = math.Min(float64(k), n.Input().Card)
	case OpRankAgg:
		n.K = k
		n.Card = math.Min(float64(k), math.Max(n.BaseN, 1))
	case OpRank, OpProject:
		// Pass-through operators track their input's (possibly re-limited)
		// cardinality.
		if len(n.Children) == 1 {
			n.Card = n.Input().Card
		}
	}
}

// AnnotateDepthHints walks the plan pushing the requested output count down
// (Algorithm Propagate) and records each rank-join's estimated input depths
// in EstDL/EstDR. The compiler turns these into hash-table and ranking-queue
// pre-sizing hints so the executor's hot path avoids rehash and regrow
// cycles.
func AnnotateDepthHints(root *Node, k float64) {
	PropagateK(root, k, func(n *Node, nk float64) {
		if n.Op.IsRankJoin() {
			n.EstDL, n.EstDR = n.Depths(nk)
		}
	})
}

package plan

import (
	"fmt"

	"rankopt/internal/catalog"
	"rankopt/internal/exec"
)

// Rebind repoints a plan's catalog-bound references — index handles and TA
// input relations — at the given catalog. The sharded tier compiles one
// optimized plan once per shard: Clone shares the immutable members,
// including *catalog.Index pointers into the coordinator's catalog, so a
// clone compiled against a shard catalog would otherwise probe parent-heap
// rids through parent indexes. Rebind must run on a Clone, never on a cached
// template tree. The target catalog must contain every referenced table and
// an index over every referenced (table, column) — Catalog.Shard rebuilds
// both, so shard catalogs always qualify.
func Rebind(root *Node, cat *catalog.Catalog) error {
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	rebindIdx := func(idx *catalog.Index) *catalog.Index {
		re := cat.IndexOn(idx.Table, idx.Column)
		if re == nil {
			fail(fmt.Errorf("plan: rebind: no index on %s.%s in target catalog", idx.Table, idx.Column))
			return idx
		}
		return re
	}
	root.Walk(func(n *Node) {
		if n.Index != nil {
			n.Index = rebindIdx(n.Index)
		}
		if len(n.TAInputs) == 0 {
			return
		}
		// TAInputs are a shared slice under Clone; copy before rewriting.
		inputs := append([]exec.TAInput(nil), n.TAInputs...)
		for i := range inputs {
			ti := &inputs[i]
			tab, err := cat.Table(ti.Rel.Name)
			if err != nil {
				fail(fmt.Errorf("plan: rebind: %w", err))
				return
			}
			ti.Rel = tab.Rel
			if ti.ScoreIdx != nil {
				ti.ScoreIdx = rebindIdx(ti.ScoreIdx)
			}
			if ti.IDIdx != nil {
				ti.IDIdx = rebindIdx(ti.IDIdx)
			}
		}
		n.TAInputs = inputs
	})
	return firstErr
}

package plan_test

import (
	"testing"

	"rankopt/internal/core"
	"rankopt/internal/plan"
	"rankopt/internal/sqlparse"
	"rankopt/internal/workload"
)

// optimizeSQL is the test helper for getting a real optimized plan to wrap.
func optimizeSQL(t *testing.T, sql string) (*plan.Node, int) {
	t.Helper()
	cat, _ := workload.RankedSet(2, workload.RankedConfig{N: 1000, Selectivity: 0.02, Seed: 21})
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Optimize(cat, q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Best, q.K
}

const templateSQL = "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 5"

// Instantiate must hand out trees that are structurally identical to the
// original but share no Node storage, so per-session mutation (depth hints,
// execution) cannot leak across sessions or back into the cached template.
func TestTemplateInstantiateIsolates(t *testing.T) {
	root, k := optimizeSQL(t, templateSQL)
	want := plan.Explain(root)
	tmpl := plan.NewTemplate(root, k, plan.PlanCounters{Generated: 10, Kept: 5})
	a := tmpl.Instantiate(k)
	b := tmpl.Instantiate(k)
	if a == b {
		t.Fatal("Instantiate returned the same tree twice")
	}
	if plan.Explain(a) != want || plan.Explain(b) != want {
		t.Errorf("instantiated plan diverges from the template:\n%s\nvs\n%s", plan.Explain(a), want)
	}
	// Mutating one instance must not show through siblings or future
	// instantiations.
	a.Card = -1
	a.Children = nil
	if b.Card == -1 {
		t.Error("instances share Node storage")
	}
	if got := plan.Explain(tmpl.Instantiate(k)); got != want {
		t.Errorf("template corrupted by instance mutation:\n%s\nwant\n%s", got, want)
	}
}

// Clone must deep-copy the node structs at every level.
func TestCloneIsDeep(t *testing.T) {
	root, _ := optimizeSQL(t, templateSQL)
	c := root.Clone()
	var walk func(a, b *plan.Node)
	walk = func(a, b *plan.Node) {
		if a == b {
			t.Fatalf("clone shares node %v", a.Op)
		}
		if len(a.Children) != len(b.Children) {
			t.Fatalf("clone changed arity at %v", a.Op)
		}
		for i := range a.Children {
			walk(a.Children[i], b.Children[i])
		}
	}
	walk(root, c)
	if plan.Explain(root) != plan.Explain(c) {
		t.Error("clone renders differently")
	}
}

// kBearing collects the K values of every Limit/TopK/RankAgg node.
func kBearing(n *plan.Node) []int {
	var ks []int
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		switch n.Op {
		case plan.OpLimit, plan.OpTopK, plan.OpRankAgg:
			ks = append(ks, n.K)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(n)
	return ks
}

// RebindK must patch the new bound into every k-bearing operator of the
// instance while the template keeps serving its original bound.
func TestRebindKPatchesBounds(t *testing.T) {
	root, k := optimizeSQL(t, templateSQL)
	tmpl := plan.NewTemplate(root, k, plan.PlanCounters{})
	re := kBearing(tmpl.Instantiate(12))
	if len(re) == 0 {
		t.Fatal("plan has no k-bearing operator to rebind")
	}
	for _, got := range re {
		if got != 12 {
			t.Errorf("k-bearing operator still bound to %d after rebinding to 12", got)
		}
	}
	for _, got := range kBearing(tmpl.Instantiate(k)) {
		if got != k {
			t.Errorf("template lost its original bound: got %d, want %d", got, k)
		}
	}
}

// Instantiate must annotate EstDL/EstDR on every rank join for executor
// pre-sizing.
func TestInstantiateAnnotatesDepthHints(t *testing.T) {
	root, k := optimizeSQL(t, templateSQL)
	inst := plan.NewTemplate(root, k, plan.PlanCounters{}).Instantiate(k)
	var sawJoin bool
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		if n.Op.IsRankJoin() {
			sawJoin = true
			if n.EstDL <= 0 || n.EstDR <= 0 {
				t.Errorf("%v has empty depth hints (dL=%v dR=%v)", n.Op, n.EstDL, n.EstDR)
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(inst)
	if !sawJoin {
		t.Skip("optimizer chose a plan without a rank join on this workload")
	}
}

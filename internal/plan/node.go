// Package plan defines physical query plans: operator trees annotated with
// physical properties (order, pipelining), cardinality estimates, and
// k-parameterized costs. Rank-join plan nodes cost themselves through the
// Section 4 depth model, so a plan's cost to deliver its first k tuples —
// the quantity the paper's pruning rules compare — is available at every
// node. Plans compile to executable operator trees from package exec.
package plan

import (
	"sort"
	"strings"

	"rankopt/internal/catalog"
	"rankopt/internal/costmodel"
	"rankopt/internal/estimate"
	"rankopt/internal/exec"
	"rankopt/internal/expr"
	"rankopt/internal/logical"
	"rankopt/internal/relation"
)

// OpType enumerates physical operators.
type OpType uint8

// Physical operator kinds.
const (
	OpSeqScan OpType = iota
	OpIndexScan
	OpSort
	OpFilter
	OpNLJ
	OpINLJ
	OpHashJoin
	OpMergeJoin
	OpHRJN
	OpNRJN
	OpLimit
	OpRank
	OpProject
	OpHashAgg
	OpSortAgg
	OpTopK
	OpIndexRange
	OpRankAgg
	OpAnyK
)

var opNames = map[OpType]string{
	OpSeqScan:    "SeqScan",
	OpIndexScan:  "IndexScan",
	OpSort:       "Sort",
	OpFilter:     "Filter",
	OpNLJ:        "NestedLoopsJoin",
	OpINLJ:       "IndexNLJoin",
	OpHashJoin:   "HashJoin",
	OpMergeJoin:  "MergeJoin",
	OpHRJN:       "HRJN",
	OpNRJN:       "NRJN",
	OpLimit:      "Limit",
	OpRank:       "Rank",
	OpProject:    "Project",
	OpHashAgg:    "HashAggregate",
	OpSortAgg:    "SortedAggregate",
	OpTopK:       "TopKSort",
	OpIndexRange: "IndexRangeScan",
	OpRankAgg:    "RankAggregateTA",
	OpAnyK:       "AnyK",
}

// String returns the operator's display name.
func (o OpType) String() string { return opNames[o] }

// IsRankJoin reports whether the operator is one of the rank-join methods.
func (o OpType) IsRankJoin() bool { return o == OpHRJN || o == OpNRJN }

// OrderKind classifies order properties.
type OrderKind uint8

// Order property kinds.
const (
	// OrderNone is the paper's "DC" (don't-care) property.
	OrderNone OrderKind = iota
	// OrderCol is a plain column ordering (interesting for merge joins and
	// ORDER BY columns).
	OrderCol
	// OrderRank orders descending on the sum of the ranking-score terms of
	// RankTables — the paper's interesting order *expression*.
	OrderRank
)

// OrderProp is a physical order property of a plan's output.
type OrderProp struct {
	Kind OrderKind
	// Col and Desc describe an OrderCol property.
	Col  expr.ColRef
	Desc bool
	// RankTables is the sorted table set whose combined score terms an
	// OrderRank property is ordered on (always descending).
	RankTables []string
}

// NoOrder is the DC property.
var NoOrder = OrderProp{Kind: OrderNone}

// ColOrder constructs a column order property.
func ColOrder(c expr.ColRef, desc bool) OrderProp {
	return OrderProp{Kind: OrderCol, Col: c, Desc: desc}
}

// RankOrder constructs a rank order property over the given tables.
func RankOrder(tables ...string) OrderProp {
	ts := append([]string(nil), tables...)
	sort.Strings(ts)
	return OrderProp{Kind: OrderRank, RankTables: ts}
}

// Key returns the canonical string of the property, used for MEMO property
// classes.
func (o OrderProp) Key() string {
	switch o.Kind {
	case OrderNone:
		return "DC"
	case OrderCol:
		d := "asc"
		if o.Desc {
			d = "desc"
		}
		return "col:" + o.Col.String() + ":" + d
	case OrderRank:
		return "rank:" + strings.Join(o.RankTables, ",")
	}
	return "?"
}

// Equal reports property identity.
func (o OrderProp) Equal(p OrderProp) bool { return o.Key() == p.Key() }

// Covers reports whether having property o satisfies a requirement of p:
// every property covers DC; otherwise they must be identical.
func (o OrderProp) Covers(p OrderProp) bool {
	if p.Kind == OrderNone {
		return true
	}
	return o.Equal(p)
}

// Props is the physical property vector of a plan.
type Props struct {
	Order OrderProp
	// Pipelined marks plans that deliver early results without consuming
	// whole inputs — the First-N-Rows property that protects rank-join
	// plans from being pruned by cheaper blocking plans.
	Pipelined bool
}

// Key returns the canonical property-class string.
func (p Props) Key() string {
	if p.Pipelined {
		return p.Order.Key() + "|pipe"
	}
	return p.Order.Key() + "|block"
}

// Dominates reports whether properties p are at least as strong as q:
// p's order covers q's and p is pipelined whenever q is.
func (p Props) Dominates(q Props) bool {
	if q.Pipelined && !p.Pipelined {
		return false
	}
	return p.Order.Covers(q.Order)
}

// Node is one physical plan operator. It is a flat struct: fields apply per
// OpType as documented inline. Children order: join nodes have [left,
// right]; unary nodes have [input]; scans have none.
type Node struct {
	Op       OpType
	Children []*Node

	// Table and Index identify the base relation / access path for scans
	// and the inner of an index nested-loops join.
	Table     string
	Index     *catalog.Index
	IndexDesc bool

	// Pred is a filter predicate (OpFilter) or residual join predicate.
	Pred expr.Expr

	// EqPreds are the equi-join predicates of a join node; the first is the
	// primary hash/merge/index key, the rest fold into the residual.
	EqPreds []logical.JoinPred

	// LScore and RScore are the per-input ranking contributions of a
	// rank-join node.
	LScore, RScore expr.ScoreSum
	// Strategy selects the HRJN polling policy.
	Strategy exec.PullStrategy

	// SortKeys define OpSort output order.
	SortKeys []exec.SortKey

	// K bounds OpLimit output.
	K int

	// Score is the ranking function for OpRank.
	Score expr.ScoreSum

	// Items are the OpProject output columns.
	Items []exec.ProjectItem

	// GroupBy and Aggs define OpHashAgg / OpSortAgg outputs.
	GroupBy []expr.ColRef
	Aggs    []exec.AggSpec

	// RangeLo/RangeHi bound an OpIndexRange scan (inclusive; HasLo/HasHi
	// mark which bounds apply).
	RangeLo, RangeHi relation.Value
	HasLo, HasHi     bool

	// TAInputs parameterize an OpRankAgg plan (Fagin's TA over ranked
	// lists sharing a unique object id).
	TAInputs []exec.TAInput

	// AnyKScores, AnyKLKeys, and AnyKRKeys parameterize an OpAnyK plan: the
	// per-child score contribution (child order = path order) and the m-1
	// adjacent equi-join key pairs (AnyKLKeys[i] over child i, AnyKRKeys[i]
	// over child i+1).
	AnyKScores           []expr.Expr
	AnyKLKeys, AnyKRKeys []expr.Expr

	// Card is the estimated full output cardinality.
	Card float64
	// Sel is the local selectivity (joins, filters).
	Sel float64
	// InnerCard is the inner relation cardinality for OpINLJ.
	InnerCard float64

	// LLeaves/RLeaves, BaseN, LSlab/RSlab parameterize the Section 4 depth
	// model for rank-join nodes: the number of ranked base inputs on each
	// side, the representative base cardinality, and the leaf score slabs.
	LLeaves, RLeaves int
	BaseN            float64
	LSlab, RSlab     float64

	// EstDL/EstDR are the depth-model estimates for a rank-join node at the
	// query's k, filled by AnnotateDepthHints; the compiler passes them to
	// the executor as hash-table and queue pre-sizing hints. Zero means "no
	// hint" (operators start empty and grow, exactly as before).
	EstDL, EstDR float64

	// DepthHint, when non-nil on a rank-join node, carries empirically
	// observed depths for this table split (the engine's feedback loop).
	// Depths consults it before the Section-4 model. The pointed-to value is
	// immutable, so Clone shares it.
	DepthHint *estimate.Observed

	// P supplies the cost parameters; set once by the planner on every node.
	P *costmodel.Params

	// Props is the physical property vector.
	Props Props
}

// Left and Right return join children.
func (n *Node) Left() *Node  { return n.Children[0] }
func (n *Node) Right() *Node { return n.Children[1] }

// Input returns the single child of a unary node.
func (n *Node) Input() *Node { return n.Children[0] }

// Tables returns the sorted set of base tables under the node.
func (n *Node) Tables() []string {
	set := map[string]bool{}
	n.collectTables(set)
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

func (n *Node) collectTables(set map[string]bool) {
	if n.Table != "" {
		set[n.Table] = true
	}
	for _, c := range n.Children {
		c.collectTables(set)
	}
}

// DepthHintKey identifies a rank-join's table split for the depth-feedback
// loop: sorted left base tables + "|" + sorted right base tables. The
// optimizer attaches hints and the engine records observations under the
// same key, so measured depths map back onto the same split when the query
// is re-planned.
func DepthHintKey(n *Node) string {
	return strings.Join(n.Left().Tables(), ",") + "|" + strings.Join(n.Right().Tables(), ",")
}

// Walk visits the subtree pre-order.
func (n *Node) Walk(fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// CountOps returns how many nodes of the given type the subtree contains.
func (n *Node) CountOps(op OpType) int {
	c := 0
	n.Walk(func(m *Node) {
		if m.Op == op {
			c++
		}
	})
	return c
}

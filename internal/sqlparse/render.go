package sqlparse

// Render is Parse's inverse: it emits a logical.Query back as SQL in the
// plain SELECT form, such that reparsing the output yields a query with the
// same Fingerprint. The fuzz targets lean on this round trip — any query the
// parser accepts must survive print-and-reparse — so the renderer is careful
// about the lexer's blind spots: float literals keep a decimal point and
// never use exponent notation, strings are single-quoted verbatim (a parsed
// string can never contain a quote), and boolean constants (which only arise
// from constant folding — the grammar has no TRUE/FALSE literal) are spelled
// as comparisons that fold back to the same constant.

import (
	"strconv"
	"strings"

	"rankopt/internal/expr"
	"rankopt/internal/logical"
	"rankopt/internal/relation"
)

// Render emits q as parseable SQL text.
func Render(q *logical.Query) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	switch {
	case q.Grouped():
		// The grouped output schema is group columns followed by aggregates;
		// the select list mirrors that (interleaving is not recorded).
		var parts []string
		for _, g := range q.GroupBy {
			parts = append(parts, g.String())
		}
		for _, a := range q.Aggs {
			var ab strings.Builder
			ab.WriteString(a.Func)
			ab.WriteByte('(')
			if a.Arg == nil {
				ab.WriteByte('*')
			} else {
				renderExpr(&ab, a.Arg)
			}
			ab.WriteString(") AS ")
			ab.WriteString(a.As)
			parts = append(parts, ab.String())
		}
		b.WriteString(strings.Join(parts, ", "))
	case len(q.Select) == 0:
		b.WriteByte('*')
	default:
		for i, s := range q.Select {
			if i > 0 {
				b.WriteString(", ")
			}
			renderExpr(&b, s.E)
			b.WriteString(" AS ")
			b.WriteString(s.As)
		}
	}

	b.WriteString(" FROM ")
	b.WriteString(strings.Join(q.Tables, ", "))

	var conjs []string
	for _, j := range q.Joins {
		conjs = append(conjs, j.L.String()+" = "+j.R.String())
	}
	for _, f := range q.Filters {
		var fb strings.Builder
		renderExpr(&fb, f)
		conjs = append(conjs, fb.String())
	}
	if len(conjs) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(conjs, " AND "))
	}

	if q.Grouped() {
		b.WriteString(" GROUP BY ")
		for i, g := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}

	switch {
	case q.Ranking():
		b.WriteString(" ORDER BY ")
		for i, t := range q.Score.Terms {
			if i > 0 {
				b.WriteString(" + ")
			}
			// Always the explicit "w * (E)" form: a bare compound E would be
			// re-split into separate addends by the score decomposition.
			b.WriteString(strconv.FormatFloat(t.Weight, 'f', -1, 64))
			b.WriteString(" * ")
			renderExpr(&b, t.E)
		}
		b.WriteString(" DESC")
	case q.OrderBy.Name != "":
		b.WriteString(" ORDER BY ")
		b.WriteString(q.OrderBy.String())
		if q.OrderDesc {
			b.WriteString(" DESC")
		}
	}

	if q.K > 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.Itoa(q.K))
	}
	return b.String()
}

// renderExpr writes e in fully parenthesized, lexable form.
func renderExpr(b *strings.Builder, e expr.Expr) {
	switch v := e.(type) {
	case expr.ColRef:
		b.WriteString(v.String())
	case expr.Const:
		renderConst(b, v)
	case expr.Binary:
		b.WriteByte('(')
		renderExpr(b, v.L)
		b.WriteByte(' ')
		b.WriteString(v.Op.String())
		b.WriteByte(' ')
		renderExpr(b, v.R)
		b.WriteByte(')')
	case expr.Neg:
		b.WriteString("(-")
		renderExpr(b, v.E)
		b.WriteByte(')')
	default:
		// ScoreSum never nests inside another expression; anything else is a
		// new Expr kind the renderer must learn about. String() at least
		// keeps the output diagnosable.
		b.WriteString(e.String())
	}
}

// renderConst writes a literal in the form the lexer accepts.
func renderConst(b *strings.Builder, c expr.Const) {
	switch c.V.Kind() {
	case relation.KindInt:
		b.WriteString(strconv.FormatInt(c.V.AsInt(), 10))
	case relation.KindFloat:
		// 'f' avoids exponent notation (unlexable); the appended ".0" keeps
		// integral values in the float domain on reparse.
		s := strconv.FormatFloat(c.V.AsFloat(), 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		b.WriteString(s)
	case relation.KindString:
		b.WriteByte('\'')
		b.WriteString(c.V.AsString())
		b.WriteByte('\'')
	case relation.KindBool:
		// No boolean literal exists; these comparisons fold back to the same
		// constant during WHERE simplification.
		if c.V.AsBool() {
			b.WriteString("(1 = 1)")
		} else {
			b.WriteString("(1 = 0)")
		}
	default:
		b.WriteString(c.String())
	}
}

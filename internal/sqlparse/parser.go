package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"rankopt/internal/expr"
	"rankopt/internal/logical"
	"rankopt/internal/relation"
)

// Parse converts a SQL statement in the supported subset into a validated
// logical query.
func Parse(sql string) (*logical.Query, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.statement()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: "+format+" (near %s)", append(args, p.cur())...)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokKeyword && p.cur().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errf("expected %q", s)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errf("expected identifier")
	}
	return p.next().text, nil
}

// selectItem is a parsed projection element.
type selectItem struct {
	e       expr.Expr
	as      string
	isRank  bool // rank() OVER (ORDER BY ...)
	desc    bool
	star    bool
	aggFunc string // non-empty for aggregate items (COUNT/SUM/MIN/MAX/AVG)
}

// statement parses either the WITH-wrapped ranked query or a plain SELECT.
func (p *parser) statement() (*logical.Query, error) {
	if p.acceptKeyword("WITH") {
		return p.withStatement()
	}
	return p.plainSelect()
}

// withStatement parses
//
//	WITH name AS ( <inner select> ) SELECT <outer items> FROM name
//	[WHERE rank <= k];
func (p *parser) withStatement() (*logical.Query, error) {
	cteName, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	q, items, err := p.innerSelect()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}

	// Outer query: SELECT cols FROM cteName WHERE rank <= k.
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	var outer []string
	outerStar := false
	for {
		if p.acceptSymbol("*") {
			outerStar = true
		} else {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			outer = append(outer, name)
		}
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if from != cteName {
		return nil, fmt.Errorf("sqlparse: outer FROM %q does not match WITH name %q", from, cteName)
	}
	if p.acceptKeyword("WHERE") {
		k, err := p.rankBound()
		if err != nil {
			return nil, err
		}
		q.K = k
	}
	p.acceptSymbol(";")
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input")
	}

	// Map outer column names through the inner aliases.
	aliases := map[string]expr.Expr{}
	for _, it := range items {
		if it.isRank {
			aliases[it.as] = expr.Col("", "rank")
			continue
		}
		aliases[it.as] = it.e
	}
	if outerStar {
		for _, it := range items {
			q.Select = append(q.Select, logical.SelectItem{E: aliases[it.as], As: it.as})
		}
	} else {
		for _, name := range outer {
			e, ok := aliases[name]
			if !ok {
				return nil, fmt.Errorf("sqlparse: outer column %q not defined in %s", name, cteName)
			}
			q.Select = append(q.Select, logical.SelectItem{E: e, As: name})
		}
	}
	return q, nil
}

// rankBound parses "rank <= k" (or "rank < k").
func (p *parser) rankBound() (int, error) {
	name, err := p.expectIdent()
	if err != nil {
		return 0, err
	}
	strict := false
	switch {
	case p.acceptSymbol("<="):
	case p.acceptSymbol("<"):
		strict = true
	default:
		return 0, p.errf("expected <= or < after %q", name)
	}
	if p.cur().kind != tokNumber {
		return 0, p.errf("expected numeric rank bound")
	}
	v, err := strconv.Atoi(p.next().text)
	if err != nil {
		return 0, fmt.Errorf("sqlparse: rank bound: %v", err)
	}
	if strict {
		v--
	}
	if v <= 0 {
		return 0, fmt.Errorf("sqlparse: rank bound must be positive, got %d", v)
	}
	return v, nil
}

// innerSelect parses the CTE body: SELECT items FROM tables [WHERE preds].
func (p *parser) innerSelect() (*logical.Query, []selectItem, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, nil, err
	}
	items, err := p.selectList()
	if err != nil {
		return nil, nil, err
	}
	q := &logical.Query{}
	if err := p.fromWhere(q); err != nil {
		return nil, nil, err
	}
	for _, it := range items {
		if !it.isRank {
			continue
		}
		score, err := toScoreSum(it.e)
		if err != nil {
			return nil, nil, err
		}
		if it.desc {
			return nil, nil, fmt.Errorf("sqlparse: ascending rank() is not a top-k query")
		}
		q.Score = score
	}
	if len(q.Score.Terms) == 0 {
		return nil, nil, fmt.Errorf("sqlparse: WITH query needs a rank() OVER (ORDER BY ...) item")
	}
	return q, items, nil
}

// selectList parses projection items including the rank() window function.
func (p *parser) selectList() ([]selectItem, error) {
	var items []selectItem
	for {
		var it selectItem
		if p.acceptSymbol("*") {
			it.star = true
		} else if p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, "rank") &&
			p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
			p.pos += 2
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("OVER"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("ORDER"); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("BY"); err != nil {
				return nil, err
			}
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			// The paper's rank() is a top-k rank: descending by default.
			it.desc = p.acceptKeyword("ASC")
			p.acceptKeyword("DESC")
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			it.e = e
			it.isRank = true
			it.as = "rank"
		} else if p.cur().kind == tokIdent && logical.AggFuncs[strings.ToUpper(p.cur().text)] &&
			p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
			it.aggFunc = strings.ToUpper(p.next().text)
			p.pos++ // consume "("
			if p.acceptSymbol("*") {
				if it.aggFunc != "COUNT" {
					return nil, p.errf("%s(*) is not supported", it.aggFunc)
				}
			} else {
				e, err := p.expression()
				if err != nil {
					return nil, err
				}
				it.e = e
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			it.as = strings.ToLower(it.aggFunc)
		} else {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			it.e = e
			if c, ok := e.(expr.ColRef); ok {
				it.as = c.Name
			}
		}
		if p.acceptKeyword("AS") {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			it.as = name
		}
		if !it.star && it.as == "" {
			return nil, p.errf("select item needs an alias")
		}
		items = append(items, it)
		if !p.acceptSymbol(",") {
			return items, nil
		}
	}
}

// fromWhere parses FROM tables and the WHERE clause, splitting conjuncts
// into join predicates and single-table filters.
func (p *parser) fromWhere(q *logical.Query) error {
	if err := p.expectKeyword("FROM"); err != nil {
		return err
	}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		q.Tables = append(q.Tables, name)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if !p.acceptKeyword("WHERE") {
		return nil
	}
	pred, err := p.expression()
	if err != nil {
		return err
	}
	for _, c := range expr.Conjuncts(expr.Simplify(pred)) {
		if l, r, ok := expr.EquiJoinCols(c); ok {
			q.Joins = append(q.Joins, logical.JoinPred{L: l, R: r})
			continue
		}
		// Constant conjuncts: TRUE vanishes, FALSE is a user error worth
		// naming, anything else falls through to validation.
		if con, ok := c.(expr.Const); ok && con.V.Kind() == relation.KindBool {
			if con.V.AsBool() {
				continue
			}
			return fmt.Errorf("sqlparse: WHERE clause is always false")
		}
		q.Filters = append(q.Filters, c)
	}
	return nil
}

// plainSelect parses SELECT items FROM tables [WHERE preds]
// [ORDER BY e [DESC]] [LIMIT k].
func (p *parser) plainSelect() (*logical.Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	items, err := p.selectList()
	if err != nil {
		return nil, err
	}
	q := &logical.Query{}
	if err := p.fromWhere(q); err != nil {
		return nil, err
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.primary()
			if err != nil {
				return nil, err
			}
			col, ok := e.(expr.ColRef)
			if !ok {
				return nil, p.errf("GROUP BY supports plain columns only")
			}
			q.GroupBy = append(q.GroupBy, col)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		desc := false
		if p.acceptKeyword("DESC") {
			desc = true
		} else {
			p.acceptKeyword("ASC")
		}
		if col, ok := e.(expr.ColRef); ok {
			q.OrderBy = col
			q.OrderDesc = desc
		} else {
			score, err := toScoreSum(e)
			if err != nil {
				return nil, err
			}
			if !desc {
				return nil, fmt.Errorf("sqlparse: ascending score ORDER BY is not a top-k ranking; use DESC")
			}
			q.Score = score
		}
	}
	if p.acceptKeyword("LIMIT") {
		if p.cur().kind != tokNumber {
			return nil, p.errf("expected LIMIT count")
		}
		v, err := strconv.Atoi(p.next().text)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("sqlparse: bad LIMIT %q", p.toks[p.pos-1].text)
		}
		q.K = v
	}
	p.acceptSymbol(";")
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input")
	}
	if len(q.GroupBy) > 0 {
		// Grouped query: aggregate items become Aggs; plain items must be
		// group columns (the engine outputs group columns, then aggregates).
		for _, it := range items {
			if it.aggFunc != "" {
				q.Aggs = append(q.Aggs, logical.AggItem{Func: it.aggFunc, Arg: it.e, As: it.as})
				continue
			}
			if it.star {
				return nil, fmt.Errorf("sqlparse: * is not valid in a grouped select list")
			}
			col, ok := it.e.(expr.ColRef)
			if !ok || !containsCol(q.GroupBy, col) {
				return nil, fmt.Errorf("sqlparse: select item %s is not a group column or aggregate", it.e)
			}
		}
		return q, nil
	}
	for _, it := range items {
		if it.aggFunc != "" {
			return nil, fmt.Errorf("sqlparse: aggregate %s requires GROUP BY", it.aggFunc)
		}
		if it.star {
			continue // empty Select means all columns
		}
		q.Select = append(q.Select, logical.SelectItem{E: it.e, As: it.as})
	}
	return q, nil
}

func containsCol(cols []expr.ColRef, c expr.ColRef) bool {
	for _, g := range cols {
		if g == c {
			return true
		}
	}
	return false
}

// expression parses with precedence OR < AND < comparison < add < mul < unary.
func (p *parser) expression() (expr.Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (expr.Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = expr.Bin(expr.OpOr, l, r)
	}
	return l, nil
}

func (p *parser) andExpr() (expr.Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = expr.Bin(expr.OpAnd, l, r)
	}
	return l, nil
}

var cmpOps = map[string]expr.Op{
	"=": expr.OpEq, "<>": expr.OpNe, "<": expr.OpLt, "<=": expr.OpLe,
	">": expr.OpGt, ">=": expr.OpGe,
}

func (p *parser) cmpExpr() (expr.Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokSymbol {
		if op, ok := cmpOps[p.cur().text]; ok {
			p.pos++
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return expr.Bin(op, l, r), nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (expr.Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("+"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = expr.Bin(expr.OpAdd, l, r)
		case p.acceptSymbol("-"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = expr.Bin(expr.OpSub, l, r)
		default:
			return l, nil
		}
	}
}

func (p *parser) mulExpr() (expr.Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("*"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = expr.Bin(expr.OpMul, l, r)
		case p.acceptSymbol("/"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = expr.Bin(expr.OpDiv, l, r)
		default:
			return l, nil
		}
	}
}

func (p *parser) unaryExpr() (expr.Expr, error) {
	if p.acceptSymbol("-") {
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return expr.Neg{E: e}, nil
	}
	return p.primary()
}

func (p *parser) primary() (expr.Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.ContainsRune(t.text, '.') {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sqlparse: bad number %q", t.text)
			}
			return expr.FloatLit(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlparse: bad number %q", t.text)
		}
		return expr.IntLit(i), nil
	case tokString:
		p.pos++
		return expr.StrLit(t.text), nil
	case tokIdent:
		p.pos++
		if p.acceptSymbol(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return expr.Col(t.text, col), nil
		}
		return expr.Col("", t.text), nil
	case tokSymbol:
		if t.text == "(" {
			p.pos++
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("expected expression")
}

// toScoreSum decomposes an additive expression into weighted per-table
// score terms: each addend is Const*E, E*Const, or a bare E (weight 1).
func toScoreSum(e expr.Expr) (expr.ScoreSum, error) {
	var terms []expr.ScoreTerm
	var flatten func(expr.Expr) error
	flatten = func(e expr.Expr) error {
		if b, ok := e.(expr.Binary); ok && b.Op == expr.OpAdd {
			if err := flatten(b.L); err != nil {
				return err
			}
			return flatten(b.R)
		}
		w := 1.0
		inner := e
		if b, ok := e.(expr.Binary); ok && b.Op == expr.OpMul {
			if c, ok := b.L.(expr.Const); ok && c.V.Numeric() {
				w = c.V.AsFloat()
				inner = b.R
			} else if c, ok := b.R.(expr.Const); ok && c.V.Numeric() {
				w = c.V.AsFloat()
				inner = b.L
			}
		}
		ts := expr.Tables(inner)
		if len(ts) != 1 {
			return fmt.Errorf("sqlparse: ranking term %s must reference exactly one table", inner)
		}
		terms = append(terms, expr.ScoreTerm{Weight: w, E: inner})
		return nil
	}
	if err := flatten(e); err != nil {
		return expr.ScoreSum{}, err
	}
	return expr.Sum(terms...), nil
}

package sqlparse

// Fuzz targets for the parser and the plan-cache fingerprint. The invariants:
//
//   FuzzParse: any input the parser accepts must survive print-and-reparse —
//   Render(Parse(sql)) parses again and fingerprints identically. This pins
//   both directions: the renderer emits only lexable SQL and the parser maps
//   equivalent texts to one canonical query.
//
//   FuzzFingerprint: fingerprinting is deterministic, and the top-k literal
//   is parameterized out — rewriting k on a bounded query never changes the
//   fingerprint (the plan cache shares templates across k), while toggling
//   bounded/unbounded always does (that changes the plan shape).
//
// CI runs each target briefly (-fuzztime) as a smoke test; longer local runs
// just use the same entry points.

import (
	"math"
	"testing"

	"rankopt/internal/expr"
	"rankopt/internal/logical"
	"rankopt/internal/relation"
)

// fuzzSeeds are the corpus starting points, spanning every grammar corner:
// both query forms, joins, filters, weights, grouping, strings, negation.
var fuzzSeeds = []string{
	`SELECT * FROM A`,
	`SELECT * FROM A, B WHERE A.key = B.key ORDER BY A.score + B.score DESC LIMIT 5`,
	`SELECT A.id AS i FROM A, B WHERE A.key = B.key AND A.id < 10 ORDER BY 0.3 * A.score + 0.7 * B.score DESC LIMIT 3`,
	`WITH R AS (SELECT A.c1 AS x, rank() OVER (ORDER BY 0.5 * A.score + 0.5 * B.score) AS rank FROM A, B WHERE A.k = B.k) SELECT x, rank FROM R WHERE rank <= 10;`,
	`SELECT A.key AS k, COUNT(*) AS n, SUM(A.score) AS s FROM A GROUP BY A.key`,
	`SELECT * FROM A WHERE A.name = 'hello world' OR A.id >= 3 LIMIT 7`,
	`SELECT * FROM A WHERE -A.x + 2.5 * A.y < 10 ORDER BY A.x DESC`,
	`SELECT * FROM A WHERE A.x = (1 < 2)`,
	`SELECT * FROM T1, T2, T3 WHERE T1.key = T2.key AND T2.key = T3.key ORDER BY T1.score + 2 * T2.score + T3.score DESC LIMIT 1`,
}

// renderable reports whether q contains only constants the SQL subset can
// spell. Constant folding can manufacture non-finite floats (e.g. overflow
// in a WHERE conjunct); those queries are valid but have no literal syntax,
// so the round-trip property does not apply to them.
func renderable(q *logical.Query) bool {
	finite := func(e expr.Expr) bool { return !hasNonFinite(e) }
	for _, f := range q.Filters {
		if !finite(f) {
			return false
		}
	}
	for _, s := range q.Select {
		if !finite(s.E) {
			return false
		}
	}
	for _, t := range q.Score.Terms {
		if !finite(t.E) || math.IsInf(t.Weight, 0) || math.IsNaN(t.Weight) {
			return false
		}
	}
	for _, a := range q.Aggs {
		if a.Arg != nil && !finite(a.Arg) {
			return false
		}
	}
	return true
}

// hasNonFinite walks e looking for Inf/NaN float constants.
func hasNonFinite(e expr.Expr) bool {
	switch v := e.(type) {
	case expr.Const:
		if v.V.Kind() == relation.KindFloat {
			f := v.V.AsFloat()
			return math.IsInf(f, 0) || math.IsNaN(f)
		}
		return false
	case expr.Binary:
		return hasNonFinite(v.L) || hasNonFinite(v.R)
	case expr.Neg:
		return hasNonFinite(v.E)
	default:
		return false
	}
}

func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		q, err := Parse(sql)
		if err != nil {
			return // rejected inputs are outside the invariant
		}
		if !renderable(q) {
			t.Skip("query contains non-finite folded constants")
		}
		out := Render(q)
		q2, err := Parse(out)
		if err != nil {
			t.Fatalf("rendered SQL does not reparse:\n  in:  %q\n  out: %q\n  err: %v", sql, out, err)
		}
		fp1, fp2 := Fingerprint(q), Fingerprint(q2)
		if fp1 != fp2 {
			t.Fatalf("fingerprint changed across print-and-reparse:\n  in:  %q\n  out: %q\n  fp1: %s\n  fp2: %s", sql, out, fp1, fp2)
		}
	})
}

func FuzzFingerprint(f *testing.F) {
	for i, s := range fuzzSeeds {
		f.Add(s, i+1)
	}
	f.Fuzz(func(t *testing.T, sql string, k int) {
		q, err := Parse(sql)
		if err != nil {
			return
		}
		fp := Fingerprint(q)
		if again := Fingerprint(q); again != fp {
			t.Fatalf("fingerprint not deterministic:\n  %s\n  %s", fp, again)
		}
		if !renderable(q) {
			t.Skip("query contains non-finite folded constants")
		}
		// Rewrite the top-k literal through the full render+parse path: a
		// bounded query must keep its fingerprint for any positive k.
		if q.K > 0 {
			rewritten := *q
			rewritten.K = 1 + abs(k)%10000
			q2, err := Parse(Render(&rewritten))
			if err != nil {
				t.Fatalf("k-rewritten SQL does not reparse: %v", err)
			}
			if got := Fingerprint(q2); got != fp {
				t.Fatalf("fingerprint depends on the k literal (k=%d -> k=%d):\n  %s\n  %s",
					q.K, rewritten.K, fp, got)
			}
		} else {
			// Adding a bound changes the plan shape, so it must change the
			// fingerprint.
			bounded := *q
			bounded.K = 1 + abs(k)%10000
			if got := Fingerprint(&bounded); got == fp {
				t.Fatalf("bounded and unbounded queries share a fingerprint: %s", fp)
			}
		}
	})
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

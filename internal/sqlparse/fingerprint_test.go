package sqlparse

import "testing"

func mustFP(t *testing.T, sql string) string {
	t.Helper()
	q, err := Parse(sql)
	if err != nil {
		t.Fatalf("%q: %v", sql, err)
	}
	return Fingerprint(q)
}

// Spelling variation — whitespace, keyword case, and the LIMIT value — must
// collapse to one fingerprint: these all reuse one cached plan shape.
func TestFingerprintNormalizesSpellingAndK(t *testing.T) {
	base := mustFP(t, "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 5")
	same := []string{
		"select * from T1, T2 where T1.key = T2.key order by T1.score + T2.score desc limit 5",
		"SELECT  *  FROM T1,  T2  WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 5",
		"SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 50",
		// Commutative score sum and reversed equi-predicate sides normalize.
		"SELECT * FROM T1, T2 WHERE T2.key = T1.key ORDER BY T2.score + T1.score DESC LIMIT 5",
	}
	for _, sql := range same {
		if fp := mustFP(t, sql); fp != base {
			t.Errorf("fingerprint diverged\n%q\n  got  %s\n  want %s", sql, fp, base)
		}
	}
}

// Semantically different queries must not collide.
func TestFingerprintSeparatesDistinctQueries(t *testing.T) {
	base := mustFP(t, "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 5")
	different := []string{
		// Different table set.
		"SELECT * FROM T2, T3 WHERE T2.key = T3.key ORDER BY T2.score + T3.score DESC LIMIT 5",
		// Extra filter.
		"SELECT * FROM T1, T2 WHERE T1.key = T2.key AND T1.score > 0.5 ORDER BY T1.score + T2.score DESC LIMIT 5",
		// Different ranking expression.
		"SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score DESC LIMIT 5",
		// Unbounded: no LIMIT changes plan shape (no Limit node, no TA).
		"SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC",
	}
	for _, sql := range different {
		if fp := mustFP(t, sql); fp == base {
			t.Errorf("distinct query collided with base fingerprint:\n%q\n%s", sql, fp)
		}
	}
}

// The fingerprint must record k only as presence (bounded vs all), never the
// value — that is what lets one template serve every k.
func TestFingerprintParameterizesKOut(t *testing.T) {
	a := mustFP(t, "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 1")
	b := mustFP(t, "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 1000000")
	if a != b {
		t.Errorf("k leaked into the fingerprint:\n%s\n%s", a, b)
	}
}

package sqlparse

import (
	"sort"
	"strings"

	"rankopt/internal/logical"
)

// Fingerprint renders a parsed query as a canonical string suitable for plan
// caching: two queries share a fingerprint exactly when the optimizer would
// plan them the same way, up to the literal top-k bound. Canonicalization
// happens on the AST, so lexical differences in the SQL text — whitespace,
// keyword case, `rank < 11` versus `rank <= 10`, conjunct order in WHERE —
// collapse to one fingerprint.
//
// The k literal is parameterized out: only its presence (bounded versus
// unbounded output) is recorded, because presence changes the plan shape (a
// Limit node, TA eligibility) while the value only rebinds existing nodes.
// Cached plan templates are therefore shared across k values and
// re-instantiated with the session's k; see plan.Template.
func Fingerprint(q *logical.Query) string {
	var b strings.Builder
	b.WriteString("tables=")
	b.WriteString(strings.Join(q.Tables, ","))

	// Join predicates: normalize each edge so the lexically smaller column
	// is on the left, then sort the edge list. (A.x = B.x) and (B.x = A.x)
	// describe the same join graph.
	joins := make([]string, len(q.Joins))
	for i, j := range q.Joins {
		l, r := j.L.String(), j.R.String()
		if r < l {
			l, r = r, l
		}
		joins[i] = l + "=" + r
	}
	sort.Strings(joins)
	b.WriteString("|joins=")
	b.WriteString(strings.Join(joins, ";"))

	// Filters commute: sort their canonical forms.
	filters := make([]string, len(q.Filters))
	for i, f := range q.Filters {
		filters[i] = f.String()
	}
	sort.Strings(filters)
	b.WriteString("|filters=")
	b.WriteString(strings.Join(filters, ";"))

	// ScoreSum.String is already canonical (sorted terms).
	b.WriteString("|score=")
	b.WriteString(q.Score.String())

	b.WriteString("|order=")
	if q.OrderBy.Name != "" {
		b.WriteString(q.OrderBy.String())
		if q.OrderDesc {
			b.WriteString(" desc")
		}
	}

	// Only the presence of a bound is part of the plan shape.
	b.WriteString("|k=")
	if q.K > 0 {
		b.WriteString("bounded")
	} else {
		b.WriteString("all")
	}

	// Projection order matters to the output schema: keep declared order.
	b.WriteString("|select=")
	for i, s := range q.Select {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(s.E.String())
		b.WriteString(" as ")
		b.WriteString(s.As)
	}

	b.WriteString("|group=")
	for i, g := range q.GroupBy {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(g.String())
	}
	b.WriteString("|aggs=")
	for i, a := range q.Aggs {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(a.Func)
		b.WriteByte('(')
		if a.Arg != nil {
			b.WriteString(a.Arg.String())
		} else {
			b.WriteByte('*')
		}
		b.WriteString(") as ")
		b.WriteString(a.As)
	}
	return b.String()
}

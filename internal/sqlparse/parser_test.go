package sqlparse

import (
	"strings"
	"testing"

	"rankopt/internal/expr"
)

// q1 is the paper's Query Q1 rewritten over our generated schema.
const q1 = `
WITH RankedAB AS (
    SELECT A.id AS x, B.id AS y,
           rank() OVER (ORDER BY (0.3*A.score + 0.7*B.score)) AS rank
    FROM A, B, C
    WHERE A.key = B.key AND B.key = C.key)
SELECT x, y, rank FROM RankedAB WHERE rank <= 5;
`

func TestParseQ1(t *testing.T) {
	q, err := Parse(q1)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 3 || q.Tables[0] != "A" || q.Tables[2] != "C" {
		t.Fatalf("tables = %v", q.Tables)
	}
	if len(q.Joins) != 2 {
		t.Fatalf("joins = %v", q.Joins)
	}
	if q.Joins[0].String() != "A.key = B.key" {
		t.Errorf("join[0] = %s", q.Joins[0])
	}
	if q.K != 5 {
		t.Errorf("K = %d", q.K)
	}
	if !q.Ranking() || len(q.Score.Terms) != 2 {
		t.Fatalf("score = %v", q.Score)
	}
	if q.Score.String() != "0.3*A.score + 0.7*B.score" {
		t.Errorf("score = %q", q.Score.String())
	}
	if len(q.Select) != 3 || q.Select[0].As != "x" || q.Select[2].As != "rank" {
		t.Fatalf("select = %v", q.Select)
	}
	// rank output maps to the unqualified rank column.
	if c, ok := q.Select[2].E.(expr.ColRef); !ok || c.Name != "rank" {
		t.Error("rank select item must reference the rank column")
	}
}

func TestParseQ2AllTermsRanked(t *testing.T) {
	sql := `
WITH R AS (
    SELECT A.c1 AS x, rank() OVER (ORDER BY (0.3*A.score + 0.3*B.score + 0.3*C.score)) AS r
    FROM A, B, C
    WHERE A.key = B.key AND B.key = C.key)
SELECT x, r FROM R WHERE rank <= 10;`
	q, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Score.Terms) != 3 {
		t.Fatalf("terms = %d", len(q.Score.Terms))
	}
	if q.K != 10 {
		t.Errorf("K = %d", q.K)
	}
	// "r" aliases rank().
	if c, ok := q.Select[1].E.(expr.ColRef); !ok || c.Name != "rank" {
		t.Error("aliased rank item must map to rank column")
	}
}

func TestParsePlainTopK(t *testing.T) {
	q, err := Parse(`SELECT * FROM A, B WHERE A.key = B.key
	                 ORDER BY A.score + B.score DESC LIMIT 7;`)
	if err != nil {
		t.Fatal(err)
	}
	if q.K != 7 || !q.Ranking() {
		t.Fatalf("K=%d ranking=%v", q.K, q.Ranking())
	}
	if len(q.Score.Terms) != 2 || q.Score.Terms[0].Weight != 1 {
		t.Fatalf("score = %v", q.Score)
	}
	if len(q.Select) != 0 {
		t.Error("SELECT * keeps all columns")
	}
}

func TestParsePlainOrderByColumn(t *testing.T) {
	q, err := Parse(`SELECT A.id AS i FROM A, B WHERE A.key = B.key ORDER BY A.score DESC LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Ranking() {
		t.Error("single column ORDER BY is not a ranking query")
	}
	if q.OrderBy != expr.Col("A", "score") || !q.OrderDesc {
		t.Errorf("orderby = %v desc=%v", q.OrderBy, q.OrderDesc)
	}
}

func TestParseFiltersSplitFromJoins(t *testing.T) {
	q, err := Parse(`SELECT * FROM A, B
	    WHERE A.key = B.key AND A.score > 0.5 AND B.id <> 3
	    ORDER BY A.score + B.score DESC LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Joins) != 1 || len(q.Filters) != 2 {
		t.Fatalf("joins=%d filters=%d", len(q.Joins), len(q.Filters))
	}
}

func TestParseStrictRankBound(t *testing.T) {
	sql := strings.Replace(q1, "rank <= 5", "rank < 5", 1)
	q, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	if q.K != 4 {
		t.Errorf("rank < 5 means K=4, got %d", q.K)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q, err := Parse(`select * from A, B where A.key = B.key order by A.score + B.score desc limit 1`)
	if err != nil {
		t.Fatal(err)
	}
	if q.K != 1 {
		t.Error("lowercase query should parse")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             ``,
		"bad keyword":       `FOO BAR`,
		"missing from":      `SELECT a`,
		"unterminated str":  `SELECT 'abc FROM A`,
		"trailing junk":     `SELECT * FROM A; garbage`,
		"no rank in with":   `WITH R AS (SELECT A.a AS x FROM A) SELECT x FROM R`,
		"mismatched cte":    `WITH R AS (SELECT rank() OVER (ORDER BY A.s) AS r FROM A) SELECT r FROM Z`,
		"bad outer col":     `WITH R AS (SELECT rank() OVER (ORDER BY A.s) AS r FROM A) SELECT zz FROM R`,
		"asc rank":          `WITH R AS (SELECT rank() OVER (ORDER BY A.s ASC) AS r FROM A) SELECT r FROM R`,
		"asc score orderby": `SELECT * FROM A, B WHERE A.k = B.k ORDER BY A.s + B.s LIMIT 3`,
		"zero limit":        `SELECT * FROM A ORDER BY A.s DESC LIMIT 0`,
		"rank bound zero":   strings.Replace(q1, "rank <= 5", "rank <= 0", 1),
		"mixed-table term":  `SELECT * FROM A, B WHERE A.k = B.k ORDER BY A.s * B.s DESC LIMIT 1`,
		"unknown character": `SELECT @ FROM A`,
		"disconnected":      `SELECT * FROM A, B ORDER BY A.s + B.s DESC LIMIT 1`,
	}
	for name, sql := range cases {
		if _, err := Parse(sql); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestParseExpressionForms(t *testing.T) {
	q, err := Parse(`SELECT * FROM A
	    WHERE A.score >= 0.25 AND (A.id < 10 OR A.id > 90)
	    ORDER BY A.score DESC LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	// The OR disjunct stays one filter; the >= is another.
	if len(q.Filters) != 2 {
		t.Fatalf("filters = %d", len(q.Filters))
	}
	found := false
	for _, f := range q.Filters {
		if strings.Contains(f.String(), "OR") {
			found = true
		}
	}
	if !found {
		t.Error("OR filter lost")
	}
}

func TestParseNegativeAndArithmetic(t *testing.T) {
	q, err := Parse(`SELECT * FROM A WHERE A.x - -1 > 2 / 2 ORDER BY A.s DESC LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 1 {
		t.Fatal("arithmetic filter lost")
	}
}

func TestScoreTermWeightOnRight(t *testing.T) {
	q, err := Parse(`SELECT * FROM A, B WHERE A.k = B.k
	    ORDER BY A.s*0.4 + B.s*0.6 DESC LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Score.Terms) != 2 {
		t.Fatal("terms")
	}
	weights := map[string]float64{}
	for _, tm := range q.Score.Terms {
		weights[tm.E.String()] = tm.Weight
	}
	if weights["A.s"] != 0.4 || weights["B.s"] != 0.6 {
		t.Errorf("weights = %v", weights)
	}
}

func TestParseGroupBy(t *testing.T) {
	q, err := Parse(`SELECT A.key, COUNT(*), SUM(B.score) AS total
	    FROM A, B WHERE A.key = B.key
	    GROUP BY A.key LIMIT 4`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Grouped() || len(q.GroupBy) != 1 || q.GroupBy[0] != expr.Col("A", "key") {
		t.Fatalf("groupby = %v", q.GroupBy)
	}
	if len(q.Aggs) != 2 {
		t.Fatalf("aggs = %v", q.Aggs)
	}
	if q.Aggs[0].Func != "COUNT" || q.Aggs[0].Arg != nil {
		t.Errorf("agg[0] = %+v", q.Aggs[0])
	}
	if q.Aggs[1].Func != "SUM" || q.Aggs[1].As != "total" {
		t.Errorf("agg[1] = %+v", q.Aggs[1])
	}
	if q.K != 4 {
		t.Errorf("K = %d", q.K)
	}
}

func TestParseGroupByMultiColumn(t *testing.T) {
	q, err := Parse(`SELECT A.key, A.id, MIN(A.score) FROM A GROUP BY A.key, A.id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.GroupBy) != 2 {
		t.Fatalf("groupby = %v", q.GroupBy)
	}
}

func TestParseGroupByErrors(t *testing.T) {
	cases := map[string]string{
		"agg without group":   `SELECT COUNT(*) FROM A`,
		"non-group select":    `SELECT A.id, COUNT(*) FROM A GROUP BY A.key`,
		"star in grouped":     `SELECT *, COUNT(*) FROM A GROUP BY A.key`,
		"sum star":            `SELECT A.key, SUM(*) FROM A GROUP BY A.key`,
		"group by expression": `SELECT A.key, COUNT(*) FROM A GROUP BY 1+2`,
		"group with orderby":  `SELECT A.key, COUNT(*) FROM A GROUP BY A.key ORDER BY A.key ASC`,
		"group with score":    `SELECT A.key, COUNT(*) FROM A GROUP BY A.key ORDER BY A.s + A.t DESC`,
		"no aggregates":       `SELECT A.key FROM A GROUP BY A.key`,
	}
	for name, sql := range cases {
		if _, err := Parse(sql); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestParseSimplifiesWhere(t *testing.T) {
	// Constant-true conjuncts vanish; folded arithmetic shrinks filters.
	q, err := Parse(`SELECT * FROM A WHERE 1 < 2 AND A.score > 0.5 + 0.25
	    ORDER BY A.score DESC LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 1 {
		t.Fatalf("filters = %v", q.Filters)
	}
	if q.Filters[0].String() != "(A.score > 0.75)" {
		t.Errorf("filter = %s, want folded constant", q.Filters[0])
	}
	// Always-false WHERE is a named error.
	if _, err := Parse(`SELECT * FROM A WHERE 1 > 2 ORDER BY A.s DESC LIMIT 1`); err == nil {
		t.Error("always-false WHERE must error")
	}
}

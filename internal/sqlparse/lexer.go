// Package sqlparse parses the SQL subset the paper's queries use: the
// SQL99 windowed form
//
//	WITH R AS (
//	    SELECT A.c1 AS x, B.c2 AS y,
//	           rank() OVER (ORDER BY (0.3*A.c1 + 0.7*B.c2)) AS rank
//	    FROM A, B, C
//	    WHERE A.c1 = B.c1 AND B.c2 = C.c2)
//	SELECT x, y, rank FROM R WHERE rank <= 5;
//
// and the plain form
//
//	SELECT ... FROM A, B WHERE ... ORDER BY expr [DESC] LIMIT k;
//
// producing a validated logical.Query. Following the paper, rank() orders
// descending by combined score (rank 1 is the best match) unless ASC is
// written explicitly.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol
	tokKeyword
)

var keywords = map[string]bool{
	"WITH": true, "AS": true, "SELECT": true, "FROM": true, "WHERE": true,
	"AND": true, "OR": true, "ORDER": true, "BY": true, "OVER": true,
	"LIMIT": true, "ASC": true, "DESC": true, "GROUP": true,
}

// token is one lexical unit. For keywords, text is upper-cased; identifiers
// keep their original spelling.
type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex splits the input into tokens.
func lex(input string) ([]token, error) {
	var out []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < n && (isIdentChar(rune(input[i]))) {
				i++
			}
			word := input[start:i]
			if keywords[strings.ToUpper(word)] {
				out = append(out, token{tokKeyword, strings.ToUpper(word), start})
			} else {
				out = append(out, token{tokIdent, word, start})
			}
		case unicode.IsDigit(c) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			start := i
			seenDot := false
			for i < n {
				ch := rune(input[i])
				if ch == '.' {
					if seenDot {
						break
					}
					seenDot = true
					i++
					continue
				}
				if !unicode.IsDigit(ch) {
					break
				}
				i++
			}
			out = append(out, token{tokNumber, input[start:i], start})
		case c == '\'':
			i++
			start := i
			for i < n && input[i] != '\'' {
				i++
			}
			if i >= n {
				return nil, fmt.Errorf("sqlparse: unterminated string at %d", start-1)
			}
			out = append(out, token{tokString, input[start:i], start - 1})
			i++
		case strings.ContainsRune("(),*+-/=;", c):
			out = append(out, token{tokSymbol, string(c), i})
			i++
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				out = append(out, token{tokSymbol, input[i : i+2], i})
				i += 2
			} else {
				out = append(out, token{tokSymbol, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				out = append(out, token{tokSymbol, ">=", i})
				i += 2
			} else {
				out = append(out, token{tokSymbol, ">", i})
				i++
			}
		case c == '.':
			out = append(out, token{tokSymbol, ".", i})
			i++
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at %d", c, i)
		}
	}
	out = append(out, token{tokEOF, "", n})
	return out, nil
}

func isIdentChar(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_'
}

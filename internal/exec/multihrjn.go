package exec

import (
	"context"
	"fmt"
	"math"

	"rankopt/internal/expr"
	"rankopt/internal/relation"
)

// MultiHRJN is the m-way hash rank-join: one operator joins m ranked inputs
// on a shared equi-join key and releases results in descending combined
// score order. Compared to a tree of binary HRJNs it maintains one global
// threshold
//
//	T = max_i ( last_i + Σ_{j≠i} top_j )
//
// so no intermediate partial rankings are buffered — the trade the rank-join
// literature studies against binary composition. All inputs must arrive in
// descending order of their score expressions.
type MultiHRJN struct {
	Inputs []Operator
	// Scores[i] evaluates input i's contribution against its own schema.
	Scores []expr.Expr
	// Keys[i] evaluates input i's join key; results combine tuples sharing
	// one key value across all inputs.
	Keys []expr.Expr
	// Budget, when set, is charged for every tuple buffered in the m hash
	// tables and the global ranking queue, and consulted for the per-input
	// depth limit.
	Budget *Budget

	schema   *relation.Schema
	scoreEvs []expr.Eval
	keyEvs   []expr.Eval
	tables   []map[any][]scored
	tops     []float64
	lasts    []float64
	seen     []int
	done     []bool
	next     int
	pq       rankQueue
	seq      int
	// parts is the combination scratch buffer, reused across pulls so the
	// per-tuple path does not allocate it.
	parts []scored

	cancel canceller
	acct   accountant

	depths   []int
	maxQueue int
	emitted  int
}

// NewMultiHRJN constructs the operator; inputs, scores, and keys must align.
func NewMultiHRJN(inputs []Operator, scores, keys []expr.Expr) (*MultiHRJN, error) {
	if len(inputs) < 2 {
		return nil, fmt.Errorf("exec: MultiHRJN needs >=2 inputs, got %d", len(inputs))
	}
	if len(scores) != len(inputs) || len(keys) != len(inputs) {
		return nil, fmt.Errorf("exec: MultiHRJN arity mismatch (%d inputs, %d scores, %d keys)",
			len(inputs), len(scores), len(keys))
	}
	sch := inputs[0].Schema()
	for _, in := range inputs[1:] {
		sch = sch.Concat(in.Schema())
	}
	return &MultiHRJN{Inputs: inputs, Scores: scores, Keys: keys, schema: sch}, nil
}

// Schema implements Operator.
func (j *MultiHRJN) Schema() *relation.Schema { return j.schema }

// Depths returns the number of tuples consumed from each input.
func (j *MultiHRJN) Depths() []int { return append([]int(nil), j.depths...) }

// MaxQueue returns the ranking-queue high-water mark.
func (j *MultiHRJN) MaxQueue() int { return j.maxQueue }

// gauges exposes the queue high-water mark (and, in the binary case, the two
// input depths) to the Analyzed collector.
func (j *MultiHRJN) gauges() analyzeGauges {
	g := analyzeGauges{maxQueue: j.maxQueue}
	if len(j.depths) == 2 {
		g.leftDepth, g.rightDepth = j.depths[0], j.depths[1]
	}
	return g
}

// Open implements Operator.
func (j *MultiHRJN) Open() error { return j.OpenCtx(context.Background()) }

// OpenCtx implements OperatorCtx, forwarding the context to every input and
// polling it in Next's pull loop.
func (j *MultiHRJN) OpenCtx(ctx context.Context) error {
	j.cancel.reset(ctx)
	j.acct.releaseAll()
	j.acct.budget = j.Budget
	m := len(j.Inputs)
	j.scoreEvs = make([]expr.Eval, m)
	j.keyEvs = make([]expr.Eval, m)
	for i, in := range j.Inputs {
		if err := OpenOp(ctx, in); err != nil {
			closeQuietly(j.Inputs[:i]...)
			return err
		}
		var err error
		if j.scoreEvs[i], err = j.Scores[i].Bind(in.Schema()); err != nil {
			closeQuietly(j.Inputs[:i+1]...)
			return err
		}
		if j.keyEvs[i], err = j.Keys[i].Bind(in.Schema()); err != nil {
			closeQuietly(j.Inputs[:i+1]...)
			return err
		}
	}
	j.tables = make([]map[any][]scored, m)
	for i := range j.tables {
		j.tables[i] = map[any][]scored{}
	}
	j.tops = make([]float64, m)
	j.lasts = make([]float64, m)
	j.seen = make([]int, m)
	j.done = make([]bool, m)
	j.depths = make([]int, m)
	j.next = 0
	j.pq = j.pq[:0]
	j.parts = make([]scored, m)
	j.seq = 0
	j.maxQueue = 0
	j.emitted = 0
	return nil
}

// threshold bounds the score of every unseen join combination.
func (j *MultiHRJN) threshold() float64 {
	sumTops := 0.0
	for i := range j.Inputs {
		if j.seen[i] == 0 {
			if j.done[i] {
				// An empty input: no results at all.
				return math.Inf(-1)
			}
			return math.Inf(1)
		}
		sumTops += j.tops[i]
	}
	t := math.Inf(-1)
	for i := range j.Inputs {
		if j.done[i] {
			continue
		}
		if v := sumTops - j.tops[i] + j.lasts[i]; v > t {
			t = v
		}
	}
	return t
}

// allDone reports whether every input is exhausted.
func (j *MultiHRJN) allDone() bool {
	for _, d := range j.done {
		if !d {
			return false
		}
	}
	return true
}

// chooseInput rotates round-robin over live inputs.
func (j *MultiHRJN) chooseInput() int {
	m := len(j.Inputs)
	for t := 0; t < m; t++ {
		i := (j.next + t) % m
		if !j.done[i] {
			j.next = (i + 1) % m
			return i
		}
	}
	return -1
}

// pull consumes one tuple from input i, joining it against the other seen
// sides.
func (j *MultiHRJN) pull(i int) error {
	t, ok, err := j.Inputs[i].Next()
	if err != nil {
		return err
	}
	if !ok {
		j.done[i] = true
		return nil
	}
	// Consumed tuples count toward the depth before the NULL-score drop.
	j.depths[i]++
	if err := j.Budget.depthOK(j.depths[i]); err != nil {
		return err
	}
	sv, err := j.scoreEvs[i](t)
	if err != nil {
		return err
	}
	if sv.IsNull() {
		return nil
	}
	s, err := finiteScore(sv.AsFloat(), "MultiHRJN", "ranked")
	if err != nil {
		return err
	}
	if j.seen[i] == 0 {
		j.tops[i] = s
	} else if s > j.lasts[i]+scoreEps {
		return fmt.Errorf("exec: MultiHRJN input %d violated descending-score contract (%v after %v)", i, s, j.lasts[i])
	}
	j.lasts[i] = s
	j.seen[i]++
	kv, err := j.keyEvs[i](t)
	if err != nil {
		return err
	}
	if kv.IsNull() {
		return nil
	}
	hk := kv.HashKey()
	if err := j.acct.charge(1); err != nil {
		return err
	}
	j.tables[i][hk] = append(j.tables[i][hk], scored{t, s})
	// Enumerate combinations: the new tuple at position i, matching tuples
	// from every other input.
	j.parts[i] = scored{t, s}
	return j.combine(hk, 0, i, j.parts)
}

// combine recursively fills every slot except `fixed` with matches under hk.
func (j *MultiHRJN) combine(hk any, slot, fixed int, parts []scored) error {
	if slot == len(j.Inputs) {
		total := 0.0
		out := make(relation.Tuple, 0, j.schema.Len())
		for _, p := range parts {
			total += p.s
			out = append(out, p.t...)
		}
		if err := j.acct.charge(1); err != nil {
			return err
		}
		j.pq.push(rankItem{score: total, seq: j.seq, tuple: out})
		j.seq++
		if len(j.pq) > j.maxQueue {
			j.maxQueue = len(j.pq)
		}
		return nil
	}
	if slot == fixed {
		return j.combine(hk, slot+1, fixed, parts)
	}
	for _, m := range j.tables[slot][hk] {
		parts[slot] = m
		if err := j.combine(hk, slot+1, fixed, parts); err != nil {
			return err
		}
	}
	return nil
}

// Next implements Operator.
func (j *MultiHRJN) Next() (relation.Tuple, bool, error) {
	for {
		if err := j.cancel.poll(); err != nil {
			return nil, false, err
		}
		if len(j.pq) > 0 && j.pq[0].score >= j.threshold()-scoreEps {
			it := j.pq.pop()
			j.acct.release(1)
			j.emitted++
			return it.tuple, true, nil
		}
		if j.allDone() {
			if len(j.pq) > 0 {
				it := j.pq.pop()
				j.acct.release(1)
				j.emitted++
				return it.tuple, true, nil
			}
			return nil, false, nil
		}
		i := j.chooseInput()
		if i < 0 {
			continue
		}
		if err := j.pull(i); err != nil {
			return nil, false, err
		}
	}
}

// Close implements Operator.
func (j *MultiHRJN) Close() error {
	var first error
	for _, in := range j.Inputs {
		if err := in.Close(); err != nil && first == nil {
			first = err
		}
	}
	j.tables = nil
	j.pq = nil
	j.parts = nil
	j.acct.releaseAll()
	return first
}

// Package exec implements the engine's physical operators in the Volcano
// (iterator) style: every operator exposes Open/Next/Close and produces
// tuples of a fixed schema. The package contains the classic relational
// operators (scans, filter, project, sort, limit, nested-loops / index /
// sort-merge / hash / symmetric-hash joins) and the paper's rank-join
// operators HRJN and NRJN, instrumented so experiments can measure the
// depths (input cardinalities) and buffer sizes the optimizer estimates.
package exec

import (
	"context"
	"fmt"

	"rankopt/internal/relation"
)

// Operator is the Volcano iterator contract. Implementations must tolerate
// Close after partial consumption (rank plans stop early by design).
type Operator interface {
	// Schema describes the tuples produced by Next.
	Schema() *relation.Schema
	// Open prepares the operator (recursively opening children). When Open
	// returns an error the operator has already closed every child it
	// managed to open; callers must not Close a failed operator.
	Open() error
	// Next returns the next tuple; ok=false signals exhaustion.
	Next() (t relation.Tuple, ok bool, err error)
	// Close releases resources (recursively closing children).
	Close() error
}

// OperatorCtx is the context-aware open path: operators that buffer, loop,
// or forward to children implement it so a query context (cancellation,
// deadline) reaches the whole tree. Plain Operator implementations keep
// working through the OpenOp shim.
type OperatorCtx interface {
	Operator
	// OpenCtx behaves like Open under the given query context: blocking work
	// (materialization, hash build) polls ctx on the cancelCheckPeriod
	// cadence, and the context is retained for Next-time polling. The
	// Open-failure contract is unchanged: children are already closed.
	OpenCtx(ctx context.Context) error
}

// OpenOp opens op under ctx, falling back to the context-free Open for
// operators that never implemented OpenCtx — the compatibility shim that
// lets context-aware parents treat every child uniformly.
func OpenOp(ctx context.Context, op Operator) error {
	if oc, ok := op.(OperatorCtx); ok {
		return oc.OpenCtx(ctx)
	}
	return op.Open()
}

// closeQuietly closes already-opened children on an Open failure path. The
// Open error takes precedence, so Close errors are discarded.
func closeQuietly(ops ...Operator) {
	for _, op := range ops {
		if op != nil {
			_ = op.Close()
		}
	}
}

// Collect opens op, drains it, closes it, and returns all produced tuples.
// A failed Open needs no Close: per the Operator contract the operator has
// already released whatever it opened.
func Collect(op Operator) ([]relation.Tuple, error) {
	return CollectCtx(context.Background(), op)
}

// CollectCtx collects like Collect under a query context: the tree is opened
// through OpenOp so every context-aware operator sees ctx, and the drain
// pulls batch-at-a-time — vectorized roots are drained natively, per-tuple
// roots through the shim (which polls ctx on the canceller cadence), with
// one context check per batch either way. On any failure — including
// cancellation — the tree is closed before returning, so a cancelled query
// never leaks goroutines, pooled buffers, or open state.
func CollectCtx(ctx context.Context, op Operator) ([]relation.Tuple, error) {
	if err := CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := OpenOp(ctx, op); err != nil {
		return nil, err
	}
	var out []relation.Tuple
	var src batchSource
	src.reset(ctx, op)
	b := NewBatch(DefaultBatchSize)
	for {
		if err := CtxErr(ctx); err != nil {
			_ = op.Close()
			return nil, err
		}
		ok, err := src.next(b, DefaultBatchSize)
		if err != nil {
			_ = op.Close()
			return nil, err
		}
		if !ok {
			break
		}
		out = append(out, b.Tuples()...)
	}
	if err := op.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// CollectPerTupleCtx is the one-tuple-per-Next reference drain: CollectCtx
// exactly as it behaved before batch execution landed. The batch benchmarks
// use it as the baseline side, and the differential oracle cross-checks
// every plan through both drains — any batch-vs-tuple divergence fails the
// comparison.
func CollectPerTupleCtx(ctx context.Context, op Operator) ([]relation.Tuple, error) {
	if err := CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := OpenOp(ctx, op); err != nil {
		return nil, err
	}
	var out []relation.Tuple
	var c canceller
	c.reset(ctx)
	for {
		if err := c.poll(); err != nil {
			_ = op.Close()
			return nil, err
		}
		t, ok, err := op.Next()
		if err != nil {
			_ = op.Close()
			return nil, err
		}
		if !ok {
			break
		}
		out = append(out, t)
	}
	if err := op.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// DrainCtx opens op, pulls it to exhaustion batch-at-a-time discarding the
// tuples, closes it, and returns the tuple count. It is the
// materialization-free drain — row counting, benchmark loops — where the
// result-buffer cost of CollectCtx would be pure noise.
func DrainCtx(ctx context.Context, op Operator) (int, error) {
	if err := CtxErr(ctx); err != nil {
		return 0, err
	}
	if err := OpenOp(ctx, op); err != nil {
		return 0, err
	}
	n := 0
	var src batchSource
	src.reset(ctx, op)
	b := NewBatch(DefaultBatchSize)
	for {
		if err := CtxErr(ctx); err != nil {
			_ = op.Close()
			return n, err
		}
		ok, err := src.next(b, DefaultBatchSize)
		if err != nil {
			_ = op.Close()
			return n, err
		}
		if !ok {
			break
		}
		n += b.Len()
	}
	if err := op.Close(); err != nil {
		return n, err
	}
	return n, nil
}

// DrainPerTupleCtx drains like DrainCtx one tuple per Next — the per-tuple
// reference side of the batch benchmarks.
func DrainPerTupleCtx(ctx context.Context, op Operator) (int, error) {
	if err := CtxErr(ctx); err != nil {
		return 0, err
	}
	if err := OpenOp(ctx, op); err != nil {
		return 0, err
	}
	n := 0
	var c canceller
	c.reset(ctx)
	for {
		if err := c.poll(); err != nil {
			_ = op.Close()
			return n, err
		}
		_, ok, err := op.Next()
		if err != nil {
			_ = op.Close()
			return n, err
		}
		if !ok {
			break
		}
		n++
	}
	if err := op.Close(); err != nil {
		return n, err
	}
	return n, nil
}

// CollectK opens op, pulls at most k tuples, closes it — the background-
// context shim over CollectKCtx, for callers without a query context.
func CollectK(op Operator, k int) ([]relation.Tuple, error) {
	return CollectKCtx(context.Background(), op, k)
}

// CollectKCtx collects like CollectK under a query context: the tree is
// opened through OpenOp so every context-aware operator sees ctx, and the
// drain loop polls ctx on the canceller cadence. It pulls one tuple per Next
// on purpose — pulling batch-granular here would overpull lazy rank-join
// roots past k, destroying exactly the early termination top-k callers use
// CollectK for.
func CollectKCtx(ctx context.Context, op Operator, k int) ([]relation.Tuple, error) {
	if err := CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := OpenOp(ctx, op); err != nil {
		return nil, err
	}
	var out []relation.Tuple
	var c canceller
	c.reset(ctx)
	for len(out) < k {
		if err := c.poll(); err != nil {
			_ = op.Close()
			return nil, err
		}
		t, ok, err := op.Next()
		if err != nil {
			_ = op.Close()
			return nil, err
		}
		if !ok {
			break
		}
		out = append(out, t)
	}
	if err := op.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// Counter wraps an operator and counts the tuples pulled through it. The
// experiment harness uses counters to measure operator depths (the number of
// input tuples a rank-join consumed). It forwards the batch contract, so
// counting does not knock a vectorized pipeline back to per-tuple pulls.
type Counter struct {
	In    Operator
	count int
	src   batchSource
}

// NewCounter wraps in.
func NewCounter(in Operator) *Counter { return &Counter{In: in} }

// Schema implements Operator.
func (c *Counter) Schema() *relation.Schema { return c.In.Schema() }

// Open implements Operator; it resets the count.
func (c *Counter) Open() error { return c.OpenCtx(context.Background()) }

// OpenCtx implements OperatorCtx, forwarding the context to the input.
func (c *Counter) OpenCtx(ctx context.Context) error {
	c.count = 0
	if err := OpenOp(ctx, c.In); err != nil {
		return err
	}
	c.src.reset(ctx, c.In)
	return nil
}

// Next implements Operator.
func (c *Counter) Next() (relation.Tuple, bool, error) {
	t, ok, err := c.In.Next()
	if ok {
		c.count++
	}
	return t, ok, err
}

// NextBatch implements BatchOperator, counting whole batches at once.
func (c *Counter) NextBatch(out *Batch, max int) (bool, error) {
	ok, err := c.src.next(out, max)
	if ok {
		c.count += out.Len()
	}
	return ok, err
}

// Close implements Operator.
func (c *Counter) Close() error { return c.In.Close() }

// Count returns the number of tuples pulled since Open.
func (c *Counter) Count() int { return c.count }

// errOp is a degenerate operator that fails on Open; useful in tests.
type errOp struct{ err error }

// ErrOperator returns an operator whose Open fails with message msg.
func ErrOperator(msg string) Operator { return errOp{fmt.Errorf("%s", msg)} }

func (e errOp) Schema() *relation.Schema            { return relation.NewSchema() }
func (e errOp) Open() error                         { return e.err }
func (e errOp) Next() (relation.Tuple, bool, error) { return nil, false, e.err }
func (e errOp) Close() error                        { return nil }

// sliceOp replays a fixed tuple slice; the building block for materialized
// inputs and for tests.
type sliceOp struct {
	schema *relation.Schema
	tuples []relation.Tuple
	pos    int
}

// FromTuples returns an operator producing the given tuples.
func FromTuples(schema *relation.Schema, tuples []relation.Tuple) Operator {
	return &sliceOp{schema: schema, tuples: tuples}
}

func (s *sliceOp) Schema() *relation.Schema { return s.schema }
func (s *sliceOp) Open() error              { s.pos = 0; return nil }
func (s *sliceOp) Close() error             { return nil }

func (s *sliceOp) Next() (relation.Tuple, bool, error) {
	if s.pos >= len(s.tuples) {
		return nil, false, nil
	}
	t := s.tuples[s.pos]
	s.pos++
	return t, true, nil
}

// NextBatch implements BatchOperator: the batch borrows a window of the
// materialized slice (zero copies, like SeqScan over a heap).
func (s *sliceOp) NextBatch(out *Batch, max int) (bool, error) {
	if s.pos >= len(s.tuples) {
		out.Reset()
		return false, nil
	}
	end := s.pos + max
	if end > len(s.tuples) {
		end = len(s.tuples)
	}
	out.SetView(s.tuples[s.pos:end])
	s.pos = end
	return true, nil
}

package exec

import (
	"context"
	"errors"
	"testing"
	"time"

	"rankopt/internal/expr"
)

// limitedHRJN builds the standard test join with a budget attached.
func limitedHRJN(n, mod int, budget *Budget) *HRJN {
	lsch, ltups := buildRankedInput(n, mod, 1)
	rsch, rtups := buildRankedInput(n, mod, 3)
	j := NewHRJN(
		FromTuples(lsch, ltups), FromTuples(rsch, rtups),
		expr.Col("A", "score"), expr.Col("A", "score"),
		expr.Col("A", "key"), expr.Col("A", "key"), nil)
	j.Budget = budget
	return j
}

func TestNewBudgetNilWhenUnlimited(t *testing.T) {
	if b := NewBudget(ResourceLimits{}); b != nil {
		t.Fatal("zero limits must yield a nil budget")
	}
	if b := NewBudget(ResourceLimits{Deadline: time.Now()}); b != nil {
		t.Fatal("a deadline alone needs no budget (the context enforces it)")
	}
	if b := NewBudget(ResourceLimits{MaxBufferedTuples: 1}); b == nil {
		t.Fatal("a buffer cap must yield a budget")
	}
	if b := NewBudget(ResourceLimits{MaxDepthPerInput: 1}); b == nil {
		t.Fatal("a depth cap must yield a budget")
	}
}

func TestBudgetExceededTyped(t *testing.T) {
	b := NewBudget(ResourceLimits{MaxBufferedTuples: 10})
	j := limitedHRJN(4000, 5, b)
	_, err := Collect(j)
	if err == nil {
		t.Fatal("tiny buffer budget must fail the join")
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if b.Buffered() != 0 {
		t.Fatalf("budget not released after failed run: %d still charged", b.Buffered())
	}
}

func TestDepthExceededTyped(t *testing.T) {
	b := NewBudget(ResourceLimits{MaxDepthPerInput: 7})
	j := limitedHRJN(4000, 5, b)
	_, err := Collect(j)
	if err == nil {
		t.Fatal("tiny depth cap must fail the join")
	}
	if !errors.Is(err, ErrDepthExceeded) {
		t.Fatalf("want ErrDepthExceeded, got %v", err)
	}
	// Depth exhaustion is a budget failure in the taxonomy.
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("ErrDepthExceeded must wrap ErrBudgetExceeded, got %v", err)
	}
}

func TestBudgetSufficientRunsClean(t *testing.T) {
	b := NewBudget(ResourceLimits{MaxBufferedTuples: 1 << 20})
	j := limitedHRJN(2000, 50, b)
	out, err := CollectK(j, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 25 {
		t.Fatalf("got %d tuples, want 25", len(out))
	}
	if b.Buffered() != 0 {
		t.Fatalf("budget not fully released after Close: %d", b.Buffered())
	}
}

// The budget is shared: two operators drawing from one allowance fail
// together where either alone would fit.
func TestBudgetSharedAcrossOperators(t *testing.T) {
	// Each sort buffers 600 tuples; a 1000-tuple budget fits one but not both.
	sch, tups := buildRankedInput(600, 10, 1)
	b := NewBudget(ResourceLimits{MaxBufferedTuples: 1000})
	s1 := NewSort(FromTuples(sch, tups), SortKey{E: expr.Col("A", "score"), Desc: true})
	s1.Budget = b
	s2 := NewSort(FromTuples(sch, tups), SortKey{E: expr.Col("A", "score"), Desc: true})
	s2.Budget = b
	if err := s1.Open(); err != nil {
		t.Fatalf("first sort must fit: %v", err)
	}
	defer s1.Close()
	err := s2.Open()
	if err == nil {
		s2.Close()
		t.Fatal("second sort must exceed the shared budget")
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	// Closing the holder frees its share; the second sort now fits.
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Open(); err != nil {
		t.Fatalf("after release the second sort must fit: %v", err)
	}
	s2.Close()
}

// TopK charges only its bounded heap, not the full input.
func TestTopKBudgetIsHeapBound(t *testing.T) {
	sch, tups := buildRankedInput(5000, 100, 1)
	b := NewBudget(ResourceLimits{MaxBufferedTuples: 20})
	tk := NewTopK(FromTuples(sch, tups), expr.Col("A", "score"), 10)
	tk.Budget = b
	out, err := Collect(tk)
	if err != nil {
		t.Fatalf("K=10 under a 20-tuple budget must pass: %v", err)
	}
	if len(out) != 10 {
		t.Fatalf("got %d tuples, want 10", len(out))
	}
}

func TestCancelledContextTyped(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	j := limitedHRJN(4000, 50, nil)
	_, err := CollectCtx(ctx, j)
	if !errors.Is(err, ErrQueryCancelled) {
		t.Fatalf("want ErrQueryCancelled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ErrQueryCancelled must wrap context.Canceled, got %v", err)
	}
}

func TestExpiredDeadlineTyped(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	j := limitedHRJN(4000, 50, nil)
	_, err := CollectCtx(ctx, j)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ErrDeadlineExceeded must wrap context.DeadlineExceeded, got %v", err)
	}
}

// Cancelling mid-pull is observed within one polling period (64 Next calls),
// and the failed collect has closed the tree (budget fully released).
func TestCancelMidQueryReleasesBudget(t *testing.T) {
	b := NewBudget(ResourceLimits{MaxBufferedTuples: 1 << 20})
	j := limitedHRJN(8000, 20, b)
	ctx, cancel := context.WithCancel(context.Background())
	if err := j.OpenCtx(ctx); err != nil {
		t.Fatal(err)
	}
	// Pull a few results, then cancel.
	for i := 0; i < 3; i++ {
		if _, ok, err := j.Next(); err != nil || !ok {
			t.Fatalf("warm-up pull %d failed: ok=%v err=%v", i, ok, err)
		}
	}
	cancel()
	var err error
	for i := 0; i < 2*cancelCheckPeriod; i++ {
		if _, _, err = j.Next(); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrQueryCancelled) {
		t.Fatalf("cancellation not observed within polling cadence: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if b.Buffered() != 0 {
		t.Fatalf("budget not released after cancel+Close: %d", b.Buffered())
	}
}

func TestCtxErrMapping(t *testing.T) {
	if err := CtxErr(context.Background()); err != nil {
		t.Fatalf("live context must map to nil, got %v", err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := CtxErr(cctx); !errors.Is(err, ErrQueryCancelled) {
		t.Fatalf("cancelled context must map to ErrQueryCancelled, got %v", err)
	}
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Minute))
	defer dcancel()
	if err := CtxErr(dctx); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired context must map to ErrDeadlineExceeded, got %v", err)
	}
}

// cancelCheckPeriod must stay a power of two: the canceller's cheap test is
// a mask, not a division.
func TestCancelCheckPeriodPowerOfTwo(t *testing.T) {
	if cancelCheckPeriod&(cancelCheckPeriod-1) != 0 || cancelCheckPeriod == 0 {
		t.Fatalf("cancelCheckPeriod=%d is not a power of two", cancelCheckPeriod)
	}
}

// The budget machinery must add zero allocations per emitted tuple: charge
// and release are one atomic add each, the canceller a counter mask.
func TestBudgetAddsNoAllocations(t *testing.T) {
	lsch, ltups := buildRankedInput(4000, 200, 1)
	rsch, rtups := buildRankedInput(4000, 200, 3)
	const k = 100
	run := func(b *Budget) float64 {
		return testing.AllocsPerRun(5, func() {
			j := NewHRJN(
				FromTuples(lsch, ltups), FromTuples(rsch, rtups),
				expr.Col("A", "score"), expr.Col("A", "score"),
				expr.Col("A", "key"), expr.Col("A", "key"), nil)
			j.SizeHintL, j.SizeHintR, j.QueueHint = 400, 400, 1024
			j.Budget = b
			if _, err := CollectK(j, k); err != nil {
				t.Fatal(err)
			}
		})
	}
	without := run(nil)
	with := run(NewBudget(ResourceLimits{MaxBufferedTuples: 1 << 20, MaxDepthPerInput: 1 << 20}))
	// Identical workload, deterministic operators: the budgeted run may not
	// allocate a single extra object per run, let alone per tuple.
	if with > without {
		t.Errorf("budget checks allocate: %.1f allocs/run with budget vs %.1f without", with, without)
	}
}

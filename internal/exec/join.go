package exec

import (
	"context"
	"fmt"
	"math"

	"rankopt/internal/catalog"
	"rankopt/internal/expr"
	"rankopt/internal/relation"
)

// bindPred binds an optional predicate against a schema; nil predicates
// become always-true evaluators.
func bindPred(pred expr.Expr, sch *relation.Schema) (expr.Eval, error) {
	if pred == nil {
		return func(relation.Tuple) (relation.Value, error) {
			return relation.Bool(true), nil
		}, nil
	}
	return pred.Bind(sch)
}

// NestedLoopsJoin joins by looping the materialized inner per outer tuple.
// It preserves the outer (left) input's order and is pipelined on the outer.
type NestedLoopsJoin struct {
	Left, Right Operator
	Pred        expr.Expr

	schema *relation.Schema
	ev     expr.Eval
	inner  []relation.Tuple
	cur    relation.Tuple
	ipos   int
	done   bool
}

// NewNestedLoopsJoin constructs the join; Pred may be nil (cross product).
func NewNestedLoopsJoin(left, right Operator, pred expr.Expr) *NestedLoopsJoin {
	return &NestedLoopsJoin{
		Left: left, Right: right, Pred: pred,
		schema: left.Schema().Concat(right.Schema()),
	}
}

// Schema implements Operator.
func (j *NestedLoopsJoin) Schema() *relation.Schema { return j.schema }

// Open implements Operator: materializes the inner input.
func (j *NestedLoopsJoin) Open() error { return j.OpenCtx(context.Background()) }

// OpenCtx implements OperatorCtx; the inner materialization polls the context.
func (j *NestedLoopsJoin) OpenCtx(ctx context.Context) error {
	if err := OpenOp(ctx, j.Left); err != nil {
		return err
	}
	inner, err := CollectCtx(ctx, j.Right)
	if err != nil {
		closeQuietly(j.Left)
		return err
	}
	j.inner = inner
	ev, err := bindPred(j.Pred, j.schema)
	if err != nil {
		closeQuietly(j.Left)
		return err
	}
	j.ev = ev
	j.cur = nil
	j.ipos = 0
	j.done = false
	return nil
}

// Next implements Operator.
func (j *NestedLoopsJoin) Next() (relation.Tuple, bool, error) {
	for {
		if j.done {
			return nil, false, nil
		}
		if j.cur == nil {
			t, ok, err := j.Left.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				j.done = true
				return nil, false, nil
			}
			j.cur = t
			j.ipos = 0
		}
		for j.ipos < len(j.inner) {
			out := j.cur.Concat(j.inner[j.ipos])
			j.ipos++
			pass, err := expr.EvalBool(j.ev, out)
			if err != nil {
				return nil, false, err
			}
			if pass {
				return out, true, nil
			}
		}
		j.cur = nil
	}
}

// Close implements Operator.
func (j *NestedLoopsJoin) Close() error {
	j.inner = nil
	return j.Left.Close()
}

// IndexNLJoin joins by probing a B+tree index on the inner relation per
// outer tuple. It preserves the outer order and is fully pipelined.
type IndexNLJoin struct {
	Left     Operator
	InnerRel *relation.Relation
	InnerIdx *catalog.Index
	// OuterKey evaluates the join key from an outer tuple.
	OuterKey expr.Expr
	// Residual is an optional extra predicate over the joined tuple.
	Residual expr.Expr

	schema  *relation.Schema
	keyEv   expr.Eval
	resEv   expr.Eval
	cur     relation.Tuple
	matches []int
	mpos    int
	done    bool
	// Probes counts index lookups, for cost validation.
	Probes int
}

// NewIndexNLJoin constructs the join.
func NewIndexNLJoin(left Operator, innerRel *relation.Relation, innerIdx *catalog.Index, outerKey, residual expr.Expr) *IndexNLJoin {
	return &IndexNLJoin{
		Left: left, InnerRel: innerRel, InnerIdx: innerIdx,
		OuterKey: outerKey, Residual: residual,
		schema: left.Schema().Concat(innerRel.Schema()),
	}
}

// Schema implements Operator.
func (j *IndexNLJoin) Schema() *relation.Schema { return j.schema }

// Open implements Operator.
func (j *IndexNLJoin) Open() error { return j.OpenCtx(context.Background()) }

// OpenCtx implements OperatorCtx, forwarding the context to the outer input.
func (j *IndexNLJoin) OpenCtx(ctx context.Context) error {
	if j.InnerIdx == nil || j.InnerIdx.Tree == nil {
		return fmt.Errorf("exec: index nested-loops join without inner index")
	}
	if err := OpenOp(ctx, j.Left); err != nil {
		return err
	}
	keyEv, err := j.OuterKey.Bind(j.Left.Schema())
	if err != nil {
		closeQuietly(j.Left)
		return err
	}
	resEv, err := bindPred(j.Residual, j.schema)
	if err != nil {
		closeQuietly(j.Left)
		return err
	}
	j.keyEv, j.resEv = keyEv, resEv
	j.cur = nil
	j.done = false
	j.Probes = 0
	return nil
}

// Next implements Operator.
func (j *IndexNLJoin) Next() (relation.Tuple, bool, error) {
	for {
		if j.done {
			return nil, false, nil
		}
		if j.cur == nil {
			t, ok, err := j.Left.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				j.done = true
				return nil, false, nil
			}
			key, err := j.keyEv(t)
			if err != nil {
				return nil, false, err
			}
			j.cur = t
			j.mpos = 0
			j.Probes++
			if key.IsNull() {
				j.matches = nil
			} else {
				j.matches = j.InnerIdx.Tree.Lookup(key)
			}
		}
		for j.mpos < len(j.matches) {
			rid := j.matches[j.mpos]
			j.mpos++
			out := j.cur.Concat(j.InnerRel.Tuple(rid))
			pass, err := expr.EvalBool(j.resEv, out)
			if err != nil {
				return nil, false, err
			}
			if pass {
				return out, true, nil
			}
		}
		j.cur = nil
	}
}

// Close implements Operator.
func (j *IndexNLJoin) Close() error { return j.Left.Close() }

// HashJoin builds a hash table on the left input and streams the right
// input through it. It preserves the right (probe) input's order.
type HashJoin struct {
	Left, Right Operator
	// LeftKey and RightKey are the equi-join key expressions on each side.
	LeftKey, RightKey expr.Expr
	// Residual is an optional extra predicate over the joined tuple.
	Residual expr.Expr
	// Budget, when set, is charged for every tuple held in the build table.
	Budget *Budget
	// BuildSizeHint, when positive, presizes the build table (the compiler
	// sets it from the left input's cardinality estimate) so the build avoids
	// incremental map growth.
	BuildSizeHint int
	// PerTupleBuild selects the scalar reference build: the left input is
	// drained one Next at a time (polling per tuple), keys are evaluated
	// through the bound expression, and the table is the interface-keyed
	// generic map — the executor exactly as it was before vectorization.
	// The differential oracle and the batch benchmarks run this side against
	// the vectorized build/probe, which doubles as an independent
	// implementation check on the open-addressing numeric table.
	PerTupleBuild bool

	schema *relation.Schema
	// numTable is the common-case build table: join keys in this engine hash
	// through Value.HashKey, which normalizes every numeric to float64, so an
	// open-addressing table keyed by float64 directly gives identical match
	// groups without boxing each key into an interface — and probes cheaply
	// enough to inline into the vectorized probe loop. table is nil until the
	// build sees a non-numeric key, at which point numTable migrates into it.
	numTable *floatTable
	table    map[any][]relation.Tuple
	rKeyEv   expr.Eval
	rKeyIdx  int
	rKeyFast bool
	resEv    expr.Eval
	cur      relation.Tuple
	matches  []relation.Tuple
	mpos     int
	done     bool
	acct     accountant
	cancel   canceller
	src      batchSource
	in       *Batch
	arena    tupleArena
	// kbuf holds one probe batch's normalized key bits (the vectorized
	// probe's key-extraction pass).
	kbuf []uint64
	// MaxTable records the build-table tuple count for buffer accounting.
	MaxTable int
}

// NewHashJoin constructs the join.
func NewHashJoin(left, right Operator, leftKey, rightKey, residual expr.Expr) *HashJoin {
	return &HashJoin{
		Left: left, Right: right, LeftKey: leftKey, RightKey: rightKey, Residual: residual,
		schema: left.Schema().Concat(right.Schema()),
	}
}

// Schema implements Operator.
func (j *HashJoin) Schema() *relation.Schema { return j.schema }

// Open implements Operator: drains the left input into the hash table.
func (j *HashJoin) Open() error { return j.OpenCtx(context.Background()) }

// OpenCtx implements OperatorCtx: the blocking build polls the context and
// charges the budget per buffered build tuple.
func (j *HashJoin) OpenCtx(ctx context.Context) error {
	if err := OpenOp(ctx, j.Left); err != nil {
		return err
	}
	if err := j.build(ctx); err != nil {
		closeQuietly(j.Left)
		return err
	}
	if err := j.Left.Close(); err != nil {
		return err
	}
	if err := OpenOp(ctx, j.Right); err != nil {
		return err
	}
	rKeyEv, err := j.RightKey.Bind(j.Right.Schema())
	if err != nil {
		closeQuietly(j.Right)
		return err
	}
	resEv, err := bindPred(j.Residual, j.schema)
	if err != nil {
		closeQuietly(j.Right)
		return err
	}
	j.rKeyEv, j.resEv = rKeyEv, resEv
	j.rKeyIdx, j.rKeyFast = expr.ColIndex(j.RightKey, j.Right.Schema())
	j.cur = nil
	j.done = false
	j.cancel.reset(ctx)
	j.src.reset(ctx, j.Right)
	return nil
}

// build drains the opened left input into the hash table, batch-at-a-time:
// one context check per batch, key extraction by direct column load when the
// key is a bare column, and a presized float64-keyed table on the numeric
// common case.
func (j *HashJoin) build(ctx context.Context) error {
	j.acct.releaseAll()
	j.acct.budget = j.Budget
	lKeyEv, err := j.LeftKey.Bind(j.Left.Schema())
	if err != nil {
		return err
	}
	if j.PerTupleBuild {
		return j.buildPerTuple(ctx, lKeyEv)
	}
	lKeyIdx, lKeyFast := expr.ColIndex(j.LeftKey, j.Left.Schema())
	hint := j.BuildSizeHint
	if hint < 0 {
		hint = 0
	}
	j.numTable = newFloatTable(hint)
	j.table = nil
	n := 0
	var src batchSource
	src.reset(ctx, j.Left)
	b := NewBatch(DefaultBatchSize)
	for {
		if err := CtxErr(ctx); err != nil {
			return err
		}
		ok, err := src.next(b, DefaultBatchSize)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		for _, t := range b.Tuples() {
			var k relation.Value
			if lKeyFast && lKeyIdx < len(t) {
				k = t[lKeyIdx]
			} else {
				k, err = lKeyEv(t)
				if err != nil {
					return err
				}
			}
			if k.IsNull() {
				continue
			}
			if err := j.acct.charge(1); err != nil {
				return err
			}
			j.insert(k, t)
			n++
		}
	}
	j.MaxTable = n
	return nil
}

// buildPerTuple is the scalar reference build (PerTupleBuild): one Next per
// left tuple with a cancellation poll each pull, closure key evaluation, and
// interface-keyed insertion — no direct column loads, no numeric fast table.
func (j *HashJoin) buildPerTuple(ctx context.Context, lKeyEv expr.Eval) error {
	j.numTable = nil
	j.table = map[any][]relation.Tuple{}
	n := 0
	var c canceller
	c.reset(ctx)
	for {
		if err := c.poll(); err != nil {
			return err
		}
		t, ok, err := j.Left.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		k, err := lKeyEv(t)
		if err != nil {
			return err
		}
		if k.IsNull() {
			continue
		}
		if err := j.acct.charge(1); err != nil {
			return err
		}
		hk := k.HashKey()
		j.table[hk] = append(j.table[hk], t)
		n++
	}
	j.MaxTable = n
	return nil
}

// insert files one build tuple under its key, migrating the numeric fast
// table into the generic one the first time a non-numeric key appears. The
// migration keys the copied groups by their float64 directly — exactly the
// value HashKey produces for numerics — so lookups stay consistent.
func (j *HashJoin) insert(k relation.Value, t relation.Tuple) {
	if j.table == nil {
		if k.Numeric() {
			j.numTable.add(k.AsFloat(), t)
			return
		}
		j.table = make(map[any][]relation.Tuple, j.numTable.n+1)
		j.numTable.each(func(f float64, ts []relation.Tuple) {
			j.table[f] = ts
		})
		j.numTable = nil
	}
	hk := k.HashKey()
	j.table[hk] = append(j.table[hk], t)
}

// lookup returns the build tuples matching probe key k (nil for NULL — SQL
// equi-joins never match on NULL).
func (j *HashJoin) lookup(k relation.Value) []relation.Tuple {
	if k.IsNull() {
		return nil
	}
	if j.table != nil {
		return j.table[k.HashKey()]
	}
	f, ok := k.Float64()
	if !ok {
		return nil
	}
	return j.numTable.get(f)
}

// Next implements Operator.
func (j *HashJoin) Next() (relation.Tuple, bool, error) {
	for {
		if j.done {
			return nil, false, nil
		}
		if j.cur == nil {
			t, ok, err := j.Right.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				j.done = true
				return nil, false, nil
			}
			k, err := j.rKeyEv(t)
			if err != nil {
				return nil, false, err
			}
			j.cur = t
			j.mpos = 0
			j.matches = j.lookup(k)
		}
		for j.mpos < len(j.matches) {
			out := j.matches[j.mpos].Concat(j.cur)
			j.mpos++
			pass, err := expr.EvalBool(j.resEv, out)
			if err != nil {
				return nil, false, err
			}
			if pass {
				return out, true, nil
			}
		}
		j.cur = nil
	}
}

// NextBatch implements BatchOperator: whole probe batches flow through the
// table per round, with the probe key loaded directly when it is a bare
// column and the residual evaluation skipped entirely when no residual
// exists. Output tuples are carved from the arena. A probe tuple's fan-out
// may push out past max for one round — the Batch grows, and consumers that
// must not overreceive (Limit) truncate.
func (j *HashJoin) NextBatch(out *Batch, max int) (bool, error) {
	out.Reset()
	if j.in == nil {
		j.in = NewBatch(DefaultBatchSize)
	}
	for {
		if j.done {
			return false, nil
		}
		if err := j.cancel.check(); err != nil {
			return false, err
		}
		ok, err := j.src.next(j.in, max)
		if err != nil {
			return false, err
		}
		if !ok {
			j.done = true
			return false, nil
		}
		if j.rKeyFast && j.Residual == nil && j.numTable != nil {
			// The hot shape: bare-column numeric key, no residual, numeric
			// build table — probed column-at-a-time in two passes. Pass one
			// extracts and normalizes every key's bit pattern into kbuf,
			// applying the build side's min-max join filter: keys outside
			// the reachable range — with NULL, non-numeric, and NaN keys,
			// which match nothing either — mark their slot emptyKeyBits, and
			// pass two skips their hash and table walk entirely. On
			// selective joins the filter prunes most probes down to two
			// float compares. Splitting the passes also breaks the per-tuple
			// dependence chain (Value load → hash → table load), so
			// consecutive table probes overlap in the pipeline instead of
			// serializing on each other's cache misses.
			nt := j.numTable
			keys := nt.keys
			if len(keys) == 0 {
				return false, fmt.Errorf("exec: hash join probe against uninitialized build table")
			}
			shift := nt.shift
			// Indexing through len(keys)-1 (a power of two) lets the compiler
			// drop the bounds checks inside the walk.
			mask := uint64(len(keys)) - 1
			ki := j.rKeyIdx
			in := j.in.Tuples()
			if cap(j.kbuf) < len(in) {
				j.kbuf = make([]uint64, len(in))
			}
			kbuf := j.kbuf[:len(in)]
			lo, hi := nt.lo, nt.hi
			for x := range in {
				t := in[x]
				if ki >= len(t) {
					return false, fmt.Errorf("exec: hash join probe tuple too short (arity %d)", len(t))
				}
				fb := uint64(emptyKeyBits)
				// The range test is negated so NaN (false both ways) prunes.
				if f, ok := t[ki].Float64(); ok && f >= lo && f <= hi {
					if f != 0 {
						fb = math.Float64bits(f)
					} else {
						fb = 0
					}
				}
				kbuf[x] = fb
			}
			for x, fb := range kbuf {
				if fb == emptyKeyBits {
					continue
				}
				i := (hashBits(fb) >> shift) & mask
				for {
					kb := keys[i&mask]
					if kb == fb {
						t := in[x]
						for _, m := range nt.groups[i&mask] {
							out.Append(j.arena.concat(m, t))
						}
						break
					}
					if kb == emptyKeyBits {
						break
					}
					i = (i + 1) & mask
				}
			}
		} else {
			for _, t := range j.in.Tuples() {
				var k relation.Value
				if j.rKeyFast && j.rKeyIdx < len(t) {
					k = t[j.rKeyIdx]
				} else {
					k, err = j.rKeyEv(t)
					if err != nil {
						return false, err
					}
				}
				if j.Residual == nil {
					for _, m := range j.lookup(k) {
						out.Append(j.arena.concat(m, t))
					}
					continue
				}
				for _, m := range j.lookup(k) {
					joined := j.arena.concat(m, t)
					pass, err := expr.EvalBool(j.resEv, joined)
					if err != nil {
						return false, err
					}
					if pass {
						out.Append(joined)
					}
				}
			}
		}
		if out.Len() > 0 {
			return true, nil
		}
	}
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.table = nil
	j.numTable = nil
	j.acct.releaseAll()
	return j.Right.Close()
}

// SortMergeJoin merges two inputs sorted ascending on their join keys.
// Inputs MUST already be ordered; the optimizer inserts Sort enforcers when
// they are not.
type SortMergeJoin struct {
	Left, Right       Operator
	LeftKey, RightKey expr.Expr
	Residual          expr.Expr

	schema *relation.Schema
	lKeyEv expr.Eval
	rKeyEv expr.Eval
	resEv  expr.Eval

	lTup, rTup relation.Tuple
	lKey, rKey relation.Value
	lDone      bool
	rDone      bool
	group      []relation.Tuple // right tuples sharing the current key
	gpos       int
	emitting   bool
}

// NewSortMergeJoin constructs the join.
func NewSortMergeJoin(left, right Operator, leftKey, rightKey, residual expr.Expr) *SortMergeJoin {
	return &SortMergeJoin{
		Left: left, Right: right, LeftKey: leftKey, RightKey: rightKey, Residual: residual,
		schema: left.Schema().Concat(right.Schema()),
	}
}

// Schema implements Operator.
func (j *SortMergeJoin) Schema() *relation.Schema { return j.schema }

// Open implements Operator.
func (j *SortMergeJoin) Open() error { return j.OpenCtx(context.Background()) }

// OpenCtx implements OperatorCtx, forwarding the context to both inputs.
func (j *SortMergeJoin) OpenCtx(ctx context.Context) error {
	if err := OpenOp(ctx, j.Left); err != nil {
		return err
	}
	if err := OpenOp(ctx, j.Right); err != nil {
		closeQuietly(j.Left)
		return err
	}
	if err := j.prime(); err != nil {
		closeQuietly(j.Left, j.Right)
		return err
	}
	return nil
}

// prime binds evaluators and fetches the first tuple from each side.
func (j *SortMergeJoin) prime() error {
	var err error
	if j.lKeyEv, err = j.LeftKey.Bind(j.Left.Schema()); err != nil {
		return err
	}
	if j.rKeyEv, err = j.RightKey.Bind(j.Right.Schema()); err != nil {
		return err
	}
	if j.resEv, err = bindPred(j.Residual, j.schema); err != nil {
		return err
	}
	j.lTup, j.rTup = nil, nil
	j.lDone, j.rDone = false, false
	j.group = nil
	j.emitting = false
	if err := j.advanceLeft(); err != nil {
		return err
	}
	return j.advanceRight()
}

func (j *SortMergeJoin) advanceLeft() error {
	t, ok, err := j.Left.Next()
	if err != nil {
		return err
	}
	if !ok {
		j.lDone = true
		j.lTup = nil
		return nil
	}
	k, err := j.lKeyEv(t)
	if err != nil {
		return err
	}
	j.lTup, j.lKey = t, k
	return nil
}

func (j *SortMergeJoin) advanceRight() error {
	t, ok, err := j.Right.Next()
	if err != nil {
		return err
	}
	if !ok {
		j.rDone = true
		j.rTup = nil
		return nil
	}
	k, err := j.rKeyEv(t)
	if err != nil {
		return err
	}
	j.rTup, j.rKey = t, k
	return nil
}

// Next implements Operator.
func (j *SortMergeJoin) Next() (relation.Tuple, bool, error) {
	for {
		// Emit pending (left, group) combinations.
		if j.emitting {
			for j.gpos < len(j.group) {
				out := j.lTup.Concat(j.group[j.gpos])
				j.gpos++
				pass, err := expr.EvalBool(j.resEv, out)
				if err != nil {
					return nil, false, err
				}
				if pass {
					return out, true, nil
				}
			}
			// Move to next left tuple; if it shares the key, re-emit group.
			prev := j.lKey
			if err := j.advanceLeft(); err != nil {
				return nil, false, err
			}
			if !j.lDone && j.lKey.Equal(prev) {
				j.gpos = 0
				continue
			}
			j.emitting = false
			j.group = nil
		}
		if j.lDone || j.rDone {
			return nil, false, nil
		}
		cmp := j.lKey.Compare(j.rKey)
		switch {
		case cmp < 0:
			if err := j.advanceLeft(); err != nil {
				return nil, false, err
			}
		case cmp > 0:
			if err := j.advanceRight(); err != nil {
				return nil, false, err
			}
		default:
			// Gather the right group for this key.
			key := j.rKey
			j.group = j.group[:0]
			for !j.rDone && j.rKey.Equal(key) {
				j.group = append(j.group, j.rTup)
				if err := j.advanceRight(); err != nil {
					return nil, false, err
				}
			}
			j.gpos = 0
			j.emitting = true
		}
	}
}

// Close implements Operator.
func (j *SortMergeJoin) Close() error {
	err1 := j.Left.Close()
	err2 := j.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// SymmetricHashJoin pulls from both inputs alternately, maintaining a hash
// table per side, and emits matches as soon as both partners have arrived.
// It is fully pipelined on both inputs but gives no order guarantee; HRJN is
// its rank-aware extension.
type SymmetricHashJoin struct {
	Left, Right       Operator
	LeftKey, RightKey expr.Expr
	Residual          expr.Expr
	// Budget, when set, is charged for every tuple buffered in either table.
	Budget *Budget

	schema *relation.Schema
	lKeyEv expr.Eval
	rKeyEv expr.Eval
	resEv  expr.Eval

	lTable, rTable map[any][]relation.Tuple
	lDone, rDone   bool
	pullLeft       bool
	pending        []relation.Tuple
	cancel         canceller
	acct           accountant
}

// NewSymmetricHashJoin constructs the join.
func NewSymmetricHashJoin(left, right Operator, leftKey, rightKey, residual expr.Expr) *SymmetricHashJoin {
	return &SymmetricHashJoin{
		Left: left, Right: right, LeftKey: leftKey, RightKey: rightKey, Residual: residual,
		schema: left.Schema().Concat(right.Schema()),
	}
}

// Schema implements Operator.
func (j *SymmetricHashJoin) Schema() *relation.Schema { return j.schema }

// Open implements Operator.
func (j *SymmetricHashJoin) Open() error { return j.OpenCtx(context.Background()) }

// OpenCtx implements OperatorCtx, forwarding the context to both inputs and
// polling it in Next's pull loop.
func (j *SymmetricHashJoin) OpenCtx(ctx context.Context) error {
	j.cancel.reset(ctx)
	j.acct.releaseAll()
	j.acct.budget = j.Budget
	if err := OpenOp(ctx, j.Left); err != nil {
		return err
	}
	if err := OpenOp(ctx, j.Right); err != nil {
		closeQuietly(j.Left)
		return err
	}
	if err := j.bind(); err != nil {
		closeQuietly(j.Left, j.Right)
		return err
	}
	j.lTable = map[any][]relation.Tuple{}
	j.rTable = map[any][]relation.Tuple{}
	j.lDone, j.rDone = false, false
	j.pullLeft = true
	j.pending = nil
	return nil
}

// bind resolves the key and residual evaluators.
func (j *SymmetricHashJoin) bind() error {
	var err error
	if j.lKeyEv, err = j.LeftKey.Bind(j.Left.Schema()); err != nil {
		return err
	}
	if j.rKeyEv, err = j.RightKey.Bind(j.Right.Schema()); err != nil {
		return err
	}
	j.resEv, err = bindPred(j.Residual, j.schema)
	return err
}

// step pulls one tuple from the chosen side and queues any new matches.
func (j *SymmetricHashJoin) step(left bool) error {
	var (
		in       Operator
		keyEv    expr.Eval
		own      map[any][]relation.Tuple
		other    map[any][]relation.Tuple
		doneFlag *bool
	)
	if left {
		in, keyEv, own, other, doneFlag = j.Left, j.lKeyEv, j.lTable, j.rTable, &j.lDone
	} else {
		in, keyEv, own, other, doneFlag = j.Right, j.rKeyEv, j.rTable, j.lTable, &j.rDone
	}
	t, ok, err := in.Next()
	if err != nil {
		return err
	}
	if !ok {
		*doneFlag = true
		return nil
	}
	k, err := keyEv(t)
	if err != nil {
		return err
	}
	if k.IsNull() {
		return nil
	}
	hk := k.HashKey()
	if err := j.acct.charge(1); err != nil {
		return err
	}
	own[hk] = append(own[hk], t)
	for _, m := range other[hk] {
		var out relation.Tuple
		if left {
			out = t.Concat(m)
		} else {
			out = m.Concat(t)
		}
		pass, err := expr.EvalBool(j.resEv, out)
		if err != nil {
			return err
		}
		if pass {
			j.pending = append(j.pending, out)
		}
	}
	return nil
}

// Next implements Operator.
func (j *SymmetricHashJoin) Next() (relation.Tuple, bool, error) {
	for {
		if err := j.cancel.poll(); err != nil {
			return nil, false, err
		}
		if len(j.pending) > 0 {
			t := j.pending[0]
			j.pending = j.pending[1:]
			return t, true, nil
		}
		if j.lDone && j.rDone {
			return nil, false, nil
		}
		// Alternate, falling back to whichever side remains.
		side := j.pullLeft
		if j.lDone {
			side = false
		} else if j.rDone {
			side = true
		}
		j.pullLeft = !j.pullLeft
		if err := j.step(side); err != nil {
			return nil, false, err
		}
	}
}

// Close implements Operator.
func (j *SymmetricHashJoin) Close() error {
	j.lTable, j.rTable = nil, nil
	j.acct.releaseAll()
	err1 := j.Left.Close()
	err2 := j.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

package exec

import (
	"math"
	"strings"
	"testing"

	"rankopt/internal/expr"
)

// sizeHint must treat NaN as "unknown" rather than passing it through both
// range guards into a platform-undefined int(NaN) conversion.
func TestSizeHintNonFinite(t *testing.T) {
	cases := []struct {
		est  float64
		want int
	}{
		{math.NaN(), 0},
		{math.Inf(-1), 0},
		{math.Inf(1), 1 << 16},
		{-5, 0},
		{0, 0},
		{100, 100},
		{1 << 20, 1 << 16},
	}
	for _, c := range cases {
		if got := sizeHint(c.est); got != c.want {
			t.Errorf("sizeHint(%v) = %d, want %d", c.est, got, c.want)
		}
	}
}

// inf is shorthand for the tests below.
var inf = math.Inf(1)

// Opposite infinities across the two inputs used to make the HRJN threshold
// NaN (topL + lastR = +Inf + -Inf), which compares false against every
// queued score and silently disables early termination: the first result
// only surfaced after both inputs drained completely. With the boundary
// clamp the threshold stays finite and the top result is released after one
// tuple per side.
func TestHRJNOppositeInfinitiesStillTerminateEarly(t *testing.T) {
	lsch, ltups := scoredKeyed("L", []float64{inf, 10, 9, 8, 7, 6}, []int64{1, 1, 1, 1, 1, 1})
	rsch, rtups := scoredKeyed("R", []float64{-inf, -inf, -inf, -inf, -inf, -inf}, []int64{1, 1, 1, 1, 1, 1})
	j := NewHRJN(FromTuples(lsch, ltups), FromTuples(rsch, rtups),
		expr.Col("L", "score"), expr.Col("R", "score"),
		expr.Col("L", "key"), expr.Col("R", "key"), nil)
	out, err := CollectK(j, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("emitted %d tuples, want 1", len(out))
	}
	st := j.Stats()
	if st.LeftDepth != 1 || st.RightDepth != 1 {
		t.Errorf("depths = (%d,%d), want (1,1): NaN threshold disabled early termination",
			st.LeftDepth, st.RightDepth)
	}
}

// Same scenario through NRJN: a +Inf outer top against a -Inf-only inner
// made threshold = lastL + innerMax = NaN, deferring every emission until
// the outer drained.
func TestNRJNOppositeInfinitiesStillTerminateEarly(t *testing.T) {
	lsch, ltups := scoredKeyed("L", []float64{inf, 10, 9, 8}, []int64{1, 1, 1, 1})
	rsch, rtups := scoredKeyed("R", []float64{-inf, -inf}, []int64{1, 1})
	j := NewNRJN(FromTuples(lsch, ltups), FromTuples(rsch, rtups),
		expr.Col("L", "score"), expr.Col("R", "score"),
		expr.Bin(expr.OpEq, expr.Col("L", "key"), expr.Col("R", "key")))
	out, err := CollectK(j, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("emitted %d tuples, want 1", len(out))
	}
	if st := j.Stats(); st.LeftDepth != 1 {
		t.Errorf("outer depth = %d, want 1: NaN threshold disabled early termination", st.LeftDepth)
	}
}

// And through MultiHRJN, whose global threshold sums tops across all inputs.
func TestMultiHRJNOppositeInfinitiesStillTerminateEarly(t *testing.T) {
	asch, atups := scoredKeyed("A", []float64{inf, 10, 9}, []int64{1, 1, 1})
	bsch, btups := scoredKeyed("B", []float64{-inf, -inf, -inf}, []int64{1, 1, 1})
	j, err := NewMultiHRJN(
		[]Operator{FromTuples(asch, atups), FromTuples(bsch, btups)},
		[]expr.Expr{expr.Col("A", "score"), expr.Col("B", "score")},
		[]expr.Expr{expr.Col("A", "key"), expr.Col("B", "key")})
	if err != nil {
		t.Fatal(err)
	}
	out, err := CollectK(j, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("emitted %d tuples, want 1", len(out))
	}
	d := j.Depths()
	if d[0] != 1 || d[1] != 1 {
		t.Errorf("depths = %v, want [1 1]: NaN threshold disabled early termination", d)
	}
}

// A NaN score has no position in a ranking; the rank joins must fail loudly
// instead of feeding it into the threshold and heap arithmetic.
func TestRankJoinsRejectNaNScores(t *testing.T) {
	nan := math.NaN()
	lsch, ltups := scoredKeyed("L", []float64{nan, 1}, []int64{1, 1})
	rsch, rtups := scoredKeyed("R", []float64{2, 1}, []int64{1, 1})

	h := NewHRJN(FromTuples(lsch, ltups), FromTuples(rsch, rtups),
		expr.Col("L", "score"), expr.Col("R", "score"),
		expr.Col("L", "key"), expr.Col("R", "key"), nil)
	if _, err := Collect(h); err == nil || !strings.Contains(err.Error(), "NaN score") {
		t.Errorf("HRJN error = %v, want NaN score rejection", err)
	}

	n := NewNRJN(FromTuples(lsch, ltups), FromTuples(rsch, rtups),
		expr.Col("L", "score"), expr.Col("R", "score"),
		expr.Bin(expr.OpEq, expr.Col("L", "key"), expr.Col("R", "key")))
	if _, err := Collect(n); err == nil || !strings.Contains(err.Error(), "NaN score") {
		t.Errorf("NRJN error = %v, want NaN score rejection", err)
	}

	m, err := NewMultiHRJN(
		[]Operator{FromTuples(lsch, ltups), FromTuples(rsch, rtups)},
		[]expr.Expr{expr.Col("L", "score"), expr.Col("R", "score")},
		[]expr.Expr{expr.Col("L", "key"), expr.Col("R", "key")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(m); err == nil || !strings.Contains(err.Error(), "NaN score") {
		t.Errorf("MultiHRJN error = %v, want NaN score rejection", err)
	}
}

package exec

import (
	"fmt"

	"rankopt/internal/catalog"
	"rankopt/internal/relation"
)

// SeqScan reads a relation in heap order.
type SeqScan struct {
	Rel *relation.Relation
	pos int
}

// NewSeqScan constructs a sequential scan over rel.
func NewSeqScan(rel *relation.Relation) *SeqScan { return &SeqScan{Rel: rel} }

// Schema implements Operator.
func (s *SeqScan) Schema() *relation.Schema { return s.Rel.Schema() }

// Open implements Operator.
func (s *SeqScan) Open() error { s.pos = 0; return nil }

// Next implements Operator.
func (s *SeqScan) Next() (relation.Tuple, bool, error) {
	if s.pos >= s.Rel.Cardinality() {
		return nil, false, nil
	}
	t := s.Rel.Tuple(s.pos)
	s.pos++
	return t, true, nil
}

// Close implements Operator.
func (s *SeqScan) Close() error { return nil }

// IndexScan reads a relation through a B+tree index in key order.
// Descending scans deliver the sorted access rank-joins require (highest
// score first).
type IndexScan struct {
	Rel  *relation.Relation
	Idx  *catalog.Index
	Desc bool

	it interface {
		Next() (relation.Value, int, bool)
	}
}

// NewIndexScan constructs an index-ordered scan.
func NewIndexScan(rel *relation.Relation, idx *catalog.Index, desc bool) *IndexScan {
	return &IndexScan{Rel: rel, Idx: idx, Desc: desc}
}

// Schema implements Operator.
func (s *IndexScan) Schema() *relation.Schema { return s.Rel.Schema() }

// Open implements Operator.
func (s *IndexScan) Open() error {
	if s.Idx == nil || s.Idx.Tree == nil {
		return fmt.Errorf("exec: index scan without index on %s", s.Rel.Name)
	}
	if s.Desc {
		s.it = s.Idx.Tree.Descend()
	} else {
		s.it = s.Idx.Tree.Ascend()
	}
	return nil
}

// Next implements Operator.
func (s *IndexScan) Next() (relation.Tuple, bool, error) {
	_, rid, ok := s.it.Next()
	if !ok {
		return nil, false, nil
	}
	if rid < 0 || rid >= s.Rel.Cardinality() {
		return nil, false, fmt.Errorf("exec: index %s holds rid %d beyond relation %s", s.Idx.Name, rid, s.Rel.Name)
	}
	return s.Rel.Tuple(rid), true, nil
}

// Close implements Operator.
func (s *IndexScan) Close() error { s.it = nil; return nil }

package exec

import (
	"fmt"

	"rankopt/internal/catalog"
	"rankopt/internal/relation"
)

// SeqScan reads a relation in heap order.
type SeqScan struct {
	Rel *relation.Relation
	pos int
}

// NewSeqScan constructs a sequential scan over rel.
func NewSeqScan(rel *relation.Relation) *SeqScan { return &SeqScan{Rel: rel} }

// Schema implements Operator.
func (s *SeqScan) Schema() *relation.Schema { return s.Rel.Schema() }

// Open implements Operator.
func (s *SeqScan) Open() error { s.pos = 0; return nil }

// Next implements Operator.
func (s *SeqScan) Next() (relation.Tuple, bool, error) {
	if s.pos >= s.Rel.Cardinality() {
		return nil, false, nil
	}
	t := s.Rel.Tuple(s.pos)
	s.pos++
	return t, true, nil
}

// NextBatch implements BatchOperator: the batch borrows a window of the
// relation's heap directly — no interface call per tuple, no header copies.
func (s *SeqScan) NextBatch(out *Batch, max int) (bool, error) {
	tuples := s.Rel.Tuples()
	if s.pos >= len(tuples) {
		out.Reset()
		return false, nil
	}
	end := s.pos + max
	if end > len(tuples) {
		end = len(tuples)
	}
	out.SetView(tuples[s.pos:end])
	s.pos = end
	return true, nil
}

// Close implements Operator.
func (s *SeqScan) Close() error { return nil }

// IndexScan reads a relation through a B+tree index in key order.
// Descending scans deliver the sorted access rank-joins require (highest
// score first).
type IndexScan struct {
	Rel  *relation.Relation
	Idx  *catalog.Index
	Desc bool

	it interface {
		Next() (relation.Value, int, bool)
	}
}

// NewIndexScan constructs an index-ordered scan.
func NewIndexScan(rel *relation.Relation, idx *catalog.Index, desc bool) *IndexScan {
	return &IndexScan{Rel: rel, Idx: idx, Desc: desc}
}

// Schema implements Operator.
func (s *IndexScan) Schema() *relation.Schema { return s.Rel.Schema() }

// Open implements Operator.
func (s *IndexScan) Open() error {
	if s.Idx == nil || s.Idx.Tree == nil {
		return fmt.Errorf("exec: index scan without index on %s", s.Rel.Name)
	}
	if s.Desc {
		s.it = s.Idx.Tree.Descend()
	} else {
		s.it = s.Idx.Tree.Ascend()
	}
	return nil
}

// Next implements Operator.
func (s *IndexScan) Next() (relation.Tuple, bool, error) {
	_, rid, ok := s.it.Next()
	if !ok {
		return nil, false, nil
	}
	if rid < 0 || rid >= s.Rel.Cardinality() {
		return nil, false, fmt.Errorf("exec: index %s holds rid %d beyond relation %s", s.Idx.Name, rid, s.Rel.Name)
	}
	return s.Rel.Tuple(rid), true, nil
}

// NextBatch implements BatchOperator: the tree iterator advances per rid but
// the interface-call and validity-check overhead is amortized per batch.
func (s *IndexScan) NextBatch(out *Batch, max int) (bool, error) {
	out.Reset()
	n := s.Rel.Cardinality()
	for out.Len() < max {
		_, rid, ok := s.it.Next()
		if !ok {
			break
		}
		if rid < 0 || rid >= n {
			return false, fmt.Errorf("exec: index %s holds rid %d beyond relation %s", s.Idx.Name, rid, s.Rel.Name)
		}
		out.Append(s.Rel.Tuple(rid))
	}
	return out.Len() > 0, nil
}

// Close implements Operator.
func (s *IndexScan) Close() error { s.it = nil; return nil }

package exec

import (
	"context"
	"fmt"

	"rankopt/internal/expr"
	"rankopt/internal/relation"
)

// Filter passes through tuples satisfying the predicate. NULL predicate
// results drop the tuple (SQL semantics).
type Filter struct {
	In   Operator
	Pred expr.Expr

	ev expr.Eval
}

// NewFilter constructs a filter.
func NewFilter(in Operator, pred expr.Expr) *Filter { return &Filter{In: in, Pred: pred} }

// Schema implements Operator.
func (f *Filter) Schema() *relation.Schema { return f.In.Schema() }

// Open implements Operator.
func (f *Filter) Open() error { return f.OpenCtx(context.Background()) }

// OpenCtx implements OperatorCtx, forwarding the context to the input.
func (f *Filter) OpenCtx(ctx context.Context) error {
	if err := OpenOp(ctx, f.In); err != nil {
		return err
	}
	ev, err := f.Pred.Bind(f.In.Schema())
	if err != nil {
		closeQuietly(f.In)
		return err
	}
	f.ev = ev
	return nil
}

// Next implements Operator.
func (f *Filter) Next() (relation.Tuple, bool, error) {
	for {
		t, ok, err := f.In.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		pass, err := expr.EvalBool(f.ev, t)
		if err != nil {
			return nil, false, err
		}
		if pass {
			return t, true, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.In.Close() }

// ProjectItem is one output column of a projection: an expression and the
// name it is exposed under.
type ProjectItem struct {
	E    expr.Expr
	As   string
	Kind relation.Kind
}

// Project computes derived columns. The output schema qualifies columns with
// an empty table name unless As contains a dot.
type Project struct {
	In    Operator
	Items []ProjectItem

	schema *relation.Schema
	evals  []expr.Eval
}

// NewProject constructs a projection.
func NewProject(in Operator, items ...ProjectItem) *Project {
	cols := make([]relation.Column, len(items))
	for i, it := range items {
		cols[i] = relation.Column{Name: it.As, Kind: it.Kind}
	}
	return &Project{In: in, Items: items, schema: relation.NewSchema(cols...)}
}

// Schema implements Operator.
func (p *Project) Schema() *relation.Schema { return p.schema }

// Open implements Operator.
func (p *Project) Open() error { return p.OpenCtx(context.Background()) }

// OpenCtx implements OperatorCtx, forwarding the context to the input.
func (p *Project) OpenCtx(ctx context.Context) error {
	if err := OpenOp(ctx, p.In); err != nil {
		return err
	}
	p.evals = make([]expr.Eval, len(p.Items))
	for i, it := range p.Items {
		ev, err := it.E.Bind(p.In.Schema())
		if err != nil {
			closeQuietly(p.In)
			return err
		}
		p.evals[i] = ev
	}
	return nil
}

// Next implements Operator.
func (p *Project) Next() (relation.Tuple, bool, error) {
	t, ok, err := p.In.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(relation.Tuple, len(p.evals))
	for i, ev := range p.evals {
		v, err := ev(t)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.In.Close() }

// Limit stops after K tuples — the top-k cut that makes rank plans early-out.
type Limit struct {
	In Operator
	K  int

	n int
}

// NewLimit constructs a limit.
func NewLimit(in Operator, k int) *Limit { return &Limit{In: in, K: k} }

// Schema implements Operator.
func (l *Limit) Schema() *relation.Schema { return l.In.Schema() }

// Open implements Operator.
func (l *Limit) Open() error { return l.OpenCtx(context.Background()) }

// OpenCtx implements OperatorCtx, forwarding the context to the input.
func (l *Limit) OpenCtx(ctx context.Context) error {
	if l.K < 0 {
		return fmt.Errorf("exec: negative limit %d", l.K)
	}
	l.n = 0
	return OpenOp(ctx, l.In)
}

// Next implements Operator.
func (l *Limit) Next() (relation.Tuple, bool, error) {
	if l.n >= l.K {
		return nil, false, nil
	}
	t, ok, err := l.In.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.n++
	return t, true, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.In.Close() }

// RankAssign appends two columns to each input tuple: the combined score
// under the given scoring expression and the 1-based rank position. It
// assumes its input already arrives in descending score order (either from a
// rank-join pipeline or from a sort enforcer), matching SQL's
// rank() OVER (ORDER BY ...) for distinct scores.
type RankAssign struct {
	In    Operator
	Score expr.Expr

	schema *relation.Schema
	ev     expr.Eval
	rank   int64
}

// NewRankAssign constructs the rank annotator.
func NewRankAssign(in Operator, score expr.Expr) *RankAssign {
	cols := append(in.Schema().Columns(),
		relation.Column{Name: "score", Kind: relation.KindFloat},
		relation.Column{Name: "rank", Kind: relation.KindInt},
	)
	return &RankAssign{In: in, Score: score, schema: relation.NewSchema(cols...)}
}

// Schema implements Operator.
func (r *RankAssign) Schema() *relation.Schema { return r.schema }

// Open implements Operator.
func (r *RankAssign) Open() error { return r.OpenCtx(context.Background()) }

// OpenCtx implements OperatorCtx, forwarding the context to the input.
func (r *RankAssign) OpenCtx(ctx context.Context) error {
	if err := OpenOp(ctx, r.In); err != nil {
		return err
	}
	ev, err := r.Score.Bind(r.In.Schema())
	if err != nil {
		closeQuietly(r.In)
		return err
	}
	r.ev = ev
	r.rank = 0
	return nil
}

// Next implements Operator.
func (r *RankAssign) Next() (relation.Tuple, bool, error) {
	t, ok, err := r.In.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	v, err := r.ev(t)
	if err != nil {
		return nil, false, err
	}
	r.rank++
	out := make(relation.Tuple, 0, len(t)+2)
	out = append(out, t...)
	out = append(out, v, relation.Int(r.rank))
	return out, true, nil
}

// Close implements Operator.
func (r *RankAssign) Close() error { return r.In.Close() }

package exec

import (
	"context"
	"fmt"

	"rankopt/internal/expr"
	"rankopt/internal/relation"
)

// Filter passes through tuples satisfying the predicate. NULL predicate
// results drop the tuple (SQL semantics).
type Filter struct {
	In   Operator
	Pred expr.Expr

	ev      expr.Eval
	fast    expr.CmpEval
	hasFast bool
	cancel  canceller
	src     batchSource
	in      *Batch
}

// NewFilter constructs a filter.
func NewFilter(in Operator, pred expr.Expr) *Filter { return &Filter{In: in, Pred: pred} }

// Schema implements Operator.
func (f *Filter) Schema() *relation.Schema { return f.In.Schema() }

// Open implements Operator.
func (f *Filter) Open() error { return f.OpenCtx(context.Background()) }

// OpenCtx implements OperatorCtx, forwarding the context to the input.
func (f *Filter) OpenCtx(ctx context.Context) error {
	if err := OpenOp(ctx, f.In); err != nil {
		return err
	}
	ev, err := f.Pred.Bind(f.In.Schema())
	if err != nil {
		closeQuietly(f.In)
		return err
	}
	f.ev = ev
	f.fast, f.hasFast = expr.CompileCmp(f.Pred, f.In.Schema())
	f.cancel.reset(ctx)
	f.src.reset(ctx, f.In)
	return nil
}

// Next implements Operator.
func (f *Filter) Next() (relation.Tuple, bool, error) {
	for {
		// A highly selective predicate can reject unboundedly many input
		// tuples between matches, so the reject loop itself must poll.
		if err := f.cancel.poll(); err != nil {
			return nil, false, err
		}
		t, ok, err := f.In.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		pass, err := expr.EvalBool(f.ev, t)
		if err != nil {
			return nil, false, err
		}
		if pass {
			return t, true, nil
		}
	}
}

// NextBatch implements BatchOperator: whole input batches are evaluated per
// round, through the de-boxed comparison fast path when the predicate
// compiled to one, and rejects cost a skipped slot instead of another
// interface call. Rounds continue until at least one tuple survives, with
// one unconditional context check per round.
func (f *Filter) NextBatch(out *Batch, max int) (bool, error) {
	out.Reset()
	if f.in == nil {
		f.in = NewBatch(DefaultBatchSize)
	}
	for {
		if err := f.cancel.check(); err != nil {
			return false, err
		}
		ok, err := f.src.next(f.in, max)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
		if f.hasFast {
			// Same-package access to the batch's backing slice lets the
			// expr kernel filter straight into it with no per-tuple calls.
			kept, err := f.fast.FilterAppend(out.tuples, f.in.Tuples())
			out.tuples = kept
			if err != nil {
				return false, err
			}
		} else {
			for _, t := range f.in.Tuples() {
				pass, err := expr.EvalBool(f.ev, t)
				if err != nil {
					return false, err
				}
				if pass {
					out.Append(t)
				}
			}
		}
		if out.Len() > 0 {
			return true, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.In.Close() }

// ProjectItem is one output column of a projection: an expression and the
// name it is exposed under.
type ProjectItem struct {
	E    expr.Expr
	As   string
	Kind relation.Kind
}

// Project computes derived columns. The output schema qualifies columns with
// an empty table name unless As contains a dot.
type Project struct {
	In    Operator
	Items []ProjectItem

	schema *relation.Schema
	evals  []expr.Eval
	// colIdx[i] is the input column index when item i is a bare column
	// reference (the overwhelmingly common projection), -1 otherwise.
	colIdx []int
	src    batchSource
	in     *Batch
	arena  tupleArena
}

// NewProject constructs a projection.
func NewProject(in Operator, items ...ProjectItem) *Project {
	cols := make([]relation.Column, len(items))
	for i, it := range items {
		cols[i] = relation.Column{Name: it.As, Kind: it.Kind}
	}
	return &Project{In: in, Items: items, schema: relation.NewSchema(cols...)}
}

// Schema implements Operator.
func (p *Project) Schema() *relation.Schema { return p.schema }

// Open implements Operator.
func (p *Project) Open() error { return p.OpenCtx(context.Background()) }

// OpenCtx implements OperatorCtx, forwarding the context to the input.
func (p *Project) OpenCtx(ctx context.Context) error {
	if err := OpenOp(ctx, p.In); err != nil {
		return err
	}
	p.evals = make([]expr.Eval, len(p.Items))
	p.colIdx = make([]int, len(p.Items))
	for i, it := range p.Items {
		ev, err := it.E.Bind(p.In.Schema())
		if err != nil {
			closeQuietly(p.In)
			return err
		}
		p.evals[i] = ev
		if idx, ok := expr.ColIndex(it.E, p.In.Schema()); ok {
			p.colIdx[i] = idx
		} else {
			p.colIdx[i] = -1
		}
	}
	p.src.reset(ctx, p.In)
	return nil
}

// Next implements Operator.
func (p *Project) Next() (relation.Tuple, bool, error) {
	t, ok, err := p.In.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(relation.Tuple, len(p.evals))
	for i, ev := range p.evals {
		v, err := ev(t)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}

// NextBatch implements BatchOperator. Output tuples are carved from the
// arena, so a batch of projections costs one allocation per chunk instead of
// one per tuple.
func (p *Project) NextBatch(out *Batch, max int) (bool, error) {
	out.Reset()
	if p.in == nil {
		p.in = NewBatch(DefaultBatchSize)
	}
	ok, err := p.src.next(p.in, max)
	if err != nil || !ok {
		return false, err
	}
	for _, t := range p.in.Tuples() {
		row := p.arena.alloc(len(p.evals))
		for i := range p.evals {
			if ci := p.colIdx[i]; ci >= 0 && ci < len(t) {
				row[i] = t[ci]
				continue
			}
			v, err := p.evals[i](t)
			if err != nil {
				return false, err
			}
			row[i] = v
		}
		out.Append(row)
	}
	return true, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.In.Close() }

// Limit stops after K tuples — the top-k cut that makes rank plans early-out.
type Limit struct {
	In Operator
	K  int

	n   int
	src batchSource
}

// NewLimit constructs a limit.
func NewLimit(in Operator, k int) *Limit { return &Limit{In: in, K: k} }

// Schema implements Operator.
func (l *Limit) Schema() *relation.Schema { return l.In.Schema() }

// Open implements Operator.
func (l *Limit) Open() error { return l.OpenCtx(context.Background()) }

// OpenCtx implements OperatorCtx, forwarding the context to the input.
func (l *Limit) OpenCtx(ctx context.Context) error {
	if l.K < 0 {
		return fmt.Errorf("exec: negative limit %d", l.K)
	}
	l.n = 0
	if err := OpenOp(ctx, l.In); err != nil {
		return err
	}
	l.src.reset(ctx, l.In)
	return nil
}

// Next implements Operator.
func (l *Limit) Next() (relation.Tuple, bool, error) {
	if l.n >= l.K {
		return nil, false, nil
	}
	t, ok, err := l.In.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.n++
	return t, true, nil
}

// NextBatch implements BatchOperator. Demand is clamped to the tuples still
// owed, so a batch pull through Limit never overpulls a lazy rank-join child
// past K — the early termination the cut exists for. Fan-out children may
// still overshoot the clamp for one round; Truncate discards the excess.
func (l *Limit) NextBatch(out *Batch, max int) (bool, error) {
	rem := l.K - l.n
	if rem <= 0 {
		out.Reset()
		return false, nil
	}
	if max > rem {
		max = rem
	}
	ok, err := l.src.next(out, max)
	if err != nil || !ok {
		return false, err
	}
	out.Truncate(rem)
	l.n += out.Len()
	return true, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.In.Close() }

// RankAssign appends two columns to each input tuple: the combined score
// under the given scoring expression and the 1-based rank position. It
// assumes its input already arrives in descending score order (either from a
// rank-join pipeline or from a sort enforcer), matching SQL's
// rank() OVER (ORDER BY ...) for distinct scores.
type RankAssign struct {
	In    Operator
	Score expr.Expr

	schema *relation.Schema
	ev     expr.Eval
	rank   int64
	src    batchSource
	in     *Batch
	arena  tupleArena
}

// NewRankAssign constructs the rank annotator.
func NewRankAssign(in Operator, score expr.Expr) *RankAssign {
	cols := append(in.Schema().Columns(),
		relation.Column{Name: "score", Kind: relation.KindFloat},
		relation.Column{Name: "rank", Kind: relation.KindInt},
	)
	return &RankAssign{In: in, Score: score, schema: relation.NewSchema(cols...)}
}

// Schema implements Operator.
func (r *RankAssign) Schema() *relation.Schema { return r.schema }

// Open implements Operator.
func (r *RankAssign) Open() error { return r.OpenCtx(context.Background()) }

// OpenCtx implements OperatorCtx, forwarding the context to the input.
func (r *RankAssign) OpenCtx(ctx context.Context) error {
	if err := OpenOp(ctx, r.In); err != nil {
		return err
	}
	ev, err := r.Score.Bind(r.In.Schema())
	if err != nil {
		closeQuietly(r.In)
		return err
	}
	r.ev = ev
	r.rank = 0
	r.src.reset(ctx, r.In)
	return nil
}

// Next implements Operator.
func (r *RankAssign) Next() (relation.Tuple, bool, error) {
	t, ok, err := r.In.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	v, err := r.ev(t)
	if err != nil {
		return nil, false, err
	}
	r.rank++
	out := make(relation.Tuple, 0, len(t)+2)
	out = append(out, t...)
	out = append(out, v, relation.Int(r.rank))
	return out, true, nil
}

// NextBatch implements BatchOperator, carving the widened output tuples from
// the arena.
func (r *RankAssign) NextBatch(out *Batch, max int) (bool, error) {
	out.Reset()
	if r.in == nil {
		r.in = NewBatch(DefaultBatchSize)
	}
	ok, err := r.src.next(r.in, max)
	if err != nil || !ok {
		return false, err
	}
	for _, t := range r.in.Tuples() {
		v, err := r.ev(t)
		if err != nil {
			return false, err
		}
		r.rank++
		row := r.arena.alloc(len(t) + 2)
		copy(row, t)
		row[len(t)] = v
		row[len(t)+1] = relation.Int(r.rank)
		out.Append(row)
	}
	return true, nil
}

// Close implements Operator.
func (r *RankAssign) Close() error { return r.In.Close() }

package exec

import (
	"context"
	"fmt"
	"math"

	"rankopt/internal/expr"
	"rankopt/internal/relation"
)

// scoreEps absorbs floating-point noise when comparing combined scores
// against the threshold.
const scoreEps = 1e-9

// finiteScore rejects NaN scores and clamps infinite ones to the finite
// float range at the rank-join input boundary. The threshold arithmetic adds
// terms from opposite inputs (e.g. topL+lastR): with topL=+Inf and
// lastR=-Inf the bound becomes NaN, every `pq[0].score >= threshold-eps`
// comparison turns false, and early termination is silently disabled — the
// join degrades to a full drain. Clamping ±Inf to ±MaxFloat64 preserves the
// score ordering (no finite score exceeds it) while keeping every
// threshold sum finite; a NaN score has no position in a ranking at all, so
// it fails loudly like a sort-contract violation.
func finiteScore(s float64, op, input string) (float64, error) {
	if math.IsNaN(s) {
		return 0, fmt.Errorf("exec: %s %s input produced NaN score", op, input)
	}
	if math.IsInf(s, 1) {
		return math.MaxFloat64, nil
	}
	if math.IsInf(s, -1) {
		return -math.MaxFloat64, nil
	}
	return s, nil
}

// PullStrategy selects which input an HRJN polls next.
type PullStrategy uint8

const (
	// Alternate strictly alternates between the two inputs.
	Alternate PullStrategy = iota
	// Adaptive pulls from the input under the dominating threshold term
	// (threshold = max(topL+lastR, lastL+topR)): only that pull can lower
	// the bound, which pays off when score distributions differ.
	Adaptive
)

// RankJoinStats captures the measured quantities the paper's Section 5
// experiments report: the depth reached into each input, the high-water mark
// of the output priority queue (the operator's ranking buffer), and the
// number of results emitted.
type RankJoinStats struct {
	LeftDepth  int
	RightDepth int
	MaxQueue   int
	Emitted    int
}

// StatsReporter is implemented by operators that measure their input depths
// and ranking-buffer usage (HRJN and NRJN); the experiment harness and the
// CLI use it to compare measurements with the optimizer's estimates.
type StatsReporter interface {
	Stats() RankJoinStats
}

// rankItem is a scored join result awaiting release from the priority queue.
type rankItem struct {
	score float64
	seq   int
	tuple relation.Tuple
}

// rankQueue is a max-heap on score with FIFO tie-breaking for determinism.
// It is hand-rolled rather than layered over container/heap: the standard
// heap's any-typed Push/Pop interface boxes every rankItem, costing two
// heap allocations per buffered result on the rank joins' per-tuple path.
// (score, seq) is a strict total order — seq is unique — so the pop order
// is identical to container/heap's regardless of internal arrangement.
type rankQueue []rankItem

// prior reports whether element i beats element j (higher score, FIFO ties).
func (q rankQueue) prior(i, j int) bool {
	if q[i].score != q[j].score {
		return q[i].score > q[j].score
	}
	return q[i].seq < q[j].seq
}

// push inserts an item, sifting it up to its heap position.
func (q *rankQueue) push(it rankItem) {
	s := append(*q, it)
	*q = s
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s.prior(i, p) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

// pop removes and returns the top item. The vacated slot is zeroed before
// the slice shrinks so the popped tuple becomes GC-reclaimable as soon as
// the caller drops it — leaving it in the slice's spare capacity would pin
// every emitted tuple until the operator closes.
func (q *rankQueue) pop() rankItem {
	s := *q
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	it := s[n]
	s[n] = rankItem{}
	s = s[:n]
	*q = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		best := l
		if r := l + 1; r < n && s.prior(r, l) {
			best = r
		}
		if !s.prior(best, i) {
			break
		}
		s[i], s[best] = s[best], s[i]
		i = best
	}
	return it
}

// grow ensures capacity for the optimizer's buffered-results hint without
// changing length.
func (q *rankQueue) grow(hint int) {
	if hint > 0 && cap(*q) < hint {
		*q = make(rankQueue, 0, hint)
	} else {
		*q = (*q)[:0]
	}
}

// HRJN is the hash rank-join operator: a symmetric hash join whose output is
// released in descending combined-score order using the rank-aggregation
// threshold. Both inputs must arrive in descending order of their score
// expressions; the operator verifies this contract and fails loudly when it
// is violated. The combined score is LeftScore + RightScore (the monotone
// linear combining function of the paper — weights live inside the
// expressions).
type HRJN struct {
	Left, Right Operator
	// LeftScore and RightScore evaluate each input's score contribution.
	LeftScore, RightScore expr.Expr
	// LeftKey and RightKey are the equi-join key expressions.
	LeftKey, RightKey expr.Expr
	// Residual is an optional extra join predicate.
	Residual expr.Expr
	// Strategy selects the polling policy (default Alternate).
	Strategy PullStrategy
	// SizeHintL/SizeHintR/QueueHint are the optimizer's expected input
	// depths and buffered-result count (plan.Node.EstDL/EstDR and their
	// product times the join selectivity). They pre-size the hash tables
	// and the ranking queue so the steady-state pull loop does not rehash
	// or regrow. Zero means no hint.
	SizeHintL, SizeHintR, QueueHint int
	// Budget, when set, is charged for every tuple buffered in the hash
	// tables and the ranking queue, and consulted for the per-input depth
	// limit. Nil means unlimited.
	Budget *Budget

	schema                     *relation.Schema
	lScore, rScore, lKey, rKey expr.Eval
	resEv                      expr.Eval

	lTable, rTable map[any][]scored
	pq             rankQueue
	seq            int
	outPool        tuplePool

	topL, lastL  float64
	topR, lastR  float64
	lSeen, rSeen int
	lDone, rDone bool
	pullLeft     bool

	cancel canceller
	acct   accountant

	stats RankJoinStats
}

// scored pairs a tuple with its input score so probes avoid re-evaluation.
type scored struct {
	t relation.Tuple
	s float64
}

// NewHRJN constructs the operator.
func NewHRJN(left, right Operator, leftScore, rightScore, leftKey, rightKey, residual expr.Expr) *HRJN {
	return &HRJN{
		Left: left, Right: right,
		LeftScore: leftScore, RightScore: rightScore,
		LeftKey: leftKey, RightKey: rightKey, Residual: residual,
		schema: left.Schema().Concat(right.Schema()),
	}
}

// Schema implements Operator.
func (j *HRJN) Schema() *relation.Schema { return j.schema }

// Stats returns the measured depths and buffer high-water mark.
func (j *HRJN) Stats() RankJoinStats { return j.stats }

// gauges exposes the internal high-water marks to the Analyzed collector.
func (j *HRJN) gauges() analyzeGauges {
	return analyzeGauges{
		leftDepth: j.stats.LeftDepth, rightDepth: j.stats.RightDepth,
		maxQueue: j.stats.MaxQueue,
		poolHit:  j.outPool.hit, poolMiss: j.outPool.miss,
	}
}

// Open implements Operator.
func (j *HRJN) Open() error { return j.OpenCtx(context.Background()) }

// OpenCtx implements OperatorCtx: the context is forwarded to both inputs
// and polled by Next's pull loop on the sampling cadence.
func (j *HRJN) OpenCtx(ctx context.Context) error {
	if err := OpenOp(ctx, j.Left); err != nil {
		return err
	}
	if err := OpenOp(ctx, j.Right); err != nil {
		closeQuietly(j.Left)
		return err
	}
	if err := j.bind(); err != nil {
		closeQuietly(j.Left, j.Right)
		return err
	}
	j.cancel.reset(ctx)
	j.acct.releaseAll()
	j.acct.budget = j.Budget
	j.lTable = make(map[any][]scored, sizeHint(float64(j.SizeHintL)))
	j.rTable = make(map[any][]scored, sizeHint(float64(j.SizeHintR)))
	j.pq.grow(sizeHint(float64(j.QueueHint)))
	j.outPool.reset(j.schema.Len())
	j.seq = 0
	j.lSeen, j.rSeen = 0, 0
	j.lDone, j.rDone = false, false
	j.pullLeft = true
	j.stats = RankJoinStats{}
	return nil
}

// bind resolves the score, key, and residual evaluators.
func (j *HRJN) bind() error {
	var err error
	if j.lScore, err = j.LeftScore.Bind(j.Left.Schema()); err != nil {
		return err
	}
	if j.rScore, err = j.RightScore.Bind(j.Right.Schema()); err != nil {
		return err
	}
	if j.lKey, err = j.LeftKey.Bind(j.Left.Schema()); err != nil {
		return err
	}
	if j.rKey, err = j.RightKey.Bind(j.Right.Schema()); err != nil {
		return err
	}
	j.resEv, err = bindPred(j.Residual, j.schema)
	return err
}

// threshold upper-bounds the combined score of every join result not yet in
// the priority queue.
func (j *HRJN) threshold() float64 {
	switch {
	case j.lSeen == 0 || j.rSeen == 0:
		// Cannot bound anything before seeing one tuple per input.
		return math.Inf(1)
	case j.lDone && j.rDone:
		return math.Inf(-1)
	case j.lDone:
		// Only (seen L, new R) combinations remain unseen.
		return j.topL + j.lastR
	case j.rDone:
		return j.lastL + j.topR
	default:
		t1 := j.topL + j.lastR
		t2 := j.lastL + j.topR
		return math.Max(t1, t2)
	}
}

// pull consumes one tuple from the chosen side, updating state and queueing
// any new join results.
func (j *HRJN) pull(left bool) error {
	var in Operator
	if left {
		in = j.Left
	} else {
		in = j.Right
	}
	t, ok, err := in.Next()
	if err != nil {
		return err
	}
	if !ok {
		if left {
			j.lDone = true
		} else {
			j.rDone = true
		}
		return nil
	}
	// Depth is the number of tuples read from the input, so the tuple counts
	// as consumed before any NULL-score drop — matching what a Counter
	// wrapped around the input would measure.
	if left {
		j.stats.LeftDepth++
		if err := j.Budget.depthOK(j.stats.LeftDepth); err != nil {
			return err
		}
	} else {
		j.stats.RightDepth++
		if err := j.Budget.depthOK(j.stats.RightDepth); err != nil {
			return err
		}
	}
	var s relation.Value
	if left {
		s, err = j.lScore(t)
	} else {
		s, err = j.rScore(t)
	}
	if err != nil {
		return err
	}
	if s.IsNull() {
		// NULL scores cannot participate in ranking; drop the tuple.
		return nil
	}
	side := "right"
	if left {
		side = "left"
	}
	sc, err := finiteScore(s.AsFloat(), "HRJN", side)
	if err != nil {
		return err
	}
	var k relation.Value
	if left {
		k, err = j.lKey(t)
	} else {
		k, err = j.rKey(t)
	}
	if err != nil {
		return err
	}
	if left {
		if j.lSeen == 0 {
			j.topL = sc
		} else if sc > j.lastL+scoreEps {
			return fmt.Errorf("exec: HRJN left input violated descending-score contract (%v after %v)", sc, j.lastL)
		}
		j.lastL = sc
		j.lSeen++
	} else {
		if j.rSeen == 0 {
			j.topR = sc
		} else if sc > j.lastR+scoreEps {
			return fmt.Errorf("exec: HRJN right input violated descending-score contract (%v after %v)", sc, j.lastR)
		}
		j.lastR = sc
		j.rSeen++
	}
	if k.IsNull() {
		return nil
	}
	hk := k.HashKey()
	// The inserted tuple is buffered in its hash table until Close.
	if err := j.acct.charge(1); err != nil {
		return err
	}
	if left {
		j.lTable[hk] = append(j.lTable[hk], scored{t, sc})
		for _, m := range j.rTable[hk] {
			if err := j.emit(t, m.t, sc+m.s); err != nil {
				return err
			}
		}
	} else {
		j.rTable[hk] = append(j.rTable[hk], scored{t, sc})
		for _, m := range j.lTable[hk] {
			if err := j.emit(m.t, t, m.s+sc); err != nil {
				return err
			}
		}
	}
	return nil
}

// emit pushes a candidate join result through the residual predicate into
// the priority queue. The concatenated tuple comes from the operator's free
// list; a candidate the residual rejects returns there immediately, so
// selective residuals cost no allocation per rejected match.
func (j *HRJN) emit(l, r relation.Tuple, score float64) error {
	out := j.outPool.concat(l, r)
	pass, err := expr.EvalBool(j.resEv, out)
	if err != nil {
		return err
	}
	if !pass {
		j.outPool.put(out)
		return nil
	}
	if err := j.acct.charge(1); err != nil {
		return err
	}
	j.pq.push(rankItem{score: score, seq: j.seq, tuple: out})
	j.seq++
	if len(j.pq) > j.stats.MaxQueue {
		j.stats.MaxQueue = len(j.pq)
	}
	return nil
}

// chooseSide picks the next input to poll.
func (j *HRJN) chooseSide() bool {
	if j.lDone {
		return false
	}
	if j.rDone {
		return true
	}
	// Both inputs must deliver one tuple before any bound exists.
	if j.lSeen == 0 {
		return true
	}
	if j.rSeen == 0 {
		return false
	}
	if j.Strategy == Adaptive {
		// The threshold is max(topL+lastR, lastL+topR); only pulling the
		// input under the dominating term lowers it. Pull left when the
		// lastL+topR term dominates, right otherwise.
		return j.lastL+j.topR >= j.topL+j.lastR
	}
	side := j.pullLeft
	j.pullLeft = !j.pullLeft
	return side
}

// Next implements Operator. The inner pull loop — unbounded when the
// threshold never drops — polls the query context on the sampling cadence,
// so a cancelled or past-deadline query escapes even mid-pull-storm.
func (j *HRJN) Next() (relation.Tuple, bool, error) {
	for {
		if err := j.cancel.poll(); err != nil {
			return nil, false, err
		}
		if len(j.pq) > 0 && j.pq[0].score >= j.threshold()-scoreEps {
			it := j.pq.pop()
			j.acct.release(1)
			j.stats.Emitted++
			return it.tuple, true, nil
		}
		if j.lDone && j.rDone {
			if len(j.pq) > 0 {
				it := j.pq.pop()
				j.acct.release(1)
				j.stats.Emitted++
				return it.tuple, true, nil
			}
			return nil, false, nil
		}
		if err := j.pull(j.chooseSide()); err != nil {
			return nil, false, err
		}
	}
}

// Close implements Operator.
func (j *HRJN) Close() error {
	j.lTable, j.rTable = nil, nil
	j.pq = nil
	j.acct.releaseAll()
	err1 := j.Left.Close()
	err2 := j.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// NRJN is the nested-loops rank-join operator. The outer (left) input must
// arrive in descending score order; the inner input is materialized at Open
// (it need not be sorted — this is the paper's "at least one sorted input"
// join choice). For each outer tuple all inner matches are found by a linear
// scan; the only ranking state is the priority queue. The threshold after
// consuming an outer tuple with score s is s + max(inner score), since every
// unseen combination involves a deeper outer tuple.
type NRJN struct {
	Left, Right Operator
	// LeftScore and RightScore evaluate each input's score contribution.
	LeftScore, RightScore expr.Expr
	// Pred is the full join predicate over the concatenated tuple (NRJN
	// performs no hashing, so any predicate works, not just equi-joins).
	Pred expr.Expr
	// QueueHint pre-sizes the ranking queue from the optimizer's estimated
	// buffered-result count (zero = no hint).
	QueueHint int
	// Budget, when set, is charged for the materialized inner and every
	// queued result, and consulted for the outer depth limit.
	Budget *Budget

	schema *relation.Schema
	lScore expr.Eval
	predEv expr.Eval

	inner    []scored
	innerMax float64
	pq       rankQueue
	seq      int
	outPool  tuplePool
	lastL    float64
	lSeen    int
	lDone    bool

	cancel canceller
	acct   accountant

	stats RankJoinStats
}

// NewNRJN constructs the operator.
func NewNRJN(left, right Operator, leftScore, rightScore, pred expr.Expr) *NRJN {
	return &NRJN{
		Left: left, Right: right,
		LeftScore: leftScore, RightScore: rightScore, Pred: pred,
		schema: left.Schema().Concat(right.Schema()),
	}
}

// Schema implements Operator.
func (j *NRJN) Schema() *relation.Schema { return j.schema }

// Stats returns the measured depths and buffer high-water mark. RightDepth
// equals the materialized inner size (the nested-loops strategy consumes the
// inner fully).
func (j *NRJN) Stats() RankJoinStats { return j.stats }

// gauges exposes the internal high-water marks to the Analyzed collector.
func (j *NRJN) gauges() analyzeGauges {
	return analyzeGauges{
		leftDepth: j.stats.LeftDepth, rightDepth: j.stats.RightDepth,
		maxQueue: j.stats.MaxQueue,
		poolHit:  j.outPool.hit, poolMiss: j.outPool.miss,
	}
}

// Open implements Operator: materializes and scores the inner input.
func (j *NRJN) Open() error { return j.OpenCtx(context.Background()) }

// OpenCtx implements OperatorCtx: inner materialization (the blocking part
// of Open) runs under the context, and Next's outer loop polls it.
func (j *NRJN) OpenCtx(ctx context.Context) error {
	if err := OpenOp(ctx, j.Left); err != nil {
		return err
	}
	if err := j.load(ctx); err != nil {
		// The inner was opened and closed inside CollectCtx; only the outer
		// remains to clean up.
		closeQuietly(j.Left)
		return err
	}
	return nil
}

// load binds evaluators and materializes the scored inner input.
func (j *NRJN) load(ctx context.Context) error {
	j.cancel.reset(ctx)
	j.acct.releaseAll()
	j.acct.budget = j.Budget
	var err error
	if j.lScore, err = j.LeftScore.Bind(j.Left.Schema()); err != nil {
		return err
	}
	rScore, err := j.RightScore.Bind(j.Right.Schema())
	if err != nil {
		return err
	}
	if j.predEv, err = bindPred(j.Pred, j.schema); err != nil {
		return err
	}
	inner, err := CollectCtx(ctx, j.Right)
	if err != nil {
		return err
	}
	// The whole inner is buffered until Close.
	if err := j.acct.charge(len(inner)); err != nil {
		return err
	}
	if cap(j.inner) < len(inner) {
		j.inner = make([]scored, 0, len(inner))
	} else {
		j.inner = j.inner[:0]
	}
	j.innerMax = math.Inf(-1)
	for _, t := range inner {
		v, err := rScore(t)
		if err != nil {
			return err
		}
		if v.IsNull() {
			// NULL-score inner tuples cannot rank but were still consumed:
			// they count toward RightDepth below.
			continue
		}
		s, err := finiteScore(v.AsFloat(), "NRJN", "inner")
		if err != nil {
			return err
		}
		j.inner = append(j.inner, scored{t, s})
		if s > j.innerMax {
			j.innerMax = s
		}
	}
	j.pq.grow(sizeHint(float64(j.QueueHint)))
	j.outPool.reset(j.schema.Len())
	j.seq = 0
	j.lSeen = 0
	j.lDone = false
	j.stats = RankJoinStats{RightDepth: len(inner)}
	return nil
}

// threshold bounds the combined score of unseen join results.
func (j *NRJN) threshold() float64 {
	if j.lDone || len(j.inner) == 0 {
		return math.Inf(-1)
	}
	if j.lSeen == 0 {
		return math.Inf(1)
	}
	return j.lastL + j.innerMax
}

// Next implements Operator.
func (j *NRJN) Next() (relation.Tuple, bool, error) {
	for {
		if err := j.cancel.poll(); err != nil {
			return nil, false, err
		}
		if len(j.pq) > 0 && j.pq[0].score >= j.threshold()-scoreEps {
			it := j.pq.pop()
			j.acct.release(1)
			j.stats.Emitted++
			return it.tuple, true, nil
		}
		if j.lDone {
			if len(j.pq) > 0 {
				it := j.pq.pop()
				j.acct.release(1)
				j.stats.Emitted++
				return it.tuple, true, nil
			}
			return nil, false, nil
		}
		t, ok, err := j.Left.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			j.lDone = true
			continue
		}
		// The tuple was consumed from the outer input: it counts toward the
		// depth even when a NULL score drops it from ranking.
		j.stats.LeftDepth++
		if err := j.Budget.depthOK(j.stats.LeftDepth); err != nil {
			return nil, false, err
		}
		v, err := j.lScore(t)
		if err != nil {
			return nil, false, err
		}
		if v.IsNull() {
			continue
		}
		s, err := finiteScore(v.AsFloat(), "NRJN", "outer")
		if err != nil {
			return nil, false, err
		}
		if j.lSeen > 0 && s > j.lastL+scoreEps {
			return nil, false, fmt.Errorf("exec: NRJN outer input violated descending-score contract (%v after %v)", s, j.lastL)
		}
		j.lastL = s
		j.lSeen++
		for _, m := range j.inner {
			out := j.outPool.concat(t, m.t)
			pass, err := expr.EvalBool(j.predEv, out)
			if err != nil {
				return nil, false, err
			}
			if !pass {
				j.outPool.put(out)
				continue
			}
			if err := j.acct.charge(1); err != nil {
				return nil, false, err
			}
			j.pq.push(rankItem{score: s + m.s, seq: j.seq, tuple: out})
			j.seq++
			if len(j.pq) > j.stats.MaxQueue {
				j.stats.MaxQueue = len(j.pq)
			}
		}
	}
}

// Close implements Operator.
func (j *NRJN) Close() error {
	j.inner = nil
	j.pq = nil
	j.acct.releaseAll()
	return j.Left.Close()
}

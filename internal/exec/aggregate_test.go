package exec

import (
	"math"
	"testing"
	"testing/quick"

	"rankopt/internal/expr"
	"rankopt/internal/relation"
	"rankopt/internal/workload"
)

func aggInput() *relation.Relation {
	return makeRel("A", [][3]float64{
		{0, 1, 0.5}, {1, 1, 0.7}, {2, 2, 0.2}, {3, 2, 0.4}, {4, 2, 0.9}, {5, 3, 0.1},
	})
}

func stdAggs() []AggSpec {
	return []AggSpec{
		{Func: AggCount, As: "cnt"},
		{Func: AggSum, Arg: expr.Col("A", "score"), As: "total"},
		{Func: AggMin, Arg: expr.Col("A", "score"), As: "lo"},
		{Func: AggMax, Arg: expr.Col("A", "score"), As: "hi"},
		{Func: AggAvg, Arg: expr.Col("A", "score"), As: "mean"},
	}
}

func checkAggRows(t *testing.T, got []relation.Tuple) {
	t.Helper()
	if len(got) != 3 {
		t.Fatalf("groups = %d, want 3", len(got))
	}
	// Group key 1: count 2, sum 1.2, min 0.5, max 0.7, avg 0.6.
	r := got[0]
	if r[0].AsInt() != 1 || r[1].AsInt() != 2 ||
		math.Abs(r[2].AsFloat()-1.2) > 1e-9 ||
		r[3].AsFloat() != 0.5 || r[4].AsFloat() != 0.7 ||
		math.Abs(r[5].AsFloat()-0.6) > 1e-9 {
		t.Fatalf("group 1 = %v", r)
	}
	// Group key 3: single row.
	r = got[2]
	if r[0].AsInt() != 3 || r[1].AsInt() != 1 || r[3].AsFloat() != 0.1 {
		t.Fatalf("group 3 = %v", r)
	}
}

func TestHashAggregate(t *testing.T) {
	h := NewHashAggregate(NewSeqScan(aggInput()), []expr.ColRef{expr.Col("A", "key")}, stdAggs())
	got, err := Collect(h)
	if err != nil {
		t.Fatal(err)
	}
	checkAggRows(t, got)
	if h.Groups != 3 {
		t.Errorf("Groups = %d", h.Groups)
	}
	if h.Schema().Len() != 6 || h.Schema().Column(1).Name != "cnt" {
		t.Errorf("schema = %s", h.Schema())
	}
	if h.Schema().Column(1).Kind != relation.KindInt {
		t.Error("COUNT output must be INTEGER")
	}
}

func TestSortedAggregateMatchesHash(t *testing.T) {
	in := NewSort(NewSeqScan(aggInput()), SortKey{E: expr.Col("A", "key")})
	s := NewSortedAggregate(in, []expr.ColRef{expr.Col("A", "key")}, stdAggs())
	got, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	checkAggRows(t, got)
}

func TestAggregateNoGroups(t *testing.T) {
	// Whole-input aggregation via HashAggregate with empty GroupBy.
	h := NewHashAggregate(NewSeqScan(aggInput()), nil, []AggSpec{
		{Func: AggCount, As: "n"},
		{Func: AggSum, Arg: expr.Col("A", "score"), As: "s"},
	})
	got, err := Collect(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0].AsInt() != 6 {
		t.Fatalf("global agg = %v", got)
	}
	// Empty input still yields one row (COUNT = 0, SUM = NULL).
	h = NewHashAggregate(NewSeqScan(makeRel("A", nil)), nil, []AggSpec{
		{Func: AggCount, As: "n"},
		{Func: AggSum, Arg: expr.Col("A", "score"), As: "s"},
	})
	got, err = Collect(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0].AsInt() != 0 || !got[0][1].IsNull() {
		t.Fatalf("empty global agg = %v", got)
	}
}

func TestAggregateNullHandling(t *testing.T) {
	sch := relation.NewSchema(
		relation.Column{Table: "N", Name: "g", Kind: relation.KindInt},
		relation.Column{Table: "N", Name: "x", Kind: relation.KindFloat},
	)
	rel := relation.New("N", sch)
	rel.MustAppend(relation.Tuple{relation.Int(1), relation.Float(2)})
	rel.MustAppend(relation.Tuple{relation.Int(1), relation.Null()})
	h := NewHashAggregate(NewSeqScan(rel), []expr.ColRef{expr.Col("N", "g")}, []AggSpec{
		{Func: AggCount, Arg: expr.Col("N", "x"), As: "cx"}, // COUNT(x) skips NULL
		{Func: AggCount, As: "call"},                        // COUNT(*) does not
		{Func: AggAvg, Arg: expr.Col("N", "x"), As: "ax"},
	})
	got, err := Collect(h)
	if err != nil {
		t.Fatal(err)
	}
	r := got[0]
	if r[1].AsInt() != 1 || r[2].AsInt() != 2 || r[3].AsFloat() != 2 {
		t.Fatalf("null agg = %v", r)
	}
}

func TestSortedAggregateRequiresGroups(t *testing.T) {
	s := NewSortedAggregate(NewSeqScan(aggInput()), nil, stdAggs())
	if err := s.Open(); err == nil {
		t.Error("sorted aggregate without groups must fail")
	}
}

func TestSortedAggregateStreamsInOrder(t *testing.T) {
	in := NewSort(NewSeqScan(aggInput()), SortKey{E: expr.Col("A", "key")})
	s := NewSortedAggregate(in, []expr.ColRef{expr.Col("A", "key")}, stdAggs()[:1])
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	var keys []int64
	for {
		r, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		keys = append(keys, r[0].AsInt())
	}
	_ = s.Close()
	if len(keys) != 3 || keys[0] != 1 || keys[1] != 2 || keys[2] != 3 {
		t.Fatalf("streamed group order = %v", keys)
	}
}

func TestMultiColumnGrouping(t *testing.T) {
	rel := makeRel("A", [][3]float64{
		{0, 1, 1}, {0, 1, 2}, {0, 2, 3}, {1, 1, 4},
	})
	groupBy := []expr.ColRef{expr.Col("A", "id"), expr.Col("A", "key")}
	aggs := []AggSpec{{Func: AggSum, Arg: expr.Col("A", "score"), As: "s"}}
	h := NewHashAggregate(NewSeqScan(rel), groupBy, aggs)
	hg, err := Collect(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(hg) != 3 {
		t.Fatalf("groups = %d, want 3", len(hg))
	}
	in := NewSort(NewSeqScan(rel),
		SortKey{E: expr.Col("A", "id")}, SortKey{E: expr.Col("A", "key")})
	s := NewSortedAggregate(in, groupBy, aggs)
	sg, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(sg) != 3 {
		t.Fatalf("sorted groups = %d", len(sg))
	}
	for i := range hg {
		for j := range hg[i] {
			if !hg[i][j].Equal(sg[i][j]) {
				t.Fatalf("hash/sorted mismatch at %d: %v vs %v", i, hg[i], sg[i])
			}
		}
	}
}

// Property: hash and sorted aggregation agree on random workloads.
func TestAggregatesAgreeProperty(t *testing.T) {
	groupBy := []expr.ColRef{expr.Col("A", "key")}
	aggs := []AggSpec{
		{Func: AggCount, As: "c"},
		{Func: AggSum, Arg: expr.Col("A", "score"), As: "s"},
		{Func: AggMax, Arg: expr.Col("A", "score"), As: "m"},
	}
	f := func(seed int64) bool {
		rel := workload.Ranked(workload.RankedConfig{Name: "A", N: 200, Selectivity: 0.1, Seed: seed})
		hg, err := Collect(NewHashAggregate(NewSeqScan(rel), groupBy, aggs))
		if err != nil {
			return false
		}
		in := NewSort(NewSeqScan(rel), SortKey{E: expr.Col("A", "key")})
		sg, err := Collect(NewSortedAggregate(in, groupBy, aggs))
		if err != nil {
			return false
		}
		if len(hg) != len(sg) {
			return false
		}
		for i := range hg {
			for j := range hg[i] {
				if hg[i][j].Numeric() && sg[i][j].Numeric() {
					if math.Abs(hg[i][j].AsFloat()-sg[i][j].AsFloat()) > 1e-9 {
						return false
					}
				} else if !hg[i][j].Equal(sg[i][j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestParseAggFunc(t *testing.T) {
	if f, ok := ParseAggFunc("sum"); !ok || f != AggSum {
		t.Error("sum")
	}
	if _, ok := ParseAggFunc("median"); ok {
		t.Error("median should be unknown")
	}
	if AggCount.Kind(relation.KindFloat) != relation.KindInt {
		t.Error("COUNT kind")
	}
	if AggMin.Kind(relation.KindString) != relation.KindString {
		t.Error("MIN preserves kind")
	}
	if AggSpec(AggSpec{Func: AggCount}).String() != "COUNT(*)" {
		t.Error("spec string")
	}
}

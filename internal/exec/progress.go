package exec

import (
	"context"
	"math"
	"sync/atomic"

	"rankopt/internal/relation"
)

// Progress is a lock-free, shared rank-aware progress block for one running
// query. The executing goroutines (a ShardMerge coordinator or a ProgressOp
// wrapped around a single-path root) store into it; observers (the live query
// registry behind /debug/queries) load from it concurrently. Every field is
// an atomic scalar, so updating costs a handful of stores per tuple and
// snapshotting never blocks execution. All methods are nil-receiver safe:
// an unobserved query carries a nil *Progress at zero cost.
type Progress struct {
	// emitted is the number of result tuples produced so far: buffered top-k
	// candidates for a ShardMerge (capped at k), tuples pulled through the
	// root for a single-path query.
	emitted atomic.Int64
	// kth and bound are float64 bit patterns: the current k-th (lowest
	// surviving) buffered score, and the best score any still-live source
	// could produce. bound-vs-kth is the rank-aware convergence signal — the
	// query can stop as soon as bound ≤ kth. Zero bits mean "unknown";
	// Snapshot reports NaN for unset values.
	kth   atomic.Uint64
	bound atomic.Uint64
	// shardsLive / shardsDone / shardsTotal describe the scatter-gather
	// fan-out; all zero for single-path queries.
	shardsLive  atomic.Int32
	shardsDone  atomic.Int32
	shardsTotal atomic.Int32
	// merging is set once the gather is over and the coordinator is
	// assembling the final winners.
	merging atomic.Bool
}

// ProgressSnapshot is one consistent-enough read of a Progress block (fields
// are loaded independently; monitoring cadence, not transaction cadence).
type ProgressSnapshot struct {
	Emitted     int64
	Kth         float64 // NaN when no k-th score exists yet
	Bound       float64 // NaN when no live bound is known
	ShardsLive  int32
	ShardsDone  int32
	ShardsTotal int32
	Merging     bool
}

// progressUnset is the reserved bit pattern meaning "no score recorded". The
// zero value of the atomics must mean unset so a fresh Progress needs no
// initialization; 0.0 as a real score is stored as negative zero instead,
// whose bit pattern is nonzero.
const progressUnset = 0

func storeScore(a *atomic.Uint64, v float64) {
	if v == 0 {
		v = math.Copysign(0, -1)
	}
	a.Store(math.Float64bits(v))
}

func loadScore(a *atomic.Uint64) float64 {
	bits := a.Load()
	if bits == progressUnset {
		return math.NaN()
	}
	return math.Float64frombits(bits)
}

// AddEmitted bumps the emitted-tuple count by n.
func (p *Progress) AddEmitted(n int64) {
	if p != nil {
		p.emitted.Add(n)
	}
}

// SetEmitted overwrites the emitted-tuple count (the ShardMerge buffer can
// shrink logically when k is reached; the count tracks min(buffered, k)).
func (p *Progress) SetEmitted(n int64) {
	if p != nil {
		p.emitted.Store(n)
	}
}

// SetKth records the current k-th buffered score.
func (p *Progress) SetKth(v float64) {
	if p != nil {
		storeScore(&p.kth, v)
	}
}

// SetBound records the best score any still-live source could produce.
func (p *Progress) SetBound(v float64) {
	if p != nil {
		storeScore(&p.bound, v)
	}
}

// SetShards initializes the fan-out gauge: total shards, none live or done.
func (p *Progress) SetShards(total int) {
	if p != nil {
		p.shardsTotal.Store(int32(total))
	}
}

// ShardStarted / ShardFinished move one shard through the liveness gauge.
// A pruned shard (never started) counts straight to done.
func (p *Progress) ShardStarted() {
	if p != nil {
		p.shardsLive.Add(1)
	}
}

func (p *Progress) ShardFinished(wasLive bool) {
	if p != nil {
		if wasLive {
			p.shardsLive.Add(-1)
		}
		p.shardsDone.Add(1)
	}
}

// SetMerging marks the gather finished and the final assembly in progress.
func (p *Progress) SetMerging() {
	if p != nil {
		p.merging.Store(true)
	}
}

// Snapshot loads every field. Safe to call from any goroutine, including
// while the query executes. A nil receiver reports the zero snapshot with
// NaN scores.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{Kth: math.NaN(), Bound: math.NaN()}
	}
	return ProgressSnapshot{
		Emitted:     p.emitted.Load(),
		Kth:         loadScore(&p.kth),
		Bound:       loadScore(&p.bound),
		ShardsLive:  p.shardsLive.Load(),
		ShardsDone:  p.shardsDone.Load(),
		ShardsTotal: p.shardsTotal.Load(),
		Merging:     p.merging.Load(),
	}
}

// ProgressOp wraps a single-path plan root and counts emitted tuples into a
// shared Progress block with one atomic add per tuple (per batch on the
// vectorized path). It forwards the batch contract like Counter, so wrapping
// a vectorized root does not knock it back to per-tuple pulls.
type ProgressOp struct {
	In   Operator
	prog *Progress
	src  batchSource
}

// WithProgress wraps op so tuples pulled through it are counted into prog.
// A nil prog returns op unchanged.
func WithProgress(op Operator, prog *Progress) Operator {
	if prog == nil {
		return op
	}
	return &ProgressOp{In: op, prog: prog}
}

// Schema implements Operator.
func (p *ProgressOp) Schema() *relation.Schema { return p.In.Schema() }

// Open implements Operator.
func (p *ProgressOp) Open() error { return p.OpenCtx(context.Background()) }

// OpenCtx implements OperatorCtx, forwarding the context to the input.
func (p *ProgressOp) OpenCtx(ctx context.Context) error {
	if err := OpenOp(ctx, p.In); err != nil {
		return err
	}
	p.src.reset(ctx, p.In)
	return nil
}

// Next implements Operator.
func (p *ProgressOp) Next() (relation.Tuple, bool, error) {
	t, ok, err := p.In.Next()
	if ok {
		p.prog.AddEmitted(1)
	}
	return t, ok, err
}

// NextBatch implements BatchOperator, counting whole batches at once.
func (p *ProgressOp) NextBatch(out *Batch, max int) (bool, error) {
	ok, err := p.src.next(out, max)
	if ok {
		p.prog.AddEmitted(int64(out.Len()))
	}
	return ok, err
}

// Close implements Operator.
func (p *ProgressOp) Close() error { return p.In.Close() }

// Stats forwards the inner operator's rank-join stats so StatsReporter
// consumers see through the wrapper.
func (p *ProgressOp) Stats() RankJoinStats {
	if sr, ok := p.In.(StatsReporter); ok {
		return sr.Stats()
	}
	return RankJoinStats{}
}

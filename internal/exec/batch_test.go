package exec

import (
	"context"
	"errors"
	"math"
	"testing"

	"rankopt/internal/expr"
	"rankopt/internal/relation"
)

// bigRel builds a deterministic n-row (id, key, score) relation with
// duplicate keys and a spread of scores — large enough that batch drains
// cross many batch boundaries.
func bigRel(name string, n int) *relation.Relation {
	rows := make([][3]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = [3]float64{float64(i), float64(i % 7), float64(i%13) / 13}
	}
	return makeRel(name, rows)
}

// runParity drains two fresh trees — mkRef one tuple per Next (the scalar
// reference executor), mkBatch batch-at-a-time — and requires identical
// results: count, order, arity, values.
func runParity(t *testing.T, name string, mkRef, mkBatch func() Operator) {
	t.Helper()
	ctx := context.Background()
	ref, err := CollectPerTupleCtx(ctx, mkRef())
	if err != nil {
		t.Fatalf("%s: per-tuple drain: %v", name, err)
	}
	got, err := CollectCtx(ctx, mkBatch())
	if err != nil {
		t.Fatalf("%s: batch drain: %v", name, err)
	}
	if len(ref) != len(got) {
		t.Fatalf("%s: per-tuple %d rows, batch %d rows", name, len(ref), len(got))
	}
	for i := range ref {
		if len(ref[i]) != len(got[i]) {
			t.Fatalf("%s row %d: arity %d vs %d", name, i, len(ref[i]), len(got[i]))
		}
		for j := range ref[i] {
			if !ref[i][j].Equal(got[i][j]) {
				t.Fatalf("%s row %d col %d: per-tuple %v, batch %v", name, i, j, ref[i][j], got[i][j])
			}
		}
	}
}

// TestBatchTupleParity drains every vectorized operator both ways over the
// same inputs and requires tuple-for-tuple agreement.
func TestBatchTupleParity(t *testing.T) {
	a := bigRel("A", 3000)
	b := bigRel("B", 40)
	cases := []struct {
		name string
		mk   func() Operator
	}{
		{"seqscan", func() Operator { return NewSeqScan(a) }},
		{"filter_fast", func() Operator {
			// col<const compiles to the de-boxed comparison kernel.
			return NewFilter(NewSeqScan(a), expr.Bin(expr.OpLt, expr.Col("A", "score"), expr.FloatLit(0.3)))
		}},
		{"filter_colcol", func() Operator {
			return NewFilter(NewSeqScan(a), expr.Bin(expr.OpLe, expr.Col("A", "key"), expr.Col("A", "id")))
		}},
		{"filter_slow", func() Operator {
			// Neg keeps the predicate off the comparison fast path.
			pred := expr.Bin(expr.OpGt, expr.Neg{E: expr.Col("A", "score")}, expr.FloatLit(-0.3))
			return NewFilter(NewSeqScan(a), pred)
		}},
		{"filter_allreject", func() Operator {
			return NewFilter(NewSeqScan(a), expr.Bin(expr.OpLt, expr.Col("A", "score"), expr.FloatLit(-1)))
		}},
		{"project", func() Operator {
			return NewProject(NewSeqScan(a),
				ProjectItem{E: expr.Col("A", "id"), As: "id", Kind: relation.KindInt},
				ProjectItem{E: expr.Bin(expr.OpMul, expr.Col("A", "score"), expr.FloatLit(2)), As: "s2", Kind: relation.KindFloat},
			)
		}},
		{"limit_over_filter", func() Operator {
			f := NewFilter(NewSeqScan(a), expr.Bin(expr.OpGt, expr.Col("A", "score"), expr.FloatLit(0.5)))
			return NewLimit(f, 37)
		}},
		{"rankassign", func() Operator {
			s := NewSortByScore(NewSeqScan(a), expr.Col("A", "score"))
			return NewRankAssign(s, expr.Col("A", "score"))
		}},
		{"hashjoin_residual", func() Operator {
			// A residual keeps the probe off the vectorized fast path; both
			// drains must still agree.
			return NewHashJoin(NewSeqScan(b), NewSeqScan(a),
				expr.Col("B", "key"), expr.Col("A", "key"),
				expr.Bin(expr.OpNe, expr.Col("B", "id"), expr.Col("A", "id")))
		}},
	}
	for _, c := range cases {
		runParity(t, c.name, c.mk, c.mk)
	}
}

// TestHashJoinBuildModesParity drains the hash join with the vectorized
// build (open-addressing numeric table) against the scalar reference build
// (interface-keyed map), on both drains, and requires identical output —
// the two table implementations are independent, so this differentially
// tests one against the other.
func TestHashJoinBuildModesParity(t *testing.T) {
	a := bigRel("A", 2000)
	b := bigRel("B", 60)
	mk := func(perTuple bool) func() Operator {
		return func() Operator {
			hj := NewHashJoin(NewSeqScan(b), NewSeqScan(a),
				expr.Col("B", "key"), expr.Col("A", "key"), nil)
			hj.PerTupleBuild = perTuple
			return hj
		}
	}
	// Reference = per-tuple drain of the scalar build; batch = batch drain of
	// the vectorized build. Then the two off-diagonal pairings.
	runParity(t, "scalar_vs_vectorized", mk(true), mk(false))
	runParity(t, "vectorized_both_drains", mk(false), mk(false))
	runParity(t, "scalar_build_batch_drain", mk(true), mk(true))
}

// floatKeyed builds a two-column (id INT, k FLOAT) input from raw key
// values, bypassing relation validation so NaN, ±0, and NULL keys can
// appear.
func floatKeyed(table string, keys []relation.Value) (sch *relation.Schema, tuples []relation.Tuple) {
	sch = relation.NewSchema(
		relation.Column{Table: table, Name: "id", Kind: relation.KindInt},
		relation.Column{Table: table, Name: "k", Kind: relation.KindFloat},
	)
	for i, k := range keys {
		tuples = append(tuples, relation.Tuple{relation.Int(int64(i)), k})
	}
	return sch, tuples
}

// TestHashJoinSpecialFloatKeys pins the numeric table's key semantics to
// Go's map over float64: -0 and +0 are one key, NaN keys are unreachable,
// NULL keys never join. Checked by parity against the interface-keyed
// reference build and by direct row accounting.
func TestHashJoinSpecialFloatKeys(t *testing.T) {
	nan := relation.Float(math.NaN())
	negZero := relation.Float(math.Copysign(0, -1))
	lsch, ltup := floatKeyed("L", []relation.Value{
		relation.Float(1), negZero, nan, relation.Null(), relation.Float(2.5),
	})
	rsch, rtup := floatKeyed("R", []relation.Value{
		relation.Float(0), nan, relation.Null(), relation.Float(1), relation.Float(3),
	})
	mk := func(perTuple bool) func() Operator {
		return func() Operator {
			hj := NewHashJoin(FromTuples(lsch, ltup), FromTuples(rsch, rtup),
				expr.Col("L", "k"), expr.Col("R", "k"), nil)
			hj.PerTupleBuild = perTuple
			return hj
		}
	}
	runParity(t, "special_float_keys", mk(true), mk(false))

	out, err := Collect(mk(false)())
	if err != nil {
		t.Fatal(err)
	}
	// Expected matches: L.k=1 with R.k=1, and L.k=-0 with R.k=+0. NaN meets
	// NaN but must not join (NaN != NaN); NULL keys drop on both sides.
	if len(out) != 2 {
		t.Fatalf("got %d joined rows, want 2: %v", len(out), out)
	}
	for _, row := range out {
		lf, _ := row[1].Float64()
		rf, _ := row[3].Float64()
		if lf != rf { // -0 == +0 holds; a NaN-joined row would fail here
			t.Fatalf("joined keys differ: %v vs %v", row[1], row[3])
		}
	}
}

// TestHashJoinMixedNumericKeys joins an INT key column against a FLOAT key
// column: HashKey widens both, so 2 and 2.0 are one key on both build
// implementations.
func TestHashJoinMixedNumericKeys(t *testing.T) {
	ints := makeRel("A", [][3]float64{{0, 2, 0}, {1, 3, 0}, {2, 2, 0}})
	fsch, ftup := floatKeyed("F", []relation.Value{
		relation.Float(2), relation.Float(2.5), relation.Float(3),
	})
	mk := func(perTuple bool) func() Operator {
		return func() Operator {
			hj := NewHashJoin(FromTuples(fsch, ftup), NewSeqScan(ints),
				expr.Col("F", "k"), expr.Col("A", "key"), nil)
			hj.PerTupleBuild = perTuple
			return hj
		}
	}
	runParity(t, "mixed_numeric_keys", mk(true), mk(false))
	out, err := Collect(mk(false)())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 { // F.k=2 matches A ids 0 and 2; F.k=3 matches id 1
		t.Fatalf("got %d joined rows, want 3: %v", len(out), out)
	}
}

// TestHashJoinStringKeyMigration forces the build to migrate off the
// numeric table (first keys numeric, then a string key arrives) and checks
// parity plus the expected matches.
func TestHashJoinStringKeyMigration(t *testing.T) {
	mkSide := func(table string, keys []relation.Value) Operator {
		sch := relation.NewSchema(
			relation.Column{Table: table, Name: "id", Kind: relation.KindInt},
			relation.Column{Table: table, Name: "k", Kind: relation.KindString},
		)
		var tuples []relation.Tuple
		for i, k := range keys {
			tuples = append(tuples, relation.Tuple{relation.Int(int64(i)), k})
		}
		return FromTuples(sch, tuples)
	}
	lkeys := []relation.Value{relation.Int(1), relation.Int(2), relation.String_("x"), relation.String_("y")}
	rkeys := []relation.Value{relation.String_("x"), relation.Int(2), relation.String_("z")}
	mk := func(perTuple bool) func() Operator {
		return func() Operator {
			hj := NewHashJoin(mkSide("L", lkeys), mkSide("R", rkeys),
				expr.Col("L", "k"), expr.Col("R", "k"), nil)
			hj.PerTupleBuild = perTuple
			return hj
		}
	}
	runParity(t, "string_key_migration", mk(true), mk(false))
	out, err := Collect(mk(false)())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 { // "x" and 2
		t.Fatalf("got %d joined rows, want 2: %v", len(out), out)
	}
}

// TestFloatTableSemantics exercises the open-addressing table directly:
// normalized-key equality, the min-max filter, NaN unreachability, and
// growth past the presize cap.
func TestFloatTableSemantics(t *testing.T) {
	row := relation.Tuple{relation.Int(0)}

	t.Run("empty_rejects_everything", func(t *testing.T) {
		ft := newFloatTable(0)
		for _, f := range []float64{0, 1, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
			if g := ft.get(f); g != nil {
				t.Fatalf("empty table returned a group for %v", f)
			}
		}
	})

	t.Run("zero_collapse", func(t *testing.T) {
		ft := newFloatTable(4)
		ft.add(math.Copysign(0, -1), row)
		ft.add(0, row)
		if g := ft.get(0); len(g) != 2 {
			t.Fatalf("+0 lookup found %d rows, want 2 (-0 and +0 are one key)", len(g))
		}
		if g := ft.get(math.Copysign(0, -1)); len(g) != 2 {
			t.Fatalf("-0 lookup found %d rows, want 2", len(g))
		}
	})

	t.Run("nan_unreachable", func(t *testing.T) {
		ft := newFloatTable(4)
		ft.add(math.NaN(), row)
		ft.add(1, row)
		if g := ft.get(math.NaN()); g != nil {
			t.Fatal("NaN probe must never match, as in a built-in map")
		}
		if g := ft.get(1); len(g) != 1 {
			t.Fatalf("real key lookup after NaN insert: %d rows, want 1", len(g))
		}
	})

	t.Run("minmax_filter_bounds", func(t *testing.T) {
		ft := newFloatTable(4)
		for _, f := range []float64{5, 7.5, 10} {
			ft.add(f, row)
		}
		// NaN inserts must not widen the bounds.
		ft.add(math.NaN(), row)
		if ft.lo != 5 || ft.hi != 10 {
			t.Fatalf("bounds [%v, %v], want [5, 10]", ft.lo, ft.hi)
		}
		if ft.get(4.999) != nil || ft.get(10.001) != nil {
			t.Fatal("out-of-range probe slipped past the min-max filter")
		}
		if ft.get(5) == nil || ft.get(10) == nil || ft.get(7.5) == nil {
			t.Fatal("boundary keys must remain reachable")
		}
		if ft.get(6) != nil {
			t.Fatal("in-range absent key must miss")
		}
	})

	t.Run("grow_preserves_keys_and_bounds", func(t *testing.T) {
		ft := newFloatTable(0) // 16 slots: 1000 distinct keys force many grows
		for i := 0; i < 1000; i++ {
			ft.add(float64(i), relation.Tuple{relation.Int(int64(i))})
			ft.add(float64(i), relation.Tuple{relation.Int(int64(i))}) // duplicate
		}
		for i := 0; i < 1000; i++ {
			g := ft.get(float64(i))
			if len(g) != 2 {
				t.Fatalf("key %d: group size %d after grows, want 2", i, len(g))
			}
			if g[0][0].AsInt() != int64(i) {
				t.Fatalf("key %d: wrong group contents", i)
			}
		}
		if ft.lo != 0 || ft.hi != 999 {
			t.Fatalf("bounds [%v, %v] after grows, want [0, 999]", ft.lo, ft.hi)
		}
		if ft.get(-1) != nil || ft.get(1000) != nil {
			t.Fatal("absent keys must miss after grows")
		}
	})

	t.Run("presize_cap", func(t *testing.T) {
		ft := newFloatTable(1 << 20)
		if len(ft.keys) != maxInitialSlots {
			t.Fatalf("huge hint presized %d slots, want cap %d", len(ft.keys), maxInitialSlots)
		}
	})
}

// slowSource emits up to n copies of one (id, key, score) tuple, one per
// Next, invoking onNext before each pull. Per-tuple only — batch consumers
// reach it through the shim — which makes it the tool for cancellation
// timing tests.
type slowSource struct {
	schema *relation.Schema
	tuple  relation.Tuple
	n, pos int
	onNext func(i int)
}

func newSlowSource(n int, onNext func(i int)) *slowSource {
	rel := makeRel("S", [][3]float64{{0, 1, 1.0}})
	return &slowSource{schema: rel.Schema(), tuple: rel.Tuples()[0], n: n, onNext: onNext}
}

func (s *slowSource) Schema() *relation.Schema { return s.schema }
func (s *slowSource) Open() error              { s.pos = 0; return nil }
func (s *slowSource) Close() error             { return nil }

func (s *slowSource) Next() (relation.Tuple, bool, error) {
	if s.pos >= s.n {
		return nil, false, nil
	}
	if s.onNext != nil {
		s.onNext(s.pos)
	}
	s.pos++
	return s.tuple, true, nil
}

// TestFilterRejectLoopCancellation is the regression test for the
// uncancellable reject loop: a selective predicate rejecting every input
// tuple used to spin inside one Next call with no context poll. The filter
// must now observe cancellation from within the loop — before exhausting
// the source — on both the per-tuple and batch paths.
func TestFilterRejectLoopCancellation(t *testing.T) {
	pred := expr.Bin(expr.OpLt, expr.Col("S", "score"), expr.FloatLit(0)) // rejects all

	t.Run("per_tuple", func(t *testing.T) {
		src := newSlowSource(1_000_000, nil)
		f := NewFilter(src, pred)
		ctx, cancel := context.WithCancel(context.Background())
		if err := f.OpenCtx(ctx); err != nil {
			t.Fatal(err)
		}
		cancel()
		_, _, err := f.Next()
		if !errors.Is(err, ErrQueryCancelled) {
			t.Fatalf("reject loop ignored cancellation: %v", err)
		}
		// Early exit, not exhaustion: the loop may overrun by at most one
		// polling period.
		if src.pos > 2*cancelCheckPeriod {
			t.Fatalf("reject loop pulled %d tuples after cancel (cadence %d)", src.pos, cancelCheckPeriod)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("batch", func(t *testing.T) {
		src := newSlowSource(1_000_000, nil)
		f := NewFilter(src, pred)
		ctx, cancel := context.WithCancel(context.Background())
		if err := f.OpenCtx(ctx); err != nil {
			t.Fatal(err)
		}
		cancel()
		b := NewBatch(DefaultBatchSize)
		_, err := f.NextBatch(b, DefaultBatchSize)
		if !errors.Is(err, ErrQueryCancelled) {
			t.Fatalf("batch reject loop ignored cancellation: %v", err)
		}
		// One shim fill plus one polling period of slack.
		if src.pos > DefaultBatchSize+2*cancelCheckPeriod {
			t.Fatalf("batch reject loop pulled %d tuples after cancel", src.pos)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestCollectKCtxCancellation covers the CollectK fix: the k-bounded drain
// now opens through OpenOp with the query context and polls it, so a
// cancelled context stops the pull loop instead of running to k.
func TestCollectKCtxCancellation(t *testing.T) {
	t.Run("pre_cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		src := newSlowSource(1000, nil)
		_, err := CollectKCtx(ctx, src, 10)
		if !errors.Is(err, ErrQueryCancelled) {
			t.Fatalf("want ErrQueryCancelled, got %v", err)
		}
		if src.pos != 0 {
			t.Fatalf("pre-cancelled collect still pulled %d tuples", src.pos)
		}
	})

	t.Run("mid_drain", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		const cancelAt = 10
		src := newSlowSource(1_000_000, func(i int) {
			if i == cancelAt {
				cancel()
			}
		})
		_, err := CollectKCtx(ctx, src, 1_000_000)
		if !errors.Is(err, ErrQueryCancelled) {
			t.Fatalf("want ErrQueryCancelled, got %v", err)
		}
		if src.pos > cancelAt+2*cancelCheckPeriod {
			t.Fatalf("collect pulled %d tuples after cancel at %d", src.pos, cancelAt)
		}
	})

	t.Run("bounded_pull", func(t *testing.T) {
		src := newSlowSource(1000, nil)
		out, err := CollectKCtx(context.Background(), src, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 7 || src.pos != 7 {
			t.Fatalf("collected %d, pulled %d; want exactly 7 of each", len(out), src.pos)
		}
	})
}

// TestMidBatchCancellation cancels while a batch is being filled: the shim
// fill loop polls on the canceller cadence, so the batch drain stops within
// one polling period of the cancel — it does not finish the batch, the
// round, or the input.
func TestMidBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const cancelAt = 600 // mid-way through the third 256-tuple batch fill
	src := newSlowSource(1_000_000, func(i int) {
		if i == cancelAt {
			cancel()
		}
	})
	// All-pass filter: the vectorized NextBatch path over the per-tuple shim.
	f := NewFilter(src, expr.Bin(expr.OpGe, expr.Col("S", "score"), expr.FloatLit(0)))
	_, err := CollectCtx(ctx, f)
	if !errors.Is(err, ErrQueryCancelled) {
		t.Fatalf("want ErrQueryCancelled, got %v", err)
	}
	if src.pos > cancelAt+2*cancelCheckPeriod {
		t.Fatalf("drain pulled %d tuples after cancel at %d", src.pos, cancelAt)
	}
}

// TestLimitBatchDoesNotOverpull checks the demand clamp: a batch drain
// through LIMIT k pulls exactly k tuples from the child, preserving the
// early termination lazy rank-join roots rely on.
func TestLimitBatchDoesNotOverpull(t *testing.T) {
	src := newSlowSource(100000, nil)
	l := NewLimit(src, 25)
	out, err := CollectCtx(context.Background(), l)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 25 {
		t.Fatalf("collected %d rows, want 25", len(out))
	}
	if src.pos != 25 {
		t.Fatalf("batch drain pulled %d child tuples for LIMIT 25", src.pos)
	}
}

// TestBatchSetViewSafety pins the borrowed-view contract: appending to a
// viewed batch reallocates instead of writing into the borrowed array, and
// Reset never adopts a borrowed view as the append target.
func TestBatchSetViewSafety(t *testing.T) {
	base := []relation.Tuple{
		{relation.Int(0)}, {relation.Int(1)}, {relation.Int(2)},
	}
	backing := make([]relation.Tuple, len(base), len(base)+4)
	copy(backing, base)

	b := NewBatch(2)
	b.SetView(backing[:2])
	if b.Len() != 2 {
		t.Fatalf("view length %d, want 2", b.Len())
	}
	b.Append(relation.Tuple{relation.Int(99)})
	if got := backing[2][0].AsInt(); got != 2 {
		t.Fatalf("append through a view clobbered the borrowed array: slot 2 = %d", got)
	}
	if b.Len() != 3 || b.Tuples()[2][0].AsInt() != 99 {
		t.Fatal("append after SetView lost the appended tuple")
	}

	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset must empty the batch")
	}
	b.Append(relation.Tuple{relation.Int(7)})
	for i, want := range []int64{0, 1, 2} {
		if backing[i][0].AsInt() != want {
			t.Fatalf("append after Reset wrote into the borrowed array at %d", i)
		}
	}
}

// TestTupleArenaIsolation pins the arena's caller-ownership rule: carved
// tuples are full-capacity slices, so growing one reallocates instead of
// clobbering its neighbor.
func TestTupleArenaIsolation(t *testing.T) {
	var a tupleArena
	t1 := a.alloc(2)
	t2 := a.alloc(2)
	t1[0], t1[1] = relation.Int(1), relation.Int(2)
	t2[0], t2[1] = relation.Int(3), relation.Int(4)
	grown := append(t1, relation.Int(5))
	if t2[0].AsInt() != 3 || t2[1].AsInt() != 4 {
		t.Fatal("growing an arena tuple clobbered its neighbor")
	}
	if len(grown) != 3 || grown[2].AsInt() != 5 {
		t.Fatal("grown tuple lost its appended value")
	}
	c := a.concat(relation.Tuple{relation.Int(8)}, relation.Tuple{relation.Int(9)})
	if len(c) != 2 || c[0].AsInt() != 8 || c[1].AsInt() != 9 {
		t.Fatalf("concat = %v", c)
	}
	// Width above one chunk still works (dedicated allocation).
	wide := a.alloc(arenaChunkValues + 8)
	if len(wide) != arenaChunkValues+8 {
		t.Fatalf("oversized alloc length %d", len(wide))
	}
}

// Allocation budgets for the batch path (the arena's whole point is the
// allocation count). Bounds are ~2× the measured values, far below one
// allocation per tuple.
func TestBatchDrainAllocBudgets(t *testing.T) {
	rel := bigRel("A", 10000)
	build := bigRel("B", 50)
	ctx := context.Background()
	cases := []struct {
		name   string
		mk     func() Operator
		budget float64
	}{
		// Scan drains borrow heap windows: a handful of allocations per
		// drain regardless of row count.
		{"seqscan", func() Operator { return NewSeqScan(rel) }, 32},
		// Vectorized filter: batch machinery only, rejects and passes alike.
		{"filter", func() Operator {
			return NewFilter(NewSeqScan(rel), expr.Bin(expr.OpLt, expr.Col("A", "score"), expr.FloatLit(0.3)))
		}, 64},
		// 10k projected rows of width 2 = 20k values ≈ 5 arena chunks; with
		// batch machinery and eval setup the drain stays two orders of
		// magnitude under one allocation per tuple.
		{"project", func() Operator {
			return NewProject(NewSeqScan(rel),
				ProjectItem{E: expr.Col("A", "id"), As: "id", Kind: relation.KindInt},
				ProjectItem{E: expr.Col("A", "score"), As: "score", Kind: relation.KindFloat},
			)
		}, 128},
		// Probe-side join: output tuples carve from the arena; the budget
		// covers the build table plus ~10k output rows of width 6.
		{"hashjoin", func() Operator {
			hj := NewHashJoin(NewSeqScan(build), NewSeqScan(rel),
				expr.Col("B", "key"), expr.Col("A", "key"), nil)
			hj.BuildSizeHint = 50
			return hj
		}, 768},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			allocs := testing.AllocsPerRun(5, func() {
				if _, err := DrainCtx(ctx, c.mk()); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > c.budget {
				t.Fatalf("batch drain allocated %.0f times, budget %.0f", allocs, c.budget)
			}
		})
	}
}

package exec

import (
	"context"
	"fmt"
	"sort"

	"rankopt/internal/expr"
	"rankopt/internal/relation"
)

// AnyK is a Lawler-style any-k ranked enumerator for acyclic multi-way
// equi-joins arranged as a path: input i joins input i+1 on
// LeftKeys[i] = RightKeys[i]. Where MultiHRJN eagerly materializes every join
// combination a new tuple completes (a product of per-key bucket sizes), AnyK
// builds per-level sorted adjacency once and then pops results from a
// priority queue of partial solutions, expanding at most one successor per
// path position per pop — delay O(m·log) per result after an
// O(Σ n_i · log n_i) build, independent of the join's output size
// (Tziavelis et al., "Optimal Join Algorithms Meet Top-k").
//
// The build phase is bottom-up dynamic programming over the path: each tuple
// at level i learns its sorted successor bucket at level i+1 (tuples sharing
// its join key, ordered by best achievable completion) and its own `suffix`
// bound — its score plus the best completion of the remaining path. The
// enumeration phase then walks a max-heap of index vectors: popping the
// current best solution and pushing, for each position at or after the pop's
// deviation level, the solution that takes the next-best sibling there and
// the greedy best everywhere after. That partition visits every join result
// exactly once, in non-increasing score order, with deterministic FIFO
// tie-breaking.
//
// Inputs need not be sorted — the build consumes them in any order — so AnyK
// runs directly over cheap unordered scans where HRJN-family plans must pay
// for ranked access paths.
type AnyK struct {
	// Inputs are the m path-ordered relations.
	Inputs []Operator
	// Scores[i] evaluates input i's score contribution against its schema.
	Scores []expr.Expr
	// LeftKeys[i] (over Inputs[i]) and RightKeys[i] (over Inputs[i+1]) are
	// the m-1 adjacent equi-join key pairs along the path.
	LeftKeys, RightKeys []expr.Expr
	// Budget, when set, is charged for every tuple buffered during the build
	// and every pending solution on the queue, and consulted for the
	// per-input depth limit while draining inputs.
	Budget *Budget

	schema   *relation.Schema
	scoreEvs []expr.Eval
	lkeyEvs  []expr.Eval // lkeyEvs[i] binds LeftKeys[i] to Inputs[i]
	rkeyEvs  []expr.Eval // rkeyEvs[i] binds RightKeys[i] to Inputs[i+1]

	built bool
	root  []anykEntry
	pq    anykQueue
	seq   int
	// path and prefix are pop-time scratch (the solution walk), reused so
	// the hot path does not allocate them.
	path   []*anykEntry
	prefix []float64

	cancel canceller
	acct   accountant

	depths   []int
	maxQueue int
	emitted  int
}

// anykMaxWidth bounds the path width so a solution's index vector fits in a
// fixed array and pushes never allocate. Join queries are far narrower.
const anykMaxWidth = 8

// anykEntry is one input tuple annotated for ranked enumeration: its own
// score contribution, the best total achievable from it to the end of the
// path (suffix), and its sorted successor bucket at the next level.
type anykEntry struct {
	tuple  relation.Tuple
	score  float64
	suffix float64
	next   []anykEntry
	ord    int32
}

// anykSol is a pending (partial) solution: an index vector selecting one
// entry per level, its total score, and the deviation level below which the
// vector is frozen for successor generation.
type anykSol struct {
	score float64
	seq   int
	dev   int8
	idx   [anykMaxWidth]int32
}

// anykQueue is a max-heap of pending solutions ordered by score with FIFO
// tie-breaking, mirroring rankQueue but holding inline index vectors.
type anykQueue []anykSol

func (q anykQueue) prior(i, j int) bool {
	if q[i].score != q[j].score {
		return q[i].score > q[j].score
	}
	return q[i].seq < q[j].seq
}

func (q *anykQueue) push(s anykSol) {
	*q = append(*q, s)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.prior(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *anykQueue) pop() anykSol {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = anykSol{}
	h = h[:n]
	*q = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.prior(l, best) {
			best = l
		}
		if r < n && h.prior(r, best) {
			best = r
		}
		if best == i {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return top
}

// NewAnyK constructs the operator; inputs, scores, and adjacent key pairs
// must align, and the path width is capped at anykMaxWidth.
func NewAnyK(inputs []Operator, scores, leftKeys, rightKeys []expr.Expr) (*AnyK, error) {
	if len(inputs) < 2 {
		return nil, fmt.Errorf("exec: AnyK needs >=2 inputs, got %d", len(inputs))
	}
	if len(inputs) > anykMaxWidth {
		return nil, fmt.Errorf("exec: AnyK supports at most %d inputs, got %d", anykMaxWidth, len(inputs))
	}
	if len(scores) != len(inputs) || len(leftKeys) != len(inputs)-1 || len(rightKeys) != len(inputs)-1 {
		return nil, fmt.Errorf("exec: AnyK arity mismatch (%d inputs, %d scores, %d/%d keys)",
			len(inputs), len(scores), len(leftKeys), len(rightKeys))
	}
	sch := inputs[0].Schema()
	for _, in := range inputs[1:] {
		sch = sch.Concat(in.Schema())
	}
	return &AnyK{Inputs: inputs, Scores: scores, LeftKeys: leftKeys, RightKeys: rightKeys, schema: sch}, nil
}

// Schema implements Operator.
func (j *AnyK) Schema() *relation.Schema { return j.schema }

// Depths returns the number of tuples consumed from each input.
func (j *AnyK) Depths() []int { return append([]int(nil), j.depths...) }

// MaxQueue returns the solution-queue high-water mark.
func (j *AnyK) MaxQueue() int { return j.maxQueue }

// Stats implements StatsReporter: the build drains every input fully, so the
// reported depths are the input cardinalities after NULL drops.
func (j *AnyK) Stats() RankJoinStats {
	st := RankJoinStats{MaxQueue: j.maxQueue, Emitted: j.emitted}
	if len(j.depths) > 0 {
		st.LeftDepth = j.depths[0]
		st.RightDepth = j.depths[len(j.depths)-1]
	}
	return st
}

// gauges exposes the queue high-water mark (and, on a binary path, the two
// input depths) to the Analyzed collector.
func (j *AnyK) gauges() analyzeGauges {
	g := analyzeGauges{maxQueue: j.maxQueue}
	if len(j.depths) == 2 {
		g.leftDepth, g.rightDepth = j.depths[0], j.depths[1]
	}
	return g
}

// Open implements Operator.
func (j *AnyK) Open() error { return j.OpenCtx(context.Background()) }

// OpenCtx implements OperatorCtx. The build itself is deferred to the first
// Next call so cancellation during the (blocking) build surfaces as a Next
// error like every other operator's pull loop.
func (j *AnyK) OpenCtx(ctx context.Context) error {
	j.cancel.reset(ctx)
	j.acct.releaseAll()
	j.acct.budget = j.Budget
	m := len(j.Inputs)
	j.scoreEvs = make([]expr.Eval, m)
	j.lkeyEvs = make([]expr.Eval, m-1)
	j.rkeyEvs = make([]expr.Eval, m-1)
	for i, in := range j.Inputs {
		if err := OpenOp(ctx, in); err != nil {
			closeQuietly(j.Inputs[:i]...)
			return err
		}
		var err error
		if j.scoreEvs[i], err = j.Scores[i].Bind(in.Schema()); err != nil {
			closeQuietly(j.Inputs[:i+1]...)
			return err
		}
		if i < m-1 {
			if j.lkeyEvs[i], err = j.LeftKeys[i].Bind(in.Schema()); err != nil {
				closeQuietly(j.Inputs[:i+1]...)
				return err
			}
		}
		if i > 0 {
			if j.rkeyEvs[i-1], err = j.RightKeys[i-1].Bind(in.Schema()); err != nil {
				closeQuietly(j.Inputs[:i+1]...)
				return err
			}
		}
	}
	j.built = false
	j.root = nil
	j.pq = j.pq[:0]
	j.seq = 0
	j.path = make([]*anykEntry, m)
	j.prefix = make([]float64, m)
	j.depths = make([]int, m)
	j.maxQueue = 0
	j.emitted = 0
	return nil
}

// drainLevel consumes input i fully, returning its surviving entries.
// Tuples with a NULL score or a NULL required join key cannot contribute to
// any result and are dropped.
func (j *AnyK) drainLevel(i int) ([]anykEntry, error) {
	var out []anykEntry
	for {
		if err := j.cancel.poll(); err != nil {
			return nil, err
		}
		t, ok, err := j.Inputs[i].Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		j.depths[i]++
		if err := j.Budget.depthOK(j.depths[i]); err != nil {
			return nil, err
		}
		sv, err := j.scoreEvs[i](t)
		if err != nil {
			return nil, err
		}
		if sv.IsNull() {
			continue
		}
		s, err := finiteScore(sv.AsFloat(), "AnyK", "path")
		if err != nil {
			return nil, err
		}
		if err := j.acct.charge(1); err != nil {
			return nil, err
		}
		out = append(out, anykEntry{tuple: t, score: s, ord: int32(len(out))})
	}
}

// levelKey evaluates ev on the entry's tuple, returning the hash key and
// whether the key is usable (non-NULL).
func levelKey(ev expr.Eval, e *anykEntry) (any, bool, error) {
	kv, err := ev(e.tuple)
	if err != nil {
		return nil, false, err
	}
	if kv.IsNull() {
		return nil, false, nil
	}
	return kv.HashKey(), true, nil
}

// build runs the bottom-up phase: drain every input, then assign suffix
// bounds and sorted successor buckets backward along the path.
func (j *AnyK) build() error {
	m := len(j.Inputs)
	levels := make([][]anykEntry, m)
	for i := 0; i < m; i++ {
		lv, err := j.drainLevel(i)
		if err != nil {
			return err
		}
		levels[i] = lv
	}

	// byKey buckets the current (deeper) level's surviving entries by the
	// join key their predecessors probe with.
	sortBucket := func(b []anykEntry) {
		sort.Slice(b, func(x, y int) bool {
			if b[x].suffix != b[y].suffix {
				return b[x].suffix > b[y].suffix
			}
			return b[x].ord < b[y].ord
		})
	}
	var byKey map[any][]anykEntry
	for lvl := m - 1; lvl >= 0; lvl-- {
		var kept []anykEntry
		for idx := range levels[lvl] {
			if err := j.cancel.poll(); err != nil {
				return err
			}
			e := levels[lvl][idx]
			if lvl == m-1 {
				e.suffix = e.score
			} else {
				hk, ok, err := levelKey(j.lkeyEvs[lvl], &e)
				if err != nil {
					return err
				}
				if !ok {
					j.acct.release(1)
					continue
				}
				nxt := byKey[hk]
				if len(nxt) == 0 {
					// No completion below: the entry is dead weight.
					j.acct.release(1)
					continue
				}
				e.next = nxt
				e.suffix = e.score + nxt[0].suffix
			}
			kept = append(kept, e)
		}
		if lvl == 0 {
			sortBucket(kept)
			for i := range kept {
				kept[i].ord = int32(i)
			}
			j.root = kept
			break
		}
		next := make(map[any][]anykEntry, len(kept))
		for _, e := range kept {
			hk, ok, err := levelKey(j.rkeyEvs[lvl-1], &e)
			if err != nil {
				return err
			}
			if !ok {
				j.acct.release(1)
				continue
			}
			next[hk] = append(next[hk], e)
		}
		for hk, b := range next {
			sortBucket(b)
			for i := range b {
				b[i].ord = int32(i)
			}
			next[hk] = b
		}
		byKey = next
	}

	if len(j.root) > 0 {
		if err := j.acct.charge(1); err != nil {
			return err
		}
		j.pq.push(anykSol{score: j.root[0].suffix, seq: j.seq})
		j.seq++
		j.maxQueue = 1
	}
	j.built = true
	return nil
}

// walk materializes the popped solution's per-level entries and running
// prefix scores into the reusable scratch.
func (j *AnyK) walk(s *anykSol) {
	bucket := j.root
	for lvl := 0; lvl < len(j.Inputs); lvl++ {
		e := &bucket[s.idx[lvl]]
		j.path[lvl] = e
		if lvl == 0 {
			j.prefix[0] = e.score
		} else {
			j.prefix[lvl] = j.prefix[lvl-1] + e.score
		}
		bucket = e.next
	}
}

// Next implements Operator: pop the best pending solution, emit it, and push
// its successors (one per path position at or after the deviation level).
func (j *AnyK) Next() (relation.Tuple, bool, error) {
	if err := j.cancel.poll(); err != nil {
		return nil, false, err
	}
	if !j.built {
		if err := j.build(); err != nil {
			return nil, false, err
		}
	}
	if len(j.pq) == 0 {
		return nil, false, nil
	}
	m := len(j.Inputs)
	sol := j.pq.pop()
	j.acct.release(1)
	j.walk(&sol)

	for lvl := int(sol.dev); lvl < m; lvl++ {
		bucket := j.root
		if lvl > 0 {
			bucket = j.path[lvl-1].next
		}
		ni := sol.idx[lvl] + 1
		if int(ni) >= len(bucket) {
			continue
		}
		succ := anykSol{seq: j.seq, dev: int8(lvl)}
		copy(succ.idx[:lvl], sol.idx[:lvl])
		succ.idx[lvl] = ni
		succ.score = bucket[ni].suffix
		if lvl > 0 {
			succ.score += j.prefix[lvl-1]
		}
		j.seq++
		if err := j.acct.charge(1); err != nil {
			return nil, false, err
		}
		j.pq.push(succ)
	}
	if len(j.pq) > j.maxQueue {
		j.maxQueue = len(j.pq)
	}

	out := make(relation.Tuple, 0, j.schema.Len())
	for lvl := 0; lvl < m; lvl++ {
		out = append(out, j.path[lvl].tuple...)
	}
	j.emitted++
	return out, true, nil
}

// Close implements Operator.
func (j *AnyK) Close() error {
	var first error
	for _, in := range j.Inputs {
		if err := in.Close(); err != nil && first == nil {
			first = err
		}
	}
	j.root = nil
	j.pq = nil
	j.path = nil
	j.built = false
	j.acct.releaseAll()
	return first
}

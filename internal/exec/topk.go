package exec

import (
	"container/heap"
	"sort"

	"rankopt/internal/expr"
	"rankopt/internal/relation"
)

// TopK keeps only the K highest-scoring tuples of its input using a bounded
// min-heap, then emits them in descending score order. It is the classic
// ORDER BY ... LIMIT K optimization: versus a full sort it holds K tuples
// instead of the whole input and does O(n log K) work. Like Sort it is
// blocking, but its memory footprint is K, which matters to the buffer-size
// story of rank plans' competitors.
type TopK struct {
	In    Operator
	Score expr.Expr
	K     int

	out []relation.Tuple
	pos int
}

// NewTopK constructs the operator.
func NewTopK(in Operator, score expr.Expr, k int) *TopK {
	return &TopK{In: in, Score: score, K: k}
}

// Schema implements Operator.
func (t *TopK) Schema() *relation.Schema { return t.In.Schema() }

// topKItem pairs a tuple with its score inside the bounded heap.
type topKItem struct {
	score float64
	seq   int
	tuple relation.Tuple
}

// topKHeap is a min-heap on (score, -seq): the root is the weakest kept
// tuple; later arrivals lose ties so the operator is deterministic and
// stable.
type topKHeap []topKItem

func (h topKHeap) Len() int { return len(h) }
func (h topKHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score < h[j].score
	}
	return h[i].seq > h[j].seq
}
func (h topKHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *topKHeap) Push(x any)   { *h = append(*h, x.(topKItem)) }
func (h *topKHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Open implements Operator: drains the input through the bounded heap.
func (t *TopK) Open() error {
	if err := t.In.Open(); err != nil {
		return err
	}
	if err := t.load(); err != nil {
		closeQuietly(t.In)
		return err
	}
	return nil
}

// load binds the score and drains the opened input through the heap.
func (t *TopK) load() error {
	ev, err := t.Score.Bind(t.In.Schema())
	if err != nil {
		return err
	}
	var h topKHeap
	seq := 0
	for {
		tup, ok, err := t.In.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		v, err := ev(tup)
		if err != nil {
			return err
		}
		if v.IsNull() {
			continue
		}
		s := v.AsFloat()
		switch {
		case len(h) < t.K:
			heap.Push(&h, topKItem{score: s, seq: seq, tuple: tup})
		case s > h[0].score:
			h[0] = topKItem{score: s, seq: seq, tuple: tup}
			heap.Fix(&h, 0)
		}
		seq++
	}
	items := append(topKHeap(nil), h...)
	sort.Slice(items, func(a, b int) bool {
		if items[a].score != items[b].score {
			return items[a].score > items[b].score
		}
		return items[a].seq < items[b].seq
	})
	t.out = t.out[:0]
	for _, it := range items {
		t.out = append(t.out, it.tuple)
	}
	t.pos = 0
	return nil
}

// Next implements Operator.
func (t *TopK) Next() (relation.Tuple, bool, error) {
	if t.pos >= len(t.out) {
		return nil, false, nil
	}
	tup := t.out[t.pos]
	t.pos++
	return tup, true, nil
}

// Close implements Operator.
func (t *TopK) Close() error {
	t.out = nil
	return t.In.Close()
}

package exec

import (
	"context"
	"sort"

	"rankopt/internal/expr"
	"rankopt/internal/relation"
)

// TopK keeps only the K highest-scoring tuples of its input using a bounded
// min-heap, then emits them in descending score order. It is the classic
// ORDER BY ... LIMIT K optimization: versus a full sort it holds K tuples
// instead of the whole input and does O(n log K) work. Like Sort it is
// blocking, but its memory footprint is K, which matters to the buffer-size
// story of rank plans' competitors.
type TopK struct {
	In    Operator
	Score expr.Expr
	K     int
	// Budget, when set, is charged for every tuple held in the bounded heap.
	Budget *Budget

	out     []relation.Tuple
	pos     int
	maxHeap int
	acct    accountant
}

// gauges exposes the bounded-heap high-water mark to the Analyzed collector.
func (t *TopK) gauges() analyzeGauges { return analyzeGauges{maxHeap: t.maxHeap} }

// NewTopK constructs the operator.
func NewTopK(in Operator, score expr.Expr, k int) *TopK {
	return &TopK{In: in, Score: score, K: k}
}

// Schema implements Operator.
func (t *TopK) Schema() *relation.Schema { return t.In.Schema() }

// topKItem pairs a tuple with its score inside the bounded heap.
type topKItem struct {
	score float64
	seq   int
	tuple relation.Tuple
}

// topKHeap is a min-heap on (score, -seq): the root is the weakest kept
// tuple; later arrivals lose ties so the operator is deterministic and
// stable. Like rankQueue it is hand-rolled — container/heap's any-typed
// interface would box a topKItem per insertion on the per-input-tuple path.
type topKHeap []topKItem

// weaker reports whether element i loses to element j (lower score; on a
// tie the later arrival is weaker).
func (h topKHeap) weaker(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score < h[j].score
	}
	return h[i].seq > h[j].seq
}

// push inserts an item, sifting it up.
func (h *topKHeap) push(it topKItem) {
	s := append(*h, it)
	*h = s
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s.weaker(i, p) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

// fixRoot restores the heap after the root (the weakest kept tuple) was
// replaced in place.
func (h topKHeap) fixRoot() {
	n := len(h)
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		weakest := l
		if r := l + 1; r < n && h.weaker(r, l) {
			weakest = r
		}
		if !h.weaker(weakest, i) {
			break
		}
		h[i], h[weakest] = h[weakest], h[i]
		i = weakest
	}
}

// Open implements Operator: drains the input through the bounded heap.
func (t *TopK) Open() error { return t.OpenCtx(context.Background()) }

// OpenCtx implements OperatorCtx: the blocking drain polls the context on
// the sampling cadence, so even this bounded-memory blocking operator obeys
// cancellation mid-load.
func (t *TopK) OpenCtx(ctx context.Context) error {
	if err := OpenOp(ctx, t.In); err != nil {
		return err
	}
	if err := t.load(ctx); err != nil {
		closeQuietly(t.In)
		return err
	}
	return nil
}

// load binds the score and drains the opened input through the heap.
func (t *TopK) load(ctx context.Context) error {
	t.acct.releaseAll()
	t.acct.budget = t.Budget
	ev, err := t.Score.Bind(t.In.Schema())
	if err != nil {
		return err
	}
	var c canceller
	c.reset(ctx)
	h := make(topKHeap, 0, sizeHint(float64(t.K)))
	seq := 0
	for {
		if err := c.poll(); err != nil {
			return err
		}
		tup, ok, err := t.In.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		v, err := ev(tup)
		if err != nil {
			return err
		}
		if v.IsNull() {
			continue
		}
		s := v.AsFloat()
		switch {
		case len(h) < t.K:
			// Only heap growth charges the budget; steady-state replacement
			// keeps the footprint at K.
			if err := t.acct.charge(1); err != nil {
				return err
			}
			h.push(topKItem{score: s, seq: seq, tuple: tup})
		case s > h[0].score:
			h[0] = topKItem{score: s, seq: seq, tuple: tup}
			h.fixRoot()
		}
		seq++
	}
	t.maxHeap = len(h)
	items := append(topKHeap(nil), h...)
	sort.Slice(items, func(a, b int) bool {
		if items[a].score != items[b].score {
			return items[a].score > items[b].score
		}
		return items[a].seq < items[b].seq
	})
	t.out = t.out[:0]
	for _, it := range items {
		t.out = append(t.out, it.tuple)
	}
	t.pos = 0
	return nil
}

// Next implements Operator.
func (t *TopK) Next() (relation.Tuple, bool, error) {
	if t.pos >= len(t.out) {
		return nil, false, nil
	}
	tup := t.out[t.pos]
	t.pos++
	return tup, true, nil
}

// Close implements Operator.
func (t *TopK) Close() error {
	t.out = nil
	t.acct.releaseAll()
	return t.In.Close()
}

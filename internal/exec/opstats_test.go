package exec

import (
	"math/rand"
	"testing"

	"rankopt/internal/expr"
	"rankopt/internal/relation"
)

// scoredKeyed builds a ranked input with explicit descending scores and
// aligned join keys under the given table name.
func scoredKeyed(table string, scores []float64, keys []int64) (*relation.Schema, []relation.Tuple) {
	sch := relation.NewSchema(
		relation.Column{Table: table, Name: "key", Kind: relation.KindInt},
		relation.Column{Table: table, Name: "score", Kind: relation.KindFloat},
	)
	tuples := make([]relation.Tuple, len(scores))
	for i := range scores {
		tuples[i] = relation.Tuple{relation.Int(keys[i]), relation.Float(scores[i])}
	}
	return sch, tuples
}

// The Analyzed collector must count tuples on every operator, sample Next
// wall time at the documented stride, and surface the wrapped rank-join's
// internal gauges (depths, queue high-water mark, pool counters).
func TestAnalyzedCollectsOperatorStats(t *testing.T) {
	lsch, ltups := buildRankedInput(4000, 200, 1)
	rsch, rtups := buildRankedInput(4000, 200, 3)
	l := Analyze(FromTuples(lsch, ltups))
	r := Analyze(FromTuples(rsch, rtups))
	j := NewHRJN(l, r,
		expr.Col("A", "score"), expr.Col("A", "score"),
		expr.Col("A", "key"), expr.Col("A", "key"), nil)
	a := Analyze(j)
	const k = 100
	out, err := CollectK(a, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != k {
		t.Fatalf("emitted %d tuples, want %d", len(out), k)
	}

	st := a.ExecStats()
	if st.Opens != 1 {
		t.Errorf("Opens = %d, want 1", st.Opens)
	}
	if st.TuplesOut != k {
		t.Errorf("TuplesOut = %d, want %d", st.TuplesOut, k)
	}
	if st.NextCalls != k {
		t.Errorf("NextCalls = %d, want %d (CollectK pulls exactly k)", st.NextCalls, k)
	}
	if want := st.NextCalls / nextSamplePeriod; st.SampledNexts != want {
		t.Errorf("SampledNexts = %d, want %d (1-in-%d sampling)", st.SampledNexts, want, nextSamplePeriod)
	}
	if st.EstNextNanos() < st.NextNanos {
		t.Errorf("EstNextNanos %d < sampled NextNanos %d", st.EstNextNanos(), st.NextNanos)
	}

	// The gauges must match the wrapped operator's own stats, and each
	// input's depth must equal the tuples pulled through its child collector.
	js := j.Stats()
	if st.LeftDepth != int64(js.LeftDepth) || st.RightDepth != int64(js.RightDepth) {
		t.Errorf("collector depths (%d,%d) != rank-join stats (%d,%d)",
			st.LeftDepth, st.RightDepth, js.LeftDepth, js.RightDepth)
	}
	if got := l.ExecStats().TuplesOut; got != st.LeftDepth {
		t.Errorf("left child TuplesOut = %d, want depth %d", got, st.LeftDepth)
	}
	if got := r.ExecStats().TuplesOut; got != st.RightDepth {
		t.Errorf("right child TuplesOut = %d, want depth %d", got, st.RightDepth)
	}
	if st.MaxQueue <= 0 {
		t.Errorf("MaxQueue = %d, want > 0", st.MaxQueue)
	}
	if st.PoolMiss <= 0 {
		t.Errorf("PoolMiss = %d, want > 0 (every queued candidate is a fresh tuple)", st.PoolMiss)
	}
	// Stats must forward through the wrapper for StatsReporter consumers.
	if a.Stats() != js {
		t.Errorf("Analyzed.Stats() = %+v, want forwarded %+v", a.Stats(), js)
	}
}

// TopK must report its bounded-heap high-water mark through the collector.
func TestAnalyzedTopKHeapGauge(t *testing.T) {
	sch, tups := buildRankedInput(500, 50, 1)
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(tups), func(i, j int) { tups[i], tups[j] = tups[j], tups[i] })
	const k = 20
	a := Analyze(NewTopK(FromTuples(sch, tups), expr.Col("A", "score"), k))
	out, err := Collect(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != k {
		t.Fatalf("emitted %d, want %d", len(out), k)
	}
	st := a.ExecStats()
	if st.MaxHeap != k {
		t.Errorf("MaxHeap = %d, want %d", st.MaxHeap, k)
	}
	if st.TuplesOut != k {
		t.Errorf("TuplesOut = %d, want %d", st.TuplesOut, k)
	}
}

// Stats collection must not add per-tuple allocations to the HRJN hot path:
// the analyzed run obeys the same AllocsPerRun budget the bare operator is
// pinned to in alloc_test.go.
func TestAnalyzedHRJNAllocsPerTuple(t *testing.T) {
	lsch, ltups := buildRankedInput(4000, 200, 1)
	rsch, rtups := buildRankedInput(4000, 200, 3)
	const k = 100
	var emitted int
	allocs := testing.AllocsPerRun(5, func() {
		j := NewHRJN(
			FromTuples(lsch, ltups), FromTuples(rsch, rtups),
			expr.Col("A", "score"), expr.Col("A", "score"),
			expr.Col("A", "key"), expr.Col("A", "key"), nil)
		j.SizeHintL, j.SizeHintR, j.QueueHint = 400, 400, 1024
		out, err := CollectK(Analyze(j), k)
		if err != nil {
			t.Fatal(err)
		}
		emitted = len(out)
	})
	if emitted != k {
		t.Fatalf("emitted %d tuples, want %d", emitted, k)
	}
	perTuple := allocs / float64(emitted)
	t.Logf("analyzed HRJN: %.1f allocs/run, %.2f allocs/emitted tuple", allocs, perTuple)
	if perTuple > 12.0 {
		t.Errorf("analyzed HRJN hot path allocates %.2f/tuple, budget 12.0 (same as bare operator)", perTuple)
	}
}

// Likewise for TopK: wrapping with the collector must stay inside the bare
// operator's per-run allocation budget (the wrapper itself is one struct).
func TestAnalyzedTopKAllocs(t *testing.T) {
	sch, tups := buildRankedInput(4000, 200, 1)
	rng := rand.New(rand.NewSource(99))
	rng.Shuffle(len(tups), func(i, j int) { tups[i], tups[j] = tups[j], tups[i] })
	const k = 50
	var emitted int
	allocs := testing.AllocsPerRun(5, func() {
		tk := NewTopK(FromTuples(sch, tups), expr.Col("A", "score"), k)
		out, err := Collect(Analyze(tk))
		if err != nil {
			t.Fatal(err)
		}
		emitted = len(out)
	})
	if emitted != k {
		t.Fatalf("emitted %d tuples, want %d", emitted, k)
	}
	t.Logf("analyzed TopK: %.1f allocs/run over %d inputs", allocs, len(tups))
	if allocs > 40 {
		t.Errorf("analyzed TopK allocates %.1f/run, budget 40 (same as bare operator)", allocs)
	}
}

package exec

import "rankopt/internal/relation"

// tuplePool is a per-operator free list of concatenated output tuples. Rank
// joins build a candidate tuple for every hash match, but candidates that
// fail the residual predicate die immediately — recycling their backing
// arrays keeps the per-tuple hot path from allocating for rejected
// candidates. Tuples that survive into the ranking queue are eventually
// handed to the caller (who owns them per the Operator contract) and are
// never recycled.
//
// The pool is operator-private, so it needs no locking: operators are
// session-private and driven by one goroutine.
type tuplePool struct {
	width int
	free  []relation.Tuple
	// hit and miss count free-list reuses vs fresh allocations; EXPLAIN
	// ANALYZE surfaces them as the pool's effectiveness gauge.
	hit, miss int
}

// reset prepares the pool for a tuple width (called from Open).
func (p *tuplePool) reset(width int) {
	p.width = width
	p.free = p.free[:0]
	p.hit, p.miss = 0, 0
}

// get returns an empty tuple with capacity for one output row.
func (p *tuplePool) get() relation.Tuple {
	if n := len(p.free); n > 0 {
		t := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.hit++
		return t[:0]
	}
	p.miss++
	return make(relation.Tuple, 0, p.width)
}

// put recycles a tuple the operator no longer references. The caller must
// not touch t afterwards.
func (p *tuplePool) put(t relation.Tuple) {
	p.free = append(p.free, t)
}

// concatInto appends l then r into a pooled buffer.
func (p *tuplePool) concat(l, r relation.Tuple) relation.Tuple {
	out := p.get()
	out = append(out, l...)
	out = append(out, r...)
	return out
}

// sizeHint clamps an optimizer estimate into a sane pre-allocation bound:
// negative, zero, and NaN hints mean "unknown" and huge hints (from
// degenerate estimates, including +Inf) must not commit memory up front.
// The first guard is written !(est > 0) rather than est <= 0 because NaN
// compares false to everything: est <= 0 would pass NaN through to the
// second guard (also false) and into int(NaN), whose result is
// platform-undefined.
func sizeHint(est float64) int {
	const maxHint = 1 << 16
	if !(est > 0) {
		return 0
	}
	if est > maxHint {
		return maxHint
	}
	return int(est)
}

package exec

import (
	"errors"
	"testing"

	"rankopt/internal/expr"
	"rankopt/internal/relation"
)

// lifecycleOp wraps an operator and records Open/Close calls, so tests can
// verify the Operator contract: an Open failure anywhere in a tree must leave
// every successfully-opened child closed again.
type lifecycleOp struct {
	Operator
	opens, closes int
}

func (l *lifecycleOp) Open() error  { l.opens++; return l.Operator.Open() }
func (l *lifecycleOp) Close() error { l.closes++; return l.Operator.Close() }

func (l *lifecycleOp) balanced() bool { return l.opens == l.closes }

// nextErrOp opens fine and fails on the first Next — the shape of a child
// whose materialization (Collect) fails inside a parent's Open.
type nextErrOp struct{ schema *relation.Schema }

func (n nextErrOp) Schema() *relation.Schema { return n.schema }
func (n nextErrOp) Open() error              { return nil }
func (n nextErrOp) Next() (relation.Tuple, bool, error) {
	return nil, false, errors.New("next boom")
}
func (n nextErrOp) Close() error { return nil }

// TestOpenFailureClosesOpenedChildren drives every operator whose Open can
// fail after a child was already opened, and asserts no child leaks open.
// Before the fix, a right-input Open failure (or a bind failure) returned
// with the left input still holding its resources.
func TestOpenFailureClosesOpenedChildren(t *testing.T) {
	rel := makeRel("A", [][3]float64{{0, 1, 0.5}, {1, 1, 0.4}})
	score := expr.Col("A", "score")
	key := expr.Col("A", "key")
	badCol := expr.Col("Z", "nope")
	bad := ErrOperator("open boom")
	drainFail := nextErrOp{schema: rel.Schema()}

	track := func() *lifecycleOp {
		return &lifecycleOp{Operator: FromTuples(rel.Schema(), rel.Tuples())}
	}

	cases := []struct {
		name     string
		build    func(children ...*lifecycleOp) Operator
		children int
	}{
		{"hrjn-right-open-fails", func(c ...*lifecycleOp) Operator {
			return NewHRJN(c[0], bad, score, score, key, key, nil)
		}, 1},
		{"hrjn-bind-fails", func(c ...*lifecycleOp) Operator {
			return NewHRJN(c[0], c[1], badCol, score, key, key, nil)
		}, 2},
		{"nrjn-inner-drain-fails", func(c ...*lifecycleOp) Operator {
			return NewNRJN(c[0], drainFail, score, score, nil)
		}, 1},
		{"nrjn-bind-fails", func(c ...*lifecycleOp) Operator {
			return NewNRJN(c[0], c[1], badCol, score, nil)
		}, 2},
		{"sort-bind-fails", func(c ...*lifecycleOp) Operator {
			return NewSort(c[0], SortKey{E: badCol})
		}, 1},
		{"topk-bind-fails", func(c ...*lifecycleOp) Operator {
			return NewTopK(c[0], badCol, 3)
		}, 1},
		{"filter-bind-fails", func(c ...*lifecycleOp) Operator {
			return NewFilter(c[0], expr.Bin(expr.OpGt, badCol, expr.IntLit(0)))
		}, 1},
		{"nlj-inner-drain-fails", func(c ...*lifecycleOp) Operator {
			return NewNestedLoopsJoin(c[0], drainFail, nil)
		}, 1},
		{"hashjoin-build-fails", func(c ...*lifecycleOp) Operator {
			return NewHashJoin(c[0], c[1], badCol, key, nil)
		}, 2},
		{"hashjoin-probe-bind-fails", func(c ...*lifecycleOp) Operator {
			return NewHashJoin(c[0], c[1], key, badCol, nil)
		}, 2},
		{"smj-bind-fails", func(c ...*lifecycleOp) Operator {
			return NewSortMergeJoin(c[0], c[1], badCol, key, nil)
		}, 2},
		{"shj-bind-fails", func(c ...*lifecycleOp) Operator {
			return NewSymmetricHashJoin(c[0], c[1], badCol, key, nil)
		}, 2},
		{"hashagg-drain-fails", func(c ...*lifecycleOp) Operator {
			return NewHashAggregate(nextErrOp{schema: rel.Schema()}, nil,
				[]AggSpec{{Func: AggCount, As: "c"}})
		}, 0},
	}
	for _, tc := range cases {
		children := make([]*lifecycleOp, 2)
		for i := range children {
			children[i] = track()
		}
		op := tc.build(children...)
		if err := op.Open(); err == nil {
			t.Errorf("%s: Open unexpectedly succeeded", tc.name)
			_ = op.Close()
			continue
		}
		for i := 0; i < tc.children; i++ {
			c := children[i]
			if c.opens == 0 {
				continue // never opened: nothing to release
			}
			if !c.balanced() {
				t.Errorf("%s: child %d leaked: %d opens, %d closes",
					tc.name, i, c.opens, c.closes)
			}
		}
	}
}

// TestMultiHRJNOpenFailureClosesOpenedInputs covers the m-way operator: when
// input i fails to open, inputs 0..i-1 must be closed; when binding fails,
// all inputs must be closed.
func TestMultiHRJNOpenFailureClosesOpenedInputs(t *testing.T) {
	rel := makeRel("A", [][3]float64{{0, 1, 0.5}})
	score := expr.Col("A", "score")
	key := expr.Col("A", "key")
	badCol := expr.Col("Z", "nope")

	c0 := &lifecycleOp{Operator: FromTuples(rel.Schema(), rel.Tuples())}
	c1 := &lifecycleOp{Operator: FromTuples(rel.Schema(), rel.Tuples())}
	j, err := NewMultiHRJN([]Operator{c0, c1, ErrOperator("boom")},
		[]expr.Expr{score, score, score}, []expr.Expr{key, key, key})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Open(); err == nil {
		t.Fatal("Open unexpectedly succeeded")
	}
	if !c0.balanced() || !c1.balanced() {
		t.Errorf("opened inputs leaked: c0 %d/%d, c1 %d/%d", c0.opens, c0.closes, c1.opens, c1.closes)
	}

	c0 = &lifecycleOp{Operator: FromTuples(rel.Schema(), rel.Tuples())}
	c1 = &lifecycleOp{Operator: FromTuples(rel.Schema(), rel.Tuples())}
	j, err = NewMultiHRJN([]Operator{c0, c1},
		[]expr.Expr{badCol, score}, []expr.Expr{key, key})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Open(); err == nil {
		t.Fatal("Open with unbindable score unexpectedly succeeded")
	}
	if !c0.balanced() || !c1.balanced() {
		t.Errorf("bind failure leaked inputs: c0 %d/%d, c1 %d/%d", c0.opens, c0.closes, c1.opens, c1.closes)
	}
}

// nullScoreInput builds a descending-score input with NULL scores
// interspersed; every tuple joins on key=1.
func nullScoreInput(name string, scores []any) Operator {
	sch := relation.NewSchema(
		relation.Column{Table: name, Name: "id", Kind: relation.KindInt},
		relation.Column{Table: name, Name: "key", Kind: relation.KindInt},
		relation.Column{Table: name, Name: "score", Kind: relation.KindFloat},
	)
	tuples := make([]relation.Tuple, len(scores))
	for i, s := range scores {
		v := relation.Null()
		if f, ok := s.(float64); ok {
			v = relation.Float(f)
		}
		tuples[i] = relation.Tuple{relation.Int(int64(i)), relation.Int(1), v}
	}
	return FromTuples(sch, tuples)
}

// TestHRJNDepthCountsNullScoreTuples: depth is the number of tuples read
// from an input — exactly what a Counter around the input measures — so a
// tuple dropped for a NULL score still counts. Before the fix the stats
// mirrored lSeen/rSeen, which skip NULL-score tuples.
func TestHRJNDepthCountsNullScoreTuples(t *testing.T) {
	left := NewCounter(nullScoreInput("A", []any{0.9, nil, 0.8, nil}))
	right := NewCounter(nullScoreInput("B", []any{0.7, nil, 0.5}))
	j := NewHRJN(left, right,
		expr.Col("A", "score"), expr.Col("B", "score"),
		expr.Col("A", "key"), expr.Col("B", "key"), nil)
	tuples, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 4 { // 2 non-NULL left × 2 non-NULL right, all key=1
		t.Fatalf("got %d results, want 4", len(tuples))
	}
	st := j.Stats()
	if st.LeftDepth != left.Count() || st.RightDepth != right.Count() {
		t.Errorf("stats depths (%d,%d) disagree with Counter measurements (%d,%d)",
			st.LeftDepth, st.RightDepth, left.Count(), right.Count())
	}
	if st.LeftDepth != 4 || st.RightDepth != 3 {
		t.Errorf("depths (%d,%d) must include NULL-score tuples, want (4,3)",
			st.LeftDepth, st.RightDepth)
	}
}

// TestNRJNDepthCountsNullScoreTuples: same invariant for NRJN — the outer
// depth counts NULL-score tuples that were consumed, and the inner depth is
// the full materialized input size before NULL filtering.
func TestNRJNDepthCountsNullScoreTuples(t *testing.T) {
	outer := NewCounter(nullScoreInput("A", []any{0.9, nil, 0.8}))
	inner := nullScoreInput("B", []any{0.7, nil, nil, 0.5})
	j := NewNRJN(outer, inner,
		expr.Col("A", "score"), expr.Col("B", "score"),
		expr.Bin(expr.OpEq, expr.Col("A", "key"), expr.Col("B", "key")))
	tuples, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 4 { // 2 non-NULL outer × 2 non-NULL inner
		t.Fatalf("got %d results, want 4", len(tuples))
	}
	st := j.Stats()
	if st.LeftDepth != outer.Count() {
		t.Errorf("outer depth %d disagrees with Counter %d", st.LeftDepth, outer.Count())
	}
	if st.LeftDepth != 3 {
		t.Errorf("outer depth %d must include the NULL-score tuple, want 3", st.LeftDepth)
	}
	if st.RightDepth != 4 {
		t.Errorf("inner depth %d must be the raw materialized size, want 4", st.RightDepth)
	}
}

// TestMultiHRJNDepthCountsNullScoreTuples extends the invariant to the m-way
// operator's per-input depth vector.
func TestMultiHRJNDepthCountsNullScoreTuples(t *testing.T) {
	in0 := NewCounter(nullScoreInput("A", []any{0.9, nil, 0.8}))
	in1 := NewCounter(nullScoreInput("B", []any{0.7, nil, nil, 0.5}))
	j, err := NewMultiHRJN([]Operator{in0, in1},
		[]expr.Expr{expr.Col("A", "score"), expr.Col("B", "score")},
		[]expr.Expr{expr.Col("A", "key"), expr.Col("B", "key")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(j); err != nil {
		t.Fatal(err)
	}
	d := j.Depths()
	if d[0] != in0.Count() || d[1] != in1.Count() {
		t.Errorf("depths %v disagree with Counters (%d,%d)", d, in0.Count(), in1.Count())
	}
	if d[0] != 3 || d[1] != 4 {
		t.Errorf("depths %v must include NULL-score tuples, want [3 4]", d)
	}
}

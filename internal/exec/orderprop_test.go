package exec

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"rankopt/internal/expr"
	"rankopt/internal/ranking"
	"rankopt/internal/relation"
	"rankopt/internal/workload"
)

// This file is the order-contract property test: every ranked operator in
// the executor — HRJN, NRJN, MultiHRJN, TASelect, AnyK, ShardMerge — must
// emit monotonically non-increasing combined scores with deterministic
// tie-breaking, across seeded randomized workloads. The monotonicity check
// reuses ranking.Bounds.Observe, the same machinery the threshold operators
// trust at runtime, so a violation here surfaces as the production
// *ranking.OrderViolationError rather than a bespoke test assertion.

// rankedCase builds one ranked operator plus the score extractor for its
// output tuples. Construction happens per run so determinism can be checked
// by building twice.
type rankedCase struct {
	name  string
	build func(seed int64) (Operator, func(relation.Tuple) float64)
}

// pathScore sums the m per-input score columns of a (id, key, score)^m
// concatenated output.
func pathScore(m int) func(relation.Tuple) float64 {
	return func(tup relation.Tuple) float64 { return combinedScoreM(tup, m) }
}

// propRels builds m ranked relations with per-relation derived seeds.
func propRels(m, n int, sel float64, seed int64) []*relation.Relation {
	rels := make([]*relation.Relation, m)
	for i := 0; i < m; i++ {
		rels[i] = workload.Ranked(workload.RankedConfig{
			Name: string(rune('A' + i)), N: n, Selectivity: sel, Seed: seed + int64(i)*7919,
		})
	}
	return rels
}

func rankedOperatorCases(t *testing.T) []rankedCase {
	t.Helper()
	return []rankedCase{
		{"HRJN", func(seed int64) (Operator, func(relation.Tuple) float64) {
			rels := propRels(2, 220, 0.06, seed)
			j := NewHRJN(rankedScan(rels[0]), rankedScan(rels[1]),
				expr.Col("A", "score"), expr.Col("B", "score"),
				expr.Col("A", "key"), expr.Col("B", "key"), nil)
			return j, pathScore(2)
		}},
		{"NRJN", func(seed int64) (Operator, func(relation.Tuple) float64) {
			rels := propRels(2, 160, 0.08, seed)
			j := NewNRJN(rankedScan(rels[0]), rankedScan(rels[1]),
				expr.Col("A", "score"), expr.Col("B", "score"),
				expr.Bin(expr.OpEq, expr.Col("A", "key"), expr.Col("B", "key")))
			return j, pathScore(2)
		}},
		{"MultiHRJN", func(seed int64) (Operator, func(relation.Tuple) float64) {
			rels := propRels(3, 180, 0.06, seed)
			inputs := make([]Operator, len(rels))
			scores := make([]expr.Expr, len(rels))
			keys := make([]expr.Expr, len(rels))
			for i, r := range rels {
				inputs[i] = rankedScan(r)
				scores[i] = expr.Col(r.Name, "score")
				keys[i] = expr.Col(r.Name, "key")
			}
			j, err := NewMultiHRJN(inputs, scores, keys)
			if err != nil {
				t.Fatal(err)
			}
			return j, pathScore(3)
		}},
		{"AnyK", func(seed int64) (Operator, func(relation.Tuple) float64) {
			rels := propRels(3, 180, 0.06, seed)
			inputs := make([]Operator, len(rels))
			scores := make([]expr.Expr, len(rels))
			lkeys := make([]expr.Expr, len(rels)-1)
			rkeys := make([]expr.Expr, len(rels)-1)
			for i, r := range rels {
				inputs[i] = NewSeqScan(r)
				scores[i] = expr.Col(r.Name, "score")
				if i < len(rels)-1 {
					lkeys[i] = expr.Col(r.Name, "key")
				}
				if i > 0 {
					rkeys[i-1] = expr.Col(r.Name, "key")
				}
			}
			j, err := NewAnyK(inputs, scores, lkeys, rkeys)
			if err != nil {
				t.Fatal(err)
			}
			return j, pathScore(3)
		}},
		{"TASelect", func(seed int64) (Operator, func(relation.Tuple) float64) {
			cat, names := workload.Corpus(workload.CorpusConfig{Objects: 400, Features: 3, Seed: seed})
			weights := []float64{0.5, 0.3, 0.2}
			inputs := make([]TAInput, len(names))
			for i, name := range names {
				tab, _ := cat.Table(name)
				inputs[i] = TAInput{
					Rel:      tab.Rel,
					ScoreIdx: cat.IndexOn(name, "score"),
					IDIdx:    cat.IndexOn(name, "id"),
					ScorePos: 1, IDPos: 0,
					Weight: weights[i],
				}
			}
			ta, err := NewTASelect(inputs, 25)
			if err != nil {
				t.Fatal(err)
			}
			score := func(tup relation.Tuple) float64 {
				total := 0.0
				for i, w := range weights {
					total += w * tup[i*2+1].AsFloat()
				}
				return total
			}
			return ta, score
		}},
		{"ShardMerge", func(seed int64) (Operator, func(relation.Tuple) float64) {
			rng := rand.New(rand.NewSource(seed))
			inputs := make([]ShardInput, 4)
			for s := range inputs {
				scores := make([]float64, 40)
				for i := range scores {
					scores[i] = rng.Float64() * 100
				}
				sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
				inputs[s] = ShardInput{Op: shardStream(s*100, scores...), Ceiling: scores[0]}
			}
			m, err := NewShardMerge(inputs, 30, nil)
			if err != nil {
				t.Fatal(err)
			}
			return m, func(tup relation.Tuple) float64 { return tup[1].AsFloat() }
		}},
	}
}

// drainScores collects the operator's full emitted score sequence.
func drainScores(t *testing.T, op Operator, score func(relation.Tuple) float64) []float64 {
	t.Helper()
	out, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, len(out))
	for i, tup := range out {
		scores[i] = score(tup)
	}
	return scores
}

// TestRankedOrderProperty: for every ranked operator and every seed, the
// emitted score sequence passes Bounds.Observe (non-increasing, no NaN) and
// is byte-identical across two independently constructed runs.
func TestRankedOrderProperty(t *testing.T) {
	seeds := []int64{3, 17, 101, 443, 977}
	for _, c := range rankedOperatorCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, seed := range seeds {
				op, score := c.build(seed)
				scores := drainScores(t, op, score)
				if len(scores) == 0 {
					t.Fatalf("seed %d: operator emitted nothing — property vacuous", seed)
				}
				bounds := ranking.NewBounds(1)
				for i, s := range scores {
					if err := bounds.Observe(0, s); err != nil {
						var ov *ranking.OrderViolationError
						if !errors.As(err, &ov) {
							t.Fatalf("seed %d: Observe returned untyped error %v", seed, err)
						}
						t.Fatalf("seed %d rank %d: order violation: %v", seed, i, ov)
					}
				}
				// Determinism: an independently built second run must emit
				// the exact same sequence, ties included.
				op2, score2 := c.build(seed)
				again := drainScores(t, op2, score2)
				if len(again) != len(scores) {
					t.Fatalf("seed %d: run lengths differ: %d vs %d", seed, len(scores), len(again))
				}
				for i := range scores {
					if scores[i] != again[i] {
						t.Fatalf("seed %d rank %d: nondeterministic score %v vs %v", seed, i, scores[i], again[i])
					}
				}
			}
		})
	}
}

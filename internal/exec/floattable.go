package exec

import (
	"math"

	"rankopt/internal/relation"
)

// floatTable is the hash join's numeric build table: an open-addressing
// float64 → tuple-group map. Join keys in this engine hash through
// Value.HashKey, which widens every numeric to float64, so the numeric
// common case never needs interface-keyed map machinery — and a flat
// open-addressing layout makes the probe a multiply, a shift, and (almost
// always) one 8-byte load, cheap enough to inline into the vectorized
// probe loop.
//
// Keys are stored as normalized float64 BIT PATTERNS: -0 collapses into +0
// and NaNs canonicalize to nanKeyBits before insert, so bit equality is
// exactly float-key equality for every reachable key and the probe loop
// runs on integer compares (a NaN-aware float compare costs an extra
// parity branch per slot on amd64). One more NaN payload, emptyKeyBits, is
// reserved to mark free slots; no normalized key ever aliases it.
//
// Semantics match Go's map over float64 keys exactly: +0 and -0 are one
// key, and NaN keys are unreachable — NaN probes are dropped before the
// walk (NaN == NaN is false in a map too), so inserted NaN tuples occupy
// table space nothing can ever read, exactly like NaN keys in a built-in
// map. (All NaN build keys share one unreachable group here rather than
// one slot each; no lookup can observe the difference.)
//
// The table grows at ¼ load: unsuccessful probes (the common case on a
// selective join) then walk ~1.2 slots even with linear-probing
// clustering; the halved-footprint ½-load variant measured slower on a
// streaming probe despite its better cache residency.
const (
	emptyKeyBits = 0x7FF8000000000001 // reserved NaN payload: empty slot
	nanKeyBits   = 0x7FF8000000000000 // canonical NaN stored for NaN keys
)

type floatTable struct {
	// keys holds normalized key bit patterns, emptyKeyBits when free.
	keys   []uint64
	groups [][]relation.Tuple
	mask   uint64
	// lo and hi bound the reachable key set — the build side's min-max join
	// filter. A probe key outside [lo, hi] cannot match, so probe loops skip
	// its hash and table walk on two float compares; on selective joins
	// (small build key domain, wide probe domain) that prunes almost every
	// probe. NaN build keys never widen the bounds: they are unreachable.
	// Empty table: lo=+Inf, hi=-Inf rejects every probe.
	lo, hi float64
	// shift turns a mixed hash into a slot index by keeping its TOP bits
	// (64 - log2(capacity)). Multiplicative hashing pushes entropy upward,
	// and float64 encodings of small integers differ only in high mantissa
	// bits — indexing by the product's low bits would collapse such key sets
	// into a handful of clusters.
	shift uint
	// n counts used slots (distinct keys), for the grow threshold.
	n int
}

// maxInitialSlots caps the presized capacity. The hint counts build ROWS,
// an upper bound on distinct keys that a duplicate-heavy build key overshoots
// by orders of magnitude — presizing to it directly would allocate and clear
// megabytes of table for a handful of groups. Past the cap the table doubles
// as keys actually arrive; each grow reinserts only the distinct keys seen,
// a negligible slice of a build that large.
const maxInitialSlots = 1 << 16

// newFloatTable sizes the table for about hint distinct keys.
func newFloatTable(hint int) *floatTable {
	capacity, p := 16, 4
	for capacity < hint*4 && capacity < maxInitialSlots {
		capacity <<= 1
		p++
	}
	return &floatTable{
		keys:   emptyKeys(capacity),
		groups: make([][]relation.Tuple, capacity),
		mask:   uint64(capacity - 1),
		shift:  uint(64 - p),
		lo:     math.Inf(1),
		hi:     math.Inf(-1),
	}
}

// emptyKeys allocates a key array with every slot marked free.
func emptyKeys(capacity int) []uint64 {
	keys := make([]uint64, capacity)
	for i := range keys {
		keys[i] = emptyKeyBits
	}
	return keys
}

// normBits returns the canonical bit pattern of key f: -0 collapses into
// +0 and every NaN becomes nanKeyBits, so equal map keys — and only equal
// map keys, NaN excepted — share a bit pattern.
func normBits(f float64) uint64 {
	if f == 0 {
		return 0
	}
	if f != f {
		return nanKeyBits
	}
	return math.Float64bits(f)
}

// hashBits mixes a normalized key pattern; Fibonacci multiplication after
// a fold-down spreads the regular patterns of widened integers well.
// Callers index with the product's high bits (>> shift), never its low
// bits.
func hashBits(b uint64) uint64 {
	b ^= b >> 33
	return b * 0x9E3779B97F4A7C15
}

// add files t under key f.
func (ft *floatTable) add(f float64, t relation.Tuple) {
	// NaN compares false both ways, so NaN keys leave the filter untouched.
	if f < ft.lo {
		ft.lo = f
	}
	if f > ft.hi {
		ft.hi = f
	}
	b := normBits(f)
	i := hashBits(b) >> ft.shift
	for {
		k := ft.keys[i]
		if k == emptyKeyBits {
			if ft.n*4 >= len(ft.keys) {
				ft.grow()
				ft.addNew(b, t)
				return
			}
			ft.keys[i] = b
			ft.groups[i] = []relation.Tuple{t}
			ft.n++
			return
		}
		if k == b {
			ft.groups[i] = append(ft.groups[i], t)
			return
		}
		i = (i + 1) & ft.mask
	}
}

// addNew inserts a normalized key after grow, when a slot is known to be
// claimable without another threshold check.
func (ft *floatTable) addNew(b uint64, t relation.Tuple) {
	i := hashBits(b) >> ft.shift
	for {
		k := ft.keys[i]
		if k == emptyKeyBits {
			ft.keys[i] = b
			ft.groups[i] = []relation.Tuple{t}
			ft.n++
			return
		}
		if k == b {
			ft.groups[i] = append(ft.groups[i], t)
			return
		}
		i = (i + 1) & ft.mask
	}
}

// grow doubles the table and reinserts every group.
func (ft *floatTable) grow() {
	oldKeys, oldGroups := ft.keys, ft.groups
	capacity := len(oldKeys) * 2
	ft.keys = emptyKeys(capacity)
	ft.groups = make([][]relation.Tuple, capacity)
	ft.mask = uint64(capacity - 1)
	ft.shift--
	ft.n = 0
	for i, g := range oldGroups {
		if g == nil {
			continue
		}
		b := oldKeys[i]
		j := hashBits(b) >> ft.shift
		for ft.keys[j] != emptyKeyBits {
			// Distinct old slots hold distinct keys, so this walk only
			// resolves placement, not equality.
			j = (j + 1) & ft.mask
		}
		ft.keys[j] = b
		ft.groups[j] = g
		ft.n++
	}
}

// get returns the group under key f, nil when absent or f is NaN (NaN
// keys never match, as in a built-in map). The min-max filter settles keys
// outside the reachable range — including every NaN — before hashing.
func (ft *floatTable) get(f float64) []relation.Tuple {
	// Negated so NaN (which compares false both ways) is rejected too.
	if !(f >= ft.lo && f <= ft.hi) {
		return nil
	}
	b := normBits(f)
	i := hashBits(b) >> ft.shift
	for {
		k := ft.keys[i]
		if k == b {
			return ft.groups[i]
		}
		if k == emptyKeyBits {
			return nil
		}
		i = (i + 1) & ft.mask
	}
}

// each calls fn for every (key, group) pair (migration to the generic
// table).
func (ft *floatTable) each(fn func(f float64, g []relation.Tuple)) {
	for i, g := range ft.groups {
		if g != nil {
			fn(math.Float64frombits(ft.keys[i]), g)
		}
	}
}

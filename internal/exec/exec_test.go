package exec

import (
	"sort"
	"testing"

	"rankopt/internal/catalog"
	"rankopt/internal/expr"
	"rankopt/internal/relation"
	"rankopt/internal/workload"
)

// makeRel builds a small relation (id INT, key INT, score FLOAT).
func makeRel(name string, rows [][3]float64) *relation.Relation {
	sch := relation.NewSchema(
		relation.Column{Table: name, Name: "id", Kind: relation.KindInt},
		relation.Column{Table: name, Name: "key", Kind: relation.KindInt},
		relation.Column{Table: name, Name: "score", Kind: relation.KindFloat},
	)
	rel := relation.New(name, sch)
	for _, r := range rows {
		rel.MustAppend(relation.Tuple{
			relation.Int(int64(r[0])), relation.Int(int64(r[1])), relation.Float(r[2]),
		})
	}
	return rel
}

func TestSeqScan(t *testing.T) {
	rel := makeRel("A", [][3]float64{{0, 1, 0.5}, {1, 2, 0.7}})
	got, err := Collect(NewSeqScan(rel))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0][0].AsInt() != 0 || got[1][0].AsInt() != 1 {
		t.Fatalf("SeqScan = %v", got)
	}
}

func TestIndexScanBothDirections(t *testing.T) {
	cat, names := workload.RankedSet(1, workload.RankedConfig{N: 500, Selectivity: 0.1, Seed: 3})
	tab, _ := cat.Table(names[0])
	idx := cat.IndexOn(names[0], "score")

	asc, err := Collect(NewIndexScan(tab.Rel, idx, false))
	if err != nil {
		t.Fatal(err)
	}
	desc, err := Collect(NewIndexScan(tab.Rel, idx, true))
	if err != nil {
		t.Fatal(err)
	}
	if len(asc) != 500 || len(desc) != 500 {
		t.Fatalf("lengths %d/%d", len(asc), len(desc))
	}
	for i := 1; i < len(asc); i++ {
		if asc[i][2].AsFloat() < asc[i-1][2].AsFloat() {
			t.Fatal("ascending scan out of order")
		}
		if desc[i][2].AsFloat() > desc[i-1][2].AsFloat() {
			t.Fatal("descending scan out of order")
		}
	}
	// IndexScan without index errors at Open.
	bad := NewIndexScan(tab.Rel, nil, true)
	if err := bad.Open(); err == nil {
		t.Error("index scan without index should fail")
	}
}

func TestSortOperator(t *testing.T) {
	rel := makeRel("A", [][3]float64{{0, 3, 0.2}, {1, 1, 0.9}, {2, 2, 0.5}, {3, 1, 0.9}})
	s := NewSortByScore(NewSeqScan(rel), expr.Col("A", "score"))
	got, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.9, 0.9, 0.5, 0.2}
	for i, w := range want {
		if got[i][2].AsFloat() != w {
			t.Fatalf("sorted[%d] = %v, want %v", i, got[i][2], w)
		}
	}
	// Stability: the two 0.9 rows keep heap order (ids 1 then 3).
	if got[0][0].AsInt() != 1 || got[1][0].AsInt() != 3 {
		t.Error("sort should be stable")
	}
	// Multi-key: key asc then score desc.
	m := NewSort(NewSeqScan(rel),
		SortKey{E: expr.Col("A", "key")},
		SortKey{E: expr.Col("A", "score"), Desc: true})
	got, err = Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	keys := []int64{1, 1, 2, 3}
	for i, w := range keys {
		if got[i][1].AsInt() != w {
			t.Fatalf("multikey[%d].key = %v, want %v", i, got[i][1], w)
		}
	}
}

func TestFilterProjectLimit(t *testing.T) {
	rel := makeRel("A", [][3]float64{{0, 1, 0.1}, {1, 2, 0.6}, {2, 3, 0.8}})
	f := NewFilter(NewSeqScan(rel), expr.Bin(expr.OpGt, expr.Col("A", "score"), expr.FloatLit(0.5)))
	p := NewProject(f,
		ProjectItem{E: expr.Col("A", "id"), As: "x", Kind: relation.KindInt},
		ProjectItem{E: expr.Bin(expr.OpMul, expr.Col("A", "score"), expr.FloatLit(10)), As: "s10", Kind: relation.KindFloat},
	)
	l := NewLimit(p, 1)
	got, err := Collect(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0].AsInt() != 1 || got[0][1].AsFloat() != 6 {
		t.Fatalf("pipeline = %v", got)
	}
	if l.Schema().Column(0).Name != "x" {
		t.Error("projected schema name")
	}
	if err := NewLimit(p, -1).Open(); err == nil {
		t.Error("negative limit must fail")
	}
}

func TestLimitZeroAndExhaustion(t *testing.T) {
	rel := makeRel("A", [][3]float64{{0, 1, 0.1}})
	got, err := Collect(NewLimit(NewSeqScan(rel), 0))
	if err != nil || len(got) != 0 {
		t.Fatalf("limit 0 = %v, %v", got, err)
	}
	got, err = Collect(NewLimit(NewSeqScan(rel), 10))
	if err != nil || len(got) != 1 {
		t.Fatalf("limit beyond input = %v, %v", got, err)
	}
}

func TestRankAssign(t *testing.T) {
	rel := makeRel("A", [][3]float64{{0, 1, 0.9}, {1, 2, 0.5}})
	r := NewRankAssign(NewSeqScan(rel), expr.Col("A", "score"))
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatal("rank output size")
	}
	if got[0][3].AsFloat() != 0.9 || got[0][4].AsInt() != 1 {
		t.Fatalf("rank row 0 = %v", got[0])
	}
	if got[1][4].AsInt() != 2 {
		t.Fatalf("rank row 1 = %v", got[1])
	}
	if r.Schema().Len() != 5 {
		t.Error("rank schema should add 2 columns")
	}
}

func TestCounterAndHelpers(t *testing.T) {
	rel := makeRel("A", [][3]float64{{0, 1, 0.1}, {1, 2, 0.2}, {2, 3, 0.3}})
	c := NewCounter(NewSeqScan(rel))
	got, err := CollectK(c, 2)
	if err != nil || len(got) != 2 || c.Count() != 2 {
		t.Fatalf("CollectK/Counter: %v %v count=%d", got, err, c.Count())
	}
	if err := ErrOperator("boom").Open(); err == nil {
		t.Error("ErrOperator should fail")
	}
	if _, err := Collect(ErrOperator("boom")); err == nil {
		t.Error("Collect should propagate Open error")
	}
}

// referenceJoin computes the expected equi-join with optional residual by
// brute force.
func referenceJoin(t *testing.T, l, r *relation.Relation, lKeyIdx, rKeyIdx int) []relation.Tuple {
	t.Helper()
	var out []relation.Tuple
	for _, lt := range l.Tuples() {
		for _, rt := range r.Tuples() {
			if lt[lKeyIdx].Equal(rt[rKeyIdx]) {
				out = append(out, lt.Concat(rt))
			}
		}
	}
	return out
}

// canonicalize sorts join output for order-insensitive comparison.
func canonicalize(ts []relation.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.String()
	}
	sort.Strings(out)
	return out
}

func equalSets(a, b []relation.Tuple) bool {
	ca, cb := canonicalize(a), canonicalize(b)
	if len(ca) != len(cb) {
		return false
	}
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

// TestAllJoinsAgree drives every join implementation on random inputs and
// checks they produce exactly the reference result set.
func TestAllJoinsAgree(t *testing.T) {
	a := workload.Ranked(workload.RankedConfig{Name: "A", N: 300, Selectivity: 0.05, Seed: 21})
	b := workload.Ranked(workload.RankedConfig{Name: "B", N: 250, Selectivity: 0.05, Seed: 22})
	want := referenceJoin(t, a, b, 1, 1)
	if len(want) == 0 {
		t.Fatal("degenerate test: no join results")
	}
	pred := expr.Bin(expr.OpEq, expr.Col("A", "key"), expr.Col("B", "key"))
	lKey, rKey := expr.Col("A", "key"), expr.Col("B", "key")

	cat := catalog.New()
	cat.AddTable(b)
	bIdx, err := cat.CreateIndex("B", "key", false)
	if err != nil {
		t.Fatal(err)
	}

	ops := map[string]Operator{
		"nlj":  NewNestedLoopsJoin(NewSeqScan(a), NewSeqScan(b), pred),
		"inlj": NewIndexNLJoin(NewSeqScan(a), b, bIdx, lKey, nil),
		"hash": NewHashJoin(NewSeqScan(a), NewSeqScan(b), lKey, rKey, nil),
		"smj": NewSortMergeJoin(
			NewSort(NewSeqScan(a), SortKey{E: lKey}),
			NewSort(NewSeqScan(b), SortKey{E: rKey}),
			lKey, rKey, nil),
		"shj": NewSymmetricHashJoin(NewSeqScan(a), NewSeqScan(b), lKey, rKey, nil),
	}
	for name, op := range ops {
		got, err := Collect(op)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !equalSets(got, want) {
			t.Errorf("%s: %d results, want %d (sets differ)", name, len(got), len(want))
		}
	}
}

// TestJoinsWithResidual checks residual predicates are applied by every join.
func TestJoinsWithResidual(t *testing.T) {
	a := workload.Ranked(workload.RankedConfig{Name: "A", N: 120, Selectivity: 0.1, Seed: 31})
	b := workload.Ranked(workload.RankedConfig{Name: "B", N: 100, Selectivity: 0.1, Seed: 32})
	res := expr.Bin(expr.OpGt,
		expr.Bin(expr.OpAdd, expr.Col("A", "score"), expr.Col("B", "score")),
		expr.FloatLit(1.0))
	var want []relation.Tuple
	for _, lt := range a.Tuples() {
		for _, rt := range b.Tuples() {
			if lt[1].Equal(rt[1]) && lt[2].AsFloat()+rt[2].AsFloat() > 1.0 {
				want = append(want, lt.Concat(rt))
			}
		}
	}
	lKey, rKey := expr.Col("A", "key"), expr.Col("B", "key")
	pred := expr.And(expr.Bin(expr.OpEq, lKey, rKey), res)

	cat := catalog.New()
	cat.AddTable(b)
	bIdx, _ := cat.CreateIndex("B", "key", false)

	ops := map[string]Operator{
		"nlj":  NewNestedLoopsJoin(NewSeqScan(a), NewSeqScan(b), pred),
		"inlj": NewIndexNLJoin(NewSeqScan(a), b, bIdx, lKey, res),
		"hash": NewHashJoin(NewSeqScan(a), NewSeqScan(b), lKey, rKey, res),
		"smj": NewSortMergeJoin(
			NewSort(NewSeqScan(a), SortKey{E: lKey}),
			NewSort(NewSeqScan(b), SortKey{E: rKey}),
			lKey, rKey, res),
		"shj": NewSymmetricHashJoin(NewSeqScan(a), NewSeqScan(b), lKey, rKey, res),
	}
	for name, op := range ops {
		got, err := Collect(op)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !equalSets(got, want) {
			t.Errorf("%s: %d results, want %d", name, len(got), len(want))
		}
	}
}

func TestHashJoinPreservesProbeOrder(t *testing.T) {
	a := makeRel("A", [][3]float64{{0, 1, 0}, {1, 2, 0}})
	b := makeRel("B", [][3]float64{{0, 2, 0.9}, {1, 1, 0.8}, {2, 2, 0.7}, {3, 1, 0.6}})
	// Probe side (B) streams; output B-ids must appear in B order.
	j := NewHashJoin(NewSeqScan(a), NewSeqScan(b), expr.Col("A", "key"), expr.Col("B", "key"), nil)
	got, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	var bids []int64
	for _, tup := range got {
		bids = append(bids, tup[3].AsInt())
	}
	for i := 1; i < len(bids); i++ {
		if bids[i] < bids[i-1] {
			t.Fatalf("probe order violated: %v", bids)
		}
	}
	if j.MaxTable != 2 {
		t.Errorf("MaxTable = %d", j.MaxTable)
	}
}

func TestNLJPreservesOuterOrder(t *testing.T) {
	a := makeRel("A", [][3]float64{{2, 1, 0}, {0, 1, 0}, {1, 1, 0}})
	b := makeRel("B", [][3]float64{{0, 1, 0}, {1, 1, 0}})
	j := NewNestedLoopsJoin(NewSeqScan(a), NewSeqScan(b),
		expr.Bin(expr.OpEq, expr.Col("A", "key"), expr.Col("B", "key")))
	got, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	wantOuter := []int64{2, 2, 0, 0, 1, 1}
	for i, tup := range got {
		if tup[0].AsInt() != wantOuter[i] {
			t.Fatalf("outer order violated at %d: %v", i, got)
		}
	}
}

func TestSortMergeDuplicateKeysBothSides(t *testing.T) {
	a := makeRel("A", [][3]float64{{0, 5, 0}, {1, 5, 0}, {2, 7, 0}})
	b := makeRel("B", [][3]float64{{0, 5, 0}, {1, 5, 0}, {2, 5, 0}, {3, 8, 0}})
	j := NewSortMergeJoin(
		NewSort(NewSeqScan(a), SortKey{E: expr.Col("A", "key")}),
		NewSort(NewSeqScan(b), SortKey{E: expr.Col("B", "key")}),
		expr.Col("A", "key"), expr.Col("B", "key"), nil)
	got, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	// 2 left × 3 right matches on key 5 = 6 results.
	if len(got) != 6 {
		t.Fatalf("SMJ duplicates: %d results, want 6", len(got))
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	sch := relation.NewSchema(
		relation.Column{Table: "A", Name: "k", Kind: relation.KindInt},
	)
	a := relation.New("A", sch)
	a.MustAppend(relation.Tuple{relation.Null()})
	a.MustAppend(relation.Tuple{relation.Int(1)})
	schB := relation.NewSchema(
		relation.Column{Table: "B", Name: "k", Kind: relation.KindInt},
	)
	b := relation.New("B", schB)
	b.MustAppend(relation.Tuple{relation.Null()})
	b.MustAppend(relation.Tuple{relation.Int(1)})
	j := NewHashJoin(NewSeqScan(a), NewSeqScan(b), expr.Col("A", "k"), expr.Col("B", "k"), nil)
	got, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("NULL keys must not join: got %d results", len(got))
	}
}

func TestIndexRangeScan(t *testing.T) {
	cat, names := workload.RankedSet(1, workload.RankedConfig{N: 300, Selectivity: 0.1, Seed: 55})
	tab, _ := cat.Table(names[0])
	idx := cat.IndexOn(names[0], "key")

	// Closed range [3, 5].
	s := NewIndexRangeScan(tab.Rel, idx, relation.Int(3), relation.Int(5), true, true)
	got, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	prev := int64(-1)
	for _, tup := range tab.Rel.Tuples() {
		if k := tup[1].AsInt(); k >= 3 && k <= 5 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("range scan returned %d, want %d", len(got), want)
	}
	for _, tup := range got {
		k := tup[1].AsInt()
		if k < 3 || k > 5 {
			t.Fatalf("key %d outside range", k)
		}
		if k < prev {
			t.Fatal("range scan out of key order")
		}
		prev = k
	}

	// Open below: key <= 1.
	s = NewIndexRangeScan(tab.Rel, idx, relation.Value{}, relation.Int(1), false, true)
	got, err = Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range got {
		if tup[1].AsInt() > 1 {
			t.Fatal("open-low scan leaked high keys")
		}
	}

	// Open above: key >= 8.
	s = NewIndexRangeScan(tab.Rel, idx, relation.Int(8), relation.Value{}, true, false)
	got, err = Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range got {
		if tup[1].AsInt() < 8 {
			t.Fatal("open-high scan leaked low keys")
		}
	}

	// Missing index errors at Open.
	bad := NewIndexRangeScan(tab.Rel, nil, relation.Int(0), relation.Int(1), true, true)
	if err := bad.Open(); err == nil {
		t.Error("range scan without index must fail")
	}
}

// Error injection: every composite operator must propagate child failures
// instead of swallowing them.
func TestErrorPropagation(t *testing.T) {
	good := makeRel("A", [][3]float64{{0, 1, 0.5}})
	bad := ErrOperator("boom")
	lKey, rKey := expr.Col("A", "key"), expr.Col("A", "key")
	score := expr.Col("A", "score")

	ops := map[string]Operator{
		"sort":    NewSort(bad, SortKey{E: score}),
		"filter":  NewFilter(bad, expr.BoolLit(true)),
		"limit":   NewLimit(bad, 5),
		"rank":    NewRankAssign(bad, score),
		"topk":    NewTopK(bad, score, 3),
		"hashagg": NewHashAggregate(bad, nil, []AggSpec{{Func: AggCount, As: "c"}}),
		"nlj-l":   NewNestedLoopsJoin(bad, NewSeqScan(good), nil),
		"nlj-r":   NewNestedLoopsJoin(NewSeqScan(good), bad, nil),
		"hash-l":  NewHashJoin(bad, NewSeqScan(good), lKey, rKey, nil),
		"hash-r":  NewHashJoin(NewSeqScan(good), bad, lKey, rKey, nil),
		"smj-l":   NewSortMergeJoin(bad, NewSeqScan(good), lKey, rKey, nil),
		"shj-l":   NewSymmetricHashJoin(bad, NewSeqScan(good), lKey, rKey, nil),
		"hrjn-l":  NewHRJN(bad, NewSeqScan(good), score, score, lKey, rKey, nil),
		"hrjn-r":  NewHRJN(NewSeqScan(good), bad, score, score, lKey, rKey, nil),
		"nrjn-l":  NewNRJN(bad, NewSeqScan(good), score, score, nil),
		"nrjn-r":  NewNRJN(NewSeqScan(good), bad, score, score, nil),
	}
	for name, op := range ops {
		if _, err := Collect(op); err == nil {
			t.Errorf("%s: child failure swallowed", name)
		}
	}
	mw, err := NewMultiHRJN([]Operator{bad, NewSeqScan(good)},
		[]expr.Expr{score, score}, []expr.Expr{lKey, rKey})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(mw); err == nil {
		t.Error("multihrjn: child failure swallowed")
	}
}

// Binding failures (unknown columns) must surface at Open, not panic.
func TestBindErrorsSurfaceAtOpen(t *testing.T) {
	rel := makeRel("A", [][3]float64{{0, 1, 0.5}})
	badCol := expr.Col("Z", "nope")
	ops := map[string]Operator{
		"filter":  NewFilter(NewSeqScan(rel), expr.Bin(expr.OpGt, badCol, expr.IntLit(0))),
		"sort":    NewSort(NewSeqScan(rel), SortKey{E: badCol}),
		"project": NewProject(NewSeqScan(rel), ProjectItem{E: badCol, As: "x"}),
		"rank":    NewRankAssign(NewSeqScan(rel), badCol),
		"topk":    NewTopK(NewSeqScan(rel), badCol, 2),
		"hrjn": NewHRJN(NewSeqScan(rel), NewSeqScan(rel),
			badCol, badCol, badCol, badCol, nil),
	}
	for name, op := range ops {
		if err := op.Open(); err == nil {
			t.Errorf("%s: bad column accepted at Open", name)
		}
	}
}

func TestTASelectMatchesJoinReference(t *testing.T) {
	cat, names := workload.Corpus(workload.CorpusConfig{Objects: 1500, Features: 3, Seed: 61})
	weights := []float64{0.5, 0.3, 0.2}
	inputs := make([]TAInput, len(names))
	for i, name := range names {
		tab, _ := cat.Table(name)
		inputs[i] = TAInput{
			Rel:      tab.Rel,
			ScoreIdx: cat.IndexOn(name, "score"),
			IDIdx:    cat.IndexOn(name, "id"),
			ScorePos: 1, IDPos: 0,
			Weight: weights[i],
		}
	}
	const k = 8
	ta, err := NewTASelect(inputs, k)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(ta)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != k {
		t.Fatalf("rows = %d", len(got))
	}
	// Reference: brute-force combined scores by object id.
	t0, _ := cat.Table(names[0])
	t1, _ := cat.Table(names[1])
	t2, _ := cat.Table(names[2])
	var ref []float64
	for i := 0; i < 1500; i++ {
		ref = append(ref, 0.5*t0.Rel.Tuple(i)[1].AsFloat()+
			0.3*t1.Rel.Tuple(i)[1].AsFloat()+0.2*t2.Rel.Tuple(i)[1].AsFloat())
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ref)))
	for i, row := range got {
		s := 0.5*row[1].AsFloat() + 0.3*row[3].AsFloat() + 0.2*row[5].AsFloat()
		if mathAbs(s-ref[i]) > 1e-9 {
			t.Fatalf("rank %d: %v, want %v", i, s, ref[i])
		}
	}
	// Early-out: TA must not read all 3*1500 entries.
	if ta.AccessStats().TotalSorted() >= 4500 {
		t.Errorf("TA did no early-out: %d sorted accesses", ta.AccessStats().TotalSorted())
	}
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestTASelectSkipsPartialObjects(t *testing.T) {
	// Object 1 is missing from B: it must not appear even though its
	// aggregate-with-zeros might rank.
	mk := func(name string, ids []int64, scores []float64) TAInput {
		sch := relation.NewSchema(
			relation.Column{Table: name, Name: "id", Kind: relation.KindInt},
			relation.Column{Table: name, Name: "score", Kind: relation.KindFloat},
		)
		rel := relation.New(name, sch)
		for i := range ids {
			rel.MustAppend(relation.Tuple{relation.Int(ids[i]), relation.Float(scores[i])})
		}
		cat := catalog.New()
		cat.AddTable(rel)
		si, _ := cat.CreateIndex(name, "score", false)
		ii, _ := cat.CreateIndex(name, "id", false)
		return TAInput{Rel: rel, ScoreIdx: si, IDIdx: ii, ScorePos: 1, IDPos: 0, Weight: 1}
	}
	a := mk("A", []int64{0, 1, 2}, []float64{0.5, 0.99, 0.4})
	b := mk("B", []int64{0, 2}, []float64{0.6, 0.5})
	ta, err := NewTASelect([]TAInput{a, b}, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(ta)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("rows = %d", len(got))
	}
	for _, row := range got {
		if row[0].AsInt() == 1 {
			t.Fatal("object missing from B must not join")
		}
	}
	// Best full object: id 0 (0.5+0.6=1.1) then id 2 (0.9).
	if got[0][0].AsInt() != 0 || got[1][0].AsInt() != 2 {
		t.Fatalf("order = %v, %v", got[0][0], got[1][0])
	}
}

func TestTASelectValidation(t *testing.T) {
	if _, err := NewTASelect(nil, 5); err == nil {
		t.Error("no inputs must fail")
	}
	cat, names := workload.Corpus(workload.CorpusConfig{Objects: 10, Features: 1, Seed: 1})
	tab, _ := cat.Table(names[0])
	in := TAInput{Rel: tab.Rel, ScoreIdx: cat.IndexOn(names[0], "score"),
		IDIdx: cat.IndexOn(names[0], "id"), ScorePos: 1, IDPos: 0, Weight: 1}
	if _, err := NewTASelect([]TAInput{in}, 0); err == nil {
		t.Error("k=0 must fail")
	}
	bad := in
	bad.IDIdx = nil
	if _, err := NewTASelect([]TAInput{bad}, 3); err == nil {
		t.Error("missing index must fail")
	}
}

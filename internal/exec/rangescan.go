package exec

import (
	"fmt"

	"rankopt/internal/catalog"
	"rankopt/internal/relation"
)

// IndexRangeScan reads the tuples whose index key falls in [Lo, Hi] (each
// bound optional, both inclusive) in ascending key order. The optimizer uses
// it for sargable filters — `col >= c`, `col = c`, ... — touching only the
// matching fraction of an indexed relation; strict inequalities keep the
// original predicate as a residual filter above the scan.
type IndexRangeScan struct {
	Rel *relation.Relation
	Idx *catalog.Index
	// Lo and Hi bound the scanned key range when HasLo / HasHi are set.
	Lo, Hi       relation.Value
	HasLo, HasHi bool

	it interface {
		Next() (relation.Value, int, bool)
	}
	done bool
}

// NewIndexRangeScan constructs the scan.
func NewIndexRangeScan(rel *relation.Relation, idx *catalog.Index, lo, hi relation.Value, hasLo, hasHi bool) *IndexRangeScan {
	return &IndexRangeScan{Rel: rel, Idx: idx, Lo: lo, Hi: hi, HasLo: hasLo, HasHi: hasHi}
}

// Schema implements Operator.
func (s *IndexRangeScan) Schema() *relation.Schema { return s.Rel.Schema() }

// Open implements Operator.
func (s *IndexRangeScan) Open() error {
	if s.Idx == nil || s.Idx.Tree == nil {
		return fmt.Errorf("exec: index range scan without index on %s", s.Rel.Name)
	}
	if s.HasLo {
		s.it = s.Idx.Tree.AscendFrom(s.Lo)
	} else {
		s.it = s.Idx.Tree.Ascend()
	}
	s.done = false
	return nil
}

// Next implements Operator.
func (s *IndexRangeScan) Next() (relation.Tuple, bool, error) {
	if s.done {
		return nil, false, nil
	}
	k, rid, ok := s.it.Next()
	if !ok {
		s.done = true
		return nil, false, nil
	}
	if s.HasHi && k.Compare(s.Hi) > 0 {
		s.done = true
		return nil, false, nil
	}
	return s.Rel.Tuple(rid), true, nil
}

// Close implements Operator.
func (s *IndexRangeScan) Close() error {
	s.it = nil
	return nil
}

package exec

import (
	"math/rand"
	"testing"

	"rankopt/internal/expr"
	"rankopt/internal/relation"
)

// buildRankedInput generates n tuples (key, score) with keys cycling mod
// `mod` and scores strictly descending, the input contract of every rank
// operator here.
func buildRankedInput(n, mod int, seed int64) (*relation.Schema, []relation.Tuple) {
	sch := relation.NewSchema(
		relation.Column{Table: "A", Name: "key", Kind: relation.KindInt},
		relation.Column{Table: "A", Name: "score", Kind: relation.KindFloat},
	)
	tuples := make([]relation.Tuple, n)
	for i := 0; i < n; i++ {
		tuples[i] = relation.Tuple{
			relation.Int(int64((i*7 + int(seed)) % mod)),
			relation.Float(float64(n - i)),
		}
	}
	return sch, tuples
}

// TestHRJNAllocsPerTuple pins the steady-state allocation rate of the HRJN
// hot path. Before the pooled/hand-rolled-heap rewrite this workload cost
// 13.5 allocs per emitted tuple (container/heap boxing every rankItem, a
// fresh output tuple per candidate, queue slots never zeroed); after it,
// ~10.3. The bound sits between the two so any regression back toward
// per-item boxing fails loudly while normal jitter does not.
func TestHRJNAllocsPerTuple(t *testing.T) {
	lsch, ltups := buildRankedInput(4000, 200, 1)
	rsch, rtups := buildRankedInput(4000, 200, 3)
	const k = 100
	var emitted int
	allocs := testing.AllocsPerRun(5, func() {
		j := NewHRJN(
			FromTuples(lsch, ltups), FromTuples(rsch, rtups),
			expr.Col("A", "score"), expr.Col("A", "score"),
			expr.Col("A", "key"), expr.Col("A", "key"), nil)
		j.SizeHintL, j.SizeHintR, j.QueueHint = 400, 400, 1024
		out, err := CollectK(j, k)
		if err != nil {
			t.Fatal(err)
		}
		emitted = len(out)
	})
	if emitted != k {
		t.Fatalf("emitted %d tuples, want %d", emitted, k)
	}
	perTuple := allocs / float64(emitted)
	t.Logf("HRJN: %.1f allocs/run, %.2f allocs/emitted tuple", allocs, perTuple)
	if perTuple > 12.0 {
		t.Errorf("HRJN hot path allocates %.2f/tuple, budget 12.0 (pre-optimization was 13.5)", perTuple)
	}
}

// TestTopKAllocs pins TopK's allocation count on a shuffled input (shuffled
// so the bounded heap actually churns: a descending input never replaces the
// root). Before the rewrite the same workload cost ~2 allocations per heap
// operation through container/heap's any-boxing — hundreds per run; now the
// cost is the heap backing array, the sorted copy, and the output slice,
// independent of input size.
func TestTopKAllocs(t *testing.T) {
	sch, tups := buildRankedInput(4000, 200, 1)
	rng := rand.New(rand.NewSource(99))
	rng.Shuffle(len(tups), func(i, j int) { tups[i], tups[j] = tups[j], tups[i] })
	const k = 50
	var emitted int
	allocs := testing.AllocsPerRun(5, func() {
		tk := NewTopK(FromTuples(sch, tups), expr.Col("A", "score"), k)
		out, err := Collect(tk)
		if err != nil {
			t.Fatal(err)
		}
		emitted = len(out)
	})
	if emitted != k {
		t.Fatalf("emitted %d tuples, want %d", emitted, k)
	}
	t.Logf("TopK: %.1f allocs/run over %d inputs", allocs, len(tups))
	if allocs > 40 {
		t.Errorf("TopK allocates %.1f/run, budget 40 (pre-optimization was ~80 on an easier input)", allocs)
	}
}

// TestRankQueueReleasesPoppedTuples verifies the GC-retention fix: popping
// must zero the vacated backing slot so emitted tuples are not pinned by the
// queue's capacity for the rest of the operator's life.
func TestRankQueueReleasesPoppedTuples(t *testing.T) {
	var q rankQueue
	for i := 0; i < 8; i++ {
		q.push(rankItem{score: float64(i), seq: i, tuple: relation.Tuple{relation.Int(int64(i))}})
	}
	for i := 0; i < 3; i++ {
		q.pop()
	}
	// The vacated slots sit between len and the original length.
	s := q[:8]
	for i := 5; i < 8; i++ {
		if s[i].tuple != nil {
			t.Errorf("popped slot %d still references its tuple", i)
		}
	}
}

package exec

import (
	"math"
	"sort"
	"testing"

	"rankopt/internal/expr"
	"rankopt/internal/relation"
	"rankopt/internal/workload"
)

// multiFixture builds m ranked relations and the operator inputs.
func multiFixture(t *testing.T, m, n int, sel float64, seed int64) ([]*relation.Relation, *MultiHRJN) {
	t.Helper()
	rels := make([]*relation.Relation, m)
	inputs := make([]Operator, m)
	scores := make([]expr.Expr, m)
	keys := make([]expr.Expr, m)
	for i := 0; i < m; i++ {
		name := string(rune('A' + i))
		rels[i] = workload.Ranked(workload.RankedConfig{
			Name: name, N: n, Selectivity: sel, Seed: seed + int64(i),
		})
		inputs[i] = rankedScan(rels[i])
		scores[i] = expr.Col(name, "score")
		keys[i] = expr.Col(name, "key")
	}
	j, err := NewMultiHRJN(inputs, scores, keys)
	if err != nil {
		t.Fatal(err)
	}
	return rels, j
}

// refMultiTopK brute-forces the top-k combined scores of the m-way
// equi-join on key.
func refMultiTopK(rels []*relation.Relation, k int) []float64 {
	// Bucket by key per relation.
	buckets := make([]map[int64][]float64, len(rels))
	for i, r := range rels {
		buckets[i] = map[int64][]float64{}
		for _, tup := range r.Tuples() {
			key := tup[1].AsInt()
			buckets[i][key] = append(buckets[i][key], tup[2].AsFloat())
		}
	}
	var scores []float64
	var cross func(key int64, slot int, acc float64)
	cross = func(key int64, slot int, acc float64) {
		if slot == len(rels) {
			scores = append(scores, acc)
			return
		}
		for _, s := range buckets[slot][key] {
			cross(key, slot+1, acc+s)
		}
	}
	for key, s0s := range buckets[0] {
		for _, s0 := range s0s {
			cross(key, 1, s0)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	if len(scores) > k {
		scores = scores[:k]
	}
	return scores
}

func combinedScoreM(tup relation.Tuple, m int) float64 {
	// Each input contributes 3 columns (id, key, score); score at offset 2.
	total := 0.0
	for i := 0; i < m; i++ {
		total += tup[i*3+2].AsFloat()
	}
	return total
}

func TestMultiHRJNTopKMatchesReference(t *testing.T) {
	for _, m := range []int{2, 3, 4} {
		rels, j := multiFixture(t, m, 250, 0.05, 900+int64(m))
		k := 12
		got, err := CollectK(j, k)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		want := refMultiTopK(rels, k)
		if len(got) != len(want) {
			t.Fatalf("m=%d: %d results, want %d", m, len(got), len(want))
		}
		for i := range want {
			if math.Abs(combinedScoreM(got[i], m)-want[i]) > 1e-9 {
				t.Fatalf("m=%d rank %d: %v, want %v", m, i, combinedScoreM(got[i], m), want[i])
			}
		}
	}
}

func TestMultiHRJNOutputOrdered(t *testing.T) {
	_, j := multiFixture(t, 3, 300, 0.05, 950)
	got, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, tup := range got {
		s := combinedScoreM(tup, 3)
		if s > prev+1e-9 {
			t.Fatal("MultiHRJN output not descending")
		}
		prev = s
	}
}

func TestMultiHRJNEarlyOut(t *testing.T) {
	_, j := multiFixture(t, 3, 4000, 0.02, 970)
	if _, err := CollectK(j, 5); err != nil {
		t.Fatal(err)
	}
	for i, d := range j.Depths() {
		if d == 0 || d >= 4000 {
			t.Fatalf("input %d depth %d: no early-out", i, d)
		}
	}
	if j.MaxQueue() == 0 {
		t.Error("queue high-water not recorded")
	}
}

func TestMultiHRJNAgreesWithBinaryTree(t *testing.T) {
	rels, j := multiFixture(t, 3, 300, 0.05, 990)
	k := 15
	got, err := CollectK(j, k)
	if err != nil {
		t.Fatal(err)
	}
	// Binary composition: HRJN(HRJN(A,B),C).
	ab := NewHRJN(rankedScan(rels[0]), rankedScan(rels[1]),
		expr.Col("A", "score"), expr.Col("B", "score"),
		expr.Col("A", "key"), expr.Col("B", "key"), nil)
	top := NewHRJN(ab, rankedScan(rels[2]),
		expr.Sum(
			expr.ScoreTerm{Weight: 1, E: expr.Col("A", "score")},
			expr.ScoreTerm{Weight: 1, E: expr.Col("B", "score")},
		),
		expr.Col("C", "score"),
		expr.Col("A", "key"), expr.Col("C", "key"), nil)
	want, err := CollectK(top, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("m-way %d results, binary %d", len(got), len(want))
	}
	for i := range want {
		ws := want[i][2].AsFloat() + want[i][5].AsFloat() + want[i][8].AsFloat()
		if math.Abs(combinedScoreM(got[i], 3)-ws) > 1e-9 {
			t.Fatalf("rank %d: m-way %v vs binary %v", i, combinedScoreM(got[i], 3), ws)
		}
	}
}

func TestMultiHRJNValidation(t *testing.T) {
	rel := workload.Ranked(workload.RankedConfig{Name: "A", N: 10, Selectivity: 0.5, Seed: 1})
	if _, err := NewMultiHRJN([]Operator{rankedScan(rel)},
		[]expr.Expr{expr.Col("A", "score")}, []expr.Expr{expr.Col("A", "key")}); err == nil {
		t.Error("single input must be rejected")
	}
	if _, err := NewMultiHRJN(
		[]Operator{rankedScan(rel), rankedScan(rel)},
		[]expr.Expr{expr.Col("A", "score")},
		[]expr.Expr{expr.Col("A", "key"), expr.Col("A", "key")}); err == nil {
		t.Error("arity mismatch must be rejected")
	}
}

func TestMultiHRJNContractViolation(t *testing.T) {
	a := makeRel("A", [][3]float64{{0, 1, 0.1}, {1, 1, 0.9}}) // ascending
	b := makeRel("B", [][3]float64{{0, 1, 0.5}})
	j, err := NewMultiHRJN(
		[]Operator{NewSeqScan(a), rankedScan(b)},
		[]expr.Expr{expr.Col("A", "score"), expr.Col("B", "score")},
		[]expr.Expr{expr.Col("A", "key"), expr.Col("B", "key")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(j); err == nil {
		t.Fatal("unordered input must be detected")
	}
}

func TestMultiHRJNEmptyInput(t *testing.T) {
	a := makeRel("A", [][3]float64{{0, 1, 0.5}})
	b := makeRel("B", nil)
	j, err := NewMultiHRJN(
		[]Operator{rankedScan(a), rankedScan(b)},
		[]expr.Expr{expr.Col("A", "score"), expr.Col("B", "score")},
		[]expr.Expr{expr.Col("A", "key"), expr.Col("B", "key")})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(j)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty input join = %v, %v", got, err)
	}
}

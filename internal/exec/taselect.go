package exec

import (
	"fmt"

	"rankopt/internal/catalog"
	"rankopt/internal/ranking"
	"rankopt/internal/relation"
)

// TAInput describes one ranked list feeding a TASelect: the relation, a
// descending-capable index on its score column, an index on its (unique) id
// column for random access, and the list's weight in the combining function.
type TAInput struct {
	Rel      *relation.Relation
	ScoreIdx *catalog.Index
	IDIdx    *catalog.Index
	// ScorePos and IDPos are the column positions within Rel's schema.
	ScorePos, IDPos int
	Weight          float64
}

// TASelect answers a top-k selection with Fagin's Threshold Algorithm: all
// inputs rank the same objects (joined on a unique id), so instead of
// joining, the operator walks each score index in descending order and
// randomly probes the others, stopping at the TA threshold. It produces the
// same tuples as the m-way id-join ranked by combined score — but an object
// missing from any input is not a join result, so such TA answers are
// discarded and the algorithm retries with a doubled k until the demand is
// met or the inputs are exhausted.
type TASelect struct {
	Inputs []TAInput
	// K is the number of ranked results to produce.
	K int

	schema *relation.Schema
	out    []relation.Tuple
	pos    int
	stats  ranking.Stats
}

// NewTASelect constructs the operator.
func NewTASelect(inputs []TAInput, k int) (*TASelect, error) {
	if len(inputs) < 1 {
		return nil, fmt.Errorf("exec: TASelect needs inputs")
	}
	if k <= 0 {
		return nil, fmt.Errorf("exec: TASelect needs positive k, got %d", k)
	}
	sch := inputs[0].Rel.Schema()
	for _, in := range inputs[1:] {
		sch = sch.Concat(in.Rel.Schema())
	}
	for i, in := range inputs {
		if in.ScoreIdx == nil || in.IDIdx == nil {
			return nil, fmt.Errorf("exec: TASelect input %d lacks indexes", i)
		}
	}
	return &TASelect{Inputs: inputs, K: k, schema: sch}, nil
}

// Schema implements Operator.
func (t *TASelect) Schema() *relation.Schema { return t.schema }

// AccessStats returns the sorted/random access counts of the last Open.
func (t *TASelect) AccessStats() ranking.Stats { return t.stats }

// taSource adapts one input to the ranking package's Source interface.
type taSource struct {
	in TAInput
	it interface {
		Next() (relation.Value, int, bool)
	}
}

func newTASource(in TAInput) *taSource {
	return &taSource{in: in, it: in.ScoreIdx.Tree.Descend()}
}

// Next implements ranking.SortedAccess.
func (s *taSource) Next() (int64, float64, bool) {
	for {
		_, rid, ok := s.it.Next()
		if !ok {
			return 0, 0, false
		}
		tup := s.in.Rel.Tuple(rid)
		id := tup[s.in.IDPos]
		score := tup[s.in.ScorePos]
		if id.IsNull() || score.IsNull() {
			continue
		}
		return id.AsInt(), score.AsFloat(), true
	}
}

// Probe implements ranking.RandomAccess.
func (s *taSource) Probe(id int64) (float64, bool) {
	rids := s.in.IDIdx.Tree.Lookup(relation.Int(id))
	if len(rids) == 0 {
		return 0, false
	}
	v := s.in.Rel.Tuple(rids[0])[s.in.ScorePos]
	if v.IsNull() {
		return 0, false
	}
	return v.AsFloat(), true
}

// Open implements Operator: runs TA, materializes the joined top-k rows.
func (t *TASelect) Open() error {
	maxK := 0
	for _, in := range t.Inputs {
		if c := in.Rel.Cardinality(); c > maxK {
			maxK = c
		}
	}
	weights := make([]float64, len(t.Inputs))
	for i, in := range t.Inputs {
		weights[i] = in.Weight
	}
	ask := t.K
	for {
		sources := make([]ranking.Source, len(t.Inputs))
		for i, in := range t.Inputs {
			sources[i] = newTASource(in)
		}
		results, stats, err := ranking.TA(sources, weights, ask)
		if err != nil {
			return err
		}
		t.stats = stats
		t.out = t.out[:0]
		for _, r := range results {
			row, ok := t.fetchRow(r.ID)
			if !ok {
				continue // object absent from some input: not a join result
			}
			t.out = append(t.out, row)
			if len(t.out) == t.K {
				break
			}
		}
		if len(t.out) >= t.K || ask >= maxK || len(results) < ask {
			break
		}
		ask *= 2
		if ask > maxK {
			ask = maxK
		}
	}
	t.pos = 0
	return nil
}

// fetchRow assembles the joined tuple for an object id; ok=false when the
// object is missing from any input.
func (t *TASelect) fetchRow(id int64) (relation.Tuple, bool) {
	out := make(relation.Tuple, 0, t.schema.Len())
	for _, in := range t.Inputs {
		rids := in.IDIdx.Tree.Lookup(relation.Int(id))
		if len(rids) == 0 {
			return nil, false
		}
		out = append(out, in.Rel.Tuple(rids[0])...)
	}
	return out, true
}

// Next implements Operator.
func (t *TASelect) Next() (relation.Tuple, bool, error) {
	if t.pos >= len(t.out) {
		return nil, false, nil
	}
	row := t.out[t.pos]
	t.pos++
	return row, true, nil
}

// Close implements Operator.
func (t *TASelect) Close() error {
	t.out = nil
	return nil
}

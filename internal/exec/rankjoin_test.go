package exec

import (
	"math"
	"testing"
	"testing/quick"

	"rankopt/internal/expr"
	"rankopt/internal/relation"
	"rankopt/internal/workload"
)

// rankedScan returns an operator over rel sorted descending by score —
// the sorted access path a rank-join input requires.
func rankedScan(rel *relation.Relation) Operator {
	tuples := rel.SortedBy(func(a, b relation.Tuple) bool {
		return a[2].AsFloat() > b[2].AsFloat()
	})
	return FromTuples(rel.Schema(), tuples)
}

// topKReference computes the top-k join results the slow way: full join,
// sort by combined score descending, cut at k. Returns the scores (the
// tuples themselves can tie arbitrarily).
func topKReference(a, b *relation.Relation, k int) []float64 {
	var scores []float64
	for _, lt := range a.Tuples() {
		for _, rt := range b.Tuples() {
			if lt[1].Equal(rt[1]) {
				scores = append(scores, lt[2].AsFloat()+rt[2].AsFloat())
			}
		}
	}
	// Sort descending.
	for i := 1; i < len(scores); i++ {
		for j := i; j > 0 && scores[j] > scores[j-1]; j-- {
			scores[j], scores[j-1] = scores[j-1], scores[j]
		}
	}
	if len(scores) > k {
		scores = scores[:k]
	}
	return scores
}

func combinedScores(t *testing.T, tuples []relation.Tuple) []float64 {
	t.Helper()
	out := make([]float64, len(tuples))
	for i, tup := range tuples {
		// Schema: A(id,key,score) ++ B(id,key,score).
		out[i] = tup[2].AsFloat() + tup[5].AsFloat()
	}
	return out
}

func newTestHRJN(a, b *relation.Relation, strategy PullStrategy) *HRJN {
	j := NewHRJN(rankedScan(a), rankedScan(b),
		expr.Col("A", "score"), expr.Col("B", "score"),
		expr.Col("A", "key"), expr.Col("B", "key"), nil)
	j.Strategy = strategy
	return j
}

// The headline invariant: HRJN's first k results carry exactly the top-k
// combined scores of the full join.
func TestHRJNTopKMatchesReference(t *testing.T) {
	a := workload.Ranked(workload.RankedConfig{Name: "A", N: 400, Selectivity: 0.02, Seed: 51})
	b := workload.Ranked(workload.RankedConfig{Name: "B", N: 400, Selectivity: 0.02, Seed: 52})
	for _, k := range []int{1, 5, 25, 100} {
		want := topKReference(a, b, k)
		for _, strat := range []PullStrategy{Alternate, Adaptive} {
			j := newTestHRJN(a, b, strat)
			got, err := CollectK(j, k)
			if err != nil {
				t.Fatal(err)
			}
			scores := combinedScores(t, got)
			if len(scores) != len(want) {
				t.Fatalf("k=%d strat=%d: %d results, want %d", k, strat, len(scores), len(want))
			}
			for i := range want {
				if math.Abs(scores[i]-want[i]) > 1e-9 {
					t.Fatalf("k=%d strat=%d: score[%d]=%v, want %v", k, strat, i, scores[i], want[i])
				}
			}
		}
	}
}

func TestHRJNEmitsAllResultsWhenDrained(t *testing.T) {
	a := workload.Ranked(workload.RankedConfig{Name: "A", N: 200, Selectivity: 0.05, Seed: 61})
	b := workload.Ranked(workload.RankedConfig{Name: "B", N: 200, Selectivity: 0.05, Seed: 62})
	all := topKReference(a, b, 1<<30)
	j := newTestHRJN(a, b, Alternate)
	got, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(all) {
		t.Fatalf("drained HRJN produced %d, want %d", len(got), len(all))
	}
	scores := combinedScores(t, got)
	for i := 1; i < len(scores); i++ {
		if scores[i] > scores[i-1]+1e-9 {
			t.Fatal("HRJN output not in descending score order")
		}
	}
}

// Early-out: for small k the operator must NOT consume its whole inputs.
func TestHRJNEarlyOut(t *testing.T) {
	a := workload.Ranked(workload.RankedConfig{Name: "A", N: 5000, Selectivity: 0.01, Seed: 71})
	b := workload.Ranked(workload.RankedConfig{Name: "B", N: 5000, Selectivity: 0.01, Seed: 72})
	j := newTestHRJN(a, b, Alternate)
	if _, err := CollectK(j, 10); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.LeftDepth >= 5000 || st.RightDepth >= 5000 {
		t.Fatalf("no early-out: depths %d/%d", st.LeftDepth, st.RightDepth)
	}
	if st.LeftDepth == 0 || st.RightDepth == 0 {
		t.Fatal("depths not recorded")
	}
	if st.MaxQueue == 0 {
		t.Fatal("queue high-water not recorded")
	}
	if st.Emitted != 10 {
		t.Fatalf("Emitted = %d", st.Emitted)
	}
}

func TestHRJNContractViolationDetected(t *testing.T) {
	a := makeRel("A", [][3]float64{{0, 1, 0.2}, {1, 1, 0.9}}) // ascending! violates contract
	b := makeRel("B", [][3]float64{{0, 1, 0.5}})
	j := NewHRJN(NewSeqScan(a), rankedScan(b),
		expr.Col("A", "score"), expr.Col("B", "score"),
		expr.Col("A", "key"), expr.Col("B", "key"), nil)
	_, err := Collect(j)
	if err == nil {
		t.Fatal("HRJN must reject unordered input")
	}
}

func TestHRJNResidualPredicate(t *testing.T) {
	a := workload.Ranked(workload.RankedConfig{Name: "A", N: 150, Selectivity: 0.1, Seed: 81})
	b := workload.Ranked(workload.RankedConfig{Name: "B", N: 150, Selectivity: 0.1, Seed: 82})
	res := expr.Bin(expr.OpNe, expr.Col("A", "id"), expr.Col("B", "id"))
	j := NewHRJN(rankedScan(a), rankedScan(b),
		expr.Col("A", "score"), expr.Col("B", "score"),
		expr.Col("A", "key"), expr.Col("B", "key"), res)
	got, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range got {
		if tup[0].AsInt() == tup[3].AsInt() {
			t.Fatal("residual predicate ignored")
		}
	}
}

func TestHRJNEmptyInputs(t *testing.T) {
	a := makeRel("A", nil)
	b := makeRel("B", [][3]float64{{0, 1, 0.5}})
	j := newTestHRJN(a, b, Alternate)
	got, err := Collect(j)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty join: %v, %v", got, err)
	}
}

func TestNRJNTopKMatchesReference(t *testing.T) {
	a := workload.Ranked(workload.RankedConfig{Name: "A", N: 300, Selectivity: 0.03, Seed: 91})
	b := workload.Ranked(workload.RankedConfig{Name: "B", N: 300, Selectivity: 0.03, Seed: 92})
	pred := expr.Bin(expr.OpEq, expr.Col("A", "key"), expr.Col("B", "key"))
	for _, k := range []int{1, 10, 50} {
		want := topKReference(a, b, k)
		// NRJN's inner need not be sorted: feed it heap order.
		j := NewNRJN(rankedScan(a), NewSeqScan(b),
			expr.Col("A", "score"), expr.Col("B", "score"), pred)
		got, err := CollectK(j, k)
		if err != nil {
			t.Fatal(err)
		}
		scores := combinedScores(t, got)
		if len(scores) != len(want) {
			t.Fatalf("k=%d: %d results, want %d", k, len(scores), len(want))
		}
		for i := range want {
			if math.Abs(scores[i]-want[i]) > 1e-9 {
				t.Fatalf("k=%d: score[%d]=%v, want %v", k, i, scores[i], want[i])
			}
		}
	}
}

func TestNRJNEarlyOutOnOuter(t *testing.T) {
	a := workload.Ranked(workload.RankedConfig{Name: "A", N: 3000, Selectivity: 0.01, Seed: 101})
	b := workload.Ranked(workload.RankedConfig{Name: "B", N: 3000, Selectivity: 0.01, Seed: 102})
	pred := expr.Bin(expr.OpEq, expr.Col("A", "key"), expr.Col("B", "key"))
	j := NewNRJN(rankedScan(a), NewSeqScan(b),
		expr.Col("A", "score"), expr.Col("B", "score"), pred)
	if _, err := CollectK(j, 5); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.LeftDepth >= 3000 {
		t.Fatalf("NRJN outer early-out failed: depth %d", st.LeftDepth)
	}
	if st.RightDepth != 3000 {
		t.Fatalf("NRJN inner should be fully materialized: %d", st.RightDepth)
	}
}

func TestNRJNContractViolationDetected(t *testing.T) {
	a := makeRel("A", [][3]float64{{0, 1, 0.2}, {1, 1, 0.9}})
	b := makeRel("B", [][3]float64{{0, 1, 0.5}})
	pred := expr.Bin(expr.OpEq, expr.Col("A", "key"), expr.Col("B", "key"))
	j := NewNRJN(NewSeqScan(a), NewSeqScan(b),
		expr.Col("A", "score"), expr.Col("B", "score"), pred)
	if _, err := Collect(j); err == nil {
		t.Fatal("NRJN must reject unordered outer")
	}
}

func TestNRJNNonEquiPredicate(t *testing.T) {
	// NRJN handles arbitrary predicates (no hashing involved).
	a := makeRel("A", [][3]float64{{0, 1, 0.9}, {1, 5, 0.4}})
	b := makeRel("B", [][3]float64{{0, 3, 0.8}, {1, 0, 0.2}})
	pred := expr.Bin(expr.OpLt, expr.Col("A", "key"), expr.Col("B", "key"))
	j := NewNRJN(rankedScan(a), NewSeqScan(b),
		expr.Col("A", "score"), expr.Col("B", "score"), pred)
	got, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	// Matches: A.key=1 < B.key=3 only.
	if len(got) != 1 || got[0][0].AsInt() != 0 {
		t.Fatalf("non-equi NRJN = %v", got)
	}
}

// Property: for random workloads, both rank-join operators report scores in
// non-increasing order and agree with each other on the score sequence.
func TestRankJoinsAgreeProperty(t *testing.T) {
	pred := expr.Bin(expr.OpEq, expr.Col("A", "key"), expr.Col("B", "key"))
	f := func(seed int64) bool {
		n := 120
		a := workload.Ranked(workload.RankedConfig{Name: "A", N: n, Selectivity: 0.05, Seed: seed})
		b := workload.Ranked(workload.RankedConfig{Name: "B", N: n, Selectivity: 0.05, Seed: seed + 1})
		h := newTestHRJN(a, b, Alternate)
		hg, err := Collect(h)
		if err != nil {
			return false
		}
		nr := NewNRJN(rankedScan(a), NewSeqScan(b),
			expr.Col("A", "score"), expr.Col("B", "score"), pred)
		ng, err := Collect(nr)
		if err != nil {
			return false
		}
		if len(hg) != len(ng) {
			return false
		}
		hs := combinedScores(t, hg)
		ns := combinedScores(t, ng)
		for i := range hs {
			if math.Abs(hs[i]-ns[i]) > 1e-9 {
				return false
			}
			if i > 0 && hs[i] > hs[i-1]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Adaptive polling pulls the input under the dominating threshold term.
// With a flat-scored right input, the topL+lastR term dominates, so the
// right input must be dug deeper — and the total consumption must not
// exceed blind alternation, which wastes pulls on the left.
func TestHRJNAdaptiveDepths(t *testing.T) {
	gen := func() (*relation.Relation, *relation.Relation) {
		a := workload.Ranked(workload.RankedConfig{Name: "A", N: 2000, Selectivity: 0.02, Seed: 111, ScoreMin: 0, ScoreMax: 1})
		b := workload.Ranked(workload.RankedConfig{Name: "B", N: 2000, Selectivity: 0.02, Seed: 112, ScoreMin: 0, ScoreMax: 0.1})
		return a, b
	}
	a, b := gen()
	ad := newTestHRJN(a, b, Adaptive)
	if _, err := CollectK(ad, 20); err != nil {
		t.Fatal(err)
	}
	adSt := ad.Stats()
	if adSt.LeftDepth == 0 || adSt.RightDepth == 0 {
		t.Fatal("adaptive depths not recorded")
	}
	if adSt.RightDepth < adSt.LeftDepth {
		t.Errorf("adaptive should dig the flat-scored input deeper: left=%d right=%d",
			adSt.LeftDepth, adSt.RightDepth)
	}
	al := newTestHRJN(a, b, Alternate)
	if _, err := CollectK(al, 20); err != nil {
		t.Fatal(err)
	}
	alSt := al.Stats()
	if adSt.LeftDepth+adSt.RightDepth > alSt.LeftDepth+alSt.RightDepth {
		t.Errorf("adaptive consumed more than alternate: %d vs %d",
			adSt.LeftDepth+adSt.RightDepth, alSt.LeftDepth+alSt.RightDepth)
	}
}

func BenchmarkHRJNTop10(b *testing.B) {
	a := workload.Ranked(workload.RankedConfig{Name: "A", N: 20000, Selectivity: 0.001, Seed: 121})
	bb := workload.Ranked(workload.RankedConfig{Name: "B", N: 20000, Selectivity: 0.001, Seed: 122})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := newTestHRJN(a, bb, Alternate)
		if _, err := CollectK(j, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinThenSortTop10(b *testing.B) {
	a := workload.Ranked(workload.RankedConfig{Name: "A", N: 20000, Selectivity: 0.001, Seed: 121})
	bb := workload.Ranked(workload.RankedConfig{Name: "B", N: 20000, Selectivity: 0.001, Seed: 122})
	score := expr.Sum(
		expr.ScoreTerm{Weight: 1, E: expr.Col("A", "score")},
		expr.ScoreTerm{Weight: 1, E: expr.Col("B", "score")},
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewHashJoin(NewSeqScan(a), NewSeqScan(bb), expr.Col("A", "key"), expr.Col("B", "key"), nil)
		s := NewSortByScore(h, score)
		if _, err := CollectK(s, 10); err != nil {
			b.Fatal(err)
		}
	}
}

package exec

import (
	"context"
	"sort"

	"rankopt/internal/expr"
	"rankopt/internal/relation"
)

// SortKey describes one component of a sort order.
type SortKey struct {
	E    expr.Expr
	Desc bool
}

// Sort materializes its input and emits it ordered by the given keys. It is
// the "glue a sort operator" enforcer of the paper: it turns any plan into
// one with a required (interesting) order at the price of being blocking.
type Sort struct {
	In   Operator
	Keys []SortKey
	// Budget, when set, is charged for every buffered input tuple — the full
	// input, since Sort materializes everything.
	Budget *Budget

	buf  []relation.Tuple
	pos  int
	acct accountant
	// Spilled tracks how many tuples were (conceptually) written to runs;
	// the in-memory implementation records the value for instrumentation
	// parity with the cost model but never actually spills.
	Spilled int
}

// NewSort constructs a sort enforcer.
func NewSort(in Operator, keys ...SortKey) *Sort { return &Sort{In: in, Keys: keys} }

// NewSortByScore sorts descending on a score expression — the common
// enforcer for ranking queries.
func NewSortByScore(in Operator, score expr.Expr) *Sort {
	return NewSort(in, SortKey{E: score, Desc: true})
}

// Schema implements Operator.
func (s *Sort) Schema() *relation.Schema { return s.In.Schema() }

// Open implements Operator: drains the input and sorts.
func (s *Sort) Open() error { return s.OpenCtx(context.Background()) }

// OpenCtx implements OperatorCtx: the blocking drain polls the context on
// the sampling cadence and charges the budget per buffered tuple.
func (s *Sort) OpenCtx(ctx context.Context) error {
	if err := OpenOp(ctx, s.In); err != nil {
		return err
	}
	if err := s.load(ctx); err != nil {
		closeQuietly(s.In)
		return err
	}
	return nil
}

// load binds the sort keys and drains the opened input into the buffer.
func (s *Sort) load(ctx context.Context) error {
	s.acct.releaseAll()
	s.acct.budget = s.Budget
	evals := make([]expr.Eval, len(s.Keys))
	for i, k := range s.Keys {
		ev, err := k.E.Bind(s.In.Schema())
		if err != nil {
			return err
		}
		evals[i] = ev
	}
	s.buf = s.buf[:0]
	s.pos = 0
	var c canceller
	c.reset(ctx)
	type keyed struct {
		t    relation.Tuple
		keys []relation.Value
	}
	var rows []keyed
	for {
		if err := c.poll(); err != nil {
			return err
		}
		t, ok, err := s.In.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := s.acct.charge(1); err != nil {
			return err
		}
		ks := make([]relation.Value, len(evals))
		for i, ev := range evals {
			v, err := ev(t)
			if err != nil {
				return err
			}
			ks[i] = v
		}
		rows = append(rows, keyed{t: t, keys: ks})
	}
	s.Spilled = len(rows)
	sort.SliceStable(rows, func(i, j int) bool {
		for c := range s.Keys {
			cmp := rows[i].keys[c].Compare(rows[j].keys[c])
			if s.Keys[c].Desc {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	s.buf = make([]relation.Tuple, len(rows))
	for i, r := range rows {
		s.buf[i] = r.t
	}
	return nil
}

// Next implements Operator.
func (s *Sort) Next() (relation.Tuple, bool, error) {
	if s.pos >= len(s.buf) {
		return nil, false, nil
	}
	t := s.buf[s.pos]
	s.pos++
	return t, true, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.buf = nil
	s.acct.releaseAll()
	return s.In.Close()
}

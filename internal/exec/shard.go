package exec

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"rankopt/internal/ranking"
	"rankopt/internal/relation"
)

// This file is the scatter-gather serving tier's executor half. ShardScatter
// fans one query out to per-shard operator pipelines, each on its own worker
// goroutine under its own cancellable context; ShardMerge is the coordinator
// operator that gathers the shard streams and applies the paper's Section-3
// bounding argument across shards: every shard emits its local top-k in
// descending score order, so a shard's last-emitted score (or, before it has
// emitted anything, an a-priori ceiling computed from shard statistics)
// bounds everything it can still produce. Once the global top-k buffer is
// full, any shard whose bound cannot beat the k-th buffered score is
// cancelled immediately — and a shard whose ceiling already fails the test is
// never started at all.

// ShardInput is one shard's pipeline as seen by the coordinator.
type ShardInput struct {
	// Op is the root of the shard-local plan. It must emit tuples in
	// descending score order (the engine hands the coordinator per-shard
	// OpLimit→OpRank roots, which do).
	Op Operator
	// Ceiling is an a-priori upper bound on any score the shard can produce,
	// typically derived from shard statistics. It must be a true bound; use
	// math.Inf(1) when unknown. The zero value 0 is a real (and very tight)
	// bound, so forgetting to set Ceiling silently prunes shards — build
	// inputs with ShardInputs when no statistics are available.
	Ceiling float64
}

// ShardInputs wraps bare operators as unbounded shard inputs (Ceiling +Inf).
func ShardInputs(ops ...Operator) []ShardInput {
	ins := make([]ShardInput, len(ops))
	for i, op := range ops {
		ins[i] = ShardInput{Op: op, Ceiling: math.Inf(1)}
	}
	return ins
}

// ShardMsg is one event on a scatter's message stream: a tuple from a shard,
// or the shard's completion (Done=true, with the shard's terminal error if
// any). Per shard, all tuple messages precede its done message.
type ShardMsg struct {
	Shard int
	Tuple relation.Tuple
	Done  bool
	Err   error
}

// ShardScatter runs shard pipelines on worker goroutines and multiplexes
// their output onto one bounded message channel — the fan-out half of the
// scatter-gather tier. Each Started shard gets its own context derived from
// the query context, so Stop cancels exactly one shard while the query keeps
// running, and a query-wide cancellation reaches every worker.
//
// Contract: after Start has been called, the consumer must keep receiving
// from Messages until it has seen a Done message from every started shard
// (workers block sending tuples, but a cancelled worker unblocks via its
// context and its final Done message is always deliverable — the done side of
// the channel budget is reserved per shard). Call Wait after the last Done to
// join the workers. Workers own their pipeline: each worker Opens, drains,
// and Closes its own ShardInput.Op, so no cross-goroutine operator access
// ever happens and a stopped shard releases its resources before reporting
// Done.
type ShardScatter struct {
	inputs  []ShardInput
	tuples  chan ShardMsg
	done    chan ShardMsg
	cancels []context.CancelFunc
	wg      sync.WaitGroup
}

// NewShardScatter prepares a scatter over the inputs with a tuple buffer of
// buf messages — the backpressure credit that keeps fast shards from running
// arbitrarily far ahead of the coordinator.
func NewShardScatter(inputs []ShardInput, buf int) *ShardScatter {
	if buf < 1 {
		buf = 1
	}
	return &ShardScatter{
		inputs: inputs,
		tuples: make(chan ShardMsg, buf),
		// Done messages get a reserved slot per shard so a worker's final
		// report never blocks, even when the consumer is tearing down.
		done:    make(chan ShardMsg, len(inputs)),
		cancels: make([]context.CancelFunc, len(inputs)),
	}
}

// Start launches shard i's worker under a context derived from ctx.
func (s *ShardScatter) Start(ctx context.Context, i int) {
	sctx, cancel := context.WithCancel(ctx)
	s.cancels[i] = cancel
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		err := s.drain(sctx, i)
		s.done <- ShardMsg{Shard: i, Done: true, Err: err}
	}()
}

// drain runs shard i's pipeline to exhaustion (or cancellation), forwarding
// tuples. The worker closes the pipeline on every exit path.
func (s *ShardScatter) drain(ctx context.Context, i int) error {
	op := s.inputs[i].Op
	if err := OpenOp(ctx, op); err != nil {
		return err
	}
	for {
		// One unconditional check per tuple: a Stop must not cost more than
		// one in-flight tuple of extra shard work.
		if err := CtxErr(ctx); err != nil {
			_ = op.Close()
			return err
		}
		t, ok, err := op.Next()
		if err != nil {
			_ = op.Close()
			return err
		}
		if !ok {
			return op.Close()
		}
		select {
		case s.tuples <- ShardMsg{Shard: i, Tuple: t}:
		case <-ctx.Done():
			_ = op.Close()
			return CtxErr(ctx)
		}
	}
}

// Recv returns the next message across all started shards. Tuple messages of
// a shard are delivered before its Done message.
func (s *ShardScatter) Recv() ShardMsg {
	// Bias toward tuples so a shard's queued output is consumed before its
	// completion is observed; once its tuple stream is empty, take the done.
	select {
	case m := <-s.tuples:
		return m
	default:
	}
	select {
	case m := <-s.tuples:
		return m
	case m := <-s.done:
		return m
	}
}

// RecvCtx is Recv that also aborts when ctx is done, returning its typed
// error instead of a message.
func (s *ShardScatter) RecvCtx(ctx context.Context) (ShardMsg, error) {
	select {
	case m := <-s.tuples:
		return m, nil
	default:
	}
	select {
	case m := <-s.tuples:
		return m, nil
	case m := <-s.done:
		return m, nil
	case <-ctx.Done():
		return ShardMsg{}, CtxErr(ctx)
	}
}

// Stop cancels shard i's context. The worker unblocks, closes its pipeline,
// and reports Done (typically with ErrQueryCancelled).
func (s *ShardScatter) Stop(i int) {
	if c := s.cancels[i]; c != nil {
		c()
	}
}

// StopAll cancels every started shard.
func (s *ShardScatter) StopAll() {
	for _, c := range s.cancels {
		if c != nil {
			c()
		}
	}
}

// Wait joins all worker goroutines and releases the per-shard contexts. Only
// call it after every started shard's Done message has been received.
func (s *ShardScatter) Wait() {
	s.wg.Wait()
	for i, c := range s.cancels {
		if c != nil {
			c()
			s.cancels[i] = nil
		}
	}
}

// Shard outcome causes, one per way a shard's stream can end.
const (
	// ShardCausePruned: never started — its a-priori ceiling could not beat
	// the k-th score by the time its launch turn came.
	ShardCausePruned = "pruned"
	// ShardCauseEarlyStopped: cancelled mid-stream once its live bound (last
	// emitted score) fell to or below the k-th score.
	ShardCauseEarlyStopped = "early_stopped"
	// ShardCauseExhausted: ran to completion.
	ShardCauseExhausted = "exhausted"
	// ShardCauseError: its pipeline failed; the error aborted the query.
	ShardCauseError = "error"
)

// ShardOutcome is one shard's row of the coordinator's post-mortem: what the
// statistics promised before the shard ran (the a-priori ceiling), what the
// bounds had proved by the moment the coordinator stopped caring (the live
// bound at prune/stop/exhaust time), how much was actually pulled, and why
// the stream ended. EXPLAIN ANALYZE renders these as the shard table under
// the merge node; ceiling-vs-bound is the shard-level analogue of the
// rank-join est-vs-actual depths.
type ShardOutcome struct {
	Shard   int     `json:"shard"`
	Ceiling float64 `json:"ceiling"`
	// Bound is the shard's upper bound at decision time: the ceiling for a
	// pruned shard, the last-emitted score for a stopped or exhausted one.
	Bound float64 `json:"bound"`
	// Pulled counts the tuples the coordinator consumed from this shard.
	Pulled int `json:"tuples_pulled"`
	// Cause is one of the ShardCause* constants ("" for a shard of a query
	// that aborted before this shard's fate was decided).
	Cause string `json:"cause"`
	// StartAt / EndAt delimit the shard worker's run, for per-shard trace
	// lanes; zero for pruned shards. Coordinator-local, not serialized.
	StartAt time.Time `json:"-"`
	EndAt   time.Time `json:"-"`
}

// ShardMergeStats reports what the coordinator did — the per-query analogue
// of the rank-join depths: how many shards ran at all, how many were stopped
// by the bounding argument, and how much shard output the bounds saved.
type ShardMergeStats struct {
	// Shards is the total shard count; Started of those were launched.
	Shards  int `json:"shards"`
	Started int `json:"started"`
	// Pruned shards were never started: their a-priori ceiling could not beat
	// the k-th score by the time their turn came.
	Pruned int `json:"pruned"`
	// EarlyStopped shards were cancelled mid-stream once their bound fell to
	// or below the k-th score.
	EarlyStopped int `json:"early_stopped"`
	// Exhausted shards ran to completion.
	Exhausted int `json:"exhausted"`
	// TuplesPulled counts shard tuples the coordinator consumed; TuplesSaved
	// counts shard output the bounds avoided (k minus the pull depth, summed
	// over pruned and early-stopped shards).
	TuplesPulled int `json:"tuples_pulled"`
	TuplesSaved  int `json:"tuples_saved"`
	// KthScore is the final k-th (lowest surviving) score, NaN when fewer
	// than one result was produced.
	KthScore float64 `json:"kth_score"`
	// PerShard holds one outcome row per shard, indexed by shard number.
	PerShard []ShardOutcome `json:"per_shard,omitempty"`
}

// mergeEntry is one buffered candidate in the coordinator's top-k heap.
type mergeEntry struct {
	score float64
	shard int
	seq   int
	tuple relation.Tuple
}

// mergeHeap is a min-heap on score keeping the current global top-k; among
// equal scores the later (shard, seq) sorts lower so evictions and the final
// order are deterministic.
type mergeHeap []mergeEntry

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score < h[j].score
	}
	if h[i].shard != h[j].shard {
		return h[i].shard > h[j].shard
	}
	return h[i].seq > h[j].seq
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeEntry)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = mergeEntry{}
	*h = old[:n-1]
	return e
}

// ShardMerge is the coordinator operator: it gathers the shard pipelines
// through a ShardScatter and produces the global top-k in descending score
// order, using ranking.Bounds to stop pulling from — and immediately cancel —
// any shard whose best possible remaining score cannot beat the current k-th
// result. At most StartWidth shards run concurrently; the rest wait in
// descending-ceiling order and are pruned without ever starting when their
// ceiling fails the same test. Like Sort, the merge is a blocking operator:
// the gather runs inside OpenCtx and Next replays the buffered winners.
type ShardMerge struct {
	inputs []ShardInput
	k      int
	// StartWidth caps concurrently running shards; 0 means GOMAXPROCS.
	StartWidth int
	// Progress, when non-nil, receives the gather's live rank-aware progress
	// (buffered count, k-th score vs best live bound, shard liveness) with a
	// few atomic stores per tuple; nil costs one nil compare.
	Progress *Progress
	schema   *relation.Schema
	scoreCol int
	rankCol  int

	acct  accountant
	out   []relation.Tuple
	pos   int
	stats ShardMergeStats
}

// NewShardMerge builds the coordinator over the shard inputs for a global
// top-k of k tuples, charging the merge buffer against budget (nil = no
// limits). Every input must share the shard schema, whose trailing columns
// are the score and rank appended by the shard pipelines' RankAssign; the
// coordinator merges on the score column and rewrites the rank column to the
// global 1..k (per-shard ranks are locally correct only).
func NewShardMerge(inputs []ShardInput, k int, budget *Budget) (*ShardMerge, error) {
	if len(inputs) == 0 {
		return nil, errors.New("exec: ShardMerge needs at least one shard")
	}
	if k <= 0 {
		return nil, fmt.Errorf("exec: ShardMerge k %d must be positive", k)
	}
	schema := inputs[0].Op.Schema()
	scoreCol, rankCol := -1, -1
	for i := schema.Len() - 1; i >= 0; i-- {
		switch schema.Column(i).Name {
		case "score":
			if scoreCol < 0 {
				scoreCol = i
			}
		case "rank":
			if rankCol < 0 {
				rankCol = i
			}
		}
	}
	if scoreCol < 0 {
		return nil, fmt.Errorf("exec: ShardMerge input schema %s has no score column", schema)
	}
	for i, in := range inputs[1:] {
		if in.Op.Schema().Len() != schema.Len() {
			return nil, fmt.Errorf("exec: shard %d schema %s does not match shard 0 schema %s",
				i+1, in.Op.Schema(), schema)
		}
	}
	return &ShardMerge{inputs: inputs, k: k, schema: schema, scoreCol: scoreCol, rankCol: rankCol,
		acct: accountant{budget: budget}}, nil
}

// Schema implements Operator.
func (m *ShardMerge) Schema() *relation.Schema { return m.schema }

// Open implements Operator.
func (m *ShardMerge) Open() error { return m.OpenCtx(context.Background()) }

// Stats returns the coordinator's counters for the last gather. Valid after
// OpenCtx returns (the gather is blocking), including after Close.
func (m *ShardMerge) Stats() ShardMergeStats { return m.stats }

// OpenCtx implements OperatorCtx: the whole scatter-gather runs here. On
// error, every started shard worker has already closed its pipeline and been
// joined, and pending shards were never opened — the Operator contract's
// Open-failure guarantee, extended across goroutines.
func (m *ShardMerge) OpenCtx(ctx context.Context) error {
	m.acct.releaseAll()
	m.out, m.pos = nil, 0
	m.stats = ShardMergeStats{Shards: len(m.inputs), KthScore: math.NaN(),
		PerShard: make([]ShardOutcome, len(m.inputs))}
	for i := range m.stats.PerShard {
		m.stats.PerShard[i] = ShardOutcome{Shard: i, Ceiling: m.inputs[i].Ceiling}
	}
	m.Progress.SetShards(len(m.inputs))
	if err := m.gather(ctx); err != nil {
		m.acct.releaseAll()
		return err
	}
	return nil
}

func (m *ShardMerge) gather(ctx context.Context) error {
	n := len(m.inputs)
	width := m.StartWidth
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}

	bounds := ranking.NewBounds(n)
	for i, in := range m.inputs {
		bounds.SetCeiling(i, in.Ceiling)
	}
	// Launch order: best ceiling first, so the k-th score rises as fast as
	// possible and later shards face the hardest possible test.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return m.inputs[order[a]].Ceiling > m.inputs[order[b]].Ceiling
	})

	buf := 2 * width
	if buf > 2*n {
		buf = 2 * n
	}
	scatter := NewShardScatter(m.inputs, buf)

	var (
		h       mergeHeap
		seq     int
		next    int // cursor into order: shards not yet started or pruned
		running int
		live    = make([]bool, n)
		stopped = make([]bool, n)
		pulled  = make([]int, n)
		failure error
	)
	full := func() bool { return len(h) >= m.k }
	kth := func() float64 { return h[0].score }
	fail := func(err error) {
		if failure == nil {
			failure = err
		}
		scatter.StopAll()
	}
	// beaten reports that shard i cannot contribute to the final top-k.
	beaten := func(i int) bool { return full() && bounds.Upper(i) <= kth() }
	startMore := func() {
		for failure == nil && running < width && next < n {
			i := order[next]
			next++
			if beaten(i) {
				// The bound a pruned shard lost to is its own ceiling; record
				// it before Exhaust collapses Upper(i) to -Inf.
				m.stats.PerShard[i].Bound = bounds.Upper(i)
				m.stats.PerShard[i].Cause = ShardCausePruned
				bounds.Exhaust(i)
				m.stats.Pruned++
				m.stats.TuplesSaved += m.k
				m.Progress.ShardFinished(false)
				continue
			}
			scatter.Start(ctx, i)
			live[i] = true
			running++
			m.stats.Started++
			m.stats.PerShard[i].StartAt = time.Now()
			m.Progress.ShardStarted()
		}
	}
	// reap early-stops every live shard whose bound fell to or below the
	// k-th score: cancel its context now, not at Close.
	reap := func() {
		if !full() {
			return
		}
		for i := 0; i < n; i++ {
			if live[i] && !stopped[i] && bounds.Upper(i) <= kth() {
				m.stats.PerShard[i].Bound = bounds.Upper(i)
				m.stats.PerShard[i].Cause = ShardCauseEarlyStopped
				scatter.Stop(i)
				stopped[i] = true
				m.stats.EarlyStopped++
				if saved := m.k - pulled[i]; saved > 0 {
					m.stats.TuplesSaved += saved
				}
			}
		}
	}

	startMore()
	for running > 0 {
		var msg ShardMsg
		if failure == nil {
			var err error
			msg, err = scatter.RecvCtx(ctx)
			if err != nil {
				fail(err)
				continue
			}
		} else {
			// Aborting: every worker is cancelled; keep draining so each can
			// deliver its remaining tuples and its Done report.
			msg = scatter.Recv()
		}
		if msg.Done {
			running--
			live[msg.Shard] = false
			wasStopped := stopped[msg.Shard]
			out := &m.stats.PerShard[msg.Shard]
			if !wasStopped {
				// Capture the live bound before Exhaust collapses it.
				out.Bound = bounds.Upper(msg.Shard)
			}
			bounds.Exhaust(msg.Shard)
			out.EndAt = time.Now()
			out.Pulled = pulled[msg.Shard]
			switch {
			case msg.Err == nil:
				if !wasStopped {
					m.stats.Exhausted++
					out.Cause = ShardCauseExhausted
				}
				// A stopped shard that still drained cleanly keeps its
				// early_stopped cause: the bound test ended it.
			case wasStopped && errors.Is(msg.Err, ErrQueryCancelled):
				// The stop we asked for; not a query failure.
			default:
				out.Cause = ShardCauseError
				fail(msg.Err)
			}
			m.Progress.ShardFinished(true)
			if failure == nil {
				reap()
				startMore()
			}
			continue
		}
		if failure != nil {
			continue
		}
		if err := m.absorb(msg, bounds, pulled, &h, &seq); err != nil {
			fail(err)
			continue
		}
		reap()
		startMore()
	}
	scatter.Wait()
	if failure != nil {
		return failure
	}
	m.Progress.SetMerging()

	// Assemble the winners: pop ascending, fill descending, copy each tuple
	// and rewrite its rank column to the global rank.
	out := make([]relation.Tuple, len(h))
	for i := len(out) - 1; i >= 0; i-- {
		e := heap.Pop(&h).(mergeEntry)
		t := make(relation.Tuple, len(e.tuple))
		copy(t, e.tuple)
		if m.rankCol >= 0 {
			t[m.rankCol] = relation.Int(int64(i + 1))
		}
		out[i] = t
	}
	m.out = out
	if len(out) > 0 {
		last := out[len(out)-1]
		if v, ok := last[m.scoreCol].Float64(); ok {
			m.stats.KthScore = v
		}
	}
	return nil
}

// absorb folds one shard tuple into the bounds and the top-k heap.
func (m *ShardMerge) absorb(msg ShardMsg, bounds *ranking.Bounds, pulled []int, h *mergeHeap, seq *int) error {
	score := math.Inf(-1) // NULL scores sort after everything, like ORDER BY
	if v := msg.Tuple[m.scoreCol]; !v.IsNull() {
		if f, ok := v.Float64(); ok {
			score = f
		}
	}
	if err := bounds.Observe(msg.Shard, score); err != nil {
		return fmt.Errorf("exec: shard stream broke the descending-order contract: %w", err)
	}
	pulled[msg.Shard]++
	m.stats.TuplesPulled++
	e := mergeEntry{score: score, shard: msg.Shard, seq: *seq, tuple: msg.Tuple}
	*seq++
	if len(*h) < m.k {
		if err := m.acct.charge(1); err != nil {
			return err
		}
		heap.Push(h, e)
	} else if score > (*h)[0].score {
		(*h)[0] = e
		heap.Fix(h, 0)
	}
	if m.Progress != nil {
		m.Progress.SetEmitted(int64(len(*h)))
		if len(*h) >= m.k {
			m.Progress.SetKth((*h)[0].score)
		}
		best := math.Inf(-1)
		for i := range m.inputs {
			if u := bounds.Upper(i); u > best {
				best = u
			}
		}
		m.Progress.SetBound(best)
	}
	return nil
}

// Next implements Operator, replaying the merged winners in rank order.
func (m *ShardMerge) Next() (relation.Tuple, bool, error) {
	if m.pos >= len(m.out) {
		return nil, false, nil
	}
	t := m.out[m.pos]
	m.pos++
	return t, true, nil
}

// Close implements Operator, releasing the buffered winners' budget charge.
func (m *ShardMerge) Close() error {
	m.acct.releaseAll()
	m.out, m.pos = nil, 0
	return nil
}

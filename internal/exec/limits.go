package exec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// This file is the robustness layer of the executor: typed errors for
// cancellation and resource exhaustion, per-query ResourceLimits, and the
// shared atomic Budget that buffering operators (rank-join queues and hash
// tables, the TopK heap, Sort buffers, HashJoin build tables) charge for
// every tuple they hold. A runaway rank-join — deep cL/cR reads when the
// Section 4 depth estimates miss — now fails with a typed error instead of
// growing its queues until the process OOMs.

// Typed failure causes. ErrDeadlineExceeded and ErrQueryCancelled wrap their
// context counterparts so errors.Is works against either name;
// ErrDepthExceeded wraps ErrBudgetExceeded so one errors.Is test classifies
// every resource-limit failure.
var (
	// ErrDeadlineExceeded reports that the query's deadline passed while the
	// operator tree was still executing.
	ErrDeadlineExceeded = fmt.Errorf("exec: query deadline exceeded: %w", context.DeadlineExceeded)
	// ErrQueryCancelled reports that the query's context was cancelled.
	ErrQueryCancelled = fmt.Errorf("exec: query cancelled: %w", context.Canceled)
	// ErrBudgetExceeded reports that the query's buffered-tuple budget ran
	// out.
	ErrBudgetExceeded = errors.New("exec: buffered-tuple budget exceeded")
	// ErrDepthExceeded reports that a rank-join read deeper into one input
	// than the query's per-input depth limit allows.
	ErrDepthExceeded = fmt.Errorf("exec: per-input depth limit exceeded: %w", ErrBudgetExceeded)
)

// ResourceLimits bounds one query's resource use. The zero value disables
// every limit.
type ResourceLimits struct {
	// Deadline, when nonzero, is the wall-clock instant after which the query
	// fails with ErrDeadlineExceeded. Enforcement happens through the context
	// the engine derives before admission, so the deadline covers queue wait.
	Deadline time.Time
	// MaxBufferedTuples caps the tuples buffered across the whole operator
	// tree at any instant: rank-join ranking queues and hash tables, TopK
	// heaps, Sort buffers, and HashJoin build tables all charge one shared
	// budget. Zero means unlimited.
	MaxBufferedTuples int64
	// MaxDepthPerInput caps how many tuples a rank-join may consume from any
	// single input — the direct guard against the runaway-depth failure mode.
	// Zero means unlimited.
	MaxDepthPerInput int64
}

// Enabled reports whether any limit is set.
func (l ResourceLimits) Enabled() bool {
	return !l.Deadline.IsZero() || l.MaxBufferedTuples > 0 || l.MaxDepthPerInput > 0
}

// Budget is the shared per-query accounting the buffering operators charge.
// One Budget serves the whole operator tree, so the cap is global, not
// per-operator. All methods are nil-safe: a nil *Budget means "no limits"
// and costs one pointer test on the hot path.
type Budget struct {
	maxBuffered int64
	maxDepth    int64
	buffered    atomic.Int64
}

// NewBudget builds the budget enforcing l's tuple and depth caps, or nil
// when l sets neither — keeping the unlimited execution path completely
// untouched.
func NewBudget(l ResourceLimits) *Budget {
	if l.MaxBufferedTuples <= 0 && l.MaxDepthPerInput <= 0 {
		return nil
	}
	return &Budget{maxBuffered: l.MaxBufferedTuples, maxDepth: l.MaxDepthPerInput}
}

// Buffered returns the tuples currently charged against the budget.
func (b *Budget) Buffered() int64 {
	if b == nil {
		return 0
	}
	return b.buffered.Load()
}

// charge accounts n newly buffered tuples, failing once the cap is crossed.
// The charge stands even on failure; the caller's accountant releases it at
// Close, so the counter stays consistent while the tree tears down.
func (b *Budget) charge(n int64) error {
	if b == nil {
		return nil
	}
	v := b.buffered.Add(n)
	if b.maxBuffered > 0 && v > b.maxBuffered {
		return fmt.Errorf("exec: %d buffered tuples exceed limit %d: %w", v, b.maxBuffered, ErrBudgetExceeded)
	}
	return nil
}

// release returns n tuples to the budget.
func (b *Budget) release(n int64) {
	if b == nil || n <= 0 {
		return
	}
	b.buffered.Add(-n)
}

// depthOK verifies a rank-join's per-input depth against the cap.
func (b *Budget) depthOK(d int) error {
	if b == nil || b.maxDepth <= 0 || int64(d) <= b.maxDepth {
		return nil
	}
	return fmt.Errorf("exec: input depth %d exceeds limit %d: %w", d, b.maxDepth, ErrDepthExceeded)
}

// accountant tracks one operator's live charges against the shared budget so
// Close (or a re-Open) can return exactly what the operator still holds.
// Charges are recorded before the budget verdict, so a failed charge is
// still released during teardown.
type accountant struct {
	budget  *Budget
	charged int64
}

// charge accounts n tuples the operator now buffers.
func (a *accountant) charge(n int) error {
	if a.budget == nil {
		return nil
	}
	a.charged += int64(n)
	return a.budget.charge(int64(n))
}

// release returns n tuples the operator no longer buffers.
func (a *accountant) release(n int) {
	if a.budget == nil || n <= 0 {
		return
	}
	if int64(n) > a.charged {
		n = int(a.charged)
	}
	a.charged -= int64(n)
	a.budget.release(int64(n))
}

// releaseAll returns every outstanding charge (the Close path).
func (a *accountant) releaseAll() {
	if a.budget != nil && a.charged > 0 {
		a.budget.release(a.charged)
		a.charged = 0
	}
}

// cancelCheckPeriod is the Next-cadence of context polling: one ctx.Err()
// load per cancelCheckPeriod iterations of an operator's internal pull or
// drain loop. Must be a power of two so the test is a mask. At rank-join
// pull rates (~10⁷/s) the worst-case detection latency stays far under the
// acceptance bound of 50 ms.
const cancelCheckPeriod = 64

// CtxErr maps a done context to the executor's typed errors
// (ErrDeadlineExceeded / ErrQueryCancelled); nil context or live context
// return nil.
func CtxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	err := ctx.Err()
	if err == nil {
		return nil
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrDeadlineExceeded
	}
	return ErrQueryCancelled
}

// canceller is the cadence state an operator embeds: poll() returns a typed
// error on the 1-in-cancelCheckPeriod iteration where the stored context
// reports done. reset stores the context at OpenCtx time.
type canceller struct {
	ctx  context.Context
	tick uint32
}

// reset installs the query context (nil behaves like Background).
func (c *canceller) reset(ctx context.Context) {
	c.ctx = ctx
	c.tick = 0
}

// poll checks the context on the sampling cadence. The common case is one
// increment, one mask test, and no interface call.
func (c *canceller) poll() error {
	c.tick++
	if c.tick&(cancelCheckPeriod-1) != 0 {
		return nil
	}
	return CtxErr(c.ctx)
}

// check tests the context unconditionally — the per-batch cadence, where one
// check already covers up to DefaultBatchSize tuples of work.
func (c *canceller) check() error { return CtxErr(c.ctx) }

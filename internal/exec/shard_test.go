package exec

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rankopt/internal/ranking"
	"rankopt/internal/relation"
)

// shardSchema is the shape shard pipelines hand the coordinator: payload
// columns followed by the score and rank RankAssign appends.
func shardSchema() *relation.Schema {
	return relation.NewSchema(
		relation.Column{Table: "T", Name: "id", Kind: relation.KindInt},
		relation.Column{Name: "score", Kind: relation.KindFloat},
		relation.Column{Name: "rank", Kind: relation.KindInt},
	)
}

// shardStream builds a shard input emitting the given scores in order, with
// ids numbered base, base+1, ... and per-shard ranks 1..n.
func shardStream(base int, scores ...float64) Operator {
	tuples := make([]relation.Tuple, len(scores))
	for i, s := range scores {
		tuples[i] = relation.Tuple{
			relation.Int(int64(base + i)), relation.Float(s), relation.Int(int64(i + 1)),
		}
	}
	return FromTuples(shardSchema(), tuples)
}

// descendingForever emits an unbounded strictly descending score stream; only
// the worker's per-tuple context check can stop it. emitted counts tuples
// produced, so tests can prove the early stop actually limited shard work.
type descendingForever struct {
	start   float64
	step    float64
	next    float64
	emitted atomic.Int64
	opens   atomic.Int64
	closes  atomic.Int64
}

func (d *descendingForever) Schema() *relation.Schema { return shardSchema() }
func (d *descendingForever) Open() error              { d.opens.Add(1); d.next = d.start; return nil }
func (d *descendingForever) Close() error             { d.closes.Add(1); return nil }
func (d *descendingForever) Next() (relation.Tuple, bool, error) {
	n := d.emitted.Add(1)
	s := d.next
	d.next -= d.step
	return relation.Tuple{relation.Int(n), relation.Float(s), relation.Int(n)}, true, nil
}

func mergeScores(t *testing.T, out []relation.Tuple) []float64 {
	t.Helper()
	scores := make([]float64, len(out))
	for i, tup := range out {
		v, ok := tup[1].Float64()
		if !ok {
			t.Fatalf("tuple %d has non-numeric score %v", i, tup[1])
		}
		scores[i] = v
	}
	return scores
}

// TestShardMergeMatchesGlobalTopK: merging per-shard descending streams must
// yield exactly the top-k of the union, in descending order with global ranks.
func TestShardMergeMatchesGlobalTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const shards, perShard, k = 5, 40, 12
	var all []float64
	inputs := make([]ShardInput, shards)
	for s := 0; s < shards; s++ {
		scores := make([]float64, perShard)
		for i := range scores {
			scores[i] = rng.Float64() * 100
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
		all = append(all, scores...)
		inputs[s] = ShardInput{Op: shardStream(s*perShard, scores...), Ceiling: scores[0]}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(all)))

	m, err := NewShardMerge(inputs, k, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	got := mergeScores(t, out)
	if len(got) != k {
		t.Fatalf("got %d tuples, want %d", len(got), k)
	}
	for i := range got {
		if got[i] != all[i] {
			t.Fatalf("rank %d: score %v, want %v", i+1, got[i], all[i])
		}
		if r := out[i][2].AsInt(); r != int64(i+1) {
			t.Fatalf("rank %d: rank column %d", i+1, r)
		}
	}
	st := m.Stats()
	if st.Shards != shards || st.KthScore != got[k-1] {
		t.Fatalf("stats %+v, want shards=%d kth=%v", st, shards, got[k-1])
	}
	if st.TuplesPulled+st.TuplesSaved < shards*k && st.Exhausted+st.EarlyStopped+st.Pruned != shards {
		t.Fatalf("shard dispositions don't cover all shards: %+v", st)
	}
}

// TestShardMergeDeterministic: same inputs twice must produce identical
// tuples, including among tied scores.
func TestShardMergeDeterministic(t *testing.T) {
	build := func() []ShardInput {
		return []ShardInput{
			{Op: shardStream(0, 5, 5, 3, 3), Ceiling: 5},
			{Op: shardStream(10, 5, 3, 3, 1), Ceiling: 5},
			{Op: shardStream(20, 5, 5, 5, 3), Ceiling: 5},
		}
	}
	run := func() []string {
		m, err := NewShardMerge(build(), 6, nil)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Collect(m)
		if err != nil {
			t.Fatal(err)
		}
		rows := make([]string, len(out))
		for i, tup := range out {
			rows[i] = tup.String()
		}
		return rows
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs across runs: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestShardMergePrunesByCeiling: with StartWidth 1 and descending-ceiling
// launch order, a shard whose a-priori ceiling cannot beat the k-th score
// must never start — its operator is never opened.
func TestShardMergePrunesByCeiling(t *testing.T) {
	weak := &descendingForever{start: 0.5, step: 0.001}
	inputs := []ShardInput{
		{Op: shardStream(0, 10, 9, 8), Ceiling: 10},
		{Op: weak, Ceiling: 0.5},
	}
	m, err := NewShardMerge(inputs, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.StartWidth = 1
	out, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := mergeScores(t, out); len(got) != 3 || got[2] != 8 {
		t.Fatalf("top-3 = %v", got)
	}
	st := m.Stats()
	if st.Pruned != 1 || st.Started != 1 || st.TuplesSaved < 3 {
		t.Fatalf("stats %+v, want pruned=1 started=1 saved>=3", st)
	}
	if weak.opens.Load() != 0 {
		t.Fatalf("pruned shard was opened %d times", weak.opens.Load())
	}
}

// TestShardMergeEarlyStopsMidStream: a running shard whose last-emitted score
// falls to or below the k-th buffered score must be cancelled promptly — an
// unbounded stream must not be drained past the bound.
func TestShardMergeEarlyStopsMidStream(t *testing.T) {
	weak := &descendingForever{start: 100, step: 1}
	inputs := []ShardInput{
		{Op: shardStream(0, 1000, 999, 998), Ceiling: 1000},
		{Op: weak, Ceiling: math.Inf(1)}, // unknown ceiling: must start
	}
	m, err := NewShardMerge(inputs, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.StartWidth = 2
	out, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := mergeScores(t, out); got[0] != 1000 || got[2] != 998 {
		t.Fatalf("top-3 = %v", got)
	}
	st := m.Stats()
	// The unbounded shard must be stopped; the finite shard may also count as
	// early-stopped when its final tuple drops its bound exactly to the k-th.
	if st.EarlyStopped < 1 || st.Started != 2 {
		t.Fatalf("stats %+v, want started=2 early_stopped>=1", st)
	}
	// The worker checks its context once per tuple, and channel backpressure
	// bounds how far ahead it can run; well under 100 tuples either way.
	if n := weak.emitted.Load(); n >= 100 {
		t.Fatalf("early-stopped shard emitted %d tuples", n)
	}
	if weak.opens.Load() != 1 || weak.closes.Load() != 1 {
		t.Fatalf("open/close %d/%d, want 1/1", weak.opens.Load(), weak.closes.Load())
	}
}

// TestShardMergeMonotonicViolation: a shard stream that rises above its own
// observed bound breaks the correctness argument and must fail loudly with
// the typed ranking.OrderViolationError — a silently stale bound could prune
// a shard that still beats the k-th score.
func TestShardMergeMonotonicViolation(t *testing.T) {
	inputs := ShardInputs(shardStream(0, 5, 3, 9))
	m, err := NewShardMerge(inputs, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	openErr := m.Open()
	if openErr == nil || !strings.Contains(openErr.Error(), "descend") {
		t.Fatalf("Open = %v, want monotonicity error", openErr)
	}
	var ov *ranking.OrderViolationError
	if !errors.As(openErr, &ov) {
		t.Fatalf("Open = %v, want wrapped *ranking.OrderViolationError", openErr)
	}
	if ov.Score != 9 || ov.Bound != 3 {
		t.Fatalf("violation detail = %+v", *ov)
	}
}

// TestShardMergeNaNScore: a NaN score cannot be ordered, so it must surface
// the typed order-violation error instead of being silently dropped from the
// bound (where it would freeze the shard's pruning threshold).
func TestShardMergeNaNScore(t *testing.T) {
	inputs := ShardInputs(shardStream(0, 5, math.NaN(), 3))
	m, err := NewShardMerge(inputs, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	openErr := m.Open()
	var ov *ranking.OrderViolationError
	if !errors.As(openErr, &ov) {
		t.Fatalf("Open = %v, want wrapped *ranking.OrderViolationError", openErr)
	}
	if !math.IsNaN(ov.Score) {
		t.Fatalf("violation detail = %+v, want NaN score", *ov)
	}
}

// TestShardMergeWorkerError: one shard's pipeline error fails the whole
// gather, and every worker is joined and closed before OpenCtx returns.
func TestShardMergeWorkerError(t *testing.T) {
	boom := errors.New("disk on fire")
	bad := &errAfterOp{schema: shardSchema(), after: 2, err: boom}
	weak := &descendingForever{start: 50, step: 0.5}
	inputs := []ShardInput{
		{Op: bad, Ceiling: math.Inf(1)},
		{Op: weak, Ceiling: math.Inf(1)},
	}
	m, err := NewShardMerge(inputs, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Open(); !errors.Is(err, boom) {
		t.Fatalf("Open = %v, want %v", err, boom)
	}
	if weak.opens.Load() != weak.closes.Load() {
		t.Fatalf("surviving shard open/close unbalanced: %d/%d", weak.opens.Load(), weak.closes.Load())
	}
}

// errAfterOp emits descending scores then fails.
type errAfterOp struct {
	schema *relation.Schema
	after  int
	err    error
	n      int
}

func (e *errAfterOp) Schema() *relation.Schema { return e.schema }
func (e *errAfterOp) Open() error              { e.n = 0; return nil }
func (e *errAfterOp) Close() error             { return nil }
func (e *errAfterOp) Next() (relation.Tuple, bool, error) {
	if e.n >= e.after {
		return nil, false, e.err
	}
	e.n++
	return relation.Tuple{relation.Int(int64(e.n)), relation.Float(100 - float64(e.n)), relation.Int(int64(e.n))}, true, nil
}

// TestShardMergeQueryCancellation: cancelling the query context mid-gather
// must surface the typed cancellation error and join every shard worker —
// the goroutine-leak regression test for the coordinator teardown path.
func TestShardMergeQueryCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	streams := make([]*descendingForever, 4)
	inputs := make([]ShardInput, len(streams))
	for i := range streams {
		streams[i] = &descendingForever{start: 1e9, step: 1e-6}
		inputs[i] = ShardInput{Op: streams[i], Ceiling: math.Inf(1)}
	}
	m, err := NewShardMerge(inputs, 1<<30, nil) // k too large to ever fill
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if err := m.OpenCtx(ctx); !errors.Is(err, ErrQueryCancelled) {
		t.Fatalf("OpenCtx = %v, want ErrQueryCancelled", err)
	}
	for i, s := range streams {
		if s.opens.Load() != s.closes.Load() {
			t.Fatalf("shard %d open/close unbalanced: %d/%d", i, s.opens.Load(), s.closes.Load())
		}
	}
	// OpenCtx joins its workers before returning; allow the runtime a moment
	// to retire them before comparing goroutine counts.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestShardMergeCloseAfterPartialRead: reading part of the output and closing
// must release the budget charge (the scatter was already torn down by the
// blocking gather).
func TestShardMergeCloseAfterPartialRead(t *testing.T) {
	budget := NewBudget(ResourceLimits{MaxBufferedTuples: 8})
	inputs := ShardInputs(shardStream(0, 9, 8, 7), shardStream(10, 6, 5, 4))
	m, err := NewShardMerge(inputs, 4, budget)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Open(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := m.Next(); err != nil || !ok {
		t.Fatalf("Next = %v, %v", ok, err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if got := budget.Buffered(); got != 0 {
		t.Fatalf("budget still holds %d tuples after Close", got)
	}
}

// TestShardMergeBudgetExceeded: the coordinator's heap charges the shared
// budget like every other buffering operator.
func TestShardMergeBudgetExceeded(t *testing.T) {
	budget := NewBudget(ResourceLimits{MaxBufferedTuples: 3})
	inputs := ShardInputs(shardStream(0, 9, 8, 7, 6, 5))
	m, err := NewShardMerge(inputs, 5, budget)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Open(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Open = %v, want ErrBudgetExceeded", err)
	}
	if got := budget.Buffered(); got != 0 {
		t.Fatalf("budget still holds %d tuples after failed Open", got)
	}
}

// TestShardMergeNullScores: NULL scores sort after every real score, like
// ORDER BY ... DESC.
func TestShardMergeNullScores(t *testing.T) {
	sch := shardSchema()
	withNull := FromTuples(sch, []relation.Tuple{
		{relation.Int(1), relation.Float(4), relation.Int(1)},
		{relation.Int(2), relation.Null(), relation.Int(2)},
	})
	inputs := ShardInputs(withNull, shardStream(10, 3, 2))
	m, err := NewShardMerge(inputs, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 || !out[3][1].IsNull() {
		t.Fatalf("NULL score must sort last: %v", out)
	}
}

// TestShardMergeValidation covers constructor rejections.
func TestShardMergeValidation(t *testing.T) {
	if _, err := NewShardMerge(nil, 3, nil); err == nil {
		t.Fatal("empty inputs must be rejected")
	}
	if _, err := NewShardMerge(ShardInputs(shardStream(0, 1)), 0, nil); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	noScore := FromTuples(relation.NewSchema(
		relation.Column{Name: "id", Kind: relation.KindInt},
	), nil)
	if _, err := NewShardMerge(ShardInputs(noScore), 1, nil); err == nil {
		t.Fatal("schema without score column must be rejected")
	}
}

// TestShardScatterStopLatency: Stop on one shard must not disturb the others,
// and the stopped worker reports the typed cancellation.
func TestShardScatterStopLatency(t *testing.T) {
	fast := &descendingForever{start: 1e6, step: 1}
	inputs := []ShardInput{
		{Op: fast, Ceiling: math.Inf(1)},
		{Op: shardStream(0, 3, 2, 1), Ceiling: 3},
	}
	s := NewShardScatter(inputs, 4)
	ctx := context.Background()
	s.Start(ctx, 0)
	s.Start(ctx, 1)
	s.Stop(0)
	var done0, done1 bool
	var tuples1 int
	for !done0 || !done1 {
		msg := s.Recv()
		switch {
		case msg.Done && msg.Shard == 0:
			done0 = true
			if !errors.Is(msg.Err, ErrQueryCancelled) {
				t.Fatalf("stopped shard err = %v", msg.Err)
			}
		case msg.Done && msg.Shard == 1:
			done1 = true
			if msg.Err != nil {
				t.Fatalf("surviving shard err = %v", msg.Err)
			}
		case msg.Shard == 1:
			tuples1++
		}
	}
	s.Wait()
	if tuples1 != 3 {
		t.Fatalf("surviving shard delivered %d tuples, want 3", tuples1)
	}
}

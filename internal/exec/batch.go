package exec

import (
	"context"

	"rankopt/internal/relation"
)

// This file is the batch-at-a-time execution layer. The Volcano one-tuple-
// per-Next contract costs two or three interface calls, a cancellation poll,
// and a stats touch per tuple; at warm-serving rates that per-pull overhead
// is the throughput ceiling. BatchOperator amortizes all of it across a
// reusable tuple batch: one interface call, one context check, and one stats
// update per DefaultBatchSize tuples. Operators that genuinely need
// incremental pulls for threshold termination (HRJN, NRJN, MultiHRJN, TopK)
// stay per-tuple; batchSource adapts them transparently, so a pipeline mixes
// vectorized and per-tuple segments without either side knowing.

// DefaultBatchSize is the tuple capacity of the execution batches used by
// the drain loops and by operators' internal sources. Large enough to
// amortize per-batch costs to noise, small enough that a batch of tuple
// headers stays cache-resident.
const DefaultBatchSize = 256

// Batch is a reusable slice of tuples — the unit of batch-at-a-time
// execution. A batch is filled one of two ways: appended into its own
// recycled backing array (the tuplePool discipline applied to whole
// batches — one allocation per Open, not per pull), or pointed at a
// borrowed read-only view of an existing tuple slice (SetView — how SeqScan
// hands out a window of the heap with zero copies). The tuples inside
// follow the same ownership rule as Next: once handed to the caller they
// are caller-owned and never recycled.
type Batch struct {
	// own is the batch's recycled append target; tuples is the live
	// contents — own[:n] after an appended fill, a borrowed slice after
	// SetView.
	own    []relation.Tuple
	tuples []relation.Tuple
	viewed bool
}

// NewBatch allocates a batch with the given capacity (DefaultBatchSize when
// non-positive).
func NewBatch(capacity int) *Batch {
	if capacity <= 0 {
		capacity = DefaultBatchSize
	}
	own := make([]relation.Tuple, 0, capacity)
	return &Batch{own: own, tuples: own}
}

// Len returns the number of tuples currently in the batch.
func (b *Batch) Len() int { return len(b.tuples) }

// Cap returns the batch's recycled capacity.
func (b *Batch) Cap() int { return cap(b.tuples) }

// Tuples returns the filled prefix. The slice is valid until the next Reset
// or refill; the tuples themselves remain valid (caller-owned).
func (b *Batch) Tuples() []relation.Tuple { return b.tuples }

// Reset empties the batch for an appended refill, re-aiming it at its own
// array (dropping any borrowed view) and adopting growth a fan-out fill
// forced. Stale tuple headers beyond the live length are NOT zeroed: the
// recycled array may pin up to Cap tuples from the most recent fills, a
// bounded (one batch) and deliberate trade — the zeroing pass would cost a
// write per slot on every refill of every batch in the pipeline. The pins
// die with the batch at Close.
func (b *Batch) Reset() {
	if b.viewed {
		// Never adopt a borrowed view as the append target: appending into
		// someone else's backing array would corrupt it.
		b.viewed = false
	} else if cap(b.tuples) > cap(b.own) {
		b.own = b.tuples
	}
	b.tuples = b.own[:0]
}

// SetView points the batch at a borrowed read-only tuple slice with zero
// copying — the vectorized-scan fill. The view is capped at its length, so
// a later append reallocates instead of writing into the borrowed array.
// The underlying tuples must stay immutable for the batch's lifetime
// (relation heaps and materialized buffers qualify).
func (b *Batch) SetView(ts []relation.Tuple) {
	b.tuples = ts[:len(ts):len(ts)]
	b.viewed = true
}

// Append adds one tuple. Appending past Cap grows the backing array, which
// then stays grown — fan-out operators (hash-join probes) may legitimately
// exceed the target size for one round.
func (b *Batch) Append(t relation.Tuple) { b.tuples = append(b.tuples, t) }

// Extend appends a run of tuples in one copy.
func (b *Batch) Extend(ts []relation.Tuple) { b.tuples = append(b.tuples, ts...) }

// Truncate drops every tuple beyond the first n (stale headers stay in the
// backing array under the same bounded-pinning rule as Reset).
func (b *Batch) Truncate(n int) {
	if n < len(b.tuples) {
		b.tuples = b.tuples[:n]
	}
}

// BatchOperator is the batch-at-a-time operator contract. Implementations
// also satisfy the per-tuple Operator interface; after Open a caller must
// drive the operator through exactly one of the two (mixing Next and
// NextBatch on one opened operator is undefined).
type BatchOperator interface {
	Operator
	// NextBatch resets out and fills it with up to max tuples (at least one
	// when ok). ok=false signals exhaustion with out empty. max bounds the
	// demand — LIMIT-style consumers pass their remaining need so lazy
	// children are not overpulled — but operators whose unit of work fans out
	// (a hash-join probe emitting every match of a probe tuple) may overshoot
	// it for one round. The tuples appended to out are caller-owned exactly
	// as if returned by Next.
	NextBatch(out *Batch, max int) (ok bool, err error)
}

// batchSource adapts an operator's child to the batch contract at Open time:
// children that implement BatchOperator are pulled natively, everything else
// goes through a per-tuple fill loop that polls the retained context on the
// canceller cadence (so a batch consumer over a per-tuple tree keeps PR 4's
// "every unbounded loop polls" invariant). This is the shim that lets
// HRJN/NRJN/MultiHRJN stay per-tuple while the rest of the pipeline batches.
type batchSource struct {
	bop    BatchOperator
	op     Operator
	cancel canceller
}

// reset installs the child and the query context (called from OpenCtx).
func (s *batchSource) reset(ctx context.Context, op Operator) {
	s.op = op
	s.bop, _ = op.(BatchOperator)
	s.cancel.reset(ctx)
}

// next fills out with up to max tuples from the child.
func (s *batchSource) next(out *Batch, max int) (bool, error) {
	if s.bop != nil {
		return s.bop.NextBatch(out, max)
	}
	out.Reset()
	for out.Len() < max {
		if err := s.cancel.poll(); err != nil {
			return false, err
		}
		t, ok, err := s.op.Next()
		if err != nil {
			return false, err
		}
		if !ok {
			break
		}
		out.Append(t)
	}
	return out.Len() > 0, nil
}

// Batched adapts any operator to the batch contract: operators that already
// implement BatchOperator are returned unchanged, everything else is wrapped
// in the per-tuple shim. The wrapper forwards OpenCtx so the context still
// reaches the tree.
func Batched(op Operator) BatchOperator {
	if bop, ok := op.(BatchOperator); ok {
		return bop
	}
	return &tupleBatcher{op: op}
}

// tupleBatcher is the public per-tuple→batch shim behind Batched.
type tupleBatcher struct {
	op  Operator
	src batchSource
}

func (t *tupleBatcher) Schema() *relation.Schema { return t.op.Schema() }

func (t *tupleBatcher) Open() error { return t.OpenCtx(context.Background()) }

// OpenCtx implements OperatorCtx, retaining ctx for the fill loop's polls.
func (t *tupleBatcher) OpenCtx(ctx context.Context) error {
	if err := OpenOp(ctx, t.op); err != nil {
		return err
	}
	t.src.reset(ctx, t.op)
	return nil
}

func (t *tupleBatcher) Next() (relation.Tuple, bool, error) { return t.op.Next() }

// NextBatch implements BatchOperator through the shim fill loop.
func (t *tupleBatcher) NextBatch(out *Batch, max int) (bool, error) {
	return t.src.next(out, max)
}

func (t *tupleBatcher) Close() error { return t.op.Close() }

// arenaChunkValues sizes the tupleArena's allocation unit: one make per
// chunk serves many output tuples, so the per-tuple allocation count of
// vectorized Project / RankAssign / hash-join probe drops from one per tuple
// to one per chunk.
const arenaChunkValues = 4096

// tupleArena hands out caller-owned output tuples carved from shared value
// chunks. Unlike tuplePool it never recycles: every tuple it returns escapes
// to the caller, so the win is purely amortizing the allocation count.
// Carved tuples use full-capacity slices (len == cap), so a caller growing
// one with append reallocates instead of clobbering its neighbor.
type tupleArena struct {
	chunk []relation.Value
}

// alloc returns a zeroed tuple of width n.
func (a *tupleArena) alloc(n int) relation.Tuple {
	if n == 0 {
		return relation.Tuple{}
	}
	if len(a.chunk) < n {
		size := arenaChunkValues
		if n > size {
			size = n
		}
		a.chunk = make([]relation.Value, size)
	}
	t := relation.Tuple(a.chunk[:n:n])
	a.chunk = a.chunk[n:]
	return t
}

// concat returns the concatenation of l and r as an arena tuple.
func (a *tupleArena) concat(l, r relation.Tuple) relation.Tuple {
	t := a.alloc(len(l) + len(r))
	copy(t, l)
	copy(t[len(l):], r)
	return t
}

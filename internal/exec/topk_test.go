package exec

import (
	"math"
	"testing"
	"testing/quick"

	"rankopt/internal/expr"
	"rankopt/internal/relation"
	"rankopt/internal/workload"
)

func TestTopKMatchesSort(t *testing.T) {
	rel := workload.Ranked(workload.RankedConfig{Name: "A", N: 500, Selectivity: 0.1, Seed: 71})
	score := expr.Col("A", "score")
	for _, k := range []int{1, 7, 100, 500, 2000} {
		tk := NewTopK(NewSeqScan(rel), score, k)
		got, err := Collect(tk)
		if err != nil {
			t.Fatal(err)
		}
		want, err := CollectK(NewSortByScore(NewSeqScan(rel), score), k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d results, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i][2].AsFloat() != want[i][2].AsFloat() {
				t.Fatalf("k=%d rank %d: %v, want %v", k, i, got[i][2], want[i][2])
			}
		}
	}
}

func TestTopKStability(t *testing.T) {
	// Equal scores: earlier rows win and order among kept ties is by arrival.
	rel := makeRel("A", [][3]float64{
		{0, 0, 0.5}, {1, 0, 0.5}, {2, 0, 0.9}, {3, 0, 0.5},
	})
	tk := NewTopK(NewSeqScan(rel), expr.Col("A", "score"), 3)
	got, err := Collect(tk)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int64{got[0][0].AsInt(), got[1][0].AsInt(), got[2][0].AsInt()}
	if ids[0] != 2 || ids[1] != 0 || ids[2] != 1 {
		t.Fatalf("stable top-k order = %v", ids)
	}
}

func TestTopKSkipsNullScores(t *testing.T) {
	sch := relation.NewSchema(
		relation.Column{Table: "A", Name: "s", Kind: relation.KindFloat},
	)
	rel := relation.New("A", sch)
	rel.MustAppend(relation.Tuple{relation.Null()})
	rel.MustAppend(relation.Tuple{relation.Float(1)})
	tk := NewTopK(NewSeqScan(rel), expr.Col("A", "s"), 5)
	got, err := Collect(tk)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("NULL scores must be dropped: %v", got)
	}
}

// Property: TopK output equals the k highest scores in descending order.
func TestTopKProperty(t *testing.T) {
	f := func(seed int64, kSmall uint8) bool {
		k := int(kSmall)%30 + 1
		rel := workload.Ranked(workload.RankedConfig{Name: "A", N: 120, Selectivity: 0.2, Seed: seed})
		got, err := Collect(NewTopK(NewSeqScan(rel), expr.Col("A", "score"), k))
		if err != nil {
			return false
		}
		var all []float64
		for _, tup := range rel.Tuples() {
			all = append(all, tup[2].AsFloat())
		}
		for i := 1; i < len(all); i++ {
			for j := i; j > 0 && all[j] > all[j-1]; j-- {
				all[j], all[j-1] = all[j-1], all[j]
			}
		}
		if len(got) != k {
			return false
		}
		for i := range got {
			if math.Abs(got[i][2].AsFloat()-all[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

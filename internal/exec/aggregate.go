package exec

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"rankopt/internal/expr"
	"rankopt/internal/relation"
)

// AggFunc enumerates aggregate functions.
type AggFunc uint8

// Supported aggregates.
const (
	AggCount AggFunc = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

var aggNames = map[AggFunc]string{
	AggCount: "COUNT", AggSum: "SUM", AggMin: "MIN", AggMax: "MAX", AggAvg: "AVG",
}

// String returns the SQL spelling.
func (f AggFunc) String() string { return aggNames[f] }

// ParseAggFunc maps a (case-insensitive) name to an aggregate function.
func ParseAggFunc(name string) (AggFunc, bool) {
	for f, n := range aggNames {
		if strings.EqualFold(n, name) {
			return f, true
		}
	}
	return 0, false
}

// Kind returns the output kind of the aggregate given its input kind.
func (f AggFunc) Kind(arg relation.Kind) relation.Kind {
	switch f {
	case AggCount:
		return relation.KindInt
	case AggAvg:
		return relation.KindFloat
	case AggSum:
		return relation.KindFloat
	default:
		return arg
	}
}

// AggSpec describes one aggregate output column. Arg is nil for COUNT(*).
type AggSpec struct {
	Func AggFunc
	Arg  expr.Expr
	As   string
}

// String renders "SUM(expr)".
func (a AggSpec) String() string {
	if a.Arg == nil {
		return a.Func.String() + "(*)"
	}
	return a.Func.String() + "(" + a.Arg.String() + ")"
}

// accumulator folds values for one aggregate within one group.
type accumulator struct {
	fn    AggFunc
	count int64
	sum   float64
	minV  relation.Value
	maxV  relation.Value
	any   bool
}

func (a *accumulator) add(v relation.Value) {
	if a.fn == AggCount {
		// COUNT(*) counts rows (v is a dummy); COUNT(x) skips NULLs.
		if !v.IsNull() {
			a.count++
		}
		return
	}
	if v.IsNull() {
		return
	}
	a.count++
	switch a.fn {
	case AggSum, AggAvg:
		a.sum += v.AsFloat()
	case AggMin:
		if !a.any || v.Compare(a.minV) < 0 {
			a.minV = v
		}
	case AggMax:
		if !a.any || v.Compare(a.maxV) > 0 {
			a.maxV = v
		}
	}
	a.any = true
}

func (a *accumulator) result() relation.Value {
	switch a.fn {
	case AggCount:
		return relation.Int(a.count)
	case AggSum:
		if a.count == 0 {
			return relation.Null()
		}
		return relation.Float(a.sum)
	case AggAvg:
		if a.count == 0 {
			return relation.Null()
		}
		return relation.Float(a.sum / float64(a.count))
	case AggMin:
		if !a.any {
			return relation.Null()
		}
		return a.minV
	case AggMax:
		if !a.any {
			return relation.Null()
		}
		return a.maxV
	}
	return relation.Null()
}

// aggSchema builds the output schema: group columns then aggregate columns.
func aggSchema(in *relation.Schema, groupBy []expr.ColRef, aggs []AggSpec) (*relation.Schema, error) {
	cols := make([]relation.Column, 0, len(groupBy)+len(aggs))
	for _, g := range groupBy {
		i, err := in.Resolve(g.Table, g.Name)
		if err != nil {
			return nil, err
		}
		cols = append(cols, in.Column(i))
	}
	for _, a := range aggs {
		kind := relation.KindFloat
		if c, ok := a.Arg.(expr.ColRef); ok {
			if i, err := in.Resolve(c.Table, c.Name); err == nil {
				kind = in.Column(i).Kind
			}
		}
		name := a.As
		if name == "" {
			name = a.String()
		}
		cols = append(cols, relation.Column{Name: name, Kind: a.Func.Kind(kind)})
	}
	return relation.NewSchema(cols...), nil
}

// bindAgg compiles group-key and aggregate-argument evaluators.
func bindAgg(in *relation.Schema, groupBy []expr.ColRef, aggs []AggSpec) (keys []expr.Eval, args []expr.Eval, err error) {
	keys = make([]expr.Eval, len(groupBy))
	for i, g := range groupBy {
		if keys[i], err = g.Bind(in); err != nil {
			return nil, nil, err
		}
	}
	args = make([]expr.Eval, len(aggs))
	for i, a := range aggs {
		if a.Arg == nil {
			// COUNT(*): count every row via a non-NULL dummy.
			args[i] = func(relation.Tuple) (relation.Value, error) {
				return relation.Int(1), nil
			}
			continue
		}
		if args[i], err = a.Arg.Bind(in); err != nil {
			return nil, nil, err
		}
	}
	return keys, args, nil
}

func newAccumulators(aggs []AggSpec) []accumulator {
	out := make([]accumulator, len(aggs))
	for i, a := range aggs {
		out[i] = accumulator{fn: a.Func}
	}
	return out
}

// HashAggregate groups its input with a hash table. It is blocking and
// produces groups in a deterministic (sorted key string) order.
type HashAggregate struct {
	In      Operator
	GroupBy []expr.ColRef
	Aggs    []AggSpec

	schema *relation.Schema
	out    []relation.Tuple
	pos    int
	// Groups records the group count after Open, for instrumentation.
	Groups int
}

// NewHashAggregate constructs the operator. Empty GroupBy aggregates the
// whole input into one row.
func NewHashAggregate(in Operator, groupBy []expr.ColRef, aggs []AggSpec) *HashAggregate {
	return &HashAggregate{In: in, GroupBy: groupBy, Aggs: aggs}
}

// Schema implements Operator.
func (h *HashAggregate) Schema() *relation.Schema {
	if h.schema == nil {
		sch, err := aggSchema(h.In.Schema(), h.GroupBy, h.Aggs)
		if err != nil {
			// Surface the resolution error at Open; return an empty schema
			// here to keep Schema() infallible.
			return relation.NewSchema()
		}
		h.schema = sch
	}
	return h.schema
}

// Open implements Operator: drains the input and aggregates.
func (h *HashAggregate) Open() error { return h.OpenCtx(context.Background()) }

// OpenCtx implements OperatorCtx: the blocking drain polls the context on
// the sampling cadence.
func (h *HashAggregate) OpenCtx(ctx context.Context) error {
	if err := OpenOp(ctx, h.In); err != nil {
		return err
	}
	if err := h.load(ctx); err != nil {
		closeQuietly(h.In)
		return err
	}
	return nil
}

// load resolves the schema and drains the opened input into groups.
func (h *HashAggregate) load(ctx context.Context) error {
	sch, err := aggSchema(h.In.Schema(), h.GroupBy, h.Aggs)
	if err != nil {
		return err
	}
	h.schema = sch
	keys, args, err := bindAgg(h.In.Schema(), h.GroupBy, h.Aggs)
	if err != nil {
		return err
	}
	type group struct {
		keyVals relation.Tuple
		accs    []accumulator
	}
	groups := map[string]*group{}
	var c canceller
	c.reset(ctx)
	for {
		if err := c.poll(); err != nil {
			return err
		}
		t, ok, err := h.In.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		keyVals := make(relation.Tuple, len(keys))
		var kb strings.Builder
		for i, kev := range keys {
			v, err := kev(t)
			if err != nil {
				return err
			}
			keyVals[i] = v
			kb.WriteString(v.String())
			kb.WriteByte('|')
		}
		g := groups[kb.String()]
		if g == nil {
			g = &group{keyVals: keyVals, accs: newAccumulators(h.Aggs)}
			groups[kb.String()] = g
		}
		for i, aev := range args {
			v, err := aev(t)
			if err != nil {
				return err
			}
			g.accs[i].add(v)
		}
	}
	// Deterministic output order.
	names := make([]string, 0, len(groups))
	for k := range groups {
		names = append(names, k)
	}
	sort.Strings(names)
	h.out = h.out[:0]
	for _, k := range names {
		g := groups[k]
		row := make(relation.Tuple, 0, len(g.keyVals)+len(g.accs))
		row = append(row, g.keyVals...)
		for i := range g.accs {
			row = append(row, g.accs[i].result())
		}
		h.out = append(h.out, row)
	}
	// Aggregation without grouping always yields one row.
	if len(h.GroupBy) == 0 && len(h.out) == 0 {
		accs := newAccumulators(h.Aggs)
		row := make(relation.Tuple, 0, len(accs))
		for i := range accs {
			row = append(row, accs[i].result())
		}
		h.out = append(h.out, row)
	}
	h.Groups = len(h.out)
	h.pos = 0
	return nil
}

// Next implements Operator.
func (h *HashAggregate) Next() (relation.Tuple, bool, error) {
	if h.pos >= len(h.out) {
		return nil, false, nil
	}
	t := h.out[h.pos]
	h.pos++
	return t, true, nil
}

// Close implements Operator.
func (h *HashAggregate) Close() error {
	h.out = nil
	return h.In.Close()
}

// SortedAggregate groups an input that already arrives ordered by the group
// columns. It streams: each group is emitted as soon as the next one starts,
// preserving the input's group order — the operator that makes group-by
// columns interesting orders.
type SortedAggregate struct {
	In      Operator
	GroupBy []expr.ColRef
	Aggs    []AggSpec

	schema  *relation.Schema
	keys    []expr.Eval
	args    []expr.Eval
	curKey  relation.Tuple
	accs    []accumulator
	started bool
	done    bool
}

// NewSortedAggregate constructs the operator; GroupBy must be non-empty.
func NewSortedAggregate(in Operator, groupBy []expr.ColRef, aggs []AggSpec) *SortedAggregate {
	return &SortedAggregate{In: in, GroupBy: groupBy, Aggs: aggs}
}

// Schema implements Operator.
func (s *SortedAggregate) Schema() *relation.Schema {
	if s.schema == nil {
		sch, err := aggSchema(s.In.Schema(), s.GroupBy, s.Aggs)
		if err != nil {
			return relation.NewSchema()
		}
		s.schema = sch
	}
	return s.schema
}

// Open implements Operator.
func (s *SortedAggregate) Open() error { return s.OpenCtx(context.Background()) }

// OpenCtx implements OperatorCtx, forwarding the context to the input.
func (s *SortedAggregate) OpenCtx(ctx context.Context) error {
	if len(s.GroupBy) == 0 {
		return fmt.Errorf("exec: sorted aggregate needs group columns")
	}
	if err := OpenOp(ctx, s.In); err != nil {
		return err
	}
	sch, err := aggSchema(s.In.Schema(), s.GroupBy, s.Aggs)
	if err != nil {
		closeQuietly(s.In)
		return err
	}
	s.schema = sch
	if s.keys, s.args, err = bindAgg(s.In.Schema(), s.GroupBy, s.Aggs); err != nil {
		closeQuietly(s.In)
		return err
	}
	s.curKey = nil
	s.started = false
	s.done = false
	return nil
}

// emit builds the output row for the finished group.
func (s *SortedAggregate) emit() relation.Tuple {
	row := make(relation.Tuple, 0, len(s.curKey)+len(s.accs))
	row = append(row, s.curKey...)
	for i := range s.accs {
		row = append(row, s.accs[i].result())
	}
	return row
}

func sameKey(a, b relation.Tuple) bool {
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// Next implements Operator.
func (s *SortedAggregate) Next() (relation.Tuple, bool, error) {
	if s.done {
		return nil, false, nil
	}
	for {
		t, ok, err := s.In.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			s.done = true
			if s.started {
				return s.emit(), true, nil
			}
			return nil, false, nil
		}
		key := make(relation.Tuple, len(s.keys))
		for i, kev := range s.keys {
			v, err := kev(t)
			if err != nil {
				return nil, false, err
			}
			key[i] = v
		}
		var finished relation.Tuple
		if s.started && !sameKey(key, s.curKey) {
			finished = s.emit()
			s.started = false
		}
		if !s.started {
			s.curKey = key
			s.accs = newAccumulators(s.Aggs)
			s.started = true
		}
		for i, aev := range s.args {
			v, err := aev(t)
			if err != nil {
				return nil, false, err
			}
			s.accs[i].add(v)
		}
		if finished != nil {
			return finished, true, nil
		}
	}
}

// Close implements Operator.
func (s *SortedAggregate) Close() error { return s.In.Close() }

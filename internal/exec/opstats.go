package exec

import (
	"context"
	"time"

	"rankopt/internal/relation"
)

// OpStats are the runtime counters EXPLAIN ANALYZE reports for one operator.
// Every field is a plain scalar — no interfaces, maps, or slices — so
// collecting them on the per-tuple path costs a handful of integer stores
// and zero allocations. Depth, queue, heap, and pool fields are filled from
// the wrapped operator's own gauges (see analyzeGauges) and stay zero for
// operators without that internal state.
type OpStats struct {
	// Opens counts successful Open calls (re-opened operators accumulate).
	Opens int64
	// NextCalls counts Next invocations, including the exhausted ones.
	NextCalls int64
	// TuplesOut counts tuples returned by Next. For any operator the tuples
	// a parent pulled from it equal its TuplesOut, so per-child input counts
	// come from the children's collectors.
	TuplesOut int64
	// OpenNanos is the wall time spent inside Open (every call is timed:
	// Open runs once and may do blocking work like materializing an input).
	OpenNanos int64
	// NextNanos is the wall time of the sampled Next calls only; SampledNexts
	// says how many were timed. Scale by NextCalls/SampledNexts to estimate
	// the total (see EstNextNanos).
	NextNanos    int64
	SampledNexts int64
	// BatchCalls and BatchNanos count and time NextBatch invocations. Batch
	// pulls are rare relative to tuples (one per DefaultBatchSize), so every
	// call is timed — no sampling needed.
	BatchCalls int64
	BatchNanos int64

	// LeftDepth and RightDepth are the tuples a rank-join actually consumed
	// from each input — the quantity the Section 4 depth model predicts.
	LeftDepth, RightDepth int64
	// MaxQueue is the ranking-queue high-water mark of a rank-join.
	MaxQueue int64
	// MaxHeap is the bounded-heap high-water mark of a TopK sort.
	MaxHeap int64
	// PoolHit and PoolMiss count tuple-pool free-list reuses vs fresh
	// allocations on a rank-join's candidate path.
	PoolHit, PoolMiss int64
}

// EstNextNanos estimates the total pull-side wall time: the per-tuple Next
// time extrapolated from the sampled calls, plus the fully-timed batch calls.
func (s OpStats) EstNextNanos() int64 {
	var est int64
	if s.SampledNexts > 0 {
		est = s.NextNanos * s.NextCalls / s.SampledNexts
	}
	return est + s.BatchNanos
}

// nextSamplePeriod is the Next-call sampling stride of the Analyzed
// collector: one call in every nextSamplePeriod is wall-timed, keeping the
// two time.Now reads off the common per-tuple path. Must be a power of two
// so the sampling test is a mask, not a division.
const nextSamplePeriod = 32

// analyzeGauges are the internal high-water marks and pool counters an
// operator hands to its Analyzed collector. Operators without such state
// simply do not implement gaugeReporter.
type analyzeGauges struct {
	leftDepth, rightDepth int
	maxQueue, maxHeap     int
	poolHit, poolMiss     int
}

// gaugeReporter is implemented by operators with internal gauges worth
// surfacing in EXPLAIN ANALYZE (HRJN, NRJN, MultiHRJN, TopK).
type gaugeReporter interface {
	gauges() analyzeGauges
}

// Analyzed wraps any operator with EXPLAIN ANALYZE collection: tuple counts
// on every call, wall time on Open and on a 1-in-32 sample of Next calls.
// The wrapper adds no allocation to the per-tuple path; its one map-free
// OpStats struct lives inline. Counters accumulate across re-opens; gauges
// reflect the wrapped operator's most recent run.
type Analyzed struct {
	In    Operator
	stats OpStats
	src   batchSource
}

// Analyze wraps op with a stats collector.
func Analyze(op Operator) *Analyzed { return &Analyzed{In: op} }

// Schema implements Operator.
func (a *Analyzed) Schema() *relation.Schema { return a.In.Schema() }

// Open implements Operator. A failed Open has, per the Operator contract,
// already closed whatever the inner operator opened, so the wrapper only
// records and propagates.
func (a *Analyzed) Open() error { return a.OpenCtx(context.Background()) }

// OpenCtx implements OperatorCtx: the context reaches the wrapped operator
// even under EXPLAIN ANALYZE.
func (a *Analyzed) OpenCtx(ctx context.Context) error {
	start := time.Now()
	err := OpenOp(ctx, a.In)
	a.stats.OpenNanos += time.Since(start).Nanoseconds()
	if err != nil {
		return err
	}
	a.stats.Opens++
	a.src.reset(ctx, a.In)
	return nil
}

// Next implements Operator.
func (a *Analyzed) Next() (relation.Tuple, bool, error) {
	a.stats.NextCalls++
	if a.stats.NextCalls&(nextSamplePeriod-1) != 0 {
		t, ok, err := a.In.Next()
		if ok {
			a.stats.TuplesOut++
		}
		return t, ok, err
	}
	start := time.Now()
	t, ok, err := a.In.Next()
	a.stats.NextNanos += time.Since(start).Nanoseconds()
	a.stats.SampledNexts++
	if ok {
		a.stats.TuplesOut++
	}
	return t, ok, err
}

// NextBatch implements BatchOperator, so wrapping a vectorized operator in
// EXPLAIN ANALYZE does not knock its pipeline back to per-tuple pulls. Every
// batch call is wall-timed (one pair of time.Now reads per batch is already
// amortized) and TuplesOut counts whole batches.
func (a *Analyzed) NextBatch(out *Batch, max int) (bool, error) {
	a.stats.BatchCalls++
	start := time.Now()
	ok, err := a.src.next(out, max)
	a.stats.BatchNanos += time.Since(start).Nanoseconds()
	if ok {
		a.stats.TuplesOut += int64(out.Len())
	}
	return ok, err
}

// Close implements Operator. The inner operator's gauges are captured before
// it releases them.
func (a *Analyzed) Close() error {
	a.captureGauges()
	return a.In.Close()
}

// captureGauges copies the wrapped operator's internal gauges into the stats.
func (a *Analyzed) captureGauges() {
	if gr, ok := a.In.(gaugeReporter); ok {
		g := gr.gauges()
		a.stats.LeftDepth = int64(g.leftDepth)
		a.stats.RightDepth = int64(g.rightDepth)
		a.stats.MaxQueue = int64(g.maxQueue)
		a.stats.MaxHeap = int64(g.maxHeap)
		a.stats.PoolHit = int64(g.poolHit)
		a.stats.PoolMiss = int64(g.poolMiss)
	}
}

// ExecStats returns the collected counters (gauges refreshed from the inner
// operator, so it is valid both mid-run and after Close).
func (a *Analyzed) ExecStats() OpStats {
	a.captureGauges()
	return a.stats
}

// Stats forwards the inner operator's rank-join stats so StatsReporter
// consumers (the engine's measured-vs-estimated depth report) see through
// the collector.
func (a *Analyzed) Stats() RankJoinStats {
	if sr, ok := a.In.(StatsReporter); ok {
		return sr.Stats()
	}
	return RankJoinStats{}
}

package exec

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"rankopt/internal/expr"
	"rankopt/internal/relation"
	"rankopt/internal/workload"
)

// anykFixture builds m ranked relations joined in a path on their shared key
// column and the AnyK operator over *unsorted* scans — the operator's input
// contract, unlike the HRJN family's descending-score requirement.
func anykFixture(t *testing.T, m, n int, sel float64, seed int64) ([]*relation.Relation, *AnyK) {
	t.Helper()
	rels := make([]*relation.Relation, m)
	inputs := make([]Operator, m)
	scores := make([]expr.Expr, m)
	lkeys := make([]expr.Expr, m-1)
	rkeys := make([]expr.Expr, m-1)
	for i := 0; i < m; i++ {
		name := string(rune('A' + i))
		rels[i] = workload.Ranked(workload.RankedConfig{
			Name: name, N: n, Selectivity: sel, Seed: seed + int64(i),
		})
		inputs[i] = NewSeqScan(rels[i])
		scores[i] = expr.Col(name, "score")
		if i < m-1 {
			lkeys[i] = expr.Col(name, "key")
		}
		if i > 0 {
			rkeys[i-1] = expr.Col(name, "key")
		}
	}
	j, err := NewAnyK(inputs, scores, lkeys, rkeys)
	if err != nil {
		t.Fatal(err)
	}
	return rels, j
}

func TestAnyKTopKMatchesReference(t *testing.T) {
	for _, m := range []int{2, 3, 4} {
		rels, j := anykFixture(t, m, 250, 0.05, 1100+int64(m))
		k := 12
		got, err := CollectK(j, k)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		want := refMultiTopK(rels, k)
		if len(got) != len(want) {
			t.Fatalf("m=%d: %d results, want %d", m, len(got), len(want))
		}
		for i := range want {
			if math.Abs(combinedScoreM(got[i], m)-want[i]) > 1e-9 {
				t.Fatalf("m=%d rank %d: %v, want %v", m, i, combinedScoreM(got[i], m), want[i])
			}
		}
	}
}

// The full enumeration must agree with MultiHRJN result-for-result on
// scores: same join, same ranking, different algorithm.
func TestAnyKAgreesWithMultiHRJN(t *testing.T) {
	rels, j := anykFixture(t, 3, 200, 0.06, 1150)
	got, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]Operator, len(rels))
	scores := make([]expr.Expr, len(rels))
	keys := make([]expr.Expr, len(rels))
	for i, r := range rels {
		inputs[i] = rankedScan(r)
		scores[i] = expr.Col(r.Name, "score")
		keys[i] = expr.Col(r.Name, "key")
	}
	h, err := NewMultiHRJN(inputs, scores, keys)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Collect(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("AnyK emitted %d results, MultiHRJN %d", len(got), len(want))
	}
	for i := range want {
		gs := combinedScoreM(got[i], 3)
		ws := combinedScoreM(want[i], 3)
		if math.Abs(gs-ws) > 1e-9 {
			t.Fatalf("rank %d: AnyK %v vs MultiHRJN %v", i, gs, ws)
		}
	}
}

// Two runs over the same inputs must emit byte-identical tuple sequences:
// the successor partition plus FIFO tie-breaking leaves no nondeterminism.
func TestAnyKDeterministicTieBreak(t *testing.T) {
	run := func() []relation.Tuple {
		// Heavy ties: every score is drawn from a 3-value set.
		a := makeRel("A", [][3]float64{{0, 1, 0.5}, {1, 1, 0.5}, {2, 2, 0.7}, {3, 2, 0.3}})
		b := makeRel("B", [][3]float64{{0, 1, 0.5}, {1, 1, 0.7}, {2, 2, 0.5}, {3, 2, 0.5}})
		c := makeRel("C", [][3]float64{{0, 1, 0.3}, {1, 2, 0.5}, {2, 2, 0.5}})
		j, err := NewAnyK(
			[]Operator{NewSeqScan(a), NewSeqScan(b), NewSeqScan(c)},
			[]expr.Expr{expr.Col("A", "score"), expr.Col("B", "score"), expr.Col("C", "score")},
			[]expr.Expr{expr.Col("A", "key"), expr.Col("B", "key")},
			[]expr.Expr{expr.Col("B", "key"), expr.Col("C", "key")})
		if err != nil {
			t.Fatal(err)
		}
		out, err := Collect(j)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	first, second := run(), run()
	if len(first) != len(second) {
		t.Fatalf("runs disagree on cardinality: %d vs %d", len(first), len(second))
	}
	for i := range first {
		for c := range first[i] {
			if first[i][c] != second[i][c] {
				t.Fatalf("rank %d col %d differs across runs: %v vs %v", i, c, first[i][c], second[i][c])
			}
		}
	}
}

func TestAnyKValidation(t *testing.T) {
	rel := makeRel("A", [][3]float64{{0, 1, 0.5}})
	score := expr.Col("A", "score")
	key := expr.Col("A", "key")
	if _, err := NewAnyK([]Operator{NewSeqScan(rel)},
		[]expr.Expr{score}, nil, nil); err == nil {
		t.Error("single input must be rejected")
	}
	if _, err := NewAnyK(
		[]Operator{NewSeqScan(rel), NewSeqScan(rel)},
		[]expr.Expr{score},
		[]expr.Expr{key}, []expr.Expr{key}); err == nil {
		t.Error("arity mismatch must be rejected")
	}
	wide := make([]Operator, anykMaxWidth+1)
	scores := make([]expr.Expr, anykMaxWidth+1)
	keys := make([]expr.Expr, anykMaxWidth)
	for i := range wide {
		wide[i] = NewSeqScan(rel)
		scores[i] = score
	}
	for i := range keys {
		keys[i] = key
	}
	if _, err := NewAnyK(wide, scores, keys, keys); err == nil {
		t.Errorf("width beyond %d must be rejected", anykMaxWidth)
	}
}

func TestAnyKEmptyInput(t *testing.T) {
	a := makeRel("A", [][3]float64{{0, 1, 0.5}})
	b := makeRel("B", nil)
	j, err := NewAnyK(
		[]Operator{NewSeqScan(a), NewSeqScan(b)},
		[]expr.Expr{expr.Col("A", "score"), expr.Col("B", "score")},
		[]expr.Expr{expr.Col("A", "key")},
		[]expr.Expr{expr.Col("B", "key")})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(j)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty input join = %v, %v", got, err)
	}
}

func TestAnyKNaNScoreRejected(t *testing.T) {
	a := makeRel("A", [][3]float64{{0, 1, math.NaN()}, {1, 1, 0.5}})
	b := makeRel("B", [][3]float64{{0, 1, 0.5}})
	j, err := NewAnyK(
		[]Operator{NewSeqScan(a), NewSeqScan(b)},
		[]expr.Expr{expr.Col("A", "score"), expr.Col("B", "score")},
		[]expr.Expr{expr.Col("A", "key")},
		[]expr.Expr{expr.Col("B", "key")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(j); err == nil {
		t.Fatal("NaN score must fail the build")
	}
}

// Reopening after a full drain must replay the identical result stream.
func TestAnyKReopen(t *testing.T) {
	_, j := anykFixture(t, 3, 120, 0.1, 1200)
	first, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 || len(first) != len(second) {
		t.Fatalf("reopen replay: %d then %d results", len(first), len(second))
	}
	for i := range first {
		if math.Abs(combinedScoreM(first[i], 3)-combinedScoreM(second[i], 3)) > 1e-9 {
			t.Fatalf("rank %d differs across reopen", i)
		}
	}
}

func TestAnyKStatsAndGauges(t *testing.T) {
	_, j := anykFixture(t, 3, 150, 0.08, 1250)
	out, err := CollectK(j, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Re-open to inspect gauges before Close wipes state.
	if err := j.Open(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := j.Next(); err != nil {
		t.Fatal(err)
	}
	depths := j.Depths()
	if len(depths) != 3 {
		t.Fatalf("Depths len = %d", len(depths))
	}
	for i, d := range depths {
		// The build drains every input fully.
		if d != 150 {
			t.Fatalf("input %d depth %d, want 150", i, d)
		}
	}
	if j.MaxQueue() == 0 {
		t.Error("queue high-water not recorded")
	}
	st := j.Stats()
	if st.LeftDepth != depths[0] || st.RightDepth != depths[2] || st.Emitted != 1 {
		t.Errorf("Stats = %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_ = out
}

// Cancellation mid-build surfaces the typed error within the polling cadence,
// leaves the budget fully released after Close, and leaks no goroutines (the
// operator is single-threaded; the check guards against a future async build).
func TestAnyKQueryCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	b := NewBudget(ResourceLimits{MaxBufferedTuples: 1 << 20})
	_, j := anykFixture(t, 3, 4000, 0.02, 1300)
	j.Budget = b
	ctx, cancel := context.WithCancel(context.Background())
	if err := j.OpenCtx(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	var err error
	for i := 0; i < 2*cancelCheckPeriod; i++ {
		if _, _, err = j.Next(); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrQueryCancelled) {
		t.Fatalf("cancellation not observed: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if b.Buffered() != 0 {
		t.Fatalf("budget not released after cancel+Close: %d still charged", b.Buffered())
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// Cancelling after results have flowed must also surface during enumeration,
// not only during the build.
func TestAnyKCancelMidEnumeration(t *testing.T) {
	_, j := anykFixture(t, 3, 2000, 0.05, 1350)
	ctx, cancel := context.WithCancel(context.Background())
	if err := j.OpenCtx(ctx); err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 3; i++ {
		if _, ok, err := j.Next(); err != nil || !ok {
			t.Fatalf("warm-up pull %d: ok=%v err=%v", i, ok, err)
		}
	}
	cancel()
	var err error
	for i := 0; i < 2*cancelCheckPeriod; i++ {
		if _, _, err = j.Next(); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrQueryCancelled) {
		t.Fatalf("cancellation not observed within polling cadence: %v", err)
	}
}

func TestAnyKBudgetExceeded(t *testing.T) {
	b := NewBudget(ResourceLimits{MaxBufferedTuples: 10})
	_, j := anykFixture(t, 3, 4000, 0.02, 1400)
	j.Budget = b
	_, err := Collect(j)
	if err == nil {
		t.Fatal("tiny buffer budget must fail the build")
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if b.Buffered() != 0 {
		t.Fatalf("budget not released after failed run: %d still charged", b.Buffered())
	}
}

func TestAnyKDepthExceeded(t *testing.T) {
	b := NewBudget(ResourceLimits{MaxDepthPerInput: 7})
	_, j := anykFixture(t, 3, 4000, 0.02, 1450)
	j.Budget = b
	_, err := Collect(j)
	if err == nil {
		t.Fatal("tiny depth cap must fail the drain")
	}
	if !errors.Is(err, ErrDepthExceeded) {
		t.Fatalf("want ErrDepthExceeded, got %v", err)
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("ErrDepthExceeded must wrap ErrBudgetExceeded, got %v", err)
	}
}

// TestAnyKPopAllocs pins the enumeration hot path: after the build, each pop
// costs the output tuple plus amortized heap growth — the inline index
// vectors mean successor pushes allocate nothing. Budget 3 per pop leaves
// room for growth spikes while catching any regression to boxed solutions.
func TestAnyKPopAllocs(t *testing.T) {
	_, j := anykFixture(t, 3, 1500, 0.05, 1500)
	if err := j.Open(); err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	// First Next triggers the build; a few more warm the queue.
	for i := 0; i < 32; i++ {
		if _, ok, err := j.Next(); err != nil || !ok {
			t.Fatalf("warm-up pull %d: ok=%v err=%v", i, ok, err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok, err := j.Next(); err != nil || !ok {
			t.Fatalf("pop failed: ok=%v err=%v", ok, err)
		}
	})
	t.Logf("AnyK: %.2f allocs per pop", allocs)
	if allocs > 3.0 {
		t.Errorf("AnyK pop hot path allocates %.2f/pop, budget 3.0", allocs)
	}
}

package engine

// Admission control bounds the sessions executing simultaneously. The
// mechanism is a buffered-channel semaphore: cheap when a slot is free (one
// non-blocking channel send), and a timed select against the session's
// context when the engine is saturated. Because RunCtx applies the query
// deadline to the context BEFORE admission, a queued session expires on the
// same clock as a running one — waiting in line is not free time.

import (
	"context"
	"errors"
	"time"

	"rankopt/internal/exec"
)

// ErrAdmissionTimeout reports that a session waited longer than the engine's
// Config.AdmissionTimeout for an execution slot.
var ErrAdmissionTimeout = errors.New("engine: admission queue timeout")

// admission is the engine's in-flight session bound.
type admission struct {
	slots   chan struct{}
	timeout time.Duration
}

func newAdmission(max int, timeout time.Duration) *admission {
	return &admission{slots: make(chan struct{}, max), timeout: timeout}
}

// acquire blocks until a slot frees, the context dies, or the admission
// timeout elapses — in that priority order on the fast path.
func (a *admission) acquire(ctx context.Context) error {
	// Fast path: a free slot costs one non-blocking send.
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	if err := exec.CtxErr(ctx); err != nil {
		return err
	}
	if a.timeout <= 0 {
		select {
		case a.slots <- struct{}{}:
			return nil
		case <-ctx.Done():
			return exec.CtxErr(ctx)
		}
	}
	t := time.NewTimer(a.timeout)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return exec.CtxErr(ctx)
	case <-t.C:
		return ErrAdmissionTimeout
	}
}

// release frees the session's slot; nil-safe so the unbounded engine calls
// it unconditionally.
func (a *admission) release() {
	if a == nil {
		return
	}
	<-a.slots
}

// inFlight reports the sessions currently holding slots. (Queue depth —
// sessions waiting for a slot — is tracked by metrics.admissionWaiting; the
// channel alone cannot distinguish waiters from free capacity.)
func (a *admission) inFlight() int {
	if a == nil {
		return 0
	}
	return len(a.slots)
}

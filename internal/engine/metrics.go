package engine

// This file is the engine-wide observability layer: every query session,
// whatever goroutine runs it, lands in one block of atomic counters plus a
// fixed-bucket latency histogram. Snapshot() exposes the aggregate
// programmatically and DebugMux serves it over HTTP (stdlib only) as
// Prometheus-style text at /metrics and as a JSON document at /debug/engine.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"rankopt/internal/core"
	"rankopt/internal/exec"
	"rankopt/internal/plan"
)

// latencyBucketBounds are the histogram's inclusive upper bounds. The
// geometric 1-2.5-5 ladder spans sub-millisecond cache hits up to
// multi-second cold optimizer runs; an implicit overflow bucket catches the
// rest. Fixed buckets keep observation allocation-free and lock-free.
var latencyBucketBounds = [...]time.Duration{
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
}

const numLatencyBuckets = len(latencyBucketBounds) + 1

// Per-operator-type histograms: one depth and one latency histogram per
// rank-aware operator kind, so HRJN vs AnyK vs ShardMerge behavior is
// visible in aggregate on /metrics, not only per query in EXPLAIN ANALYZE.
const (
	histOpHRJN = iota
	histOpNRJN
	histOpAnyK
	histOpTopK
	histOpShardMerge
	numHistOps
)

// histOpNames spell the `op` label values on /metrics.
var histOpNames = [numHistOps]string{"HRJN", "NRJN", "AnyK", "TopKSort", "ShardMerge"}

// histOpIndex maps a plan operator to its histogram slot (-1: not tracked).
func histOpIndex(op plan.OpType) int {
	switch op {
	case plan.OpHRJN:
		return histOpHRJN
	case plan.OpNRJN:
		return histOpNRJN
	case plan.OpAnyK:
		return histOpAnyK
	case plan.OpTopK:
		return histOpTopK
	}
	return -1
}

// opDepthBounds are the depth histogram's inclusive upper bounds (tuples
// consumed per input for rank joins and any-k, heap high-water for TopK,
// tuples pulled for the shard coordinator). Powers of four: depths span
// k≈1 lookups to full-input drains.
var opDepthBounds = [...]int64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}

// opLatencyBoundsNanos reuse the session latency ladder for per-operator
// wall time.
var opLatencyBoundsNanos = func() []int64 {
	out := make([]int64, len(latencyBucketBounds))
	for i, d := range latencyBucketBounds {
		out[i] = d.Nanoseconds()
	}
	return out
}()

// opHist is one lock-free fixed-bucket histogram. The bucket array is sized
// for the larger (latency) bound ladder; the depth family uses a prefix.
type opHist struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [numLatencyBuckets]atomic.Uint64
}

func (h *opHist) observe(bounds []int64, v int64) {
	h.count.Add(1)
	if v > 0 {
		h.sum.Add(uint64(v))
	}
	for i, b := range bounds {
		if v <= b {
			h.buckets[i].Add(1)
			return
		}
	}
	h.buckets[len(bounds)].Add(1)
}

// quantile returns the upper bound of the first bucket reaching q·count
// (the overflow bucket saturates at the largest finite bound).
func (h *opHist) quantile(bounds []int64, q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	need := uint64(q * float64(total))
	if need == 0 {
		need = 1
	}
	var cum uint64
	for i, b := range bounds {
		cum += h.buckets[i].Load()
		if cum >= need {
			return float64(b)
		}
	}
	return float64(bounds[len(bounds)-1])
}

// Shard fallback reasons: why a session on a sharded engine ran the single
// path anyway. After the shard-aware analyze work, analyze/traced sessions
// run sharded too, so those two labels stay structurally zero — kept so
// dashboards watching the old aggregate see where the fallbacks went.
const (
	shardFallbackNonShardable = iota
	shardFallbackAnalyze
	shardFallbackTraced
	numShardFallbackReasons
)

var shardFallbackReasonNames = [numShardFallbackReasons]string{"non_shardable", "analyze", "traced"}

// greedyReasonNames spell the `reason` label of raqo_greedy_fallbacks_total;
// the order must match greedyReasonIndex.
var greedyReasonNames = [...]string{
	core.GreedyFallbackSingleTable,
	core.GreedyFallbackGrouped,
	core.GreedyFallbackTraced,
	core.GreedyFallbackKeepAll,
	core.GreedyFallbackNoPlan,
}

const numGreedyReasons = len(greedyReasonNames)

func greedyReasonIndex(reason string) int {
	for i, r := range greedyReasonNames {
		if r == reason {
			return i
		}
	}
	return -1
}

// metrics is the engine's live counter block. All fields are atomics:
// observation happens once per session (never per tuple) from arbitrarily
// many worker goroutines.
type metrics struct {
	queries  atomic.Uint64
	errors   atomic.Uint64
	analyzed atomic.Uint64
	tuples   atomic.Uint64

	// cancelled / deadlined / overBudget / admissionTimeouts classify the
	// error sessions by the robustness taxonomy (each such session also
	// counts in errors).
	cancelled         atomic.Uint64
	deadlined         atomic.Uint64
	overBudget        atomic.Uint64
	admissionTimeouts atomic.Uint64
	// admissionWaiting is the live admission-queue depth gauge.
	admissionWaiting atomic.Int64

	// traced counts sessions that carried a span recorder; slowQueries counts
	// sessions logged by the slow-query log.
	traced      atomic.Uint64
	slowQueries atomic.Uint64

	// shardedQueries..shardTuplesSaved aggregate the scatter-gather tier:
	// sessions served by the coordinator, sessions that fell back to the
	// single path despite sharding being on, and the coordinator's shard
	// outcomes (started / pruned before starting / cancelled mid-stream by
	// the bound test) with the shard output the bounds avoided pulling.
	shardedQueries     atomic.Uint64
	shardFallbacks     [numShardFallbackReasons]atomic.Uint64
	shardsStarted      atomic.Uint64
	shardsPruned       atomic.Uint64
	shardsEarlyStopped atomic.Uint64
	shardTuplesSaved   atomic.Uint64

	// greedyFallbacks counts PlannerGreedy sessions that ran the DP anyway,
	// by reason (see greedyReasonNames) — the labeled mirror of
	// core.Result.GreedyFallback.
	greedyFallbacks [numGreedyReasons]atomic.Uint64

	// opDepth / opLatency are the per-operator-type histograms: depths dug
	// (every session, via the rank-join stats hook) and operator wall time
	// (analyzed/traced sessions, which are the only ones that measure it).
	opDepth   [numHistOps]opHist
	opLatency [numHistOps]opHist

	// optRuns..optProtected aggregate the optimizer's enumeration and
	// pruning work over fresh (non-cache-hit) optimizations, the engine-wide
	// view of the Section 3.3 pruning rates.
	optRuns      atomic.Uint64
	optGenerated atomic.Uint64
	optPruned    atomic.Uint64
	optProtected atomic.Uint64

	// anykPlans counts executed sessions whose chosen plan carried an any-k
	// enumerator — the engine-wide view of how often the DP's crossover
	// actually fires in traffic.
	anykPlans atomic.Uint64

	// depthObservations..depthReplans report the depth-feedback loop:
	// rank-joins whose measured depths blew past the estimates by the
	// configured ratio, observations accepted into the store (new split or
	// materially deeper — each bumps a hint epoch), and fresh optimizations
	// that ran with empirical depth hints injected.
	depthObservations atomic.Uint64
	depthAccepted     atomic.Uint64
	depthReplans      atomic.Uint64

	latencySumNanos atomic.Int64
	latency         [numLatencyBuckets]atomic.Uint64
}

// observeOptimize folds one fresh optimizer run's counters into the
// aggregate pruning-rate metrics.
func (m *metrics) observeOptimize(c plan.PlanCounters) {
	m.optRuns.Add(1)
	m.optGenerated.Add(uint64(c.Generated))
	m.optPruned.Add(uint64(c.Pruned))
	m.optProtected.Add(uint64(c.Protected))
}

// observeSharded folds one sharded session's coordinator stats into the
// engine-wide shard counters, plus the coordinator's row in the per-operator
// histograms (depth = tuples pulled across shards, latency = the gather's
// wall time).
func (m *metrics) observeSharded(st *exec.ShardMergeStats, execNanos int64) {
	m.shardedQueries.Add(1)
	m.shardsStarted.Add(uint64(st.Started))
	m.shardsPruned.Add(uint64(st.Pruned))
	m.shardsEarlyStopped.Add(uint64(st.EarlyStopped))
	m.shardTuplesSaved.Add(uint64(st.TuplesSaved))
	m.opDepth[histOpShardMerge].observe(opDepthBounds[:], int64(st.TuplesPulled))
	m.opLatency[histOpShardMerge].observe(opLatencyBoundsNanos, execNanos)
}

// observeShardFallback counts one single-path session on a sharded engine.
func (m *metrics) observeShardFallback(reason int) {
	m.shardFallbacks[reason].Add(1)
}

// observeGreedy counts a greedy-planner fallback by reason.
func (m *metrics) observeGreedy(res *core.Result) {
	if !res.GreedyFallback {
		return
	}
	if i := greedyReasonIndex(res.GreedyFallbackReason); i >= 0 {
		m.greedyFallbacks[i].Add(1)
	}
}

// observeOpDepth / observeOpLatency fold one operator measurement into the
// per-type histograms; idx < 0 (untracked operator) is a no-op.
func (m *metrics) observeOpDepth(idx int, v int64) {
	if idx >= 0 {
		m.opDepth[idx].observe(opDepthBounds[:], v)
	}
}

func (m *metrics) observeOpLatency(idx int, nanos int64) {
	if idx >= 0 {
		m.opLatency[idx].observe(opLatencyBoundsNanos, nanos)
	}
}

// shardFallbackTotal sums the reason-labeled fallback counters.
func (m *metrics) shardFallbackTotal() uint64 {
	var total uint64
	for i := range m.shardFallbacks {
		total += m.shardFallbacks[i].Load()
	}
	return total
}

// bucketFor maps a session latency to its histogram bucket.
func bucketFor(d time.Duration) int {
	for i, b := range latencyBucketBounds {
		if d <= b {
			return i
		}
	}
	return len(latencyBucketBounds)
}

// observe folds one finished session into the counters.
func (m *metrics) observe(resp *Response, analyzed bool) {
	m.queries.Add(1)
	if resp.Err != nil {
		m.errors.Add(1)
		switch {
		case errors.Is(resp.Err, exec.ErrDeadlineExceeded):
			m.deadlined.Add(1)
		case errors.Is(resp.Err, exec.ErrQueryCancelled):
			m.cancelled.Add(1)
		case errors.Is(resp.Err, exec.ErrBudgetExceeded):
			m.overBudget.Add(1)
		case errors.Is(resp.Err, ErrAdmissionTimeout):
			m.admissionTimeouts.Add(1)
		}
	}
	if analyzed {
		m.analyzed.Add(1)
	}
	m.tuples.Add(uint64(len(resp.Tuples)))
	m.latencySumNanos.Add(resp.Elapsed.Nanoseconds())
	m.latency[bucketFor(resp.Elapsed)].Add(1)
}

// LatencyBucket is one cumulative histogram step of a Metrics snapshot.
type LatencyBucket struct {
	// UpperBoundMillis is the bucket's inclusive upper bound; the overflow
	// bucket reports +Inf as a negative bound in JSON-friendly form (-1).
	UpperBoundMillis float64 `json:"upper_bound_ms"`
	// CumulativeCount counts sessions at or under the bound.
	CumulativeCount uint64 `json:"cumulative_count"`
}

// Metrics is a point-in-time snapshot of the engine-wide counters.
type Metrics struct {
	Queries        uint64 `json:"queries"`
	Errors         uint64 `json:"errors"`
	Analyzed       uint64 `json:"analyzed"`
	TuplesReturned uint64 `json:"tuples_returned"`

	QueriesCancelled  uint64 `json:"queries_cancelled"`
	QueriesDeadlined  uint64 `json:"queries_deadline_exceeded"`
	QueriesOverBudget uint64 `json:"queries_over_budget"`
	AdmissionTimeouts uint64 `json:"admission_timeouts"`
	AdmissionWaiting  int64  `json:"admission_waiting"`
	InFlight          int    `json:"in_flight"`

	CacheHits          uint64 `json:"cache_hits"`
	CacheMisses        uint64 `json:"cache_misses"`
	CacheInvalidations uint64 `json:"cache_invalidations"`
	CacheEntries       int    `json:"cache_entries"`

	TracedQueries uint64 `json:"traced_queries"`
	SlowQueries   uint64 `json:"slow_queries"`

	// ShardedQueries..ShardTuplesSaved report the scatter-gather tier (all
	// zero on an unsharded engine). ShardFallbacks is the total;
	// ShardFallbacksByReason splits it (non_shardable / analyze / traced).
	ShardedQueries         uint64            `json:"sharded_queries"`
	ShardFallbacks         uint64            `json:"shard_fallbacks"`
	ShardFallbacksByReason map[string]uint64 `json:"shard_fallbacks_by_reason"`
	ShardsStarted          uint64            `json:"shards_started"`
	ShardsPruned           uint64            `json:"shards_pruned"`
	ShardsEarlyStopped     uint64            `json:"shards_early_stopped"`
	ShardTuplesSaved       uint64            `json:"shard_tuples_saved"`

	// GreedyFallbacksByReason counts PlannerGreedy sessions that fell back
	// to the DP, by cause (empty map when the greedy planner is unused).
	GreedyFallbacksByReason map[string]uint64 `json:"greedy_fallbacks_by_reason"`

	// Operators are the per-operator-type depth/latency histograms in
	// summary form (full buckets are on /metrics).
	Operators []OperatorMetrics `json:"operators"`

	// OptimizerRuns..PlansProtected aggregate fresh (non-cached) optimizer
	// runs: candidates enumerated, discarded by the Section 3.3 pruning, and
	// pipelined plans kept alive by the First-N-Rows protection.
	OptimizerRuns  uint64 `json:"optimizer_runs"`
	PlansGenerated uint64 `json:"plans_generated"`
	PlansPruned    uint64 `json:"plans_pruned"`
	PlansProtected uint64 `json:"plans_protected"`

	// AnyKPlans counts executed sessions whose chosen plan carried an any-k
	// enumerator.
	AnyKPlans uint64 `json:"anyk_plans"`

	// DepthObservations..DepthReplans report the depth-feedback loop (all
	// zero when Config.DepthFeedbackRatio is 0): mispredicted rank-joins
	// seen, observations accepted into the feedback store, and
	// re-optimizations that ran with empirical depth hints.
	DepthObservations uint64 `json:"depth_feedback_observations"`
	DepthAccepted     uint64 `json:"depth_feedback_accepted"`
	DepthReplans      uint64 `json:"depth_feedback_replans"`

	AvgLatencyMillis float64 `json:"avg_latency_ms"`
	// P50LatencyMillis and P99LatencyMillis are histogram-quantile estimates:
	// the upper bound of the bucket containing the quantile (the usual
	// fixed-bucket approximation).
	P50LatencyMillis float64         `json:"p50_latency_ms"`
	P99LatencyMillis float64         `json:"p99_latency_ms"`
	LatencyBuckets   []LatencyBucket `json:"latency_buckets"`

	Runtime RuntimeStats `json:"runtime"`
}

// OperatorMetrics summarizes one operator type's histograms: how deep it
// dug (depth samples: per-input tuples consumed for rank joins and any-k,
// heap high-water for TopK, tuples pulled for ShardMerge) and how long it
// ran (from analyzed/traced sessions, the only ones that time operators).
type OperatorMetrics struct {
	Op               string  `json:"op"`
	DepthCount       uint64  `json:"depth_count"`
	DepthSum         uint64  `json:"depth_sum"`
	DepthP50         float64 `json:"depth_p50"`
	DepthP99         float64 `json:"depth_p99"`
	LatencyCount     uint64  `json:"latency_count"`
	LatencySumNanos  uint64  `json:"latency_sum_ns"`
	LatencyP50Millis float64 `json:"latency_p50_ms"`
	LatencyP99Millis float64 `json:"latency_p99_ms"`
}

// RuntimeStats is the Go runtime's health snapshot riding along with the
// engine counters: goroutine count, heap occupancy, and GC behavior
// (cycle count plus the p99 of the runtime's recent-pause ring buffer).
type RuntimeStats struct {
	Goroutines       int     `json:"goroutines"`
	HeapAllocBytes   uint64  `json:"heap_alloc_bytes"`
	HeapObjects      uint64  `json:"heap_objects"`
	GCCycles         uint32  `json:"gc_cycles"`
	GCPauseP99Micros float64 `json:"gc_pause_p99_us"`
	GCPauseLastNanos uint64  `json:"gc_pause_last_ns"`
}

// readRuntimeStats samples the Go runtime. ReadMemStats stops the world
// briefly; monitoring cadence, not per-query cadence.
func readRuntimeStats() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rs := RuntimeStats{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapObjects:    ms.HeapObjects,
		GCCycles:       ms.NumGC,
	}
	if ms.NumGC > 0 {
		rs.GCPauseLastNanos = ms.PauseNs[(ms.NumGC+255)%256]
		n := int(ms.NumGC)
		if n > len(ms.PauseNs) {
			n = len(ms.PauseNs)
		}
		// PauseNs is a ring holding the most recent 256 pauses; walking back
		// from index NumGC-1 covers exactly the valid entries.
		pauses := make([]uint64, n)
		for i := 0; i < n; i++ {
			pauses[i] = ms.PauseNs[(int(ms.NumGC)-1-i)%len(ms.PauseNs)]
		}
		sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
		idx := (99*n - 1) / 100
		rs.GCPauseP99Micros = float64(pauses[idx]) / 1e3
	}
	return rs
}

// Snapshot captures the engine-wide counters. Buckets are read without a
// global lock, so a snapshot taken mid-traffic may be off by in-flight
// sessions — fine for monitoring, which is its job.
func (e *Engine) Snapshot() Metrics {
	m := Metrics{
		Queries:            e.met.queries.Load(),
		Errors:             e.met.errors.Load(),
		Analyzed:           e.met.analyzed.Load(),
		TuplesReturned:     e.met.tuples.Load(),
		QueriesCancelled:   e.met.cancelled.Load(),
		QueriesDeadlined:   e.met.deadlined.Load(),
		QueriesOverBudget:  e.met.overBudget.Load(),
		AdmissionTimeouts:  e.met.admissionTimeouts.Load(),
		AdmissionWaiting:   e.met.admissionWaiting.Load(),
		InFlight:           e.adm.inFlight(),
		TracedQueries:      e.met.traced.Load(),
		SlowQueries:        e.met.slowQueries.Load(),
		ShardedQueries:     e.met.shardedQueries.Load(),
		ShardFallbacks:     e.met.shardFallbackTotal(),
		ShardsStarted:      e.met.shardsStarted.Load(),
		ShardsPruned:       e.met.shardsPruned.Load(),
		ShardsEarlyStopped: e.met.shardsEarlyStopped.Load(),
		ShardTuplesSaved:   e.met.shardTuplesSaved.Load(),
		OptimizerRuns:      e.met.optRuns.Load(),
		PlansGenerated:     e.met.optGenerated.Load(),
		PlansPruned:        e.met.optPruned.Load(),
		PlansProtected:     e.met.optProtected.Load(),
		AnyKPlans:          e.met.anykPlans.Load(),
		DepthObservations:  e.met.depthObservations.Load(),
		DepthAccepted:      e.met.depthAccepted.Load(),
		DepthReplans:       e.met.depthReplans.Load(),
		Runtime:            readRuntimeStats(),
	}
	m.ShardFallbacksByReason = map[string]uint64{}
	for i, name := range shardFallbackReasonNames {
		m.ShardFallbacksByReason[name] = e.met.shardFallbacks[i].Load()
	}
	m.GreedyFallbacksByReason = map[string]uint64{}
	for i, name := range greedyReasonNames {
		if v := e.met.greedyFallbacks[i].Load(); v > 0 {
			m.GreedyFallbacksByReason[name] = v
		}
	}
	for i, name := range histOpNames {
		d, l := &e.met.opDepth[i], &e.met.opLatency[i]
		m.Operators = append(m.Operators, OperatorMetrics{
			Op:               name,
			DepthCount:       d.count.Load(),
			DepthSum:         d.sum.Load(),
			DepthP50:         d.quantile(opDepthBounds[:], 0.50),
			DepthP99:         d.quantile(opDepthBounds[:], 0.99),
			LatencyCount:     l.count.Load(),
			LatencySumNanos:  l.sum.Load(),
			LatencyP50Millis: l.quantile(opLatencyBoundsNanos, 0.50) / 1e6,
			LatencyP99Millis: l.quantile(opLatencyBoundsNanos, 0.99) / 1e6,
		})
	}
	cs := e.CacheStats()
	m.CacheHits, m.CacheMisses = cs.Hits, cs.Misses
	m.CacheInvalidations, m.CacheEntries = cs.Invalidations, cs.Entries
	if m.Queries > 0 {
		m.AvgLatencyMillis = float64(e.met.latencySumNanos.Load()) / float64(m.Queries) / 1e6
	}
	var cum uint64
	total := m.Queries
	for i := 0; i < numLatencyBuckets; i++ {
		cum += e.met.latency[i].Load()
		m.LatencyBuckets = append(m.LatencyBuckets, LatencyBucket{
			UpperBoundMillis: bucketBoundMillis(i),
			CumulativeCount:  cum,
		})
	}
	m.P50LatencyMillis = quantileBound(&e.met, total, 0.50)
	m.P99LatencyMillis = quantileBound(&e.met, total, 0.99)
	return m
}

// bucketBoundMillis renders bucket i's upper bound (-1 encodes +Inf).
func bucketBoundMillis(i int) float64 {
	if i >= len(latencyBucketBounds) {
		return -1
	}
	return float64(latencyBucketBounds[i]) / 1e6
}

// quantileBound returns the upper bound (ms) of the first bucket whose
// cumulative count reaches q·total; the overflow bucket reports the largest
// finite bound (the estimate saturates there).
func quantileBound(m *metrics, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	need := uint64(q * float64(total))
	if need == 0 {
		need = 1
	}
	var cum uint64
	for i := 0; i < numLatencyBuckets; i++ {
		cum += m.latency[i].Load()
		if cum >= need {
			if i >= len(latencyBucketBounds) {
				break
			}
			return float64(latencyBucketBounds[i]) / 1e6
		}
	}
	return float64(latencyBucketBounds[len(latencyBucketBounds)-1]) / 1e6
}

// DebugMux returns an http.Handler (stdlib ServeMux) exposing the engine:
//
//	/metrics        Prometheus-style text counters + latency histograms
//	/debug/engine   the full Metrics snapshot as JSON
//	/debug/queries  the live query registry as JSON: every running session's
//	                state, rank-aware progress (emitted/k, k-th score vs
//	                merge bound), and shard liveness, plus recently finished
//	                sessions. POST /debug/queries/{id}/cancel aborts a live
//	                session by registry ID.
//	/debug/pprof/   the Go runtime profiles (CPU, heap, goroutine, block,
//	                mutex, execution trace) via net/http/pprof — registered
//	                explicitly so they ride this private mux rather than
//	                http.DefaultServeMux
//
// Mount it on any server, e.g. http.ListenAndServe(addr, eng.DebugMux()).
func (e *Engine) DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", e.serveMetricsText)
	mux.HandleFunc("/debug/engine", e.serveDebugJSON)
	mux.HandleFunc("GET /debug/queries", e.serveQueries)
	mux.HandleFunc("POST /debug/queries/{id}/cancel", e.serveQueryCancel)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveMetricsText writes the Prometheus text exposition format.
func (e *Engine) serveMetricsText(w http.ResponseWriter, _ *http.Request) {
	m := e.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# TYPE raqo_queries_total counter\nraqo_queries_total %d\n", m.Queries)
	fmt.Fprintf(w, "# TYPE raqo_errors_total counter\nraqo_errors_total %d\n", m.Errors)
	fmt.Fprintf(w, "# TYPE raqo_analyzed_queries_total counter\nraqo_analyzed_queries_total %d\n", m.Analyzed)
	fmt.Fprintf(w, "# TYPE raqo_tuples_returned_total counter\nraqo_tuples_returned_total %d\n", m.TuplesReturned)
	fmt.Fprintf(w, "# TYPE raqo_queries_cancelled_total counter\nraqo_queries_cancelled_total %d\n", m.QueriesCancelled)
	fmt.Fprintf(w, "# TYPE raqo_queries_deadline_exceeded_total counter\nraqo_queries_deadline_exceeded_total %d\n", m.QueriesDeadlined)
	fmt.Fprintf(w, "# TYPE raqo_queries_over_budget_total counter\nraqo_queries_over_budget_total %d\n", m.QueriesOverBudget)
	fmt.Fprintf(w, "# TYPE raqo_admission_timeouts_total counter\nraqo_admission_timeouts_total %d\n", m.AdmissionTimeouts)
	fmt.Fprintf(w, "# TYPE raqo_admission_waiting gauge\nraqo_admission_waiting %d\n", m.AdmissionWaiting)
	fmt.Fprintf(w, "# TYPE raqo_sessions_in_flight gauge\nraqo_sessions_in_flight %d\n", m.InFlight)
	fmt.Fprintf(w, "# TYPE raqo_plan_cache_hits_total counter\nraqo_plan_cache_hits_total %d\n", m.CacheHits)
	fmt.Fprintf(w, "# TYPE raqo_plan_cache_misses_total counter\nraqo_plan_cache_misses_total %d\n", m.CacheMisses)
	fmt.Fprintf(w, "# TYPE raqo_plan_cache_entries gauge\nraqo_plan_cache_entries %d\n", m.CacheEntries)
	fmt.Fprintf(w, "# TYPE raqo_traced_queries_total counter\nraqo_traced_queries_total %d\n", m.TracedQueries)
	fmt.Fprintf(w, "# TYPE raqo_slow_queries_total counter\nraqo_slow_queries_total %d\n", m.SlowQueries)
	fmt.Fprintf(w, "# TYPE raqo_sharded_queries_total counter\nraqo_sharded_queries_total %d\n", m.ShardedQueries)
	fmt.Fprintf(w, "# TYPE raqo_shard_fallbacks_total counter\n")
	for _, name := range shardFallbackReasonNames {
		fmt.Fprintf(w, "raqo_shard_fallbacks_total{reason=%q} %d\n", name, m.ShardFallbacksByReason[name])
	}
	fmt.Fprintf(w, "# TYPE raqo_greedy_fallbacks_total counter\n")
	for i, name := range greedyReasonNames {
		fmt.Fprintf(w, "raqo_greedy_fallbacks_total{reason=%q} %d\n", name, e.met.greedyFallbacks[i].Load())
	}
	fmt.Fprintf(w, "# TYPE raqo_shards_started_total counter\nraqo_shards_started_total %d\n", m.ShardsStarted)
	fmt.Fprintf(w, "# TYPE raqo_shards_pruned_total counter\nraqo_shards_pruned_total %d\n", m.ShardsPruned)
	fmt.Fprintf(w, "# TYPE raqo_shards_early_stopped_total counter\nraqo_shards_early_stopped_total %d\n", m.ShardsEarlyStopped)
	fmt.Fprintf(w, "# TYPE raqo_shard_tuples_saved_total counter\nraqo_shard_tuples_saved_total %d\n", m.ShardTuplesSaved)
	fmt.Fprintf(w, "# TYPE raqo_optimizer_runs_total counter\nraqo_optimizer_runs_total %d\n", m.OptimizerRuns)
	fmt.Fprintf(w, "# TYPE raqo_optimizer_plans_generated_total counter\nraqo_optimizer_plans_generated_total %d\n", m.PlansGenerated)
	fmt.Fprintf(w, "# TYPE raqo_optimizer_plans_pruned_total counter\nraqo_optimizer_plans_pruned_total %d\n", m.PlansPruned)
	fmt.Fprintf(w, "# TYPE raqo_optimizer_plans_protected_total counter\nraqo_optimizer_plans_protected_total %d\n", m.PlansProtected)
	fmt.Fprintf(w, "# TYPE raqo_anyk_plans_total counter\nraqo_anyk_plans_total %d\n", m.AnyKPlans)
	fmt.Fprintf(w, "# TYPE raqo_depth_feedback_observations_total counter\nraqo_depth_feedback_observations_total %d\n", m.DepthObservations)
	fmt.Fprintf(w, "# TYPE raqo_depth_feedback_accepted_total counter\nraqo_depth_feedback_accepted_total %d\n", m.DepthAccepted)
	fmt.Fprintf(w, "# TYPE raqo_depth_feedback_replans_total counter\nraqo_depth_feedback_replans_total %d\n", m.DepthReplans)
	fmt.Fprintf(w, "# TYPE raqo_goroutines gauge\nraqo_goroutines %d\n", m.Runtime.Goroutines)
	fmt.Fprintf(w, "# TYPE raqo_heap_alloc_bytes gauge\nraqo_heap_alloc_bytes %d\n", m.Runtime.HeapAllocBytes)
	fmt.Fprintf(w, "# TYPE raqo_gc_cycles_total counter\nraqo_gc_cycles_total %d\n", m.Runtime.GCCycles)
	fmt.Fprintf(w, "# TYPE raqo_gc_pause_p99_seconds gauge\nraqo_gc_pause_p99_seconds %g\n", m.Runtime.GCPauseP99Micros/1e6)
	fmt.Fprintf(w, "# TYPE raqo_query_latency_seconds histogram\n")
	for _, b := range m.LatencyBuckets {
		le := "+Inf"
		if b.UpperBoundMillis >= 0 {
			le = fmt.Sprintf("%g", b.UpperBoundMillis/1e3)
		}
		fmt.Fprintf(w, "raqo_query_latency_seconds_bucket{le=%q} %d\n", le, b.CumulativeCount)
	}
	fmt.Fprintf(w, "raqo_query_latency_seconds_sum %g\n", float64(e.met.latencySumNanos.Load())/1e9)
	fmt.Fprintf(w, "raqo_query_latency_seconds_count %d\n", m.Queries)
	fmt.Fprintf(w, "# TYPE raqo_operator_depth histogram\n")
	for i, name := range histOpNames {
		h := &e.met.opDepth[i]
		var cum uint64
		for bi, bound := range opDepthBounds {
			cum += h.buckets[bi].Load()
			fmt.Fprintf(w, "raqo_operator_depth_bucket{op=%q,le=\"%d\"} %d\n", name, bound, cum)
		}
		cum += h.buckets[len(opDepthBounds)].Load()
		fmt.Fprintf(w, "raqo_operator_depth_bucket{op=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "raqo_operator_depth_sum{op=%q} %d\n", name, h.sum.Load())
		fmt.Fprintf(w, "raqo_operator_depth_count{op=%q} %d\n", name, h.count.Load())
	}
	fmt.Fprintf(w, "# TYPE raqo_operator_latency_seconds histogram\n")
	for i, name := range histOpNames {
		h := &e.met.opLatency[i]
		var cum uint64
		for bi, bound := range opLatencyBoundsNanos {
			cum += h.buckets[bi].Load()
			fmt.Fprintf(w, "raqo_operator_latency_seconds_bucket{op=%q,le=\"%g\"} %d\n", name, float64(bound)/1e9, cum)
		}
		cum += h.buckets[len(opLatencyBoundsNanos)].Load()
		fmt.Fprintf(w, "raqo_operator_latency_seconds_bucket{op=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "raqo_operator_latency_seconds_sum{op=%q} %g\n", name, float64(h.sum.Load())/1e9)
		fmt.Fprintf(w, "raqo_operator_latency_seconds_count{op=%q} %d\n", name, h.count.Load())
	}
}

// serveDebugJSON writes the JSON snapshot.
func (e *Engine) serveDebugJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(e.Snapshot())
}

// serveQueries writes the live query registry as JSON.
func (e *Engine) serveQueries(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	qs := e.Queries()
	if qs == nil {
		qs = []QueryInfo{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Queries []QueryInfo `json:"queries"`
	}{qs})
}

// serveQueryCancel aborts a live session by registry ID.
func (e *Engine) serveQueryCancel(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad query id", http.StatusBadRequest)
		return
	}
	cancelled := e.CancelQuery(id)
	w.Header().Set("Content-Type", "application/json")
	if !cancelled {
		w.WriteHeader(http.StatusNotFound)
	}
	fmt.Fprintf(w, "{\"id\": %d, \"cancelled\": %t}\n", id, cancelled)
}

package engine

import (
	"strings"
	"testing"

	"rankopt/internal/expr"
	"rankopt/internal/logical"
	"rankopt/internal/plan"
)

// rankJoinPredLabel must not index EqPreds[0] unguarded: an NRJN over a
// residual-only predicate has no equi-predicates.
func TestRankJoinPredLabelEqPredFreeNRJN(t *testing.T) {
	n := &plan.Node{
		Op:   plan.OpNRJN,
		Pred: expr.Bin(expr.OpLt, expr.Col("A", "key"), expr.Col("B", "key")),
	}
	if got := rankJoinPredLabel(n); !strings.Contains(got, "<") || got == "<no predicate>" {
		t.Errorf("residual-only label = %q, want the predicate text", got)
	}
	if got := rankJoinPredLabel(&plan.Node{Op: plan.OpNRJN}); got != "<no predicate>" {
		t.Errorf("bare node label = %q", got)
	}
	withEq := &plan.Node{
		Op:      plan.OpNRJN,
		EqPreds: []logical.JoinPred{{L: expr.Col("A", "key"), R: expr.Col("B", "key")}},
	}
	if got := rankJoinPredLabel(withEq); !strings.Contains(got, "A.key") {
		t.Errorf("equi-pred label = %q, want it to name A.key", got)
	}
}

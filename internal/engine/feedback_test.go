package engine

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"rankopt/internal/catalog"
	"rankopt/internal/core"
	"rankopt/internal/estimate"
	"rankopt/internal/relation"
)

// antiCorrCatalog builds the workload the Section-4 depth model mispredicts
// by construction: T1's scores rise with the join key while T2's fall with
// it, so the top of T1's ranking only joins with the bottom of T2's. The
// model assumes scores independent of join keys and predicts shallow
// depths; a rank join actually has to descend essentially both full inputs
// before its threshold closes. This is exactly the estimation failure the
// depth-feedback loop exists to repair.
func antiCorrCatalog(t *testing.T, n, domain int) *catalog.Catalog {
	t.Helper()
	mk := func(name string, invert bool, seed int64) *relation.Relation {
		sch := relation.NewSchema(
			relation.Column{Table: name, Name: "id", Kind: relation.KindInt},
			relation.Column{Table: name, Name: "key", Kind: relation.KindInt},
			relation.Column{Table: name, Name: "score", Kind: relation.KindFloat},
		)
		rel := relation.New(name, sch)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			key := rng.Intn(domain)
			pos := float64(key) / float64(domain)
			if invert {
				pos = 1 - pos
			}
			score := 0.9*pos + 0.1*rng.Float64()
			rel.MustAppend(relation.Tuple{
				relation.Int(int64(i)),
				relation.Int(int64(key)),
				relation.Float(score),
			})
		}
		return rel
	}
	cat := catalog.New()
	cat.AddTable(mk("T1", false, 401))
	cat.AddTable(mk("T2", true, 402))
	for _, tb := range []string{"T1", "T2"} {
		for _, col := range []string{"score", "key"} {
			if _, err := cat.CreateIndex(tb, col, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	return cat
}

// topScores extracts the result's combined T1.score+T2.score values in
// result order, so two runs can be compared on the answer itself (tuple
// identity may legitimately differ under score ties).
func topScores(t *testing.T, resp Response) []float64 {
	t.Helper()
	i1, i2 := -1, -1
	for i, c := range resp.Columns {
		switch c {
		case "T1.score":
			i1 = i
		case "T2.score":
			i2 = i
		}
	}
	if i1 < 0 || i2 < 0 {
		t.Fatalf("score columns missing from %v", resp.Columns)
	}
	out := make([]float64, len(resp.Tuples))
	for i, tp := range resp.Tuples {
		out[i] = tp[i1].AsFloat() + tp[i2].AsFloat()
	}
	return out
}

func depthSum(resp Response) int {
	s := 0
	for _, rj := range resp.RankJoins {
		s += rj.Stats.LeftDepth + rj.Stats.RightDepth
	}
	return s
}

// TestDepthFeedbackConverges is the loop's end-to-end acceptance test: a
// deliberately mis-estimated workload re-optimizes after one feedback epoch
// into a plan with strictly lower actual rank-join depths, the answer stays
// identical, and the loop then settles (the third run is a cache hit, not an
// invalidation storm).
func TestDepthFeedbackConverges(t *testing.T) {
	cat := antiCorrCatalog(t, 3000, 1000)
	eng := NewWithConfig(cat, Config{DepthFeedbackRatio: 2})
	sql := "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 5"

	// Epoch 0: the model's plan. The premise of the test is that the
	// estimates are badly wrong here — assert it so a future estimator
	// improvement degrades this test loudly instead of silently.
	r1 := eng.Run(Request{ID: "cold", SQL: sql})
	if r1.Err != nil {
		t.Fatal(r1.Err)
	}
	if len(r1.RankJoins) == 0 {
		t.Fatalf("cold run chose no rank join; workload no longer exercises the model")
	}
	misestimated := false
	for _, rj := range r1.RankJoins {
		if float64(rj.Stats.LeftDepth) > 2*math.Max(rj.EstDL, 1) ||
			float64(rj.Stats.RightDepth) > 2*math.Max(rj.EstDR, 1) {
			misestimated = true
		}
	}
	if !misestimated {
		t.Fatalf("model was not mis-estimated (depths %+v); the feedback premise is gone", r1.RankJoins)
	}

	// Epoch 1: the observation must have invalidated the cached plan, and
	// the re-optimized plan must do strictly less rank-join work.
	r2 := eng.Run(Request{ID: "warm", SQL: sql})
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	if r2.CacheHit {
		t.Fatal("second run hit the cache; the depth observation did not invalidate the plan")
	}
	d1, d2 := depthSum(r1), depthSum(r2)
	if d2 >= d1 {
		t.Fatalf("no convergence: depths %d -> %d (plan did not improve)", d1, d2)
	}

	// The answer must not change — feedback repriced the plan, not the query.
	s1, s2 := topScores(t, r1), topScores(t, r2)
	sort.Sort(sort.Reverse(sort.Float64Slice(s1)))
	sort.Sort(sort.Reverse(sort.Float64Slice(s2)))
	if len(s1) != len(s2) {
		t.Fatalf("result size changed: %d -> %d", len(s1), len(s2))
	}
	for i := range s1 {
		if math.Abs(s1[i]-s2[i]) > 1e-9 {
			t.Fatalf("rank %d: score %v -> %v", i, s1[i], s2[i])
		}
	}

	// The loop must settle: run three serves from the cache (the improved
	// plan's depths no longer trip the ratio, or repeat observations are not
	// materially deeper, so the hint epoch holds still).
	r3 := eng.Run(Request{ID: "settled", SQL: sql})
	if r3.Err != nil {
		t.Fatal(r3.Err)
	}
	if !r3.CacheHit {
		t.Fatal("third run missed the cache; the feedback loop is thrashing")
	}

	m := eng.Snapshot()
	if m.DepthObservations == 0 || m.DepthAccepted == 0 || m.DepthReplans == 0 {
		t.Fatalf("feedback metrics not reported: %+v", m)
	}
}

// TestDepthFeedbackOff: without the config knob nothing is observed, no
// epoch moves, and the second run is a plain cache hit.
func TestDepthFeedbackOff(t *testing.T) {
	cat := antiCorrCatalog(t, 1000, 40)
	eng := New(cat, core.Options{})
	sql := "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 5"
	r1 := eng.Run(Request{SQL: sql})
	if r1.Err != nil {
		t.Fatal(r1.Err)
	}
	r2 := eng.Run(Request{SQL: sql})
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	if !r2.CacheHit {
		t.Fatal("cache miss with feedback off")
	}
	if m := eng.Snapshot(); m.DepthObservations != 0 || m.DepthReplans != 0 {
		t.Fatalf("feedback metrics moved with the loop off: %+v", m)
	}
}

// TestFeedbackStoreMateriality pins the store's convergence contract: the
// first observation of a split bumps the epoch, a repeat within the growth
// factor does not, and a materially deeper repeat does.
func TestFeedbackStoreMateriality(t *testing.T) {
	f := newFeedbackStore()
	if !f.observe("fp", "T1|T2", estimate.Observed{K: 5, DL: 100, DR: 100}) {
		t.Fatal("first observation not accepted")
	}
	if f.epochFor("fp") != 1 {
		t.Fatalf("epoch %d after first observation", f.epochFor("fp"))
	}
	// Slightly deeper: within the growth factor, must not thrash the epoch.
	if f.observe("fp", "T1|T2", estimate.Observed{K: 5, DL: 110, DR: 105}) {
		t.Fatal("insignificant repeat bumped the epoch")
	}
	// Materially deeper: re-plan.
	if !f.observe("fp", "T1|T2", estimate.Observed{K: 5, DL: 300, DR: 100}) {
		t.Fatal("materially deeper observation rejected")
	}
	if f.epochFor("fp") != 2 {
		t.Fatalf("epoch %d after material observation", f.epochFor("fp"))
	}
	// Invalid observations never land.
	if f.observe("fp", "T1|T2", estimate.Observed{K: 0, DL: 1, DR: 1}) {
		t.Fatal("invalid observation accepted")
	}
	hints, epoch := f.snapshot("fp")
	if epoch != 2 || hints["T1|T2"].DL != 300 {
		t.Fatalf("snapshot = %+v at epoch %d", hints, epoch)
	}
	if _, e := f.snapshot("other"); e != 0 {
		t.Fatal("unknown fingerprint has a non-zero epoch")
	}
}

//go:build race

package engine

// promptSlack: see slack_norace_test.go. Even 6x the normal bound stays
// far below what a non-prompt teardown (a full multi-second drain) would
// measure, so the race run still catches real regressions.
const promptSlack = 6

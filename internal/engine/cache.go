package engine

import (
	"hash/maphash"
	"sync"
	"sync/atomic"

	"rankopt/internal/plan"
)

// cacheShards is the shard count of the plan cache: a small power of two,
// plenty to keep 8-16 session workers from serializing on one mutex.
const cacheShards = 16

// shardCap bounds the entries per shard per map. The workloads this engine
// serves repeat a small set of query shapes, so the bound exists only to
// keep a pathological client (e.g. fingerprint-unique generated SQL) from
// growing the maps without limit; eviction is arbitrary-victim, which is
// adequate at this size.
const shardCap = 256

// CacheStats is a point-in-time snapshot of plan-cache effectiveness.
type CacheStats struct {
	// Hits counts sessions served from a cached template (whether the hit
	// came from the SQL-text level or the fingerprint level).
	Hits uint64
	// Misses counts sessions that ran the full parse+optimize pipeline.
	Misses uint64
	// Invalidations counts cache entries discarded because the catalog
	// statistics epoch moved past them.
	Invalidations uint64
	// Entries is the current number of cached plan templates.
	Entries int
}

// planCache is the engine's sharded, concurrency-safe plan cache. It has
// two levels keyed independently:
//
//   - text level: raw SQL string → (fingerprint, k). A repeat of the exact
//     request text skips lexing and parsing entirely.
//   - plan level: canonical fingerprint (sqlparse.Fingerprint, k
//     parameterized out) → *plan.Template. Lexically different spellings of
//     one query, or the same query at a different k, share the template and
//     skip optimization.
//
// Every entry records the catalog statistics epoch it was planned under;
// lookups treat entries from older epochs as misses and overwrite them, so
// RefreshStats/AddTable/CreateIndex invalidate lazily without any
// cross-shard coordination. Templates are immutable once published (see
// plan.Template), which is what makes sharing them across sessions safe.
type planCache struct {
	seed   maphash.Seed
	shards [cacheShards]cacheShard

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
}

type cacheShard struct {
	mu sync.Mutex
	// text maps raw SQL → parse outcome (guarded by mu; keyed into the
	// shard by the hash of the SQL text).
	text map[string]textEntry
	// plans maps fingerprint → template (guarded by mu; keyed into the
	// shard by the hash of the fingerprint).
	plans map[string]planEntry
}

type textEntry struct {
	fingerprint string
	k           int
	epoch       uint64
}

type planEntry struct {
	tmpl  *plan.Template
	epoch uint64
	// hintEpoch is the depth-feedback hint epoch the template was optimized
	// under (always 0 when the feedback loop is off). A moved hint epoch
	// means new empirical depth observations exist for this fingerprint, so
	// the entry is treated as a miss and the query re-optimizes with them.
	hintEpoch uint64
}

func newPlanCache() *planCache {
	c := &planCache{seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i].text = make(map[string]textEntry)
		c.shards[i].plans = make(map[string]planEntry)
	}
	return c
}

func (c *planCache) shardFor(key string) *cacheShard {
	return &c.shards[maphash.String(c.seed, key)&(cacheShards-1)]
}

// lookupText resolves raw SQL to (fingerprint, k) if this exact text was
// parsed under the current epoch.
func (c *planCache) lookupText(sql string, epoch uint64) (fp string, k int, ok bool) {
	s := c.shardFor(sql)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.text[sql]
	if !ok {
		return "", 0, false
	}
	if e.epoch != epoch {
		delete(s.text, sql)
		return "", 0, false
	}
	return e.fingerprint, e.k, true
}

// lookupPlan resolves a fingerprint to its cached template under the
// current catalog-stats epoch and depth-feedback hint epoch.
func (c *planCache) lookupPlan(fp string, epoch, hintEpoch uint64) (*plan.Template, bool) {
	s := c.shardFor(fp)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.plans[fp]
	if !ok {
		return nil, false
	}
	if e.epoch != epoch || e.hintEpoch != hintEpoch {
		delete(s.plans, fp)
		c.invalidations.Add(1)
		return nil, false
	}
	return e.tmpl, true
}

// storeText records the text → fingerprint mapping.
func (c *planCache) storeText(sql, fp string, k int, epoch uint64) {
	s := c.shardFor(sql)
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.text) >= shardCap {
		evictOne(s.text)
	}
	s.text[sql] = textEntry{fingerprint: fp, k: k, epoch: epoch}
}

// storePlan publishes a template under its fingerprint.
func (c *planCache) storePlan(fp string, tmpl *plan.Template, epoch, hintEpoch uint64) {
	s := c.shardFor(fp)
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.plans) >= shardCap {
		evictOne(s.plans)
	}
	s.plans[fp] = planEntry{tmpl: tmpl, epoch: epoch, hintEpoch: hintEpoch}
}

// evictOne removes an arbitrary entry (Go map iteration order serves as a
// cheap random victim pick).
func evictOne[V any](m map[string]V) {
	for k := range m {
		delete(m, k)
		return
	}
}

// stats snapshots the counters and entry count.
func (c *planCache) stats() CacheStats {
	st := CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.plans)
		s.mu.Unlock()
	}
	return st
}

package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"rankopt/internal/core"
	"rankopt/internal/exec"
	"rankopt/internal/workload"
)

// heavyEngine serves a workload whose full execution takes well over a
// second: a low-selectivity 2-way ranked join drained completely (no LIMIT
// means no early-out), hundreds of thousands of result tuples through the
// ranking queue.
func heavyEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	cat, _ := workload.RankedSet(2, workload.RankedConfig{
		N: 30000, Selectivity: 0.001, Seed: 23,
	})
	return NewWithConfig(cat, cfg)
}

const heavySQL = "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC"

// TestDeadlineCutsLongQuery is the tentpole acceptance check: a 10ms
// deadline against a >1s workload returns a typed ErrDeadlineExceeded
// promptly, with the operator tree torn down (later queries still work).
func TestDeadlineCutsLongQuery(t *testing.T) {
	eng := heavyEngine(t, Config{})
	// Warm the plan cache so the measured latency is execution, not planning.
	if resp := eng.Run(Request{SQL: heavySQL, ExplainOnly: true}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	start := time.Now()
	resp := eng.Run(Request{ID: "dl", SQL: heavySQL, Deadline: time.Now().Add(10 * time.Millisecond)})
	elapsed := time.Since(start)
	if !errors.Is(resp.Err, exec.ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded, got %v", resp.Err)
	}
	// The acceptance bound is 50ms of overshoot; allow scheduler slack on
	// loaded CI machines (more under -race) while still catching any
	// non-prompt teardown.
	if elapsed > 250*time.Millisecond*promptSlack {
		t.Errorf("deadline overshoot: query returned after %v", elapsed)
	}
	t.Logf("10ms-deadline query returned in %v", elapsed)
	// The engine is fully usable afterwards.
	ok := eng.Run(Request{SQL: "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 3"})
	if ok.Err != nil {
		t.Fatalf("engine broken after deadline abort: %v", ok.Err)
	}
	if len(ok.Tuples) != 3 {
		t.Fatalf("got %d tuples after deadline abort, want 3", len(ok.Tuples))
	}
	m := eng.Snapshot()
	if m.QueriesDeadlined != 1 {
		t.Errorf("queries_deadline_exceeded = %d, want 1", m.QueriesDeadlined)
	}
}

// TestCancelMidQuery cancels the caller's context mid-execution and expects
// the typed cancellation error plus the matching metric.
func TestCancelMidQuery(t *testing.T) {
	eng := heavyEngine(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	resp := eng.RunCtx(ctx, Request{ID: "c", SQL: heavySQL})
	if !errors.Is(resp.Err, exec.ErrQueryCancelled) {
		t.Fatalf("want ErrQueryCancelled, got %v", resp.Err)
	}
	if m := eng.Snapshot(); m.QueriesCancelled != 1 {
		t.Errorf("queries_cancelled = %d, want 1", m.QueriesCancelled)
	}
}

// TestBudgetLimitStopsQuery bounds the buffered tuples instead of the time:
// the heavy query trips the budget and reports it distinctly from deadlines.
func TestBudgetLimitStopsQuery(t *testing.T) {
	eng := heavyEngine(t, Config{})
	resp := eng.Run(Request{
		SQL:    heavySQL,
		Limits: exec.ResourceLimits{MaxBufferedTuples: 5000},
	})
	if !errors.Is(resp.Err, exec.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", resp.Err)
	}
	if m := eng.Snapshot(); m.QueriesOverBudget != 1 {
		t.Errorf("queries_over_budget = %d, want 1", m.QueriesOverBudget)
	}
}

// TestDefaultLimitsApply: engine-wide default limits govern requests that
// carry none of their own, and a request's own limits replace them.
func TestDefaultLimitsApply(t *testing.T) {
	eng := heavyEngine(t, Config{
		DefaultLimits: exec.ResourceLimits{MaxBufferedTuples: 5000},
	})
	if resp := eng.Run(Request{SQL: heavySQL}); !errors.Is(resp.Err, exec.ErrBudgetExceeded) {
		t.Fatalf("default limits not applied: %v", resp.Err)
	}
	// A generous per-request budget overrides the strict default.
	resp := eng.Run(Request{
		SQL:    "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 5",
		Limits: exec.ResourceLimits{MaxBufferedTuples: 1 << 22},
	})
	if resp.Err != nil {
		t.Fatalf("per-request limits must replace defaults: %v", resp.Err)
	}
}

// TestAdmissionDeadlineComposition: the query deadline starts at submit, not
// at dequeue — a session queued behind a saturated engine expires with
// ErrDeadlineExceeded while still waiting.
func TestAdmissionDeadlineComposition(t *testing.T) {
	eng := heavyEngine(t, Config{MaxConcurrent: 1})
	if resp := eng.Run(Request{SQL: heavySQL, ExplainOnly: true}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	// Occupy the only slot with a long query we cancel at the end.
	holdCtx, holdCancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	started := make(chan struct{})
	go func() {
		defer wg.Done()
		close(started)
		eng.RunCtx(holdCtx, Request{ID: "hold", SQL: heavySQL})
	}()
	<-started
	time.Sleep(30 * time.Millisecond) // let the holder pass admission
	start := time.Now()
	resp := eng.Run(Request{ID: "queued", SQL: heavySQL, Deadline: time.Now().Add(25 * time.Millisecond)})
	elapsed := time.Since(start)
	if !errors.Is(resp.Err, exec.ErrDeadlineExceeded) {
		t.Fatalf("queued query must expire on its own deadline, got %v", resp.Err)
	}
	if elapsed > 500*time.Millisecond*promptSlack {
		t.Errorf("queued expiry took %v", elapsed)
	}
	holdCancel()
	wg.Wait()
}

// TestAdmissionTimeout: with no query deadline, the engine's admission
// timeout bounds the queue wait with its own typed error and metric.
func TestAdmissionTimeout(t *testing.T) {
	eng := heavyEngine(t, Config{MaxConcurrent: 1, AdmissionTimeout: 30 * time.Millisecond})
	if resp := eng.Run(Request{SQL: heavySQL, ExplainOnly: true}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	holdCtx, holdCancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		eng.RunCtx(holdCtx, Request{ID: "hold", SQL: heavySQL})
	}()
	time.Sleep(30 * time.Millisecond)
	resp := eng.Run(Request{ID: "queued", SQL: heavySQL})
	if !errors.Is(resp.Err, ErrAdmissionTimeout) {
		t.Fatalf("want ErrAdmissionTimeout, got %v", resp.Err)
	}
	holdCancel()
	wg.Wait()
	if m := eng.Snapshot(); m.AdmissionTimeouts != 1 {
		t.Errorf("admission_timeouts = %d, want 1", m.AdmissionTimeouts)
	}
}

// TestConcurrentCancelNoLeaks is the -race stress: many concurrent sessions,
// half cancelled mid-flight, a pool closed under load — afterwards the
// goroutine count settles back (no leaked workers or stuck sessions).
func TestConcurrentCancelNoLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	eng := heavyEngine(t, Config{MaxConcurrent: 4})
	if resp := eng.Run(Request{SQL: heavySQL, ExplainOnly: true}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			if i%2 == 0 {
				go func() {
					time.Sleep(time.Duration(5+i) * time.Millisecond)
					cancel()
				}()
				resp := eng.RunCtx(ctx, Request{ID: fmt.Sprintf("g%d", i), SQL: heavySQL})
				if resp.Err != nil && !errors.Is(resp.Err, exec.ErrQueryCancelled) {
					t.Errorf("g%d: unexpected error %v", i, resp.Err)
				}
			} else {
				resp := eng.RunCtx(ctx, Request{
					ID: fmt.Sprintf("g%d", i), SQL: heavySQL,
					Deadline: time.Now().Add(time.Duration(10+i) * time.Millisecond),
				})
				if resp.Err != nil && !errors.Is(resp.Err, exec.ErrDeadlineExceeded) &&
					!errors.Is(resp.Err, exec.ErrQueryCancelled) {
					t.Errorf("g%d: unexpected error %v", i, resp.Err)
				}
			}
		}(i)
	}
	// A pool closing under concurrent submissions, with per-request deadlines.
	pool := eng.NewPool(3)
	var results []<-chan Response
	for i := 0; i < 6; i++ {
		results = append(results, pool.Submit(Request{
			ID: fmt.Sprintf("p%d", i), SQL: heavySQL,
			Deadline: time.Now().Add(15 * time.Millisecond),
		}))
	}
	pool.Close()
	for i, ch := range results {
		resp := <-ch
		if resp.Err != nil && !errors.Is(resp.Err, exec.ErrDeadlineExceeded) &&
			!errors.Is(resp.Err, ErrPoolClosed) {
			t.Errorf("p%d: unexpected error %v", i, resp.Err)
		}
	}
	wg.Wait()
	// Goroutines wind down asynchronously; retry before declaring a leak.
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after stress", before, after)
		}
		time.Sleep(25 * time.Millisecond)
	}
	m := eng.Snapshot()
	if m.AdmissionWaiting != 0 {
		t.Errorf("admission_waiting gauge stuck at %d", m.AdmissionWaiting)
	}
	if m.InFlight != 0 {
		t.Errorf("in_flight gauge stuck at %d", m.InFlight)
	}
}

// TestLimitsDisabledPathUnchanged: with no limits anywhere the engine takes
// the nil-budget path and produces identical results to a budgeted run —
// the zero-cost-when-off contract.
func TestLimitsDisabledPathUnchanged(t *testing.T) {
	eng := testEngine(t, core.Options{})
	sql := testRequests(1, false)[0].SQL
	plain := eng.Run(Request{SQL: sql})
	if plain.Err != nil {
		t.Fatal(plain.Err)
	}
	limited := eng.Run(Request{SQL: sql, Limits: exec.ResourceLimits{MaxBufferedTuples: 1 << 22}})
	if limited.Err != nil {
		t.Fatal(limited.Err)
	}
	if len(plain.Tuples) != len(limited.Tuples) {
		t.Fatalf("limits changed the result: %d vs %d tuples", len(plain.Tuples), len(limited.Tuples))
	}
	for i := range plain.Tuples {
		for c := range plain.Tuples[i] {
			if !plain.Tuples[i][c].Equal(limited.Tuples[i][c]) {
				t.Fatalf("tuple %d column %d differs with limits on", i, c)
			}
		}
	}
}

package engine

import (
	"sync"

	"rankopt/internal/estimate"
)

// feedbackStore is the depth-feedback loop's memory: per query fingerprint,
// the empirically observed rank-join depths of past executions, keyed by the
// join's table split (plan.DepthHintKey). When an execution's measured depths
// blow past the Section-4 estimates by the configured ratio, the engine
// records them here; the next planning of the same fingerprint finds its
// cached template stale (the hint epoch moved) and re-optimizes with the
// observations injected as core.Options.DepthHints, so the DP/greedy costing
// sees empirical depths instead of the model's misprediction.
//
// Published hint maps are copy-on-write: observe builds a fresh map on every
// accepted observation and swaps it in, so snapshot can hand the current map
// to an optimizer run without copying or holding the lock.
type feedbackStore struct {
	mu   sync.Mutex
	byFP map[string]*fpFeedback
}

type fpFeedback struct {
	// epoch counts accepted (new or materially larger) observations; the
	// plan cache stores the epoch a template was built under and treats a
	// moved epoch as a miss.
	epoch uint64
	// hints is the published split → observation map. Immutable once
	// published; replaced wholesale by observe.
	hints map[string]estimate.Observed
}

func newFeedbackStore() *feedbackStore {
	return &feedbackStore{byFP: map[string]*fpFeedback{}}
}

// growFactor is the materiality threshold: a repeat observation of a known
// split only bumps the hint epoch (and so forces a re-plan) when either
// depth grew by more than this factor over the stored observation at the
// same k. Without it the loop would invalidate the plan cache on every
// execution whose depths wobble, and re-planning would never settle.
const growFactor = 1.25

// epochFor returns the fingerprint's current hint epoch (0 = never
// observed).
func (f *feedbackStore) epochFor(fp string) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if e, ok := f.byFP[fp]; ok {
		return e.epoch
	}
	return 0
}

// snapshot returns the fingerprint's published hints and the epoch they
// correspond to. The returned map is immutable — safe to hand to an
// optimizer run as core.Options.DepthHints.
func (f *feedbackStore) snapshot(fp string) (map[string]estimate.Observed, uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if e, ok := f.byFP[fp]; ok {
		return e.hints, e.epoch
	}
	return nil, 0
}

// observe records one measured rank-join depth observation for the
// fingerprint's given split key. It reports whether the observation was
// accepted (new split, or materially deeper than the stored one) — an
// accepted observation bumps the hint epoch, which lazily invalidates the
// fingerprint's cached plan.
func (f *feedbackStore) observe(fp, key string, ob estimate.Observed) bool {
	if !ob.Valid() {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	e, okFP := f.byFP[fp]
	if !okFP {
		e = &fpFeedback{hints: map[string]estimate.Observed{}}
		f.byFP[fp] = e
	}
	if prev, ok := e.hints[key]; ok {
		// Compare at the stored observation's k so differently-scaled runs
		// (other LIMITs of the same fingerprint) stay comparable.
		dl, dr := ob.DepthsAt(prev.K)
		if dl <= growFactor*prev.DL && dr <= growFactor*prev.DR {
			return false
		}
	}
	next := make(map[string]estimate.Observed, len(e.hints)+1)
	for k, v := range e.hints {
		next[k] = v
	}
	next[key] = ob
	e.hints = next
	e.epoch++
	return true
}

package engine

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"rankopt/internal/catalog"
	"rankopt/internal/core"
	"rankopt/internal/plan"
	"rankopt/internal/workload"
)

func cacheTestCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat, _ := workload.RankedSet(3, workload.RankedConfig{
		N: 2000, Selectivity: 0.01, Seed: 11,
	})
	return cat
}

const cacheTestSQL = "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 5"

// TestCacheHitOnRepeat: the second run of identical SQL must hit the cache,
// and the counters must record exactly one miss.
func TestCacheHitOnRepeat(t *testing.T) {
	eng := New(cacheTestCatalog(t), core.Options{})
	first := eng.Run(Request{SQL: cacheTestSQL})
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if first.CacheHit {
		t.Error("first run reported a cache hit on an empty cache")
	}
	second := eng.Run(Request{SQL: cacheTestSQL})
	if second.Err != nil {
		t.Fatal(second.Err)
	}
	if !second.CacheHit {
		t.Error("second run of identical SQL missed the cache")
	}
	if !reflect.DeepEqual(first.Tuples, second.Tuples) {
		t.Error("cached run produced different tuples")
	}
	st := eng.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
}

// TestCacheHitAcrossSpellings: lexically different spellings of one query —
// whitespace, keyword case, a different LIMIT — normalize to one fingerprint
// and share a template.
func TestCacheHitAcrossSpellings(t *testing.T) {
	eng := New(cacheTestCatalog(t), core.Options{})
	if r := eng.Run(Request{SQL: cacheTestSQL}); r.Err != nil {
		t.Fatal(r.Err)
	}
	variants := []string{
		"select * from T1, T2 where T1.key = T2.key order by T1.score + T2.score desc limit 5",
		"SELECT  *  FROM T1,  T2  WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 5",
		"SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT 9",
	}
	for _, sql := range variants {
		r := eng.Run(Request{SQL: sql})
		if r.Err != nil {
			t.Fatalf("%q: %v", sql, r.Err)
		}
		if !r.CacheHit {
			t.Errorf("%q: missed the cache despite matching fingerprint", sql)
		}
	}
	if st := eng.CacheStats(); st.Entries != 1 {
		t.Errorf("entries = %d, want 1 shared template", st.Entries)
	}
}

// TestCacheRebindsK: a template cached at one k must serve a different k
// with the correct (exactly k) result count.
func TestCacheRebindsK(t *testing.T) {
	eng := New(cacheTestCatalog(t), core.Options{})
	shape := "SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT %d"
	if r := eng.Run(Request{SQL: fmt.Sprintf(shape, 5)}); r.Err != nil || len(r.Tuples) != 5 {
		t.Fatalf("k=5 seed run: err=%v rows=%d", r.Err, len(r.Tuples))
	}
	r := eng.Run(Request{SQL: fmt.Sprintf(shape, 12)})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !r.CacheHit {
		t.Error("k=12 run missed the cache (k should be parameterized out)")
	}
	if len(r.Tuples) != 12 {
		t.Errorf("k=12 run returned %d rows", len(r.Tuples))
	}
}

// TestCacheDistinctQueriesMiss: different predicates or table sets must not
// collide.
func TestCacheDistinctQueriesMiss(t *testing.T) {
	eng := New(cacheTestCatalog(t), core.Options{})
	queries := []string{
		cacheTestSQL,
		"SELECT * FROM T2, T3 WHERE T2.key = T3.key ORDER BY T2.score + T3.score DESC LIMIT 5",
		"SELECT * FROM T1, T2, T3 WHERE T1.key = T2.key AND T2.key = T3.key ORDER BY T1.score + T2.score + T3.score DESC LIMIT 5",
	}
	for _, sql := range queries {
		if r := eng.Run(Request{SQL: sql}); r.Err != nil {
			t.Fatal(r.Err)
		} else if r.CacheHit {
			t.Errorf("%q: unexpected cache hit", sql)
		}
	}
	if st := eng.CacheStats(); st.Entries != len(queries) || st.Misses != uint64(len(queries)) {
		t.Errorf("stats = %+v, want %d entries and misses", st, len(queries))
	}
}

// TestCacheInvalidatedByStatsEpoch: any catalog statistics change must make
// the next lookup miss and replan — a stale plan reflects dead statistics.
func TestCacheInvalidatedByStatsEpoch(t *testing.T) {
	cat := cacheTestCatalog(t)
	eng := New(cat, core.Options{})
	if r := eng.Run(Request{SQL: cacheTestSQL}); r.Err != nil {
		t.Fatal(r.Err)
	}
	if r := eng.Run(Request{SQL: cacheTestSQL}); !r.CacheHit {
		t.Fatal("warm-up hit expected")
	}
	before := cat.StatsEpoch()
	if err := cat.RefreshStats("T1"); err != nil {
		t.Fatal(err)
	}
	if cat.StatsEpoch() == before {
		t.Fatal("RefreshStats did not bump the stats epoch")
	}
	r := eng.Run(Request{SQL: cacheTestSQL})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.CacheHit {
		t.Error("cache hit across a stats-epoch bump: stale plan served")
	}
	st := eng.CacheStats()
	if st.Invalidations == 0 {
		t.Error("invalidation counter did not move")
	}
	// The replanned entry is valid again under the new epoch.
	if r := eng.Run(Request{SQL: cacheTestSQL}); !r.CacheHit {
		t.Error("re-cached plan missed after replanning under the new epoch")
	}
}

// TestCachedPlanIdentity is the acceptance check that caching is
// semantically invisible: for every query shape, a cache-disabled engine and
// a warm cache-enabled engine must produce the identical Explain string and
// identical tuples.
func TestCachedPlanIdentity(t *testing.T) {
	cat := cacheTestCatalog(t)
	cold := NewWithConfig(cat, Config{DisablePlanCache: true})
	warm := New(cat, core.Options{})
	queries := []string{
		cacheTestSQL,
		"SELECT * FROM T2, T3 WHERE T2.key = T3.key ORDER BY T2.score + T3.score DESC LIMIT 7",
		"SELECT * FROM T1, T2, T3 WHERE T1.key = T2.key AND T2.key = T3.key ORDER BY T1.score + T2.score + T3.score DESC LIMIT 4",
	}
	// Prime the warm engine so the compared runs are true cache hits.
	for _, sql := range queries {
		if r := warm.Run(Request{SQL: sql}); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	for _, sql := range queries {
		cr := cold.Run(Request{SQL: sql})
		wr := warm.Run(Request{SQL: sql})
		if cr.Err != nil || wr.Err != nil {
			t.Fatalf("%q: cold err=%v warm err=%v", sql, cr.Err, wr.Err)
		}
		if cr.CacheHit {
			t.Errorf("%q: cache-disabled engine reported a hit", sql)
		}
		if !wr.CacheHit {
			t.Errorf("%q: warm engine missed", sql)
		}
		ce, we := plan.Explain(cr.Plan), plan.Explain(wr.Plan)
		if ce != we {
			t.Errorf("%q: plans diverge\ncold:\n%s\nwarm:\n%s", sql, ce, we)
		}
		if !reflect.DeepEqual(cr.Tuples, wr.Tuples) {
			t.Errorf("%q: tuples diverge between cached and uncached runs", sql)
		}
	}
}

// TestCacheConcurrentHammer drives one cache from 8 goroutines with a 50%
// repeated-query mix. Run under -race this is the cache's data-race check;
// in any mode it verifies every response is well-formed and the hit/miss
// counters account for every session.
func TestCacheConcurrentHammer(t *testing.T) {
	eng := New(cacheTestCatalog(t), core.Options{})
	shapes := []string{
		"SELECT * FROM T1, T2 WHERE T1.key = T2.key ORDER BY T1.score + T2.score DESC LIMIT %d",
		"SELECT * FROM T2, T3 WHERE T2.key = T3.key ORDER BY T2.score + T3.score DESC LIMIT %d",
	}
	const goroutines = 8
	const perG = 32
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// 50% of sessions repeat one hot query verbatim; the rest
				// rotate shapes and k values.
				sql := fmt.Sprintf(shapes[0], 5)
				if i%2 == 1 {
					sql = fmt.Sprintf(shapes[(g+i)%len(shapes)], 3+(g*perG+i)%6)
				}
				r := eng.Run(Request{SQL: sql})
				if r.Err != nil {
					errs <- fmt.Errorf("g%d i%d: %w", g, i, r.Err)
					return
				}
				if len(r.Tuples) == 0 {
					errs <- fmt.Errorf("g%d i%d: empty result", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := eng.CacheStats()
	if st.Hits+st.Misses != goroutines*perG {
		t.Errorf("hits(%d)+misses(%d) != %d sessions", st.Hits, st.Misses, goroutines*perG)
	}
	if st.Hits < goroutines*perG/2 {
		t.Errorf("only %d hits on a 50%% repeated workload", st.Hits)
	}
}
